// Command arcsql is the interactive wire-protocol client: it connects
// to an arcserve daemon and runs statements in any of the three
// languages — queries stream results to stdout; INSERT/DELETE, fact
// ops (+Rel(…)/-Rel(…)), CREATE TABLE, and BEGIN/COMMIT/ROLLBACK
// execute and report rows affected plus the commit generation.
//
// Usage:
//
//	arcsql [flags] [query]
//
//	-addr host:port   server address (default 127.0.0.1:7878)
//	-lang sql|arc|datalog   query language (default sql)
//
// With a query argument it runs once and exits; without one it reads
// queries from stdin, one per line. REPL meta-commands: "\lang sql",
// "\lang arc", "\lang datalog" switch languages, "\analyze <query>"
// runs EXPLAIN ANALYZE server-side and prints the executed plan with
// actual row counts and timings, "\help" lists the meta-commands,
// "\q" quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/server/client"
	"repro/internal/value"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "server address")
	langName := flag.String("lang", "sql", "query language: sql|arc|datalog")
	flag.Parse()

	lang, ok := langByName(*langName)
	if !ok {
		die(fmt.Errorf("unknown language %q", *langName))
	}
	c, err := client.Dial(*addr)
	if err != nil {
		die(err)
	}
	defer c.Close()

	if flag.NArg() > 0 {
		if err := runQuery(c, lang, strings.Join(flag.Args(), " ")); err != nil {
			die(err)
		}
		return
	}

	fmt.Printf("connected to %s (%s); \\help lists meta-commands, \\q quits\n", *addr, *langName)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	prompt(lang)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if dispatch(c, &lang, line, os.Stdout, os.Stderr) {
			return
		}
		prompt(lang)
	}
}

// helpText lists every REPL meta-command. Kept as one literal so \help
// and the unknown-command diagnostic can't drift apart from the switch
// in dispatch without the test noticing.
const helpText = `meta-commands:
  \help                 show this list
  \lang sql|arc|datalog switch query language
  \analyze <query>      run EXPLAIN ANALYZE server-side, print the executed plan
  \q, \quit             exit
anything else is sent to the server in the current language
`

// dispatch handles one REPL line: meta-commands locally, everything
// else through the connection. It returns true when the REPL should
// quit. Meta-command typos (any other backslash line) get a local
// diagnostic instead of leaking to the server as a parse error in
// whatever language happens to be selected.
func dispatch(c *client.Conn, lang *client.Lang, line string, out, errw io.Writer) (quit bool) {
	switch {
	case line == "":
	case line == `\q`, line == `\quit`:
		return true
	case line == `\help`, line == `\h`, line == `\?`:
		fmt.Fprint(out, helpText)
	case strings.HasPrefix(line, `\lang`):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\lang`))
		if l, ok := langByName(name); ok {
			*lang = l
		} else {
			fmt.Fprintf(errw, "unknown language %q (want sql, arc, or datalog)\n", name)
		}
	case strings.HasPrefix(line, `\analyze`):
		src := strings.TrimSpace(strings.TrimPrefix(line, `\analyze`))
		if src == "" {
			fmt.Fprintln(errw, `usage: \analyze <query>`)
		} else if err := runAnalyze(c, *lang, src); err != nil {
			fmt.Fprintln(errw, "error:", err)
		}
	case strings.HasPrefix(line, `\`):
		fmt.Fprintf(errw, "unknown meta-command %q; \\help lists them\n", strings.Fields(line)[0])
	default:
		// Statement-level errors keep the session (and the REPL) alive.
		if err := runQuery(c, *lang, line); err != nil {
			fmt.Fprintln(errw, "error:", err)
		}
	}
	return false
}

func prompt(lang client.Lang) {
	name := map[client.Lang]string{client.LangSQL: "sql", client.LangARC: "arc", client.LangDatalog: "datalog"}[lang]
	fmt.Printf("%s> ", name)
}

func langByName(name string) (client.Lang, bool) {
	switch name {
	case "sql":
		return client.LangSQL, true
	case "arc":
		return client.LangARC, true
	case "datalog":
		return client.LangDatalog, true
	}
	return 0, false
}

// runAnalyze runs EXPLAIN ANALYZE server-side: the query executes to
// completion with operator tracing on and only the rendered plan comes
// back over the wire.
func runAnalyze(c *client.Conn, lang client.Lang, src string) error {
	stmt, err := c.Prepare(lang, src)
	if err != nil {
		return err
	}
	defer stmt.Close()
	text, err := stmt.ExplainAnalyze()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

// runQuery prepares one statement and routes it by kind: queries stream
// rows, everything else (DML, DDL, BEGIN/COMMIT/ROLLBACK) executes and
// reports what changed.
func runQuery(c *client.Conn, lang client.Lang, src string) error {
	stmt, err := c.Prepare(lang, src)
	if err != nil {
		return err
	}
	defer stmt.Close()
	if stmt.Kind() != client.KindQuery {
		res, err := stmt.Exec()
		if err != nil {
			return err
		}
		switch stmt.Kind() {
		case client.KindDML:
			if res.Generation != 0 {
				fmt.Printf("%d row(s) affected (generation %d)\n", res.RowsAffected, res.Generation)
			} else {
				fmt.Printf("%d row(s) affected (uncommitted)\n", res.RowsAffected)
			}
		case client.KindCommit:
			fmt.Printf("COMMIT (generation %d)\n", res.Generation)
		default:
			fmt.Println(stmt.Kind().String())
		}
		return nil
	}
	rows, err := stmt.Query()
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Println(strings.Join(stmt.Columns(), "\t"))
	n := 0
	for rows.Next() {
		cells := make([]string, 0, len(stmt.Columns()))
		for _, v := range rows.Values() {
			cells = append(cells, renderValue(v))
		}
		fmt.Println(strings.Join(cells, "\t"))
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d row(s))\n", n)
	return nil
}

func renderValue(v value.Value) string {
	if v.IsNull() {
		return "null"
	}
	return v.String()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "arcsql:", err)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"

	"repro/internal/server/client"
)

// dispatchLocal runs one REPL line through dispatch with no server
// connection: only lines the meta-command layer must fully absorb are
// legal here, which is exactly what these tests pin.
func dispatchLocal(t *testing.T, lang *client.Lang, line string) (out, errw string, quit bool) {
	t.Helper()
	var ob, eb strings.Builder
	quit = dispatch(nil, lang, line, &ob, &eb)
	return ob.String(), eb.String(), quit
}

// TestHelpListsEveryMetaCommand pins that \help (and its aliases)
// mentions each meta-command the dispatch switch actually handles.
func TestHelpListsEveryMetaCommand(t *testing.T) {
	for _, alias := range []string{`\help`, `\h`, `\?`} {
		lang := client.LangSQL
		out, errw, quit := dispatchLocal(t, &lang, alias)
		if quit {
			t.Fatalf("%s quit the REPL", alias)
		}
		if errw != "" {
			t.Fatalf("%s wrote to stderr: %q", alias, errw)
		}
		for _, want := range []string{`\help`, `\lang`, `\analyze`, `\q`, `\quit`} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s output misses %s:\n%s", alias, want, out)
			}
		}
	}
}

// TestUnknownMetaCommandStaysLocal pins the typo path: a backslash line
// the REPL does not recognize must produce a local diagnostic pointing
// at \help — never reach the server as a garbage statement (dispatch is
// called with a nil connection here, so leaking would crash the test).
func TestUnknownMetaCommandStaysLocal(t *testing.T) {
	lang := client.LangSQL
	out, errw, quit := dispatchLocal(t, &lang, `\lnag sql`)
	if quit || out != "" {
		t.Fatalf("unknown command: out=%q quit=%v", out, quit)
	}
	if !strings.Contains(errw, `\lnag`) || !strings.Contains(errw, `\help`) {
		t.Fatalf("diagnostic %q should name the bad command and suggest \\help", errw)
	}
}

// TestLangSwitchAndQuit pins the remaining local commands: \lang
// rewrites the language in place (bad names diagnose without changing
// it), \q and \quit stop the loop, and blank lines are no-ops.
func TestLangSwitchAndQuit(t *testing.T) {
	lang := client.LangSQL
	if _, errw, _ := dispatchLocal(t, &lang, `\lang datalog`); errw != "" || lang != client.LangDatalog {
		t.Fatalf("\\lang datalog: lang=%v errw=%q", lang, errw)
	}
	if _, errw, _ := dispatchLocal(t, &lang, `\lang klingon`); !strings.Contains(errw, "klingon") || lang != client.LangDatalog {
		t.Fatalf("\\lang klingon: lang=%v errw=%q", lang, errw)
	}
	for _, q := range []string{`\q`, `\quit`} {
		if _, _, quit := dispatchLocal(t, &lang, q); !quit {
			t.Fatalf("%s did not quit", q)
		}
	}
	if out, errw, quit := dispatchLocal(t, &lang, ""); out != "" || errw != "" || quit {
		t.Fatal("blank line was not a no-op")
	}
}

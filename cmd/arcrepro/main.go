// Command arcrepro runs the paper-reproduction experiment suite (E01–E21,
// one per figure-level claim; see DESIGN.md for the index) and prints a
// paper-vs-measured table. Use -v for per-experiment evidence and -id to
// run a single experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	verbose := flag.Bool("v", false, "print per-experiment details")
	id := flag.String("id", "", "run a single experiment (e.g. E16)")
	flag.Parse()

	var reports []experiments.Report
	if *id != "" {
		r, err := experiments.Run(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arcrepro:", err)
			os.Exit(2)
		}
		reports = []experiments.Report{r}
	} else {
		reports = experiments.RunAll()
	}

	fmt.Println("ARC reproduction — paper claims vs measured behaviour")
	fmt.Println(strings.Repeat("=", 100))
	failures := 0
	for _, r := range reports {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-22s %-34s [%s]\n", r.ID, r.Figure, r.Title, status)
		fmt.Printf("     claim:    %s\n", r.PaperClaim)
		fmt.Printf("     measured: %s\n", r.Measured)
		if *verbose && r.Details != "" {
			for _, line := range strings.Split(strings.TrimRight(r.Details, "\n"), "\n") {
				fmt.Printf("     | %s\n", line)
			}
		}
		fmt.Println(strings.Repeat("-", 100))
	}
	fmt.Printf("%d/%d experiments pass\n", len(reports)-failures, len(reports))
	if failures > 0 {
		os.Exit(1)
	}
}

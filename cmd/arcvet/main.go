// Command arcvet is the engine's invariant checker: a go/analysis
// multichecker that mechanically enforces the concurrency and safety
// contracts the type system cannot express. It speaks the unitchecker
// protocol, so it runs through the standard vet driver:
//
//	go build -o bin/arcvet ./cmd/arcvet
//	go vet -vettool=bin/arcvet ./...
//
// or simply `make arcvet`. The suite:
//
//	snapimmut     committed snapshots are immutable; mutate WriteSet clones only
//	hookreentry   commit hooks / barrier callbacks must not re-enter the store
//	boundaryguard engine/server entry points need a recover-to-PanicError guard
//	cancelpoll    row-pull and fixpoint-round loops must poll for cancellation
//	errcmp        wrapped sentinel errors require errors.Is, not ==
//
// Each analyzer's package doc states the invariant, why violating it is
// unsound, and the //arcvet:ignore escape hatch (which requires a
// written reason). See docs/INVARIANTS.md for the overview.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/boundaryguard"
	"repro/internal/analysis/cancelpoll"
	"repro/internal/analysis/errcmp"
	"repro/internal/analysis/hookreentry"
	"repro/internal/analysis/snapimmut"
)

func main() {
	unitchecker.Main(
		boundaryguard.Analyzer,
		cancelpoll.Analyzer,
		errcmp.Analyzer,
		hookreentry.Analyzer,
		snapimmut.Analyzer,
	)
}

// Command arcserve is the network daemon over the unified engine: it
// loads a data file, opens an engine.DB — in memory, or durably over a
// write-ahead-logged storage directory — and serves the wire protocol
// (see internal/server) on a TCP address, with an optional HTTP metrics
// endpoint for capacity planning.
//
// Usage:
//
//	arcserve [flags]
//
//	-addr host:port      listen address (default 127.0.0.1:7878)
//	-db file             data file to load (see internal/dbfile format);
//	                     with -wal-dir it seeds a fresh directory only —
//	                     recovered state wins on restart
//	-wal-dir dir         durable storage directory: commits are
//	                     write-ahead logged and the daemon cold-starts
//	                     from checkpoint + WAL replay ("" = RAM only)
//	-fsync               fsync every WAL append before acknowledging
//	                     (kill -9 durability; slower commits)
//	-checkpoint-interval d  periodic full-snapshot checkpoint + WAL
//	                     truncation (default 5m, 0 = only at shutdown)
//	-metrics host:port   serve /metrics on this address ("" = off):
//	                     Prometheus text format by default,
//	                     ?format=json for the JSON snapshot
//	-slow-log file       structured slow-query log, one JSON object per
//	                     line ("-" = stderr, "" = off)
//	-slow-threshold d    statements at least this slow are logged
//	                     (default 100ms)
//	-fetch N             default Fetch batch size (rows)
//	-v                   log connection-level diagnostics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight queries are cancelled through the engine's context plumbing,
// sessions drain (10s grace, then forced), and a durable daemon writes a
// final checkpoint so the next start replays nothing.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dbfile"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg config
	fs := newFlags(&cfg)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var rels []*relation.Relation
	if cfg.dbPath != "" {
		var err error
		rels, err = dbfile.Load(cfg.dbPath)
		if err != nil {
			return err
		}
	}
	db, err := openDB(cfg, rels)
	if err != nil {
		return err
	}
	defer db.Close()
	if cfg.slowLog != "" {
		w := io.Writer(os.Stderr)
		if cfg.slowLog != "-" {
			f, err := os.OpenFile(cfg.slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		db.SetSlowQueryLog(w, cfg.slowMs)
		log.Printf("arcserve: slow-query log (>= %v) to %s", cfg.slowMs, cfg.slowLog)
	}
	opts := server.Options{FetchRows: cfg.fetch}
	if cfg.verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(db, opts)

	if cfg.metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(cfg.metrics, mux); err != nil {
				log.Printf("arcserve: metrics endpoint: %v", err)
			}
		}()
		log.Printf("arcserve: metrics on http://%s/metrics", cfg.metrics)
	}

	stopCkpt := startCheckpointer(db, cfg.ckptIval)
	defer stopCkpt()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(cfg.addr) }()
	log.Printf("arcserve: serving %d relation(s) on %s", len(db.Store().Head().Names()), cfg.addr)

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("arcserve: %v — draining sessions", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("arcserve: forced shutdown: %v", err)
		}
		<-errc
		if db.Durable() {
			if err := db.Checkpoint(); err != nil {
				log.Printf("arcserve: shutdown checkpoint: %v", err)
			} else {
				log.Printf("arcserve: shutdown checkpoint at generation %d", db.Generation())
			}
		}
		return nil
	}
}

// openDB opens the engine: durable over -wal-dir (logging what recovery
// found and replayed), in-memory otherwise.
func openDB(cfg config, seed []*relation.Relation) (*engine.DB, error) {
	if cfg.walDir == "" {
		return engine.Open(seed...), nil
	}
	db, err := engine.OpenDurable(cfg.walDir, storage.Options{Fsync: cfg.fsync}, seed...)
	if err != nil {
		return nil, err
	}
	rs, _ := db.RecoveryStats()
	log.Printf("arcserve: recovered %s: checkpoint gen %d + %d WAL record(s) (%d byte(s)) -> gen %d, %d relation(s), truncated=%v, in %v",
		cfg.walDir, rs.CheckpointGen, rs.Records, rs.Bytes, rs.Gen, rs.Relations, rs.Truncated, rs.Duration)
	if cfg.fsync {
		log.Printf("arcserve: fsync on every commit")
	}
	return db, nil
}

// startCheckpointer runs periodic checkpoints on a durable DB; the
// returned stop function is idempotent. No-op for RAM DBs or interval 0.
func startCheckpointer(db *engine.DB, interval time.Duration) (stop func()) {
	if !db.Durable() || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := db.Checkpoint(); err != nil {
					log.Printf("arcserve: periodic checkpoint: %v", err)
				}
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}

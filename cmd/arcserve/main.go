// Command arcserve is the network daemon over the unified engine: it
// loads a data file, opens an engine.DB, and serves the wire protocol
// (see internal/server) on a TCP address, with an optional HTTP metrics
// endpoint for capacity planning.
//
// Usage:
//
//	arcserve [flags]
//
//	-addr host:port      listen address (default 127.0.0.1:7878)
//	-db file             data file to load (see internal/dbfile format)
//	-metrics host:port   serve /metrics on this address ("" = off):
//	                     Prometheus text format by default,
//	                     ?format=json for the JSON snapshot
//	-slow-log file       structured slow-query log, one JSON object per
//	                     line ("-" = stderr, "" = off)
//	-slow-threshold d    statements at least this slow are logged
//	                     (default 100ms)
//	-fetch N             default Fetch batch size (rows)
//	-v                   log connection-level diagnostics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight queries are cancelled through the engine's context plumbing,
// and sessions drain (10s grace, then forced).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dbfile"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    string
		dbPath  string
		metrics string
		slowLog string
		slowMs  time.Duration
		fetch   int
		verbose bool
	)
	fs := newFlags(&addr, &dbPath, &metrics, &slowLog, &slowMs, &fetch, &verbose)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var rels []*relation.Relation
	if dbPath != "" {
		var err error
		rels, err = dbfile.Load(dbPath)
		if err != nil {
			return err
		}
	}
	db := engine.Open(rels...)
	if slowLog != "" {
		w := io.Writer(os.Stderr)
		if slowLog != "-" {
			f, err := os.OpenFile(slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		db.SetSlowQueryLog(w, slowMs)
		log.Printf("arcserve: slow-query log (>= %v) to %s", slowMs, slowLog)
	}
	opts := server.Options{FetchRows: fetch}
	if verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(db, opts)

	if metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(metrics, mux); err != nil {
				log.Printf("arcserve: metrics endpoint: %v", err)
			}
		}()
		log.Printf("arcserve: metrics on http://%s/metrics", metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()
	log.Printf("arcserve: serving %d relation(s) on %s", len(rels), addr)

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("arcserve: %v — draining sessions", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("arcserve: forced shutdown: %v", err)
		}
		<-errc
		return nil
	}
}

package main

import (
	"flag"
	"time"
)

// newFlags builds the daemon's flag set (split out for testability).
func newFlags(addr, dbPath, metrics, slowLog *string, slowMs *time.Duration, fetch *int, verbose *bool) *flag.FlagSet {
	fs := flag.NewFlagSet("arcserve", flag.ContinueOnError)
	fs.StringVar(addr, "addr", "127.0.0.1:7878", "listen address")
	fs.StringVar(dbPath, "db", "", "data file to load")
	fs.StringVar(metrics, "metrics", "", "HTTP metrics address (empty = off)")
	fs.StringVar(slowLog, "slow-log", "", "slow-query log file, JSON lines (\"-\" = stderr, empty = off)")
	fs.DurationVar(slowMs, "slow-threshold", 100*time.Millisecond, "statements at least this slow are logged (with -slow-log)")
	fs.IntVar(fetch, "fetch", 0, "default Fetch batch size (0 = server default)")
	fs.BoolVar(verbose, "v", false, "log connection-level diagnostics")
	return fs
}

package main

import (
	"flag"
	"time"
)

// config carries the daemon's flag values.
type config struct {
	addr    string
	dbPath  string
	metrics string
	slowLog string
	slowMs  time.Duration
	fetch   int
	verbose bool

	// Durability (see internal/storage): empty walDir serves RAM-only.
	walDir   string
	fsync    bool
	ckptIval time.Duration
}

// newFlags builds the daemon's flag set (split out for testability).
func newFlags(c *config) *flag.FlagSet {
	fs := flag.NewFlagSet("arcserve", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", "127.0.0.1:7878", "listen address")
	fs.StringVar(&c.dbPath, "db", "", "data file to load (seeds a fresh -wal-dir; recovered state wins)")
	fs.StringVar(&c.metrics, "metrics", "", "HTTP metrics address (empty = off)")
	fs.StringVar(&c.slowLog, "slow-log", "", "slow-query log file, JSON lines (\"-\" = stderr, empty = off)")
	fs.DurationVar(&c.slowMs, "slow-threshold", 100*time.Millisecond, "statements at least this slow are logged (with -slow-log)")
	fs.IntVar(&c.fetch, "fetch", 0, "default Fetch batch size (0 = server default)")
	fs.BoolVar(&c.verbose, "v", false, "log connection-level diagnostics")
	fs.StringVar(&c.walDir, "wal-dir", "", "durable storage directory (empty = in-memory only)")
	fs.BoolVar(&c.fsync, "fsync", false, "fsync every WAL append before acknowledging the commit (with -wal-dir)")
	fs.DurationVar(&c.ckptIval, "checkpoint-interval", 5*time.Minute, "periodic checkpoint interval, 0 = only at shutdown (with -wal-dir)")
	return fs
}

package main

import (
	"repro/internal/core"
	"repro/internal/dbfile"
	"repro/internal/relation"
)

// loadCatalog reads a data file (see internal/dbfile for the format)
// into a catalog with standard externals.
func loadCatalog(path string) (*core.Catalog, []*relation.Relation, error) {
	cat := core.NewCatalog().WithStandardExternals()
	if path == "" {
		return cat, nil, nil
	}
	rels, err := dbfile.Load(path)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range rels {
		cat.AddRelation(r)
	}
	return cat, rels, nil
}

// Command arc is the ARC toolchain CLI: parse queries in any supported
// language (ARC comprehension syntax, SQL, textbook TRC), validate them,
// render any modality (comprehension text, ALT tree, higraph ASCII or
// SVG, SQL), analyze relational patterns, lint for the COUNT bug, and
// evaluate against a data file under chosen conventions.
//
// Usage:
//
//	arc [flags] <query | @file>
//
//	-lang arc|sql|trc     input language (default arc)
//	-out  arc|alt|higraph|svg|sql|sig|all   output form (default alt)
//	-db   file            data file for -eval (see below)
//	-eval                 evaluate and print the result relation
//	-conv set|sql|sqldistinct|souffle       conventions (default set)
//	-lint                 run the COUNT-bug lint
//	-explain              print the tuple-level query plan: the compiled
//	                      exec-operator pipeline per quantifier scope
//	                      (plus, for -lang sql, the SQL planner's plan),
//	                      or why a scope stays on enumeration
//	-explain-analyze      run the query (locally or, with -connect, on
//	                      the server) and print the executed plan with
//	                      actual row counts and timings instead of rows
//
// Data files list relations as "Name(attr1,attr2)" header lines followed
// by comma-separated rows; "null" is NULL; everything parseable as a
// number is numeric; the rest are strings. Blank lines separate
// relations, '#' starts a comment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/server/client"
)

func main() {
	lang := flag.String("lang", "arc", "input language: arc|sql|trc")
	out := flag.String("out", "alt", "output: arc|alt|higraph|svg|sql|sig|all")
	dbPath := flag.String("db", "", "data file for -eval")
	doEval := flag.Bool("eval", false, "evaluate the query")
	convName := flag.String("conv", "set", "conventions: set|sql|sqldistinct|souffle")
	doLint := flag.Bool("lint", false, "run the COUNT-bug lint")
	doExplain := flag.Bool("explain", false, "print the tuple-level query plan")
	doAnalyze := flag.Bool("explain-analyze", false, "run the query and print the executed plan with actual rows and timings (instead of the rows)")
	connect := flag.String("connect", "", "arcserve address: -eval runs on the server instead of in-process (-db/-conv stay server-side)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arc [flags] <query | @file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src := flag.Arg(0)
	if strings.HasPrefix(src, "@") {
		data, err := os.ReadFile(src[1:])
		if err != nil {
			die(err)
		}
		src = string(data)
	}

	col, sentence, err := parseInput(*lang, src)
	if err != nil {
		// SQL queries outside the ARC translation fragment (e.g. WITH
		// RECURSIVE) still evaluate and explain through the SQL engine.
		if *lang == "sql" && (*doEval || *doExplain || *doAnalyze) {
			runSQLOnly(src, *dbPath, *doExplain, *doEval, *doAnalyze, *connect)
			return
		}
		die(err)
	}

	if sentence != nil {
		runSentence(sentence, *dbPath, *convName, *doEval)
		return
	}
	if _, err := core.Validate(col); err != nil {
		die(err)
	}
	if *doLint {
		findings, err := core.LintCountBug(col)
		if err != nil {
			die(err)
		}
		if len(findings) == 0 {
			fmt.Println("lint: clean")
		}
		for _, f := range findings {
			fmt.Println("lint:", f)
		}
	}
	if err := render(col, *out); err != nil {
		die(err)
	}
	if *doAnalyze {
		if *connect != "" {
			remoteAnalyze(*connect, *lang, src, col)
			return
		}
		cat, _, err := loadCatalog(*dbPath)
		if err != nil {
			die(err)
		}
		stmt, err := core.OpenEngineCatalog(cat).PrepareARCCollection(col, conventionsByName(*convName))
		if err != nil {
			die(err)
		}
		text, err := stmt.ExplainAnalyze(context.Background())
		if err != nil {
			die(err)
		}
		fmt.Print(text)
		return
	}
	if *doExplain || *doEval {
		cat, rels, err := loadCatalog(*dbPath)
		if err != nil {
			die(err)
		}
		if *doExplain {
			if err := explain(col, *lang, src, cat, rels, *convName); err != nil {
				if *connect != "" && *doEval {
					fmt.Printf("arc plan: unavailable locally (%v)\n", err)
				} else {
					die(err)
				}
			}
		}
		if *doEval {
			if *connect != "" {
				// The direct-eval path moves behind the wire protocol:
				// the query runs in an arcserve daemon's session.
				remoteEval(*connect, *lang, src, col)
				return
			}
			// One prepared statement through the unified engine — the
			// same front door a long-running server would hold open.
			stmt, err := core.OpenEngineCatalog(cat).PrepareARCCollection(col, conventionsByName(*convName))
			if err != nil {
				die(err)
			}
			res, err := stmt.QueryAll(context.Background())
			if err != nil {
				die(err)
			}
			fmt.Print(res.String())
		}
	}
}

// remoteEval runs the query in an arcserve daemon instead of the
// in-process engine: SQL goes over the wire verbatim, ARC and TRC as
// the parsed collection's canonical ARC text (TRC has no wire language
// of its own). The result prints in the same relation format as local
// evaluation.
func remoteEval(addr, lang, src string, col *core.Collection) {
	c, err := client.Dial(addr)
	if err != nil {
		die(err)
	}
	defer c.Close()
	wireLang, wireSrc := client.LangARC, ""
	if lang == "sql" {
		wireLang, wireSrc = client.LangSQL, src
	} else if col != nil {
		wireSrc = col.String()
	} else {
		wireSrc = src // raw ARC text (fact ops have no Collection form)
	}
	stmt, err := c.Prepare(wireLang, wireSrc)
	if err != nil {
		die(err)
	}
	defer stmt.Close()
	if stmt.Kind() != client.KindQuery {
		// DML/DDL runs through the wire Exec frame and reports what
		// changed instead of streaming rows.
		res, err := stmt.Exec()
		if err != nil {
			die(err)
		}
		fmt.Printf("%d row(s) affected (generation %d)\n", res.RowsAffected, res.Generation)
		return
	}
	rows, err := stmt.QueryAll()
	if err != nil {
		die(err)
	}
	cols := stmt.Columns()
	res := relation.New("result", cols...)
	for _, r := range rows {
		res.Insert(relation.Tuple(r))
	}
	fmt.Print(res.String())
}

// remoteAnalyze runs EXPLAIN ANALYZE in an arcserve daemon via the
// Analyze wire frame and prints the rendered executed plan.
func remoteAnalyze(addr, lang, src string, col *core.Collection) {
	c, err := client.Dial(addr)
	if err != nil {
		die(err)
	}
	defer c.Close()
	wireLang, wireSrc := client.LangARC, src
	if lang == "sql" {
		wireLang = client.LangSQL
	} else if col != nil {
		wireSrc = col.String()
	}
	stmt, err := c.Prepare(wireLang, wireSrc)
	if err != nil {
		die(err)
	}
	defer stmt.Close()
	text, err := stmt.ExplainAnalyze()
	if err != nil {
		die(err)
	}
	fmt.Print(text)
}

// runSQLOnly evaluates and explains a SQL query that has no ARC
// translation (recursive CTEs and other fragments the translator does
// not cover) directly through the engine's SQL path.
func runSQLOnly(src, dbPath string, doExplain, doEval, doAnalyze bool, connect string) {
	if doAnalyze && connect != "" {
		remoteAnalyze(connect, "sql", src, nil)
		return
	}
	if doEval && connect != "" && !doExplain {
		// Pure remote evaluation: the server holds the data, so skip the
		// local catalog and prepare entirely.
		remoteEval(connect, "sql", src, nil)
		return
	}
	_, rels, err := loadCatalog(dbPath)
	if err != nil {
		die(err)
	}
	eng := core.OpenEngine(rels...)
	stmt, err := eng.Prepare(core.LangSQL, src)
	if err != nil {
		if doEval && connect != "" {
			// With a server to answer -eval, a failed local prepare
			// (typically: the data lives server-side, so the tables are
			// unknown here) only costs the explain.
			fmt.Printf("sql plan: unavailable locally (%v)\n", err)
			remoteEval(connect, "sql", src, nil)
			return
		}
		die(err)
	}
	if doExplain {
		s, err := stmt.Explain()
		switch {
		case err == nil:
			fmt.Println("sql plan:")
			fmt.Print(s)
		case errors.Is(err, plan.ErrNotPlannable):
			fmt.Printf("sql plan: not planner-compiled (%v)\n", err)
		default:
			// Genuine errors must fail, not render as a planner bailout.
			die(err)
		}
	}
	if doAnalyze {
		text, err := stmt.ExplainAnalyze(context.Background())
		if err != nil {
			die(err)
		}
		fmt.Print(text)
		return
	}
	if doEval {
		if connect != "" {
			remoteEval(connect, "sql", src, nil)
			return
		}
		if stmt.Kind() != core.KindQuery {
			// DML/DDL against the loaded data file: the write applies to
			// the in-process engine (the file itself is read-only input).
			res, err := stmt.Exec(context.Background())
			if err != nil {
				die(err)
			}
			fmt.Printf("%d row(s) affected (generation %d)\n", res.RowsAffected, res.Generation)
			return
		}
		res, err := stmt.QueryAll(context.Background())
		if err != nil {
			die(err)
		}
		fmt.Print(res.String())
	}
}

// explain prints the ARC scope plans (and, for SQL input, the SQL
// planner's physical plan) against the loaded catalog. The error is the
// caller's to judge: fatal locally, survivable when a server will
// answer -eval anyway.
func explain(col *core.Collection, lang, src string, cat *core.Catalog, rels []*core.Relation, convName string) error {
	if lang == "sql" {
		s, err := core.ExplainSQL(src, rels...)
		if err != nil {
			fmt.Printf("sql plan: not planner-compiled (%v)\n", err)
		} else {
			fmt.Println("sql plan:")
			fmt.Print(s)
		}
	}
	s, err := core.ExplainARC(col, cat, conventionsByName(convName))
	if err != nil {
		return err
	}
	fmt.Println("arc plan:")
	fmt.Print(s)
	return nil
}

func parseInput(lang, src string) (*core.Collection, *core.Sentence, error) {
	switch lang {
	case "arc":
		return core.ParseARC(src)
	case "sql":
		col, err := core.FromSQL(src)
		return col, nil, err
	case "trc":
		col, err := core.ParseTRC(src)
		return col, nil, err
	}
	return nil, nil, fmt.Errorf("unknown language %q", lang)
}

func render(col *core.Collection, out string) error {
	switch out {
	case "arc":
		fmt.Println(col.String())
	case "alt":
		fmt.Print(core.ALT(col))
	case "higraph":
		g, err := core.HigraphOf(col)
		if err != nil {
			return err
		}
		fmt.Print(g.ASCII())
	case "svg":
		g, err := core.HigraphOf(col)
		if err != nil {
			return err
		}
		fmt.Println(g.SVG())
	case "sql":
		s, err := core.ToSQL(col)
		if err != nil {
			return err
		}
		fmt.Println(s)
	case "sig":
		sig, err := core.PatternSignature(col)
		if err != nil {
			return err
		}
		cls, err := core.ClassifyAggregation(col)
		if err != nil {
			return err
		}
		fmt.Printf("signature: %s\naggregation pattern: %s\n", sig, cls)
	case "all":
		for _, o := range []string{"arc", "alt", "higraph", "sql", "sig"} {
			fmt.Printf("--- %s ---\n", o)
			if err := render(col, o); err != nil {
				fmt.Printf("(%v)\n", err)
			}
		}
	default:
		return fmt.Errorf("unknown output %q", out)
	}
	return nil
}

func runSentence(s *core.Sentence, dbPath, convName string, doEval bool) {
	fmt.Println("sentence:", s.String())
	if !doEval {
		return
	}
	cat, _, err := loadCatalog(dbPath)
	if err != nil {
		die(err)
	}
	ok, err := core.EvalSentence(s, cat, conventionsByName(convName))
	if err != nil {
		die(err)
	}
	fmt.Println("holds:", ok)
}

func conventionsByName(name string) convention.Conventions {
	switch name {
	case "sql":
		return convention.SQL()
	case "sqldistinct":
		return convention.SQLDistinct()
	case "souffle":
		return convention.Souffle()
	}
	return convention.SetLogic()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "arc:", err)
	os.Exit(1)
}

var _ = alt.PrintTree

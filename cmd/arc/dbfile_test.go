package main

import "testing"

func TestConventionsByName(t *testing.T) {
	if conventionsByName("souffle").String() != "set/2VL/sum∅=0" {
		t.Error("souffle preset")
	}
	if conventionsByName("sql").String() != "bag/3VL/sum∅=NULL" {
		t.Error("sql preset")
	}
	if conventionsByName("anything-else").String() != "set/3VL/sum∅=NULL" {
		t.Error("default preset")
	}
}

package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkEvalJoin/n=800-8         	       3	  884935 ns/op
BenchmarkEvalJoin/n=800-8         	       3	  900123 ns/op
BenchmarkDatalogFixpoint-8        	       3	 1029007 ns/op	 1230592 B/op	    9657 allocs/op
BenchmarkEvalGroupBy/n=5000-8     	       3	 1536111 ns/op
BenchmarkSQLParser-8              	   10000	    1234 ns/op
PASS
ok  	repro	1.234s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParseBench(t *testing.T) {
	snap := parseSample(t)
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// Repeated counts fold to their geomean, procs suffix stripped.
	v, ok := snap.Benchmarks["BenchmarkEvalJoin/n=800"]
	if !ok {
		t.Fatalf("missing EvalJoin: %v", snap.Benchmarks)
	}
	if v < 884935 || v > 900123 {
		t.Fatalf("geomean %v outside the repeated samples", v)
	}
}

func TestCompareOKAndThresholds(t *testing.T) {
	old := parseSample(t)
	// Identical snapshots: OK.
	report, verdict, err := compare(old, parseSample(t), "Join|Fixpoint|Group", 15, 50)
	if err != nil || verdict != verdictOK {
		t.Fatalf("identical compare: verdict %v err %v\n%s", verdict, err, report)
	}
	if strings.Contains(report, "SQLParser") {
		t.Fatalf("ungated benchmark leaked into the report:\n%s", report)
	}

	// +30%: warn but do not fail.
	warm := parseSample(t)
	for k := range warm.Benchmarks {
		warm.Benchmarks[k] *= 1.30
	}
	report, verdict, err = compare(old, warm, "Join|Fixpoint|Group", 15, 50)
	if err != nil || verdict != verdictWarn {
		t.Fatalf("+30%% compare: verdict %v err %v\n%s", verdict, err, report)
	}
}

// TestInjectedRegressionFails is the dry run the CI job repeats with the
// real baseline: a synthetic 2× slowdown must trip the fail gate.
func TestInjectedRegressionFails(t *testing.T) {
	old := parseSample(t)
	bad := parseSample(t)
	for k := range bad.Benchmarks {
		bad.Benchmarks[k] *= 2.0
	}
	report, verdict, err := compare(old, bad, "Join|Fixpoint|Group", 15, 50)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != verdictFail {
		t.Fatalf("injected 2× regression did not fail:\n%s", report)
	}
	if !strings.Contains(report, "FAIL: geomean") {
		t.Fatalf("report missing FAIL verdict:\n%s", report)
	}
}

// TestImprovementStaysGreen pins the direction of the gate: a speedup
// must never trip it.
func TestImprovementStaysGreen(t *testing.T) {
	old := parseSample(t)
	fast := parseSample(t)
	for k := range fast.Benchmarks {
		fast.Benchmarks[k] *= 0.2
	}
	_, verdict, err := compare(old, fast, "Join|Fixpoint|Group", 15, 50)
	if err != nil || verdict != verdictOK {
		t.Fatalf("5× speedup flagged: verdict %v err %v", verdict, err)
	}
}

// Command benchdiff is the benchmark-regression gate of CI: it parses
// `go test -bench` output into a JSON snapshot, compares a snapshot
// against the committed baseline with warn/fail thresholds on the
// geometric-mean ratio, and can inject a synthetic regression to prove
// the gate trips (the dry run CI performs).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=100ms . | benchdiff parse -out BENCH_<sha>.json
//	benchdiff compare -baseline bench/baseline.json -new BENCH_<sha>.json \
//	    [-match 'Join|Fixpoint|Group'] [-warn 15] [-fail 50]
//	benchdiff inject -in BENCH_<sha>.json -factor 2.0 -out regressed.json
//
// compare exits 1 when the geomean regression exceeds the fail
// threshold, 0 otherwise (warnings are printed but do not fail).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is one benchmark run: benchmark name → ns/op (geomean over
// repeated counts).
type Snapshot struct {
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "inject":
		cmdInject(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff parse|compare|inject [flags]")
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("out", "", "output JSON path (default stdout)")
	fs.Parse(args)
	snap, err := parseBench(os.Stdin)
	if err != nil {
		die(err)
	}
	if len(snap.Benchmarks) == 0 {
		die(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if err := writeSnapshot(snap, *out); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: parsed %d benchmarks\n", len(snap.Benchmarks))
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline snapshot JSON")
	newPath := fs.String("new", "", "new snapshot JSON")
	match := fs.String("match", "Join|Fixpoint|Group", "regexp selecting gated benchmarks")
	warn := fs.Float64("warn", 15, "warn when geomean regression exceeds this percent")
	fail := fs.Float64("fail", 50, "fail when geomean regression exceeds this percent")
	fs.Parse(args)
	if *baseline == "" || *newPath == "" {
		die(fmt.Errorf("compare needs -baseline and -new"))
	}
	old, err := readSnapshot(*baseline)
	if err != nil {
		die(err)
	}
	cur, err := readSnapshot(*newPath)
	if err != nil {
		die(err)
	}
	report, verdict, err := compare(old, cur, *match, *warn, *fail)
	if err != nil {
		die(err)
	}
	fmt.Print(report)
	if verdict == verdictFail {
		os.Exit(1)
	}
}

func cmdInject(args []string) {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	in := fs.String("in", "", "input snapshot JSON")
	out := fs.String("out", "", "output JSON path (default stdout)")
	factor := fs.Float64("factor", 2.0, "multiply every ns/op by this factor")
	fs.Parse(args)
	snap, err := readSnapshot(*in)
	if err != nil {
		die(err)
	}
	for k, v := range snap.Benchmarks {
		snap.Benchmarks[k] = v * *factor
	}
	if err := writeSnapshot(snap, *out); err != nil {
		die(err)
	}
}

// benchLine matches one `go test -bench` result line; the -<procs>
// suffix is stripped so snapshots compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench folds repeated counts of the same benchmark into their
// geometric mean.
func parseBench(r io.Reader) (*Snapshot, error) {
	logSum := map[string]float64{}
	n := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		logSum[m[1]] += math.Log(ns)
		n[m[1]]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	snap := &Snapshot{Benchmarks: map[string]float64{}}
	for name, s := range logSum {
		snap.Benchmarks[name] = math.Exp(s / float64(n[name]))
	}
	return snap, nil
}

type verdictKind int

const (
	verdictOK verdictKind = iota
	verdictWarn
	verdictFail
)

// compare renders a per-benchmark ratio table for the gated set and the
// geomean verdict against the warn/fail thresholds (in percent).
func compare(old, cur *Snapshot, match string, warnPct, failPct float64) (string, verdictKind, error) {
	re, err := regexp.Compile(match)
	if err != nil {
		return "", verdictOK, err
	}
	var names, gone, added []string
	for name := range old.Benchmarks {
		if !re.MatchString(name) {
			continue
		}
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		} else {
			gone = append(gone, name)
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok && re.MatchString(name) {
			added = append(added, name)
		}
	}
	if len(names) == 0 {
		return "", verdictOK, fmt.Errorf("no common benchmarks match %q", match)
	}
	sort.Strings(names)
	sort.Strings(gone)
	sort.Strings(added)
	var b strings.Builder
	// Coverage erosion must be visible: a renamed or deleted gated
	// benchmark silently leaving the geomean would look like green.
	for _, n := range gone {
		fmt.Fprintf(&b, "WARN: gated benchmark %s is in the baseline but not in the new run\n", n)
	}
	for _, n := range added {
		fmt.Fprintf(&b, "note: gated benchmark %s is new (not in the baseline)\n", n)
	}
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	logSum := 0.0
	for _, n := range names {
		ratio := cur.Benchmarks[n] / old.Benchmarks[n]
		logSum += math.Log(ratio)
		fmt.Fprintf(&b, "%-*s  %12.0f ns/op  → %12.0f ns/op  (%+.1f%%)\n",
			width, n, old.Benchmarks[n], cur.Benchmarks[n], (ratio-1)*100)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	pct := (geomean - 1) * 100
	verdict := verdictOK
	switch {
	case pct > failPct:
		verdict = verdictFail
		fmt.Fprintf(&b, "FAIL: geomean %+.1f%% exceeds the %.0f%% regression gate over %d benchmarks\n",
			pct, failPct, len(names))
	case pct > warnPct:
		verdict = verdictWarn
		fmt.Fprintf(&b, "WARN: geomean %+.1f%% exceeds the %.0f%% warning threshold over %d benchmarks\n",
			pct, warnPct, len(names))
	default:
		fmt.Fprintf(&b, "OK: geomean %+.1f%% over %d gated benchmarks\n", pct, len(names))
	}
	return b.String(), verdict, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

func writeSnapshot(snap *Snapshot, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

package repro

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/value"
	"repro/internal/workload"
)

// serverBenchDB builds the wire-throughput workload: a point-lookup
// table, a pair of joinable relations, and a chain for recursion.
func serverBenchDB() *engine.DB {
	r := relation.New("R", "A", "B")
	for i := 0; i < 1000; i++ {
		r.Add(i, i*10)
	}
	j1 := relation.New("J1", "X", "V")
	j2 := relation.New("J2", "Y", "W")
	for i := 0; i < 100; i++ {
		j1.Add(i, i+1000)
		j2.Add(i, i+2000)
	}
	p := workload.Chain(20)
	return engine.Open(r, j1, j2, p)
}

// BenchmarkServerThroughput measures end-to-end wire-protocol throughput:
// N concurrent client sessions each cycling a point lookup, a hash join,
// and a recursive transitive closure through prepared statements over
// one shared server. The per-statement metrics contract is asserted at
// the end of every run — a server that stops reporting is a failure,
// not just a regression.
func BenchmarkServerThroughput(b *testing.B) {
	for _, sessions := range []int{4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			srv := server.New(serverBenchDB(), server.Options{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()

			type sessionStmts struct {
				conn                   *client.Conn
				point, join, recursive *client.Stmt
			}
			conns := make([]sessionStmts, sessions)
			for i := range conns {
				c, err := client.Dial(ln.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				point, err := c.Prepare(client.LangSQL, "select R.A, R.B from R where R.A = $1")
				if err != nil {
					b.Fatal(err)
				}
				join, err := c.Prepare(client.LangSQL, "select J1.V, J2.W from J1, J2 where J1.X = J2.Y")
				if err != nil {
					b.Fatal(err)
				}
				recursive, err := c.Prepare(client.LangSQL,
					"with recursive A (s, t) as (select P.s, P.t from P union select P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A")
				if err != nil {
					b.Fatal(err)
				}
				conns[i] = sessionStmts{conn: c, point: point, join: join, recursive: recursive}
			}

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errc := make(chan error, sessions)
			for i := range conns {
				share := b.N / sessions
				if i < b.N%sessions {
					share++
				}
				wg.Add(1)
				go func(s sessionStmts, share, seed int) {
					defer wg.Done()
					for it := 0; it < share; it++ {
						var want int
						var rows [][]value.Value
						var err error
						switch it % 3 {
						case 0:
							rows, err = s.point.QueryAll(value.Int(int64((seed + it) % 1000)))
							want = 1
						case 1:
							rows, err = s.join.QueryAll()
							want = 100
						default:
							rows, err = s.recursive.QueryAll()
							want = 19 * 20 / 2 // TC of the 19-edge chain
						}
						if err != nil {
							errc <- err
							return
						}
						if len(rows) != want {
							errc <- fmt.Errorf("rows = %d, want %d", len(rows), want)
							return
						}
					}
				}(conns[i], share, i*131)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			snap := srv.Snapshot()
			if snap.QueriesExecuted < uint64(b.N) || snap.QueryCount < uint64(b.N) || snap.RowsStreamed == 0 {
				b.Fatalf("per-statement metrics missing: %+v", snap)
			}
		})
	}
}

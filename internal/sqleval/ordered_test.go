package sqleval

import (
	"testing"

	"repro/internal/relation"
)

func TestOrderBy(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(2, "x").Add(1, "y").Add(3, "z").Add(1, "w"))
	tuples, attrs, err := EvalOrderedString("select R.A, R.B from R order by A", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != "A" {
		t.Fatalf("attrs = %v", attrs)
	}
	if len(tuples) != 4 {
		t.Fatalf("tuples = %d", len(tuples))
	}
	for i := 1; i < len(tuples); i++ {
		if tuples[i][0].Less(tuples[i-1][0]) {
			t.Fatalf("not ascending at %d: %v", i, tuples)
		}
	}
	desc, _, err := EvalOrderedString("select R.A, R.B from R order by A desc, B desc", db)
	if err != nil {
		t.Fatal(err)
	}
	if desc[0][0].AsInt() != 3 || desc[len(desc)-1][1].AsString() != "w" {
		t.Fatalf("desc order wrong: %v", desc)
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 50))
	tuples, _, err := EvalOrderedString("select R.A, sum(R.B) sm from R group by R.A order by sm desc", db)
	if err != nil {
		t.Fatal(err)
	}
	if tuples[0][1].AsInt() != 50 {
		t.Fatalf("order by aggregate alias broken: %v", tuples)
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	db := NewDB(relation.New("R", "A").Add(1))
	if _, _, err := EvalOrderedString("select R.A from R order by Z", db); err == nil {
		t.Fatal("unknown ORDER BY column must error")
	}
}

func TestEvalIgnoresOrderBy(t *testing.T) {
	// Plain Eval treats ORDER BY as presentation and ignores it.
	db := NewDB(relation.New("R", "A").Add(2).Add(1))
	with, err := EvalString("select R.A from R order by A", db)
	if err != nil {
		t.Fatal(err)
	}
	without, err := EvalString("select R.A from R", db)
	if err != nil {
		t.Fatal(err)
	}
	if !with.EqualBag(without) {
		t.Fatal("Eval must ignore ORDER BY (relation content unchanged)")
	}
}

// Package sqleval is an independent reference evaluator for the SQL
// subset in internal/sql, with standard SQL semantics: bag multiplicities,
// three-valued logic over NULL, SQL NOT IN behaviour, correlated
// subqueries (scalar, EXISTS, IN, LATERAL), outer joins, GROUP BY /
// HAVING, and UNION [ALL]. The experiment harness uses it as the baseline
// that every ARC translation must agree with — it shares no evaluation
// code with internal/eval.
package sqleval

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// DB maps relation names to instances.
type DB map[string]*relation.Relation

// NewDB builds a DB from relations.
func NewDB(rels ...*relation.Relation) DB {
	db := DB{}
	for _, r := range rels {
		db[r.Name()] = r
	}
	return db
}

// Eval evaluates a parsed query against db.
func Eval(q sql.Query, db DB) (*relation.Relation, error) {
	e := &evaluator{db: db}
	return e.evalQuery(q, nil)
}

// EvalString parses and evaluates a SQL string.
func EvalString(src string, db DB) (*relation.Relation, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(q, db)
}

type evaluator struct {
	db DB
}

// frame is one correlation level: the aliases visible in a (sub)query.
type frame struct {
	parent *frame
	vals   map[string]map[string]value.Value
}

func (f *frame) lookup(table, col string) (value.Value, bool, error) {
	for cur := f; cur != nil; cur = cur.parent {
		if table != "" {
			if cols, ok := cur.vals[table]; ok {
				v, ok := cols[col]
				if !ok {
					return value.Null(), false, fmt.Errorf("table %q has no column %q", table, col)
				}
				return v, true, nil
			}
			continue
		}
		// Unqualified: the column must be unambiguous within this frame.
		var found value.Value
		hits := 0
		for _, cols := range cur.vals {
			if v, ok := cols[col]; ok {
				found = v
				hits++
			}
		}
		if hits > 1 {
			return value.Null(), false, fmt.Errorf("ambiguous column %q", col)
		}
		if hits == 1 {
			return found, true, nil
		}
	}
	return value.Null(), false, nil
}

// row is one intermediate tuple of a FROM clause with its bag weight.
type row struct {
	vals   map[string]map[string]value.Value
	weight int
}

func (r row) extend(alias string, cols map[string]value.Value, w int) row {
	nv := make(map[string]map[string]value.Value, len(r.vals)+1)
	for k, v := range r.vals {
		nv[k] = v
	}
	nv[alias] = cols
	return row{vals: nv, weight: r.weight * w}
}

func (e *evaluator) evalQuery(q sql.Query, outer *frame) (*relation.Relation, error) {
	switch x := q.(type) {
	case *sql.Union:
		l, err := e.evalQuery(x.Left, outer)
		if err != nil {
			return nil, err
		}
		r, err := e.evalQuery(x.Right, outer)
		if err != nil {
			return nil, err
		}
		if l.Arity() != r.Arity() {
			return nil, fmt.Errorf("UNION arity mismatch: %d vs %d", l.Arity(), r.Arity())
		}
		out := l.Clone()
		r.Each(func(t relation.Tuple, m int) { out.InsertMult(t, m) })
		if !x.All {
			out = out.Dedup()
		}
		return out, nil
	case *sql.Select:
		return e.evalSelect(x, outer)
	}
	return nil, fmt.Errorf("unknown query node %T", q)
}

func (e *evaluator) evalSelect(s *sql.Select, outer *frame) (*relation.Relation, error) {
	rows, err := e.fromRows(s.From, outer)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if s.Where != nil {
		var kept []row
		for _, r := range rows {
			tv, err := e.evalBool(s.Where, &frame{parent: outer, vals: r.vals}, nil)
			if err != nil {
				return nil, err
			}
			if tv.Holds() {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	// Output schema.
	attrs := make([]string, len(s.Items))
	seen := map[string]int{}
	for i, it := range s.Items {
		name := it.OutName(i)
		if n, dup := seen[name]; dup {
			seen[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		} else {
			seen[name] = 1
		}
		attrs[i] = name
	}
	out := relation.New("result", attrs...)

	grouped := len(s.GroupBy) > 0 || s.Having != nil || hasAggregate(s)
	if grouped {
		groups, err := e.groupRows(s, rows, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			fr := &frame{parent: outer, vals: g.rep.vals}
			if s.Having != nil {
				tv, err := e.evalBool(s.Having, fr, g)
				if err != nil {
					return nil, err
				}
				if !tv.Holds() {
					continue
				}
			}
			t := make(relation.Tuple, len(s.Items))
			for i, it := range s.Items {
				v, err := e.evalExpr(it.Expr, fr, g)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Insert(t)
		}
	} else {
		for _, r := range rows {
			fr := &frame{parent: outer, vals: r.vals}
			t := make(relation.Tuple, len(s.Items))
			for i, it := range s.Items {
				v, err := e.evalExpr(it.Expr, fr, nil)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.InsertMult(t, r.weight)
		}
	}
	if s.Distinct {
		out = out.Dedup()
	}
	return out, nil
}

// hasAggregate reports whether any select item or HAVING uses an
// aggregate function (triggering implicit grouping over the whole input).
func hasAggregate(s *sql.Select) bool {
	found := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncE:
			found = true
		case *sql.BinE:
			walk(x.L)
			walk(x.R)
		case *sql.Cmp:
			walk(x.L)
			walk(x.R)
		case *sql.AndE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.OrE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.NotE:
			walk(x.Kid)
		case *sql.IsNullE:
			walk(x.Arg)
		}
	}
	for _, it := range s.Items {
		walk(it.Expr)
	}
	if s.Having != nil {
		walk(s.Having)
	}
	return found
}

// groupCtx is one GROUP BY partition.
type groupCtx struct {
	rows []row
	rep  row
}

func (e *evaluator) groupRows(s *sql.Select, rows []row, outer *frame) ([]*groupCtx, error) {
	if len(s.GroupBy) == 0 {
		// Implicit single group — present even over zero rows (the SQL
		// behaviour that makes COUNT-bug version 1 return a row).
		g := &groupCtx{rows: rows}
		if len(rows) > 0 {
			g.rep = rows[0]
		} else {
			g.rep = row{vals: map[string]map[string]value.Value{}, weight: 1}
		}
		return []*groupCtx{g}, nil
	}
	index := map[string]int{}
	var groups []*groupCtx
	for _, r := range rows {
		fr := &frame{parent: outer, vals: r.vals}
		key := ""
		for _, g := range s.GroupBy {
			v, err := e.evalExpr(g, fr, nil)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		if i, ok := index[key]; ok {
			groups[i].rows = append(groups[i].rows, r)
		} else {
			index[key] = len(groups)
			groups = append(groups, &groupCtx{rows: []row{r}, rep: r})
		}
	}
	return groups, nil
}

// fromRows enumerates the FROM clause (comma items cross-join).
func (e *evaluator) fromRows(refs []sql.TableRef, outer *frame) ([]row, error) {
	rows := []row{{vals: map[string]map[string]value.Value{}, weight: 1}}
	for _, ref := range refs {
		var err error
		rows, err = e.joinInto(rows, ref, outer)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func (e *evaluator) joinInto(rows []row, ref sql.TableRef, outer *frame) ([]row, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		rel := e.db[x.Name]
		if rel == nil {
			return nil, fmt.Errorf("unknown table %q", x.Name)
		}
		return extendAll(rows, x.Binding(), rel), nil
	case *sql.SubqueryTable:
		if x.Lateral {
			var out []row
			for _, r := range rows {
				rel, err := e.evalQuery(x.Query, &frame{parent: outer, vals: r.vals})
				if err != nil {
					return nil, err
				}
				out = append(out, extendAll([]row{r}, x.Alias, rel)...)
			}
			return out, nil
		}
		rel, err := e.evalQuery(x.Query, outer)
		if err != nil {
			return nil, err
		}
		return extendAll(rows, x.Alias, rel), nil
	case *sql.JoinRef:
		left, err := e.joinInto(rows, x.Left, outer)
		if err != nil {
			return nil, err
		}
		return e.joinRight(left, x, outer)
	}
	return nil, fmt.Errorf("unknown table ref %T", ref)
}

// joinRight joins already-enumerated left rows with x.Right under x.Kind.
func (e *evaluator) joinRight(left []row, x *sql.JoinRef, outer *frame) ([]row, error) {
	switch x.Kind {
	case sql.JoinInner, sql.JoinCross, sql.JoinLeft:
		var out []row
		for _, l := range left {
			rights, err := e.joinInto([]row{l}, x.Right, outer)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, r := range rights {
				ok, err := e.onHolds(x.On, r, outer)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out = append(out, r)
				}
			}
			if x.Kind == sql.JoinLeft && !matched {
				ne, err := e.nullExtend(l, x.Right, outer)
				if err != nil {
					return nil, err
				}
				out = append(out, ne)
			}
		}
		return out, nil
	case sql.JoinFull:
		base := row{vals: map[string]map[string]value.Value{}, weight: 1}
		rights, err := e.joinInto([]row{base}, x.Right, outer)
		if err != nil {
			return nil, err
		}
		matchedR := make([]bool, len(rights))
		var out []row
		for _, l := range left {
			matched := false
			for ri, r := range rights {
				merged := l
				for a, cols := range r.vals {
					merged = merged.extend(a, cols, 1)
				}
				merged.weight = l.weight * r.weight
				ok, err := e.onHolds(x.On, merged, outer)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					matchedR[ri] = true
					out = append(out, merged)
				}
			}
			if !matched {
				ne, err := e.nullExtend(l, x.Right, outer)
				if err != nil {
					return nil, err
				}
				out = append(out, ne)
			}
		}
		for ri, r := range rights {
			if matchedR[ri] {
				continue
			}
			// Unmatched right rows: NULL-extend over the left subtree.
			ne, err := e.nullExtend(r, x.Left, outer)
			if err != nil {
				return nil, err
			}
			out = append(out, ne)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown join kind %v", x.Kind)
}

func (e *evaluator) onHolds(on sql.Expr, r row, outer *frame) (bool, error) {
	if on == nil {
		return true, nil
	}
	tv, err := e.evalBool(on, &frame{parent: outer, vals: r.vals}, nil)
	if err != nil {
		return false, err
	}
	return tv.Holds(), nil
}

// nullExtend adds all-NULL bindings for every alias under ref.
func (e *evaluator) nullExtend(r row, ref sql.TableRef, outer *frame) (row, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		rel := e.db[x.Name]
		if rel == nil {
			return row{}, fmt.Errorf("unknown table %q", x.Name)
		}
		cols := map[string]value.Value{}
		for _, a := range rel.Attrs() {
			cols[a] = value.Null()
		}
		return r.extend(x.Binding(), cols, 1), nil
	case *sql.SubqueryTable:
		rel, err := e.evalQuery(x.Query, &frame{parent: outer, vals: r.vals})
		if err != nil {
			return row{}, err
		}
		cols := map[string]value.Value{}
		for _, a := range rel.Attrs() {
			cols[a] = value.Null()
		}
		return r.extend(x.Alias, cols, 1), nil
	case *sql.JoinRef:
		l, err := e.nullExtend(r, x.Left, outer)
		if err != nil {
			return row{}, err
		}
		return e.nullExtend(l, x.Right, outer)
	}
	return row{}, fmt.Errorf("unknown table ref %T", ref)
}

func extendAll(rows []row, alias string, rel *relation.Relation) []row {
	attrs := rel.Attrs()
	var out []row
	for _, r := range rows {
		rel.Each(func(t relation.Tuple, mult int) {
			cols := make(map[string]value.Value, len(attrs))
			for i, a := range attrs {
				cols[a] = t[i]
			}
			out = append(out, r.extend(alias, cols, mult))
		})
	}
	return out
}

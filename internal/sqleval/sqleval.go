// Package sqleval is an independent reference evaluator for the SQL
// subset in internal/sql, with standard SQL semantics: bag multiplicities,
// three-valued logic over NULL, SQL NOT IN behaviour, correlated
// subqueries (scalar, EXISTS, IN, LATERAL), outer joins, GROUP BY /
// HAVING, and UNION [ALL]. The experiment harness uses it as the baseline
// that every ARC translation must agree with — it shares no evaluation
// code with internal/eval.
package sqleval

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// DB maps relation names to instances.
type DB map[string]*relation.Relation

// NewDB builds a DB from relations.
func NewDB(rels ...*relation.Relation) DB {
	db := DB{}
	for _, r := range rels {
		db[r.Name()] = r
	}
	return db
}

// PlanMode selects how Eval executes a query.
type PlanMode int

const (
	// PlanAuto compiles the query onto the internal/plan physical layer
	// when it fits the planner fragment, falling back to per-row
	// enumeration otherwise (the default).
	PlanAuto PlanMode = iota
	// PlanOff always uses the reference enumeration path — the baseline
	// side of the planner's differential verification.
	PlanOff
	// PlanForce requires the planner and surfaces its bailout reason
	// instead of falling back (for tests and EXPLAIN tooling).
	PlanForce
)

// DefaultPlanMode is the mode Eval uses; tests flip it to pin a path.
var DefaultPlanMode = PlanAuto

// Eval evaluates a parsed query against db under DefaultPlanMode.
func Eval(q sql.Query, db DB) (*relation.Relation, error) {
	return EvalMode(q, db, DefaultPlanMode)
}

// EvalMode evaluates a parsed query under an explicit plan mode.
func EvalMode(q sql.Query, db DB, mode PlanMode) (*relation.Relation, error) {
	return EvalWith(q, db, mode, nil, nil)
}

// EvalWith evaluates a parsed query with $n parameter bindings and an
// optional cancellation check (polled between query blocks and recursive
// rounds on the enumeration path, and in the pull loop on the planner
// path). It is the engine layer's entry point.
func EvalWith(q sql.Query, db DB, mode PlanMode, params []value.Value, check func() error) (*relation.Relation, error) {
	if mode != PlanOff {
		if p, err := plan.Compile(q, db); err == nil {
			return p.ExecuteWith(params, check)
		} else if mode == PlanForce {
			return nil, err
		}
	}
	e := &evaluator{db: db, params: params, check: check}
	return e.evalQuery(q, nil)
}

// Explain compiles the query through the planner and renders its
// physical plan, or reports why the query is outside the planner
// fragment (in which case Eval uses enumeration).
func Explain(q sql.Query, db DB) (string, error) {
	p, err := plan.Compile(q, db)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// EvalString parses and evaluates a SQL string.
func EvalString(src string, db DB) (*relation.Relation, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(q, db)
}

type evaluator struct {
	db     DB
	params []value.Value // $n bindings (1-based indexes into this slice + 1)
	check  func() error  // optional cancellation poll
}

// child creates an evaluator over a different database view that shares
// the parameter bindings and cancellation check.
func (e *evaluator) child(db DB) *evaluator {
	return &evaluator{db: db, params: e.params, check: e.check}
}

// poll surfaces a pending cancellation as an evaluation error.
func (e *evaluator) poll() error {
	if e.check == nil {
		return nil
	}
	return e.check()
}

// frame is one correlation level: the aliases visible in a (sub)query.
type frame struct {
	parent *frame
	vals   map[string]map[string]value.Value
}

func (f *frame) lookup(table, col string) (value.Value, bool, error) {
	for cur := f; cur != nil; cur = cur.parent {
		if table != "" {
			if cols, ok := cur.vals[table]; ok {
				v, ok := cols[col]
				if !ok {
					return value.Null(), false, fmt.Errorf("table %q has no column %q", table, col)
				}
				return v, true, nil
			}
			continue
		}
		// Unqualified: the column must be unambiguous within this frame.
		var found value.Value
		hits := 0
		for _, cols := range cur.vals {
			if v, ok := cols[col]; ok {
				found = v
				hits++
			}
		}
		if hits > 1 {
			return value.Null(), false, fmt.Errorf("ambiguous column %q", col)
		}
		if hits == 1 {
			return found, true, nil
		}
	}
	return value.Null(), false, nil
}

// row is one intermediate tuple of a FROM clause with its bag weight.
type row struct {
	vals   map[string]map[string]value.Value
	weight int
}

func (r row) extend(alias string, cols map[string]value.Value, w int) row {
	nv := make(map[string]map[string]value.Value, len(r.vals)+1)
	for k, v := range r.vals {
		nv[k] = v
	}
	nv[alias] = cols
	return row{vals: nv, weight: r.weight * w}
}

// MaxRecursiveIterations bounds the reference evaluator's WITH RECURSIVE
// working-table loop: a UNION ALL step over a cyclic instance keeps
// producing rows forever, and the cap turns that into a clear error. A
// variable so guard tests can tighten it.
var MaxRecursiveIterations = 100000

// evalWith evaluates a WITH query: each CTE materializes (in order, so
// later CTEs and the body see earlier ones) into a child scope's
// database; recursive CTEs run the SQL working-table loop.
func (e *evaluator) evalWith(w *sql.With, outer *frame) (*relation.Relation, error) {
	child := e.child(make(DB, len(e.db)+len(w.CTEs)))
	for k, v := range e.db {
		child.db[k] = v
	}
	for _, cte := range w.CTEs {
		if w.Recursive {
			base, step, all, ok, err := cte.SplitRecursive()
			if err != nil {
				return nil, err
			}
			if ok {
				// evalRecursiveCTE validates the declared columns and
				// returns the final name and attribute list.
				rel, err := child.evalRecursiveCTE(cte, base, step, all, outer)
				if err != nil {
					return nil, err
				}
				child.db[cte.Name] = rel
				continue
			}
		}
		rel, err := child.evalQuery(cte.Query, outer)
		if err != nil {
			return nil, err
		}
		attrs := rel.Attrs()
		if len(cte.Cols) > 0 {
			if len(cte.Cols) != len(attrs) {
				return nil, fmt.Errorf("CTE %q declares %d columns, its query returns %d", cte.Name, len(cte.Cols), len(attrs))
			}
			attrs = cte.Cols
		}
		child.db[cte.Name] = rel.Rename(cte.Name, attrs)
	}
	return child.evalQuery(w.Body, outer)
}

// evalRecursiveCTE is the reference iteration for one recursive CTE,
// with the SQL-standard working-table semantics: the result and working
// table start as the base term's output; each round re-evaluates the
// step with the CTE name bound to the working table only, and the new
// rows (for UNION: deduplicated and not already in the result) become
// the next working table. It shares no code with the planner's fixpoint
// engine — it is the baseline the differential suite compares against.
func (e *evaluator) evalRecursiveCTE(cte sql.CTE, baseQ, stepQ sql.Query, all bool, outer *frame) (*relation.Relation, error) {
	base, err := e.evalQuery(baseQ, outer)
	if err != nil {
		return nil, err
	}
	attrs := base.Attrs()
	if len(cte.Cols) > 0 {
		if len(cte.Cols) != len(attrs) {
			return nil, fmt.Errorf("CTE %q declares %d columns, its query returns %d", cte.Name, len(cte.Cols), len(attrs))
		}
		attrs = cte.Cols
	}
	distinct := !all
	result := relation.New(cte.Name, attrs...)
	work := relation.New(cte.Name, attrs...)
	base.Each(func(t relation.Tuple, m int) {
		if distinct {
			if !work.Contains(t) {
				work.Insert(t)
			}
			return
		}
		work.InsertMult(t, m)
	})
	work.Each(func(t relation.Tuple, m int) { result.InsertMult(t, m) })
	stepEv := e.child(make(DB, len(e.db)+1))
	for k, v := range e.db {
		stepEv.db[k] = v
	}
	for iter := 0; work.Distinct() > 0; iter++ {
		if err := e.poll(); err != nil {
			return nil, err
		}
		if iter >= MaxRecursiveIterations {
			hint := "UNION ALL recursion needs a bounded step"
			if distinct {
				hint = "the step keeps deriving new rows over a growing domain"
			}
			return nil, fmt.Errorf("recursive CTE %q did not converge within %d iterations (%s)", cte.Name, MaxRecursiveIterations, hint)
		}
		stepEv.db[cte.Name] = work
		out, err := stepEv.evalQuery(stepQ, outer)
		if err != nil {
			return nil, err
		}
		if out.Arity() != len(attrs) {
			return nil, fmt.Errorf("recursive CTE %q: step arity %d, want %d", cte.Name, out.Arity(), len(attrs))
		}
		next := relation.New(cte.Name, attrs...)
		out.Each(func(t relation.Tuple, m int) {
			if distinct {
				if result.Contains(t) || next.Contains(t) {
					return
				}
				next.Insert(t)
				return
			}
			next.InsertMult(t, m)
		})
		next.Each(func(t relation.Tuple, m int) { result.InsertMult(t, m) })
		work = next
	}
	return result, nil
}

func (e *evaluator) evalQuery(q sql.Query, outer *frame) (*relation.Relation, error) {
	if err := e.poll(); err != nil {
		return nil, err
	}
	switch x := q.(type) {
	case *sql.With:
		return e.evalWith(x, outer)
	case *sql.Union:
		l, err := e.evalQuery(x.Left, outer)
		if err != nil {
			return nil, err
		}
		r, err := e.evalQuery(x.Right, outer)
		if err != nil {
			return nil, err
		}
		if l.Arity() != r.Arity() {
			return nil, fmt.Errorf("UNION arity mismatch: %d vs %d", l.Arity(), r.Arity())
		}
		out := l.Clone()
		r.Each(func(t relation.Tuple, m int) { out.InsertMult(t, m) })
		if !x.All {
			out = out.Dedup()
		}
		return out, nil
	case *sql.Select:
		return e.evalSelect(x, outer)
	}
	return nil, fmt.Errorf("unknown query node %T", q)
}

func (e *evaluator) evalSelect(s *sql.Select, outer *frame) (*relation.Relation, error) {
	// Top-level equality conjuncts of WHERE feed index-probe pushdown
	// during FROM enumeration; WHERE still re-checks every conjunct, so
	// the probes only skip rows WHERE would reject.
	pd := pushdown{
		conds: eqConds(s.Where, nil),
		local: fromAliases(s.From, map[string]bool{}),
	}
	rows, err := e.fromRows(s.From, outer, pd)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if s.Where != nil {
		var kept []row
		for _, r := range rows {
			tv, err := e.evalBool(s.Where, &frame{parent: outer, vals: r.vals}, nil)
			if err != nil {
				return nil, err
			}
			if tv.Holds() {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	// Output schema.
	attrs := make([]string, len(s.Items))
	seen := map[string]int{}
	for i, it := range s.Items {
		name := it.OutName(i)
		if n, dup := seen[name]; dup {
			seen[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		} else {
			seen[name] = 1
		}
		attrs[i] = name
	}
	out := relation.New("result", attrs...)

	grouped := len(s.GroupBy) > 0 || s.Having != nil || hasAggregate(s)
	if grouped {
		groups, err := e.groupRows(s, rows, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			fr := &frame{parent: outer, vals: g.rep.vals}
			if s.Having != nil {
				tv, err := e.evalBool(s.Having, fr, g)
				if err != nil {
					return nil, err
				}
				if !tv.Holds() {
					continue
				}
			}
			t := make(relation.Tuple, len(s.Items))
			for i, it := range s.Items {
				v, err := e.evalExpr(it.Expr, fr, g)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Insert(t)
		}
	} else {
		for _, r := range rows {
			fr := &frame{parent: outer, vals: r.vals}
			t := make(relation.Tuple, len(s.Items))
			for i, it := range s.Items {
				v, err := e.evalExpr(it.Expr, fr, nil)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.InsertMult(t, r.weight)
		}
	}
	if s.Distinct {
		out = out.Dedup()
	}
	return out, nil
}

// hasAggregate reports whether any select item or HAVING uses an
// aggregate function (triggering implicit grouping over the whole input).
func hasAggregate(s *sql.Select) bool {
	found := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncE:
			found = true
		case *sql.BinE:
			walk(x.L)
			walk(x.R)
		case *sql.Cmp:
			walk(x.L)
			walk(x.R)
		case *sql.AndE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.OrE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.NotE:
			walk(x.Kid)
		case *sql.IsNullE:
			walk(x.Arg)
		}
	}
	for _, it := range s.Items {
		walk(it.Expr)
	}
	if s.Having != nil {
		walk(s.Having)
	}
	return found
}

// groupCtx is one GROUP BY partition.
type groupCtx struct {
	rows []row
	rep  row
}

func (e *evaluator) groupRows(s *sql.Select, rows []row, outer *frame) ([]*groupCtx, error) {
	if len(s.GroupBy) == 0 {
		// Implicit single group — present even over zero rows (the SQL
		// behaviour that makes COUNT-bug version 1 return a row).
		g := &groupCtx{rows: rows}
		if len(rows) > 0 {
			g.rep = rows[0]
		} else {
			g.rep = row{vals: map[string]map[string]value.Value{}, weight: 1}
		}
		return []*groupCtx{g}, nil
	}
	index := map[string]int{}
	var groups []*groupCtx
	for _, r := range rows {
		fr := &frame{parent: outer, vals: r.vals}
		key := ""
		for _, g := range s.GroupBy {
			v, err := e.evalExpr(g, fr, nil)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		if i, ok := index[key]; ok {
			groups[i].rows = append(groups[i].rows, r)
		} else {
			index[key] = len(groups)
			groups = append(groups, &groupCtx{rows: []row{r}, rep: r})
		}
	}
	return groups, nil
}

// pushdown carries the probe-pushdown context of one SELECT's FROM
// clause: the equality conjuncts usable as index probes and the set of
// every alias the clause binds (needed to detect references that would
// resolve to an outer correlation frame before their own table binds).
type pushdown struct {
	conds []*sql.Cmp
	local map[string]bool
}

// with returns the context with a different condition list (same FROM).
func (p pushdown) with(conds []*sql.Cmp) pushdown {
	return pushdown{conds: conds, local: p.local}
}

// fromAliases collects every alias bound by refs, including nested join
// subtrees.
func fromAliases(refs []sql.TableRef, dst map[string]bool) map[string]bool {
	for _, ref := range refs {
		switch x := ref.(type) {
		case *sql.BaseTable:
			dst[x.Binding()] = true
		case *sql.SubqueryTable:
			dst[x.Alias] = true
		case *sql.JoinRef:
			fromAliases([]sql.TableRef{x.Left, x.Right}, dst)
		}
	}
	return dst
}

// eqConds collects the top-level conjuncts of w that are plain equality
// comparisons — the candidates for index-probe pushdown.
func eqConds(w sql.Expr, dst []*sql.Cmp) []*sql.Cmp {
	switch n := w.(type) {
	case *sql.AndE:
		for _, k := range n.Kids {
			dst = eqConds(k, dst)
		}
	case *sql.Cmp:
		if n.Op == value.Eq {
			dst = append(dst, n)
		}
	}
	return dst
}

// fromRows enumerates the FROM clause (comma items cross-join). pd.conds
// are equality conjuncts guaranteed to be re-checked downstream (WHERE,
// or the ON of the join they came from); base-table enumeration uses them
// as hash-index probes when the other side is already evaluable.
func (e *evaluator) fromRows(refs []sql.TableRef, outer *frame, pd pushdown) ([]row, error) {
	rows := []row{{vals: map[string]map[string]value.Value{}, weight: 1}}
	for _, ref := range refs {
		var err error
		rows, err = e.joinInto(rows, ref, outer, pd)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func (e *evaluator) joinInto(rows []row, ref sql.TableRef, outer *frame, pd pushdown) ([]row, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		rel := e.db[x.Name]
		if rel == nil {
			return nil, fmt.Errorf("unknown table %q", x.Name)
		}
		return e.extendTable(rows, x.Binding(), rel, pd, outer), nil
	case *sql.SubqueryTable:
		if x.Lateral {
			var out []row
			for _, r := range rows {
				rel, err := e.evalQuery(x.Query, &frame{parent: outer, vals: r.vals})
				if err != nil {
					return nil, err
				}
				out = append(out, e.extendAll([]row{r}, x.Alias, rel)...)
			}
			return out, nil
		}
		rel, err := e.evalQuery(x.Query, outer)
		if err != nil {
			return nil, err
		}
		return e.extendAll(rows, x.Alias, rel), nil
	case *sql.JoinRef:
		// Per-side probe-safety policy, decided once here: ON equalities
		// filter an inner join's sides symmetrically (probe-safe for
		// both); a left join's right side may be ON-restricted (dropped
		// rows either fail ON — same matched outcome — or a WHERE
		// conjunct), but its preserved left side and both FULL sides must
		// not be, since their unmatched rows null-extend with no ON
		// re-check.
		leftPD, rightPD := pd, pd
		switch x.Kind {
		case sql.JoinInner, sql.JoinCross:
			withOn := pd.with(eqConds(x.On, append([]*sql.Cmp(nil), pd.conds...)))
			leftPD, rightPD = withOn, withOn
		case sql.JoinLeft:
			rightPD = pd.with(eqConds(x.On, append([]*sql.Cmp(nil), pd.conds...)))
		}
		left, err := e.joinInto(rows, x.Left, outer, leftPD)
		if err != nil {
			return nil, err
		}
		return e.joinRight(left, x, outer, rightPD)
	}
	return nil, fmt.Errorf("unknown table ref %T", ref)
}

// joinRight joins already-enumerated left rows with x.Right under x.Kind.
// rightPD carries the equality conjuncts probe-safe for the right side,
// as decided by joinInto.
func (e *evaluator) joinRight(left []row, x *sql.JoinRef, outer *frame, rightPD pushdown) ([]row, error) {
	switch x.Kind {
	case sql.JoinInner, sql.JoinCross, sql.JoinLeft:
		var out []row
		for _, l := range left {
			rights, err := e.joinInto([]row{l}, x.Right, outer, rightPD)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, r := range rights {
				ok, err := e.onHolds(x.On, r, outer)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out = append(out, r)
				}
			}
			if x.Kind == sql.JoinLeft && !matched {
				ne, err := e.nullExtend(l, x.Right, outer)
				if err != nil {
					return nil, err
				}
				out = append(out, ne)
			}
		}
		return out, nil
	case sql.JoinFull:
		base := row{vals: map[string]map[string]value.Value{}, weight: 1}
		rights, err := e.joinInto([]row{base}, x.Right, outer, rightPD)
		if err != nil {
			return nil, err
		}
		matchedR := make([]bool, len(rights))
		var out []row
		for _, l := range left {
			matched := false
			for ri, r := range rights {
				merged := l
				for a, cols := range r.vals {
					merged = merged.extend(a, cols, 1)
				}
				merged.weight = l.weight * r.weight
				ok, err := e.onHolds(x.On, merged, outer)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					matchedR[ri] = true
					out = append(out, merged)
				}
			}
			if !matched {
				ne, err := e.nullExtend(l, x.Right, outer)
				if err != nil {
					return nil, err
				}
				out = append(out, ne)
			}
		}
		for ri, r := range rights {
			if matchedR[ri] {
				continue
			}
			// Unmatched right rows: NULL-extend over the left subtree.
			ne, err := e.nullExtend(r, x.Left, outer)
			if err != nil {
				return nil, err
			}
			out = append(out, ne)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown join kind %v", x.Kind)
}

func (e *evaluator) onHolds(on sql.Expr, r row, outer *frame) (bool, error) {
	if on == nil {
		return true, nil
	}
	tv, err := e.evalBool(on, &frame{parent: outer, vals: r.vals}, nil)
	if err != nil {
		return false, err
	}
	return tv.Holds(), nil
}

// nullExtend adds all-NULL bindings for every alias under ref.
func (e *evaluator) nullExtend(r row, ref sql.TableRef, outer *frame) (row, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		rel := e.db[x.Name]
		if rel == nil {
			return row{}, fmt.Errorf("unknown table %q", x.Name)
		}
		cols := map[string]value.Value{}
		for _, a := range rel.Attrs() {
			cols[a] = value.Null()
		}
		return r.extend(x.Binding(), cols, 1), nil
	case *sql.SubqueryTable:
		rel, err := e.evalQuery(x.Query, &frame{parent: outer, vals: r.vals})
		if err != nil {
			return row{}, err
		}
		cols := map[string]value.Value{}
		for _, a := range rel.Attrs() {
			cols[a] = value.Null()
		}
		return r.extend(x.Alias, cols, 1), nil
	case *sql.JoinRef:
		l, err := e.nullExtend(r, x.Left, outer)
		if err != nil {
			return row{}, err
		}
		return e.nullExtend(l, x.Right, outer)
	}
	return row{}, fmt.Errorf("unknown table ref %T", ref)
}

// extendAll cross-joins rows with rel by full scan (no pushdown).
func (e *evaluator) extendAll(rows []row, alias string, rel *relation.Relation) []row {
	return e.extendWithPlans(rows, alias, rel, nil, pushdown{}, nil)
}

// probePlan is one pushdown condition usable against the table being
// extended: probe column col of the relation with the value of other.
// refs are other's column references, for the per-row resolvability
// check.
type probePlan struct {
	col   int
	other sql.Expr
	refs  []*sql.ColRef
}

// probePlans selects the conditions usable as index probes when extending
// with alias: one side must be a column qualified with alias, and the
// other side a simple expression (literals, column refs, arithmetic) that
// cannot resolve to the probed table itself — a reference that is
// qualified with alias, or unqualified but naming one of rel's columns,
// would change meaning once the alias is bound, so those are skipped.
func probePlans(alias string, rel *relation.Relation, conds []*sql.Cmp) []probePlan {
	var plans []probePlan
	for _, c := range conds {
		for _, sides := range [2][2]sql.Expr{{c.L, c.R}, {c.R, c.L}} {
			me, other := sides[0], sides[1]
			ref, ok := me.(*sql.ColRef)
			if !ok || ref.Table != alias {
				continue
			}
			col := rel.AttrIndex(ref.Column)
			if col < 0 || !simpleExprAvoiding(other, alias, rel) {
				continue
			}
			plans = append(plans, probePlan{col: col, other: other, refs: collectColRefs(other, nil)})
			break
		}
	}
	return plans
}

// simpleExprAvoiding reports whether x is a side-effect-free expression
// whose column references cannot resolve to the alias being probed.
func simpleExprAvoiding(x sql.Expr, alias string, rel *relation.Relation) bool {
	switch n := x.(type) {
	case *sql.Lit, *sql.Param:
		return true
	case *sql.ColRef:
		if n.Table == alias {
			return false
		}
		if n.Table == "" && rel.AttrIndex(n.Column) >= 0 {
			return false
		}
		return true
	case *sql.BinE:
		return simpleExprAvoiding(n.L, alias, rel) && simpleExprAvoiding(n.R, alias, rel)
	}
	return false
}

// collectColRefs gathers the column references of a probe expression.
func collectColRefs(x sql.Expr, dst []*sql.ColRef) []*sql.ColRef {
	switch n := x.(type) {
	case *sql.ColRef:
		dst = append(dst, n)
	case *sql.BinE:
		dst = collectColRefs(n.L, dst)
		dst = collectColRefs(n.R, dst)
	}
	return dst
}

// probeResolvable reports whether every column reference of a probe
// expression already resolves to its final binding in the current row:
// a reference qualified with an alias of this FROM clause that is not
// bound yet would fall through to an outer correlation frame (alias
// shadowing) and probe with the wrong value, and an unqualified
// reference must be bound at this level for the same reason.
func probeResolvable(refs []*sql.ColRef, vals map[string]map[string]value.Value, local map[string]bool) bool {
	for _, ref := range refs {
		if ref.Table != "" {
			if _, bound := vals[ref.Table]; bound {
				continue
			}
			if local[ref.Table] {
				return false // later table of this FROM; outer lookup would shadow it
			}
			continue // genuinely outer correlation
		}
		found := false
		for _, cols := range vals {
			if _, ok := cols[ref.Column]; ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// extendTable cross-joins rows with a base table, deriving the probe
// plans once for the call.
func (e *evaluator) extendTable(rows []row, alias string, rel *relation.Relation, pd pushdown, outer *frame) []row {
	return e.extendWithPlans(rows, alias, rel, probePlans(alias, rel, pd.conds), pd, outer)
}

// extendWithPlans cross-joins rows with rel. Pushdown plans whose probe
// expression evaluates in the current row (or an outer correlation frame)
// turn the scan into a hash-index probe; plans that do not resolve yet
// fall back to scanning, row by row. With no plans it is a pure scan.
func (e *evaluator) extendWithPlans(rows []row, alias string, rel *relation.Relation, plans []probePlan, pd pushdown, outer *frame) []row {
	attrs := rel.Attrs()
	var cols []int
	var vals []value.Value
	var out []row
	for _, r := range rows {
		cols, vals = cols[:0], vals[:0]
		if len(plans) > 0 {
			fr := &frame{parent: outer, vals: r.vals}
			for _, p := range plans {
				if !probeResolvable(p.refs, r.vals, pd.local) {
					continue // would resolve through a shadowed outer frame; scan covers it
				}
				v, err := e.evalExpr(p.other, fr, nil)
				if err != nil || !v.Indexable() {
					continue // not evaluable yet, or key identity too weak; scan covers it
				}
				cols = append(cols, p.col)
				vals = append(vals, v)
			}
		}
		seq := exec.Scan(rel)
		if len(cols) > 0 {
			seq = exec.Probe(rel, cols, vals)
		}
		for t, mult := range seq {
			rowCols := make(map[string]value.Value, len(attrs))
			for i, a := range attrs {
				rowCols[a] = t[i]
			}
			out = append(out, r.extend(alias, rowCols, mult))
		}
	}
	return out
}

package sqleval

import (
	"fmt"

	"repro/internal/sql"
	"repro/internal/value"
)

// evalExpr evaluates a scalar expression; grp is non-nil in grouped
// contexts (SELECT items / HAVING under GROUP BY or implicit grouping).
func (e *evaluator) evalExpr(x sql.Expr, fr *frame, grp *groupCtx) (value.Value, error) {
	switch n := x.(type) {
	case *sql.Lit:
		return n.Val, nil
	case *sql.Param:
		if n.Index < 1 || n.Index > len(e.params) {
			return value.Null(), fmt.Errorf("parameter $%d not bound (%d arguments)", n.Index, len(e.params))
		}
		return e.params[n.Index-1], nil
	case *sql.ColRef:
		v, ok, err := fr.lookup(n.Table, n.Column)
		if err != nil {
			return value.Null(), err
		}
		if !ok {
			return value.Null(), fmt.Errorf("unknown column %s", n)
		}
		return v, nil
	case *sql.BinE:
		l, err := e.evalExpr(n.L, fr, grp)
		if err != nil {
			return value.Null(), err
		}
		r, err := e.evalExpr(n.R, fr, grp)
		if err != nil {
			return value.Null(), err
		}
		var out value.Value
		var ok bool
		switch n.Op {
		case '+':
			out, ok = value.Add(l, r)
		case '-':
			out, ok = value.Sub(l, r)
		case '*':
			out, ok = value.Mul(l, r)
		case '/':
			out, ok = value.Div(l, r)
		default:
			return value.Null(), fmt.Errorf("unknown operator %q", string(n.Op))
		}
		if !ok {
			return value.Null(), fmt.Errorf("type error in %s", n)
		}
		return out, nil
	case *sql.FuncE:
		if grp == nil {
			return value.Null(), fmt.Errorf("aggregate %s outside a grouped context", n)
		}
		return e.evalAggregate(n, fr, grp)
	case *sql.Scalar:
		rel, err := e.evalQuery(n.Query, fr)
		if err != nil {
			return value.Null(), err
		}
		if rel.Arity() != 1 {
			return value.Null(), fmt.Errorf("scalar subquery returns %d columns", rel.Arity())
		}
		switch rel.Card() {
		case 0:
			return value.Null(), nil
		case 1:
			return rel.Tuples()[0][0], nil
		}
		return value.Null(), fmt.Errorf("scalar subquery returned %d rows", rel.Card())
	}
	// Boolean expressions used as scalars (rare; EXISTS in SELECT).
	tv, err := e.evalBool(x, fr, grp)
	if err != nil {
		return value.Null(), err
	}
	switch tv {
	case value.True:
		return value.Bool(true), nil
	case value.False:
		return value.Bool(false), nil
	}
	return value.Null(), nil
}

func (e *evaluator) evalAggregate(n *sql.FuncE, fr *frame, grp *groupCtx) (value.Value, error) {
	// count(*) counts rows with multiplicity.
	if n.Star {
		if n.Name != "count" {
			return value.Null(), fmt.Errorf("%s(*) is not valid", n.Name)
		}
		total := 0
		for _, r := range grp.rows {
			total += r.weight
		}
		return value.Int(int64(total)), nil
	}
	var sum value.Value
	haveAny := false
	count := 0
	distinct := map[string]bool{}
	var minV, maxV value.Value
	for _, r := range grp.rows {
		rf := &frame{parent: fr.parent, vals: r.vals}
		v, err := e.evalExpr(n.Arg, rf, nil)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if (n.Name == "sum" || n.Name == "avg") && !v.IsNumeric() {
			return value.Null(), fmt.Errorf("%s over non-numeric value %v", n.Name, v)
		}
		w := r.weight
		if n.Distinct {
			if distinct[v.Key()] {
				continue
			}
			w = 1
		}
		distinct[v.Key()] = true
		count += w
		contrib := v
		if w > 1 {
			c, ok := value.Mul(v, value.Int(int64(w)))
			if !ok {
				return value.Null(), fmt.Errorf("%s over non-numeric value %v", n.Name, v)
			}
			contrib = c
		}
		if !haveAny {
			sum, minV, maxV = contrib, v, v
			haveAny = true
			continue
		}
		if n.Name == "sum" || n.Name == "avg" {
			s, ok := value.Add(sum, contrib)
			if !ok {
				return value.Null(), fmt.Errorf("%s over non-numeric value %v", n.Name, v)
			}
			sum = s
		}
		if c, ok := v.Compare(minV); ok && c < 0 {
			minV = v
		}
		if c, ok := v.Compare(maxV); ok && c > 0 {
			maxV = v
		}
	}
	switch n.Name {
	case "count":
		return value.Int(int64(count)), nil
	case "countdistinct":
		return value.Int(int64(len(distinct))), nil
	case "sum":
		if !haveAny {
			return value.Null(), nil // SQL: SUM over zero rows is NULL
		}
		return sum, nil
	case "avg":
		if !haveAny {
			return value.Null(), nil
		}
		v, _ := value.Div(value.Float(sum.AsFloat()), value.Int(int64(count)))
		return v, nil
	case "min":
		if !haveAny {
			return value.Null(), nil
		}
		return minV, nil
	case "max":
		if !haveAny {
			return value.Null(), nil
		}
		return maxV, nil
	}
	return value.Null(), fmt.Errorf("unknown aggregate %q", n.Name)
}

// evalBool evaluates a boolean expression under three-valued logic.
func (e *evaluator) evalBool(x sql.Expr, fr *frame, grp *groupCtx) (value.TV, error) {
	switch n := x.(type) {
	case *sql.AndE:
		tv := value.True
		for _, k := range n.Kids {
			kt, err := e.evalBool(k, fr, grp)
			if err != nil {
				return value.False, err
			}
			tv = tv.And(kt)
			if tv == value.False {
				return value.False, nil
			}
		}
		return tv, nil
	case *sql.OrE:
		tv := value.False
		for _, k := range n.Kids {
			kt, err := e.evalBool(k, fr, grp)
			if err != nil {
				return value.False, err
			}
			tv = tv.Or(kt)
			if tv == value.True {
				return value.True, nil
			}
		}
		return tv, nil
	case *sql.NotE:
		kt, err := e.evalBool(n.Kid, fr, grp)
		if err != nil {
			return value.False, err
		}
		return kt.Not(), nil
	case *sql.Cmp:
		l, err := e.evalExpr(n.L, fr, grp)
		if err != nil {
			return value.False, err
		}
		r, err := e.evalExpr(n.R, fr, grp)
		if err != nil {
			return value.False, err
		}
		return n.Op.Apply(l, r), nil
	case *sql.IsNullE:
		v, err := e.evalExpr(n.Arg, fr, grp)
		if err != nil {
			return value.False, err
		}
		return value.TVFromBool(v.IsNull() != n.Negated), nil
	case *sql.Exists:
		rel, err := e.evalQuery(n.Query, fr)
		if err != nil {
			return value.False, err
		}
		tv := value.TVFromBool(rel.Card() > 0)
		if n.Negated {
			tv = tv.Not()
		}
		return tv, nil
	case *sql.InE:
		return e.evalIn(n, fr, grp)
	case *sql.Lit:
		if n.Val.Kind() == value.KindBool {
			return value.TVFromBool(n.Val.AsBool()), nil
		}
		if n.Val.IsNull() {
			return value.Unknown, nil
		}
		return value.False, fmt.Errorf("non-boolean literal %s in boolean context", n.Val)
	}
	return value.False, fmt.Errorf("cannot evaluate %T as boolean", x)
}

// evalIn implements SQL's three-valued [NOT] IN semantics: a match gives
// True; otherwise a NULL on either side gives Unknown — which is what
// empties the result of Fig 11a when S contains a NULL.
func (e *evaluator) evalIn(n *sql.InE, fr *frame, grp *groupCtx) (value.TV, error) {
	l, err := e.evalExpr(n.Left, fr, grp)
	if err != nil {
		return value.False, err
	}
	rel, err := e.evalQuery(n.Query, fr)
	if err != nil {
		return value.False, err
	}
	if rel.Arity() != 1 {
		return value.False, fmt.Errorf("IN subquery returns %d columns", rel.Arity())
	}
	tv := value.False
	for _, t := range rel.Tuples() {
		tv = tv.Or(value.Eq.Apply(l, t[0]))
		if tv == value.True {
			break
		}
	}
	if n.Negated {
		tv = tv.Not()
	}
	return tv, nil
}

package sqleval

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func db1() DB {
	return NewDB(
		relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30),
		relation.New("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0),
	)
}

func mustEval(t *testing.T, src string, db DB) *relation.Relation {
	t.Helper()
	rel, err := EvalString(src, db)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return rel
}

func wantSet(t *testing.T, got *relation.Relation, want *relation.Relation) {
	t.Helper()
	if !got.EqualSet(want) {
		t.Fatalf("set mismatch:\ngot\n%s\nwant\n%s", got, want)
	}
}

func TestSelectProjectJoin(t *testing.T) {
	got := mustEval(t, "select R.A from R, S where R.B = S.B and S.C = 0", db1())
	wantSet(t, got, relation.New("W", "A").Add(1).Add(3))
}

func TestSelectNoFrom(t *testing.T) {
	got := mustEval(t, "select 1", NewDB())
	if got.Card() != 1 || got.Tuples()[0][0].AsInt() != 1 {
		t.Fatalf("select 1 = %s", got)
	}
}

func TestBagSemantics(t *testing.T) {
	db := NewDB(relation.New("R", "A").Add(1).Add(1).Add(2))
	got := mustEval(t, "select R.A from R", db)
	if got.Mult(relation.Tuple{value.Int(1)}) != 2 {
		t.Fatalf("bag multiplicity lost:\n%s", got)
	}
	d := mustEval(t, "select distinct R.A from R", db)
	if d.Card() != 2 {
		t.Fatalf("DISTINCT broken:\n%s", d)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5))
	got := mustEval(t, "select R.A, sum(R.B) sm, count(R.B) ct from R group by R.A", db)
	want := relation.New("W", "A", "sm", "ct").Add(1, 30, 2).Add(2, 5, 1)
	wantSet(t, got, want)
}

func TestImplicitGrouping(t *testing.T) {
	db := NewDB(relation.New("R", "A").Add(1).Add(2))
	got := mustEval(t, "select count(*) c, sum(R.A) s from R", db)
	wantSet(t, got, relation.New("W", "c", "s").Add(2, 3))
	// Over an empty table: one row, count 0, sum NULL.
	empty := NewDB(relation.New("R", "A"))
	got0 := mustEval(t, "select count(*) c, sum(R.A) s from R", empty)
	wantSet(t, got0, relation.New("W", "c", "s").Add(0, nil))
}

func TestHaving(t *testing.T) {
	db := NewDB(
		relation.New("R", "empl", "dept").Add("e1", "d1").Add("e2", "d1").Add("e3", "d2"),
		relation.New("S", "empl", "sal").Add("e1", 60).Add("e2", 70).Add("e3", 40),
	)
	got := mustEval(t, `select R.dept, avg(S.sal) av from R, S
		where R.empl = S.empl group by R.dept having sum(S.sal) > 100`, db)
	wantSet(t, got, relation.New("W", "dept", "av").Add("d1", 65.0))
}

func TestScalarSubquery(t *testing.T) {
	db := NewDB(
		relation.New("R", "id", "q").Add(9, 0),
		relation.New("S", "id", "d"),
	)
	// COUNT-bug version 1: must return 9.
	got := mustEval(t, `select R.id from R
		where R.q = (select count(S.d) from S where S.id = R.id)`, db)
	wantSet(t, got, relation.New("W", "id").Add(9))
	// Version 2: empty.
	got2 := mustEval(t, `select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`, db)
	if got2.Card() != 0 {
		t.Fatalf("COUNT-bug version 2 should be empty:\n%s", got2)
	}
	// Version 3: left join fixes it.
	got3 := mustEval(t, `select R.id from R,
		(select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X
		where R.q = X.ct and R.id = X.id`, db)
	wantSet(t, got3, relation.New("W", "id").Add(9))
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	db := NewDB(
		relation.New("R", "A").Add(1),
		relation.New("S", "A", "B"),
	)
	got := mustEval(t, "select R.A, (select sum(S.B) from S where S.A = R.A) sm from R", db)
	wantSet(t, got, relation.New("W", "A", "sm").Add(1, nil))
}

func TestExistsAndNotExists(t *testing.T) {
	got := mustEval(t, `select R.A from R where exists (select 1 from S where S.B = R.B and S.C = 0)`, db1())
	wantSet(t, got, relation.New("W", "A").Add(1).Add(3))
	got2 := mustEval(t, `select R.A from R where not exists (select 1 from S where S.B = R.B and S.C = 0)`, db1())
	wantSet(t, got2, relation.New("W", "A").Add(2))
}

func TestNotInNullBehaviour(t *testing.T) {
	db := NewDB(
		relation.New("R", "A").Add(1).Add(2).Add(3),
		relation.New("S", "A").Add(2),
	)
	got := mustEval(t, "select R.A from R where R.A not in (select S.A from S)", db)
	wantSet(t, got, relation.New("W", "A").Add(1).Add(3))
	// Fig 11: any NULL in S empties the NOT IN result.
	dbNull := NewDB(
		relation.New("R", "A").Add(1).Add(2).Add(3),
		relation.New("S", "A").Add(2).Add(nil),
	)
	gotNull := mustEval(t, "select R.A from R where R.A not in (select S.A from S)", dbNull)
	if gotNull.Card() != 0 {
		t.Fatalf("NOT IN with NULL should be empty:\n%s", gotNull)
	}
	// The NOT EXISTS rewrite (Fig 11b) agrees.
	rewrite := `select R.A from R where not exists
		(select 1 from S where S.A = R.A or S.A is null or R.A is null)`
	if g := mustEval(t, rewrite, dbNull); g.Card() != 0 {
		t.Fatalf("NOT EXISTS rewrite mismatch:\n%s", g)
	}
	wantSet(t, mustEval(t, rewrite, db), got)
}

func TestLeftJoin(t *testing.T) {
	db := NewDB(
		relation.New("R", "m", "y", "h").Add("r1", 1, 11).Add("r2", 2, 11).Add("r3", 3, 99),
		relation.New("S", "y", "n", "q").Add(1, "n1", 0).Add(3, "n3", 0),
	)
	// Fig 12a: the complicated ON condition.
	got := mustEval(t, `select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)`, db)
	want := relation.New("W", "m", "n").Add("r1", "n1").Add("r2", nil).Add("r3", nil)
	wantSet(t, got, want)
}

func TestFullJoin(t *testing.T) {
	db := NewDB(
		relation.New("R", "a").Add(1).Add(2),
		relation.New("S", "b").Add(2).Add(3),
	)
	got := mustEval(t, "select R.a, S.b from R full join S on R.a = S.b", db)
	want := relation.New("W", "a", "b").Add(1, nil).Add(2, 2).Add(nil, 3)
	wantSet(t, got, want)
}

func TestLateralJoin(t *testing.T) {
	db := NewDB(
		relation.New("X", "A").Add(1).Add(5),
		relation.New("Y", "A").Add(3).Add(7),
	)
	// Fig 3a.
	got := mustEval(t, `select x.A, z.B from X as x
		join lateral (select y.A as B from Y as y where x.A < y.A) as z on true`, db)
	want := relation.New("W", "A", "B").Add(1, 3).Add(1, 7).Add(5, 7)
	wantSet(t, got, want)
}

func TestLateralVsScalarEquivalence(t *testing.T) {
	// Fig 5a ≡ Fig 5b on duplicate-free input.
	db := NewDB(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5))
	scalar := mustEval(t, `select distinct R.A,
		(select sum(R2.B) sm from R R2 where R2.A = R.A) from R`, db)
	lateral := mustEval(t, `select distinct R.A, X.sm from R join lateral
		(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true`, db)
	wantSet(t, scalar, lateral)
}

func TestFig13BagCounterexample(t *testing.T) {
	// Fig 13: with duplicates in R, the scalar (a) and lateral (b) forms
	// agree under bags, but the LEFT JOIN + GROUP BY form (c) collapses
	// duplicate R rows.
	db := NewDB(
		relation.New("R", "A").Add(1).Add(1), // duplicate outer tuple
		relation.New("S", "A", "B").Add(0, 7),
	)
	scalar := mustEval(t, `select R.A, (select sum(S.B) sm from S where S.A < R.A) from R`, db)
	lateral := mustEval(t, `select R.A, X.sm from R join lateral
		(select sum(S.B) sm from S where S.A < R.A) X on true`, db)
	leftJoin := mustEval(t, `select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A`, db)
	if !scalar.EqualBag(lateral) {
		t.Fatalf("scalar vs lateral bag mismatch:\n%s\n%s", scalar, lateral)
	}
	if scalar.EqualBag(leftJoin) {
		t.Fatalf("LEFT JOIN rewrite should differ under bags:\n%s\n%s", scalar, leftJoin)
	}
	if scalar.Card() != 2 || leftJoin.Card() != 1 {
		t.Fatalf("cards: scalar=%d leftJoin=%d", scalar.Card(), leftJoin.Card())
	}
}

func TestUnion(t *testing.T) {
	db := NewDB(
		relation.New("R", "A").Add(1).Add(2),
		relation.New("S", "A").Add(2).Add(3),
	)
	got := mustEval(t, "select R.A from R union select S.A from S", db)
	wantSet(t, got, relation.New("W", "A").Add(1).Add(2).Add(3))
	all := mustEval(t, "select R.A from R union all select S.A from S", db)
	if all.Card() != 4 {
		t.Fatalf("UNION ALL card = %d", all.Card())
	}
}

func TestUniqueSetQuery(t *testing.T) {
	// Fig 17 over the classic beers instance: d1 and d2 like the same
	// set; d3 likes a unique set.
	db := NewDB(relation.New("Likes", "drinker", "beer").
		Add("d1", "b1").Add("d1", "b2").
		Add("d2", "b1").Add("d2", "b2").
		Add("d3", "b1"))
	src := `select distinct L1.drinker from Likes L1
	where not exists
	  (select 1 from Likes L2
	   where L1.drinker <> L2.drinker
	   and not exists
	     (select 1 from Likes L3
	      where L3.drinker = L2.drinker
	      and not exists
	        (select 1 from Likes L4
	         where L4.drinker = L1.drinker and L4.beer = L3.beer))
	   and not exists
	     (select 1 from Likes L5
	      where L5.drinker = L1.drinker
	      and not exists
	        (select 1 from Likes L6
	         where L6.drinker = L2.drinker and L6.beer = L5.beer)))`
	got := mustEval(t, src, db)
	wantSet(t, got, relation.New("W", "drinker").Add("d3"))
}

func TestBooleanExistsAsScalar(t *testing.T) {
	// Fig 9a: select exists(...) returns a unary boolean relation.
	db := NewDB(
		relation.New("R", "id", "q").Add(1, 2),
		relation.New("S", "id", "d").Add(1, "a").Add(1, "b"),
	)
	got := mustEval(t, `select exists (select 1 from R where R.q <=
		(select count(S.d) from S where S.id = R.id)) as b`, db)
	wantSet(t, got, relation.New("W", "b").Add(true))
}

func TestArithmeticInWhere(t *testing.T) {
	db := NewDB(
		relation.New("R", "A", "B").Add("x", 10).Add("y", 3),
		relation.New("S", "B").Add(4),
		relation.New("T", "B").Add(5),
	)
	got := mustEval(t, "select R.A from R, S, T where R.B - S.B > T.B", db)
	wantSet(t, got, relation.New("W", "A").Add("x"))
}

func TestThreeValuedWhere(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(1, nil).Add(2, 5))
	got := mustEval(t, "select R.A from R where R.B > 0", db)
	wantSet(t, got, relation.New("W", "A").Add(2))
	// NOT over Unknown stays Unknown → filtered.
	got2 := mustEval(t, "select R.A from R where not (R.B > 0)", db)
	if got2.Card() != 0 {
		t.Fatalf("NOT Unknown must filter:\n%s", got2)
	}
}

func TestDuplicateOutputNames(t *testing.T) {
	db := NewDB(relation.New("R", "A").Add(1))
	got := mustEval(t, "select R.A, R.A from R", db)
	attrs := got.Attrs()
	if attrs[0] == attrs[1] {
		t.Fatalf("duplicate output columns not renamed: %v", attrs)
	}
}

func TestErrors(t *testing.T) {
	db := NewDB(relation.New("R", "A").Add(1).Add(2))
	cases := map[string]string{
		"select Z.A from Z": "unknown table",
		"select R.Z from R": "no column",
		"select sum(R.A) from R group by R.A having Q.A = 1":      "unknown",
		"select (select R.A from R) from R":                       "2 rows",
		"select R.A from R where R.A in (select R.A, R.A from R)": "columns",
	}
	for src, want := range cases {
		_, err := EvalString(src, db)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: got %v, want error containing %q", src, err, want)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(1, 5).Add(1, 5).Add(1, 7))
	got := mustEval(t, "select R.A, count(distinct R.B) cd from R group by R.A", db)
	wantSet(t, got, relation.New("W", "A", "cd").Add(1, 2))
}

func TestGroupByNullsTogether(t *testing.T) {
	db := NewDB(relation.New("R", "A", "B").Add(nil, 1).Add(nil, 2).Add(1, 3))
	got := mustEval(t, "select R.A, sum(R.B) s from R group by R.A", db)
	wantSet(t, got, relation.New("W", "A", "s").Add(nil, 3).Add(1, 3))
}

func TestSumOverStringsErrors(t *testing.T) {
	db := NewDB(relation.New("R", "s").Add("x"))
	if _, err := EvalString("select sum(R.s) from R", db); err == nil ||
		!strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("want non-numeric error, got %v", err)
	}
}

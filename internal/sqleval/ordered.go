package sqleval

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/sql"
)

// EvalOrdered evaluates a query and applies its ORDER BY as a
// presentation step, returning the output tuples in order (ties keep the
// canonical relation order). The paper places sorted lists outside the
// flat relational core (Section 5); accordingly, ordering here is a
// property of the *rendering* of a result, not of the relation — Eval
// ignores ORDER BY, EvalOrdered honours it.
func EvalOrdered(q sql.Query, db DB) ([]relation.Tuple, []string, error) {
	rel, err := Eval(q, db)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := q.(*sql.Select)
	var order []sql.OrderItem
	if ok {
		order = sel.OrderBy
	}
	tuples := expandBag(rel)
	if len(order) == 0 {
		return tuples, rel.Attrs(), nil
	}
	cols := make([]int, len(order))
	for i, o := range order {
		c := rel.AttrIndex(o.Col)
		if c < 0 {
			return nil, nil, fmt.Errorf("ORDER BY column %q is not in the output", o.Col)
		}
		cols[i] = c
	}
	sort.SliceStable(tuples, func(i, j int) bool {
		for k, c := range cols {
			a, b := tuples[i][c], tuples[j][c]
			if a.Less(b) {
				return !order[k].Desc
			}
			if b.Less(a) {
				return order[k].Desc
			}
		}
		return false
	})
	return tuples, rel.Attrs(), nil
}

// EvalOrderedString parses and evaluates with ordering.
func EvalOrderedString(src string, db DB) ([]relation.Tuple, []string, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return EvalOrdered(q, db)
}

func expandBag(rel *relation.Relation) []relation.Tuple {
	var out []relation.Tuple
	rel.Each(func(t relation.Tuple, m int) {
		for i := 0; i < m; i++ {
			out = append(out, t)
		}
	})
	return out
}

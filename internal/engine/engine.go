// Package engine is the unified front door to the three query languages
// the paper unifies: SQL, ARC comprehensions, and Datalog all prepare and
// execute through one API, mirroring database/sql's Prepare/Query/Rows
// contract — now including the write path:
//
//	db := engine.Open(rels...)
//	stmt, err := db.Prepare(engine.LangSQL, "select R.A from R where R.B = $1")
//	rows, err := stmt.Query(ctx, 7)
//	for rows.Next() { rows.Scan(&a) }
//	rows.Close()
//
//	res, err := db.Exec(ctx, engine.LangSQL, "insert into R values ($1, $2)", 1, 10)
//	tx, err := db.Begin(ctx)
//	tx.Exec(ctx, engine.LangSQL, "delete from R where R.B > 5")
//	err = tx.Commit()
//
// Prepare parses, validates, and plans ONCE; Query binds arguments and
// executes without re-planning — SQL placeholders ($1, $2, …) are
// plan-time leaves resolved at bind time, and ARC/Datalog statements bind
// named input relations through the evaluator override / EDB slots.
// Query returns a streaming cursor driven directly off the internal/exec
// iterator tree (no forced materialization for planner-compiled SQL),
// with context cancellation checked in the operator pull loop and in
// fixpoint rounds.
//
// Concurrency and isolation contract: all data lives in a
// relation.Store — an MVCC sequence of immutable generation-tagged
// snapshots. Every Query runs against one snapshot end to end, so a
// cursor opened before a concurrent committed write streams its
// pre-write snapshot to completion. Writes go through Exec (autocommit,
// retried on conflict) or an explicit Tx (first-committer-wins; see
// Begin). A DB and its prepared statements are safe for concurrent use;
// the statement cache revalidates against the store's single commit
// generation, so a Prepare after any commit re-prepares against the new
// snapshot while a held *Stmt keeps its own.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Lang selects the query language of a prepared statement.
type Lang int

const (
	// LangSQL prepares SQL text with $n placeholders.
	LangSQL Lang = iota
	// LangARC prepares an ARC comprehension.
	LangARC
	// LangDatalog prepares a Datalog program (the statement returns the
	// last rule's head predicate unless PrepareDatalog names another).
	LangDatalog
)

// String names the language.
func (l Lang) String() string {
	switch l {
	case LangSQL:
		return "sql"
	case LangARC:
		return "arc"
	case LangDatalog:
		return "datalog"
	}
	return fmt.Sprintf("lang(%d)", int(l))
}

// DB is one engine instance: the versioned store every statement
// prepared from it runs against, the catalog template (views, abstract
// relations, externals) projected onto each snapshot, and the
// generation-versioned statement cache.
type DB struct {
	store *relation.Store

	// durable is the storage backend journaling this DB's commits, nil
	// for an in-memory DB (see durable.go).
	durable *storage.Manager

	mu sync.RWMutex
	// catTmpl carries the non-base catalog entries (views, abstract
	// relations, externals); base relations live in the store and are
	// projected in per snapshot via catalogAt.
	catTmpl *eval.Catalog
	conv    convention.Conventions

	cache *stmtCache
	// Prepare-path counters, the statement-cache capacity-planning
	// signal: prepares counts every Prepare (one-shot Query included),
	// cacheHits the subset served from the LRU without recompiling.
	prepares  atomic.Uint64
	cacheHits atomic.Uint64

	// Exec-path counters (see DBStats): per-kind execution counts, the
	// write path's conflict/retry totals, and transaction boundaries.
	queryExecs      atomic.Uint64
	dmlExecs        atomic.Uint64
	ddlExecs        atomic.Uint64
	conflicts       atomic.Uint64
	conflictRetries atomic.Uint64
	txBegins        atomic.Uint64
	txCommits       atomic.Uint64
	txRollbacks     atomic.Uint64
	slowQueries     atomic.Uint64

	// slow is the installed slow-query log, nil when disabled (the
	// per-execution cost of the disabled path is one pointer load).
	slow atomic.Pointer[slowLog]

	// catMu guards the per-generation memoized snapshot catalog.
	catMu    sync.Mutex
	catGen   uint64
	catCache *eval.Catalog
}

// DBStats is a point-in-time snapshot of the DB's execution counters:
// the prepare path (statement-cache capacity planning), the per-kind
// execution counts, the write path's conflict behaviour, transaction
// boundaries, and the underlying store's commit-path counters.
type DBStats struct {
	Prepares       uint64 // Prepare calls (including one-shot Query/QueryAll)
	CacheHits      uint64 // Prepares served from the statement cache
	CacheLen       int    // statements currently cached
	CacheEvictions uint64 // statements evicted past the LRU capacity

	QueryExecs uint64 // query executions (Query/QueryAll/QueryTraced)
	DMLExecs   uint64 // DML executions (INSERT/DELETE/fact ops)
	DDLExecs   uint64 // DDL executions (CREATE/DROP TABLE)

	Conflicts       uint64 // first-committer-wins commit rejections seen by the engine
	ConflictRetries uint64 // autocommit executions retried after a conflict

	TxBegins    uint64 // transactions opened
	TxCommits   uint64 // transactions committed successfully
	TxRollbacks uint64 // transactions rolled back

	SlowQueries uint64 // statements recorded by the slow-query log

	// Store is the MVCC store's own commit-path view: generation,
	// published commits, and conflict rejections (which include
	// conflicts raised against write sets the engine retried).
	Store relation.StoreStats

	// Storage is the durable backend's counter snapshot (WAL appends,
	// checkpoints, block cache, recovery time), nil for an in-memory DB.
	Storage *storage.Stats
}

// Stats snapshots the execution counters. Cache hit rate is
// CacheHits/Prepares; servers export the whole block for capacity
// planning and conflict monitoring.
func (db *DB) Stats() DBStats {
	var st *storage.Stats
	if db.durable != nil {
		s := db.durable.Stats()
		st = &s
	}
	return DBStats{
		Prepares:        db.prepares.Load(),
		CacheHits:       db.cacheHits.Load(),
		CacheLen:        db.cache.Len(),
		CacheEvictions:  db.cache.Evictions(),
		QueryExecs:      db.queryExecs.Load(),
		DMLExecs:        db.dmlExecs.Load(),
		DDLExecs:        db.ddlExecs.Load(),
		Conflicts:       db.conflicts.Load(),
		ConflictRetries: db.conflictRetries.Load(),
		TxBegins:        db.txBegins.Load(),
		TxCommits:       db.txCommits.Load(),
		TxRollbacks:     db.txRollbacks.Load(),
		SlowQueries:     db.slowQueries.Load(),
		Store:           db.store.Stats(),
		Storage:         st,
	}
}

// DefaultStmtCacheSize bounds the per-DB prepared-statement LRU.
const DefaultStmtCacheSize = 128

// Open creates an engine over the given base relations, under SQL
// conventions for ARC statements (change with SetConventions).
func Open(rels ...*relation.Relation) *DB {
	return OpenCatalog(eval.NewCatalog(), rels...)
}

// OpenCatalog creates an engine over an existing ARC catalog (keeping its
// views, abstract relations, and externals), registering any extra
// relations. The catalog's base relations become visible to SQL and
// Datalog statements too; the caller's catalog is never mutated.
func OpenCatalog(cat *eval.Catalog, rels ...*relation.Relation) *DB {
	db := &DB{
		catTmpl: cat,
		conv:    convention.SQL(),
		cache:   newStmtCache(DefaultStmtCacheSize),
	}
	all := append(cat.BaseRelations(), rels...)
	db.store = relation.NewStore(all...)
	return db
}

// Store exposes the underlying MVCC store (read-mostly surface: Head for
// snapshots, Gen for the commit generation).
func (db *DB) Store() *relation.Store { return db.store }

// Generation returns the store's current commit generation.
func (db *DB) Generation() uint64 { return db.store.Gen() }

// SetConventions sets the conventions ARC statements prepared afterwards
// evaluate under (part of the statement cache key, so cached statements
// under other conventions are unaffected).
func (db *DB) SetConventions(conv convention.Conventions) *DB {
	db.mu.Lock()
	db.conv = conv
	db.mu.Unlock()
	return db
}

// Register adds or replaces base relations as an unconditional
// administrative commit: it never conflicts, and the commit-generation
// bump invalidates cached statements. Evaluations in flight keep their
// snapshot.
func (db *DB) Register(rels ...*relation.Relation) *DB {
	db.store.Apply(rels...)
	return db
}

// Relation returns the relation with the given name in the current
// committed snapshot, or nil.
func (db *DB) Relation(name string) *relation.Relation {
	return db.store.Head().Relation(name)
}

// conventions reads the current ARC conventions.
func (db *DB) conventions() convention.Conventions {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.conv
}

// catalogAt projects the catalog template onto a snapshot's relations,
// memoized per commit generation (ARC prepares against the same snapshot
// reuse one projection).
func (db *DB) catalogAt(snap *relation.Snapshot) *eval.Catalog {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if db.catCache != nil && db.catGen == snap.Gen() {
		return db.catCache
	}
	db.mu.RLock()
	tmpl := db.catTmpl
	db.mu.RUnlock()
	cat := tmpl.CloneWithBase(snap.Rels())
	db.catGen, db.catCache = snap.Gen(), cat
	return cat
}

// catalogFor projects the template onto an arbitrary relation map (a
// transaction overlay) without memoization.
func (db *DB) catalogFor(rels map[string]*relation.Relation) *eval.Catalog {
	db.mu.RLock()
	tmpl := db.catTmpl
	db.mu.RUnlock()
	return tmpl.CloneWithBase(rels)
}

// Prepare parses, validates, and plans src once, returning a reusable
// (and concurrently executable) statement. Statements are cached in a
// generation-versioned LRU keyed by language and source: a hit is valid
// exactly while the store's commit generation is unchanged, so any
// committed write or Register re-prepares against the new snapshot
// instead of serving a stale compilation.
func (db *DB) Prepare(lang Lang, src string) (*Stmt, error) {
	return db.prepare(lang, src, "")
}

// PrepareDatalog prepares a Datalog program and selects which predicate
// Query returns (defaults to the last rule's head when pred is empty).
func (db *DB) PrepareDatalog(src, pred string) (*Stmt, error) {
	return db.prepare(LangDatalog, src, pred)
}

func (db *DB) prepare(lang Lang, src, pred string) (s *Stmt, err error) {
	// Recover-to-error backstop: no parser or planner panic on hostile
	// source may escape this boundary (see PanicError).
	defer recoverTo(&err, "prepare")
	db.prepares.Add(1)
	conv := db.conventions()
	key := cacheKey(lang, conv, src, pred)
	if s := db.cache.lookup(key, db); s != nil {
		db.cacheHits.Add(1)
		return s, nil
	}
	// The snapshot is loaded once and both the compile and the cache
	// entry's generation come from it: if a commit lands after the load,
	// the stored generation is already stale and the next Prepare
	// recompiles — never the reverse (a statement bound to replaced
	// relations served as valid).
	snap := db.store.Head()
	s, err = compileStmt(db, lang, src, pred, copyRels(snap.Rels()), db.catalogAt(snap), conv)
	if err != nil {
		return nil, err
	}
	s.gen = snap.Gen()
	db.cache.store(key, s, snap.Gen())
	return s, nil
}

// copyRels copies a snapshot's relation map before handing it to a
// compilation: evaluators extend their relation map with CTE names, and
// the snapshot's map is shared.
func copyRels(src map[string]*relation.Relation) map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// PrepareARCCollection prepares an already-parsed ARC collection under
// explicit conventions — the facade's entry for callers that hold an AST
// rather than source text. The statement is not cached.
func (db *DB) PrepareARCCollection(col *alt.Collection, conv convention.Conventions) (*Stmt, error) {
	snap := db.store.Head()
	return compileARC(db, col, col.String(), db.catalogAt(snap), conv)
}

// Query is the convenience one-shot: Prepare (hitting the statement
// cache) then Query.
func (db *DB) Query(ctx context.Context, lang Lang, src string, args ...any) (*Rows, error) {
	s, err := db.Prepare(lang, src)
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, args...)
}

// QueryAll is the convenience one-shot returning a materialized relation.
func (db *DB) QueryAll(ctx context.Context, lang Lang, src string, args ...any) (*relation.Relation, error) {
	s, err := db.Prepare(lang, src)
	if err != nil {
		return nil, err
	}
	return s.QueryAll(ctx, args...)
}

// checkFromCtx turns a context into the cancellation poll the execution
// layers share. Contexts that can never be cancelled poll nothing.
func checkFromCtx(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// referencedSQL lists the base tables a SQL query reads.
func referencedSQL(q sql.Query) []string { return sql.Tables(q) }

// referencedARC lists the relation names an ARC collection binds,
// including nested comprehension sources.
func referencedARC(col *alt.Collection) []string {
	var out []string
	seen := map[string]bool{}
	var walkF func(alt.Formula)
	var walkC func(*alt.Collection)
	walkF = func(f alt.Formula) {
		switch x := f.(type) {
		case *alt.And:
			for _, k := range x.Kids {
				walkF(k)
			}
		case *alt.Or:
			for _, k := range x.Kids {
				walkF(k)
			}
		case *alt.Not:
			walkF(x.Kid)
		case *alt.Quantifier:
			for _, b := range x.Bindings {
				if b.Sub != nil {
					walkC(b.Sub)
					continue
				}
				if !seen[b.Rel] {
					seen[b.Rel] = true
					out = append(out, b.Rel)
				}
			}
			walkF(x.Body)
		}
	}
	walkC = func(c *alt.Collection) { walkF(c.Body) }
	walkC(col)
	return out
}

// referencedDatalog lists the predicates a program reads or derives.
func referencedDatalog(p *datalog.Program) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var addLit func(l datalog.Literal)
	addLit = func(l datalog.Literal) {
		switch x := l.(type) {
		case datalog.PosAtom:
			add(x.Atom.Pred)
		case datalog.NegAtom:
			add(x.Atom.Pred)
		case datalog.AggLiteral:
			for _, bl := range x.Body {
				addLit(bl)
			}
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Pred)
		for _, l := range r.Body {
			addLit(l)
		}
	}
	return out
}

// Package engine is the unified front door to the three query languages
// the paper unifies: SQL, ARC comprehensions, and Datalog all prepare and
// execute through one API, mirroring database/sql's Prepare/Query/Rows
// contract.
//
//	db := engine.Open(rels...)
//	stmt, err := db.Prepare(engine.LangSQL, "select R.A from R where R.B = $1")
//	rows, err := stmt.Query(ctx, 7)
//	for rows.Next() { rows.Scan(&a) }
//	rows.Close()
//
// Prepare parses, validates, and plans ONCE; Query binds arguments and
// executes without re-planning — SQL placeholders ($1, $2, …) are
// plan-time leaves resolved at bind time, and ARC/Datalog statements bind
// named input relations through the evaluator override / EDB slots.
// Query returns a streaming cursor driven directly off the internal/exec
// iterator tree (no forced materialization for planner-compiled SQL),
// with context cancellation checked in the operator pull loop and in
// fixpoint rounds.
//
// Concurrency contract: a DB and its prepared statements are safe for
// concurrent use — compiled plans are immutable, all execution state is
// per-call, and internal/relation's locking makes concurrent reads (and
// reads concurrent with inserts) race-free. Register swaps relations
// copy-on-write, so statements prepared earlier keep a consistent
// snapshot; the statement cache revalidates against the schema and tuple
// generations, so a later Prepare sees the new state.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/sql"
)

// Lang selects the query language of a prepared statement.
type Lang int

const (
	// LangSQL prepares SQL text with $n placeholders.
	LangSQL Lang = iota
	// LangARC prepares an ARC comprehension.
	LangARC
	// LangDatalog prepares a Datalog program (the statement returns the
	// last rule's head predicate unless PrepareDatalog names another).
	LangDatalog
)

// String names the language.
func (l Lang) String() string {
	switch l {
	case LangSQL:
		return "sql"
	case LangARC:
		return "arc"
	case LangDatalog:
		return "datalog"
	}
	return fmt.Sprintf("lang(%d)", int(l))
}

// DB is one engine instance: the catalog every statement prepared from it
// runs against, plus the schema-versioned statement cache.
type DB struct {
	mu   sync.RWMutex
	rels map[string]*relation.Relation
	cat  *eval.Catalog
	conv convention.Conventions
	// schemaGen bumps whenever the set of registered relations (or a
	// relation's identity) changes; cached statements prepared under an
	// older generation are re-prepared.
	schemaGen atomic.Uint64
	cache     *stmtCache
	// Prepare-path counters, the statement-cache capacity-planning
	// signal: prepares counts every Prepare (one-shot Query included),
	// cacheHits the subset served from the LRU without recompiling.
	prepares  atomic.Uint64
	cacheHits atomic.Uint64
}

// DBStats is a point-in-time snapshot of the DB's prepare-path counters.
type DBStats struct {
	Prepares  uint64 // Prepare calls (including one-shot Query/QueryAll)
	CacheHits uint64 // Prepares served from the statement cache
	CacheLen  int    // statements currently cached
}

// Stats snapshots the prepare-path counters. HitRate is
// CacheHits/Prepares; servers export it for capacity planning.
func (db *DB) Stats() DBStats {
	return DBStats{
		Prepares:  db.prepares.Load(),
		CacheHits: db.cacheHits.Load(),
		CacheLen:  db.cache.Len(),
	}
}

// DefaultStmtCacheSize bounds the per-DB prepared-statement LRU.
const DefaultStmtCacheSize = 128

// Open creates an engine over the given base relations, under SQL
// conventions for ARC statements (change with SetConventions).
func Open(rels ...*relation.Relation) *DB {
	return OpenCatalog(eval.NewCatalog(), rels...)
}

// OpenCatalog creates an engine over an existing ARC catalog (keeping its
// views, abstract relations, and externals), registering any extra
// relations. The catalog's base relations become visible to SQL and
// Datalog statements too. When extra relations are passed the catalog is
// cloned first — the caller's catalog is never mutated, matching
// Register's copy-on-write discipline.
func OpenCatalog(cat *eval.Catalog, rels ...*relation.Relation) *DB {
	if len(rels) > 0 {
		cat = cat.Clone()
	}
	db := &DB{
		rels:  map[string]*relation.Relation{},
		cat:   cat,
		conv:  convention.SQL(),
		cache: newStmtCache(DefaultStmtCacheSize),
	}
	for _, r := range cat.BaseRelations() {
		db.rels[r.Name()] = r
	}
	for _, r := range rels {
		db.rels[r.Name()] = r
		cat.AddRelation(r)
	}
	return db
}

// SetConventions sets the conventions ARC statements prepared afterwards
// evaluate under (part of the statement cache key, so cached statements
// under other conventions are unaffected).
func (db *DB) SetConventions(conv convention.Conventions) *DB {
	db.mu.Lock()
	db.conv = conv
	db.mu.Unlock()
	return db
}

// Register adds or replaces base relations. The ARC catalog is swapped
// copy-on-write, so evaluations already in flight keep their snapshot;
// the schema generation bump invalidates cached statements.
func (db *DB) Register(rels ...*relation.Relation) *DB {
	db.mu.Lock()
	cat := db.cat.Clone()
	for _, r := range rels {
		db.rels[r.Name()] = r
		cat.AddRelation(r)
	}
	db.cat = cat
	db.mu.Unlock()
	db.schemaGen.Add(1)
	return db
}

// Relation returns the registered relation with the given name, or nil.
func (db *DB) Relation(name string) *relation.Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rels[name]
}

// snapshot captures the current relation map and catalog.
func (db *DB) snapshot() (map[string]*relation.Relation, *eval.Catalog) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rels := make(map[string]*relation.Relation, len(db.rels))
	for k, v := range db.rels {
		rels[k] = v
	}
	return rels, db.cat
}

// conventions reads the current ARC conventions.
func (db *DB) conventions() convention.Conventions {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.conv
}

// Prepare parses, validates, and plans src once, returning a reusable
// (and concurrently executable) statement. Statements are cached in a
// schema-versioned LRU keyed by language and source: a hit is revalidated
// against the schema generation and the tuple generation of every
// relation the statement references, so data or schema changes re-prepare
// instead of serving a stale compilation.
func (db *DB) Prepare(lang Lang, src string) (*Stmt, error) {
	return db.prepare(lang, src, "")
}

// PrepareDatalog prepares a Datalog program and selects which predicate
// Query returns (defaults to the last rule's head when pred is empty).
func (db *DB) PrepareDatalog(src, pred string) (*Stmt, error) {
	return db.prepare(LangDatalog, src, pred)
}

func (db *DB) prepare(lang Lang, src, pred string) (s *Stmt, err error) {
	// Recover-to-error backstop: no parser or planner panic on hostile
	// source may escape this boundary (see PanicError).
	defer recoverTo(&err, "prepare")
	db.prepares.Add(1)
	conv := db.conventions()
	key := cacheKey(lang, conv, src, pred)
	if s := db.cache.lookup(key, db); s != nil {
		db.cacheHits.Add(1)
		return s, nil
	}
	// The schema generation is captured BEFORE the relation snapshot and
	// the compile: if a Register lands anywhere in between, the stored
	// generation is already stale and the next Prepare recompiles —
	// never the reverse (a statement bound to replaced relations served
	// as valid).
	gen := db.schemaGen.Load()
	rels, cat := db.snapshot()
	s, err = compileStmt(db, lang, src, pred, rels, cat, conv)
	if err != nil {
		return nil, err
	}
	db.cache.store(key, s, gen, relGensOf(rels, s.refs))
	return s, nil
}

// PrepareARCCollection prepares an already-parsed ARC collection under
// explicit conventions — the facade's entry for callers that hold an AST
// rather than source text. The statement is not cached.
func (db *DB) PrepareARCCollection(col *alt.Collection, conv convention.Conventions) (*Stmt, error) {
	db.mu.RLock()
	cat := db.cat
	db.mu.RUnlock()
	return compileARC(db, col, col.String(), cat, conv)
}

// Query is the convenience one-shot: Prepare (hitting the statement
// cache) then Query.
func (db *DB) Query(ctx context.Context, lang Lang, src string, args ...any) (*Rows, error) {
	s, err := db.Prepare(lang, src)
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, args...)
}

// QueryAll is the convenience one-shot returning a materialized relation.
func (db *DB) QueryAll(ctx context.Context, lang Lang, src string, args ...any) (*relation.Relation, error) {
	s, err := db.Prepare(lang, src)
	if err != nil {
		return nil, err
	}
	return s.QueryAll(ctx, args...)
}

// relGens snapshots the tuple generation of every named relation the
// statement references, from the same relation snapshot it was compiled
// against — the statement cache's data-change fingerprint. Invalidation
// on data (not just schema) change is deliberate, per the engine's cache
// contract: a cached statement never predates the data it answers over,
// and a held *Stmt — the compile-once fast path — is unaffected.
func relGensOf(rels map[string]*relation.Relation, names []string) map[string]uint64 {
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		if r, ok := rels[n]; ok {
			out[n] = r.Generation()
		}
	}
	return out
}

// checkFromCtx turns a context into the cancellation poll the execution
// layers share. Contexts that can never be cancelled poll nothing.
func checkFromCtx(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// referencedSQL lists the base tables a SQL query reads.
func referencedSQL(q sql.Query) []string { return sql.Tables(q) }

// referencedARC lists the relation names an ARC collection binds,
// including nested comprehension sources.
func referencedARC(col *alt.Collection) []string {
	var out []string
	seen := map[string]bool{}
	var walkF func(alt.Formula)
	var walkC func(*alt.Collection)
	walkF = func(f alt.Formula) {
		switch x := f.(type) {
		case *alt.And:
			for _, k := range x.Kids {
				walkF(k)
			}
		case *alt.Or:
			for _, k := range x.Kids {
				walkF(k)
			}
		case *alt.Not:
			walkF(x.Kid)
		case *alt.Quantifier:
			for _, b := range x.Bindings {
				if b.Sub != nil {
					walkC(b.Sub)
					continue
				}
				if !seen[b.Rel] {
					seen[b.Rel] = true
					out = append(out, b.Rel)
				}
			}
			walkF(x.Body)
		}
	}
	walkC = func(c *alt.Collection) { walkF(c.Body) }
	walkC(col)
	return out
}

// referencedDatalog lists the predicates a program reads or derives.
func referencedDatalog(p *datalog.Program) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var addLit func(l datalog.Literal)
	addLit = func(l datalog.Literal) {
		switch x := l.(type) {
		case datalog.PosAtom:
			add(x.Atom.Pred)
		case datalog.NegAtom:
			add(x.Atom.Pred)
		case datalog.AggLiteral:
			for _, bl := range x.Body {
				addLit(bl)
			}
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Pred)
		for _, l := range r.Body {
			addLit(l)
		}
	}
	return out
}

package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at the engine API boundary
// (Prepare/Query/Rows.Next). The engine's parsers and planners return
// errors for every malformed input they anticipate; this guard is the
// backstop that turns the ones they don't — a grammar bug, an
// out-of-range index on a hostile byte stream — into a statement error
// instead of a process crash, which is the difference between one failed
// query and every session on a server dying together.
type PanicError struct {
	Op    string // the boundary that recovered: "prepare", "query", "rows"
	Val   any    // the recovered panic value
	Stack []byte // the goroutine stack at recovery, for server logs
}

// Error renders the panic value; the stack stays on the field so wire
// errors stay small while server logs keep the full trace.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: internal panic during %s: %v", e.Op, e.Val)
}

// recoverTo converts an in-flight panic into a *PanicError on *errp.
// Deferred at every engine entry point that evaluates client-influenced
// input.
func recoverTo(errp *error, op string) {
	if p := recover(); p != nil {
		*errp = &PanicError{Op: op, Val: p, Stack: debug.Stack()}
	}
}

// stackNow captures the current goroutine stack for PanicError built
// outside a deferred recoverTo (the Rows pull path).
func stackNow() []byte { return debug.Stack() }

package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/qgen"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestTracedDifferential runs 500 qgen queries through both the plain
// and the traced execution paths, asserting byte-identical results:
// tracing must observe, never perturb.
func TestTracedDifferential(t *testing.T) {
	rng := workload.Rand(20260808)
	trial := func(i int, src string) {
		t.Helper()
		inst := qgen.RandomInstance(rng, 12, i%3 == 0)
		db := Open(inst.Relations()...)
		stmt, err := db.Prepare(LangSQL, src)
		if err != nil {
			t.Fatalf("trial %d: Prepare %q: %v", i, src, err)
		}
		want, err := stmt.QueryAll(context.Background())
		if err != nil {
			t.Fatalf("trial %d: QueryAll %q: %v", i, src, err)
		}
		rows, tr, err := stmt.QueryTraced(context.Background())
		if err != nil {
			t.Fatalf("trial %d: QueryTraced %q: %v", i, src, err)
		}
		got := relation.New("result", stmt.Columns()...)
		for rows.Next() {
			got.Insert(relation.Tuple(rows.Values()))
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("trial %d: traced cursor: %v", i, err)
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: traced execution diverged on %q\nplain:\n%s\ntraced:\n%s", i, src, want, got)
		}
		if tr.Rows != int64(got.Card()) {
			t.Fatalf("trial %d: trace total rows = %d, cursor streamed %d", i, tr.Rows, got.Card())
		}
		if stmt.LastTrace() != tr {
			t.Fatalf("trial %d: LastTrace does not return the traced run", i)
		}
	}
	n := 0
	for i := 0; i < 300; i++ {
		trial(n, qgen.Generate(rng))
		n++
	}
	for i := 0; i < 100; i++ {
		trial(n, qgen.GenerateJoins(rng))
		n++
	}
	for i := 0; i < 100; i++ {
		trial(n, qgen.GenerateRecursive(rng))
		n++
	}
}

// TestExplainAnalyzeEngine pins the engine-level surface: the rendered
// executed plan carries actual row counts and a total line, and a
// recursive query reports its per-round deltas.
func TestExplainAnalyzeEngine(t *testing.T) {
	e := relation.New("E", "x", "y")
	e.Add(1, 2)
	e.Add(2, 3)
	e.Add(3, 4)
	db := Open(e)
	stmt, err := db.Prepare(LangSQL,
		"with recursive tc(x, y) as (select E.x, E.y from E union select tc.x, E.y from tc, E where tc.y = E.x) select tc.x, tc.y from tc")
	if err != nil {
		t.Fatal(err)
	}
	text, err := stmt.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rounds=4", "deltas=[3 2 1 0]", "Total: rows=6"} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output lacks %q:\n%s", want, text)
		}
	}

	// The ARC surface reports fixpoint rounds too.
	arc, err := db.Prepare(LangARC,
		"{TC(x, y) | ∃e ∈ E [TC.x = e.x ∧ TC.y = e.y] ∨ ∃e ∈ E, t ∈ TC [TC.x = e.x ∧ e.y = t.x ∧ TC.y = t.y]}")
	if err != nil {
		t.Fatal(err)
	}
	atext, err := arc.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(atext, "Fixpoint") || !strings.Contains(atext, "Total: rows=6") {
		t.Errorf("ARC analyze output lacks fixpoint/total lines:\n%s", atext)
	}
}

// TestSlowQueryLog injects an artificially low threshold and checks the
// log emits valid JSON lines with the statement's fingerprint, kind,
// duration, and row count — and that raising the threshold silences it.
func TestSlowQueryLog(t *testing.T) {
	r := relation.New("R", "A", "B")
	for i := 0; i < 100; i++ {
		r.Add(i, i*10)
	}
	db := Open(r)
	var buf bytes.Buffer
	db.SetSlowQueryLog(&buf, 0) // everything is slow
	rel, err := db.QueryAll(context.Background(), LangSQL, "select R.A from R where R.B >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), LangSQL, "insert into R values (1000, 10000)"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var q SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[0]), &q); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if q.Fingerprint != Fingerprint(LangSQL, "select R.A from R where R.B >= 0") {
		t.Fatalf("fingerprint = %q", q.Fingerprint)
	}
	if q.Kind != "query" || q.Rows != int64(rel.Card()) || q.DurationMS < 0 {
		t.Fatalf("entry = %+v", q)
	}
	var w SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[1]), &w); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v\n%s", err, lines[1])
	}
	if w.Kind != "dml" || w.Rows != 1 {
		t.Fatalf("write entry = %+v", w)
	}
	if db.Stats().SlowQueries != 2 {
		t.Fatalf("SlowQueries = %d, want 2", db.Stats().SlowQueries)
	}

	// A sky-high threshold records nothing; removal stops the writer.
	buf.Reset()
	db.SetSlowQueryLog(&buf, time.Hour)
	if _, err := db.QueryAll(context.Background(), LangSQL, "select R.A from R"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast query logged under 1h threshold: %s", buf.String())
	}
	db.SetSlowQueryLog(nil, 0)
	if _, err := db.QueryAll(context.Background(), LangSQL, "select R.A from R"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("removed log still wrote: %s", buf.String())
	}
}

// TestDropTableEngine pins DROP TABLE through the engine: the relation
// disappears from the catalog, dependent statements fail, and dropping
// inside a rolled-back transaction leaves the table intact.
func TestDropTableEngine(t *testing.T) {
	db := Open()
	ctx := context.Background()
	mustExec := func(src string) {
		t.Helper()
		if _, err := db.Exec(ctx, LangSQL, src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	mustExec("create table T (a, b)")
	mustExec("insert into T values (1, 2)")
	if _, err := db.QueryAll(ctx, LangSQL, "select T.a from T"); err != nil {
		t.Fatal(err)
	}

	// Drop inside a transaction, roll back: the table survives.
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, LangSQL, "drop table T"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.QueryAll(ctx, LangSQL, "select T.a from T"); err == nil {
		t.Fatal("in-transaction read of dropped table succeeded")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryAll(ctx, LangSQL, "select T.a from T"); err != nil {
		t.Fatalf("table gone after rollback: %v", err)
	}

	// Commit the drop for real.
	mustExec("drop table T")
	if _, err := db.QueryAll(ctx, LangSQL, "select T.a from T"); err == nil {
		t.Fatal("read after committed drop succeeded")
	}
	if _, err := db.Exec(ctx, LangSQL, "drop table T"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if db.Stats().DDLExecs < 3 {
		t.Fatalf("DDLExecs = %d, want >= 3", db.Stats().DDLExecs)
	}
}

// TestDropCreateConflict pins the commit-time semantics: a transaction
// that read (wrote) a table loses first-committer-wins against a
// concurrent committed DROP of that table.
func TestDropCreateConflict(t *testing.T) {
	db := Open(relation.New("T", "a"))
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, LangSQL, "insert into T values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, LangSQL, "drop table T"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("insert into concurrently-dropped table committed")
	}
	if db.Stats().Conflicts == 0 {
		t.Fatal("conflict counter did not move")
	}
}

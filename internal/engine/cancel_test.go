package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relation"
)

// budgetCtx is a deterministic cancellation source: its Err() starts
// returning errBudget after n polls, so tests can pin exactly that the
// execution layers poll it — no timing involved.
type budgetCtx struct {
	context.Context
	left atomic.Int64
}

var errBudget = errors.New("poll budget exhausted")

func newBudgetCtx(n int64) *budgetCtx {
	c := &budgetCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

// Done returns a non-nil channel so the engine treats the context as
// cancellable and installs the poll.
func (c *budgetCtx) Done() <-chan struct{} { return make(chan struct{}) }

func (c *budgetCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return errBudget
	}
	return nil
}

// TestCancelMidStream reads a few rows off a streaming cursor, cancels
// the context, and verifies the cursor stops with the cancellation error
// and Close releases cleanly.
func TestCancelMidStream(t *testing.T) {
	r := relation.New("R", "A", "B")
	for i := 0; i < 5000; i++ {
		r.Add(i, i%7)
	}
	db := Open(r)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.Query(ctx, LangSQL, "select R.A, R.B from R")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for rows.Next() {
		got++
		if got == 3 {
			cancel()
		}
		if got > 10 {
			break
		}
	}
	if got > 10 {
		t.Fatalf("cursor kept streaming after cancellation (%d rows)", got)
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	if err := rows.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	// The cursor stays stopped.
	if rows.Next() {
		t.Fatal("Next after Close returned true")
	}
}

// TestCancelBeforeQuery pins the fast path: a context cancelled before
// Query never starts executing.
func TestCancelBeforeQuery(t *testing.T) {
	db := Open(chain(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(ctx, LangSQL, "select P.s from P"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query = %v, want context.Canceled", err)
	}
}

// TestCancelDuringFixpointRounds pins that a recursive CTE's working-
// table loop polls cancellation between rounds: with a tiny poll budget
// the execution must abort with the budget error instead of running the
// recursion to completion.
func TestCancelDuringFixpointRounds(t *testing.T) {
	db := Open(chain(200))
	stmt, err := db.Prepare(LangSQL, `with recursive tc(s, t) as (
		select P.s, P.t from P union select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.QueryAll(newBudgetCtx(5)); !errors.Is(err, errBudget) {
		t.Fatalf("QueryAll = %v, want the poll-budget error", err)
	}
	// Sanity: with no budget pressure the same statement completes.
	rel, err := stmt.QueryAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 200*201/2 {
		t.Fatalf("TC size %d", rel.Distinct())
	}
}

// TestCancelBulkShapes pins cancellation for plan shapes whose operator
// chains have no guard site of their own (pure projection, streamed
// group-by, union, point fast path): the materialize loops must poll.
func TestCancelBulkShapes(t *testing.T) {
	r := relation.New("R", "A", "B")
	for i := 0; i < 5000; i++ {
		r.Add(i, i%11)
	}
	db := Open(r)
	for _, src := range []string{
		"select R.A + 1 s from R",
		"select R.B, sum(R.A) s from R group by R.B",
		"select R.A c from R union all select R.B c from R",
		"select R.A, R.B from R", // point fast path (projection over scan)
	} {
		if _, err := db.QueryAll(newBudgetCtx(3), LangSQL, src); !errors.Is(err, errBudget) {
			t.Fatalf("QueryAll(%q) = %v, want the poll-budget error", src, err)
		}
	}
}

// TestCancelARCAndDatalogFixpoints pins the poll in the shared fixpoint
// engine for the other two front ends.
func TestCancelARCAndDatalogFixpoints(t *testing.T) {
	db := Open(chain(300))
	arcStmt, err := db.Prepare(LangARC,
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arcStmt.QueryAll(newBudgetCtx(10)); !errors.Is(err, errBudget) {
		t.Fatalf("ARC QueryAll = %v, want the poll-budget error", err)
	}
	dlStmt, err := db.Prepare(LangDatalog, "A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dlStmt.QueryAll(newBudgetCtx(10)); !errors.Is(err, errBudget) {
		t.Fatalf("Datalog QueryAll = %v, want the poll-budget error", err)
	}
}

// TestCancelWithRealTimeout exercises the same path with a real deadline
// for good measure (generous margins; the assertion is only that the
// error is the context's).
func TestCancelWithRealTimeout(t *testing.T) {
	db := Open(chain(2000))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	_, err := db.QueryAll(ctx, LangSQL, `with recursive tc(s, t) as (
		select P.s, P.t from P union select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestConcurrentSessionsOneDB is the concurrency contract of the issue:
// 8 sessions over ONE DB execute prepared statements in parallel —
// sharing the same *Stmt values (shared compiled plans, shared lazy
// relation indexes) across all three languages, streaming cursors and
// bulk reads mixed — and must pass under -race with every session seeing
// exactly the single-threaded answers.
func TestConcurrentSessionsOneDB(t *testing.T) {
	rng := workload.Rand(99)
	r := workload.RandomBinary(rng, "R", "A", "B", 4000, 4000, 60)
	s := workload.RandomBinary(rng, "S", "B", "C", 2000, 60, 12)
	db := Open(r, s, chain(40)).SetConventions(convention.SetLogic())

	ctx := context.Background()
	point, err := db.Prepare(LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	join, err := db.Prepare(LangSQL,
		"select R.A, S.C from R, S where R.B = S.B and S.C = $1")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := db.Prepare(LangSQL, `with recursive tc(s, t) as (
		select P.s, P.t from P union select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc where tc.s = $1`)
	if err != nil {
		t.Fatal(err)
	}
	arcTC, err := db.Prepare(LangARC,
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		t.Fatal(err)
	}
	dlTC, err := db.Prepare(LangDatalog, "A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	if err != nil {
		t.Fatal(err)
	}

	// Single-threaded goldens.
	goldPoint := map[int]string{}
	for k := 0; k < 8; k++ {
		rel, err := point.QueryAll(ctx, k*97%4000)
		if err != nil {
			t.Fatal(err)
		}
		goldPoint[k] = rel.String()
	}
	goldJoin := map[int]string{}
	for k := 0; k < 4; k++ {
		rel, err := join.QueryAll(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		goldJoin[k] = rel.String()
	}
	goldRec := map[int]string{}
	for k := 0; k < 4; k++ {
		rel, err := rec.QueryAll(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		goldRec[k] = rel.String()
	}
	goldARC, err := arcTC.QueryAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	goldDL, err := dlTC.QueryAll(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const sessions, iters = 8, 30
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (sid + i) % 5 {
				case 0:
					k := sid % 8
					rel, err := point.QueryAll(ctx, k*97%4000)
					if err != nil {
						errc <- err
						return
					}
					if rel.String() != goldPoint[k] {
						errc <- fmt.Errorf("session %d: point lookup diverged", sid)
						return
					}
				case 1:
					k := sid % 4
					rel, err := join.QueryAll(ctx, k)
					if err != nil {
						errc <- err
						return
					}
					if rel.String() != goldJoin[k] {
						errc <- fmt.Errorf("session %d: join diverged", sid)
						return
					}
				case 2:
					k := sid % 4
					rel, err := rec.QueryAll(ctx, k)
					if err != nil {
						errc <- err
						return
					}
					if rel.String() != goldRec[k] {
						errc <- fmt.Errorf("session %d: recursive CTE diverged", sid)
						return
					}
				case 3:
					// Streaming cursor, closed early half the time.
					rows, err := point.Query(ctx, (sid*31+i)%4000)
					if err != nil {
						errc <- err
						return
					}
					n := 0
					for rows.Next() {
						n++
						if i%2 == 0 && n == 1 {
							break
						}
					}
					if err := rows.Close(); err != nil {
						errc <- err
						return
					}
				case 4:
					var rel *relation.Relation
					var err error
					if sid%2 == 0 {
						rel, err = arcTC.QueryAll(ctx)
						if err == nil && rel.String() != goldARC.String() {
							err = fmt.Errorf("session %d: ARC fixpoint diverged", sid)
						}
					} else {
						rel, err = dlTC.QueryAll(ctx)
						if err == nil && rel.String() != goldDL.String() {
							err = fmt.Errorf("session %d: Datalog fixpoint diverged", sid)
						}
					}
					if err != nil {
						errc <- err
						return
					}
				}
			}
		}(sid)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentPrepareSharedCache hammers Prepare for the same and
// different sources from many goroutines while a writer inserts
// (invalidating entries), under -race.
func TestConcurrentPrepareSharedCache(t *testing.T) {
	r := relation.New("R", "A", "B").Add(1, 2)
	db := Open(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("select R.A from R where R.B = $1 -- v%d", g%3)
				stmt, err := db.Prepare(LangSQL, src)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := stmt.QueryAll(context.Background(), i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Add(i+10, i)
		}
	}()
	wg.Wait()
}

package engine

import (
	"context"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// TestOpenDurableRoundTrip pins the engine-level durability contract:
// commits made through the full SQL write path (INSERT, UPDATE, DELETE,
// DDL) survive Close and reopen, the reopened store resumes the
// generation sequence, and a checkpoint makes the next cold start
// replay-free.
func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seed := relation.New("R", "A", "B").Add(1, 10).Add(2, 20)

	db, err := OpenDurable(dir, storage.Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() {
		t.Fatal("OpenDurable returned a non-durable DB")
	}
	mustExec(t, db, LangSQL, "insert into R values (3, 30)")
	mustExec(t, db, LangSQL, "update R set B = B + 1 where R.A between 2 and 3")
	mustExec(t, db, LangSQL, "delete from R where R.A = 1")
	mustExec(t, db, LangSQL, "create table S (K, V)")
	mustExec(t, db, LangSQL, "insert into S values ('k', 1)")
	gen := db.Generation()
	st := db.Stats()
	if st.Storage == nil || st.Storage.WALRecords == 0 {
		t.Fatalf("Stats().Storage = %+v, want WAL records recorded", st.Storage)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Writes after Close must fail rather than silently skip the log.
	if _, err := db.Exec(context.Background(), LangSQL, "insert into R values (9, 90)"); err == nil {
		t.Fatal("Exec after Close succeeded")
	}

	db2, err := OpenDurable(dir, storage.Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Generation() != gen {
		t.Fatalf("recovered generation = %d, want %d", db2.Generation(), gen)
	}
	rs, ok := db2.RecoveryStats()
	if !ok || rs.Records == 0 {
		t.Fatalf("RecoveryStats = %+v ok=%v, want replayed records", rs, ok)
	}
	if got := countAll(t, db2.QueryAll, LangSQL, "select R.A, R.B from R where R.A = 2 and R.B = 21"); got != 1 {
		t.Fatal("updated row did not survive reopen")
	}
	if got := countAll(t, db2.QueryAll, LangSQL, "select R.A from R"); got != 2 {
		t.Fatalf("recovered R cardinality = %d, want 2", got)
	}
	if got := countAll(t, db2.QueryAll, LangSQL, "select S.K from S"); got != 1 {
		t.Fatal("DDL-created table did not survive reopen")
	}

	// Checkpoint truncates the log: the next open replays nothing.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenDurable(dir, storage.Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rs3, _ := db3.RecoveryStats()
	if rs3.Records != 0 {
		t.Fatalf("post-checkpoint open replayed %d records, want 0", rs3.Records)
	}
	if got := countAll(t, db3.QueryAll, LangSQL, "select R.A from R"); got != 2 {
		t.Fatalf("post-checkpoint R cardinality = %d, want 2", got)
	}
}

// TestOpenDurableSeedMerge pins the recovery-vs-seed rule: recovered
// relations win over same-named seeds; seed relations missing from the
// recovered catalog are added (and logged, so they too survive).
func TestOpenDurableSeedMerge(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, storage.Options{}, relation.New("R", "A").Add(1))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, LangSQL, "insert into R values (2)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDurable(dir, storage.Options{},
		relation.New("R", "A").Add(99), // must lose to the recovered R
		relation.New("T", "X").Add(7),  // new: must be added and logged
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, db2.QueryAll, LangSQL, "select R.A from R"); got != 2 {
		t.Fatalf("recovered R cardinality = %d, want 2 (seed must not clobber)", got)
	}
	if got := countAll(t, db2.QueryAll, LangSQL, "select T.X from T"); got != 1 {
		t.Fatal("missing seed relation was not added")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := countAll(t, db3.QueryAll, LangSQL, "select T.X from T"); got != 1 {
		t.Fatal("late-added seed relation did not survive reopen")
	}
}

// TestInMemoryDurableSurface pins the graceful degradation of the
// durable surface on a RAM-only DB.
func TestInMemoryDurableSurface(t *testing.T) {
	db := Open(relation.New("R", "A"))
	if db.Durable() {
		t.Fatal("in-memory DB claims durability")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on in-memory DB succeeded")
	}
	if _, ok := db.RecoveryStats(); ok {
		t.Fatal("RecoveryStats ok on in-memory DB")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory DB: %v", err)
	}
	if db.Stats().Storage != nil {
		t.Fatal("in-memory DB reports storage stats")
	}
}

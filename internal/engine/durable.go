// durable.go plugs the internal/storage backend (write-ahead log +
// checkpoint segments) into the engine: OpenDurable recovers a database
// from a storage directory — or bootstraps one from seed relations —
// and every commit thereafter is journaled before it becomes visible.
// An in-memory DB (Open/OpenCatalog) has no manager; the durable
// surface below degrades gracefully for it.
package engine

import (
	"fmt"

	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/storage"
)

// OpenDurable opens an engine backed by the storage directory dir. A
// fresh (or empty) directory is bootstrapped from the seed relations:
// the seed state is checkpointed immediately, so it survives a crash
// before the first commit. An existing directory recovers to its last
// durably committed generation (newest checkpoint plus WAL replay,
// truncating a torn tail) — recovered state wins over the seeds, and
// only seed relations whose names are absent from the recovered catalog
// are added (as a logged administrative commit).
func OpenDurable(dir string, opts storage.Options, seed ...*relation.Relation) (*DB, error) {
	mgr, rec, err := storage.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	db := &DB{
		catTmpl: eval.NewCatalog(),
		conv:    convention.SQL(),
		cache:   newStmtCache(DefaultStmtCacheSize),
	}
	if rec.Empty {
		db.store = relation.NewStore(seed...)
		if err := mgr.Bootstrap(db.store); err != nil {
			mgr.Close()
			return nil, err
		}
		db.durable = mgr
		return db, nil
	}
	db.store = relation.NewStoreAt(rec.Gen, rec.Rels...)
	mgr.Attach(db.store)
	db.durable = mgr
	var missing []*relation.Relation
	have := db.store.Head().Rels()
	for _, r := range seed {
		if _, ok := have[r.Name()]; !ok {
			missing = append(missing, r)
		}
	}
	if len(missing) > 0 {
		db.store.Apply(missing...)
	}
	return db, nil
}

// Durable reports whether the DB is backed by a storage directory.
func (db *DB) Durable() bool { return db.durable != nil }

// Checkpoint writes the current head as a full snapshot checkpoint and
// truncates the write-ahead log (see storage.Manager.Checkpoint). It is
// an error on an in-memory DB.
func (db *DB) Checkpoint() error {
	if db.durable == nil {
		return fmt.Errorf("engine: in-memory database has no checkpoint")
	}
	return db.durable.Checkpoint()
}

// RecoveryStats reports what OpenDurable recovered; ok is false for an
// in-memory DB.
func (db *DB) RecoveryStats() (storage.RecoveryStats, bool) {
	if db.durable == nil {
		return storage.RecoveryStats{}, false
	}
	return db.durable.RecoveryStats(), true
}

// Close flushes and closes the durable backend (further commits fail);
// it is a no-op on an in-memory DB. It does not checkpoint — callers
// wanting a clean cold start (no WAL replay) checkpoint first.
func (db *DB) Close() error {
	if db.durable == nil {
		return nil
	}
	return db.durable.Close()
}

package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/relation"
)

// rowsDB builds a tiny DB for cursor-misuse tests.
func rowsDB() *DB {
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30)
	return Open(r)
}

// TestScanBeforeNext pins the first misuse edge: Scan before the first
// Next returns a clear error, never a zero tuple.
func TestScanBeforeNext(t *testing.T) {
	db := rowsDB()
	rows, err := db.Query(context.Background(), LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var a int
	if err := rows.Scan(&a); err == nil || !strings.Contains(err.Error(), "before Next") {
		t.Fatalf("Scan before Next = %v, want 'before Next' error", err)
	}
}

// TestScanAfterExhaustion pins the second misuse edge: once Next has
// returned false, Scan errors instead of re-reading the last row.
func TestScanAfterExhaustion(t *testing.T) {
	db := rowsDB()
	rows, err := db.Query(context.Background(), LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	var a int
	for rows.Next() {
		if err := rows.Scan(&a); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Scan(&a); err == nil || !strings.Contains(err.Error(), "exhausted or closed") {
		t.Fatalf("Scan after exhaustion = %v, want 'exhausted or closed' error", err)
	}
}

// TestNextAfterClose pins the third misuse edge: Next after Close stays
// false with Err() == nil, and Scan errors cleanly.
func TestNextAfterClose(t *testing.T) {
	db := rowsDB()
	rows, err := db.Query(context.Background(), LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("first Next = false")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	for i := 0; i < 3; i++ {
		if rows.Next() {
			t.Fatal("Next after Close = true")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean Close = %v, want nil", err)
	}
	var a int
	if err := rows.Scan(&a); err == nil || !strings.Contains(err.Error(), "exhausted or closed") {
		t.Fatalf("Scan after Close = %v, want 'exhausted or closed' error", err)
	}
}

// TestRecoverToPopulatesOpAndStack pins the PanicError contract the
// server's logging depends on: the boundary's op, the panic value, and
// a stack captured at recovery that still names the panicking frame.
func TestRecoverToPopulatesOpAndStack(t *testing.T) {
	var err error
	func() {
		defer recoverTo(&err, "query")
		panic("boom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Op != "query" || pe.Val != "boom" {
		t.Fatalf("PanicError = {Op:%q Val:%v}, want {query boom}", pe.Op, pe.Val)
	}
	if want := "engine: internal panic during query: boom"; pe.Error() != want {
		t.Fatalf("Error() = %q, want %q", pe.Error(), want)
	}
	if !strings.Contains(string(pe.Stack), "TestRecoverToPopulatesOpAndStack") {
		t.Fatalf("Stack does not name the panicking frame:\n%s", pe.Stack)
	}
}

// TestRowsPanicRecovered pins the streaming backstop: a panic inside the
// operator tree fails the cursor with a *PanicError instead of crashing,
// and the cursor stays safely closed afterwards.
func TestRowsPanicRecovered(t *testing.T) {
	rows := NewPanicRowsForTest([]string{"A"}, 1, "operator bug")
	if !rows.Next() {
		t.Fatal("first Next = false")
	}
	if rows.Next() {
		t.Fatal("Next past panic = true")
	}
	var pe *PanicError
	if !errors.As(rows.Err(), &pe) {
		t.Fatalf("Err = %v, want *PanicError", rows.Err())
	}
	if pe.Op != "rows" || !strings.Contains(pe.Error(), "operator bug") {
		t.Fatalf("PanicError = %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty; server logs need the trace")
	}
	// The coroutine is dead: Next and Close must stay inert.
	if rows.Next() {
		t.Fatal("Next after recovered panic = true")
	}
	if err := rows.Close(); !errors.As(err, &pe) {
		t.Fatalf("Close = %v, want the recovered *PanicError", err)
	}
	var a int
	if err := rows.Scan(&a); err == nil {
		t.Fatal("Scan after recovered panic = nil error")
	}
}

// TestLiftErrBoundary pins relation.LiftErr: unsupported client values
// come back as errors through the engine bind path, while Lift keeps
// panicking for internal literals.
func TestLiftErrBoundary(t *testing.T) {
	if _, err := relation.LiftErr(struct{ X int }{1}); err == nil {
		t.Fatal("LiftErr on a struct = nil error")
	}
	db := rowsDB()
	stmt, err := db.Prepare(LangSQL, "select R.A from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background(), []byte("junk")); err == nil {
		t.Fatal("Query with unsupported argument type = nil error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Lift on a struct did not panic")
		}
	}()
	relation.Lift(struct{ X int }{1})
}

// TestStatsCounters pins the prepare-path counters servers export.
func TestStatsCounters(t *testing.T) {
	db := rowsDB()
	if _, err := db.Prepare(LangSQL, "select R.A from R"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(LangSQL, "select R.A from R"); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Prepares != 2 || st.CacheHits != 1 || st.CacheLen != 1 {
		t.Fatalf("Stats = %+v, want 2 prepares / 1 hit / 1 cached", st)
	}
}

package engine

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/convention"
)

// stmtCache is the schema-versioned prepared-statement LRU. Entries are
// keyed by language + source (+ conventions for ARC, which change the
// statement's meaning); a hit is revalidated against the DB's schema
// generation and the tuple generation of every relation the statement
// references, so both schema changes (Register) and data changes
// (inserts) re-prepare rather than serving a stale compilation.
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key       string
	stmt      *Stmt
	schemaGen uint64
	relGens   map[string]uint64
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// cacheKey builds the lookup key. Conventions only affect ARC statement
// semantics, so SQL and Datalog share entries across convention changes.
func cacheKey(lang Lang, conv convention.Conventions, src, pred string) string {
	convPart := ""
	if lang == LangARC {
		convPart = conv.String()
	}
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s", lang, convPart, pred, src)
}

// lookup returns the cached statement when present AND still valid under
// the DB's current schema and tuple generations; an invalid entry is
// evicted so the caller re-prepares.
func (c *stmtCache) lookup(key string, db *DB) *Stmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if !c.validLocked(e, db) {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil
	}
	c.order.MoveToFront(el)
	return e.stmt
}

// validLocked checks the entry against the live generations.
func (c *stmtCache) validLocked(e *cacheEntry, db *DB) bool {
	if e.schemaGen != db.schemaGen.Load() {
		return false
	}
	for name, gen := range e.relGens {
		rel := db.Relation(name)
		if rel == nil || rel.Generation() != gen {
			return false
		}
	}
	return true
}

// store inserts a fresh entry, evicting the least recently used past cap.
func (c *stmtCache) store(key string, s *Stmt, schemaGen uint64, relGens map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	el := c.order.PushFront(&cacheEntry{key: key, stmt: s, schemaGen: schemaGen, relGens: relGens})
	c.entries[key] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached statements (for tests).
func (c *stmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

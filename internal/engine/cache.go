package engine

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/convention"
)

// stmtCache is the generation-versioned prepared-statement LRU. Entries
// are keyed by language + source (+ conventions for ARC, which change the
// statement's meaning); a hit is valid exactly while the store's commit
// generation equals the one the statement was compiled under. One
// comparison replaces the old per-relation Generation() recheck: a
// snapshot is immutable, so the single commit generation is a complete
// fingerprint of every relation a statement could reference — and a
// transaction's own uncommitted writes never leak in, because
// transactions compile against their write-set overlay through the
// per-transaction cache, not this one.
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	// evictions counts capacity evictions (LRU entries pushed out by new
	// stores, not stale-generation removals) — the cache-undersized signal.
	evictions atomic.Uint64
}

type cacheEntry struct {
	key  string
	stmt *Stmt
	gen  uint64 // store commit generation the statement compiled under
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// cacheKey builds the lookup key. Conventions only affect ARC statement
// semantics, so SQL and Datalog share entries across convention changes.
func cacheKey(lang Lang, conv convention.Conventions, src, pred string) string {
	convPart := ""
	if lang == LangARC {
		convPart = conv.String()
	}
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s", lang, convPart, pred, src)
}

// lookup returns the cached statement when present AND compiled under
// the store's current commit generation; a stale entry is evicted so the
// caller re-prepares.
func (c *stmtCache) lookup(key string, db *DB) *Stmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.gen != db.store.Gen() {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil
	}
	c.order.MoveToFront(el)
	return e.stmt
}

// store inserts a fresh entry, evicting the least recently used past cap.
func (c *stmtCache) store(key string, s *Stmt, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	el := c.order.PushFront(&cacheEntry{key: key, stmt: s, gen: gen})
	c.entries[key] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Evictions reports how many entries capacity pressure has evicted.
func (c *stmtCache) Evictions() uint64 { return c.evictions.Load() }

// Len reports the number of cached statements (for tests).
func (c *stmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

func chain(n int) *relation.Relation {
	p := relation.New("P", "s", "t")
	for i := 0; i < n; i++ {
		p.Add(i, i+1)
	}
	return p
}

func TestSQLPreparedParamQuery(t *testing.T) {
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(2, 21).Add(3, 30)
	db := Open(r)
	stmt, err := db.Prepare(LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d, want 1", got)
	}
	if cols := stmt.Columns(); len(cols) != 2 || cols[0] != "A" || cols[1] != "B" {
		t.Fatalf("Columns = %v", cols)
	}
	for _, tc := range []struct {
		arg  int
		want int
	}{{1, 1}, {2, 2}, {3, 1}, {9, 0}} {
		rows, err := stmt.Query(context.Background(), tc.arg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var a, b int64
			if err := rows.Scan(&a, &b); err != nil {
				t.Fatal(err)
			}
			if a != int64(tc.arg) {
				t.Fatalf("A = %d, want %d", a, tc.arg)
			}
			n++
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if n != tc.want {
			t.Fatalf("arg %d: %d rows, want %d", tc.arg, n, tc.want)
		}
	}
	// The plan must actually probe on the parameter, not scan.
	explain, err := stmt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "probe(A=$1)") {
		t.Fatalf("expected a parameter probe in the plan:\n%s", explain)
	}
}

func TestSQLArgCountAndTypeErrors(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 2))
	stmt, err := db.Prepare(LangSQL, "select R.A from R where R.A = $1 and R.B = $2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background(), 1); err == nil {
		t.Fatal("expected an argument-count error")
	}
	if _, err := stmt.Query(context.Background(), 1, In("X", relation.New("X", "a"))); err == nil {
		t.Fatal("expected a binding-rejected error for SQL")
	}
	if _, err := stmt.Query(context.Background(), 1, struct{}{}); err == nil {
		t.Fatal("expected an unsupported-type error")
	}
}

func TestSQLNullAndFloatParams(t *testing.T) {
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, nil)
	db := Open(r)
	// NULL binding: equality with NULL holds for no row.
	rel, err := db.QueryAll(context.Background(), LangSQL, "select R.A from R where R.B = $1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 0 {
		t.Fatalf("NULL = NULL matched %d rows, want 0", rel.Card())
	}
	// Float binding matches the int column under value equality.
	rel, err = db.QueryAll(context.Background(), LangSQL, "select R.A from R where R.B = $1", 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Fatalf("10.0 matched %d rows, want 1", rel.Card())
	}
}

func TestARCPreparedWithBinding(t *testing.T) {
	db := Open(chain(5)).SetConventions(convention.SetLogic())
	stmt, err := db.Prepare(LangARC,
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := stmt.QueryAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 15 { // chain of 5 edges → 15 TC pairs
		t.Fatalf("TC over chain(5) has %d pairs, want 15", rel.Distinct())
	}
	// Rebind P to a different instance through the override slot.
	rel, err = stmt.QueryAll(context.Background(), In("P", chain(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 6 {
		t.Fatalf("TC over bound chain(3) has %d pairs, want 6", rel.Distinct())
	}
	// The original catalog relation is untouched for the next execution.
	rel, err = stmt.QueryAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 15 {
		t.Fatalf("override leaked across executions: %d pairs", rel.Distinct())
	}
}

func TestDatalogPreparedWithBinding(t *testing.T) {
	db := Open(chain(4))
	stmt, err := db.Prepare(LangDatalog, "A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	if err != nil {
		t.Fatal(err)
	}
	if cols := stmt.Columns(); len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	rel, err := stmt.QueryAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 10 {
		t.Fatalf("TC over chain(4) has %d pairs, want 10", rel.Distinct())
	}
	rel, err = stmt.QueryAll(context.Background(), In("P", chain(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Distinct() != 3 {
		t.Fatalf("TC over bound chain(2) has %d pairs, want 3", rel.Distinct())
	}
}

func TestThreeLanguageAgreement(t *testing.T) {
	// The paper's one-language-family claim, through the one front door:
	// transitive closure in SQL, ARC, and Datalog over the same instance
	// must be byte-identical.
	db := Open(chain(10)).SetConventions(convention.SetLogic())
	ctx := context.Background()
	sqlRel, err := db.QueryAll(ctx, LangSQL, `with recursive tc(s, t) as (
		select P.s, P.t from P union select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc`)
	if err != nil {
		t.Fatal(err)
	}
	arcRel, err := db.QueryAll(ctx, LangARC,
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		t.Fatal(err)
	}
	dlRel, err := db.QueryAll(ctx, LangDatalog, "A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	if err != nil {
		t.Fatal(err)
	}
	canon := func(r *relation.Relation) string { return r.Rename("X", []string{"c1", "c2"}).String() }
	if canon(sqlRel) != canon(arcRel) || canon(sqlRel) != canon(dlRel) {
		t.Fatalf("three-way divergence:\nSQL:\n%s\nARC:\n%s\nDatalog:\n%s", sqlRel, arcRel, dlRel)
	}
}

func TestStmtCacheHitAndInvalidation(t *testing.T) {
	r := relation.New("R", "A", "B").Add(1, 10)
	db := Open(r)
	const src = "select R.A from R where R.A = $1"
	s1, err := db.Prepare(LangSQL, src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Prepare(LangSQL, src)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("second Prepare missed the statement cache")
	}
	// A committed write (new store generation) invalidates. Direct
	// mutation of the seed *relation.Relation no longer does — the
	// engine reads immutable snapshots, and the cache revalidates on
	// the single commit generation instead of per-relation recheck.
	if _, err := db.Exec(context.Background(), LangSQL, "insert into R values (2, 20)"); err != nil {
		t.Fatal(err)
	}
	s3, err := db.Prepare(LangSQL, src)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("insert did not invalidate the cached statement")
	}
	// Schema change (Register) invalidates.
	s4, _ := db.Prepare(LangSQL, src)
	db.Register(relation.New("R", "A", "B").Add(7, 70))
	s5, err := db.Prepare(LangSQL, src)
	if err != nil {
		t.Fatal(err)
	}
	if s5 == s4 {
		t.Fatal("Register did not invalidate the cached statement")
	}
	// The re-prepared statement reads the replacement relation.
	rel, err := s5.QueryAll(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Fatalf("re-prepared statement sees %d rows for A=7, want 1", rel.Card())
	}
	// The pre-Register statement still answers from its snapshot.
	rel, err = s4.QueryAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Fatalf("old statement lost its snapshot: %d rows for A=1", rel.Card())
	}
}

func TestStmtCacheLRUEviction(t *testing.T) {
	db := Open(relation.New("R", "A").Add(1))
	db.cache = newStmtCache(2)
	mustPrepare := func(src string) {
		if _, err := db.Prepare(LangSQL, src); err != nil {
			t.Fatal(err)
		}
	}
	mustPrepare("select R.A from R")
	mustPrepare("select R.A c from R")
	mustPrepare("select R.A d from R")
	if n := db.cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
}

func TestRowsMultiplicityExpansionAndValues(t *testing.T) {
	r := relation.New("R", "A").Add(5).Add(5).Add(5).Add(8)
	db := Open(r)
	rows, err := db.Query(context.Background(), LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	counts := map[int64]int{}
	for rows.Next() {
		vs := rows.Values()
		if len(vs) != 1 {
			t.Fatalf("Values = %v", vs)
		}
		counts[vs[0].AsInt()]++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if counts[5] != 3 || counts[8] != 1 {
		t.Fatalf("bag expansion wrong: %v", counts)
	}
}

func TestRowsScanConversions(t *testing.T) {
	r := relation.New("R", "i", "f", "s", "n").Add(4, 2.5, "hi", nil)
	db := Open(r)
	rows, err := db.Query(context.Background(), LangSQL, "select R.i, R.f, R.s, R.n from R")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no row")
	}
	var i int64
	var f float64
	var s string
	var n any
	if err := rows.Scan(&i, &f, &s, &n); err != nil {
		t.Fatal(err)
	}
	if i != 4 || f != 2.5 || s != "hi" || n != nil {
		t.Fatalf("scanned (%v, %v, %q, %v)", i, f, s, n)
	}
	var v value.Value
	if err := rows.Scan(&v, &v, &v, &v); err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Fatalf("last column = %v, want NULL", v)
	}
	var wrong bool
	if err := rows.Scan(&wrong, &f, &s, &n); err == nil {
		t.Fatal("expected a conversion error scanning int into *bool")
	}
}

func TestFallbackSQLThroughEngine(t *testing.T) {
	// LATERAL is outside the planner fragment: the statement must fall
	// back to the reference enumeration path, with parameters still bound.
	r := relation.New("R", "A").Add(1).Add(2)
	s := relation.New("S", "A", "B").Add(1, 10).Add(2, 20)
	db := Open(r, s)
	stmt, err := db.Prepare(LangSQL,
		"select R.A, X.B from R, lateral (select S.B from S where S.A = R.A) X where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Explain(); err == nil {
		t.Fatal("expected Explain to report the planner bailout")
	}
	rel, err := stmt.QueryAll(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 || rel.Tuples()[0][1].AsInt() != 20 {
		t.Fatalf("fallback result wrong:\n%s", rel)
	}
}

func TestPrepareErrors(t *testing.T) {
	db := Open(relation.New("R", "A").Add(1))
	if _, err := db.Prepare(LangSQL, "select from where"); err == nil {
		t.Fatal("expected a SQL parse error")
	}
	if _, err := db.Prepare(LangARC, "{broken"); err == nil {
		t.Fatal("expected an ARC parse error")
	}
	if _, err := db.Prepare(LangDatalog, ""); err == nil {
		t.Fatal("expected an empty-program error")
	}
	if _, err := db.PrepareDatalog("A(x) :- P(x).", "nope"); err == nil {
		t.Fatal("expected an unknown-predicate error")
	}
}

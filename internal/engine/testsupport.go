package engine

import (
	"repro/internal/relation"
)

// NewPanicRowsForTest builds a Rows whose stream yields n single-column
// placeholder rows and then panics with val. Operator-tree panics are
// deliberately unreachable from valid input, so the panic-path tests —
// the Rows.pull recover here, and the PanicError → INTERNAL error-frame
// conversion in the server — use this to drive the backstop
// deterministically. Not for production use.
func NewPanicRowsForTest(cols []string, n int, val any) *Rows {
	return newRows(cols, func(yield func(relation.Tuple, int) bool) {
		for i := 0; i < n; i++ {
			if !yield(relation.Tuple{relation.Lift(i)}, 1) {
				return
			}
		}
		panic(val)
	}, func() error { return nil }, nil)
}

package engine

import (
	"context"
	"testing"

	"repro/internal/qgen"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/sqleval"
	"repro/internal/value"
	"repro/internal/workload"
)

// liftLits rewrites q in place, replacing every integer literal used as
// a comparison operand with the next $n placeholder, and returns the
// argument list the rewritten query binds. This turns the qgen corpora
// into parameterized prepared statements whose results must not change.
func liftLits(q sql.Query) []any {
	var args []any
	sql.Walk(q, nil, func(e sql.Expr) {
		cmp, ok := e.(*sql.Cmp)
		if !ok {
			return
		}
		for _, side := range []*sql.Expr{&cmp.L, &cmp.R} {
			if lit, ok := (*side).(*sql.Lit); ok && lit.Val.Kind() == value.KindInt {
				args = append(args, int(lit.Val.AsInt()))
				*side = &sql.Param{Index: len(args)}
			}
		}
	}, nil)
	return args
}

// TestPreparedDifferentialCorpora runs the qgen differential corpora
// (core grammar, explicit-join grammar, recursive CTEs) through the
// engine's Prepare-then-Query path with every integer comparison literal
// lifted into a $n parameter, asserting byte-identical results against
// the direct (literal, unprepared) reference evaluation — both through
// the bulk QueryAll and re-materialized off the streaming cursor.
func TestPreparedDifferentialCorpora(t *testing.T) {
	rng := workload.Rand(20260731)
	planned, total := 0, 0
	trial := func(i int, src string) {
		t.Helper()
		inst := qgen.RandomInstance(rng, 12, i%3 == 0)
		refDB := sqleval.DB{}
		for _, r := range inst.Relations() {
			refDB[r.Name()] = r
		}
		want, err := sqleval.EvalString(src, refDB)
		if err != nil {
			t.Fatalf("trial %d: reference rejected %q: %v", i, src, err)
		}
		q, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", i, src, err)
		}
		args := liftLits(q)
		psrc := q.String()
		db := Open(inst.Relations()...)
		stmt, err := db.Prepare(LangSQL, psrc)
		if err != nil {
			t.Fatalf("trial %d: Prepare %q: %v", i, psrc, err)
		}
		if len(args) != stmt.NumParams() {
			t.Fatalf("trial %d: lifted %d literals but statement binds %d", i, len(args), stmt.NumParams())
		}
		total++
		if stmt.plan != nil {
			planned++
		}
		got, err := stmt.QueryAll(context.Background(), args...)
		if err != nil {
			t.Fatalf("trial %d: QueryAll %q: %v", i, psrc, err)
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: prepared path diverged on %q (from %q)\nreference:\n%s\nprepared:\n%s",
				i, psrc, src, want, got)
		}
		// Second execution of the same statement must not drift (the
		// re-plan-free property), this time through the cursor.
		rows, err := stmt.Query(context.Background(), args...)
		if err != nil {
			t.Fatalf("trial %d: Query: %v", i, err)
		}
		streamed := relation.New("result", stmt.Columns()...)
		for rows.Next() {
			streamed.Insert(relation.Tuple(rows.Values()))
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("trial %d: cursor error: %v", i, err)
		}
		if streamed.String() != want.String() {
			t.Fatalf("trial %d: streamed path diverged on %q\nreference:\n%s\nstreamed:\n%s",
				i, psrc, want, streamed)
		}
	}
	n := 0
	for i := 0; i < 1200; i++ {
		trial(n, qgen.Generate(rng))
		n++
	}
	corePlanned, coreTotal := planned, total
	if corePlanned < coreTotal*90/100 {
		t.Fatalf("only %d/%d parameterized core-grammar statements were planner-compiled", corePlanned, coreTotal)
	}
	for i := 0; i < 400; i++ {
		trial(n, qgen.GenerateJoins(rng))
		n++
	}
	for i := 0; i < 200; i++ {
		trial(n, qgen.GenerateRecursive(rng))
		n++
	}
	t.Logf("prepared differential: %d/%d planner-compiled (core: %d/%d)", planned, total, corePlanned, coreTotal)
}

package engine

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
)

// copyDir clones a storage directory byte-for-byte (one level of
// checkpoint subdirectories) so a crash can be simulated destructively
// on the copy while the source keeps accumulating state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		b, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryTorture is the durability torture loop: concurrent
// writers commit through the full engine write path, then the process
// "dies" — simulated by abandoning the directory without Close and
// mutilating the WAL at a random byte offset (torn tail) or with a
// flipped CRC byte. Every reopen must recover exactly a committed
// prefix: for the recovered generation G, every row acknowledged at a
// generation <= G is present and every row acknowledged after G is
// absent — never a partial commit, never corruption.
func TestCrashRecoveryTorture(t *testing.T) {
	const writers = 4
	const commitsPerWriter = 25
	rng := rand.New(rand.NewSource(20260808))

	for round := 0; round < 6; round++ {
		dir := t.TempDir()
		var seed []*relation.Relation
		for w := 0; w < writers; w++ {
			seed = append(seed, relation.New(fmt.Sprintf("W%d", w), "seq"))
		}
		db, err := OpenDurable(dir, storage.Options{}, seed...)
		if err != nil {
			t.Fatal(err)
		}

		// ack[gen] = (writer, seq) committed at that generation. Writers
		// hit distinct tables so commits never conflict; each Exec's
		// Result.Generation is unique.
		type commit struct{ writer, seq int }
		acks := make([]map[uint64]commit, writers)
		done := make(chan error, writers)
		for w := 0; w < writers; w++ {
			acks[w] = map[uint64]commit{}
			go func(w int) {
				src := fmt.Sprintf("insert into W%d values ($1)", w)
				for i := 0; i < commitsPerWriter; i++ {
					res, err := db.Exec(nil, LangSQL, src, int64(i))
					if err != nil {
						done <- err
						return
					}
					acks[w][res.Generation] = commit{writer: w, seq: i}
				}
				done <- nil
			}(w)
		}
		for w := 0; w < writers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		ack := map[uint64]commit{}
		for _, m := range acks {
			for g, c := range m {
				ack[g] = c
			}
		}

		// "Crash": no Close, no checkpoint — just take the bytes.
		crashDir := filepath.Join(t.TempDir(), "crash")
		copyDir(t, dir, crashDir)
		db.Close()

		wals, err := filepath.Glob(filepath.Join(crashDir, "wal-*.log"))
		if err != nil || len(wals) == 0 {
			t.Fatalf("no WAL in crash copy: %v (%v)", wals, err)
		}
		wal := wals[len(wals)-1]
		raw, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		switch round % 3 {
		case 0: // torn tail: kill at a random WAL byte offset
			cut := 8 + rng.Intn(len(raw)-8)
			if err := os.WriteFile(wal, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		case 1: // bit rot: flip a random byte past the magic
			raw[8+rng.Intn(len(raw)-8)] ^= 0xFF
			if err := os.WriteFile(wal, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		case 2: // clean crash: the full log survives
		}

		db2, err := OpenDurable(crashDir, storage.Options{})
		if err != nil {
			t.Fatalf("round %d: reopen after crash: %v", round, err)
		}
		recGen := db2.Generation()
		for w := 0; w < writers; w++ {
			rel := db2.Relation(fmt.Sprintf("W%d", w))
			if rel == nil {
				t.Fatalf("round %d: table W%d lost", round, w)
			}
			got := map[int]bool{}
			rel.Each(func(tp relation.Tuple, m int) {
				n := tp[0].AsInt()
				if m != 1 {
					t.Errorf("round %d: W%d seq %d has multiplicity %d", round, w, n, m)
				}
				got[int(n)] = true
			})
			want := map[int]bool{}
			for g, c := range acks[w] {
				if g <= recGen {
					want[c.seq] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("round %d: W%d recovered %d rows, want %d (gen %d)", round, w, len(got), len(want), recGen)
			}
			for s := range want {
				if !got[s] {
					t.Fatalf("round %d: W%d missing committed seq %d (gen <= %d)", round, w, s, recGen)
				}
			}
		}
		// The prefix property across all writers: no acknowledged commit
		// past the recovered generation may have left its row behind.
		for g := range ack {
			if g > recGen {
				c := ack[g]
				rel := db2.Relation(fmt.Sprintf("W%d", c.writer))
				found := false
				rel.Each(func(tp relation.Tuple, m int) {
					if n := tp[0].AsInt(); int(n) == c.seq {
						found = true
					}
				})
				if found {
					t.Fatalf("round %d: row from generation %d survived a recovery to generation %d", round, g, recGen)
				}
			}
		}
		db2.Close()
	}
}

// crashChildEnv marks a test binary re-executed as the crash victim.
const crashChildEnv = "REPRO_CRASH_CHILD_DIR"

// TestCrashChild is not a test: it is the subprocess body for
// TestKillMinus9Durability. It opens the directory named by the
// environment with fsync on and inserts rows forever, acknowledging
// each durably committed sequence number on stdout.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("not a crash child")
	}
	db, err := OpenDurable(dir, storage.Options{Fsync: true}, relation.New("K", "seq"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if _, err := db.Exec(nil, LangSQL, "insert into K values ($1)", int64(i)); err != nil {
			t.Fatal(err)
		}
		// The WAL append is fsynced before Exec returns, so this ack
		// promises the row survives SIGKILL.
		fmt.Printf("ack %d\n", i)
	}
}

// TestKillMinus9Durability is the real-crash half of the torture suite:
// a child process commits with -fsync semantics and is SIGKILLed at a
// random moment; every row it acknowledged before dying must be present
// after recovery, and the recovered rows must be a contiguous prefix
// (acknowledged rows plus at most the commits that were in flight).
func TestKillMinus9Durability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no test binary path")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(exe, "-test.run", "TestCrashChild")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		acked := -1
		scanner := bufio.NewScanner(out)
		deadline := time.After(time.Duration(30+rng.Intn(120)) * time.Millisecond)
		killed := false
	scan:
		for scanner.Scan() {
			line := scanner.Text()
			if n, ok := strings.CutPrefix(line, "ack "); ok {
				v, err := strconv.Atoi(n)
				if err == nil && v > acked {
					acked = v
				}
			}
			select {
			case <-deadline:
				cmd.Process.Signal(syscall.SIGKILL)
				killed = true
				break scan
			default:
			}
		}
		if !killed {
			cmd.Process.Signal(syscall.SIGKILL)
		}
		cmd.Wait()
		if acked < 0 {
			t.Fatalf("round %d: child died before acknowledging any commit", round)
		}

		db, err := OpenDurable(dir, storage.Options{})
		if err != nil {
			t.Fatalf("round %d: recovery after SIGKILL: %v", round, err)
		}
		rel := db.Relation("K")
		if rel == nil {
			t.Fatalf("round %d: table K lost", round)
		}
		got := map[int]bool{}
		max := -1
		rel.Each(func(tp relation.Tuple, m int) {
			n := tp[0].AsInt()
			got[int(n)] = true
			if int(n) > max {
				max = int(n)
			}
		})
		if max < acked {
			t.Fatalf("round %d: acknowledged seq %d lost to SIGKILL (recovered up to %d)", round, acked, max)
		}
		for i := 0; i <= max; i++ {
			if !got[i] {
				t.Fatalf("round %d: recovered rows are not a prefix: missing %d of 0..%d", round, i, max)
			}
		}
		db.Close()
		t.Logf("round %d: acked %d, recovered prefix 0..%d", round, acked, max)
	}
}

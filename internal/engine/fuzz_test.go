package engine

import (
	"context"
	"testing"

	"repro/internal/relation"
)

// fuzzDB builds the catalog the fuzzed statements prepare against: a
// couple of plausible relations so inputs that parse also validate and
// plan, exercising the deeper layers too.
func fuzzDB() *DB {
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, 20)
	p := relation.New("P", "s", "t").Add(1, 2).Add(2, 3)
	return Open(r, p)
}

// FuzzPrepareSQL asserts Prepare never panics on arbitrary SQL bytes —
// any outcome is fine as long as it is a value or an error. The recover
// guard at the engine boundary converts a missed parser/planner panic
// into a *PanicError, which the fuzzer treats as a finding.
func FuzzPrepareSQL(f *testing.F) {
	for _, seed := range []string{
		"select R.A from R",
		"select R.A, R.B from R where R.A = $1",
		"select R.A from R where R.A in (select P.s from P)",
		"with recursive A (s, t) as (select P.s, P.t from P union select P.s, A.t from P, A where P.t = A.s) select A.s from A",
		"select count(*) from R group by R.B having count(*) > 1",
		"select from where", "((((", "select $0 $99999", ";;;",
		"select R.A from R order by", "with a as (select", "\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := db.Prepare(LangSQL, src)
		assertNoPanicError(t, err)
		_ = stmt
	})
}

// FuzzPrepareARC asserts ARC comprehension parsing/validation never
// panics on arbitrary bytes.
func FuzzPrepareARC(f *testing.F) {
	for _, seed := range []string{
		"{(A: r.A) | r ∈ R}",
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}",
		"{broken", "{}", "{x | ", "∃∃∃", "{(A: r.A) | r ∈ }", "\xff{|}",
	} {
		f.Add(seed)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := db.Prepare(LangARC, src)
		assertNoPanicError(t, err)
		_ = stmt
	})
}

// FuzzPrepareDatalog asserts Datalog program parsing never panics on
// arbitrary bytes.
func FuzzPrepareDatalog(f *testing.F) {
	for _, seed := range []string{
		"A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).",
		"A(x) :- P(x, _), !Q(x).",
		"A(s) :- s = sum x : { P(x, y) }.",
		"A(x :-", ":-", "A().", "A(x) :- A(x).", "%comment only", "\x00.",
	} {
		f.Add(seed)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := db.Prepare(LangDatalog, src)
		assertNoPanicError(t, err)
		_ = stmt
	})
}

// FuzzExecSQL asserts the write path never panics on arbitrary SQL
// bytes: Prepare classifies the statement, Exec applies DML/DDL through
// a write set and commits. Each input runs against a fresh DB so
// accumulated writes never change what a given input exercises.
func FuzzExecSQL(f *testing.F) {
	for _, seed := range []string{
		"insert into R values (1, 2)",
		"insert into R (B, A) values (3, 4), (5, 6)",
		"insert into R select P.s, P.t from P",
		"insert into R values ($1, $1 + 1)",
		"delete from R",
		"delete from R where R.A = 1",
		"delete from R r where r.A in (select P.s from P)",
		"create table T (X int, Y text)",
		"begin", "commit", "rollback",
		"insert into", "delete where", "create table R (A, A)",
		"insert into R values ((((", "insert into Nope values (1)",
		"delete from R where $9", "create table \x00 (a)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db := fuzzDB()
		stmt, err := db.Prepare(LangSQL, src)
		assertNoPanicError(t, err)
		if err != nil {
			return
		}
		if stmt.Kind() == KindQuery {
			return
		}
		_, err = stmt.Exec(context.Background())
		assertNoPanicError(t, err)
	})
}

// FuzzExecFactOps asserts the shared ARC/Datalog assertion/retraction
// surface never panics on arbitrary bytes.
func FuzzExecFactOps(f *testing.F) {
	for _, seed := range []string{
		"+R(1, 2).", "-P(1, 2)", "+R(1, 2) -R(1, 2); +P('a', \"b\")",
		"+R(1.5, -2)", "+R(true, null)", "+", "-", "+R(", "+R(1",
		"+R('unterminated", "+R(1,2,3)", "+Nope(1)", "++--",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db := fuzzDB()
		stmt, err := db.Prepare(LangARC, src)
		assertNoPanicError(t, err)
		if err != nil || stmt.Kind() == KindQuery {
			return
		}
		_, err = stmt.Exec(context.Background())
		assertNoPanicError(t, err)
	})
}

// assertNoPanicError fails the fuzz run when Prepare survived only
// thanks to the recover guard: the guard keeps a server alive in
// production, but a panic on hostile input is still a parser bug the
// fuzzer should surface.
func assertNoPanicError(t *testing.T, err error) {
	t.Helper()
	if pe, ok := err.(*PanicError); ok {
		t.Fatalf("Prepare panicked (recovered at boundary): %v\n%s", pe.Val, pe.Stack)
	}
}

// slowlog.go is the engine's structured slow-query log: a JSON-lines
// stream of every statement whose execution crossed a configurable
// duration threshold, recording a stable statement fingerprint (so log
// aggregation groups re-executions of one statement regardless of bound
// arguments), the statement kind, duration, row count, conflict retries,
// and — for traced queries — the operator trace summary.
package engine

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"repro/internal/trace"
)

// SlowQueryEntry is one line of the slow-query log, serialized as JSON.
type SlowQueryEntry struct {
	// Time is the completion time, RFC 3339 with nanoseconds, UTC.
	Time string `json:"time"`
	// Fingerprint identifies the statement text (FNV-64a over language
	// and source), stable across executions and argument values.
	Fingerprint string  `json:"fingerprint"`
	Lang        string  `json:"lang"`
	Kind        string  `json:"kind"`
	Source      string  `json:"source"`
	DurationMS  float64 `json:"duration_ms"`
	// Rows counts rows returned (queries) or affected (writes).
	Rows int64 `json:"rows"`
	// Retries counts autocommit conflict retries (writes only).
	Retries int `json:"retries,omitempty"`
	// Trace is the operator trace summary when the execution was traced.
	Trace string `json:"trace,omitempty"`
}

// slowLog is the installed sink: writes are serialized under mu so
// concurrent sessions emit whole lines.
type slowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// SetSlowQueryLog installs (or, with a nil writer, removes) the
// slow-query log: statements that run for threshold or longer append one
// JSON line to w. The writer is serialized internally; installation is
// atomic with respect to in-flight executions.
func (db *DB) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	if w == nil {
		db.slow.Store(nil)
		return
	}
	db.slow.Store(&slowLog{w: w, threshold: threshold})
}

// Fingerprint returns the slow-query-log identity of a statement text:
// 16 hex digits of FNV-64a over the language name and source.
func Fingerprint(lang Lang, src string) string {
	h := fnv.New64a()
	io.WriteString(h, lang.String())
	h.Write([]byte{0})
	io.WriteString(h, src)
	return fmt.Sprintf("%016x", h.Sum64())
}

// observeSlow records one finished execution, emitting a log line when
// the slow-query log is installed and the duration crosses its
// threshold. The disabled path is one atomic pointer load.
func (db *DB) observeSlow(lang Lang, kind StmtKind, src string, d time.Duration, rows int64, retries int, tr *trace.Trace) {
	sl := db.slow.Load()
	if sl == nil || d < sl.threshold {
		return
	}
	db.slowQueries.Add(1)
	line, err := json.Marshal(SlowQueryEntry{
		Time:        time.Now().UTC().Format(time.RFC3339Nano),
		Fingerprint: Fingerprint(lang, src),
		Lang:        lang.String(),
		Kind:        kind.String(),
		Source:      src,
		DurationMS:  float64(d) / float64(time.Millisecond),
		Rows:        rows,
		Retries:     retries,
		Trace:       tr.Summary(),
	})
	if err != nil {
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.w.Write(append(line, '\n'))
}

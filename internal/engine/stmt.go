package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alt"
	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/sqleval"
	"repro/internal/value"
)

// Binding names an input relation for ARC and Datalog statement
// execution: ARC statements read it through the evaluator's override
// slot (shadowing a catalog relation of the same name for that execution
// only), Datalog statements through an EDB slot.
type Binding struct {
	Name string
	Rel  *relation.Relation
}

// In builds a named input binding.
func In(name string, rel *relation.Relation) Binding { return Binding{Name: name, Rel: rel} }

// Stmt is a prepared statement: parsed, validated, and (for SQL inside
// the planner fragment) compiled exactly once at Prepare. A Stmt is
// immutable and safe for concurrent Query calls; it is bound to the
// relations registered at Prepare time (the statement cache revalidates
// on schema or data changes, so a later Prepare reflects them).
type Stmt struct {
	db      *DB
	lang    Lang
	src     string
	cols    []string
	nparams int
	refs    []string // referenced relation names, for cache revalidation

	// SQL
	q       sql.Query
	plan    *plan.Plan // nil → enumeration fallback
	planErr error      // the planner's bailout reason, for Explain
	rels    sqleval.DB // prepare-time relation snapshot

	// ARC
	col  *alt.Collection
	link *alt.Link
	cat  *eval.Catalog
	conv convention.Conventions

	// Datalog
	prog *datalog.Program
	pred string
}

// compileStmt prepares one statement in the given language.
func compileStmt(db *DB, lang Lang, src, pred string, rels map[string]*relation.Relation, cat *eval.Catalog, conv convention.Conventions) (*Stmt, error) {
	switch lang {
	case LangSQL:
		return compileSQL(db, src, rels)
	case LangARC:
		col, err := arc.ParseCollection(src)
		if err != nil {
			return nil, err
		}
		return compileARC(db, col, src, cat, conv)
	case LangDatalog:
		return compileDatalog(db, src, pred, rels)
	}
	return nil, fmt.Errorf("engine: unknown language %v", lang)
}

func compileSQL(db *DB, src string, rels map[string]*relation.Relation) (*Stmt, error) {
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	s := &Stmt{
		db:      db,
		lang:    LangSQL,
		src:     src,
		q:       q,
		nparams: sql.MaxParam(q),
		refs:    referencedSQL(q),
		rels:    rels,
	}
	if p, err := plan.Compile(q, rels); err == nil {
		s.plan = p
		s.cols = p.Attrs()
	} else {
		if !errors.Is(err, plan.ErrNotPlannable) {
			return nil, err
		}
		s.planErr = err
		s.cols = sqlColumns(q)
	}
	return s, nil
}

func compileARC(db *DB, col *alt.Collection, src string, cat *eval.Catalog, conv convention.Conventions) (*Stmt, error) {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db:   db,
		lang: LangARC,
		src:  src,
		cols: col.Head.Attrs,
		refs: referencedARC(col),
		col:  col,
		link: link,
		cat:  cat,
		conv: conv,
	}, nil
}

func compileDatalog(db *DB, src, pred string, rels map[string]*relation.Relation) (*Stmt, error) {
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("engine: empty Datalog program")
	}
	if pred == "" {
		pred = prog.Rules[len(prog.Rules)-1].Head.Pred
	}
	arity := -1
	for _, r := range prog.Rules {
		if r.Head.Pred == pred {
			arity = len(r.Head.Args)
			break
		}
	}
	if arity < 0 {
		return nil, fmt.Errorf("engine: predicate %q is not derived by the program", pred)
	}
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = fmt.Sprintf("x%d", i+1)
	}
	edb := sqleval.DB{}
	for name, r := range rels {
		edb[name] = r
	}
	return &Stmt{
		db:   db,
		lang: LangDatalog,
		src:  src,
		cols: cols,
		refs: referencedDatalog(prog),
		prog: prog,
		pred: pred,
		rels: edb,
	}, nil
}

// Lang returns the statement's language.
func (s *Stmt) Lang() Lang { return s.lang }

// Source returns the prepared source text.
func (s *Stmt) Source() string { return s.src }

// Columns returns the output column names.
func (s *Stmt) Columns() []string { return s.cols }

// NumParams returns how many positional $n arguments a SQL statement
// binds (always 0 for ARC and Datalog, which bind named relations).
func (s *Stmt) NumParams() int { return s.nparams }

// Explain renders the compiled physical plan of a SQL statement, or the
// reason it executes on the reference enumeration path; ARC statements
// render their per-scope plans.
func (s *Stmt) Explain() (string, error) {
	switch s.lang {
	case LangSQL:
		if s.plan != nil {
			return s.plan.Explain(), nil
		}
		return "", s.planErr
	case LangARC:
		return eval.ExplainCollection(s.col, s.cat, s.conv)
	}
	return "", fmt.Errorf("engine: no plan rendering for %v statements", s.lang)
}

// splitArgs validates and converts Query arguments: SQL statements take
// exactly NumParams positional values; ARC and Datalog statements take
// any number of named Bindings.
func (s *Stmt) splitArgs(args []any) ([]value.Value, map[string]*relation.Relation, error) {
	if s.lang == LangSQL {
		vals := make([]value.Value, 0, len(args))
		for i, a := range args {
			if _, isBind := a.(Binding); isBind {
				return nil, nil, fmt.Errorf("engine: SQL statements bind positional $n values, not named relations (argument %d)", i+1)
			}
			v, err := liftArg(a)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: argument %d: %w", i+1, err)
			}
			vals = append(vals, v)
		}
		if len(vals) != s.nparams {
			return nil, nil, fmt.Errorf("engine: statement binds %d parameter(s), got %d argument(s)", s.nparams, len(vals))
		}
		return vals, nil, nil
	}
	var inputs map[string]*relation.Relation
	for i, a := range args {
		b, ok := a.(Binding)
		if !ok {
			return nil, nil, fmt.Errorf("engine: %v statements take engine.In(name, relation) bindings, got %T (argument %d)", s.lang, a, i+1)
		}
		if b.Rel == nil {
			return nil, nil, fmt.Errorf("engine: binding %q has a nil relation", b.Name)
		}
		if inputs == nil {
			inputs = map[string]*relation.Relation{}
		}
		inputs[b.Name] = b.Rel
	}
	return nil, inputs, nil
}

// liftArg converts a Go value into a value.Value via relation.LiftErr —
// bind arguments are client-influenced, so unsupported types must come
// back as errors, never as Lift's panic.
func liftArg(a any) (value.Value, error) {
	return relation.LiftErr(a)
}

// Query executes the statement with the given arguments and returns a
// streaming cursor. For planner-compiled SQL the cursor pulls rows
// directly off the operator tree — nothing is materialized up front —
// and ctx cancellation is polled in the pull loop and in fixpoint
// rounds. ARC, Datalog, and fallback-path SQL evaluate eagerly (their
// evaluators are materializing) and the cursor streams the result.
func (s *Stmt) Query(ctx context.Context, args ...any) (rows *Rows, err error) {
	// Same backstop as Prepare: evaluator panics on hostile bindings
	// become statement errors (streaming pulls are guarded in Rows.Next).
	defer recoverTo(&err, "query")
	vals, inputs, err := s.splitArgs(args)
	if err != nil {
		return nil, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}
	if s.lang == LangSQL && s.plan != nil {
		seq, errFn := s.plan.Stream(vals, check)
		return newRows(s.cols, seq, errFn, check), nil
	}
	rel, err := s.execMaterialized(vals, inputs, check)
	if err != nil {
		return nil, err
	}
	cols := s.cols
	if cols == nil {
		cols = rel.Attrs()
	}
	return relationRows(cols, rel, check), nil
}

// QueryAll executes the statement and materializes the full result
// relation — the bulk form, byte-identical to the pre-engine evaluator
// entry points.
func (s *Stmt) QueryAll(ctx context.Context, args ...any) (rel *relation.Relation, err error) {
	defer recoverTo(&err, "query")
	vals, inputs, err := s.splitArgs(args)
	if err != nil {
		return nil, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}
	if s.lang == LangSQL && s.plan != nil {
		return s.plan.ExecuteWith(vals, check)
	}
	return s.execMaterialized(vals, inputs, check)
}

// execMaterialized runs the non-streaming paths.
func (s *Stmt) execMaterialized(vals []value.Value, inputs map[string]*relation.Relation, check func() error) (*relation.Relation, error) {
	switch s.lang {
	case LangSQL:
		// The statement fell outside the planner fragment at Prepare:
		// run the reference enumeration path (never re-plan per call).
		return sqleval.EvalWith(s.q, s.rels, sqleval.PlanOff, vals, check)
	case LangARC:
		return eval.EvalPrepared(s.col, s.link, s.cat, s.conv, inputs, check)
	case LangDatalog:
		edb := s.rels
		if len(inputs) > 0 {
			edb = make(sqleval.DB, len(s.rels)+len(inputs))
			for k, v := range s.rels {
				edb[k] = v
			}
			for k, v := range inputs {
				edb[k] = v
			}
		}
		return datalog.EvalPredicateWith(s.prog, datalog.EDB(edb), s.pred, check)
	}
	return nil, fmt.Errorf("engine: unknown language %v", s.lang)
}

// sqlColumns computes the output column names of a query on the
// enumeration path: the leftmost SELECT's item names with the reference
// evaluator's duplicate renaming.
func sqlColumns(q sql.Query) []string {
	switch x := q.(type) {
	case *sql.With:
		return sqlColumns(x.Body)
	case *sql.Union:
		return sqlColumns(x.Left)
	case *sql.Select:
		attrs := make([]string, len(x.Items))
		seen := map[string]int{}
		for i, it := range x.Items {
			name := it.OutName(i)
			if n, dup := seen[name]; dup {
				seen[name] = n + 1
				name = fmt.Sprintf("%s_%d", name, n+1)
			} else {
				seen[name] = 1
			}
			attrs[i] = name
		}
		return attrs
	}
	return nil
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/alt"
	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/sqleval"
	"repro/internal/trace"
	"repro/internal/value"
)

// Binding names an input relation for ARC and Datalog statement
// execution: ARC statements read it through the evaluator's override
// slot (shadowing a catalog relation of the same name for that execution
// only), Datalog statements through an EDB slot. Bindings are a
// query-only affordance — binding a relation to a DML statement is
// ErrDMLBinding.
type Binding struct {
	Name string
	Rel  *relation.Relation
}

// In builds a named input binding.
func In(name string, rel *relation.Relation) Binding { return Binding{Name: name, Rel: rel} }

// ErrDMLBinding is returned when an engine.In relation binding is passed
// to a DML or DDL statement: writes name their target in the statement
// text, and an override relation would make the write target ambiguous.
var ErrDMLBinding = errors.New("engine: relation bindings apply to queries only, not DML/DDL statements")

// StmtKind classifies what a prepared statement does when run, so
// callers (and the wire server) can route it: Query through
// Query/cursors, DML and DDL through Exec, and transaction control
// through a session.
type StmtKind int

const (
	// KindQuery returns rows (SELECT, ARC collections, Datalog programs).
	KindQuery StmtKind = iota
	// KindDML writes data (INSERT, DELETE, ARC/Datalog fact ops).
	KindDML
	// KindDDL changes the schema (CREATE TABLE).
	KindDDL
	// KindBegin is BEGIN / START TRANSACTION.
	KindBegin
	// KindCommit is COMMIT.
	KindCommit
	// KindRollback is ROLLBACK.
	KindRollback
)

// String names the kind.
func (k StmtKind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindDML:
		return "dml"
	case KindDDL:
		return "ddl"
	case KindBegin:
		return "begin"
	case KindCommit:
		return "commit"
	case KindRollback:
		return "rollback"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Returns whether statements of this kind stream rows.
func (k StmtKind) ReturnsRows() bool { return k == KindQuery }

// Stmt is a prepared statement: parsed, validated, and (for SQL inside
// the planner fragment) compiled exactly once at Prepare. A Stmt is
// immutable and safe for concurrent Query calls; it is bound to the
// snapshot current at Prepare time (the statement cache revalidates on
// the store's commit generation, so a later Prepare reflects new
// commits). Statements prepared inside a transaction track the
// transaction's write set instead: each execution resolves through the
// per-transaction cache, so it sees the transaction's own uncommitted
// writes exactly once per write version.
type Stmt struct {
	db      *DB
	lang    Lang
	kind    StmtKind
	src     string
	cols    []string
	nparams int
	refs    []string // referenced relation names (diagnostics)
	gen     uint64   // store commit generation the snapshot compiled under
	ver     uint64   // write-set version, for transaction-owned statements
	tx      *Tx      // non-nil when prepared inside a transaction

	// SQL query machinery — also the embedded query of INSERT … SELECT
	// and the synthetic full-row SELECT of DELETE … WHERE.
	q       sql.Query
	plan    *plan.Plan // nil → enumeration fallback
	planErr error      // the planner's bailout reason, for Explain
	rels    sqleval.DB // prepare-time relation snapshot (or tx overlay)

	// SQL DML/DDL
	st     sql.Statement // *sql.Insert, *sql.Delete, *sql.Update, *sql.CreateTable
	insPos []int         // INSERT/UPDATE: target column of each written value

	// ARC / Datalog fact ops
	ops []factOp

	// ARC
	col  *alt.Collection
	link *alt.Link
	cat  *eval.Catalog
	conv convention.Conventions

	// Datalog
	prog *datalog.Program
	pred string

	// lastTrace holds the trace of the most recent traced execution
	// through this handle (QueryTraced / ExplainAnalyze), for callers
	// that drain a cursor first and inspect the statistics after.
	lastTrace atomic.Pointer[trace.Trace]
}

// compileStmt prepares one statement in the given language.
func compileStmt(db *DB, lang Lang, src, pred string, rels map[string]*relation.Relation, cat *eval.Catalog, conv convention.Conventions) (*Stmt, error) {
	switch lang {
	case LangSQL:
		return compileSQL(db, src, rels)
	case LangARC, LangDatalog:
		if isFactOps(src) {
			return compileFactOps(db, lang, src, rels)
		}
		if lang == LangDatalog {
			return compileDatalog(db, src, pred, rels)
		}
		col, err := arc.ParseCollection(src)
		if err != nil {
			return nil, err
		}
		return compileARC(db, col, src, cat, conv)
	}
	return nil, fmt.Errorf("engine: unknown language %v", lang)
}

func compileSQL(db *DB, src string, rels map[string]*relation.Relation) (*Stmt, error) {
	st, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	switch x := st.(type) {
	case sql.Query:
		return compileSQLQuery(db, src, x, rels)
	case *sql.Insert:
		return compileInsert(db, src, x, rels)
	case *sql.Delete:
		return compileDelete(db, src, x, rels)
	case *sql.Update:
		return compileUpdate(db, src, x, rels)
	case *sql.CreateTable:
		seen := map[string]bool{}
		for _, c := range x.Cols {
			if seen[c] {
				return nil, fmt.Errorf("engine: CREATE TABLE %s: duplicate column %q", x.Name, c)
			}
			seen[c] = true
		}
		return &Stmt{db: db, lang: LangSQL, kind: KindDDL, src: src, st: x, refs: []string{x.Name}}, nil
	case *sql.DropTable:
		if _, ok := rels[x.Name]; !ok {
			return nil, fmt.Errorf("engine: DROP TABLE %s: unknown relation", x.Name)
		}
		return &Stmt{db: db, lang: LangSQL, kind: KindDDL, src: src, st: x, refs: []string{x.Name}}, nil
	case *sql.BeginStmt:
		return &Stmt{db: db, lang: LangSQL, kind: KindBegin, src: src}, nil
	case *sql.CommitStmt:
		return &Stmt{db: db, lang: LangSQL, kind: KindCommit, src: src}, nil
	case *sql.RollbackStmt:
		return &Stmt{db: db, lang: LangSQL, kind: KindRollback, src: src}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", st)
}

func compileSQLQuery(db *DB, src string, q sql.Query, rels map[string]*relation.Relation) (*Stmt, error) {
	s := &Stmt{
		db:      db,
		lang:    LangSQL,
		kind:    KindQuery,
		src:     src,
		q:       q,
		nparams: sql.MaxParam(q),
		refs:    referencedSQL(q),
		rels:    rels,
	}
	if p, err := plan.Compile(q, rels); err == nil {
		s.plan = p
		s.cols = p.Attrs()
	} else {
		if !errors.Is(err, plan.ErrNotPlannable) {
			return nil, err
		}
		s.planErr = err
		s.cols = sqlColumns(q)
	}
	return s, nil
}

// compileInsert validates an INSERT against the target relation and, for
// the INSERT … SELECT form, compiles the source query. VALUES rows must
// be constant expressions over literals, $n placeholders, and
// arithmetic; their width (and the source query's) must match the
// written column list.
func compileInsert(db *DB, src string, ins *sql.Insert, rels map[string]*relation.Relation) (*Stmt, error) {
	target, ok := rels[ins.Table]
	if !ok {
		return nil, fmt.Errorf("engine: INSERT into unknown relation %q", ins.Table)
	}
	s := &Stmt{
		db:      db,
		lang:    LangSQL,
		kind:    KindDML,
		src:     src,
		st:      ins,
		nparams: sql.MaxParamStmt(ins),
		refs:    append([]string{ins.Table}, insertQueryRefs(ins)...),
		rels:    rels,
	}
	width := target.Arity()
	if len(ins.Cols) > 0 {
		width = len(ins.Cols)
		s.insPos = make([]int, width)
		seen := map[string]bool{}
		for i, c := range ins.Cols {
			pos := target.AttrIndex(c)
			if pos < 0 {
				return nil, fmt.Errorf("engine: INSERT into %s: unknown column %q", ins.Table, c)
			}
			if seen[c] {
				return nil, fmt.Errorf("engine: INSERT into %s: column %q written twice", ins.Table, c)
			}
			seen[c] = true
			s.insPos[i] = pos
		}
	}
	if ins.Query == nil {
		for ri, row := range ins.Rows {
			if len(row) != width {
				return nil, fmt.Errorf("engine: INSERT into %s: row %d has %d value(s), want %d", ins.Table, ri+1, len(row), width)
			}
			for _, e := range row {
				if err := checkConstExpr(e); err != nil {
					return nil, fmt.Errorf("engine: INSERT into %s: %w", ins.Table, err)
				}
			}
		}
		return s, nil
	}
	s.q = ins.Query
	if p, err := plan.Compile(ins.Query, rels); err == nil {
		s.plan = p
		if got := len(p.Attrs()); got != width {
			return nil, fmt.Errorf("engine: INSERT into %s: query yields %d column(s), want %d", ins.Table, got, width)
		}
	} else {
		if !errors.Is(err, plan.ErrNotPlannable) {
			return nil, err
		}
		s.planErr = err
		if got := len(sqlColumns(ins.Query)); got != width {
			return nil, fmt.Errorf("engine: INSERT into %s: query yields %d column(s), want %d", ins.Table, got, width)
		}
	}
	return s, nil
}

func insertQueryRefs(ins *sql.Insert) []string {
	if ins.Query == nil {
		return nil
	}
	return referencedSQL(ins.Query)
}

// compileDelete lowers DELETE FROM t [alias] WHERE cond into a synthetic
// full-row SELECT over the target (so the WHERE runs through the planner
// like any query), executed at Exec time to enumerate the tuples to
// remove.
func compileDelete(db *DB, src string, del *sql.Delete, rels map[string]*relation.Relation) (*Stmt, error) {
	target, ok := rels[del.Table]
	if !ok {
		return nil, fmt.Errorf("engine: DELETE from unknown relation %q", del.Table)
	}
	b := del.Binding()
	items := make([]sql.SelectItem, target.Arity())
	for i, a := range target.Attrs() {
		items[i] = sql.SelectItem{Expr: &sql.ColRef{Table: b, Column: a}, Alias: a}
	}
	q := &sql.Select{
		Items: items,
		From:  []sql.TableRef{&sql.BaseTable{Name: del.Table, Alias: del.Alias}},
		Where: del.Where,
	}
	s := &Stmt{
		db:      db,
		lang:    LangSQL,
		kind:    KindDML,
		src:     src,
		st:      del,
		q:       q,
		nparams: sql.MaxParamStmt(del),
		refs:    referencedSQL(q),
		rels:    rels,
	}
	if p, err := plan.Compile(q, rels); err == nil {
		s.plan = p
	} else {
		if !errors.Is(err, plan.ErrNotPlannable) {
			return nil, err
		}
		s.planErr = err
	}
	return s, nil
}

// compileUpdate lowers UPDATE t SET … WHERE … into a synthetic SELECT
// projecting the target's full row followed by each SET expression, so
// row matching and new-value computation both run through the planner
// (range and probe pushdown included) like any query. Exec removes each
// matched tuple's occurrences and re-inserts the rewritten tuples.
func compileUpdate(db *DB, src string, up *sql.Update, rels map[string]*relation.Relation) (*Stmt, error) {
	target, ok := rels[up.Table]
	if !ok {
		return nil, fmt.Errorf("engine: UPDATE unknown relation %q", up.Table)
	}
	pos := make([]int, len(up.Cols))
	seen := map[string]bool{}
	for i, c := range up.Cols {
		p := target.AttrIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("engine: UPDATE %s: unknown column %q", up.Table, c)
		}
		if seen[c] {
			return nil, fmt.Errorf("engine: UPDATE %s: column %q set twice", up.Table, c)
		}
		seen[c] = true
		pos[i] = p
	}
	b := up.Binding()
	items := make([]sql.SelectItem, 0, target.Arity()+len(up.Cols))
	for _, a := range target.Attrs() {
		items = append(items, sql.SelectItem{Expr: &sql.ColRef{Table: b, Column: a}, Alias: a})
	}
	for i, e := range up.Exprs {
		items = append(items, sql.SelectItem{Expr: e, Alias: fmt.Sprintf("set_%d", i)})
	}
	q := &sql.Select{
		Items: items,
		From:  []sql.TableRef{&sql.BaseTable{Name: up.Table, Alias: up.Alias}},
		Where: up.Where,
	}
	s := &Stmt{
		db:      db,
		lang:    LangSQL,
		kind:    KindDML,
		src:     src,
		st:      up,
		q:       q,
		insPos:  pos,
		nparams: sql.MaxParamStmt(up),
		refs:    referencedSQL(q),
		rels:    rels,
	}
	if p, err := plan.Compile(q, rels); err == nil {
		s.plan = p
	} else {
		if !errors.Is(err, plan.ErrNotPlannable) {
			return nil, err
		}
		s.planErr = err
	}
	return s, nil
}

// checkConstExpr verifies a VALUES expression is evaluable without a row
// context: literals, placeholders, and arithmetic over them.
func checkConstExpr(e sql.Expr) error {
	switch x := e.(type) {
	case *sql.Lit, *sql.Param:
		return nil
	case *sql.BinE:
		if err := checkConstExpr(x.L); err != nil {
			return err
		}
		return checkConstExpr(x.R)
	}
	return fmt.Errorf("VALUES expressions must be constants, got %s", e.String())
}

// constEval evaluates a checked VALUES expression against the bound
// placeholder values.
func constEval(e sql.Expr, vals []value.Value) (value.Value, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return x.Val, nil
	case *sql.Param:
		if x.Index < 1 || x.Index > len(vals) {
			return value.Value{}, fmt.Errorf("engine: placeholder $%d out of range", x.Index)
		}
		return vals[x.Index-1], nil
	case *sql.BinE:
		l, err := constEval(x.L, vals)
		if err != nil {
			return value.Value{}, err
		}
		r, err := constEval(x.R, vals)
		if err != nil {
			return value.Value{}, err
		}
		var out value.Value
		ok := false
		switch x.Op {
		case '+':
			out, ok = value.Add(l, r)
		case '-':
			out, ok = value.Sub(l, r)
		case '*':
			out, ok = value.Mul(l, r)
		case '/':
			out, ok = value.Div(l, r)
		}
		if !ok {
			return value.Value{}, fmt.Errorf("engine: cannot evaluate %s %c %s", l, x.Op, r)
		}
		return out, nil
	}
	return value.Value{}, fmt.Errorf("engine: non-constant VALUES expression %s", e.String())
}

func compileARC(db *DB, col *alt.Collection, src string, cat *eval.Catalog, conv convention.Conventions) (*Stmt, error) {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db:   db,
		lang: LangARC,
		kind: KindQuery,
		src:  src,
		cols: col.Head.Attrs,
		refs: referencedARC(col),
		col:  col,
		link: link,
		cat:  cat,
		conv: conv,
	}, nil
}

func compileDatalog(db *DB, src, pred string, rels map[string]*relation.Relation) (*Stmt, error) {
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("engine: empty Datalog program")
	}
	if pred == "" {
		pred = prog.Rules[len(prog.Rules)-1].Head.Pred
	}
	arity := -1
	for _, r := range prog.Rules {
		if r.Head.Pred == pred {
			arity = len(r.Head.Args)
			break
		}
	}
	if arity < 0 {
		return nil, fmt.Errorf("engine: predicate %q is not derived by the program", pred)
	}
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = fmt.Sprintf("x%d", i+1)
	}
	edb := sqleval.DB{}
	for name, r := range rels {
		edb[name] = r
	}
	return &Stmt{
		db:   db,
		lang: LangDatalog,
		kind: KindQuery,
		src:  src,
		cols: cols,
		refs: referencedDatalog(prog),
		prog: prog,
		pred: pred,
		rels: edb,
	}, nil
}

// Lang returns the statement's language.
func (s *Stmt) Lang() Lang { return s.lang }

// Kind returns the statement's kind: query, DML, DDL, or transaction
// control.
func (s *Stmt) Kind() StmtKind { return s.kind }

// Source returns the prepared source text.
func (s *Stmt) Source() string { return s.src }

// Columns returns the output column names (nil for non-query kinds).
func (s *Stmt) Columns() []string { return s.cols }

// NumParams returns how many positional $n arguments a SQL statement
// binds (always 0 for ARC and Datalog, which bind named relations).
func (s *Stmt) NumParams() int { return s.nparams }

// Explain renders the compiled physical plan of a SQL statement — for
// DELETE and UPDATE, the plan of the synthetic matching-rows query — or
// the reason
// it executes on the reference enumeration path; ARC statements render
// their per-scope plans.
func (s *Stmt) Explain() (string, error) {
	switch s.lang {
	case LangSQL:
		if s.plan != nil {
			return s.plan.Explain(), nil
		}
		if s.planErr != nil {
			return "", s.planErr
		}
		return "", fmt.Errorf("engine: no plan for %s statements", s.kind)
	case LangARC:
		if s.kind != KindQuery {
			return "", fmt.Errorf("engine: no plan rendering for %s statements", s.kind)
		}
		return eval.ExplainCollection(s.col, s.cat, s.conv)
	}
	return "", fmt.Errorf("engine: no plan rendering for %v statements", s.lang)
}

// current resolves the statement to its freshest compilation: statements
// prepared inside a transaction re-resolve through the per-transaction
// cache whenever the transaction has written since they were compiled,
// so every execution sees the write set's current overlay exactly once.
func (s *Stmt) current() (*Stmt, error) {
	if s.tx == nil {
		return s, nil
	}
	return s.tx.resolve(s)
}

// splitArgs validates and converts execution arguments: SQL statements
// take exactly NumParams positional values; ARC and Datalog queries take
// any number of named Bindings; DML and DDL statements reject Bindings
// with ErrDMLBinding.
func (s *Stmt) splitArgs(args []any) ([]value.Value, map[string]*relation.Relation, error) {
	if s.kind != KindQuery {
		for i, a := range args {
			if b, isBind := a.(Binding); isBind {
				return nil, nil, fmt.Errorf("%w (binding %q, argument %d)", ErrDMLBinding, b.Name, i+1)
			}
		}
	}
	if s.lang == LangSQL {
		vals := make([]value.Value, 0, len(args))
		for i, a := range args {
			if _, isBind := a.(Binding); isBind {
				return nil, nil, fmt.Errorf("engine: SQL statements bind positional $n values, not named relations (argument %d)", i+1)
			}
			v, err := liftArg(a)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: argument %d: %w", i+1, err)
			}
			vals = append(vals, v)
		}
		if len(vals) != s.nparams {
			return nil, nil, fmt.Errorf("engine: statement binds %d parameter(s), got %d argument(s)", s.nparams, len(vals))
		}
		return vals, nil, nil
	}
	if s.kind != KindQuery {
		if len(args) != 0 {
			return nil, nil, fmt.Errorf("engine: %v fact operations take no arguments, got %d", s.lang, len(args))
		}
		return nil, nil, nil
	}
	var inputs map[string]*relation.Relation
	for i, a := range args {
		b, ok := a.(Binding)
		if !ok {
			return nil, nil, fmt.Errorf("engine: %v statements take engine.In(name, relation) bindings, got %T (argument %d)", s.lang, a, i+1)
		}
		if b.Rel == nil {
			return nil, nil, fmt.Errorf("engine: binding %q has a nil relation", b.Name)
		}
		if inputs == nil {
			inputs = map[string]*relation.Relation{}
		}
		inputs[b.Name] = b.Rel
	}
	return nil, inputs, nil
}

// liftArg converts a Go value into a value.Value via relation.LiftErr —
// bind arguments are client-influenced, so unsupported types must come
// back as errors, never as Lift's panic.
func liftArg(a any) (value.Value, error) {
	return relation.LiftErr(a)
}

// errNotRows is the structured misuse error for Query on a non-query
// statement.
func errNotRows(kind StmtKind) error {
	return fmt.Errorf("engine: %s statement does not return rows; use Exec", kind)
}

// Query executes a query statement with the given arguments and returns
// a streaming cursor. For planner-compiled SQL the cursor pulls rows
// directly off the operator tree — nothing is materialized up front —
// and ctx cancellation is polled in the pull loop and in fixpoint
// rounds. ARC, Datalog, and fallback-path SQL evaluate eagerly (their
// evaluators are materializing) and the cursor streams the result.
// Calling Query on a DML, DDL, or transaction-control statement is an
// error.
func (s *Stmt) Query(ctx context.Context, args ...any) (rows *Rows, err error) {
	// Same backstop as Prepare: evaluator panics on hostile bindings
	// become statement errors (streaming pulls are guarded in Rows.Next).
	defer recoverTo(&err, "query")
	if s.kind != KindQuery {
		return nil, errNotRows(s.kind)
	}
	orig := s
	s, err = s.current()
	if err != nil {
		return nil, err
	}
	vals, inputs, err := s.splitArgs(args)
	if err != nil {
		return nil, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}
	s.db.queryExecs.Add(1)
	start := time.Time{}
	if s.db.slow.Load() != nil {
		start = time.Now()
	}
	if s.lang == LangSQL && s.plan != nil {
		seq, errFn := s.plan.Stream(vals, check)
		rows = newRows(s.cols, seq, errFn, check)
	} else {
		rel, err := s.execMaterialized(vals, inputs, check)
		if err != nil {
			return nil, err
		}
		cols := s.cols
		if cols == nil {
			cols = rel.Attrs()
		}
		rows = relationRows(cols, rel, check)
	}
	orig.hookSlowLog(rows, start)
	return rows, nil
}

// hookSlowLog arms a cursor's completion hook for the slow-query log,
// measuring from start (execution begin) to cursor completion. When the
// log is disabled (zero start) this is a no-op, so the untraced query
// path allocates nothing extra.
func (s *Stmt) hookSlowLog(rows *Rows, start time.Time) {
	if start.IsZero() || s.db.slow.Load() == nil {
		return
	}
	rows.onDone = func(n int64) {
		s.db.observeSlow(s.lang, s.kind, s.src, time.Since(start), n, 0, nil)
	}
}

// QueryAll executes the statement and materializes the full result
// relation — the bulk form, byte-identical to the pre-engine evaluator
// entry points.
func (s *Stmt) QueryAll(ctx context.Context, args ...any) (rel *relation.Relation, err error) {
	defer recoverTo(&err, "query")
	if s.kind != KindQuery {
		return nil, errNotRows(s.kind)
	}
	s, err = s.current()
	if err != nil {
		return nil, err
	}
	vals, inputs, err := s.splitArgs(args)
	if err != nil {
		return nil, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return nil, err
		}
	}
	s.db.queryExecs.Add(1)
	start := time.Time{}
	if s.db.slow.Load() != nil {
		start = time.Now()
	}
	if s.lang == LangSQL && s.plan != nil {
		rel, err = s.plan.ExecuteWith(vals, check)
	} else {
		rel, err = s.execMaterialized(vals, inputs, check)
	}
	if err == nil && !start.IsZero() {
		s.db.observeSlow(s.lang, s.kind, s.src, time.Since(start), int64(rel.Card()), 0, nil)
	}
	return rel, err
}

// LastTrace returns the operator trace of this handle's most recent
// traced execution (QueryTraced or ExplainAnalyze), or nil when the
// statement has never been traced. The trace is fully populated only
// after the traced cursor has been drained or closed.
func (s *Stmt) LastTrace() *trace.Trace { return s.lastTrace.Load() }

// QueryTraced is Query with operator-level tracing enabled: per-operator
// row counts and timings, hash-join build/probe statistics, and fixpoint
// round history accumulate into the returned trace as the cursor is
// consumed. The trace's totals (Rows, Elapsed) are set when the cursor
// finishes. Untraced executions of the same statement are unaffected —
// tracing state lives in the per-execution trace, never on the plan.
func (s *Stmt) QueryTraced(ctx context.Context, args ...any) (rows *Rows, tr *trace.Trace, err error) {
	defer recoverTo(&err, "query")
	if s.kind != KindQuery {
		return nil, nil, errNotRows(s.kind)
	}
	tr = trace.New()
	s.lastTrace.Store(tr)
	rows, _, err = s.queryTraced(ctx, tr, args)
	if err != nil {
		return nil, nil, err
	}
	return rows, tr, nil
}

// queryTraced runs the traced execution, returning the cursor and the
// resolved (possibly transaction-recompiled) statement.
func (s *Stmt) queryTraced(ctx context.Context, tr *trace.Trace, args []any) (*Rows, *Stmt, error) {
	cur, err := s.current()
	if err != nil {
		return nil, nil, err
	}
	vals, inputs, err := cur.splitArgs(args)
	if err != nil {
		return nil, nil, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return nil, nil, err
		}
	}
	cur.db.queryExecs.Add(1)
	start := time.Now()
	var rows *Rows
	if cur.lang == LangSQL && cur.plan != nil {
		seq, errFn := cur.plan.StreamTraced(vals, check, tr)
		rows = newRows(cur.cols, seq, errFn, check)
	} else {
		rel, err := cur.execTracedMaterialized(vals, inputs, check, tr)
		if err != nil {
			return nil, nil, err
		}
		cols := cur.cols
		if cols == nil {
			cols = rel.Attrs()
		}
		rows = relationRows(cols, rel, check)
	}
	db, lang, kind, src := s.db, s.lang, s.kind, s.src
	rows.onDone = func(n int64) {
		tr.Rows = n
		tr.Elapsed = time.Since(start)
		db.observeSlow(lang, kind, src, tr.Elapsed, n, 0, tr)
	}
	return rows, cur, nil
}

// ExplainAnalyze executes the query to completion with tracing enabled
// and renders the executed plan annotated with actual row counts,
// per-operator timings, join build/probe statistics, and — for
// recursive queries — per-round fixpoint delta sizes. SQL statements
// outside the planner fragment return the planner's bailout reason
// (there is no operator tree to annotate); Datalog statements have no
// plan rendering.
func (s *Stmt) ExplainAnalyze(ctx context.Context, args ...any) (text string, err error) {
	defer recoverTo(&err, "analyze")
	if s.kind != KindQuery {
		return "", fmt.Errorf("engine: no EXPLAIN ANALYZE for %s statements", s.kind)
	}
	tr := trace.New()
	s.lastTrace.Store(tr)
	rows, cur, err := s.queryTraced(ctx, tr, args)
	if err != nil {
		return "", err
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		return "", err
	}
	return cur.renderAnalyze(tr)
}

// renderAnalyze renders the annotated executed plan for one finished
// traced execution.
func (s *Stmt) renderAnalyze(tr *trace.Trace) (string, error) {
	var b strings.Builder
	switch s.lang {
	case LangSQL:
		if s.plan == nil {
			if s.planErr != nil {
				return "", s.planErr
			}
			return "", fmt.Errorf("engine: no plan for %s statements", s.kind)
		}
		b.WriteString(s.plan.ExplainAnalyze(tr))
	case LangARC:
		text, err := eval.ExplainCollection(s.col, s.cat, s.conv)
		if err != nil {
			return "", err
		}
		b.WriteString(text)
		if !strings.HasSuffix(text, "\n") {
			b.WriteString("\n")
		}
		tr.EachFixpoint(func(fp *trace.Fixpoint) {
			var total int64
			deltas := make([]string, len(fp.Rounds))
			for i, r := range fp.Rounds {
				deltas[i] = fmt.Sprintf("%d", r.Delta)
				total += r.Nanos
			}
			fmt.Fprintf(&b, "Fixpoint %s: rounds=%d deltas=[%s] time=%s\n",
				fp.Name, len(fp.Rounds), strings.Join(deltas, " "), trace.FormatDuration(total))
		})
	default:
		return "", fmt.Errorf("engine: no plan rendering for %v statements", s.lang)
	}
	fmt.Fprintf(&b, "Total: rows=%d time=%s\n", tr.Rows, trace.FormatDuration(tr.Elapsed.Nanoseconds()))
	return b.String(), nil
}

// execTracedMaterialized is execMaterialized with fixpoint round
// observation wired through the evaluators that support it.
func (s *Stmt) execTracedMaterialized(vals []value.Value, inputs map[string]*relation.Relation, check func() error, tr *trace.Trace) (*relation.Relation, error) {
	if s.lang == LangARC {
		obs := func(name string) func(delta int, elapsed time.Duration) {
			return tr.Fixpoint("arc:"+name, name).Observe
		}
		return eval.EvalPreparedObserved(s.col, s.link, s.cat, s.conv, inputs, check, obs)
	}
	return s.execMaterialized(vals, inputs, check)
}

// execMaterialized runs the non-streaming paths.
func (s *Stmt) execMaterialized(vals []value.Value, inputs map[string]*relation.Relation, check func() error) (*relation.Relation, error) {
	switch s.lang {
	case LangSQL:
		// The statement fell outside the planner fragment at Prepare:
		// run the reference enumeration path (never re-plan per call).
		return sqleval.EvalWith(s.q, s.rels, sqleval.PlanOff, vals, check)
	case LangARC:
		return eval.EvalPrepared(s.col, s.link, s.cat, s.conv, inputs, check)
	case LangDatalog:
		edb := s.rels
		if len(inputs) > 0 {
			edb = make(sqleval.DB, len(s.rels)+len(inputs))
			for k, v := range s.rels {
				edb[k] = v
			}
			for k, v := range inputs {
				edb[k] = v
			}
		}
		return datalog.EvalPredicateWith(s.prog, datalog.EDB(edb), s.pred, check)
	}
	return nil, fmt.Errorf("engine: unknown language %v", s.lang)
}

// evalDMLQuery materializes the embedded query of a DML statement
// (INSERT … SELECT source, DELETE matching rows) with the statement's
// compiled plan or the enumeration fallback.
func (s *Stmt) evalDMLQuery(vals []value.Value, check func() error) (*relation.Relation, error) {
	if s.plan != nil {
		return s.plan.ExecuteWith(vals, check)
	}
	return sqleval.EvalWith(s.q, s.rels, sqleval.PlanOff, vals, check)
}

// sqlColumns computes the output column names of a query on the
// enumeration path: the leftmost SELECT's item names with the reference
// evaluator's duplicate renaming.
func sqlColumns(q sql.Query) []string {
	switch x := q.(type) {
	case *sql.With:
		return sqlColumns(x.Body)
	case *sql.Union:
		return sqlColumns(x.Left)
	case *sql.Select:
		attrs := make([]string, len(x.Items))
		seen := map[string]int{}
		for i, it := range x.Items {
			name := it.OutName(i)
			if n, dup := seen[name]; dup {
				seen[name] = n + 1
				name = fmt.Sprintf("%s_%d", name, n+1)
			} else {
				seen[name] = 1
			}
			attrs[i] = name
		}
		return attrs
	}
	return nil
}

// isFactOps reports whether an ARC/Datalog source is a fact-operation
// batch (assertions/retractions) rather than a query: it starts with
// '+' or '-'.
func isFactOps(src string) bool {
	t := strings.TrimSpace(src)
	return len(t) > 0 && (t[0] == '+' || t[0] == '-')
}

// tx.go layers transactions over the MVCC store: Begin opens a Tx whose
// reads and writes run against a private write-set overlay of the
// snapshot current at Begin, Commit publishes the write set
// first-committer-wins, Rollback discards it. A Session adds SQL-level
// transaction control (BEGIN/COMMIT/ROLLBACK as executable statements)
// and is the unit a server connection holds.
package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/relation"
	"repro/internal/value"
)

// ErrTxDone reports use of a transaction after Commit or Rollback.
var ErrTxDone = errors.New("engine: transaction has already been committed or rolled back")

// Tx is an open transaction. Statements prepared from it compile
// against the transaction's overlay (base snapshot + own uncommitted
// writes) and re-resolve through a per-transaction statement cache
// whenever the transaction writes, so reads inside the transaction see
// its own writes exactly once. A Tx is bound to one goroutine, like a
// database/sql transaction in practice: its write set is not locked.
type Tx struct {
	db   *DB
	ws   *relation.WriteSet
	done bool
	gen  uint64 // commit generation, set by a successful Commit
	// cache maps statement keys to their latest in-transaction
	// compilation; entries are valid while the write-set version is
	// unchanged (the read-your-writes fingerprint).
	cache map[string]*txEntry
}

type txEntry struct {
	s   *Stmt
	ver uint64
}

// Begin opens a transaction against the current committed snapshot.
func (db *DB) Begin(ctx context.Context) (*Tx, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	db.txBegins.Add(1)
	return &Tx{db: db, ws: db.store.Begin(), cache: map[string]*txEntry{}}, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Prepare compiles src against the transaction's current overlay.
func (tx *Tx) Prepare(lang Lang, src string) (*Stmt, error) {
	return tx.prepare(lang, src, "")
}

// PrepareDatalog prepares a Datalog program selecting the returned
// predicate (empty = the last rule's head).
func (tx *Tx) PrepareDatalog(src, pred string) (*Stmt, error) {
	return tx.prepare(LangDatalog, src, pred)
}

func (tx *Tx) prepare(lang Lang, src, pred string) (s *Stmt, err error) {
	defer recoverTo(&err, "prepare")
	if tx.done {
		return nil, ErrTxDone
	}
	conv := tx.db.conventions()
	key := cacheKey(lang, conv, src, pred)
	if e, ok := tx.cache[key]; ok && e.ver == tx.ws.Ver() {
		return e.s, nil
	}
	rels := tx.ws.Rels()
	s, err = compileStmt(tx.db, lang, src, pred, copyRels(rels), tx.db.catalogFor(rels), conv)
	if err != nil {
		return nil, err
	}
	s.tx = tx
	s.ver = tx.ws.Ver()
	s.gen = tx.ws.Base().Gen()
	tx.cache[key] = &txEntry{s: s, ver: s.ver}
	return s, nil
}

// resolve returns the freshest compilation of a transaction-owned
// statement: the statement itself while the write set hasn't moved,
// otherwise a recompile against the current overlay (served from the
// per-transaction cache when this source was already recompiled).
func (tx *Tx) resolve(s *Stmt) (*Stmt, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if s.ver == tx.ws.Ver() {
		return s, nil
	}
	if s.kind != KindQuery && s.q == nil {
		// Snapshot-independent writes (INSERT … VALUES, CREATE TABLE,
		// fact ops) never read the overlay; their targets are
		// revalidated at apply time, so a batch of inserts doesn't pay
		// a recompile per write-set version.
		return s, nil
	}
	return tx.prepare(s.lang, s.src, s.pred)
}

// exec applies a DML/DDL statement to the transaction's write set.
func (tx *Tx) exec(s *Stmt, vals []value.Value, check func() error) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	cur, err := tx.resolve(s)
	if err != nil {
		return Result{}, err
	}
	n, err := cur.applyTo(tx.ws, vals, check)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: n, Generation: 0}, nil
}

// Query prepares (through the transaction's cache) and runs a query
// against the transaction's overlay.
func (tx *Tx) Query(ctx context.Context, lang Lang, src string, args ...any) (*Rows, error) {
	s, err := tx.prepare(lang, src, "")
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, args...)
}

// QueryAll is the materializing form of Query.
func (tx *Tx) QueryAll(ctx context.Context, lang Lang, src string, args ...any) (*relation.Relation, error) {
	s, err := tx.prepare(lang, src, "")
	if err != nil {
		return nil, err
	}
	return s.QueryAll(ctx, args...)
}

// Exec runs a DML or DDL statement inside the transaction. Transaction
// control is not a statement here: use Commit/Rollback (or a Session
// for SQL-level control).
func (tx *Tx) Exec(ctx context.Context, lang Lang, src string, args ...any) (Result, error) {
	s, err := tx.prepare(lang, src, "")
	if err != nil {
		return Result{}, err
	}
	switch s.kind {
	case KindBegin:
		return Result{}, fmt.Errorf("engine: transaction already open")
	case KindCommit, KindRollback:
		return Result{}, fmt.Errorf("engine: use Tx.Commit/Tx.Rollback (or a Session) for transaction control")
	}
	return s.Exec(ctx, args...)
}

// Commit publishes the write set. On a first-committer-wins conflict it
// returns an error wrapping ErrConflict and the transaction is finished
// (roll-forward by retrying a new transaction); on success Generation
// reports the new commit generation.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	snap, err := tx.db.store.Commit(tx.ws)
	if err != nil {
		if errors.Is(err, relation.ErrConflict) {
			tx.db.conflicts.Add(1)
		}
		return err
	}
	tx.db.txCommits.Add(1)
	tx.gen = snap.Gen()
	return nil
}

// Rollback discards the write set. Rolling back a finished transaction
// returns ErrTxDone (matching database/sql).
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.db.txRollbacks.Add(1)
	return nil
}

// Generation returns the commit generation a successful Commit
// published, 0 before.
func (tx *Tx) Generation() uint64 { return tx.gen }

// Session is a connection-scoped execution context: it routes
// Prepare/Query/Exec through the open transaction when there is one,
// and executes SQL transaction control (BEGIN/COMMIT/ROLLBACK) as
// statements. A Session is bound to one goroutine (the server gives
// each connection its own).
type Session struct {
	db *DB
	tx *Tx
	// seq counts transaction boundary events (begin/commit/rollback) —
	// part of the epoch server-side prepared handles revalidate on.
	seq uint64
}

// NewSession opens a session.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// DB returns the session's engine.
func (s *Session) DB() *DB { return s.db }

// InTx reports whether a transaction is open.
func (s *Session) InTx() bool { return s.tx != nil && !s.tx.done }

// SessionEpoch fingerprints the data a session's statements resolve
// against: the store generation outside a transaction, plus the
// transaction sequence number and write-set version inside one. Two
// equal epochs see identical data, so a prepared handle compiled at one
// epoch is exactly as fresh at another equal epoch — the comparable
// token server sessions revalidate statement handles with.
type SessionEpoch struct {
	Gen   uint64
	TxSeq uint64
	TxVer uint64
}

// Epoch returns the session's current epoch.
func (s *Session) Epoch() SessionEpoch {
	if s.InTx() {
		return SessionEpoch{Gen: s.tx.ws.Base().Gen(), TxSeq: s.seq, TxVer: s.tx.ws.Ver()}
	}
	return SessionEpoch{Gen: s.db.store.Gen(), TxSeq: s.seq}
}

// Prepare compiles src in the session's current context: against the
// open transaction's overlay, or the current committed snapshot.
func (s *Session) Prepare(lang Lang, src string) (*Stmt, error) {
	return s.prepare(lang, src, "")
}

// PrepareDatalog prepares a Datalog program selecting the returned
// predicate.
func (s *Session) PrepareDatalog(src, pred string) (*Stmt, error) {
	return s.prepare(LangDatalog, src, pred)
}

func (s *Session) prepare(lang Lang, src, pred string) (*Stmt, error) {
	if s.InTx() {
		return s.tx.prepare(lang, src, pred)
	}
	return s.db.prepare(lang, src, pred)
}

// Query runs a query in the session's current context.
func (s *Session) Query(ctx context.Context, lang Lang, src string, args ...any) (*Rows, error) {
	st, err := s.prepare(lang, src, "")
	if err != nil {
		return nil, err
	}
	return st.Query(ctx, args...)
}

// QueryAll is the materializing form of Query.
func (s *Session) QueryAll(ctx context.Context, lang Lang, src string, args ...any) (*relation.Relation, error) {
	st, err := s.prepare(lang, src, "")
	if err != nil {
		return nil, err
	}
	return st.QueryAll(ctx, args...)
}

// Exec executes any non-query statement, including SQL transaction
// control: BEGIN opens the session's transaction, COMMIT publishes it
// (reporting the new generation), ROLLBACK discards it.
func (s *Session) Exec(ctx context.Context, lang Lang, src string, args ...any) (Result, error) {
	st, err := s.prepare(lang, src, "")
	if err != nil {
		return Result{}, err
	}
	return s.ExecStmt(ctx, st, args...)
}

// ExecStmt executes a prepared statement in the session's context,
// routing transaction control. The statement must have been prepared
// through this session (or its DB).
func (s *Session) ExecStmt(ctx context.Context, st *Stmt, args ...any) (Result, error) {
	switch st.kind {
	case KindBegin:
		if len(args) != 0 {
			return Result{}, fmt.Errorf("engine: BEGIN takes no arguments")
		}
		return Result{}, s.Begin(ctx)
	case KindCommit:
		if len(args) != 0 {
			return Result{}, fmt.Errorf("engine: COMMIT takes no arguments")
		}
		gen, err := s.Commit()
		if err != nil {
			return Result{}, err
		}
		return Result{Generation: gen}, nil
	case KindRollback:
		if len(args) != 0 {
			return Result{}, fmt.Errorf("engine: ROLLBACK takes no arguments")
		}
		return Result{}, s.Rollback()
	}
	return st.Exec(ctx, args...)
}

// Begin opens the session's transaction.
func (s *Session) Begin(ctx context.Context) error {
	if s.InTx() {
		return fmt.Errorf("engine: transaction already open (nested transactions are not supported)")
	}
	tx, err := s.db.Begin(ctx)
	if err != nil {
		return err
	}
	s.tx = tx
	s.seq++
	return nil
}

// Tx returns the open transaction, or nil.
func (s *Session) Tx() *Tx {
	if s.InTx() {
		return s.tx
	}
	return nil
}

// Commit publishes the open transaction, returning the new commit
// generation.
func (s *Session) Commit() (uint64, error) {
	if !s.InTx() {
		return 0, fmt.Errorf("engine: no open transaction")
	}
	tx := s.tx
	s.tx = nil
	s.seq++
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return tx.Generation(), nil
}

// Rollback discards the open transaction.
func (s *Session) Rollback() error {
	if !s.InTx() {
		return fmt.Errorf("engine: no open transaction")
	}
	tx := s.tx
	s.tx = nil
	s.seq++
	return tx.Rollback()
}

// Close rolls back any open transaction.
func (s *Session) Close() error {
	if s.InTx() {
		tx := s.tx
		s.tx = nil
		s.seq++
		return tx.Rollback()
	}
	return nil
}

// exec.go is the engine's write path: Exec runs DML (INSERT, DELETE,
// fact ops) and DDL (CREATE TABLE) statements. Outside a transaction a
// statement autocommits — its write set is built against the current
// snapshot and committed first-committer-wins, retried a bounded number
// of times on conflict. Inside a transaction (see tx.go) the statement
// applies to the transaction's write set and becomes visible to others
// only at Commit.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// ErrConflict reports a first-committer-wins write conflict: another
// transaction committed a change to a relation this one wrote, after
// this one began. Retry the transaction against the new snapshot.
var ErrConflict = relation.ErrConflict

// maxExecRetries bounds the autocommit retry loop: under sustained
// write contention Exec retries against each new snapshot rather than
// spinning forever.
const maxExecRetries = 16

// Result reports what a write changed.
type Result struct {
	// RowsAffected counts inserted/removed row occurrences (bag
	// multiplicities included), 0 for DDL.
	RowsAffected int64
	// Generation is the store commit generation at which the write
	// became visible, and 0 when the write is buffered in an open
	// transaction (visibility arrives with the transaction's Commit).
	Generation uint64
}

// Exec executes a one-shot write statement with autocommit: the
// convenience form of Prepare + Stmt.Exec. BEGIN/COMMIT/ROLLBACK are
// session state and are rejected here — use Begin/Tx or a Session.
func (db *DB) Exec(ctx context.Context, lang Lang, src string, args ...any) (Result, error) {
	s, err := db.Prepare(lang, src)
	if err != nil {
		return Result{}, err
	}
	return s.Exec(ctx, args...)
}

// Exec executes a DML or DDL statement. A statement prepared from the
// DB autocommits (with bounded first-committer-wins retries); a
// statement prepared from a Tx or an in-transaction Session applies to
// that transaction's write set and reports Generation 0 until the
// transaction commits. Exec on a query statement is an error, as is
// Exec on BEGIN/COMMIT/ROLLBACK outside a session.
func (s *Stmt) Exec(ctx context.Context, args ...any) (res Result, err error) {
	defer recoverTo(&err, "exec")
	switch s.kind {
	case KindDML:
		s.db.dmlExecs.Add(1)
	case KindDDL:
		s.db.ddlExecs.Add(1)
	case KindQuery:
		return Result{}, fmt.Errorf("engine: query statement returns rows; use Query")
	default:
		return Result{}, fmt.Errorf("engine: %s is transaction control; run it through a Session or use Begin/Commit/Rollback", s.kind)
	}
	vals, _, err := s.splitArgs(args)
	if err != nil {
		return Result{}, err
	}
	check := checkFromCtx(ctx)
	if check != nil {
		if err := check(); err != nil {
			return Result{}, err
		}
	}
	start := time.Now()
	if s.tx != nil {
		res, err := s.tx.exec(s, vals, check)
		if err == nil {
			s.db.observeSlow(s.lang, s.kind, s.src, time.Since(start), res.RowsAffected, 0, nil)
		}
		return res, err
	}
	res, retries, err := s.autocommit(vals, check)
	if err == nil {
		s.db.observeSlow(s.lang, s.kind, s.src, time.Since(start), res.RowsAffected, retries, nil)
	}
	return res, err
}

// autocommit applies the statement to a fresh write set against the
// current snapshot and commits, retrying on first-committer-wins
// conflicts. Statements whose effect depends on the snapshot (DELETE's
// matching-rows query, INSERT … SELECT) are recompiled against each
// retry's snapshot; snapshot-independent statements (INSERT … VALUES,
// CREATE TABLE, fact ops) re-apply as compiled.
// The retry count it reports feeds the slow-query log.
func (s *Stmt) autocommit(vals []value.Value, check func() error) (Result, int, error) {
	db := s.db
	for attempt := 0; ; attempt++ {
		if check != nil {
			if err := check(); err != nil {
				return Result{}, attempt, err
			}
		}
		ws := db.store.Begin()
		cur := s
		if s.q != nil && s.gen != ws.Base().Gen() {
			fresh, err := compileStmt(db, s.lang, s.src, s.pred, copyRels(ws.Base().Rels()), db.catalogAt(ws.Base()), s.conv)
			if err != nil {
				return Result{}, attempt, err
			}
			fresh.gen = ws.Base().Gen()
			cur = fresh
		}
		n, err := cur.applyTo(ws, vals, check)
		if err != nil {
			return Result{}, attempt, err
		}
		snap, err := db.store.Commit(ws)
		if err == nil {
			return Result{RowsAffected: n, Generation: snap.Gen()}, attempt, nil
		}
		if errors.Is(err, relation.ErrConflict) {
			db.conflicts.Add(1)
			if attempt < maxExecRetries {
				db.conflictRetries.Add(1)
				continue
			}
		}
		return Result{}, attempt, err
	}
}

// applyTo applies the compiled statement to a write set, returning the
// affected row-occurrence count. The write set may be an autocommit
// scratch set or an open transaction's.
func (s *Stmt) applyTo(ws *relation.WriteSet, vals []value.Value, check func() error) (int64, error) {
	if s.ops != nil {
		return applyFactOps(ws, s.ops)
	}
	switch st := s.st.(type) {
	case *sql.Insert:
		return s.applyInsert(ws, st, vals, check)
	case *sql.Delete:
		return s.applyDelete(ws, st, vals, check)
	case *sql.Update:
		return s.applyUpdate(ws, st, vals, check)
	case *sql.CreateTable:
		if err := ws.Create(st.Name, st.Cols); err != nil {
			return 0, err
		}
		return 0, nil
	case *sql.DropTable:
		if err := ws.Drop(st.Name); err != nil {
			return 0, err
		}
		return 0, nil
	}
	return 0, fmt.Errorf("engine: statement %q has no write recipe", s.src)
}

// applyInsert inserts VALUES rows (constant-evaluated against the bound
// placeholders) or the materialized rows of the source query, mapping
// them onto the target's columns; unnamed columns of a column-list
// INSERT receive NULL.
func (s *Stmt) applyInsert(ws *relation.WriteSet, ins *sql.Insert, vals []value.Value, check func() error) (int64, error) {
	target := ws.Relation(ins.Table)
	if target == nil {
		return 0, fmt.Errorf("engine: INSERT into unknown relation %q", ins.Table)
	}
	width := target.Arity()
	pos := s.insPos
	if len(ins.Cols) > 0 {
		width = len(ins.Cols)
		if pos == nil || len(pos) != width {
			return 0, fmt.Errorf("engine: INSERT into %s: stale column mapping", ins.Table)
		}
	}
	emit := func(row relation.Tuple, mult int) error {
		if len(row) != width {
			return fmt.Errorf("engine: INSERT into %s: got %d value(s), want %d", ins.Table, len(row), width)
		}
		t := row
		if pos != nil {
			t = make(relation.Tuple, target.Arity())
			for i := range t {
				t[i] = value.Null()
			}
			for i, p := range pos {
				if p >= len(t) {
					return fmt.Errorf("engine: INSERT into %s: column %q out of range (schema changed?)", ins.Table, ins.Cols[i])
				}
				t[p] = row[i]
			}
		}
		return ws.Insert(ins.Table, t, mult)
	}
	var n int64
	if ins.Query == nil {
		for _, exprs := range ins.Rows {
			row := make(relation.Tuple, len(exprs))
			for i, e := range exprs {
				v, err := constEval(e, vals)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			if err := emit(row, 1); err != nil {
				return 0, err
			}
			n++
		}
		return n, nil
	}
	src, err := s.evalDMLQuery(vals, check)
	if err != nil {
		return 0, err
	}
	var emitErr error
	src.EachWhile(func(t relation.Tuple, m int) bool {
		if emitErr = emit(t, m); emitErr != nil {
			return false
		}
		n += int64(m)
		return true
	})
	return n, emitErr
}

// applyDelete runs the compiled matching-rows query and removes every
// occurrence of the matched tuples from the target.
func (s *Stmt) applyDelete(ws *relation.WriteSet, del *sql.Delete, vals []value.Value, check func() error) (int64, error) {
	if ws.Relation(del.Table) == nil {
		return 0, fmt.Errorf("engine: DELETE from unknown relation %q", del.Table)
	}
	matched, err := s.evalDMLQuery(vals, check)
	if err != nil {
		return 0, err
	}
	tuples := matched.Tuples()
	if len(tuples) == 0 {
		return 0, nil
	}
	removed, err := ws.Delete(del.Table, tuples)
	if err != nil {
		return 0, err
	}
	return int64(removed), nil
}

// applyUpdate runs the compiled matching-rows query — each matched row
// followed by its SET values — then removes the matched tuples and
// re-inserts the rewritten ones with their multiplicities. Deletes all
// land before the first insert, so updates that permute existing tuples
// (key swaps) cannot clobber each other's rows.
func (s *Stmt) applyUpdate(ws *relation.WriteSet, up *sql.Update, vals []value.Value, check func() error) (int64, error) {
	target := ws.Relation(up.Table)
	if target == nil {
		return 0, fmt.Errorf("engine: UPDATE unknown relation %q", up.Table)
	}
	arity := target.Arity()
	pos := s.insPos
	if len(pos) != len(up.Cols) {
		return 0, fmt.Errorf("engine: UPDATE %s: stale column mapping", up.Table)
	}
	matched, err := s.evalDMLQuery(vals, check)
	if err != nil {
		return 0, err
	}
	var olds, news []relation.Tuple
	var mults []int
	matched.Each(func(t relation.Tuple, m int) {
		nw := append(relation.Tuple(nil), t[:arity]...)
		for i, p := range pos {
			nw[p] = t[arity+i]
		}
		olds = append(olds, t[:arity])
		news = append(news, nw)
		mults = append(mults, m)
	})
	if len(olds) == 0 {
		return 0, nil
	}
	removed, err := ws.Delete(up.Table, olds)
	if err != nil {
		return 0, err
	}
	for i, nw := range news {
		if err := ws.Insert(up.Table, nw, mults[i]); err != nil {
			return 0, err
		}
	}
	return int64(removed), nil
}

// applyFactOps applies an assertion/retraction batch in order.
func applyFactOps(ws *relation.WriteSet, ops []factOp) (int64, error) {
	var n int64
	for _, op := range ops {
		target := ws.Relation(op.rel)
		if target == nil {
			return n, fmt.Errorf("engine: fact op on unknown relation %q", op.rel)
		}
		if len(op.tuple) != target.Arity() {
			return n, fmt.Errorf("engine: %s takes %d argument(s), got %d", op.rel, target.Arity(), len(op.tuple))
		}
		if op.assert {
			if err := ws.Insert(op.rel, op.tuple, 1); err != nil {
				return n, err
			}
			n++
			continue
		}
		removed, err := ws.Delete(op.rel, []relation.Tuple{op.tuple})
		if err != nil {
			return n, err
		}
		n += int64(removed)
	}
	return n, nil
}

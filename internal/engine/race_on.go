//go:build race

package engine

// raceEnabled reports whether the race detector instruments this build
// (timing-sensitive tests scale their thresholds under it).
const raceEnabled = true

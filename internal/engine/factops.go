package engine

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/relation"
	"repro/internal/value"
)

// factOp is one fact assertion or retraction in the shared ARC/Datalog
// write syntax:
//
//	+Edge(1, 2).  -Edge(2, 3)  +Label(7, "blue").
//
// '+' asserts one occurrence of the ground tuple, '-' retracts every
// occurrence of it (facts are set-like at the write surface; bag
// multiplicities accumulate through repeated assertions). Operations are
// separated by whitespace, '.', or ';', and arguments are literals only:
// integers, floats, quoted strings ('…' or "…"), true, false, null.
type factOp struct {
	assert bool
	rel    string
	tuple  relation.Tuple
}

// compileFactOps parses a fact-operation batch and validates every
// target against the prepare-time relation snapshot (existence and
// arity), yielding a KindDML statement.
func compileFactOps(db *DB, lang Lang, src string, rels map[string]*relation.Relation) (*Stmt, error) {
	ops, err := parseFactOps(src)
	if err != nil {
		return nil, err
	}
	refs := make([]string, 0, 1)
	seen := map[string]bool{}
	for _, op := range ops {
		target, ok := rels[op.rel]
		if !ok {
			return nil, fmt.Errorf("engine: fact op on unknown relation %q", op.rel)
		}
		if len(op.tuple) != target.Arity() {
			return nil, fmt.Errorf("engine: %s takes %d argument(s), got %d", op.rel, target.Arity(), len(op.tuple))
		}
		if !seen[op.rel] {
			seen[op.rel] = true
			refs = append(refs, op.rel)
		}
	}
	return &Stmt{db: db, lang: lang, kind: KindDML, src: src, ops: ops, refs: refs}, nil
}

// parseFactOps parses "+Rel(lit, …)" / "-Rel(lit, …)" sequences.
func parseFactOps(src string) ([]factOp, error) {
	p := &factParser{src: src}
	var ops []factOp
	for {
		p.skipSpace()
		if p.done() {
			break
		}
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("engine: empty fact-operation batch")
	}
	return ops, nil
}

type factParser struct {
	src string
	pos int
}

func (p *factParser) done() bool { return p.pos >= len(p.src) }

func (p *factParser) skipSpace() {
	for !p.done() {
		c := p.src[p.pos]
		if c == '.' || c == ';' || unicode.IsSpace(rune(c)) {
			p.pos++
			continue
		}
		break
	}
}

func (p *factParser) errf(format string, args ...any) error {
	return fmt.Errorf("engine: fact ops: %s (at offset %d)", fmt.Sprintf(format, args...), p.pos)
}

func (p *factParser) parseOp() (factOp, error) {
	var op factOp
	switch p.src[p.pos] {
	case '+':
		op.assert = true
	case '-':
	default:
		return op, p.errf("expected '+' or '-', found %q", p.src[p.pos])
	}
	p.pos++
	p.skipSpace()
	name, err := p.parseIdent()
	if err != nil {
		return op, err
	}
	op.rel = name
	p.skipSpace()
	if p.done() || p.src[p.pos] != '(' {
		return op, p.errf("expected '(' after relation %q", name)
	}
	p.pos++
	p.skipSpace()
	if !p.done() && p.src[p.pos] == ')' {
		p.pos++
		return op, nil
	}
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return op, err
		}
		op.tuple = append(op.tuple, v)
		p.skipSpace()
		if p.done() {
			return op, p.errf("unterminated argument list of %q", name)
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
			p.skipSpace()
		case ')':
			p.pos++
			return op, nil
		default:
			return op, p.errf("expected ',' or ')' in arguments of %q, found %q", name, p.src[p.pos])
		}
	}
}

func (p *factParser) parseIdent() (string, error) {
	start := p.pos
	for !p.done() {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected a relation name")
	}
	return p.src[start:p.pos], nil
}

func (p *factParser) parseLiteral() (value.Value, error) {
	if p.done() {
		return value.Value{}, p.errf("expected a literal")
	}
	c := p.src[p.pos]
	switch {
	case c == '\'' || c == '"':
		return p.parseString(c)
	case c == '-' || c == '+' || c >= '0' && c <= '9':
		return p.parseNumber()
	}
	word, err := p.parseIdent()
	if err != nil {
		return value.Value{}, p.errf("expected a literal")
	}
	switch strings.ToLower(word) {
	case "true":
		return value.Bool(true), nil
	case "false":
		return value.Bool(false), nil
	case "null":
		return value.Null(), nil
	}
	return value.Value{}, p.errf("fact arguments must be literals, got %q", word)
}

func (p *factParser) parseString(quote byte) (value.Value, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for !p.done() {
		c := p.src[p.pos]
		if c == quote {
			// Doubled quote is an escaped quote, SQL style.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == quote {
				b.WriteByte(quote)
				p.pos += 2
				continue
			}
			p.pos++
			return value.Str(b.String()), nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return value.Value{}, p.errf("unterminated string literal")
}

func (p *factParser) parseNumber() (value.Value, error) {
	start := p.pos
	if c := p.src[p.pos]; c == '-' || c == '+' {
		p.pos++
	}
	digits := 0
	dot := false
	for !p.done() {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' {
			digits++
			p.pos++
			continue
		}
		if c == '.' && !dot && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
			// A dot is a number part only when followed by a digit —
			// otherwise it terminates the fact op ("+R(1)." style).
			dot = true
			p.pos++
			continue
		}
		break
	}
	if digits == 0 {
		return value.Value{}, p.errf("malformed number")
	}
	text := p.src[start:p.pos]
	if dot {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, p.errf("malformed number %q", text)
		}
		return value.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Value{}, p.errf("malformed number %q", text)
	}
	return value.Int(i), nil
}

package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/sqleval"
	"repro/internal/workload"
)

// TestPreparedAtLeast5xFasterThanReparse pins the issue's acceptance bar
// in a test: Prepare once + Query N times must be at least 5× faster
// than N× EvalString on a parameterized point lookup. The true margin is
// more than an order of magnitude (parse + plan per call vs one hash
// probe), so the 5× assertion has plenty of headroom; best-of-three
// rounds smooths scheduler noise.
func TestPreparedAtLeast5xFasterThanReparse(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := workload.Rand(23)
	r := workload.RandomBinary(rng, "R", "A", "B", 20000, 20000, 64)
	db := Open(r)
	stmt, err := db.Prepare(LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sdb := sqleval.DB{"R": r}

	const iters = 1500
	timed := func(f func() error) time.Duration {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	preparedLoop := func() error {
		for i := 0; i < iters; i++ {
			if _, err := stmt.QueryAll(ctx, i%20000); err != nil {
				return err
			}
		}
		return nil
	}
	reparseLoop := func() error {
		for i := 0; i < iters; i++ {
			src := fmt.Sprintf("select R.A, R.B from R where R.A = %d", i%20000)
			if _, err := sqleval.EvalString(src, sdb); err != nil {
				return err
			}
		}
		return nil
	}
	// Both loops run back to back inside each round and the ratio is
	// taken per round, so a load spike or frequency shift hits both
	// paths alike instead of whichever happened to be measuring — the
	// all-prepared-then-all-reparse form flaked whenever the machine
	// drifted between the two measurement blocks. Best-of-five rounds
	// smooths the remaining scheduler noise.
	ratio, prepared, reparse := 0.0, time.Duration(0), time.Duration(0)
	for round := 0; round < 5; round++ {
		p := timed(preparedLoop)
		q := timed(reparseLoop)
		if r := float64(q) / float64(p); r > ratio {
			ratio, prepared, reparse = r, p, q
		}
	}
	t.Logf("prepared %v vs reparse %v for %d executions → %.1f×", prepared, reparse, iters, ratio)
	// The race detector instruments the lock/atomic-heavy probe-and-
	// insert path much harder than the allocation-heavy parser, which
	// compresses the ratio; the ≥ 5× acceptance bar is pinned on the
	// uninstrumented build (and by BenchmarkPreparedVsReparse), with a
	// reduced floor under -race so the instrumented CI pass still
	// guards against the prepared path regressing to re-plan-per-call.
	floor := 5.0
	if raceEnabled {
		floor = 2.5
	}
	if ratio < floor {
		t.Fatalf("prepared path only %.1f× faster than re-parse, want ≥ %.1f×", ratio, floor)
	}
}

package engine

import (
	"fmt"
	"iter"

	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/value"
)

// Rows is a streaming cursor over a statement's result, in the
// database/sql style: Next advances (expanding bag multiplicities into
// one step per occurrence), Scan converts the current row into Go
// values, Close releases the underlying iterator early. A Rows is bound
// to one goroutine; concurrent sessions each hold their own cursor.
type Rows struct {
	cols  []string
	next  func() (relation.Tuple, int, bool)
	stop  func()
	errFn func() error
	check func() error

	cur    relation.Tuple
	rem    int // remaining occurrences of cur (bag multiplicity)
	err    error
	closed bool

	// nrows counts row occurrences handed out; onDone, when set, fires
	// exactly once when the cursor finishes (exhaustion, error, or Close)
	// with the final count — the engine's tracing and slow-query-log hook.
	nrows  int64
	onDone func(rows int64)
}

// newRows wraps a streaming sequence. errFn reports the execution error
// (if any) once the stream stops; check is the per-advance cancellation
// poll.
func newRows(cols []string, seq exec.Seq, errFn func() error, check func() error) *Rows {
	next, stop := iter.Pull2(seq)
	return &Rows{cols: cols, next: next, stop: stop, errFn: errFn, check: check}
}

// relationRows streams an already-materialized result.
func relationRows(cols []string, rel *relation.Relation, check func() error) *Rows {
	return newRows(cols, exec.Scan(rel), func() error { return nil }, check)
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row occurrence, returning false when the
// stream is exhausted, an execution error occurred, or the query's
// context was cancelled — check Err after the loop.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.rem > 1 {
		r.rem--
		r.nrows++
		return true
	}
	// Polled once per pulled row: a cursor advance already pays a
	// coroutine switch (iter.Pull2), so one uncontended ctx.Err on top
	// is noise, and it keeps cancellation prompt at the API boundary
	// even for sources with no internal poll sites.
	if r.check != nil {
		if err := r.check(); err != nil {
			r.fail(err)
			return false
		}
	}
	t, m, ok := r.pull()
	if !ok {
		if !r.closed {
			r.finish()
		}
		return false
	}
	r.cur, r.rem = t, m
	r.nrows++
	return true
}

// pull advances the underlying iterator with the engine's recover
// backstop: a panic inside the operator tree (the streaming analogue of
// a Query-time evaluator panic) fails this cursor instead of killing the
// process. The coroutine is already dead after a panic, so the cursor is
// marked closed without calling stop.
func (r *Rows) pull() (t relation.Tuple, m int, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.err = &PanicError{Op: "rows", Val: p, Stack: stackNow()}
			r.closed = true
			r.cur, r.rem = nil, 0
			t, m, ok = nil, 0, false
			r.fireDone()
		}
	}()
	return r.next()
}

// Values returns a copy of the current row.
func (r *Rows) Values() []value.Value {
	out := make([]value.Value, len(r.cur))
	copy(out, r.cur)
	return out
}

// Scan converts the current row into dest pointers: *int, *int64,
// *float64, *string, *bool, *value.Value, or *any (NULL scans as nil
// into *any and as value.Null() into *value.Value; other destinations
// reject it).
func (r *Rows) Scan(dest ...any) error {
	// cur is cleared on exhaustion, error, and Close, so a misuse never
	// reads a stale (or zero) tuple — it gets a positional error instead.
	if r.cur == nil {
		if r.closed {
			return fmt.Errorf("engine: Scan after Rows was exhausted or closed")
		}
		return fmt.Errorf("engine: Scan before Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("engine: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := scanValue(r.cur[i], d); err != nil {
			return fmt.Errorf("engine: column %d (%s): %w", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return fmt.Sprintf("col%d", i+1)
}

// scanValue converts one value into a destination pointer.
func scanValue(v value.Value, dest any) error {
	switch d := dest.(type) {
	case *value.Value:
		*d = v
		return nil
	case *any:
		switch v.Kind() {
		case value.KindNull:
			*d = nil
		case value.KindInt:
			*d = v.AsInt()
		case value.KindFloat:
			*d = v.AsFloat()
		case value.KindString:
			*d = v.AsString()
		case value.KindBool:
			*d = v.AsBool()
		}
		return nil
	case *int64:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v)
		}
		*d = v.AsInt()
		return nil
	case *int:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int", v)
		}
		*d = int(v.AsInt())
		return nil
	case *float64:
		if !v.IsNumeric() {
			return fmt.Errorf("cannot scan %s into *float64", v)
		}
		*d = v.AsFloat()
		return nil
	case *string:
		if v.Kind() != value.KindString {
			return fmt.Errorf("cannot scan %s into *string", v)
		}
		*d = v.AsString()
		return nil
	case *bool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v)
		}
		*d = v.AsBool()
		return nil
	}
	return fmt.Errorf("unsupported Scan destination %T", dest)
}

// Err reports the first error the stream hit (an execution error or the
// context's cancellation error); nil after a clean exhaustion.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is safe to call more than once and after
// exhaustion.
func (r *Rows) Close() error {
	if !r.closed {
		r.finish()
	}
	return r.err
}

// fail stops the cursor with an error.
func (r *Rows) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	if !r.closed {
		r.closed = true
		r.cur, r.rem = nil, 0
		r.stop()
	}
	r.fireDone()
}

// finish stops the iterator and surfaces any execution error. The
// current tuple is dropped so a late Scan errors instead of reading
// stale data.
func (r *Rows) finish() {
	r.closed = true
	r.cur, r.rem = nil, 0
	r.stop()
	if r.err == nil {
		r.err = r.errFn()
	}
	r.fireDone()
}

// fireDone invokes the completion hook exactly once.
func (r *Rows) fireDone() {
	if r.onDone != nil {
		f := r.onDone
		r.onDone = nil
		f(r.nrows)
	}
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func mustExec(t *testing.T, db *DB, lang Lang, src string, args ...any) Result {
	t.Helper()
	res, err := db.Exec(context.Background(), lang, src, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func countAll(t *testing.T, q func(context.Context, Lang, string, ...any) (*relation.Relation, error), lang Lang, src string, args ...any) int {
	t.Helper()
	rel, err := q(context.Background(), lang, src, args...)
	if err != nil {
		t.Fatalf("QueryAll(%q): %v", src, err)
	}
	return rel.Card()
}

func TestExecInsertValues(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 10))
	startGen := db.Generation()
	res := mustExec(t, db, LangSQL, "insert into R values (2, 20), (3, 30)")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	if res.Generation != startGen+1 {
		t.Fatalf("Generation = %d, want %d", res.Generation, startGen+1)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A, R.B from R"); got != 3 {
		t.Fatalf("rows after insert = %d, want 3", got)
	}
	// Parameters const-evaluate, including arithmetic over them.
	res = mustExec(t, db, LangSQL, "insert into R values ($1, $1 + 1)", int64(4))
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d, want 1", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.B from R where R.A = 4 and R.B = 5"); got != 1 {
		t.Fatal("parameterized insert row missing")
	}
}

func TestExecInsertColumnListNullFill(t *testing.T) {
	db := Open(relation.New("R", "A", "B", "C"))
	mustExec(t, db, LangSQL, "insert into R (C, A) values (30, 3)")
	rel, err := db.QueryAll(context.Background(), LangSQL, "select R.A, R.B, R.C from R")
	if err != nil {
		t.Fatal(err)
	}
	tuples := rel.Tuples()
	if len(tuples) != 1 {
		t.Fatalf("got %d rows, want 1", len(tuples))
	}
	tup := tuples[0]
	if tup[0] != value.Int(3) || !tup[1].IsNull() || tup[2] != value.Int(30) {
		t.Fatalf("row = %v, want (3, NULL, 30)", tup)
	}
	// Unknown and duplicate columns are prepare-time errors.
	if _, err := db.Exec(context.Background(), LangSQL, "insert into R (A, Z) values (1, 2)"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.Exec(context.Background(), LangSQL, "insert into R (A, A) values (1, 2)"); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestExecInsertSelect(t *testing.T) {
	db := Open(
		relation.New("Src", "X", "Y").Add(1, 10).Add(2, 20).Add(2, 20),
		relation.New("Dst", "A", "B"),
	)
	res := mustExec(t, db, LangSQL, "insert into Dst select Src.X, Src.Y from Src where Src.X > 1")
	// Bag semantics: the duplicate (2,20) carries multiplicity 2.
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select Dst.A from Dst"); got != 2 {
		t.Fatalf("Dst rows = %d, want 2", got)
	}
}

func TestExecDelete(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(2, 20).Add(3, 30))
	res := mustExec(t, db, LangSQL, "delete from R where R.A = $1", int64(2))
	// Every occurrence of a matched tuple goes.
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 2 {
		t.Fatalf("remaining rows = %d, want 2", got)
	}
	// No matches: zero affected, no error, and no generation bump.
	gen := db.Generation()
	res = mustExec(t, db, LangSQL, "delete from R where R.A = 99")
	if res.RowsAffected != 0 {
		t.Fatalf("RowsAffected = %d, want 0", res.RowsAffected)
	}
	if db.Generation() != gen {
		t.Fatalf("no-op delete bumped generation %d -> %d", gen, db.Generation())
	}
	// DELETE with alias and no WHERE clears the table.
	res = mustExec(t, db, LangSQL, "delete from R r")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
}

func TestExecUpdate(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(2, 20).Add(3, 30))
	res := mustExec(t, db, LangSQL, "update R set B = $1 where R.A = 2", int64(99))
	// Every occurrence of a matched tuple is rewritten: (2,20)×2 → (2,99)×2.
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.B = 99"); got != 2 {
		t.Fatalf("rewritten occurrences = %d, want 2", got)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 4 {
		t.Fatalf("total rows = %d, want 4 (update must not change cardinality)", got)
	}
	// SET may reference the row being updated, and BETWEEN range
	// predicates drive the matching-rows query.
	res = mustExec(t, db, LangSQL, "update R set B = R.B + 1 where R.A between 1 and 2")
	if res.RowsAffected != 3 {
		t.Fatalf("RowsAffected = %d, want 3", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.B = 100"); got != 2 {
		t.Fatalf("B=100 occurrences = %d, want 2", got)
	}
	// Aliased form with an unqualified SET column reference.
	res = mustExec(t, db, LangSQL, "update R r set B = B + A where r.B = 11")
	if res.RowsAffected != 1 {
		t.Fatalf("aliased RowsAffected = %d, want 1", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.B = 12"); got != 1 {
		t.Fatalf("B=12 occurrences = %d, want 1", got)
	}
	// Value swap across columns must read the old row on both sides.
	mustExec(t, db, LangSQL, "delete from R")
	mustExec(t, db, LangSQL, "insert into R values (1, 2)")
	mustExec(t, db, LangSQL, "update R set A = R.B, B = R.A")
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.A = 2 and R.B = 1"); got != 1 {
		t.Fatalf("swap produced wrong row (want exactly (2,1))")
	}
	// No matches: zero affected, no error, and no generation bump.
	gen := db.Generation()
	res = mustExec(t, db, LangSQL, "update R set B = 0 where R.A = 42")
	if res.RowsAffected != 0 {
		t.Fatalf("RowsAffected = %d, want 0", res.RowsAffected)
	}
	if db.Generation() != gen {
		t.Fatalf("no-op update bumped generation %d -> %d", gen, db.Generation())
	}
}

func TestExecUpdateRangePlan(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 10).Add(5, 50).Add(9, 90))
	s, err := db.Prepare(LangSQL, "update R set B = 0 where R.A >= 2 and R.A < 7")
	if err != nil {
		t.Fatal(err)
	}
	text, err := s.Explain()
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(text, "RangeScan R A in [2, 7)") {
		t.Fatalf("UPDATE range WHERE did not lower to a RangeScan:\n%s", text)
	}
	res, err := s.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d, want 1", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.B = 0"); got != 1 {
		t.Fatalf("B=0 occurrences = %d, want 1", got)
	}
}

func TestExecUpdateErrors(t *testing.T) {
	db := Open(relation.New("R", "A", "B").Add(1, 10))
	for _, src := range []string{
		"update Nope set A = 1",     // unknown table
		"update R set C = 1",        // unknown column
		"update R set A = 1, A = 2", // column set twice
	} {
		if _, err := db.Prepare(LangSQL, src); err == nil {
			t.Errorf("Prepare(%q) succeeded, want error", src)
		}
	}
	// An unknown column in WHERE compiles to the enumeration fallback
	// (same as DELETE) and must fail at execution.
	if _, err := db.Exec(context.Background(), LangSQL, "update R set A = 1 where R.C = 1"); err == nil {
		t.Error("Exec with unknown WHERE column succeeded, want error")
	}
}

func TestExecCreateTable(t *testing.T) {
	db := Open()
	res := mustExec(t, db, LangSQL, "create table T (A int, B text)")
	if res.RowsAffected != 0 {
		t.Fatalf("DDL RowsAffected = %d, want 0", res.RowsAffected)
	}
	mustExec(t, db, LangSQL, "insert into T values (1, 'x')")
	if got := countAll(t, db.QueryAll, LangSQL, "select T.A from T"); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
	if _, err := db.Exec(context.Background(), LangSQL, "create table T (C int)"); err == nil {
		t.Fatal("re-creating an existing table succeeded")
	}
}

func TestExecFactOps(t *testing.T) {
	db := Open(relation.New("Edge", "src", "dst").Add(1, 2))
	res := mustExec(t, db, LangARC, "+Edge(2, 3). +Edge(3, 4).")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	// Repeated assertion accumulates multiplicity; retraction removes all.
	mustExec(t, db, LangARC, "+Edge(2, 3)")
	res = mustExec(t, db, LangDatalog, "-Edge(2, 3).")
	if res.RowsAffected != 2 {
		t.Fatalf("retraction RowsAffected = %d, want 2", res.RowsAffected)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select Edge.src from Edge"); got != 2 {
		t.Fatalf("edges = %d, want 2", got)
	}
	if _, err := db.Exec(context.Background(), LangARC, "+Nope(1)"); err == nil {
		t.Fatal("fact op on unknown relation succeeded")
	}
	if _, err := db.Exec(context.Background(), LangARC, "+Edge(1)"); err == nil {
		t.Fatal("arity-mismatched fact op succeeded")
	}
}

func TestExecKindMisuse(t *testing.T) {
	db := Open(relation.New("R", "A").Add(1))
	if _, err := db.Exec(context.Background(), LangSQL, "select R.A from R"); err == nil {
		t.Fatal("Exec of a query succeeded")
	}
	s, err := db.Prepare(LangSQL, "insert into R values (9)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != KindDML {
		t.Fatalf("Kind = %v, want KindDML", s.Kind())
	}
	if _, err := s.Query(context.Background()); err == nil {
		t.Fatal("Query of a DML statement succeeded")
	}
	if _, err := s.QueryAll(context.Background()); err == nil {
		t.Fatal("QueryAll of a DML statement succeeded")
	}
	q, err := db.Prepare(LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind() != KindQuery {
		t.Fatalf("Kind = %v, want KindQuery", q.Kind())
	}
	if _, err := q.Exec(context.Background()); err == nil {
		t.Fatal("Exec of a query statement succeeded")
	}
}

func TestDMLBindingRejected(t *testing.T) {
	db := Open(relation.New("R", "A"))
	extra := relation.New("R", "A").Add(5)
	_, err := db.Exec(context.Background(), LangSQL, "insert into R values (1)", In("R", extra))
	if !errors.Is(err, ErrDMLBinding) {
		t.Fatalf("binding a relation to DML: err = %v, want ErrDMLBinding", err)
	}
	// ARC/Datalog fact batches likewise take no bindings.
	_, err = db.Exec(context.Background(), LangARC, "+R(1)", In("R", extra))
	if !errors.Is(err, ErrDMLBinding) {
		t.Fatalf("binding a relation to fact ops: err = %v, want ErrDMLBinding", err)
	}
}

func TestTxReadYourWrites(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A", "B").Add(1, 10))
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare BEFORE the write: the statement must re-resolve against the
	// transaction's overlay after the write and see the new row exactly
	// once.
	s, err := tx.Prepare(LangSQL, "select R.A from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, LangSQL, "insert into R values (2, 20)"); err != nil {
		t.Fatal(err)
	}
	rel, err := s.QueryAll(ctx, int64(2))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Card() != 1 {
		t.Fatalf("tx-prepared statement sees %d rows for its own write, want exactly 1", rel.Card())
	}
	// Other sessions don't see it before commit.
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.A = 2"); got != 0 {
		t.Fatalf("uncommitted write visible outside the transaction (%d rows)", got)
	}
	// Statement identity is stable while the write set doesn't move:
	// two resolves at the same version return the same compilation.
	r1, err := tx.resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tx.resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("resolve recompiled at an unchanged write-set version")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R where R.A = 2"); got != 1 {
		t.Fatalf("committed write invisible (%d rows)", got)
	}
	// The transaction is done: statements and control both fail.
	if _, err := s.QueryAll(ctx, int64(2)); !errors.Is(err, ErrTxDone) {
		t.Fatalf("query on committed tx: err = %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: err = %v, want ErrTxDone", err)
	}
}

func TestTxRollbackDiscards(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A"))
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, LangSQL, "insert into R values (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 0 {
		t.Fatalf("rolled-back write visible (%d rows)", got)
	}
}

func TestTxFirstCommitterWins(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A").Add(1), relation.New("S", "B"))
	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec(ctx, LangSQL, "insert into R values (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(ctx, LangSQL, "insert into R values (3)"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: err = %v, want ErrConflict", err)
	}
	// Only the winner's write landed.
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	// Disjoint write sets don't conflict.
	tx3, _ := db.Begin(ctx)
	tx4, _ := db.Begin(ctx)
	if _, err := tx3.Exec(ctx, LangSQL, "insert into R values (9)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx4.Exec(ctx, LangSQL, "insert into S values (9)"); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx4.Commit(); err != nil {
		t.Fatalf("disjoint writer conflicted: %v", err)
	}
}

func TestCursorOpenedBeforeDeleteStreamsOldSnapshot(t *testing.T) {
	ctx := context.Background()
	r := relation.New("R", "A")
	for i := range 100 {
		r.Add(i)
	}
	db := Open(r)
	rows, err := db.Query(ctx, LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	// Committed DELETE lands while the cursor is open.
	res := mustExec(t, db, LangSQL, "delete from R where R.A < 50")
	if res.RowsAffected != 50 {
		t.Fatalf("delete removed %d, want 50", res.RowsAffected)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// The cursor streams its pre-delete snapshot to completion.
	if n != 100 {
		t.Fatalf("cursor streamed %d rows, want the full pre-delete 100", n)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 50 {
		t.Fatalf("post-delete rows = %d, want 50", got)
	}
}

func TestSessionSQLTransactionControl(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A"))
	sess := db.NewSession()
	defer sess.Close()

	if _, err := sess.Exec(ctx, LangSQL, "commit"); err == nil {
		t.Fatal("COMMIT with no open transaction succeeded")
	}
	if _, err := sess.Exec(ctx, LangSQL, "begin"); err != nil {
		t.Fatal(err)
	}
	if !sess.InTx() {
		t.Fatal("session not in transaction after BEGIN")
	}
	if _, err := sess.Exec(ctx, LangSQL, "begin"); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	if _, err := sess.Exec(ctx, LangSQL, "insert into R values (1)"); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes through the session surface.
	if got := countAll(t, sess.QueryAll, LangSQL, "select R.A from R"); got != 1 {
		t.Fatalf("session sees %d rows in tx, want 1", got)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 0 {
		t.Fatalf("uncommitted session write leaked (%d rows)", got)
	}
	res, err := sess.Exec(ctx, LangSQL, "commit")
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation == 0 {
		t.Fatal("COMMIT reported generation 0")
	}
	if sess.InTx() {
		t.Fatal("session still in transaction after COMMIT")
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 1 {
		t.Fatalf("committed rows = %d, want 1", got)
	}
	// ROLLBACK path.
	if _, err := sess.Exec(ctx, LangSQL, "begin transaction"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, LangSQL, "delete from R"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, LangSQL, "rollback"); err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != 1 {
		t.Fatalf("rollback lost committed data: rows = %d, want 1", got)
	}
}

func TestSessionEpochMoves(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A"), relation.New("S", "B"))
	sess := db.NewSession()
	defer sess.Close()
	e0 := sess.Epoch()
	// Another writer commits: the out-of-tx epoch moves.
	mustExec(t, db, LangSQL, "insert into S values (1)")
	if sess.Epoch() == e0 {
		t.Fatal("epoch unchanged after a concurrent commit")
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	e1 := sess.Epoch()
	// In-tx: a concurrent commit does NOT move the epoch (snapshot
	// isolation), but the session's own write does. The concurrent
	// writer touches S only, so the session's R-write still commits.
	mustExec(t, db, LangSQL, "insert into S values (2)")
	if sess.Epoch() != e1 {
		t.Fatal("in-tx epoch moved on a concurrent commit")
	}
	if _, err := sess.Exec(ctx, LangSQL, "insert into R values (3)"); err != nil {
		t.Fatal(err)
	}
	if sess.Epoch() == e1 {
		t.Fatal("in-tx epoch unchanged after own write")
	}
	if _, err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if sess.Epoch() == e1 {
		t.Fatal("epoch unchanged after commit")
	}
}

func TestAutocommitRetriesOnConflict(t *testing.T) {
	ctx := context.Background()
	db := Open(relation.New("R", "A"))
	var wg sync.WaitGroup
	const writers, per = 8, 25
	errs := make(chan error, writers)
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				if _, err := db.Exec(ctx, LangSQL, fmt.Sprintf("insert into R values (%d)", w*per+i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := countAll(t, db.QueryAll, LangSQL, "select R.A from R"); got != writers*per {
		t.Fatalf("rows = %d, want %d", got, writers*per)
	}
}

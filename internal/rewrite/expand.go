// Package rewrite implements pattern-preserving ALT rewrites. The first
// rewrite is the paper's Section 2.13.2 "expand" operation on abstract
// relations: a use of an abstract relation (a module) is replaced by its
// definition, with the head attributes substituted by the use-site
// parameter terms — turning the modular unique-set query (24) back into
// the flat query (22). The inverse ("collapse") is what the diagrammatic
// modality does visually by folding a sub-diagram into a module node.
package rewrite

import (
	"fmt"

	"repro/internal/alt"
)

// ExpandAbstract inlines every binding over abs's head relation inside
// col, returning a new collection (col is not modified). Each use site
// must determine every head attribute of abs through an equality
// predicate on the same scope's spine (the same access-pattern rule the
// evaluator applies); those predicates are consumed by the substitution.
func ExpandAbstract(col *alt.Collection, abs *alt.Collection) (*alt.Collection, error) {
	out := alt.CloneCollection(col)
	e := &expander{absName: abs.Head.Rel, abs: abs}
	if err := e.formula(out.Body); err != nil {
		return nil, err
	}
	if e.count == 0 {
		return nil, fmt.Errorf("rewrite: %s does not use abstract relation %s", col.Head.Rel, abs.Head.Rel)
	}
	if _, err := alt.ValidateCollection(out); err != nil {
		return nil, fmt.Errorf("rewrite: expansion produced an invalid ALT: %w", err)
	}
	return out, nil
}

type expander struct {
	absName string
	abs     *alt.Collection
	count   int
	fresh   int
}

func (e *expander) formula(f alt.Formula) error {
	switch x := f.(type) {
	case nil:
		return nil
	case *alt.And:
		for _, k := range x.Kids {
			if err := e.formula(k); err != nil {
				return err
			}
		}
	case *alt.Or:
		for _, k := range x.Kids {
			if err := e.formula(k); err != nil {
				return err
			}
		}
	case *alt.Not:
		return e.formula(x.Kid)
	case *alt.Quantifier:
		if err := e.quantifier(x); err != nil {
			return err
		}
	}
	return nil
}

func (e *expander) quantifier(q *alt.Quantifier) error {
	// Recurse first (nested collections may also use the module).
	for _, b := range q.Bindings {
		if b.Sub != nil {
			if err := e.formula(b.Sub.Body); err != nil {
				return err
			}
		}
	}
	if err := e.formula(q.Body); err != nil {
		return err
	}
	// Expand uses bound in this quantifier.
	var kept []*alt.Binding
	for _, b := range q.Bindings {
		if b.Sub != nil || b.Rel != e.absName {
			kept = append(kept, b)
			continue
		}
		if err := e.inline(q, b); err != nil {
			return err
		}
		e.count++
	}
	q.Bindings = kept
	return nil
}

// inline replaces one use v ∈ Abs: the parameter terms come from spine
// equalities v.attr = t, which are consumed; the definition body is
// α-renamed and conjoined.
func (e *expander) inline(q *alt.Quantifier, b *alt.Binding) error {
	spine := alt.Spine(q.Body)
	subst := map[string]alt.Term{}
	used := map[alt.Formula]bool{}
	for _, attr := range e.abs.Head.Attrs {
		found := false
		for _, el := range spine {
			p, ok := el.(*alt.Pred)
			if !ok || used[p] || p.Op.String() != "=" {
				continue
			}
			if r, ok := p.Left.(*alt.AttrRef); ok && r.Var == b.Var && r.Attr == attr && !refersTo(p.Right, b.Var) {
				subst[attr] = p.Right
				used[p] = true
				found = true
				break
			}
			if r, ok := p.Right.(*alt.AttrRef); ok && r.Var == b.Var && r.Attr == attr && !refersTo(p.Left, b.Var) {
				subst[attr] = p.Left
				used[p] = true
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("rewrite: use %s ∈ %s does not determine parameter %q", b.Var, e.absName, attr)
		}
	}
	// Any remaining reference to b is an error (e.g. v.attr in a non-eq
	// predicate) — conservative, matching the evaluator's access rule.
	for _, el := range spine {
		if used[el] {
			continue
		}
		for _, r := range alt.FormulaAttrRefs(el, nil) {
			if r.Var == b.Var {
				return fmt.Errorf("rewrite: %s.%s used outside a parameter equality; cannot expand", b.Var, r.Attr)
			}
		}
	}
	// α-rename the definition body and substitute parameters.
	e.fresh++
	body := alt.CloneFormula(e.abs.Body)
	ren := map[string]string{}
	collectBindingVars(body, ren, e.fresh)
	applyRename(body, ren, e.absName, subst)
	// Rebuild the spine without the consumed equalities, plus the body.
	var kids []alt.Formula
	for _, el := range spine {
		if !used[el] {
			kids = append(kids, el)
		}
	}
	kids = append(kids, body)
	q.Body = alt.AndF(kids...)
	return nil
}

func refersTo(t alt.Term, v string) bool {
	for _, r := range alt.TermAttrRefs(t, nil) {
		if r.Var == v {
			return true
		}
	}
	return false
}

func collectBindingVars(f alt.Formula, ren map[string]string, n int) {
	alt.Walk(f, func(x alt.Formula) {
		q, ok := x.(*alt.Quantifier)
		if !ok {
			return
		}
		for _, b := range q.Bindings {
			if _, dup := ren[b.Var]; !dup {
				ren[b.Var] = fmt.Sprintf("%s_x%d", b.Var, n)
			}
		}
	})
}

// applyRename renames binding variables and substitutes head-parameter
// references throughout a cloned definition body.
func applyRename(f alt.Formula, ren map[string]string, headRel string, subst map[string]alt.Term) {
	var renameTerm func(t alt.Term) alt.Term
	renameTerm = func(t alt.Term) alt.Term {
		switch x := t.(type) {
		case *alt.AttrRef:
			if x.Var == headRel {
				if rep, ok := subst[x.Attr]; ok {
					return alt.CloneTerm(rep)
				}
			}
			if nv, ok := ren[x.Var]; ok {
				x.Var = nv
			}
			return x
		case *alt.Agg:
			x.Arg = renameTerm(x.Arg)
			return x
		case *alt.Arith:
			x.L = renameTerm(x.L)
			x.R = renameTerm(x.R)
			return x
		}
		return t
	}
	var walk func(alt.Formula)
	walk = func(x alt.Formula) {
		switch n := x.(type) {
		case *alt.And:
			for _, k := range n.Kids {
				walk(k)
			}
		case *alt.Or:
			for _, k := range n.Kids {
				walk(k)
			}
		case *alt.Not:
			walk(n.Kid)
		case *alt.Pred:
			n.Left = renameTerm(n.Left)
			n.Right = renameTerm(n.Right)
		case *alt.IsNull:
			n.Arg = renameTerm(n.Arg)
		case *alt.Quantifier:
			for _, b := range n.Bindings {
				if nv, ok := ren[b.Var]; ok {
					b.Var = nv
				}
				if b.Sub != nil {
					walk(b.Sub.Body)
				}
			}
			if n.Grouping != nil {
				for i, k := range n.Grouping.Keys {
					n.Grouping.Keys[i] = renameTerm(k).(*alt.AttrRef)
				}
			}
			walk(n.Body)
		}
	}
	walk(f)
}

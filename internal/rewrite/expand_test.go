package rewrite

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/pattern"
	"repro/internal/relpat"
	"repro/internal/workload"
)

// TestExpandUniqueSet reproduces the Section 2.13.2 story in reverse:
// expanding the Subset module in the modular query (24) yields a query
// equivalent to the flat unique-set query (22).
func TestExpandUniqueSet(t *testing.T) {
	expanded, err := ExpandAbstract(relpat.UniqueSetModular(), relpat.SubsetAbstract())
	if err != nil {
		t.Fatal(err)
	}
	// The expansion no longer references the abstract relation.
	if strings.Contains(expanded.String(), "∈ S") {
		t.Fatalf("abstract relation still referenced:\n%s", expanded)
	}
	// Semantically equal to (22) — and the expansion no longer needs the
	// abstract definition in the catalog.
	rng := workload.Rand(11)
	for trial := 0; trial < 5; trial++ {
		var likes = workload.LikesRandom(rng, 5, 3).Rename("L", []string{"d", "b"})
		cat := eval.NewCatalog().AddRelation(likes)
		flat, err := eval.Eval(relpat.UniqueSet(), cat, convention.SetLogic())
		if err != nil {
			t.Fatal(err)
		}
		exp, err := eval.Eval(expanded, cat, convention.SetLogic())
		if err != nil {
			t.Fatal(err)
		}
		if !exp.EqualSet(flat) {
			t.Fatalf("trial %d: expansion diverges:\n%s\n%s", trial, exp, flat)
		}
	}
	// Same relational pattern signature as the flat query.
	sigFlat, _ := pattern.ComputeSignature(relpat.UniqueSet())
	sigExp, _ := pattern.ComputeSignature(expanded)
	if sigExp.RelCounts["L"] != sigFlat.RelCounts["L"] || sigExp.Negations != sigFlat.Negations {
		t.Fatalf("pattern changed: flat=%s expanded=%s", sigFlat, sigExp)
	}
}

func TestExpandTwiceUsesFreshNames(t *testing.T) {
	// (24) uses Subset twice in one scope; the two inlined bodies must
	// not capture each other's variables.
	expanded, err := ExpandAbstract(relpat.UniqueSetModular(), relpat.SubsetAbstract())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alt.ValidateCollection(expanded); err != nil {
		t.Fatalf("expansion invalid (capture?): %v", err)
	}
	s := expanded.String()
	if !strings.Contains(s, "_x1") || !strings.Contains(s, "_x2") {
		t.Fatalf("fresh renaming missing:\n%s", s)
	}
}

func TestExpandErrors(t *testing.T) {
	// No use of the module.
	plain := alt.Col("Q", []string{"d"},
		alt.Exists([]*alt.Binding{alt.Bind("l", "L")},
			alt.Eq(alt.Ref("Q", "d"), alt.Ref("l", "d"))))
	if _, err := ExpandAbstract(plain, relpat.SubsetAbstract()); err == nil ||
		!strings.Contains(err.Error(), "does not use") {
		t.Fatalf("want does-not-use error, got %v", err)
	}
	// Underdetermined parameter: only one of left/right is bound.
	under := alt.Col("Q", []string{"d"},
		alt.Exists([]*alt.Binding{alt.Bind("l", "L"), alt.Bind("s1", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "d"), alt.Ref("l", "d")),
				alt.Eq(alt.Ref("s1", "left"), alt.Ref("l", "d")),
			)))
	if _, err := ExpandAbstract(under, relpat.SubsetAbstract()); err == nil ||
		!strings.Contains(err.Error(), "does not determine") {
		t.Fatalf("want underdetermined error, got %v", err)
	}
	// Parameter used outside an equality.
	misuse := alt.Col("Q", []string{"d"},
		alt.Exists([]*alt.Binding{alt.Bind("l", "L"), alt.Bind("s1", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "d"), alt.Ref("l", "d")),
				alt.Eq(alt.Ref("s1", "left"), alt.Ref("l", "d")),
				alt.Eq(alt.Ref("s1", "right"), alt.Ref("l", "d")),
				alt.Lt(alt.Ref("s1", "left"), alt.CInt(5)),
			)))
	if _, err := ExpandAbstract(misuse, relpat.SubsetAbstract()); err == nil ||
		!strings.Contains(err.Error(), "outside a parameter equality") {
		t.Fatalf("want misuse error, got %v", err)
	}
}

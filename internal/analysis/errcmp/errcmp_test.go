package errcmp_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	atest.Run(t, "testdata", errcmp.Analyzer, "a")
}

// TestMalformedIgnore checks that an //arcvet:ignore directive without a
// reason does not suppress and is itself reported.
func TestMalformedIgnore(t *testing.T) {
	diags, fset := atest.Diags(t, "testdata", errcmp.Analyzer, "b")
	var gotDirective, gotComparison bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "directive needs a reason"):
			gotDirective = true
		case strings.Contains(d.Message, "comparison of sentinel ErrThing"):
			gotComparison = true
		default:
			t.Errorf("unexpected diagnostic at %s: %s", fset.Position(d.Pos), d.Message)
		}
	}
	if !gotDirective {
		t.Error("reason-less directive was not reported as malformed")
	}
	if !gotComparison {
		t.Error("reason-less directive wrongly suppressed the comparison diagnostic")
	}
}

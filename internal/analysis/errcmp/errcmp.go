// Package errcmp flags ==/!= comparisons (and switch cases) against
// sentinel error variables.
//
// # The invariant
//
// The engine wraps its sentinels before they cross layers:
// relation.ErrConflict surfaces as fmt.Errorf("%w: %s", ErrConflict,
// name), fixpoint.ErrIterationCap arrives wrapped with the fixpoint's
// name, and the wire layer adds its own context. A direct `err ==
// relation.ErrConflict` therefore compiles, passes a unit test that
// happens to see the unwrapped value, and silently never matches in
// production — retry-on-conflict loops that never retry. errors.Is is
// the only comparison that honors wrapping, so arcvet requires it for
// every identifier that looks like a sentinel: a package-level variable
// of type error whose name starts with "Err".
//
// Comparisons with nil are untouched, and a genuinely identity-based
// comparison can be suppressed with
//
//	//arcvet:ignore errcmp <why identity comparison is intended>
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/arcvetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "errcmp",
	Doc:      "flags ==/!= against sentinel errors where errors.Is is required because the engine wraps them",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := arcvetutil.NewSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if s := sentinelIn(pass, n.X, n.Y); s != nil {
				sup.Report(n.OpPos, "comparison of sentinel %s with %s; the engine wraps its sentinels — use errors.Is", s.Name(), n.Op)
			}
		case *ast.SwitchStmt:
			// switch err { case ErrX: } compares by ==, with the same
			// wrapped-sentinel blind spot.
			if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
				return
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if s := sentinelVar(pass, e); s != nil {
						sup.Report(e.Pos(), "switch case compares sentinel %s with ==; the engine wraps its sentinels — use errors.Is", s.Name())
					}
				}
			}
		}
	})
	return nil, nil
}

// sentinelIn returns the sentinel variable when one side is a sentinel
// and the other is an error-typed expression (not nil).
func sentinelIn(pass *analysis.Pass, x, y ast.Expr) *types.Var {
	if s := sentinelVar(pass, x); s != nil && isErrorExpr(pass, y) {
		return s
	}
	if s := sentinelVar(pass, y); s != nil && isErrorExpr(pass, x) {
		return s
	}
	return nil
}

// sentinelVar resolves e to a package-level error variable named Err*.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e has static type error (nil does not).
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	// The error interface: exactly the Error() string method.
	for i := 0; i < it.NumMethods(); i++ {
		if it.Method(i).Name() == "Error" {
			return true
		}
	}
	return false
}

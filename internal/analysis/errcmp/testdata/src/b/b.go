// Package b exercises the malformed //arcvet:ignore directive: a
// directive with no reason must NOT suppress, and must itself be
// reported. The test checks the raw diagnostics (atest.Diags) because
// one of them lands on the directive's own line.
package b

import "errors"

var ErrThing = errors.New("thing")

func check(err error) bool {
	//arcvet:ignore errcmp
	return err == ErrThing
}

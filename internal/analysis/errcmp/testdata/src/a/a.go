package a

import (
	"errors"

	"repro/internal/relation"
)

var ErrLocal = errors.New("local sentinel")

var errUnexported = errors.New("not a sentinel by naming convention")

func check(err error) int {
	if err == relation.ErrConflict { // want "comparison of sentinel ErrConflict with ==; the engine wraps its sentinels — use errors.Is"
		return 1
	}
	if err != ErrLocal { // want "comparison of sentinel ErrLocal with !="
		return 2
	}
	if relation.ErrConflict == err { // want "comparison of sentinel ErrConflict with =="
		return 3
	}
	if errors.Is(err, relation.ErrConflict) { // the required form
		return 4
	}
	if err == nil { // nil comparison is fine
		return 5
	}
	if err == errUnexported { // unexported name: not a sentinel
		return 6
	}
	switch err {
	case relation.ErrConflict: // want "switch case compares sentinel ErrConflict with =="
		return 7
	case nil:
		return 8
	}
	//arcvet:ignore errcmp fixture: identity comparison is the point of this test
	if err == ErrLocal {
		return 9
	}
	if err == ErrLocal { //arcvet:ignore errcmp fixture: trailing-comment form
		return 10
	}
	return 0
}

func notErrors(a, b int) bool {
	return a == b // non-error operands are out of scope
}

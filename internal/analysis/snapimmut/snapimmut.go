// Package snapimmut flags mutations of relations reached from committed
// snapshots.
//
// # The invariant
//
// relation.Store publishes immutable, generation-tagged Snapshots:
// readers load the head atomically and stream from its relations with
// no lock, which is only sound because a *Relation that has appeared in
// a committed snapshot is never mutated again (store.go's contract).
// Every write must go through a WriteSet, whose working() clones the
// base relation copy-on-write. Calling Insert (or any other mutating
// method) on a relation reached from Store.Head, Snapshot.Relation/
// Rels, WriteSet.Base/Relation/Rels, or engine DB.Relation therefore
// corrupts data under concurrent readers — a data race the type system
// cannot see, because the mutable and immutable views share one type.
//
// The analyzer performs an intra-function taint walk: values produced
// by the snapshot accessors above (directly, through local variables,
// map indexing, or range) are snapshot-derived, and a call to a
// mutating Relation method (Insert, InsertMult, InsertOwned,
// RemoveKeys, Add, UnionAll) on a derived value is reported. Deriving a
// fresh relation (Clone, Dedup, Project, Rename) clears the taint.
//
// internal/relation itself is exempt: it implements the store and owns
// the cloning discipline. Elsewhere, a deliberate mutation (e.g. a
// single-writer bootstrap path) can be suppressed with
//
//	//arcvet:ignore snapimmut <why no concurrent reader can exist>
package snapimmut

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/arcvetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "snapimmut",
	Doc:      "flags mutating Relation method calls on values reached from a committed Snapshot rather than a WriteSet clone",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// mutating methods of *relation.Relation: calling any of these on a
// published relation is the race.
var mutators = map[string]bool{
	"Insert":      true,
	"InsertMult":  true,
	"InsertOwned": true,
	"RemoveKeys":  true,
	"Add":         true,
	"UnionAll":    true,
}

// sources are the accessors whose results are snapshot-derived.
var sources = []struct{ pkg, recv, name string }{
	{"internal/relation", "Store", "Head"},
	{"internal/relation", "Snapshot", "Relation"},
	{"internal/relation", "Snapshot", "Rels"},
	{"internal/relation", "WriteSet", "Base"},
	{"internal/relation", "WriteSet", "Relation"},
	{"internal/relation", "WriteSet", "Rels"},
	{"internal/engine", "DB", "Relation"},
}

// fresheners return a new private relation; applying one launders the
// taint.
var fresheners = map[string]bool{
	"Clone":   true,
	"Dedup":   true,
	"Project": true,
	"Rename":  true,
}

func run(pass *analysis.Pass) (any, error) {
	if arcvetutil.PkgIs(pass.Pkg, "internal/relation") {
		return nil, nil // the store's own implementation package
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := arcvetutil.NewSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		w := &walker{pass: pass, sup: sup, taint: map[types.Object]bool{}}
		w.stmts(fd.Body)
	})
	return nil, nil
}

// walker tracks, in source order, which local variables hold
// snapshot-derived relations (or maps of them).
type walker struct {
	pass  *analysis.Pass
	sup   *arcvetutil.Suppressor
	taint map[types.Object]bool
}

// stmts walks statements in order, updating taint and checking calls.
// Function literals are walked inline with the enclosing taint state —
// closures capture the variables they mutate.
func (w *walker) stmts(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Check RHS calls first (a tainted receiver may be mutated in
			// the same statement that rebinds the variable).
			for _, rhs := range n.Rhs {
				w.checkExpr(rhs)
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.objOf(id); obj != nil {
							w.taint[obj] = w.derived(n.Rhs[i])
						}
					}
				}
			} else if len(n.Rhs) == 1 {
				// r, ok := m[k] style: taint every ident LHS if RHS derived.
				d := w.derived(n.Rhs[0])
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.objOf(id); obj != nil {
							w.taint[obj] = d && isRelationish(w.pass.TypesInfo.TypeOf(id))
						}
					}
				}
			}
			return false
		case *ast.ValueSpec:
			// var r = snap.Relation("x")
			for _, rhs := range n.Values {
				w.checkExpr(rhs)
			}
			if len(n.Names) == len(n.Values) {
				for i, id := range n.Names {
					if id.Name != "_" {
						if obj := w.objOf(id); obj != nil {
							w.taint[obj] = w.derived(n.Values[i])
						}
					}
				}
			}
			return false
		case *ast.RangeStmt:
			w.checkExpr(n.X)
			if w.derived(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := w.objOf(id); obj != nil {
						w.taint[obj] = true
					}
				}
			}
			w.stmts(n.Body)
			return false
		case ast.Expr:
			w.checkExpr(n)
			return false
		}
		return true
	})
}

// checkExpr reports mutating calls on derived receivers anywhere inside e.
func (w *walker) checkExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !mutators[sel.Sel.Name] {
			return true
		}
		fn := arcvetutil.Callee(w.pass.TypesInfo, call)
		if fn == nil || !arcvetutil.MethodOn(fn, "internal/relation", "Relation", sel.Sel.Name) {
			return true
		}
		if w.derived(sel.X) {
			w.sup.Report(call.Pos(), "%s mutates a relation reached from a committed snapshot; snapshots are immutable once published — write through a WriteSet (Insert/Delete/Put) instead", sel.Sel.Name)
		}
		return true
	})
}

// derived reports whether e evaluates to a snapshot-derived relation (or
// snapshot/relation-map, which index and range taint-propagate from).
func (w *walker) derived(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.objOf(e)
		return obj != nil && w.taint[obj]
	case *ast.ParenExpr:
		return w.derived(e.X)
	case *ast.IndexExpr:
		return w.derived(e.X)
	case *ast.UnaryExpr:
		return w.derived(e.X)
	case *ast.CallExpr:
		if fn := arcvetutil.Callee(w.pass.TypesInfo, e); fn != nil {
			for _, s := range sources {
				if arcvetutil.MethodOn(fn, s.pkg, s.recv, s.name) {
					return true
				}
			}
			if fresheners[fn.Name()] && arcvetutil.MethodOn(fn, "internal/relation", "Relation", fn.Name()) {
				return false
			}
		}
		// A method chained off a derived receiver that returns a relation
		// view stays derived unless it freshens.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && w.derived(sel.X) {
			return isRelationish(w.pass.TypesInfo.TypeOf(e))
		}
		return false
	case *ast.SelectorExpr:
		// Plain field reads: not tracked across struct fields.
		return false
	}
	return false
}

func (w *walker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// isRelationish reports whether t is *relation.Relation, a Snapshot, a
// WriteSet, or a map/slice of them — the types taint flows through.
func isRelationish(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Pointer:
		return isRelationish(t.Elem())
	case *types.Map:
		return isRelationish(t.Elem())
	case *types.Slice:
		return isRelationish(t.Elem())
	case *types.Named:
		obj := t.Obj()
		switch obj.Name() {
		case "Relation", "Snapshot", "WriteSet":
			return arcvetutil.PkgIs(obj.Pkg(), "internal/relation")
		}
	}
	return false
}

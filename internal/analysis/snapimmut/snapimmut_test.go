package snapimmut_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/snapimmut"
)

func TestSnapimmut(t *testing.T) {
	atest.Run(t, "testdata", snapimmut.Analyzer, "repro/internal/app")
}

// TestExemptInRelationPkg checks the analyzer is silent inside
// internal/relation itself, which owns the cloning discipline.
func TestExemptInRelationPkg(t *testing.T) {
	diags, fset := atest.Diags(t, "testdata", snapimmut.Analyzer, "repro/internal/relation")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic inside internal/relation at %s: %s", fset.Position(d.Pos), d.Message)
	}
}

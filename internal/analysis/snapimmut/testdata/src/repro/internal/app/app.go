package app

import "repro/internal/relation"

func bad(st *relation.Store) {
	snap := st.Head()
	r := snap.Relation("edge")
	r.Insert(relation.Tuple{1})           // want "Insert mutates a relation reached from a committed snapshot"
	snap.Relation("node").InsertMult(nil) // want "InsertMult mutates a relation reached from a committed snapshot"
	for _, rel := range snap.Rels() {
		rel.RemoveKeys(nil) // want "RemoveKeys mutates a relation reached from a committed snapshot"
	}
	rels := snap.Rels()
	rels["edge"].Add(relation.Tuple{2}) // want "Add mutates a relation reached from a committed snapshot"
}

func declForm(st *relation.Store) {
	var r = st.Head().Relation("edge")
	r.Insert(nil) // want "Insert mutates a relation reached from a committed snapshot"
}

func writeSetViews(ws *relation.WriteSet) {
	base := ws.Base()
	base.Relation("edge").UnionAll(nil) // want "UnionAll mutates a relation reached from a committed snapshot"
	r := ws.Relation("edge")
	r.InsertOwned(nil) // want "InsertOwned mutates a relation reached from a committed snapshot"
}

func good(st *relation.Store) {
	snap := st.Head()
	fresh := snap.Relation("edge").Clone()
	fresh.Insert(relation.Tuple{1}) // cloned first: private copy
	own := &relation.Relation{}
	own.Insert(relation.Tuple{2}) // locally constructed
	ws := st.Begin()
	ws.Insert("edge", relation.Tuple{3}) // WriteSet.Insert is the sanctioned write path
	d := snap.Relation("edge").Dedup()
	d.UnionAll(own) // Dedup returns a fresh relation
}

func rebind(st *relation.Store) {
	r := st.Head().Relation("edge")
	r = r.Clone() // rebinding to a clone clears the taint
	r.Insert(relation.Tuple{1})
}

func suppressed(st *relation.Store) {
	r := st.Head().Relation("boot")
	//arcvet:ignore snapimmut fixture: single-writer bootstrap, nothing is serving yet
	r.Insert(relation.Tuple{1})
}

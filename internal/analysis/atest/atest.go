// Package atest runs an analyzer over fixture packages and checks its
// diagnostics against // want "regexp" comments — the subset of
// golang.org/x/tools/go/analysis/analysistest the arcvet suite needs,
// reimplemented over go/parser + go/types so it works without
// go/packages (which is not vendored) or network access.
//
// Fixtures live under <analyzer>/testdata/src/<importpath>/*.go.
// Import paths under the module prefix (repro/...) resolve to sibling
// fixture directories, so stubs of internal/relation etc. can carry
// the real import paths the analyzers match on; all other imports
// resolve from GOROOT source.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the fixture package at testdata/src/<pkgPath> with a
// (running its Requires first) and reports any mismatch between emitted
// diagnostics and // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	pkg, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	if err := runAnalyzer(a, l, pkg, &diags); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	checkWants(t, l.fset, pkg.files, diags)
}

// Diags analyzes the fixture package at testdata/src/<pkgPath> and
// returns the raw diagnostics with the FileSet that positions them,
// skipping // want matching. Tests use it for behavior that cannot be
// expressed as a want comment — e.g. a diagnostic reported at a
// suppression directive's own position.
func Diags(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	pkg, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	var diags []analysis.Diagnostic
	if err := runAnalyzer(a, l, pkg, &diags); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	return diags, l.fset
}

// pkgInfo is one typechecked fixture package.
type pkgInfo struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*pkgInfo
	std  types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		pkgs: map[string]*pkgInfo{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree + GOROOT.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// load parses and typechecks the fixture package at path.
func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pi := &pkgInfo{pkg: pkg, info: info, files: files}
	l.pkgs[path] = pi
	return pi, nil
}

// runAnalyzer runs a (and its Requires, transitively) over pkg,
// appending a's diagnostics to out.
func runAnalyzer(a *analysis.Analyzer, l *loader, pkg *pkgInfo, out *[]analysis.Diagnostic) error {
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer, collect bool) error
	run = func(a *analysis.Analyzer, collect bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   map[*analysis.Analyzer]any{},
			Report: func(d analysis.Diagnostic) {
				if collect {
					*out = append(*out, d)
				}
			},
			ReadFile: os.ReadFile,
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	return run(a, true)
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// checkWants matches diagnostics against // want "re" comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type want struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					text := strings.ReplaceAll(arg[1], `\"`, `"`)
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

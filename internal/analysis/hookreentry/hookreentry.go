// Package hookreentry flags store re-entry from commit hooks and
// barrier callbacks.
//
// # The invariant
//
// relation.Store serializes commits under one mutex. A CommitHook
// registered with SetCommitHook runs inside Commit (and Apply) while
// that mutex is held — the write-ahead ordering the durable storage
// backend depends on. Store.Barrier likewise runs its callback under
// the commit lock (its doc: "f must not call back into the store"). If
// either callback calls a lock-taking Store method — Commit, Apply, or
// Barrier — the goroutine blocks on a mutex it already holds and every
// writer in the process deadlocks behind it. Nothing in the type system
// prevents this; it only surfaces as a wedged server under write load.
//
// The analyzer resolves the callback passed to SetCommitHook/Barrier (a
// function literal or a same-package function) and walks every function
// in the same package statically reachable from it; any reachable call
// to (*Store).Commit, (*Store).Apply, or (*Store).Barrier is reported
// at the offending call site. Calls that cross a package boundary
// cannot be followed — keep hook plumbing inside one package, or
// suppress a verified-safe case with
//
//	//arcvet:ignore hookreentry <why this cannot run under the commit lock>
package hookreentry

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/arcvetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hookreentry",
	Doc:      "flags Store.Commit/Apply/Barrier calls reachable from a commit hook or barrier callback, which self-deadlock under the commit lock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// registrars are the Store methods whose function argument runs under
// the commit lock.
var registrars = map[string]bool{"SetCommitHook": true, "Barrier": true}

// reentrant are the Store methods that take the commit lock.
var reentrant = map[string]bool{"Commit": true, "Apply": true, "Barrier": true}

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := arcvetutil.NewSuppressor(pass)
	decls := arcvetutil.FuncDecls(pass)

	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		reg := n.(*ast.CallExpr)
		fn := arcvetutil.Callee(pass.TypesInfo, reg)
		if fn == nil || !registrars[fn.Name()] {
			return
		}
		if !arcvetutil.MethodOn(fn, "internal/relation", "Store", fn.Name()) {
			return
		}
		if len(reg.Args) != 1 {
			return
		}
		root, rootName := resolveCallback(pass, decls, reg.Args[0])
		if root == nil {
			return
		}
		regPos := pass.Fset.Position(reg.Pos())
		w := &arcvetutil.Walker{
			Info:  pass.TypesInfo,
			Decls: decls,
			OnCall: func(call *ast.CallExpr, path []*types.Func) {
				callee := arcvetutil.Callee(pass.TypesInfo, call)
				if callee == nil || !reentrant[callee.Name()] {
					return
				}
				if !arcvetutil.MethodOn(callee, "internal/relation", "Store", callee.Name()) {
					return
				}
				sup.Report(call.Pos(),
					"(*Store).%s is reachable from the %s %s registered at %s:%d%s; it runs under the commit lock and would self-deadlock",
					callee.Name(), fn.Name(), rootName, regPos.Filename, regPos.Line, pathString(path))
			},
		}
		w.Walk(root)
	})
	return nil, nil
}

// resolveCallback turns the registered argument into a walkable body: a
// function literal's body, or the declaration of a same-package named
// function / method value.
func resolveCallback(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, arg ast.Expr) (ast.Node, string) {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return arg.Body, "callback"
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[arg].(*types.Func); ok {
			if d, ok := decls[fn]; ok {
				return d.Body, fn.Name()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[arg.Sel].(*types.Func); ok {
			if d, ok := decls[fn]; ok {
				return d.Body, fn.Name()
			}
		}
	}
	return nil, ""
}

func pathString(path []*types.Func) string {
	if len(path) == 0 {
		return ""
	}
	s := " (via"
	for _, f := range path {
		s += " " + f.Name()
	}
	return s + ")"
}

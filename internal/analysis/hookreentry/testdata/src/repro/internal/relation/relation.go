// Package relation is a fixture stub: just enough surface for the
// arcvet analyzers to resolve the real method sets they match on.
package relation

import "errors"

var ErrConflict = errors.New("write conflict")

type Tuple []any

type Relation struct{ rows []Tuple }

func (r *Relation) Insert(t Tuple)               {}
func (r *Relation) InsertMult(ts []Tuple)        {}
func (r *Relation) InsertOwned(t Tuple)          {}
func (r *Relation) RemoveKeys(ks []Tuple)        {}
func (r *Relation) Add(t Tuple)                  {}
func (r *Relation) UnionAll(o *Relation)         {}
func (r *Relation) Clone() *Relation             { return &Relation{} }
func (r *Relation) Dedup() *Relation             { return r.Clone() }
func (r *Relation) Project(cols []int) *Relation { return r.Clone() }
func (r *Relation) Rename(n string) *Relation    { return r.Clone() }

type Snapshot struct{ rels map[string]*Relation }

func (s *Snapshot) Relation(name string) *Relation { return s.rels[name] }
func (s *Snapshot) Rels() map[string]*Relation     { return s.rels }

type CommitHook func(ver uint64)

type Store struct{ head *Snapshot }

func (st *Store) Head() *Snapshot                     { return st.head }
func (st *Store) SetCommitHook(h CommitHook)          {}
func (st *Store) Barrier(f func())                    { f() }
func (st *Store) Commit(ws *WriteSet) error           { return nil }
func (st *Store) Apply(f func(*WriteSet) error) error { return nil }
func (st *Store) Begin() *WriteSet                    { return &WriteSet{} }

type WriteSet struct{ base *Snapshot }

func (w *WriteSet) Base() *Snapshot                { return w.base }
func (w *WriteSet) Relation(name string) *Relation { return nil }
func (w *WriteSet) Rels() map[string]*Relation     { return nil }
func (w *WriteSet) Insert(name string, t Tuple)    {}

package storagex

import "repro/internal/relation"

func register(st *relation.Store) {
	// A commit hook that calls back into the store: self-deadlock.
	st.SetCommitHook(func(ver uint64) {
		st.Barrier(func() {}) // want "is reachable from the SetCommitHook callback"
	})

	// A barrier callback that commits: same deadlock, other registrar.
	st.Barrier(func() {
		_ = st.Commit(nil) // want "is reachable from the Barrier callback"
	})

	// Named hook functions are resolved and walked transitively.
	st.SetCommitHook(onCommit)

	// Safe callbacks read the store without taking the commit lock.
	st.SetCommitHook(func(ver uint64) {
		_ = st.Head()
	})
	st.Barrier(safeFlush)
}

func onCommit(ver uint64) {
	flushIndex()
}

func flushIndex() {
	st := &relation.Store{}
	_ = st.Apply(nil) // want "is reachable from the SetCommitHook onCommit"
}

func safeFlush() {
	st := &relation.Store{}
	_ = st.Head()
}

func suppressedHook(st *relation.Store) {
	st.SetCommitHook(func(ver uint64) {
		//arcvet:ignore hookreentry fixture: this branch only runs in recovery, before the store serves commits
		_ = st.Commit(nil)
	})
}

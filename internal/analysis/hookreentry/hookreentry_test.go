package hookreentry_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/hookreentry"
)

func TestHookreentry(t *testing.T) {
	atest.Run(t, "testdata", hookreentry.Analyzer, "repro/internal/storagex")
}

// Package arcvetutil is the shared machinery behind the arcvet analyzer
// suite: the //arcvet:ignore suppression protocol, package and method
// matching against the engine's real types, recover-guard detection, and
// the intra-package call-graph walker the reachability analyzers
// (hookreentry, boundaryguard) are built on.
package arcvetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// IgnorePrefix is the suppression directive marker. A diagnostic from
// analyzer NAME on line L is suppressed when line L (trailing comment)
// or line L-1 (own-line comment) carries
//
//	//arcvet:ignore NAME[,NAME...] <reason>
//
// The reason is mandatory: a directive without one does not suppress,
// and the named analyzer reports the malformed directive itself so the
// omission is visible instead of silently rotting.
const IgnorePrefix = "arcvet:ignore"

// directive is one parsed //arcvet:ignore comment.
type directive struct {
	line      int
	analyzers []string
	reason    string
	pos       token.Pos
}

// Suppressor filters one analyzer's diagnostics through the file's
// //arcvet:ignore directives. Build one per pass with NewSuppressor and
// route every report through Report.
type Suppressor struct {
	pass *analysis.Pass
	// byFile maps filename -> directives in that file.
	byFile map[string][]directive
	// reported tracks malformed directives already reported, by position.
	reported map[token.Pos]bool
}

// NewSuppressor indexes the pass's files for suppression directives.
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{pass: pass, byFile: map[string][]directive{}, reported: map[token.Pos]bool{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := s.pass.Fset.Position(c.Pos())
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], directive{
					line:      pos.Line,
					analyzers: strings.Split(name, ","),
					reason:    strings.TrimSpace(reason),
					pos:       c.Pos(),
				})
			}
		}
	}
	return s
}

// matches reports whether d names this suppressor's analyzer.
func (s *Suppressor) matches(d directive) bool {
	for _, a := range d.analyzers {
		if a == s.pass.Analyzer.Name {
			return true
		}
	}
	return false
}

// Report emits a diagnostic unless an //arcvet:ignore directive for this
// analyzer covers pos (same line or the line above). A matching
// directive with no reason does not suppress; it is itself reported.
func (s *Suppressor) Report(pos token.Pos, format string, args ...any) {
	p := s.pass.Fset.Position(pos)
	for _, d := range s.byFile[p.Filename] {
		if !s.matches(d) {
			continue
		}
		if d.line != p.Line && d.line != p.Line-1 {
			continue
		}
		if d.reason == "" {
			if !s.reported[d.pos] {
				s.reported[d.pos] = true
				s.pass.Reportf(d.pos, "arcvet:ignore directive needs a reason: //arcvet:ignore %s <why this is safe>", s.pass.Analyzer.Name)
			}
			continue // malformed: does not suppress
		}
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// PkgIs reports whether pkg's import path is, or ends with, one of the
// given suffixes on a path-segment boundary. A "_test" external-test
// suffix on the package path is ignored so x-test packages match their
// subject package.
func PkgIs(pkg *types.Package, suffixes ...string) bool {
	if pkg == nil {
		return false
	}
	return PathIs(pkg.Path(), suffixes...)
}

// PathIs is PkgIs over a raw import path.
func PathIs(path string, suffixes ...string) bool {
	path = strings.TrimSuffix(path, "_test")
	path = strings.TrimSuffix(path, ".test")
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Callee resolves the called function or method of a call expression,
// or nil for dynamic calls (function values, interface methods whose
// concrete method is unknown).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(info, call)
}

// MethodOn reports whether fn is a method named name on a (possibly
// pointer) named receiver type recv declared in a package matching
// pkgSuffix.
func MethodOn(fn *types.Func, pkgSuffix, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != recv {
		return false
	}
	return PkgIs(named.Obj().Pkg(), pkgSuffix)
}

// FuncDecls indexes the pass's syntax: every function and method
// declaration with a body, keyed by its types.Func object. The index is
// what lets the reachability analyzers walk same-package call chains.
func FuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// callsRecover reports whether body contains a direct call to the
// recover builtin.
func callsRecover(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// HasRecoverDefer reports whether fn's body installs a recover guard: a
// defer of a func literal that calls recover, or a defer of a
// same-package function whose body calls recover (the engine's
// `defer recoverTo(&err, op)` idiom).
func HasRecoverDefer(info *types.Info, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ds.Call.Fun.(type) {
		case *ast.FuncLit:
			if callsRecover(info, fun.Body) {
				found = true
			}
		default:
			if fn := Callee(info, ds.Call); fn != nil {
				if d, ok := decls[fn]; ok && callsRecover(info, d.Body) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// Walker performs a depth-first reachability walk over the intra-package
// static call graph, starting from a function body. It descends into
// same-package callees (including function literals in the visited
// bodies) and invokes OnCall for every call expression it passes. The
// walk cannot see across package boundaries — a callee in another
// package is reported to OnCall but never entered.
type Walker struct {
	Info  *types.Info
	Decls map[*types.Func]*ast.FuncDecl
	// StopAt, when non-nil, prunes the walk at functions for which it
	// returns true (boundaryguard stops at recover-guarded functions).
	StopAt func(fn *types.Func, decl *ast.FuncDecl) bool
	// OnCall observes every call expression reached; path is the chain of
	// named functions entered so far (empty while still inside the root).
	OnCall func(call *ast.CallExpr, path []*types.Func)

	visited map[*types.Func]bool
}

// Walk runs the walk from root (a function body or any statement tree).
func (w *Walker) Walk(root ast.Node) {
	if w.visited == nil {
		w.visited = map[*types.Func]bool{}
	}
	w.walk(root, nil)
}

func (w *Walker) walk(root ast.Node, path []*types.Func) {
	if len(path) > 64 {
		return // defensive: deep recursion chains add nothing
	}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.OnCall != nil {
			w.OnCall(call, path)
		}
		fn := Callee(w.Info, call)
		if fn == nil || w.visited[fn] {
			return true
		}
		decl, ok := w.Decls[fn]
		if !ok {
			return true // other package, or no body
		}
		w.visited[fn] = true
		if w.StopAt != nil && w.StopAt(fn, decl) {
			return true
		}
		w.walk(decl.Body, append(path[:len(path):len(path)], fn))
		return true
	})
}

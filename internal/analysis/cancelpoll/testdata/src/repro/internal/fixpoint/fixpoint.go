package fixpoint

type Rule struct{ Eval func() int }

type CTE struct {
	Step  func() int
	Base  func() int
	Check func() error
}

type Options struct{ Check func() error }

func run(rules []Rule, opt Options) {
	for _, r := range rules { // want "fixpoint round loop never polls Options.Check/CTE.Check"
		r.Eval()
	}
	for { // polls before each round: compliant
		if opt.Check() != nil {
			return
		}
		n := 0
		for _, r := range rules {
			n += r.Eval()
		}
		if n == 0 {
			return
		}
	}
}

func runCTE(c CTE) {
	total := c.Base()
	for { // want "fixpoint round loop never polls Options.Check/CTE.Check"
		d := c.Step()
		if d == 0 {
			break
		}
		total += d
	}
	for {
		if c.Check() != nil {
			return
		}
		if c.Step() == 0 {
			return
		}
	}
	_ = total
}

// Loops with no rule or term invocation are out of scope.
func spin(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

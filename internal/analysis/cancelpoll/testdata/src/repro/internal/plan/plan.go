package plan

import "repro/internal/exec"

type runCtx struct{ n int }

func (rc *runCtx) poll() error { return nil }

func drain(rc *runCtx, s exec.Seq) int {
	n := 0
	for v := range s { // want "row-pull loop over an exec.Seq never calls runCtx.poll"
		n += v
	}
	for v := range s { // polls in its own body: compliant
		if rc.poll() != nil {
			break
		}
		n += v
	}
	for i := 0; i < 3; i++ { // enclosing loop polls for the inner stream
		if rc.poll() != nil {
			break
		}
		for v := range s {
			n += v
		}
	}
	return n
}

// Polls inside a closure nested in the loop body still count: the
// closure runs on the same pull.
func drainViaClosure(rc *runCtx, s exec.Seq) {
	for v := range s {
		ok := func() bool { return rc.poll() == nil }()
		if !ok {
			break
		}
		_ = v
	}
}

// Loops that never touch a Seq are out of scope.
func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func drainSuppressed(s exec.Seq) int {
	n := 0
	//arcvet:ignore cancelpoll fixture: bounded three-row constant relation
	for v := range s {
		n += v
	}
	return n
}

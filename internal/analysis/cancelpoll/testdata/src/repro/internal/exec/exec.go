// Package exec is a fixture stub for the operator iterator type.
package exec

type Seq func(yield func(int) bool)

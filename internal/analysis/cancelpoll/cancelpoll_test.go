package cancelpoll_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/cancelpoll"
)

func TestPlanLoops(t *testing.T) {
	atest.Run(t, "testdata", cancelpoll.Analyzer, "repro/internal/plan")
}

func TestFixpointLoops(t *testing.T) {
	atest.Run(t, "testdata", cancelpoll.Analyzer, "repro/internal/fixpoint")
}

// TestOtherPkgSilent checks the analyzer ignores packages outside
// internal/plan and internal/fixpoint (exec operators are lazy Seqs
// driven by the plan layer's polled loop).
func TestOtherPkgSilent(t *testing.T) {
	diags, fset := atest.Diags(t, "testdata", cancelpoll.Analyzer, "repro/internal/exec")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside plan/fixpoint at %s: %s", fset.Position(d.Pos), d.Message)
	}
}

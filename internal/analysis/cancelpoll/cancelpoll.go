// Package cancelpoll flags row-pull and fixpoint-round loops with no
// cancellation poll.
//
// # The invariant
//
// A prepared statement's context must be able to stop it: the engine's
// contract (PR 4) is that operator pull loops poll runCtx.poll (which
// rate-limits the real ctx.Err check to every 64 rows) and fixpoint
// round loops poll Options.Check / CTE.Check before every round. A loop
// that pulls rows or runs rounds without a poll site turns a cancelled
// query — or a hostile unbounded recursion — into a goroutine the
// server cannot reclaim until the loop happens to finish, defeating
// graceful shutdown and per-query timeouts.
//
// Mechanically, in internal/plan: every `for … range` over an exec.Seq
// must call .poll() in its body or in an enclosing loop's body. In
// internal/fixpoint: every loop that invokes a rule or term callback (a
// func-typed field named Eval, Step, or Base) must call .Check in its
// body or an enclosing loop's body. internal/exec's operators are
// intentionally out of scope: they are lazy sequences driven by the
// plan layer, whose guard loop carries the poll for the whole pipeline
// (and the engine Rows cursor polls once per pulled row at the API
// boundary).
//
// A loop that is provably bounded and tiny can be suppressed with
//
//	//arcvet:ignore cancelpoll <why this loop is O(small) and bounded>
package cancelpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/arcvetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "cancelpoll",
	Doc:      "flags row-pull loops (plan) and fixpoint round loops that never poll runCtx.poll / Options.Check for cancellation",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	isPlan := arcvetutil.PkgIs(pass.Pkg, "internal/plan")
	isFixpoint := arcvetutil.PkgIs(pass.Pkg, "internal/fixpoint")
	if !isPlan && !isFixpoint {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := arcvetutil.NewSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if file := pass.Fset.Position(fd.Pos()).Filename; strings.HasSuffix(file, "_test.go") {
			return
		}
		c := &checker{pass: pass, sup: sup, isPlan: isPlan, isFixpoint: isFixpoint}
		c.walk(fd.Body, false)
	})
	return nil, nil
}

type checker struct {
	pass       *analysis.Pass
	sup        *arcvetutil.Suppressor
	isPlan     bool
	isFixpoint bool
}

// walk descends fn bodies tracking whether any enclosing loop already
// polls; each loop is checked where it appears.
func (c *checker) walk(n ast.Node, polledAbove bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			c.loop(n, n.Body, polledAbove)
			return false
		case *ast.RangeStmt:
			c.loop(n, n.Body, polledAbove)
			return false
		}
		return true
	})
}

// loop checks one loop and recurses into its body.
func (c *checker) loop(stmt ast.Node, body *ast.BlockStmt, polledAbove bool) {
	polled := polledAbove || c.bodyPolls(body)
	if !polled {
		if rng, ok := stmt.(*ast.RangeStmt); ok && c.isPlan && c.isSeqRange(rng) {
			c.sup.Report(stmt.Pos(), "row-pull loop over an exec.Seq never calls runCtx.poll; a cancelled context cannot stop this stream — poll in the loop body")
		}
		if c.isFixpoint && c.invokesRoundCallback(body) {
			c.sup.Report(stmt.Pos(), "fixpoint round loop never polls Options.Check/CTE.Check; cancellation cannot stop the iteration — check before each round")
		}
	}
	c.walk(body, polled)
}

// bodyPolls reports whether body contains a poll site: a call to a
// method named poll, or an invocation of a field named Check. Calls
// inside nested function literals count — the emit callbacks close over
// the same execution.
func (c *checker) bodyPolls(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "poll" || sel.Sel.Name == "Check" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSeqRange reports whether rng ranges over a value of the exec.Seq
// iterator type.
func (c *checker) isSeqRange(rng *ast.RangeStmt) bool {
	t := c.pass.TypesInfo.TypeOf(rng.X)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Seq" && arcvetutil.PkgIs(named.Obj().Pkg(), "internal/exec")
}

// invokesRoundCallback reports whether body directly invokes a
// func-typed field named Eval, Step, or Base — a rule or recursive-term
// evaluation, i.e. one round's worth of work.
func (c *checker) invokesRoundCallback(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Do not attribute a nested loop's callbacks to this loop; the
		// nested loop is checked on its own.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n != ast.Node(body) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Eval", "Step", "Base":
		default:
			return true
		}
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if _, isSig := s.Type().Underlying().(*types.Signature); isSig {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package boundaryguard_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/boundaryguard"
)

func TestEngineBoundary(t *testing.T) {
	atest.Run(t, "testdata", boundaryguard.Analyzer, "repro/internal/engine")
}

func TestServerBoundary(t *testing.T) {
	atest.Run(t, "testdata", boundaryguard.Analyzer, "repro/internal/server")
}

// TestOffBoundaryPkgSilent checks the analyzer does not fire outside the
// two boundary packages even when parsers are called bare.
func TestOffBoundaryPkgSilent(t *testing.T) {
	diags, fset := atest.Diags(t, "testdata", boundaryguard.Analyzer, "repro/internal/sql")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside boundary packages at %s: %s", fset.Position(d.Pos), d.Message)
	}
}

// Package sql is a fixture stub for the parser boundary.
package sql

func Parse(q string) error { return nil }

func ParseStatement(q string) error { return nil }

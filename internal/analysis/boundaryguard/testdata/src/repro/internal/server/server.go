package server

type Frame struct{ op byte }

func ReadFrame(b []byte) (Frame, error) { return Frame{}, nil }

type Conn struct{}

func (c *Conn) handleQuery(f Frame) error { return nil }

// Unguarded frame decode on the wire path.
func (c *Conn) Serve(b []byte) error { // want "exported server entry point Serve reaches server.ReadFrame"
	f, err := ReadFrame(b)
	if err != nil {
		return err
	}
	return c.handleQuery(f)
}

// The per-connection recover guard makes the same path compliant.
func (c *Conn) ServeGuarded(b []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	f, rerr := ReadFrame(b)
	if rerr != nil {
		return rerr
	}
	return c.handleQuery(f)
}

// Reaching a handle* dispatcher without decoding a frame is still an
// unguarded boundary crossing.
func (c *Conn) Dispatch(f Frame) error { // want "exported server entry point Dispatch reaches server.handleQuery"
	return c.handleQuery(f)
}

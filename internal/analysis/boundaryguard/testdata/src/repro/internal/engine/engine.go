package engine

import "repro/internal/sql"

type DB struct{}

// Unguarded entry point reaching the parser directly.
func (db *DB) Prepare(q string) error { // want "exported engine entry point Prepare reaches sql.Parse"
	return sql.Parse(q)
}

// Guarded with an inline recover literal: compliant.
func (db *DB) Query(q string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	return sql.Parse(q)
}

// Guarded via the recoverTo idiom (defer of a same-package function
// whose body calls recover): compliant.
func (db *DB) Exec(q string) (err error) {
	defer recoverTo(&err)
	return parse(q)
}

func recoverTo(errp *error) {
	if r := recover(); r != nil {
		*errp = nil
	}
}

// Transitive: exported entry -> unexported helper -> parser.
func (db *DB) Analyze(q string) error { // want "exported engine entry point Analyze reaches sql.ParseStatement"
	return parse(q)
}

func parse(q string) error { return sql.ParseStatement(q) }

// The Rows pull: invoking the next iterator field resumes the operator
// tree, where hostile-input panics surface.
type Rows struct{ next func() bool }

func (r *Rows) Next() bool { // want "exported engine entry point Next reaches the Rows iterator pull"
	return r.next()
}

// Pulling behind a guard is compliant.
func (r *Rows) SafeNext() (ok bool) {
	defer func() { recover() }()
	return r.next()
}

// Methods on unexported receivers are not entry points.
type conn struct{}

func (c *conn) Handle(q string) error { return sql.Parse(q) }

// Exported functions that never reach a danger are compliant.
func Version() string { return "v0" }

// Suppression with a reason.
//
//arcvet:ignore boundaryguard fixture: input is a compile-time constant, not client data
func (db *DB) Bootstrap() error {
	return sql.Parse("create table boot(x int)")
}

// Package boundaryguard flags unguarded untrusted-input entry points at
// the engine and server boundary.
//
// # The invariant
//
// Every byte a client sends eventually flows into a parser, a planner,
// or an operator tree. Those layers return errors for the malformed
// inputs they anticipate; for the ones they don't — a grammar bug, an
// out-of-range index on a hostile frame — the engine's contract is that
// a deferred recover at the API boundary converts the panic into
// *engine.PanicError (or the server's per-connection recover logs it),
// so hostile traffic costs one statement or one connection, never the
// process. A single missed guard re-opens the
// crash-the-server-with-one-query hole the PR-5 hardening closed.
//
// The analyzer checks the two boundary packages (internal/engine,
// internal/server). For every exported function or method it walks the
// same-package static call graph; the walk is pruned at any function
// that installs a recover guard (defer of a recover-calling literal, or
// of a same-package function like recoverTo whose body calls recover).
// If the walk reaches a dangerous call — parsing (sql/arc/datalog/trc
// Parse*), plan compilation or execution (plan.Compile/Stream*/
// Execute*), evaluator entry (sqleval/eval/datalog Eval*), frame
// handling (server ReadFrame / handle*), or the engine Rows pull (an
// invocation of the `next` iterator field) — the entry point is
// reported: a panic raised inside that call would escape the process
// boundary unguarded.
//
// An entry point that is genuinely panic-free by construction can be
// suppressed with
//
//	//arcvet:ignore boundaryguard <why no untrusted input reaches this path>
package boundaryguard

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/arcvetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "boundaryguard",
	Doc:      "flags exported engine/server entry points that reach plan execution or frame decoding without a deferred recover-to-PanicError guard",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// boundaryPkgs are the packages whose exported surface faces untrusted
// input.
var boundaryPkgs = []string{"internal/engine", "internal/server"}

// dangerSpec matches calls that can panic on hostile input: functions
// with the given name (or prefix) in a package matching the suffix.
type dangerSpec struct {
	pkg    string
	prefix string
	exact  bool
}

var dangers = []dangerSpec{
	{pkg: "internal/sql", prefix: "Parse"},
	{pkg: "internal/arc", prefix: "Parse"},
	{pkg: "internal/datalog", prefix: "Parse"},
	{pkg: "internal/datalog", prefix: "Eval"},
	{pkg: "internal/trc", prefix: "Parse"},
	{pkg: "internal/plan", prefix: "Compile"},
	{pkg: "internal/plan", prefix: "Stream"},
	{pkg: "internal/plan", prefix: "Execute"},
	{pkg: "internal/sqleval", prefix: "Eval"},
	{pkg: "internal/eval", prefix: "Eval"},
	{pkg: "internal/server", prefix: "handle"},
	{pkg: "internal/server", prefix: "ReadFrame", exact: true},
}

func run(pass *analysis.Pass) (any, error) {
	if !arcvetutil.PkgIs(pass.Pkg, boundaryPkgs...) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := arcvetutil.NewSuppressor(pass)
	decls := arcvetutil.FuncDecls(pass)

	guarded := func(fn *types.Func, decl *ast.FuncDecl) bool {
		return arcvetutil.HasRecoverDefer(pass.TypesInfo, decls, decl.Body)
	}

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !fd.Name.IsExported() {
			return
		}
		// Test files declare exported helpers and Test/Benchmark functions
		// that legitimately call parsers bare; the contract covers the
		// production surface only.
		if file := pass.Fset.Position(fd.Pos()).Filename; strings.HasSuffix(file, "_test.go") {
			return
		}
		if !receiverExported(fd) {
			return // not reachable from outside the package
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		if guarded(fn, fd) {
			return
		}
		var firstDanger string
		var firstPath []*types.Func
		w := &arcvetutil.Walker{
			Info:   pass.TypesInfo,
			Decls:  decls,
			StopAt: guarded,
			OnCall: func(call *ast.CallExpr, path []*types.Func) {
				if firstDanger != "" {
					return
				}
				if d := dangerCall(pass, call); d != "" {
					firstDanger = d
					firstPath = path
				}
			},
		}
		w.Walk(fd.Body)
		if firstDanger != "" {
			sup.Report(fd.Name.Pos(),
				"exported %s entry point %s reaches %s%s with no deferred recover guard on the way; a panic on hostile input would kill the process — defer recoverTo(&err, ...) at the boundary",
				pass.Pkg.Name(), fn.Name(), firstDanger, pathString(firstPath))
		}
	})
	return nil, nil
}

// receiverExported reports whether fd is a plain function or a method
// on an exported (base) type — i.e. callable from outside the package.
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// dangerCall classifies a call as dangerous, returning a description or
// "".
func dangerCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := arcvetutil.Callee(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil {
		for _, d := range dangers {
			if !arcvetutil.PkgIs(fn.Pkg(), d.pkg) {
				continue
			}
			if d.exact && fn.Name() == d.prefix ||
				!d.exact && strings.HasPrefix(fn.Name(), d.prefix) {
				return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
			}
		}
		return ""
	}
	// The engine Rows pull: invoking the `next` iterator field resumes
	// the operator coroutine, where a hostile-input panic surfaces.
	if arcvetutil.PkgIs(pass.Pkg, "internal/engine") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "next" {
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if _, isSig := s.Type().Underlying().(*types.Signature); isSig {
					return "the Rows iterator pull (next field)"
				}
			}
		}
	}
	return ""
}

func pathString(path []*types.Func) string {
	if len(path) == 0 {
		return ""
	}
	names := make([]string, len(path))
	for i, f := range path {
		names[i] = f.Name()
	}
	return " (via " + strings.Join(names, " → ") + ")"
}

package experiments

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/relpat"
	"repro/internal/sql2arc"
	"repro/internal/value"
	"repro/internal/workload"
)

func init() {
	register("E09", e09)
	register("E10", e10)
	register("E11", e11)
	register("E12", e12)
	register("E13", e13)
	register("E14", e14)
	register("E15", e15)
	register("E16", e16)
}

// e09 — Fig 10 / (16): ARC recursion with named LFP semantics agrees with
// the Datalog two-rule program and with its ARC translation.
func e09() Report {
	const claim = "recursive definition (16) ≡ Datalog ancestor (LFP), also via Datalog→ARC translation"
	rep := Report{Figure: "Fig 10 / (16)", Title: "Recursion", PaperClaim: claim}
	prog := datalog.MustParse(datalogAncestor)
	schemas := map[string][]string{"P": {"s", "t"}, "A": {"s", "t"}}
	translated, err := datalog.ToARC(prog, schemas, "A")
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	allOK := true
	detail := ""
	for name, p := range map[string]*relation.Relation{
		"chain":  workload.Chain(15),
		"random": workload.RandomParent(workload.Rand(909), 20, 30),
		"cycle":  relation.New("P", "s", "t").Add(1, 2).Add(2, 3).Add(3, 1),
	} {
		dl, err := datalog.EvalPredicate(prog, datalog.EDB{"P": p}, "A")
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		arcRes, err := evalARC(q16(), convention.SetLogic(), p)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		trRes, err := evalARC(translated, convention.Souffle(), p)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		ok := arcRes.EqualSet(dl) && trRes.EqualSet(dl)
		allOK = allOK && ok
		detail += fmt.Sprintf("%s: |A|=%d agree=%v; ", name, dl.Card(), ok)
	}
	rep.Pass = allOK
	rep.Measured = detail
	return rep
}

// e10 — Fig 11 / (17): SQL NOT IN three-valued behaviour. Any NULL in S
// empties the result; the NOT EXISTS rewrite and the ARC encoding agree.
func e10() Report {
	const claim = "NOT IN (11a) ≡ NOT EXISTS rewrite (11b) ≡ ARC (17); a NULL in S empties the result"
	rep := Report{Figure: "Fig 11 / (17)", Title: "NOT IN under NULLs", PaperClaim: claim}
	rng := workload.Rand(1010)
	allOK := true
	emptied := false
	for trial := 0; trial < 10; trial++ {
		nullRate := 0.0
		if trial%2 == 1 {
			nullRate = 0.2
		}
		r := workload.RandomUnary(rng, "R", "A", 20, 15, 0)
		s := workload.RandomUnary(rng, "S", "A", 10, 15, nullRate)
		a, err := evalSQL(sqlFig11a, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		b, err := evalSQL(sqlFig11b, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		c, err := evalARC(q17(), convention.SQL(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		tr, err := sql2arc.TranslateString(sqlFig11a)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		d, err := evalARC(tr, convention.SQL(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		ok := a.EqualBag(b) && a.EqualBag(c) && a.EqualBag(d)
		allOK = allOK && ok
		hasNull := false
		s.Each(func(t relation.Tuple, _ int) {
			if t[0].IsNull() {
				hasNull = true
			}
		})
		if hasNull {
			emptied = emptied || a.Card() == 0
			allOK = allOK && a.Card() == 0
		}
	}
	rep.Pass = allOK && emptied
	rep.Measured = fmt.Sprintf("10 trials, all four formulations agree=%v, NULL-in-S empties result=%v", allOK, emptied)
	return rep
}

// e11 — Fig 12 / (18): the join annotation left(r, inner(11, s)) matches
// SQL's LEFT OUTER JOIN with the complicated ON condition.
func e11() Report {
	const claim = "join annotation (18) ≡ SQL LEFT OUTER JOIN ON (R.h=11 AND R.y=S.y)"
	rep := Report{Figure: "Fig 12 / (18)", Title: "Outer join annotations", PaperClaim: claim}
	rng := workload.Rand(1111)
	allOK := true
	rows := 0
	for trial := 0; trial < 8; trial++ {
		r := relation.New("R", "m", "y", "h")
		for i := 0; i < 15; i++ {
			h := 11
			if rng.Intn(3) == 0 {
				h = 99
			}
			r.Add(fmt.Sprintf("m%d", i), rng.Intn(6), h)
		}
		s := relation.New("S", "y", "n", "q")
		for i := 0; i < 8; i++ {
			s.Add(rng.Intn(6), fmt.Sprintf("n%d", i), 0)
		}
		arcRes, err := evalARC(q18(), convention.SQL(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		sqlRes, err := evalSQL(sqlFig12, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		allOK = allOK && arcRes.EqualBag(sqlRes)
		rows += arcRes.Card()
	}
	rep.Pass = allOK
	rep.Measured = fmt.Sprintf("8 random instances, bag-equal=%v (%d total rows)", allOK, rows)
	return rep
}

// e12 — Fig 13: scalar ≡ lateral under bags even with duplicate outer
// tuples; the LEFT JOIN + GROUP BY rewrite collapses duplicates (the
// paper's counterexample), found automatically.
func e12() Report {
	const claim = "scalar (13a) ≡ lateral (13b) under bags; LEFT JOIN+GROUP BY (13c) differs when R has duplicates"
	rep := Report{Figure: "Fig 13", Title: "Scalar subqueries as lateral joins", PaperClaim: claim}
	rng := workload.Rand(1212)
	scalarEqLateral := true
	counterexample := false
	for trial := 0; trial < 10; trial++ {
		r := workload.RandomUnary(rng, "R", "A", 8, 4, 0) // small domain → duplicates
		s := workload.RandomBinary(rng, "S", "A", "B", 6, 4, 9)
		a, err := evalSQL(sqlFig13a, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		b, err := evalSQL(sqlFig13b, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		c, err := evalSQL(sqlFig13c, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		scalarEqLateral = scalarEqLateral && a.EqualBag(b)
		if r.Card() != r.Distinct() && !a.EqualBag(c) {
			counterexample = true
		}
	}
	// The ARC representation (13d) is the lateral form.
	tr, err := sql2arc.TranslateString(sqlFig13a)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	foi, _ := pattern.ClassifyAggregation(tr)
	rep.Pass = scalarEqLateral && counterexample && foi == pattern.FOI
	rep.Measured = fmt.Sprintf("scalar≡lateral under bags=%v; LEFT JOIN counterexample found=%v; (13a) translates to FOI lateral=%v",
		scalarEqLateral, counterexample, foi == pattern.FOI)
	return rep
}

// e13 — Fig 15 / (19)–(21): relationalized arithmetic. The direct form,
// the Minus-reified form, and the Minus+Bigger equijoin form agree; the
// externals run through access patterns.
func e13() Report {
	const claim = "direct arithmetic (19) ≡ Minus-reified (20) ≡ Minus⋈Bigger (21)"
	rep := Report{Figure: "Fig 15 / (19)–(21)", Title: "External relations", PaperClaim: claim}
	rng := workload.Rand(1313)
	allOK := true
	rows := 0
	for trial := 0; trial < 6; trial++ {
		r := workload.RandomBinary(rng, "R", "A", "B", 12, 30, 20)
		s := workload.RandomBinary(rng, "S", "Z", "B", 6, 5, 10).Project("B")
		t := workload.RandomBinary(rng, "T", "Z", "B", 6, 5, 10).Project("B")
		a, err := evalARC(q19(), convention.SetLogic(), r, s, t)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		b, err := evalARC(q20(), convention.SetLogic(), r, s, t)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		c, err := evalARC(q21(), convention.SetLogic(), r, s, t)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		sqlRes, err := evalSQL(sqlFig15a, r, s, t)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		ok := a.EqualSet(b) && a.EqualSet(c) && a.EqualSet(sqlRes.Dedup())
		allOK = allOK && ok
		rows += a.Card()
	}
	rep.Pass = allOK
	rep.Measured = fmt.Sprintf("6 random instances, all four formulations equal=%v (%d total rows)", allOK, rows)
	return rep
}

// sqlFig18 materializes the safely defined Subset view (Fig 18; our SQL
// subset has no INTO, so the harness renames the result to "Subset").
const sqlFig18 = `select distinct D1.drinker as left, D2.drinker as right
	from Likes D1, Likes D2
	where not exists
	  (select 1 from Likes L3
	   where not exists
	     (select 1 from Likes L4
	      where L4.beer = L3.beer and D2.drinker = L4.drinker)
	   and D1.drinker = L3.drinker)`

// sqlFig19 is the unique-set query rewritten over the Subset view.
const sqlFig19 = `select distinct L1.drinker from Likes L1
	where not exists
	  (select 1 from Likes L2, Subset S1, Subset S2
	   where L1.drinker <> L2.drinker
	   and S1.left = L1.drinker and S1.right = L2.drinker
	   and S2.left = L2.drinker and S2.right = L1.drinker)`

// e14 — Figs 16–19 / (22)–(24): the unique-set query equals its
// modularization through the abstract Subset relation, the SQL original
// (Fig 17), and the safe-view formulation (Figs 18+19).
func e14() Report {
	const claim = "unique-set (22) ≡ abstract-relation form (24) ≡ SQL Fig 17 ≡ safe-view form Figs 18+19, also on random instances"
	rep := Report{Figure: "Figs 16–19 / (22)–(24)", Title: "Abstract relations", PaperClaim: claim}
	rng := workload.Rand(1414)
	allOK := true
	for trial := 0; trial < 5; trial++ {
		var likes *relation.Relation
		if trial == 0 {
			likes = workload.Beers()
		} else {
			likes = workload.LikesRandom(rng, 5, 3)
		}
		l := likes.Rename("L", []string{"d", "b"})
		cat := eval.NewCatalog().AddRelation(l)
		if err := cat.DefineAbstract(relpat.SubsetAbstract()); err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		direct, err := eval.Eval(relpat.UniqueSet(), cat, convention.SetLogic())
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		modular, err := eval.Eval(relpat.UniqueSetModular(), cat, convention.SetLogic())
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		sqlRes, err := evalSQL(sqlFig17, likes)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		// Figs 18+19: materialize the safe Subset view, then query it.
		subset, err := evalSQL(sqlFig18, likes)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		viaView, err := evalSQL(sqlFig19, likes, subset.Rename("Subset", nil))
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		allOK = allOK && direct.EqualSet(modular) && direct.EqualSet(sqlRes) && direct.EqualSet(viaView)
	}
	rep.Pass = allOK
	rep.Measured = fmt.Sprintf("beers + 4 random instances: (22)≡(24)≡Fig 17≡Figs 18+19 = %v", allOK)
	return rep
}

// e15 — Fig 20 / (25),(26): matrix multiplication in ARC (both with
// arithmetic and with the reified "*" external) matches a direct sparse
// matmul baseline.
func e15() Report {
	const claim = "ARC matrix multiplication (26) ≡ reified-external form (Fig 20) ≡ direct sparse matmul"
	rep := Report{Figure: "Fig 20 / (25),(26)", Title: "Matrix multiplication", PaperClaim: claim}
	rng := workload.Rand(1515)
	allOK := true
	entries := 0
	for _, n := range []int{4, 8} {
		a := workload.SparseMatrix(rng, "A", n, 0.4)
		b := workload.SparseMatrix(rng, "B", n, 0.4)
		want := workload.MatMulReference(a, b)
		direct, err := evalARC(relpat.MatMul(), convention.SetLogic(), a, b)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		reified, err := evalARC(relpat.MatMulExternal(), convention.SetLogic(), a, b)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		allOK = allOK && direct.EqualSet(want) && reified.EqualSet(want)
		entries += want.Card()
	}
	rep.Pass = allOK
	rep.Measured = fmt.Sprintf("4×4 and 8×8 sparse: both ARC forms ≡ baseline = %v (%d entries)", allOK, entries)
	return rep
}

// e16 — Fig 21 / (27)–(29): the COUNT bug. On R(9,0), S=∅ version 1
// returns {9}, version 2 ∅, version 3 {9}; property-tested v1≡v3 and the
// lint flags exactly version 2.
func e16() Report {
	const claim = "on R(9,0),S=∅: v1→{9}, v2→∅, v3→{9}; v1≡v3 on random instances; lint flags only v2"
	rep := Report{Figure: "Fig 21 / (27)–(29)", Title: "The COUNT bug", PaperClaim: claim}
	r, s := workload.CountBugInstance()
	v1, err := evalARC(countBugV1(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	v2, err := evalARC(countBugV2(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	v3, err := evalARC(countBugV3(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	nine := relation.Tuple{value.Int(9)}
	paperOK := v1.Card() == 1 && v1.Contains(nine) && v2.Card() == 0 && v3.EqualSet(v1)
	// SQL engine agrees on all three figures.
	s1, _ := evalSQL(sqlFig21a, r, s)
	s2, _ := evalSQL(sqlFig21b, r, s)
	s3, _ := evalSQL(sqlFig21c, r, s)
	sqlOK := s1.EqualSet(v1) && s2.EqualSet(v2) && s3.EqualSet(v3)
	// Property: v1 ≡ v3 on random instances; v2 loses empty-group ids.
	rng := workload.Rand(1616)
	propOK, v2Lost := true, false
	for trial := 0; trial < 8; trial++ {
		rr, ss := workload.CountBugRandom(rng, 12, 3)
		a, err := evalARC(countBugV1(), convention.SQLDistinct(), rr, ss)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		b, err := evalARC(countBugV2(), convention.SQLDistinct(), rr, ss)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		c, err := evalARC(countBugV3(), convention.SQLDistinct(), rr, ss)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		propOK = propOK && a.EqualSet(c)
		if !b.EqualSet(a) {
			v2Lost = true
		}
	}
	// The lint flags version 2 and only version 2.
	f1, _ := pattern.LintCountBug(countBugV1())
	f2, _ := pattern.LintCountBug(countBugV2())
	f3, _ := pattern.LintCountBug(countBugV3())
	lintOK := len(f1) == 0 && len(f2) == 1 && len(f3) == 0
	rep.Pass = paperOK && sqlOK && propOK && v2Lost && lintOK
	rep.Measured = fmt.Sprintf("paper instance v1={9}:%v v2=∅:%v v3≡v1:%v; SQL agrees=%v; random v1≡v3=%v, v2 lost rows=%v; lint flags only v2=%v",
		v1.Contains(nine), v2.Card() == 0, v3.EqualSet(v1), sqlOK, propOK, v2Lost, lintOK)
	return rep
}

var _ = alt.PrintTree

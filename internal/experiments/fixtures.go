package experiments

import (
	"repro/internal/alt"
	"repro/internal/arc"
)

// The paper's numbered queries as ARC comprehension text, parsed through
// the textual modality (so the fixtures also exercise the parser).

// q1 is query (1).
func q1() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
}

// q2 is query (2): nested comprehension (lateral pattern, Fig 3).
func q2() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A, B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y [Z.B = y.A ∧ x.A < y.A]} [Q.A = x.A ∧ Q.B = z.B]}")
}

// q3 is query (3): FIO grouped aggregate (Fig 4).
func q3() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
}

// q7 is query (7): FOI pattern (Fig 5c).
func q7() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}")
}

// s13 is sentence (13); s14 is sentence (14).
func s13() *alt.Sentence {
	s, err := arc.ParseSentence("∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]")
	if err != nil {
		panic(err)
	}
	return s
}

func s14() *alt.Sentence {
	s, err := arc.ParseSentence("¬(∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q > count(s.d)]])")
	if err != nil {
		panic(err)
	}
	return s
}

// q16 is query (16): recursion (Fig 10).
func q16() *alt.Collection {
	return arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
}

// q17 is query (17): NOT IN with explicit null checks (Fig 11).
func q17() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}")
}

// q18 is query (18): outer join with a constant join leaf (Fig 12).
func q18() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s)) [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = c.val]}")
}

// q19/q20/q21 are the external-relation variants of Fig 15.
func q19() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T [Q.A = r.A ∧ r.B - s.B > t.B]}")
}

func q20() *alt.Collection {
	return arc.MustParseCollection(
		`{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus [Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}`)
}

func q21() *alt.Collection {
	return arc.MustParseCollection(
		`{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus, g ∈ Bigger [Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out = g.left ∧ g.right = t.B]}`)
}

// countBugV1/V2/V3 are queries (27)/(28)/(29) (Fig 21).
func countBugV1() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(id) | ∃r ∈ R [Q.id = r.id ∧ ∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q = count(s.d)]]}")
}

func countBugV2() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(id) | ∃r ∈ R, x ∈ {X(id, ct) | ∃s ∈ S, γ s.id [X.id = s.id ∧ X.ct = count(s.d)]} [Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}")
}

func countBugV3() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(id) | ∃r ∈ R, x ∈ {X(id, ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s) [X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]} [Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}")
}

// q15Souffle is the Soufflé rule (15) as ARC (FOI with correlated γ∅).
func q15ARC() *alt.Collection {
	return arc.MustParseCollection(
		"{Q(ak, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅ [s.a < r.ak ∧ X.sm = sum(s.b)]} [Q.ak = r.ak ∧ Q.sm = x.sm]}")
}

// SQL texts of the corresponding figures.
const (
	sqlFig2   = "select R.A from R, S where R.B = S.B and S.C = 0"
	sqlFig3   = "select x.A, z.B from X as x join lateral (select y.A as B from Y as y where x.A < y.A) as z on true"
	sqlFig4   = "select R.A, sum(R.B) sm from R group by R.A"
	sqlFig5a  = "select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) from R"
	sqlFig5b  = "select distinct R.A, X.sm from R join lateral (select sum(R2.B) sm from R R2 where R2.A = R.A) X on true"
	sqlFig6   = "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl group by R.dept having sum(S.sal) > 100"
	sqlFig11a = "select R.A from R where R.A not in (select S.A from S)"
	sqlFig11b = "select R.A from R where not exists (select 1 from S where S.A = R.A or S.A is null or R.A is null)"
	sqlFig12  = "select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)"
	sqlFig13a = "select R.A, (select sum(S.B) sm from S where S.A < R.A) from R"
	sqlFig13b = "select R.A, X.sm from R join lateral (select sum(S.B) sm from S where S.A < R.A) X on true"
	sqlFig13c = "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A"
	sqlFig15a = "select R.A from R, S, T where R.B - S.B > T.B"
	sqlFig21a = "select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)"
	sqlFig21b = "select R.id from R, (select S.id, count(S.d) as ct from S group by S.id) as X where R.q = X.ct and R.id = X.id"
	sqlFig21c = "select R.id from R, (select R2.id, count(S.d) as ct from R R2 left join S on R2.id = S.id group by R2.id) as X where R.q = X.ct and R.id = X.id"
	sqlFig9a  = "select exists (select 1 from R where R.q <= (select count(S.d) from S where S.id = R.id)) as b"
	sqlFig17  = `select distinct L1.drinker from Likes L1
	where not exists
	  (select 1 from Likes L2
	   where L1.drinker <> L2.drinker
	   and not exists
	     (select 1 from Likes L3
	      where L3.drinker = L2.drinker
	      and not exists
	        (select 1 from Likes L4
	         where L4.drinker = L1.drinker and L4.beer = L3.beer))
	   and not exists
	     (select 1 from Likes L5
	      where L5.drinker = L1.drinker
	      and not exists
	        (select 1 from Likes L6
	         where L6.drinker = L2.drinker and L6.beer = L5.beer)))`
)

// datalogAncestor is the two-rule ancestor program of Section 2.9.
const datalogAncestor = `
	A(x,y) :- P(x,y).
	A(x,y) :- P(x,z), A(z,y).
`

// datalogQ15 is the Soufflé rule (15) of Section 2.6.
const datalogQ15 = `Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.`

package experiments

import "testing"

// TestAllExperimentsPass is the reproduction gate: every figure-level
// claim of the paper must be confirmed by its experiment.
func TestAllExperimentsPass(t *testing.T) {
	reports := RunAll()
	if len(reports) != 21 {
		t.Fatalf("expected 21 experiments, have %d", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s (%s) FAILED: claim=%q measured=%q", r.ID, r.Figure, r.PaperClaim, r.Measured)
		}
	}
}

func TestRunByID(t *testing.T) {
	r, err := Run("E16")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E16" || !r.Pass {
		t.Fatalf("E16: %+v", r)
	}
	if _, err := Run("E99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 || ids[0] != "E01" || ids[len(ids)-1] != "E21" {
		t.Fatalf("ids = %v", ids)
	}
}

// Package experiments implements the reproduction harness: one runner per
// figure/claim of the paper (experiment index in DESIGN.md). Every runner
// produces a Report with the paper's claim, what this implementation
// measures, and a pass/fail verdict; cmd/arcrepro prints the table and
// EXPERIMENTS.md records it.
package experiments

import (
	"fmt"
	"sort"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (E01…E21).
	ID string
	// Figure names the paper artifact reproduced.
	Figure string
	// Title is a one-line description.
	Title string
	// PaperClaim states what the paper says should happen.
	PaperClaim string
	// Measured states what this implementation observed.
	Measured string
	// Pass reports whether Measured confirms PaperClaim.
	Pass bool
	// Details carries multi-line evidence for the harness output.
	Details string
}

// Runner computes one experiment.
type Runner func() Report

var registry = map[string]Runner{}
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("duplicate experiment " + id)
	}
	registry[id] = r
	order = append(order, id)
	sort.Strings(order)
}

// IDs returns all experiment ids in order.
func IDs() []string { return append([]string{}, order...) }

// Run executes one experiment by id.
func Run(id string) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("unknown experiment %q", id)
	}
	return safeRun(id, r), nil
}

// RunAll executes every experiment in order.
func RunAll() []Report {
	out := make([]Report, 0, len(order))
	for _, id := range order {
		out = append(out, safeRun(id, registry[id]))
	}
	return out
}

func safeRun(id string, r Runner) (rep Report) {
	defer func() {
		if p := recover(); p != nil {
			rep = Report{ID: id, Pass: false, Measured: fmt.Sprintf("panic: %v", p)}
		}
	}()
	rep = r()
	rep.ID = id
	return rep
}

// fail builds a failing report for an unexpected error.
func fail(figure, title, claim string, err error) Report {
	return Report{Figure: figure, Title: title, PaperClaim: claim,
		Measured: "error: " + err.Error(), Pass: false}
}

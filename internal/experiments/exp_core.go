package experiments

import (
	"fmt"
	"strings"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/higraph"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/relpat"
	"repro/internal/sqleval"
	"repro/internal/trc"
	"repro/internal/workload"
)

// evalARC runs a collection under the given conventions against base
// relations.
func evalARC(col *alt.Collection, conv convention.Conventions, rels ...*relation.Relation) (*relation.Relation, error) {
	cat := eval.NewCatalog().WithStandardExternals()
	for _, r := range rels {
		cat.AddRelation(r)
	}
	return eval.Eval(col, cat, conv)
}

func evalSQL(src string, rels ...*relation.Relation) (*relation.Relation, error) {
	db := sqleval.DB{}
	for _, r := range rels {
		db[r.Name()] = r
	}
	return sqleval.EvalString(src, db)
}

func init() {
	register("E01", e01)
	register("E02", e02)
	register("E03", e03)
	register("E04", e04)
	register("E05", e05)
	register("E06", e06)
	register("E07", e07)
	register("E08", e08)
}

// e01 — Fig 2 / query (1): the TRC query renders in all three modalities
// and evaluates equal to its SQL counterpart; the textbook form
// normalizes to the same pattern.
func e01() Report {
	const claim = "TRC query (1) has ALT and higraph renderings and evaluates like its SQL counterpart"
	rep := Report{Figure: "Fig 2 / (1)", Title: "TRC query in three modalities", PaperClaim: claim}
	col := q1()
	tree := alt.PrintTree(col)
	g, err := higraph.Build(col)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	// Normalizing the loose textbook form yields the same pattern.
	loose := trc.MustParse("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
	norm, _, err := loose.Normalize()
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	// Flattened vs nested existentials are the same pattern only after
	// set-semantics unnesting; results must agree regardless.
	rng := workload.Rand(101)
	r := workload.RandomBinary(rng, "R", "A", "B", 40, 15, 10)
	s := workload.RandomBinary(rng, "S", "B", "C", 40, 10, 3)
	arcRes, err := evalARC(col, convention.SetLogic(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	normRes, err := evalARC(norm, convention.SetLogic(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlRes, err := evalSQL(sqlFig2, r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	okALT := strings.Contains(tree, "QUANTIFIER ∃") && strings.Contains(tree, "BINDING: r ∈ R")
	okHG := g.Regions() >= 4 && len(g.Edges) == 2
	okEq := arcRes.EqualSet(sqlRes) && normRes.EqualSet(sqlRes)
	rep.Pass = okALT && okHG && okEq
	rep.Measured = fmt.Sprintf("ALT ok=%v, higraph regions=%d edges=%d, ARC≡SQL=%v (%d rows), TRC-normalized≡SQL=%v",
		okALT, g.Regions(), len(g.Edges), arcRes.EqualSet(sqlRes), arcRes.Card(), normRes.EqualSet(sqlRes))
	rep.Details = tree
	return rep
}

// e02 — Fig 3 / query (2): nested-body comprehension ≡ SQL lateral join.
func e02() Report {
	const claim = "nested comprehension (2) ≡ SQL JOIN LATERAL (Fig 3a)"
	rep := Report{Figure: "Fig 3 / (2)", Title: "Orthogonal nesting = lateral join", PaperClaim: claim}
	rng := workload.Rand(202)
	x := workload.RandomBinary(rng, "X", "A", "Z", 30, 20, 2).Project("A")
	y := workload.RandomBinary(rng, "Y", "A", "Z", 30, 20, 2).Project("A")
	arcRes, err := evalARC(q2(), convention.SQL(), x, y)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlRes, err := evalSQL(sqlFig3, x, y)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	rep.Pass = arcRes.EqualBag(sqlRes)
	rep.Measured = fmt.Sprintf("bag-equal=%v over %d result rows", rep.Pass, arcRes.Card())
	return rep
}

// e03 — Fig 4 / query (3): the FIO grouped aggregate ≡ SQL GROUP BY.
func e03() Report {
	const claim = "grouped aggregate (3) ≡ SQL GROUP BY (Fig 4a), FIO pattern"
	rep := Report{Figure: "Fig 4 / (3)", Title: "FIO grouped aggregate", PaperClaim: claim}
	rng := workload.Rand(303)
	r := workload.RandomBinary(rng, "R", "A", "B", 60, 12, 50)
	arcRes, err := evalARC(q3(), convention.SQL(), r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlRes, err := evalSQL(sqlFig4, r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	cls, err := pattern.ClassifyAggregation(q3())
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	rep.Pass = arcRes.EqualBag(sqlRes) && cls == pattern.FIO
	rep.Measured = fmt.Sprintf("bag-equal=%v, classified %v", arcRes.EqualBag(sqlRes), cls)
	return rep
}

// e04 — Fig 5 / query (7): the FOI pattern ≡ scalar subquery ≡ lateral
// join, and ≡ the FIO formulation under set semantics.
func e04() Report {
	const claim = "FOI (7) ≡ scalar subquery (5a) ≡ lateral join (5b); equal to FIO (3) under set semantics"
	rep := Report{Figure: "Fig 5 / (7)", Title: "FOI pattern equivalences", PaperClaim: claim}
	rng := workload.Rand(404)
	// Bag conventions: SQL's inner SUM ranges over R as a bag, so the ARC
	// evaluation must too; the DISTINCT outputs compare as sets.
	r := workload.RandomBinary(rng, "R", "A", "B", 50, 10, 40)
	foiRes, err := evalARC(q7(), convention.SQL(), r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	fioRes, err := evalARC(q3(), convention.SQL(), r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	scalarRes, err := evalSQL(sqlFig5a, r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	lateralRes, err := evalSQL(sqlFig5b, r)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	cls, _ := pattern.ClassifyAggregation(q7())
	eq := foiRes.EqualSet(scalarRes) && foiRes.EqualSet(lateralRes) && foiRes.EqualSet(fioRes)
	rep.Pass = eq && cls == pattern.FOI
	rep.Measured = fmt.Sprintf("all four equal=%v (%d rows), (7) classified %v", eq, foiRes.Card(), cls)
	return rep
}

// e05 — Fig 6 / query (8): multiple aggregates share one grouping scope;
// HAVING is a selection after aggregation.
func e05() Report {
	const claim = "multiple aggregates in one scope + HAVING (8) ≡ SQL Fig 6a"
	rep := Report{Figure: "Fig 6 / (8)", Title: "Multiple aggregates, FIO", PaperClaim: claim}
	r, s := workload.Employees()
	arcRes, err := evalARC(relpat.MultiAggFIO(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlRes, err := evalSQL(sqlFig6, r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sig, _ := pattern.ComputeSignature(relpat.MultiAggFIO())
	rep.Pass = arcRes.EqualSet(sqlRes) && sig.RelCounts["R"] == 1 && sig.RelCounts["S"] == 1
	rep.Measured = fmt.Sprintf("equal=%v, signature %s", arcRes.EqualSet(sqlRes), sig)
	return rep
}

// e06 — Fig 7 / query (10): the Hella et al. pattern computes the same
// result with a different relational pattern (three scans, FOI).
func e06() Report {
	const claim = "Hella pattern (10) ≡ (8) in results, but scans R,S three times (modified relational pattern, FOI)"
	rep := Report{Figure: "Fig 7 / (10)", Title: "Hella et al. pattern", PaperClaim: claim}
	r, s := workload.Employees()
	hella, err := evalARC(relpat.MultiAggHella(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	fio, err := evalARC(relpat.MultiAggFIO(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sig, _ := pattern.ComputeSignature(relpat.MultiAggHella())
	cls, _ := pattern.ClassifyAggregation(relpat.MultiAggHella())
	notSame := !pattern.CanonicalEqual(relpat.MultiAggHella(), relpat.MultiAggFIO())
	rep.Pass = hella.EqualSet(fio) && sig.RelCounts["R"] == 3 && sig.RelCounts["S"] == 3 &&
		cls == pattern.FOI && notSame
	rep.Measured = fmt.Sprintf("results equal=%v, scans R×%d S×%d, classified %v, pattern differs=%v",
		hella.EqualSet(fio), sig.RelCounts["R"], sig.RelCounts["S"], cls, notSame)
	return rep
}

// e07 — Fig 8 / query (12): Rel's pattern sits between the two — FIO
// aggregation, but one scope per aggregate (two scans).
func e07() Report {
	const claim = "Rel pattern (12) ≡ (8)/(10) in results; two scans of R,S; FIO with per-aggregate scopes"
	rep := Report{Figure: "Fig 8 / (12)", Title: "Rel pattern", PaperClaim: claim}
	r, s := workload.Employees()
	rel, err := evalARC(relpat.MultiAggRel(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	fio, err := evalARC(relpat.MultiAggFIO(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sig, _ := pattern.ComputeSignature(relpat.MultiAggRel())
	cls, _ := pattern.ClassifyAggregation(relpat.MultiAggRel())
	sigF, _ := pattern.ComputeSignature(relpat.MultiAggFIO())
	sigH, _ := pattern.ComputeSignature(relpat.MultiAggHella())
	simFIO := pattern.Similarity(sig, sigF)
	simHella := pattern.Similarity(sig, sigH)
	rep.Pass = rel.EqualSet(fio) && sig.RelCounts["R"] == 2 && cls == pattern.FIO
	rep.Measured = fmt.Sprintf("results equal=%v, scans R×%d, classified %v, similarity to (8)=%.2f to (10)=%.2f",
		rel.EqualSet(fio), sig.RelCounts["R"], cls, simFIO, simHella)
	return rep
}

// e08 — Fig 9 / (13),(14): Boolean sentences with aggregate comparison
// predicates; SQL can only return a unary truth-value relation.
func e08() Report {
	const claim = "(13) holds and (14) fails on an instance where some r.q exceeds its count; SQL Fig 9a returns the same truth value as a unary relation"
	rep := Report{Figure: "Fig 9 / (13),(14)", Title: "Boolean sentences with aggregates", PaperClaim: claim}
	r := relation.New("R", "id", "q").Add(1, 2).Add(2, 5)
	s := relation.New("S", "id", "d").Add(1, "a").Add(1, "b").Add(2, "c")
	cat := eval.NewCatalog().AddRelation(r).AddRelation(s)
	v13, err := eval.EvalSentence(s13(), cat, convention.SetLogic())
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	v14, err := eval.EvalSentence(s14(), cat, convention.SetLogic())
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlRes, err := evalSQL(sqlFig9a, r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlTrue := sqlRes.Card() == 1 && sqlRes.Tuples()[0][0].AsBool()
	rep.Pass = v13 && !v14 && sqlTrue == v13
	rep.Measured = fmt.Sprintf("(13)=%v (14)=%v, SQL exists-as-relation=%v", v13, v14, sqlTrue)
	return rep
}

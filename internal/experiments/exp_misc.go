package experiments

import (
	"fmt"
	"strings"

	"repro/internal/alt"
	"repro/internal/arc2sql"
	"repro/internal/convention"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/higraph"
	"repro/internal/pattern"
	"repro/internal/relation"
	"repro/internal/relpat"
	"repro/internal/trc"
	"repro/internal/value"
	"repro/internal/workload"
)

func init() {
	register("E17", e17)
	register("E18", e18)
	register("E19", e19)
	register("E20", e20)
	register("E21", e21)
}

// e17 — Section 2.6 / (15): conventions. The same relational pattern
// yields Q(1,0) under Soufflé conventions and (1,NULL) under SQL
// conventions; the Datalog engine and the ARC evaluator agree per
// convention.
func e17() Report {
	const claim = "on R={(1,2)}, S=∅: Soufflé derives Q(1,0); SQL returns (1,NULL); the relational pattern is unchanged"
	rep := Report{Figure: "§2.6 / (15)", Title: "Conventions, not languages", PaperClaim: claim}
	r, s := workload.ConventionInstance()
	// Soufflé engine.
	prog := datalog.MustParse(datalogQ15)
	dl, err := datalog.EvalPredicate(prog, datalog.EDB{"R": r, "S": s}, "Q")
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	// ARC under both conventions — the same query text.
	souffle, err := evalARC(q15ARC(), convention.Souffle(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	sqlConv, err := evalARC(q15ARC(), convention.SQLDistinct(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	// SQL engine on the lateral formulation (Fig 13b with DISTINCT).
	sqlRes, err := evalSQL(
		"select distinct R.ak, X.sm from R join lateral (select sum(S.b) sm from S where S.a < R.ak) X on true",
		r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	wantZero := relation.New("W", "ak", "sm").Add(1, 0)
	wantNull := relation.New("W", "ak", "sm").Add(1, nil)
	okSouffle := souffle.EqualSet(wantZero) && dl.EqualSet(wantZero)
	okSQL := sqlConv.EqualSet(wantNull) && sqlRes.EqualSet(wantNull)
	rep.Pass = okSouffle && okSQL
	rep.Measured = fmt.Sprintf("Soufflé conventions → Q(1,0)=%v (Datalog engine agrees=%v); SQL conventions → (1,NULL)=%v (SQL engine agrees=%v); same ARC query text in both runs",
		souffle.EqualSet(wantZero), dl.EqualSet(wantZero), sqlConv.EqualSet(wantNull), sqlRes.EqualSet(wantNull))
	return rep
}

// e18 — Section 2.7: set vs bag as a convention. The same pair of
// queries agrees under set semantics and differs in multiplicities under
// bag semantics (nested = semijoin, unnested = per-pair).
func e18() Report {
	const claim = "nested and unnested forms agree under sets; under bags the nested form yields one row per r, the unnested one per (r,s) pair"
	rep := Report{Figure: "§2.7", Title: "Set vs bag is a convention", PaperClaim: claim}
	nested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				))))
	unnested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
			)))
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, 20)
	s := relation.New("S", "B").Add(10).Add(10).Add(20)
	nSet, err := evalARC(nested, convention.SetLogic(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	uSet, err := evalARC(unnested, convention.SetLogic(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	nBag, err := evalARC(nested, convention.SQL(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	uBag, err := evalARC(unnested, convention.SQL(), r, s)
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	one := relation.Tuple{value.Int(1)}
	setEq := nSet.EqualSet(uSet)
	bagDiff := nBag.Mult(one) == 1 && uBag.Mult(one) == 2
	rep.Pass = setEq && bagDiff
	rep.Measured = fmt.Sprintf("set-equal=%v; bag multiplicities of Q(1): nested=%d unnested=%d", setEq, nBag.Mult(one), uBag.Mult(one))
	return rep
}

// e19 — Section 2.1: the two normalization steps from the loose textbook
// TRC form to the strict ARC form preserve semantics at every stage.
func e19() Report {
	const claim = "loose form → scoped form → clean-head form (1), all evaluating equally"
	rep := Report{Figure: "§2.1", Title: "TRC normalization chain", PaperClaim: claim}
	loose := trc.MustParse("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
	col, scoped, err := loose.Normalize()
	if err != nil {
		return fail(rep.Figure, rep.Title, claim, err)
	}
	rng := workload.Rand(1919)
	allOK := true
	for trial := 0; trial < 5; trial++ {
		r := workload.RandomBinary(rng, "R", "A", "B", 30, 10, 8)
		s := workload.RandomBinary(rng, "S", "B", "C", 20, 8, 2)
		strict, err := evalARC(col, convention.SetLogic(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		viaARC, err := evalARC(q1(), convention.SetLogic(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		allOK = allOK && strict.EqualSet(viaARC)
	}
	rep.Pass = allOK && strings.Contains(col.String(), "Q.A = r.A")
	rep.Measured = fmt.Sprintf("5 random instances equal=%v; scoped form: %s; strict form: %s",
		allOK, scoped.String(), col.String())
	return rep
}

// e20 — Sections 4/5: the NL2SQL validation path. Structural mutations of
// valid ALTs (unbound variables, dirty heads, missing γ, broken grouping
// keys, unassigned head attributes) are all rejected; the originals
// validate and render to SQL that evaluates equal to direct ARC
// evaluation.
func e20() Report {
	const claim = "the validator catches scoping/grouping/correlation faults in machine-generated ALTs; valid ALTs render to SQL faithfully"
	rep := Report{Figure: "§4–5 (NL2SQL)", Title: "Validator mutation study", PaperClaim: claim}
	corpus := []*alt.Collection{q1(), q3(), q7(), relpat.MultiAggFIO(), countBugV2()}
	caught, total := 0, 0
	for _, col := range corpus {
		if _, err := alt.ValidateCollection(col); err != nil {
			return fail(rep.Figure, rep.Title, claim, fmt.Errorf("corpus query invalid: %w", err))
		}
		for _, m := range mutations(col) {
			total++
			if _, err := alt.ValidateCollection(m); err != nil {
				caught++
			}
		}
	}
	// Faithful rendering: SQL of q1/q3 evaluates equal to ARC.
	rng := workload.Rand(2020)
	r := workload.RandomBinary(rng, "R", "A", "B", 30, 8, 20)
	s := workload.RandomBinary(rng, "S", "B", "C", 20, 20, 2)
	renderOK := true
	for _, col := range []*alt.Collection{q1(), q3()} {
		sqlText, err := arc2sql.RenderString(col)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		got, err := evalSQL(sqlText, r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		want, err := evalARC(col, convention.SQL(), r, s)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		renderOK = renderOK && got.EqualBag(want)
	}
	rep.Pass = caught == total && total >= 20 && renderOK
	rep.Measured = fmt.Sprintf("mutants rejected %d/%d; valid ALTs render to equivalent SQL=%v", caught, total, renderOK)
	return rep
}

// mutations produces invalid variants of a collection (cloned; the
// original is untouched).
func mutations(col *alt.Collection) []*alt.Collection {
	var out []*alt.Collection
	// M1: unbind a variable — rename the first attr ref's variable.
	m1 := alt.CloneCollection(col)
	if p := firstPred(m1); p != nil {
		for _, ref := range alt.TermAttrRefs(p.Right, alt.TermAttrRefs(p.Left, nil)) {
			if ref.Var != m1.Head.Rel {
				ref.Var = "zz_unbound"
				break
			}
		}
		out = append(out, m1)
	}
	// M2: dirty head — add a comparison against the head.
	m2 := alt.CloneCollection(col)
	if q, ok := m2.Body.(*alt.Quantifier); ok && len(m2.Head.Attrs) > 0 {
		q.Body = alt.AndF(q.Body, alt.Lt(alt.Ref(m2.Head.Rel, m2.Head.Attrs[0]), alt.CInt(0)))
		out = append(out, m2)
	}
	// M3: drop γ from a grouping scope with aggregates.
	m3 := alt.CloneCollection(col)
	if dropGrouping(m3.Body) {
		out = append(out, m3)
	}
	// M4: break a grouping key (point it at an unbound variable).
	m4 := alt.CloneCollection(col)
	if breakGroupKey(m4.Body) {
		out = append(out, m4)
	}
	// M5: unassign a head attribute.
	m5 := alt.CloneCollection(col)
	m5.Head.Attrs = append(m5.Head.Attrs, "never_assigned")
	out = append(out, m5)
	// M6: duplicate a binding variable.
	m6 := alt.CloneCollection(col)
	if q, ok := m6.Body.(*alt.Quantifier); ok && len(q.Bindings) >= 2 {
		q.Bindings[1].Var = q.Bindings[0].Var
		out = append(out, m6)
	}
	return out
}

func firstPred(col *alt.Collection) *alt.Pred {
	var found *alt.Pred
	alt.Walk(col.Body, func(f alt.Formula) {
		if found != nil {
			return
		}
		if p, ok := f.(*alt.Pred); ok {
			found = p
		}
	})
	return found
}

func dropGrouping(f alt.Formula) bool {
	done := false
	alt.Walk(f, func(x alt.Formula) {
		if done {
			return
		}
		if q, ok := x.(*alt.Quantifier); ok && q.Grouping != nil {
			q.Grouping = nil
			done = true
		}
	})
	return done
}

func breakGroupKey(f alt.Formula) bool {
	done := false
	alt.Walk(f, func(x alt.Formula) {
		if done {
			return
		}
		if q, ok := x.(*alt.Quantifier); ok && q.Grouping != nil && len(q.Grouping.Keys) > 0 {
			q.Grouping.Keys[0].Var = "zz_nokey"
			done = true
		}
	})
	return done
}

// e21 — Section 2.2: modality metrics. The same queries measured in all
// three modalities (comprehension tokens, ALT nodes, higraph regions and
// edges) — the mechanical proxy for the paper's usability discussion;
// the user study itself is out of scope (see DESIGN.md substitutions).
func e21() Report {
	const claim = "every corpus query renders in all three modalities; sizes are reported as a usability proxy (user study not reproducible)"
	rep := Report{Figure: "§2.2 modalities", Title: "Modality metrics", PaperClaim: claim}
	corpus := map[string]*alt.Collection{
		"(1) SPJ":       q1(),
		"(3) FIO agg":   q3(),
		"(7) FOI agg":   q7(),
		"(8) multi-agg": relpat.MultiAggFIO(),
		"(10) Hella":    relpat.MultiAggHella(),
		"(22) unique":   relpat.UniqueSet(),
		"(29) count v3": countBugV3(),
	}
	var rows []string
	ok := true
	for name, col := range corpus {
		m := pattern.ComputeModalityMetrics(col)
		g, err := higraph.Build(col)
		if err != nil {
			return fail(rep.Figure, rep.Title, claim, err)
		}
		svg := g.SVG()
		if m.ComprehensionTokens == 0 || m.ALTNodes == 0 || g.Regions() == 0 || len(svg) == 0 {
			ok = false
		}
		rows = append(rows, fmt.Sprintf("%-14s tokens=%3d altNodes=%3d regions=%2d edges=%2d depth=%d",
			name, m.ComprehensionTokens, m.ALTNodes, g.Regions(), len(g.Edges), m.MaxScopeDepth))
	}
	rep.Pass = ok
	rep.Measured = fmt.Sprintf("%d corpus queries measured in 3 modalities", len(corpus))
	rep.Details = strings.Join(rows, "\n")
	return rep
}

var _ = eval.NewCatalog

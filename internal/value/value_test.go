package value

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.String() != "NULL" {
		t.Fatalf("NULL renders as %q", v.String())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 || Int(7).Kind() != KindInt {
		t.Error("Int round trip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip failed")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str round trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int should coerce via AsFloat")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-4), "-4"},
		{Float(1.5), "1.5"},
		{Str("ab"), "'ab'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKeyIntFloatAlignment(t *testing.T) {
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("2 and 2.0 must share a key (they compare equal)")
	}
	if Int(2).Key() == Float(2.5).Key() {
		t.Error("2 and 2.5 must not share a key")
	}
	if Null().Key() == Int(0).Key() {
		t.Error("NULL must not collide with 0")
	}
	if Str("1").Key() == Int(1).Key() {
		t.Error("'1' must not collide with 1")
	}
}

func TestEqual(t *testing.T) {
	if !Null().Equal(Null()) {
		t.Error("Equal treats NULL = NULL for dedup purposes")
	}
	if !Int(1).Equal(Float(1)) {
		t.Error("1 equals 1.0")
	}
	if Int(1).Equal(Int(2)) {
		t.Error("1 != 2")
	}
}

func TestCompare(t *testing.T) {
	if _, ok := Null().Compare(Int(1)); ok {
		t.Error("NULL compares as not-ok")
	}
	if c, ok := Int(1).Compare(Float(1.5)); !ok || c != -1 {
		t.Errorf("1 vs 1.5 = %d,%v", c, ok)
	}
	if c, ok := Str("b").Compare(Str("a")); !ok || c != 1 {
		t.Errorf("'b' vs 'a' = %d,%v", c, ok)
	}
	if c, ok := Str("a").Compare(Str("a")); !ok || c != 0 {
		t.Errorf("'a' vs 'a' = %d,%v", c, ok)
	}
	if _, ok := Str("a").Compare(Int(1)); ok {
		t.Error("mixed string/int must be incomparable")
	}
	if c, ok := Bool(true).Compare(Bool(false)); !ok || c != 1 {
		t.Errorf("true vs false = %d,%v", c, ok)
	}
}

func TestLessTotalOrder(t *testing.T) {
	// NULL sorts before everything; numerics interleave by value.
	if !Null().Less(Int(-100)) {
		t.Error("NULL < -100 in the canonical order")
	}
	if !Int(1).Less(Float(1.5)) || Float(1.5).Less(Int(1)) {
		t.Error("numeric interleaving broken")
	}
	if !Int(2).Less(Str("a")) {
		t.Error("kind ordering: numbers before strings")
	}
	if Int(1).Less(Int(1)) {
		t.Error("irreflexive")
	}
}

func TestArithmetic(t *testing.T) {
	if v, ok := Add(Int(2), Int(3)); !ok || v.AsInt() != 5 {
		t.Errorf("2+3 = %v,%v", v, ok)
	}
	if v, ok := Sub(Int(5), Int(3)); !ok || v.AsInt() != 2 {
		t.Errorf("5-3 = %v,%v", v, ok)
	}
	if v, ok := Mul(Float(2), Int(3)); !ok || v.AsFloat() != 6 {
		t.Errorf("2.0*3 = %v,%v", v, ok)
	}
	if v, ok := Div(Int(7), Int(2)); !ok || v.AsInt() != 3 {
		t.Errorf("7/2 = %v,%v (integer division)", v, ok)
	}
	if v, ok := Div(Float(7), Int(2)); !ok || v.AsFloat() != 3.5 {
		t.Errorf("7.0/2 = %v,%v", v, ok)
	}
	if v, ok := Div(Int(1), Int(0)); !ok || !v.IsNull() {
		t.Errorf("1/0 = %v,%v (NULL by convention)", v, ok)
	}
	if v, ok := Add(Null(), Int(1)); !ok || !v.IsNull() {
		t.Errorf("NULL+1 = %v,%v (NULL propagation)", v, ok)
	}
	if _, ok := Add(Str("x"), Int(1)); ok {
		t.Error("'x'+1 is a type error")
	}
}

func TestTVTruthTables(t *testing.T) {
	tvs := []TV{False, Unknown, True}
	// Kleene tables.
	andWant := [3][3]TV{
		{False, False, False},
		{False, Unknown, Unknown},
		{False, Unknown, True},
	}
	orWant := [3][3]TV{
		{False, Unknown, True},
		{Unknown, Unknown, True},
		{True, True, True},
	}
	for i, a := range tvs {
		for j, b := range tvs {
			if got := a.And(b); got != andWant[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, andWant[i][j])
			}
			if got := a.Or(b); got != orWant[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, orWant[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Kleene negation broken")
	}
	if !True.Holds() || False.Holds() || Unknown.Holds() {
		t.Error("only True passes a WHERE filter")
	}
}

func TestTVStrings(t *testing.T) {
	if False.String() != "F" || Unknown.String() != "U" || True.String() != "T" {
		t.Error("TV rendering broken")
	}
	if TV(42).String() != "?" {
		t.Error("unknown TV renders '?'")
	}
}

func TestDeMorganProperty(t *testing.T) {
	// Kleene logic satisfies De Morgan: not(a and b) == not a or not b.
	f := func(ai, bi uint8) bool {
		a, b := TV(ai%3), TV(bi%3)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		a, b Value
		op   CmpOp
		want TV
	}{
		{Int(1), Int(1), Eq, True},
		{Int(1), Int(2), Eq, False},
		{Int(1), Int(2), Ne, True},
		{Int(1), Int(2), Lt, True},
		{Int(2), Int(2), Le, True},
		{Int(3), Int(2), Gt, True},
		{Int(2), Int(2), Ge, True},
		{Int(2), Int(3), Ge, False},
		{Null(), Int(1), Eq, Unknown},
		{Int(1), Null(), Lt, Unknown},
		{Str("a"), Int(1), Eq, Unknown}, // incomparable kinds
		{Str("a"), Str("b"), Lt, True},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCmpOpStringsAndFlip(t *testing.T) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	names := []string{"=", "<>", "<", "<=", ">", ">="}
	for i, op := range ops {
		if op.String() != names[i] {
			t.Errorf("op %d renders %q", i, op.String())
		}
	}
	// a op b == b flip(op) a on all comparable pairs.
	vals := []Value{Int(1), Int(2), Float(1.5)}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				if op.Apply(a, b) != op.Flip().Apply(b, a) {
					t.Errorf("flip law broken for %v %v %v", a, op, b)
				}
			}
		}
	}
}

package value

// TV is a three-valued logic truth value. SQL predicates over NULL yield
// Unknown; conventions decide whether Unknown filters like False (SQL
// WHERE) or whether 2VL is in force (Soufflé has no NULL, so predicates
// are always True/False).
type TV int

const (
	// False is definite falsity.
	False TV = iota
	// Unknown is the third truth value produced by comparisons with NULL.
	Unknown
	// True is definite truth.
	True
)

// String returns F/U/T for goldens and truth-table tests.
func (t TV) String() string {
	switch t {
	case False:
		return "F"
	case Unknown:
		return "U"
	case True:
		return "T"
	}
	return "?"
}

// TVFromBool lifts a bool into 3VL.
func TVFromBool(b bool) TV {
	if b {
		return True
	}
	return False
}

// Holds reports whether t passes a filter: only True rows survive a WHERE
// clause (Unknown is discarded), per the SQL standard.
func (t TV) Holds() bool { return t == True }

// And is Kleene conjunction: min of the operands.
func (t TV) And(o TV) TV {
	if t < o {
		return t
	}
	return o
}

// Or is Kleene disjunction: max of the operands.
func (t TV) Or(o TV) TV {
	if t > o {
		return t
	}
	return o
}

// Not is Kleene negation: True↔False, Unknown fixed.
func (t TV) Not() TV {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// CmpOp is a comparison operator usable on values under 3VL.
type CmpOp int

const (
	// Eq is "=".
	Eq CmpOp = iota
	// Ne is "<>".
	Ne
	// Lt is "<".
	Lt
	// Le is "<=".
	Le
	// Gt is ">".
	Gt
	// Ge is ">=".
	Ge
)

// String renders the operator in ARC/SQL surface syntax.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Flip returns the operator with operands swapped (a op b == b op.Flip() a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// Apply evaluates "a op b" under three-valued logic: any NULL operand
// yields Unknown; incomparable kinds yield Unknown as well (engines raise
// type errors; for a reference semantics Unknown is the conservative
// choice and our validators reject ill-typed queries earlier).
func (op CmpOp) Apply(a, b Value) TV {
	if a.IsNull() || b.IsNull() {
		return Unknown
	}
	c, ok := a.Compare(b)
	if !ok {
		return Unknown
	}
	switch op {
	case Eq:
		return TVFromBool(c == 0)
	case Ne:
		return TVFromBool(c != 0)
	case Lt:
		return TVFromBool(c < 0)
	case Le:
		return TVFromBool(c <= 0)
	case Gt:
		return TVFromBool(c > 0)
	case Ge:
		return TVFromBool(c >= 0)
	}
	return Unknown
}

// ordkey.go implements the order-preserving binary key encoding used by
// the storage subsystem (internal/storage): a type-tagged byte string
// whose memcmp order agrees with Less across every pair of values —
// NULL sorts first, ints and floats interleave numerically, then
// strings, then bools. Encodings are round-trip decodable (the segment
// files store nothing but keys), and class prefixes plus a byte-string
// successor give half-open [lo,hi) byte ranges for range scans. The
// shape follows janus-datalog's key_encoder_binary.go: one tag byte per
// class, big-endian sign-flipped numerics, 0x00-escaped strings.
package value

import (
	"errors"
	"fmt"
	"math"
)

// Ordered-encoding class tags. Tag order is the Less kind order with the
// two numeric kinds collapsed into one class (they interleave by value).
const (
	ordTagNull   = 0x01
	ordTagNum    = 0x02
	ordTagString = 0x03
	ordTagBool   = 0x04

	// Numeric kind disambiguators, appended after the 8-byte sort key so
	// equal-valued ints and floats stay distinct (round trip) while
	// sorting adjacently.
	ordNumInt   = 0x01
	ordNumFloat = 0x02
)

// ErrBadOrdKey is wrapped by DecodeOrdered on malformed input.
var ErrBadOrdKey = errors.New("value: malformed ordered key")

// f64key maps a float64 onto a uint64 whose unsigned order matches the
// float order: flip all bits of negatives, flip only the sign bit of
// non-negatives.
func f64key(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

func f64unkey(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func takeU64(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return v, b[8:], true
}

// AppendOrdered appends the order-preserving encoding of v to b and
// returns the extended slice. For any two values a, b:
//
//   - a.Less(b) implies bytes(a) < bytes(b);
//   - Compare(a,b) == 0 (e.g. 2 vs 2.0) implies the encodings share
//     their class prefix and differ only in the kind tiebreak,
//     so both fall inside the same [prefix, successor(prefix)) range.
//
// Concatenated encodings order tuples lexicographically: no value's
// encoding is a proper prefix of another's within a class, and class
// tags differ across classes.
func (v Value) AppendOrdered(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, ordTagNull)
	case KindInt:
		b = appendU64(append(b, ordTagNum), f64key(float64(v.i)))
		// Exact payload: ints beyond 2^53 share a float sort key with
		// their neighbours; the offset-binary int64 breaks the tie in
		// numeric order.
		return appendU64(append(b, ordNumInt), uint64(v.i)+(1<<63))
	case KindFloat:
		b = appendU64(append(b, ordTagNum), f64key(v.f))
		return append(b, ordNumFloat)
	case KindString:
		b = append(b, ordTagString)
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			if c == 0x00 {
				b = append(b, 0x00, 0xFF)
				continue
			}
			b = append(b, c)
		}
		return append(b, 0x00, 0x01)
	case KindBool:
		if v.b {
			return append(b, ordTagBool, 0x01)
		}
		return append(b, ordTagBool, 0x00)
	}
	return append(b, 0xFF)
}

// OrderedKey returns the ordered encoding of v as a fresh slice.
func (v Value) OrderedKey() []byte { return v.AppendOrdered(nil) }

// DecodeOrdered decodes one value from the front of b, returning the
// value and the remaining bytes.
func DecodeOrdered(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("%w: empty input", ErrBadOrdKey)
	}
	switch b[0] {
	case ordTagNull:
		return Null(), b[1:], nil
	case ordTagNum:
		key, rest, ok := takeU64(b[1:])
		if !ok || len(rest) == 0 {
			return Value{}, nil, fmt.Errorf("%w: short numeric", ErrBadOrdKey)
		}
		switch rest[0] {
		case ordNumInt:
			iv, rest2, ok := takeU64(rest[1:])
			if !ok {
				return Value{}, nil, fmt.Errorf("%w: short int payload", ErrBadOrdKey)
			}
			return Int(int64(iv - (1 << 63))), rest2, nil
		case ordNumFloat:
			return Float(f64unkey(key)), rest[1:], nil
		}
		return Value{}, nil, fmt.Errorf("%w: bad numeric kind 0x%02x", ErrBadOrdKey, rest[0])
	case ordTagString:
		var s []byte
		rest := b[1:]
		for {
			if len(rest) < 1 {
				return Value{}, nil, fmt.Errorf("%w: unterminated string", ErrBadOrdKey)
			}
			c := rest[0]
			if c != 0x00 {
				s = append(s, c)
				rest = rest[1:]
				continue
			}
			if len(rest) < 2 {
				return Value{}, nil, fmt.Errorf("%w: dangling string escape", ErrBadOrdKey)
			}
			switch rest[1] {
			case 0xFF:
				s = append(s, 0x00)
				rest = rest[2:]
			case 0x01:
				return Str(string(s)), rest[2:], nil
			default:
				return Value{}, nil, fmt.Errorf("%w: bad string escape 0x%02x", ErrBadOrdKey, rest[1])
			}
		}
	case ordTagBool:
		if len(b) < 2 {
			return Value{}, nil, fmt.Errorf("%w: short bool", ErrBadOrdKey)
		}
		return Bool(b[1] != 0x00), b[2:], nil
	}
	return Value{}, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadOrdKey, b[0])
}

// AppendOrderedPrefix appends the class prefix of v: the part of the
// encoding shared by every value that Compare reports equal to v (for
// numerics the tag plus the 8-byte float sort key, collapsing 2 and 2.0;
// otherwise the full encoding). Every key for a tuple whose first value
// compares equal to v starts with exactly this prefix, so
// [prefix, OrderedSuccessor(prefix)) covers the whole tie group — the
// building block for range-scan bounds.
func (v Value) AppendOrderedPrefix(b []byte) []byte {
	switch v.kind {
	case KindInt:
		return appendU64(append(b, ordTagNum), f64key(float64(v.i)))
	case KindFloat:
		return appendU64(append(b, ordTagNum), f64key(v.f))
	}
	return v.AppendOrdered(b)
}

// OrderedSuccessor returns the smallest byte string strictly greater
// than every string that starts with p: increment the last
// incrementable byte and truncate. A nil result means +infinity (p was
// empty or all 0xFF).
func OrderedSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// Package value implements the scalar value system shared by every
// substrate in this repository: typed constants, SQL-style NULL, numeric
// coercion, arithmetic with NULL propagation, and the three-valued logic
// (3VL) that the paper's convention discussion (Section 2.6, Section 2.10)
// depends on.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the dynamic type of a Value.
type Kind int

const (
	// KindNull is the SQL NULL marker. It is its own kind: a NULL carries
	// no payload and compares as Unknown under three-valued logic.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable string.
	KindString
	// KindBool is a boolean constant (used by conventions and tests; the
	// relational predicates themselves evaluate to TV, not Value).
	KindBool
)

// String returns the kind name as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is an immutable scalar. The zero Value is NULL, so uninitialized
// attributes behave like SQL missing values without extra bookkeeping.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the NULL marker.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload, coercing integers. It is valid for
// KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders v the way the experiment harness and goldens print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Key returns a string that is equal for equal values and distinct for
// distinct values (within the value domain used here). Integers and floats
// that denote the same number share a key, matching comparison semantics.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// AppendKey appends the Key encoding of v to b and returns the extended
// slice — the allocation-free form the hashing hot paths (hash indexes,
// joins, γ grouping, dedup) use with a reusable buffer.
func (v Value) AppendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0x00, 'N')
	case KindInt:
		return strconv.AppendInt(append(b, 0x01), v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) <= maxExactFloat {
			// Align with equal integers so 2.0 and 2 group together. The
			// cutoff is 2^53, the largest range where float64 represents
			// every integer exactly, so within it Key agrees with the
			// float-coercing Compare.
			return strconv.AppendInt(append(b, 0x01), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(b, 0x02), v.f, 'g', -1, 64)
	case KindString:
		return append(append(b, 0x03), v.s...)
	case KindBool:
		if v.b {
			return append(b, 0x04, 't')
		}
		return append(b, 0x04, 'f')
	}
	return append(b, 0x05, '?')
}

// Equal reports strict equality under two-valued logic: NULL equals NULL.
// Relational predicate evaluation uses Compare (3VL-aware) instead; Equal
// exists for keys, dedup, and test assertions.
func (v Value) Equal(o Value) bool { return v.Key() == o.Key() }

// maxExactFloat is 2^53, the largest magnitude below which float64
// represents every integer exactly.
const maxExactFloat = float64(1 << 53)

// Indexable reports whether hash-probing by v's Key finds every value
// that the float-coercing Eq predicate would match: true except for
// integral numerics beyond 2^53, where Eq collapses distinct integers
// (float coercion rounds) while keys stay exact. Non-indexable probe
// values must fall back to a scan with an Eq re-check.
func (v Value) Indexable() bool {
	switch v.kind {
	case KindInt:
		return math.Abs(float64(v.i)) <= maxExactFloat
	case KindFloat:
		return v.f != math.Trunc(v.f) || math.IsInf(v.f, 0) || math.Abs(v.f) <= maxExactFloat
	}
	return true
}

// Compare compares two non-null values, returning -1, 0, or +1 and true,
// or false when the values are incomparable (NULL involved, or mixed
// non-numeric kinds). Numeric kinds coerce to float for comparison.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.s < o.s:
			return -1, true
		case v.s > o.s:
			return 1, true
		}
		return 0, true
	}
	if v.kind == KindBool && o.kind == KindBool {
		bi := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		return bi(v.b) - bi(o.b), true
	}
	return 0, false
}

// Less is a total order over all values (NULL first, then by kind, then by
// payload), used for canonical sorting of relations. It is not the SQL
// comparison — use Compare for predicate semantics.
func (v Value) Less(o Value) bool {
	if v.kind != o.kind {
		// Numeric kinds interleave by value so 1 < 1.5 < 2 regardless of kind.
		if v.IsNumeric() && o.IsNumeric() {
			return v.AsFloat() < o.AsFloat()
		}
		return v.kind < o.kind
	}
	if c, ok := v.Compare(o); ok {
		return c < 0
	}
	return false
}

// Arithmetic. All operations propagate NULL and require numeric operands;
// the second return is false on a type error (the evaluator reports it).

func arith(a, b Value, fi func(int64, int64) (int64, bool), ff func(float64, float64) float64) (Value, bool) {
	if a.IsNull() || b.IsNull() {
		return Null(), true
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), false
	}
	if a.kind == KindInt && b.kind == KindInt {
		if r, ok := fi(a.i, b.i); ok {
			return Int(r), true
		}
		return Null(), false
	}
	return Float(ff(a.AsFloat(), b.AsFloat())), true
}

// Add returns a+b with NULL propagation.
func Add(a, b Value) (Value, bool) {
	return arith(a, b,
		func(x, y int64) (int64, bool) { return x + y, true },
		func(x, y float64) float64 { return x + y })
}

// Sub returns a-b with NULL propagation.
func Sub(a, b Value) (Value, bool) {
	return arith(a, b,
		func(x, y int64) (int64, bool) { return x - y, true },
		func(x, y float64) float64 { return x - y })
}

// Mul returns a*b with NULL propagation.
func Mul(a, b Value) (Value, bool) {
	return arith(a, b,
		func(x, y int64) (int64, bool) { return x * y, true },
		func(x, y float64) float64 { return x * y })
}

// Div returns a/b with NULL propagation. Integer division by zero and
// float division by zero both yield NULL-with-ok=false is too harsh for
// SQL flavor; we return NULL, true (SQL raises; engines differ) — the
// conventions layer documents this as DivZeroIsNull.
func Div(a, b Value) (Value, bool) {
	if a.IsNull() || b.IsNull() {
		return Null(), true
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), false
	}
	if b.AsFloat() == 0 {
		return Null(), true
	}
	if a.kind == KindInt && b.kind == KindInt {
		return Int(a.i / b.i), true
	}
	return Float(a.AsFloat() / b.AsFloat()), true
}

package value

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// ordCorpus is a hand-picked set of boundary values plus a deterministic
// random sample, covering every class and the 2^53 exactness cliff.
func ordCorpus() []Value {
	vals := []Value{
		Null(),
		Int(math.MinInt64), Int(-1 << 53), Int(-1000), Int(-1), Int(0), Int(1),
		Int(42), Int(1 << 53), Int(1<<53 + 1), Int(math.MaxInt64),
		Float(math.Inf(-1)), Float(-1e300), Float(-2.5), Float(-0.0), Float(0),
		Float(0.5), Float(2), Float(2.5), Float(float64(1 << 53)), Float(1e300),
		Float(math.Inf(1)),
		Str(""), Str("a"), Str("a\x00"), Str("a\x00b"), Str("ab"), Str("b"),
		Str(strings.Repeat("z", 100)), Str("\x00"), Str("\xff"),
		Bool(false), Bool(true),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0:
			vals = append(vals, Int(rng.Int63()-rng.Int63()))
		case 1:
			vals = append(vals, Float((rng.Float64()-0.5)*math.Pow(10, float64(rng.Intn(40)-20))))
		case 2:
			n := rng.Intn(8)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte(rng.Intn(256))
			}
			vals = append(vals, Str(string(b)))
		case 3:
			vals = append(vals, Bool(rng.Intn(2) == 0))
		}
	}
	return vals
}

func TestOrderedKeyRoundTrip(t *testing.T) {
	for _, v := range ordCorpus() {
		enc := v.OrderedKey()
		got, rest, err := DecodeOrdered(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v: %d trailing bytes", v, len(rest))
		}
		if got.Kind() != v.Kind() || !got.Equal(v) {
			t.Fatalf("round trip %v (%v) -> %v (%v)", v, v.Kind(), got, got.Kind())
		}
		// Ints must round-trip bit-exactly, not just Key-equal.
		if v.Kind() == KindInt && got.AsInt() != v.AsInt() {
			t.Fatalf("int round trip %d -> %d", v.AsInt(), got.AsInt())
		}
		if v.Kind() == KindFloat && math.Float64bits(got.AsFloat()) != math.Float64bits(v.AsFloat()) {
			t.Fatalf("float round trip %v -> %v", v.AsFloat(), got.AsFloat())
		}
	}
}

// TestOrderedKeyAgreesWithLess checks the core contract: byte order of
// encodings refines the Less / Compare order. Strictly less values must
// encode strictly smaller; Compare-equal values (2 vs 2.0) must share
// their class prefix so a prefix range picks up the whole tie group.
func TestOrderedKeyAgreesWithLess(t *testing.T) {
	vals := ordCorpus()
	for _, a := range vals {
		for _, b := range vals {
			ea, eb := a.OrderedKey(), b.OrderedKey()
			cmp := bytes.Compare(ea, eb)
			switch {
			case a.Less(b):
				if cmp >= 0 {
					t.Fatalf("%v < %v but key %x >= %x", a, b, ea, eb)
				}
			case b.Less(a):
				if cmp <= 0 {
					t.Fatalf("%v > %v but key %x <= %x", a, b, ea, eb)
				}
			}
			if c, ok := a.Compare(b); ok && c == 0 {
				pa, pb := a.AppendOrderedPrefix(nil), b.AppendOrderedPrefix(nil)
				if !bytes.Equal(pa, pb) {
					t.Fatalf("Compare(%v,%v)=0 but prefixes differ: %x vs %x", a, b, pa, pb)
				}
			}
		}
	}
}

// TestOrderedPrefixBounds checks that [prefix(v), successor(prefix(v)))
// contains exactly the encodings of values Compare-equal to v within
// the corpus. NULL is excluded: range bounds are never built from NULL
// (a NULL-bounded predicate is Unknown for every row).
func TestOrderedPrefixBounds(t *testing.T) {
	vals := ordCorpus()
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		lo := v.AppendOrderedPrefix(nil)
		hi := OrderedSuccessor(lo)
		for _, o := range vals {
			enc := o.OrderedKey()
			in := bytes.Compare(enc, lo) >= 0 && (hi == nil || bytes.Compare(enc, hi) < 0)
			c, ok := v.Compare(o)
			want := ok && c == 0
			if in != want {
				t.Fatalf("prefix range of %v: %v in=%v want=%v", v, o, in, want)
			}
		}
	}
}

// Tuple concatenation must stay lexicographic: if tuple a < tuple b
// columnwise (first strict difference decides), the concatenated
// encodings compare the same way.
func TestOrderedKeyTupleLex(t *testing.T) {
	tuples := [][]Value{
		{Int(1), Str("a")},
		{Int(1), Str("ab")},
		{Int(1), Str("b")},
		{Int(2), Str("")},
		{Float(2.5), Null()},
		{Int(3), Bool(false)},
		{Int(3), Bool(true)},
		{Str("a"), Int(0)},
	}
	enc := func(t []Value) []byte {
		var b []byte
		for _, v := range t {
			b = v.AppendOrdered(b)
		}
		return b
	}
	lessT := func(a, b []Value) bool {
		for i := range a {
			if a[i].Less(b[i]) {
				return true
			}
			if b[i].Less(a[i]) {
				return false
			}
		}
		return false
	}
	for _, a := range tuples {
		for _, b := range tuples {
			if lessT(a, b) && bytes.Compare(enc(a), enc(b)) >= 0 {
				t.Fatalf("tuple %v < %v but encodings disagree", a, b)
			}
		}
	}
}

func TestOrderedSuccessor(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{nil, nil},
		{[]byte{0x00}, []byte{0x01}},
	}
	for _, c := range cases {
		if got := OrderedSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Fatalf("successor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestDecodeOrderedMalformed(t *testing.T) {
	bad := [][]byte{
		{}, {0x99}, {ordTagNum}, {ordTagNum, 1, 2, 3, 4, 5, 6, 7, 8},
		{ordTagNum, 1, 2, 3, 4, 5, 6, 7, 8, 0x07},
		{ordTagNum, 1, 2, 3, 4, 5, 6, 7, 8, ordNumInt, 1},
		{ordTagString, 'a'}, {ordTagString, 0x00}, {ordTagString, 0x00, 0x02},
		{ordTagBool},
	}
	for _, b := range bad {
		if _, _, err := DecodeOrdered(b); err == nil {
			t.Fatalf("decode %x: expected error", b)
		}
	}
}

package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func probeAll(r *Relation, cols []int, vals []value.Value) []Tuple {
	var out []Tuple
	r.Probe(cols, vals, func(t Tuple, _ int) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

func TestProbeBasic(t *testing.T) {
	r := New("R", "a", "b").Add(1, 10).Add(1, 11).Add(2, 20)
	got := probeAll(r, []int{0}, []value.Value{value.Int(1)})
	if len(got) != 2 {
		t.Fatalf("probe a=1: got %d tuples, want 2", len(got))
	}
	if got := probeAll(r, []int{0}, []value.Value{value.Int(9)}); len(got) != 0 {
		t.Fatalf("probe a=9: got %d tuples, want 0", len(got))
	}
	// Multi-column probe.
	if got := probeAll(r, []int{0, 1}, []value.Value{value.Int(1), value.Int(11)}); len(got) != 1 {
		t.Fatalf("probe (a,b)=(1,11): got %d tuples, want 1", len(got))
	}
}

// TestProbeSeesInsertedTuple is the invalidation contract: probe, insert,
// probe again must reflect the new tuple (the index is rebuilt lazily
// after an insert of a new distinct tuple).
func TestProbeSeesInsertedTuple(t *testing.T) {
	r := New("R", "a", "b").Add(1, 10)
	if got := probeAll(r, []int{0}, []value.Value{value.Int(1)}); len(got) != 1 {
		t.Fatalf("before insert: got %d tuples, want 1", len(got))
	}
	r.Add(1, 99)
	got := probeAll(r, []int{0}, []value.Value{value.Int(1)})
	if len(got) != 2 {
		t.Fatalf("after insert: got %d tuples, want 2 (stale index?)", len(got))
	}
	// A multiplicity bump keeps row slots valid and must be visible too.
	r.Add(1, 99)
	found := false
	r.Probe([]int{0}, []value.Value{value.Int(1)}, func(tp Tuple, m int) bool {
		if tp[1].AsInt() == 99 {
			found = m == 2
		}
		return true
	})
	if !found {
		t.Fatal("multiplicity bump not visible through the index")
	}
}

// TestIncrementalIndexMaintenance pins the probe-insert-probe contract
// for the incremental path: inserts append to every already-built index
// (several column sets at once) instead of dropping them, and the
// appended slots agree with a freshly built index.
func TestIncrementalIndexMaintenance(t *testing.T) {
	r := New("R", "a", "b", "c")
	for i := 0; i < 8; i++ {
		r.Add(i%3, i%2, i)
	}
	// Build three different indexes, then interleave inserts and probes.
	colSets := [][]int{{0}, {1}, {0, 1}}
	for _, cols := range colSets {
		probeAll(r, cols, make([]value.Value, len(cols)))
	}
	for i := 8; i < 40; i++ {
		r.Add(i%3, i%2, i)
		for _, cols := range colSets {
			vals := []value.Value{value.Int(int64(i % 3)), value.Int(int64(i % 2))}[:len(cols)]
			if cols[0] == 1 {
				vals = []value.Value{value.Int(int64(i % 2))}
			}
			got := probeAll(r, cols, vals)
			// Cross-check against a scan with the same key.
			want := 0
			r.Each(func(tp Tuple, _ int) {
				match := true
				for j, c := range cols {
					if tp[c].Key() != vals[j].Key() {
						match = false
						break
					}
				}
				if match {
					want++
				}
			})
			if len(got) != want {
				t.Fatalf("after insert %d: probe %v=%v saw %d tuples, scan saw %d",
					i, cols, vals, len(got), want)
			}
		}
	}
	// A relation whose index was built after the fact must agree.
	fresh := r.Clone()
	for _, cols := range colSets {
		for _, vals := range [][]value.Value{
			{value.Int(0), value.Int(0)}, {value.Int(1), value.Int(1)}, {value.Int(2), value.Int(0)},
		} {
			a := probeAll(r, cols, vals[:len(cols)])
			b := probeAll(fresh, cols, vals[:len(cols)])
			if len(a) != len(b) {
				t.Fatalf("incremental index diverges from fresh build on %v: %d vs %d", cols, len(a), len(b))
			}
		}
	}
}

func TestProbeNumericKeyAlignment(t *testing.T) {
	r := New("R", "a").Add(2)
	if got := probeAll(r, []int{0}, []value.Value{value.Float(2)}); len(got) != 1 {
		t.Fatalf("probe a=2.0 against int 2: got %d tuples, want 1", len(got))
	}
}

func TestProbeEmptyColsIsScan(t *testing.T) {
	r := New("R", "a").Add(1).Add(2)
	if got := probeAll(r, nil, nil); len(got) != 2 {
		t.Fatalf("zero-column probe: got %d tuples, want full scan (2)", len(got))
	}
}

// TestProbeMatchesScanProperty: for random instances and probe values, the
// probe result must equal the filter of a full scan on key equality.
func TestProbeMatchesScanProperty(t *testing.T) {
	f := func(xs []int8, probe int8) bool {
		r := New("R", "x")
		for _, x := range xs {
			r.Add(int(x))
		}
		want := 0
		r.Each(func(tp Tuple, m int) {
			if tp[0].Key() == value.Int(int64(probe)).Key() {
				want += m
			}
		})
		got := 0
		r.Probe([]int{0}, []value.Value{value.Int(int64(probe))}, func(_ Tuple, m int) bool {
			got += m
			return true
		})
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

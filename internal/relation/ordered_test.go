package relation

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/value"
)

// rangeRel builds a relation with mixed-class values in one column.
func rangeRel() *Relation {
	r := New("t", "k", "v")
	r.Add(5, "a")
	r.Add(1, "b")
	r.Add(3, "c")
	r.Add(nil, "null")
	r.Add(2.5, "f")
	r.Add("x", "s1")
	r.Add("m", "s2")
	r.Add(true, "b1")
	r.Add(3, "c") // mult bump
	return r
}

func collectRange(r *Relation, col int, lo, hi value.Value, loIncl, hiIncl bool) []string {
	var out []string
	r.RangeProbe(col, lo, hi, loIncl, hiIncl, func(t Tuple, m int) bool {
		for i := 0; i < m; i++ {
			out = append(out, t[1].AsString())
		}
		return true
	})
	return out
}

func TestRangeProbe(t *testing.T) {
	r := rangeRel()
	cases := []struct {
		lo, hi         value.Value
		loIncl, hiIncl bool
		want           []string
	}{
		// 1 <= k <= 3: ints 1, 3(x2) and float 2.5, ordered by value.
		{value.Int(1), value.Int(3), true, true, []string{"b", "f", "c", "c"}},
		// 1 < k < 3
		{value.Int(1), value.Int(3), false, false, []string{"f"}},
		// k >= 3: numerics only — strings/bools/NULL excluded.
		{value.Int(3), value.Null(), true, false, []string{"c", "c", "a"}},
		// k < 2.6 over numerics.
		{value.Null(), value.Float(2.6), false, false, []string{"b", "f"}},
		// string range.
		{value.Str("a"), value.Str("z"), true, true, []string{"s2", "s1"}},
		// k > "x": nothing above "x".
		{value.Str("x"), value.Null(), false, false, nil},
		// mixed-class bounds: empty.
		{value.Int(0), value.Str("z"), true, true, nil},
	}
	for i, c := range cases {
		got := collectRange(r, 0, c.lo, c.hi, c.loIncl, c.hiIncl)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

// RangeProbe must observe inserts that happened after the index was
// built (generation-based invalidation).
func TestRangeProbeAfterInsert(t *testing.T) {
	r := New("t", "k", "v")
	r.Add(1, "a")
	r.Add(5, "b")
	if got := collectRange(r, 0, value.Int(0), value.Int(9), true, true); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("before insert: %v", got)
	}
	r.Add(3, "c")
	if got := collectRange(r, 0, value.Int(0), value.Int(9), true, true); !reflect.DeepEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("after insert: %v", got)
	}
}

// The journal a hooked store's write set accumulates must replay to the
// same catalog state the commit produced.
func TestCommitHookJournalReplay(t *testing.T) {
	seed := New("t", "a", "b")
	seed.Add(1, "x")
	st := NewStore(seed)

	var logged []LogOp
	var loggedGen uint64
	st.SetCommitHook(func(gen uint64, ops []LogOp) error {
		loggedGen = gen
		logged = append(logged, ops...)
		return nil
	})

	ws := st.Begin()
	if err := ws.Create("u", []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := ws.Insert("u", Tuple{value.Int(7)}, 2); err != nil {
		t.Fatal(err)
	}
	if err := ws.Insert("t", Tuple{value.Int(2), value.Str("y")}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Delete("t", []Tuple{{value.Int(1), value.Str("x")}}); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Commit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if loggedGen != snap.Gen() {
		t.Fatalf("hook gen %d, snapshot gen %d", loggedGen, snap.Gen())
	}

	// Replay against a copy of the base catalog.
	cat := map[string]*Relation{"t": seed.Clone()}
	for _, op := range logged {
		if err := ApplyLogOp(cat, op); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range snap.Rels() {
		got, ok := cat[name]
		if !ok {
			t.Fatalf("replay missing %q", name)
		}
		if !got.EqualBag(want) {
			t.Fatalf("replay of %q diverged:\n%v\nvs\n%v", name, got, want)
		}
	}
	if len(cat) != len(snap.Rels()) {
		t.Fatalf("replay has %d relations, snapshot %d", len(cat), len(snap.Rels()))
	}
}

// A failing hook must abort the commit without publishing.
func TestCommitHookFailureAborts(t *testing.T) {
	st := NewStore(New("t", "a"))
	boom := errors.New("disk on fire")
	st.SetCommitHook(func(uint64, []LogOp) error { return boom })
	ws := st.Begin()
	if err := ws.Insert("t", Tuple{value.Int(1)}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(ws); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want wrapped hook error", err)
	}
	if st.Head().Relation("t").Card() != 0 {
		t.Fatal("aborted commit became visible")
	}
	if st.Gen() != 1 {
		t.Fatalf("generation advanced to %d on aborted commit", st.Gen())
	}
}

func TestNewStoreAt(t *testing.T) {
	st := NewStoreAt(41, New("t", "a"))
	if st.Gen() != 41 {
		t.Fatalf("gen = %d, want 41", st.Gen())
	}
	ws := st.Begin()
	if err := ws.Insert("t", Tuple{value.Int(1)}, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Commit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gen() != 42 {
		t.Fatalf("post-commit gen = %d, want 42", snap.Gen())
	}
}

package relation

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/value"
)

func tup(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Lift(v)
	}
	return t
}

func TestStoreSnapshotIsolation(t *testing.T) {
	r := New("e", "src", "dst")
	r.Add(1, 2).Add(2, 3)
	st := NewStore(r)

	before := st.Head()
	if before.Gen() != 1 {
		t.Fatalf("initial gen = %d, want 1", before.Gen())
	}

	ws := st.Begin()
	if err := ws.Insert("e", tup(3, 4), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Delete("e", []Tuple{tup(1, 2)}); err != nil {
		t.Fatal(err)
	}

	// Uncommitted writes are invisible to the head snapshot…
	if got := before.Relation("e").Card(); got != 2 {
		t.Fatalf("pre-commit head card = %d, want 2", got)
	}
	// …but visible through the write set's overlay (read-your-writes).
	ov := ws.Relation("e")
	if !ov.Contains(tup(3, 4)) || ov.Contains(tup(1, 2)) {
		t.Fatalf("overlay does not reflect the write set: %v", ov)
	}

	after, err := st.Commit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if after.Gen() != 2 {
		t.Fatalf("post-commit gen = %d, want 2", after.Gen())
	}
	// The pre-commit snapshot is immutable: it still shows the old data.
	if before.Relation("e").Contains(tup(3, 4)) || !before.Relation("e").Contains(tup(1, 2)) {
		t.Fatalf("old snapshot mutated by commit")
	}
	got := st.Head().Relation("e")
	if !got.Contains(tup(3, 4)) || got.Contains(tup(1, 2)) {
		t.Fatalf("head snapshot missing committed writes: %v", got)
	}
}

func TestStoreFirstCommitterWins(t *testing.T) {
	r := New("t", "x")
	r.Add(1)
	st := NewStore(r)

	a := st.Begin()
	b := st.Begin()
	if err := a.Insert("t", tup(2), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("t", tup(3), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(a); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if _, err := st.Commit(b); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	// b's writes must not have leaked.
	if st.Head().Relation("t").Contains(tup(3)) {
		t.Fatalf("losing transaction's writes leaked into the head")
	}
}

func TestStoreDisjointWritersDoNotConflict(t *testing.T) {
	st := NewStore(New("a", "x"), New("b", "x"))
	wa, wb := st.Begin(), st.Begin()
	if err := wa.Insert("a", tup(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := wb.Insert("b", tup(2), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(wa); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(wb); err != nil {
		t.Fatalf("disjoint writer conflicted: %v", err)
	}
	h := st.Head()
	if !h.Relation("a").Contains(tup(1)) || !h.Relation("b").Contains(tup(2)) {
		t.Fatalf("lost a disjoint write")
	}
}

func TestStoreCreateAndConflictOnCreate(t *testing.T) {
	st := NewStore()
	a, b := st.Begin(), st.Begin()
	if err := a.Create("t", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Insert("t", tup(1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Create("t", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(b); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent CREATE of the same name got %v, want ErrConflict", err)
	}
	if got := st.Head().Relation("t").Arity(); got != 2 {
		t.Fatalf("surviving arity = %d, want 2 (first committer)", got)
	}
	// Creating an existing name inside a new write set fails eagerly.
	c := st.Begin()
	if err := c.Create("t", []string{"z"}); err == nil {
		t.Fatal("Create over an existing relation succeeded")
	}
}

func TestStoreDeleteCountsMultiplicity(t *testing.T) {
	r := New("t", "x")
	r.Add(1).Add(1).Add(2)
	st := NewStore(r)
	ws := st.Begin()
	n, err := ws.Delete("t", []Tuple{tup(1), tup(9)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d occurrences, want 2", n)
	}
	if _, err := st.Commit(ws); err != nil {
		t.Fatal(err)
	}
	h := st.Head().Relation("t")
	if h.Contains(tup(1)) || !h.Contains(tup(2)) {
		t.Fatalf("delete applied wrongly: %v", h)
	}
}

func TestStoreApplyUpsertsWithoutConflict(t *testing.T) {
	st := NewStore(New("t", "x"))
	ws := st.Begin()
	if err := ws.Insert("t", tup(1), 1); err != nil {
		t.Fatal(err)
	}
	repl := New("t", "x", "y")
	repl.Add(7, 8)
	st.Apply(repl) // Register path: unconditional replace
	if _, err := st.Commit(ws); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit over an Apply got %v, want ErrConflict", err)
	}
	if got := st.Head().Relation("t").Arity(); got != 2 {
		t.Fatalf("Apply did not replace the relation")
	}
}

func TestStoreEmptyCommitIsNoOp(t *testing.T) {
	st := NewStore(New("t", "x"))
	gen := st.Gen()
	snap, err := st.Commit(st.Begin())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gen() != gen || st.Gen() != gen {
		t.Fatalf("empty commit bumped the generation")
	}
}

func TestStoreConcurrentCommitsRace(t *testing.T) {
	st := NewStore(New("t", "x"))
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for {
					ws := st.Begin()
					if err := ws.Insert("t", Tuple{value.Int(int64(w*1000 + i))}, 1); err != nil {
						t.Error(err)
						return
					}
					if _, err := st.Commit(ws); err == nil {
						break
					} else if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := st.Head().Relation("t").Card(); got != writers*50 {
		t.Fatalf("head card = %d, want %d", got, writers*50)
	}
}

func TestRelationRemoveKeys(t *testing.T) {
	r := New("t", "x", "y")
	r.Add(1, 1).Add(2, 2).Add(2, 2).Add(3, 3)
	// Warm a hash index so removal must invalidate it.
	found := 0
	r.Probe([]int{0}, []value.Value{value.Int(2)}, func(Tuple, int) bool { found++; return true })
	if found != 1 {
		t.Fatalf("probe found %d rows, want 1", found)
	}
	n := r.RemoveKeys(map[string]struct{}{tup(2, 2).Key(): {}})
	if n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if r.Contains(tup(2, 2)) || !r.Contains(tup(1, 1)) || !r.Contains(tup(3, 3)) {
		t.Fatalf("wrong rows survived: %v", r)
	}
	found = 0
	r.Probe([]int{0}, []value.Value{value.Int(2)}, func(Tuple, int) bool { found++; return true })
	if found != 0 {
		t.Fatalf("stale hash index: probe found %d rows after removal", found)
	}
	// The index is rebuilt consistently: re-inserting works.
	r.Add(2, 2)
	if r.Mult(tup(2, 2)) != 1 {
		t.Fatalf("re-insert after RemoveKeys broken")
	}
	if r.RemoveKeys(map[string]struct{}{"nope": {}}) != 0 {
		t.Fatalf("removing an absent key reported removals")
	}
}

// TestStoreDrop pins WriteSet.Drop: the relation vanishes from the
// overlay and (after commit) the head, a concurrent writer to the
// dropped relation loses first-committer-wins, and dropping an unknown
// relation errors.
func TestStoreDrop(t *testing.T) {
	r := New("e", "x")
	r.Add(1)
	st := NewStore(r, New("keep", "y"))

	ws := st.Begin()
	if err := ws.Drop("e"); err != nil {
		t.Fatal(err)
	}
	if ws.Relation("e") != nil {
		t.Fatal("dropped relation still visible through the overlay")
	}
	if _, ok := ws.Rels()["e"]; ok {
		t.Fatal("dropped relation still listed by Rels")
	}
	if err := ws.Insert("e", tup(2), 1); err == nil {
		t.Fatal("insert into dropped relation succeeded")
	}
	if err := ws.Drop("nope"); err == nil {
		t.Fatal("dropping an unknown relation succeeded")
	}

	// A writer that began before the drop commits and touches e must
	// conflict once the drop lands.
	loser := st.Begin()
	if err := loser.Insert("e", tup(9), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(ws); err != nil {
		t.Fatal(err)
	}
	if st.Head().Relation("e") != nil {
		t.Fatal("dropped relation survives at head")
	}
	if st.Head().Relation("keep") == nil {
		t.Fatal("unrelated relation was dropped too")
	}
	if _, err := st.Commit(loser); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent write to dropped relation: err = %v, want ErrConflict", err)
	}
}

// TestStoreStats pins the commit-path counters: Gen doubles as the
// published-snapshot count, Commits counts successes, Conflicts counts
// first-committer-wins losses.
func TestStoreStats(t *testing.T) {
	st := NewStore(New("a", "x"))
	if s := st.Stats(); s.Gen != 1 || s.Commits != 0 || s.Conflicts != 0 {
		t.Fatalf("fresh stats = %+v", s)
	}
	w1 := st.Begin()
	w2 := st.Begin()
	if err := w1.Insert("a", tup(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Insert("a", tup(2), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(w2); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer won: %v", err)
	}
	s := st.Stats()
	if s.Gen != 2 || s.Commits != 1 || s.Conflicts != 1 {
		t.Fatalf("stats after one win + one loss = %+v", s)
	}
}

package relation

import (
	"sync"
	"testing"

	"repro/internal/value"
)

// TestConcurrentProbeInsertProbe is the -race stress test for the
// relation's locking discipline: writers insert (both new distinct tuples,
// which extend every cached index, and repeats, which bump multiplicities
// atomically) while readers concurrently probe — triggering lazy index
// builds from several goroutines at once — and scan. Run under -race this
// pins that lazy builds, incremental index maintenance, and multiplicity
// bumps never tear.
func TestConcurrentProbeInsertProbe(t *testing.T) {
	r := New("R", "a", "b")
	for i := 0; i < 64; i++ {
		r.Add(i%8, i)
	}
	const writers, readers, rounds = 4, 8, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Alternate new distinct tuples with multiplicity bumps on
				// existing ones.
				if i%2 == 0 {
					r.Add(i%8, 1000+w*rounds+i)
				} else {
					r.InsertMult(Tuple{Lift(i % 8), Lift(i % 64)}, 1)
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			probe := []value.Value{Lift(g % 8)}
			cols := []int{0}
			if g%2 == 1 {
				// A second column set forces a distinct lazy index build.
				cols = []int{1}
				probe = []value.Value{Lift(g)}
			}
			for i := 0; i < rounds; i++ {
				n := 0
				r.Probe(cols, probe, func(tup Tuple, m int) bool {
					if m <= 0 {
						t.Errorf("non-positive multiplicity %d", m)
						return false
					}
					n++
					return true
				})
				r.EachWhile(func(tup Tuple, m int) bool { return len(tup) == 2 })
				_ = r.Card()
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles, a probe must see every row a scan sees.
	for k := 0; k < 8; k++ {
		scan := 0
		r.Each(func(tup Tuple, m int) {
			if tup[0].Key() == Lift(k).Key() {
				scan += m
			}
		})
		probed := 0
		r.Probe([]int{0}, []value.Value{Lift(k)}, func(_ Tuple, m int) bool {
			probed += m
			return true
		})
		if scan != probed {
			t.Fatalf("key %d: scan sees %d occurrences, probe sees %d", k, scan, probed)
		}
	}
}

// TestProbeCallbackMayInsert pins the re-entrancy the fixpoint engine
// depends on: a Probe callback inserting new tuples into the relation
// being probed must neither deadlock nor corrupt the indexes, and the
// inserted tuples must be visible to the next probe.
func TestProbeCallbackMayInsert(t *testing.T) {
	r := New("E", "s", "d")
	r.Add(0, 1)
	probe := func(k int) []Tuple {
		var out []Tuple
		r.Probe([]int{0}, []value.Value{Lift(k)}, func(tup Tuple, _ int) bool {
			out = append(out, tup.Clone())
			return true
		})
		return out
	}
	// Derive one chain hop per probe, inserting mid-iteration.
	r.Probe([]int{0}, []value.Value{Lift(0)}, func(tup Tuple, _ int) bool {
		r.Insert(Tuple{tup[1], Lift(2)})
		return true
	})
	if got := probe(1); len(got) != 1 {
		t.Fatalf("tuple inserted during probe not visible afterwards: %v", got)
	}
	if !r.Contains(Tuple{Lift(1), Lift(2)}) {
		t.Fatalf("inserted tuple missing")
	}
	// Generation must have advanced once per distinct tuple.
	if g := r.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
}

package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestNewAndMeta(t *testing.T) {
	r := New("R", "A", "B")
	if r.Name() != "R" || r.Arity() != 2 {
		t.Fatal("metadata broken")
	}
	if r.AttrIndex("A") != 0 || r.AttrIndex("B") != 1 || r.AttrIndex("C") != -1 {
		t.Fatal("AttrIndex broken")
	}
}

func TestDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute must panic")
		}
	}()
	New("R", "A", "A")
}

func TestInsertAndMultiplicity(t *testing.T) {
	r := New("R", "A")
	r.Add(1).Add(1).Add(2)
	if r.Distinct() != 2 || r.Card() != 3 {
		t.Fatalf("distinct=%d card=%d", r.Distinct(), r.Card())
	}
	if r.Mult(Tuple{value.Int(1)}) != 2 || r.Mult(Tuple{value.Int(3)}) != 0 {
		t.Fatal("Mult broken")
	}
	if !r.Contains(Tuple{value.Int(2)}) {
		t.Fatal("Contains broken")
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	New("R", "A", "B").Insert(Tuple{value.Int(1)})
}

func TestLift(t *testing.T) {
	if !Lift(nil).IsNull() {
		t.Error("nil → NULL")
	}
	if Lift(3).AsInt() != 3 || Lift(int64(4)).AsInt() != 4 {
		t.Error("int lifting")
	}
	if Lift(2.5).AsFloat() != 2.5 {
		t.Error("float lifting")
	}
	if Lift("x").AsString() != "x" {
		t.Error("string lifting")
	}
	if !Lift(true).AsBool() {
		t.Error("bool lifting")
	}
	if Lift(value.Int(9)).AsInt() != 9 {
		t.Error("value pass-through")
	}
}

func TestDedupAndClone(t *testing.T) {
	r := New("R", "A").Add(1).Add(1).Add(2)
	d := r.Dedup()
	if d.Card() != 2 || d.Distinct() != 2 {
		t.Fatal("Dedup broken")
	}
	c := r.Clone()
	c.Add(5)
	if r.Contains(Tuple{value.Int(5)}) {
		t.Fatal("Clone must be deep")
	}
	if r.Card() != 3 {
		t.Fatal("original modified")
	}
}

func TestUnionAll(t *testing.T) {
	a := New("A", "X").Add(1).Add(2)
	b := New("B", "X").Add(2).Add(3)
	a.UnionAll(b)
	if a.Card() != 4 || a.Mult(Tuple{value.Int(2)}) != 2 {
		t.Fatal("UnionAll broken")
	}
}

func TestProject(t *testing.T) {
	r := New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 10)
	p := r.Project("A")
	// Bag projection keeps multiplicities: A=1 occurs twice.
	if p.Card() != 3 || p.Mult(Tuple{value.Int(1)}) != 2 {
		t.Fatalf("bag projection: card=%d mult(1)=%d", p.Card(), p.Mult(Tuple{value.Int(1)}))
	}
	if p.Arity() != 1 || p.Attrs()[0] != "A" {
		t.Fatal("projection schema broken")
	}
}

func TestRename(t *testing.T) {
	r := New("R", "A").Add(1)
	s := r.Rename("S", []string{"Z"})
	if s.Name() != "S" || s.AttrIndex("Z") != 0 {
		t.Fatal("Rename broken")
	}
	k := r.Rename("K", nil)
	if k.AttrIndex("A") != 0 {
		t.Fatal("Rename with nil attrs keeps names")
	}
}

func TestEqualSetBag(t *testing.T) {
	a := New("A", "X").Add(1).Add(1).Add(2)
	b := New("B", "Y").Add(2).Add(1)
	if !a.EqualSet(b) {
		t.Fatal("set-equal ignoring multiplicity and names")
	}
	if a.EqualBag(b) {
		t.Fatal("bag-unequal: multiplicities differ")
	}
	b.Add(1)
	if !a.EqualBag(b) {
		t.Fatal("bag-equal after matching multiplicities")
	}
	c := New("C", "X", "Y").Add(1, 2)
	if a.EqualSet(c) {
		t.Fatal("arity mismatch can never be equal")
	}
}

func TestNullsInTuples(t *testing.T) {
	r := New("R", "A", "B").Add(1, nil).Add(1, nil)
	if r.Distinct() != 1 || r.Card() != 2 {
		t.Fatal("NULL-containing tuples group for storage purposes")
	}
}

func TestStringRendering(t *testing.T) {
	r := New("R", "A", "B").Add(2, "b").Add(1, "a")
	s := r.String()
	if !strings.Contains(s, "R:") || !strings.Contains(s, "A") {
		t.Fatalf("render missing header: %s", s)
	}
	// Canonical order: 1 before 2.
	if strings.Index(s, "1") > strings.Index(s, "2") {
		t.Fatalf("rows not canonically sorted:\n%s", s)
	}
	// Multiplicity column appears only with dups.
	if strings.Contains(s, "#") {
		t.Fatalf("no multiplicity column expected:\n%s", s)
	}
	r.Add(1, "a")
	if !strings.Contains(r.String(), "#") {
		t.Fatal("multiplicity column expected once duplicated")
	}
}

func TestTupleKeyAndClone(t *testing.T) {
	a := Tuple{value.Int(1), value.Str("x")}
	b := Tuple{value.Int(1), value.Str("x")}
	if a.Key() != b.Key() {
		t.Fatal("equal tuples share keys")
	}
	c := a.Clone()
	c[0] = value.Int(9)
	if a[0].AsInt() != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestDedupIdempotentProperty(t *testing.T) {
	// Property: Dedup is idempotent and Dedup preserves the distinct set.
	f := func(xs []int8) bool {
		r := New("R", "A")
		for _, x := range xs {
			r.Add(int(x))
		}
		d := r.Dedup()
		return d.EqualSet(r) && d.Dedup().EqualBag(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionAllCardinalityProperty(t *testing.T) {
	// Property: |A ⊎ B| = |A| + |B| under bags.
	f := func(xs, ys []int8) bool {
		a := New("A", "X")
		for _, x := range xs {
			a.Add(int(x))
		}
		b := New("B", "X")
		for _, y := range ys {
			b.Add(int(y))
		}
		ca, cb := a.Card(), b.Card()
		a.UnionAll(b)
		return a.Card() == ca+cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

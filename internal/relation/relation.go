// Package relation implements flat relations in the named perspective the
// paper argues for (Section 2.1): tuples are accessed by attribute name,
// never by position, and every relation carries multiplicities so the same
// instance can be interpreted under set or bag semantics — the paper's
// point that set vs bag is a convention, not part of the language
// (Section 2.7).
//
// Concurrency contract: a Relation is safe for concurrent use. Readers
// (Probe, Each, Mult, …) snapshot the row store under a read lock and then
// iterate without holding it, so reader callbacks may re-enter the
// relation — including inserting into the relation being iterated, the
// pattern the semi-naive fixpoint engine relies on. Writers (InsertMult)
// hold the write lock for the whole mutation, including the incremental
// maintenance of every cached hash index. Multiplicity bumps of existing
// rows are atomic, so an unlocked reader iterating a snapshot observes
// either the old or the new count, never a torn value. Iteration sees the
// relation as of the snapshot; tuples inserted while a reader is mid-
// iteration appear in subsequent probes/scans (the probe-insert-probe
// semantics the index tests pin).
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Tuple is one row of a relation; values align with the relation's Attrs.
type Tuple []value.Value

// Key returns a hashable identity for the tuple.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// AppendKey appends the tuple's Key encoding to b — the allocation-free
// form used with reusable buffers on hashing hot paths.
func (t Tuple) AppendKey(b []byte) []byte {
	for _, v := range t {
		b = v.AppendKey(b)
		b = append(b, '\x1f')
	}
	return b
}

// Clone returns a copy that the caller may retain.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// row is one stored distinct tuple. mult is accessed atomically: readers
// iterate snapshots of the rows slice without holding the relation lock,
// while a writer may bump the count of an existing row in place.
type row struct {
	tup  Tuple
	mult int64
}

// Relation is a multiset of tuples over a fixed attribute list. The zero
// value is not usable; construct with New. Insertion order is preserved
// for deterministic iteration; canonical comparisons sort.
type Relation struct {
	name  string
	attrs []string
	pos   map[string]int // attribute name -> column

	// mu guards rows, index, and hashIdx. gen counts distinct-tuple
	// insertions (the tuple generation plan caches key on) and is read
	// without the lock.
	mu    sync.RWMutex
	gen   atomic.Uint64
	rows  []row
	index map[string]int // tuple key -> rows slot
	// hashIdx caches per-column-set hash indexes for Probe: column-set
	// signature -> index. Built lazily under the write lock and maintained
	// incrementally: inserting a new distinct tuple appends its slot to
	// every cached index's bucket (multiplicity bumps keep slots valid
	// as-is), so the semi-naive Datalog delta loop and other insert-heavy
	// workloads never pay for wholesale rebuilds.
	hashIdx map[string]*hashIndex
	// ordIdx caches per-column sorted indexes for RangeProbe (see
	// ordered.go). Unlike hashIdx they are invalidated wholesale by any
	// generation bump rather than maintained incrementally.
	ordIdx map[int]*orderedIndex
}

// hashIndex is one cached per-column-set hash index.
type hashIndex struct {
	cols    []int
	buckets map[string][]int // column-values key -> row slots
}

// add appends a newly inserted row slot to the index's bucket.
func (ix *hashIndex) add(t Tuple, slot int) {
	var kb [64]byte
	buf := kb[:0]
	for _, c := range ix.cols {
		buf = t[c].AppendKey(buf)
		buf = append(buf, '\x1f')
	}
	ix.buckets[string(buf)] = append(ix.buckets[string(buf)], slot)
}

// smallAttrs is the widest schema resolved by linear scan instead of a
// positions map — relations are created on every query execution, and a
// scan over a handful of names beats allocating a map.
const smallAttrs = 8

// New returns an empty relation with the given name and attributes.
// Attribute names must be unique. The internal maps (attribute
// positions, the distinct-tuple index) are created lazily, so tiny
// result relations — the per-query common case — stay allocation-light.
func New(name string, attrs ...string) *Relation {
	r := &Relation{
		name:  name,
		attrs: append([]string(nil), attrs...),
	}
	if len(attrs) > smallAttrs {
		r.pos = make(map[string]int, len(attrs))
		for i, a := range attrs {
			if _, dup := r.pos[a]; dup {
				panic(fmt.Sprintf("relation %s: duplicate attribute %q", name, a))
			}
			r.pos[a] = i
		}
		return r
	}
	for i, a := range attrs {
		for j := 0; j < i; j++ {
			if attrs[j] == a {
				panic(fmt.Sprintf("relation %s: duplicate attribute %q", name, a))
			}
		}
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the attribute list (callers must not mutate it).
func (r *Relation) Attrs() []string { return r.attrs }

// AttrIndex returns the column of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int {
	if r.pos != nil {
		if i, ok := r.pos[a]; ok {
			return i
		}
		return -1
	}
	for i, x := range r.attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Generation returns the tuple generation: a counter bumped once per
// distinct tuple ever inserted. Plan and statement caches key on it to
// detect data changes without comparing contents.
func (r *Relation) Generation() uint64 { return r.gen.Load() }

// Insert adds one occurrence of t.
func (r *Relation) Insert(t Tuple) { r.InsertMult(t, 1) }

// InsertMult adds n occurrences of t. n must be positive. The tuple is
// copied; see InsertOwned for the transfer-of-ownership variant.
func (r *Relation) InsertMult(t Tuple, n int) { r.insert(t, n, false) }

// InsertOwned adds n occurrences of t, taking ownership of the tuple's
// backing array — the caller must not reuse or mutate it afterwards.
// The allocation-free sibling of InsertMult for producers that build a
// fresh tuple per row (the plan layer's projections).
func (r *Relation) InsertOwned(t Tuple, n int) { r.insert(t, n, true) }

// insert is the shared insertion path. The distinct-tuple index map is
// deferred until the second distinct tuple arrives, so empty and
// single-row relations (point-lookup results) never allocate it.
func (r *Relation) insert(t Tuple, n int, owned bool) {
	if len(t) != len(r.attrs) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.name, len(t), len(r.attrs)))
	}
	if n <= 0 {
		panic("InsertMult: non-positive multiplicity")
	}
	var kb [128]byte
	buf := t.AppendKey(kb[:0])
	stored := t
	if !owned {
		stored = t.Clone()
	}
	r.mu.Lock()
	if r.index == nil {
		// index == nil implies at most one stored row.
		if len(r.rows) == 1 {
			var kb0 [128]byte
			if string(r.rows[0].tup.AppendKey(kb0[:0])) == string(buf) {
				atomic.AddInt64(&r.rows[0].mult, int64(n))
				r.mu.Unlock()
				return
			}
			r.index = map[string]int{r.rows[0].tup.Key(): 0}
		} else if len(r.rows) == 0 {
			r.rows = append(r.rows, row{tup: stored, mult: int64(n)})
			for _, ix := range r.hashIdx {
				ix.add(stored, 0)
			}
			r.gen.Add(1)
			r.mu.Unlock()
			return
		}
	}
	if i, ok := r.index[string(buf)]; ok {
		// Atomic: unlocked readers may be reading this row's count from
		// an earlier snapshot of the rows slice.
		atomic.AddInt64(&r.rows[i].mult, int64(n))
		r.mu.Unlock()
		return
	}
	slot := len(r.rows)
	if r.index == nil {
		r.index = make(map[string]int)
	}
	r.index[string(buf)] = slot
	r.rows = append(r.rows, row{tup: stored, mult: int64(n)})
	// New distinct tuple: maintain the cached hash indexes incrementally
	// instead of dropping them.
	for _, ix := range r.hashIdx {
		ix.add(stored, slot)
	}
	r.gen.Add(1)
	r.mu.Unlock()
}

// RemoveKeys deletes every stored tuple whose Key() is in keys, returning
// the number of row occurrences removed (counting multiplicity). The row
// store and distinct-tuple index are rebuilt compactly and all cached
// hash indexes dropped, so it is meant for transaction-local working
// copies (the MVCC write path), not for relations concurrent readers may
// hold snapshots of — a deletion is published by committing the working
// copy as a new snapshot, never by mutating a shared relation in place.
func (r *Relation) RemoveKeys(keys map[string]struct{}) int {
	if len(keys) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	kept := r.rows[:0]
	var kb [128]byte
	for i := range r.rows {
		if _, hit := keys[string(r.rows[i].tup.AppendKey(kb[:0]))]; hit {
			removed += int(atomic.LoadInt64(&r.rows[i].mult))
			continue
		}
		kept = append(kept, r.rows[i])
	}
	if removed == 0 {
		return 0
	}
	r.rows = kept
	if r.index != nil {
		r.index = make(map[string]int, len(kept))
		for i := range kept {
			r.index[string(kept[i].tup.AppendKey(kb[:0]))] = i
		}
	}
	r.hashIdx = nil
	r.ordIdx = nil
	r.gen.Add(1)
	return removed
}

// Add is a convenience builder: it converts Go literals (int, int64,
// float64, string, bool, nil, value.Value) into values and inserts the
// tuple, returning r for chaining.
func (r *Relation) Add(vals ...any) *Relation {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Lift(v)
	}
	r.Insert(t)
	return r
}

// Lift converts a Go literal into a value.Value. nil becomes NULL. It
// panics on unsupported types — for internal literals only; code lifting
// client-influenced values (engine bind arguments, server frame decoding)
// must use LiftErr so a hostile input becomes an error, not a crash.
func Lift(v any) value.Value {
	lv, err := LiftErr(v)
	if err != nil {
		panic(fmt.Sprintf("Lift: %v", err))
	}
	return lv
}

// LiftErr converts a Go literal into a value.Value, returning an error on
// unsupported types — the API-boundary sibling of Lift.
func LiftErr(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null(), nil
	case value.Value:
		return x, nil
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	}
	return value.Value{}, fmt.Errorf("unsupported literal type %T", v)
}

// Mult returns the multiplicity of t (0 if absent).
func (r *Relation) Mult(t Tuple) int {
	var kb [128]byte
	buf := t.AppendKey(kb[:0])
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.index == nil {
		// At most one stored row (the deferred-index state).
		if len(r.rows) == 1 {
			var kb0 [128]byte
			if string(r.rows[0].tup.AppendKey(kb0[:0])) == string(buf) {
				return int(atomic.LoadInt64(&r.rows[0].mult))
			}
		}
		return 0
	}
	if i, ok := r.index[string(buf)]; ok {
		return int(atomic.LoadInt64(&r.rows[i].mult))
	}
	return 0
}

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t Tuple) bool { return r.Mult(t) > 0 }

// Distinct returns the number of distinct tuples.
func (r *Relation) Distinct() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// Card returns the total number of tuples counting multiplicity.
func (r *Relation) Card() int {
	rows := r.snapshot()
	n := 0
	for i := range rows {
		n += int(atomic.LoadInt64(&rows[i].mult))
	}
	return n
}

// snapshot captures the current rows slice header under the read lock.
// The rows it covers are immutable except for their atomic multiplicity
// counts, so the caller may iterate without holding the lock — which
// keeps callbacks free to re-enter the relation.
func (r *Relation) snapshot() []row {
	r.mu.RLock()
	rows := r.rows
	r.mu.RUnlock()
	return rows
}

// Each calls f once per distinct tuple with its multiplicity, in insertion
// order. f must not retain the tuple beyond the call unless it clones.
func (r *Relation) Each(f func(Tuple, int)) {
	rows := r.snapshot()
	for i := range rows {
		f(rows[i].tup, int(atomic.LoadInt64(&rows[i].mult)))
	}
}

// EachWhile calls f per distinct tuple with its multiplicity, in insertion
// order, stopping early when f returns false.
func (r *Relation) EachWhile(f func(Tuple, int) bool) {
	rows := r.snapshot()
	for i := range rows {
		if !f(rows[i].tup, int(atomic.LoadInt64(&rows[i].mult))) {
			return
		}
	}
}

// KeyOf returns the probe key of a value list — the identity Probe indexes
// by, consistent with Tuple.Key on the projected columns.
func KeyOf(vals []value.Value) string { return Tuple(vals).Key() }

// smallSigs precomputes the signatures of single-column indexes on the
// first 16 columns — the overwhelmingly common probe shape — so hot
// probes never allocate the signature string.
var smallSigs = [16]string{
	"0,", "1,", "2,", "3,", "4,", "5,", "6,", "7,",
	"8,", "9,", "10,", "11,", "12,", "13,", "14,", "15,",
}

// indexSig renders the column-set signature hash indexes are cached by.
func indexSig(cols []int) string {
	if len(cols) == 1 && cols[0] >= 0 && cols[0] < len(smallSigs) {
		return smallSigs[cols[0]]
	}
	sig := make([]byte, 0, 16)
	for _, c := range cols {
		sig = strconv.AppendInt(sig, int64(c), 10)
		sig = append(sig, ',')
	}
	return string(sig)
}

// hashIndexForLocked returns the hash index on the given column set,
// building it on first use; afterwards InsertMult maintains it
// incrementally. The caller must hold the write lock.
func (r *Relation) hashIndexForLocked(sig string, cols []int) *hashIndex {
	if ix, ok := r.hashIdx[sig]; ok {
		return ix
	}
	ix := &hashIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]int, len(r.rows)),
	}
	for slot := range r.rows {
		ix.add(r.rows[slot].tup, slot)
	}
	if r.hashIdx == nil {
		r.hashIdx = make(map[string]*hashIndex)
	}
	r.hashIdx[sig] = ix
	return ix
}

// Probe calls f for each distinct tuple whose values at cols equal vals
// (by value key, so 2 and 2.0 match), with its multiplicity, in insertion
// order; f returning false stops the probe. It uses a lazy per-column-set
// hash index that survives multiplicity bumps and is maintained
// incrementally on inserts of new distinct tuples, so a probe after an
// insert sees the new tuple without a rebuild. The bucket is captured
// under the lock and iterated without it, so f may insert into r.
//
// Probe identity is value.Key, which agrees with value.Eq for every
// probe value whose Indexable() is true; callers probing with
// non-indexable values (integral numerics beyond 2^53, where Eq's float
// coercion collapses distinct integers) must fall back to a scan with an
// Eq re-check, as the evaluators do.
func (r *Relation) Probe(cols []int, vals []value.Value, f func(Tuple, int) bool) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("Probe: %d columns, %d values", len(cols), len(vals)))
	}
	if len(cols) == 0 {
		r.EachWhile(f)
		return
	}
	var kb [64]byte
	buf := Tuple(vals).AppendKey(kb[:0])
	sig := indexSig(cols)

	// Fast path: the index already exists — capture its bucket and the
	// rows header under the read lock. Slow path: build the index under
	// the write lock (double-checked; another goroutine may have built it
	// in between). Both capture rows and bucket under the same lock
	// acquisition, so every slot in the bucket is covered by the header.
	r.mu.RLock()
	ix, ok := r.hashIdx[sig]
	var slots []int
	var rows []row
	if ok {
		slots = ix.buckets[string(buf)]
		rows = r.rows
	}
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		ix = r.hashIndexForLocked(sig, cols)
		slots = ix.buckets[string(buf)]
		rows = r.rows
		r.mu.Unlock()
	}
	for _, slot := range slots {
		if !f(rows[slot].tup, int(atomic.LoadInt64(&rows[slot].mult))) {
			return
		}
	}
}

// Tuples returns the distinct tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	rows := r.snapshot()
	out := make([]Tuple, 0, len(rows))
	for i := range rows {
		out = append(out, rows[i].tup)
	}
	return out
}

// Dedup returns a copy with every multiplicity collapsed to 1 (the
// set-semantics reading of the instance).
func (r *Relation) Dedup() *Relation {
	out := New(r.name, r.attrs...)
	for _, rw := range r.snapshot() {
		out.InsertMult(rw.tup, 1)
	}
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.attrs...)
	rows := r.snapshot()
	for i := range rows {
		out.InsertMult(rows[i].tup, int(atomic.LoadInt64(&rows[i].mult)))
	}
	return out
}

// UnionAll adds every occurrence of o into r (bag union). Arity must match;
// attribute names are taken from r.
func (r *Relation) UnionAll(o *Relation) {
	if o.Arity() != r.Arity() {
		panic(fmt.Sprintf("UnionAll: arity mismatch %d vs %d", r.Arity(), o.Arity()))
	}
	o.Each(func(t Tuple, m int) { r.InsertMult(t, m) })
}

// Rename returns a copy with a new name and (optionally) new attribute
// names; pass nil attrs to keep them.
func (r *Relation) Rename(name string, attrs []string) *Relation {
	if attrs == nil {
		attrs = r.attrs
	}
	out := New(name, attrs...)
	rows := r.snapshot()
	for i := range rows {
		out.InsertMult(rows[i].tup, int(atomic.LoadInt64(&rows[i].mult)))
	}
	return out
}

// Project returns the projection onto the named attributes, keeping bag
// multiplicities (no dedup; dedup is a γ in the calculus, per Section 2.7).
func (r *Relation) Project(attrs ...string) *Relation {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c := r.AttrIndex(a)
		if c < 0 {
			panic(fmt.Sprintf("Project: relation %s has no attribute %q", r.name, a))
		}
		cols[i] = c
	}
	out := New(r.name, attrs...)
	rows := r.snapshot()
	for i := range rows {
		t := make(Tuple, len(cols))
		for j, c := range cols {
			t[j] = rows[i].tup[c]
		}
		out.InsertMult(t, int(atomic.LoadInt64(&rows[i].mult)))
	}
	return out
}

// sortedRows returns (tuple, mult) pairs sorted by key, for canonical
// comparison and printing. Multiplicities are loaded once, so the result
// is a consistent-enough snapshot for display.
func (r *Relation) sortedRows() []row {
	src := r.snapshot()
	rs := make([]row, len(src))
	for i := range src {
		rs[i] = row{tup: src[i].tup, mult: atomic.LoadInt64(&src[i].mult)}
	}
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].tup, rs[j].tup
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Less(b[k]) {
				return true
			}
			if b[k].Less(a[k]) {
				return false
			}
		}
		return len(a) < len(b)
	})
	return rs
}

// EqualSet reports whether r and o contain the same distinct tuples,
// ignoring multiplicities, names, and attribute names (positional content
// comparison, the standard notion for query-result equivalence tests).
func (r *Relation) EqualSet(o *Relation) bool {
	if r.Arity() != o.Arity() {
		return false
	}
	rows := r.snapshot()
	if len(rows) != o.Distinct() {
		return false
	}
	for i := range rows {
		if !o.Contains(rows[i].tup) {
			return false
		}
	}
	return true
}

// EqualBag reports whether r and o contain the same tuples with the same
// multiplicities.
func (r *Relation) EqualBag(o *Relation) bool {
	if r.Arity() != o.Arity() {
		return false
	}
	rows := r.snapshot()
	if len(rows) != o.Distinct() {
		return false
	}
	for i := range rows {
		if o.Mult(rows[i].tup) != int(atomic.LoadInt64(&rows[i].mult)) {
			return false
		}
	}
	return true
}

// String renders the relation as an aligned table with multiplicities
// shown when any exceeds 1, sorted canonically — the format used by the
// experiment harness and goldens.
func (r *Relation) String() string {
	sorted := r.sortedRows()
	showMult := false
	for i := range sorted {
		if sorted[i].mult != 1 {
			showMult = true
			break
		}
	}
	header := make([]string, len(r.attrs))
	copy(header, r.attrs)
	if showMult {
		header = append(header, "#")
	}
	rows := [][]string{header}
	for _, rw := range sorted {
		cells := make([]string, 0, len(rw.tup)+1)
		for _, v := range rw.tup {
			cells = append(cells, v.String())
		}
		if showMult {
			cells = append(cells, fmt.Sprintf("%d", rw.mult))
		}
		rows = append(rows, cells)
	}
	width := make([]int, len(header))
	for _, cs := range rows {
		for i, c := range cs {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.name)
	for ri, cs := range rows {
		b.WriteString("  ")
		for i, c := range cs {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			b.WriteString("  ")
			for _, w := range width {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Package relation implements flat relations in the named perspective the
// paper argues for (Section 2.1): tuples are accessed by attribute name,
// never by position, and every relation carries multiplicities so the same
// instance can be interpreted under set or bag semantics — the paper's
// point that set vs bag is a convention, not part of the language
// (Section 2.7).
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Tuple is one row of a relation; values align with the relation's Attrs.
type Tuple []value.Value

// Key returns a hashable identity for the tuple.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// AppendKey appends the tuple's Key encoding to b — the allocation-free
// form used with reusable buffers on hashing hot paths.
func (t Tuple) AppendKey(b []byte) []byte {
	for _, v := range t {
		b = v.AppendKey(b)
		b = append(b, '\x1f')
	}
	return b
}

// Clone returns a copy that the caller may retain.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

type row struct {
	tup  Tuple
	mult int
}

// Relation is a multiset of tuples over a fixed attribute list. The zero
// value is not usable; construct with New. Insertion order is preserved
// for deterministic iteration; canonical comparisons sort.
type Relation struct {
	name  string
	attrs []string
	pos   map[string]int // attribute name -> column
	rows  []row
	index map[string]int // tuple key -> rows slot
	// hashIdx caches per-column-set hash indexes for Probe: column-set
	// signature -> index. Built lazily and maintained incrementally:
	// inserting a new distinct tuple appends its slot to every cached
	// index's bucket (multiplicity bumps keep slots valid as-is), so the
	// semi-naive Datalog delta loop and other insert-heavy workloads
	// never pay for wholesale rebuilds.
	hashIdx map[string]*hashIndex
}

// hashIndex is one cached per-column-set hash index.
type hashIndex struct {
	cols    []int
	buckets map[string][]int // column-values key -> row slots
}

// add appends a newly inserted row slot to the index's bucket.
func (ix *hashIndex) add(t Tuple, slot int) {
	var kb [64]byte
	buf := kb[:0]
	for _, c := range ix.cols {
		buf = t[c].AppendKey(buf)
		buf = append(buf, '\x1f')
	}
	ix.buckets[string(buf)] = append(ix.buckets[string(buf)], slot)
}

// New returns an empty relation with the given name and attributes.
// Attribute names must be unique.
func New(name string, attrs ...string) *Relation {
	r := &Relation{
		name:  name,
		attrs: append([]string(nil), attrs...),
		pos:   make(map[string]int, len(attrs)),
		index: make(map[string]int),
	}
	for i, a := range attrs {
		if _, dup := r.pos[a]; dup {
			panic(fmt.Sprintf("relation %s: duplicate attribute %q", name, a))
		}
		r.pos[a] = i
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the attribute list (callers must not mutate it).
func (r *Relation) Attrs() []string { return r.attrs }

// AttrIndex returns the column of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int {
	if i, ok := r.pos[a]; ok {
		return i
	}
	return -1
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Insert adds one occurrence of t.
func (r *Relation) Insert(t Tuple) { r.InsertMult(t, 1) }

// InsertMult adds n occurrences of t. n must be positive.
func (r *Relation) InsertMult(t Tuple, n int) {
	if len(t) != len(r.attrs) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.name, len(t), len(r.attrs)))
	}
	if n <= 0 {
		panic("InsertMult: non-positive multiplicity")
	}
	var kb [128]byte
	buf := t.AppendKey(kb[:0])
	if i, ok := r.index[string(buf)]; ok {
		r.rows[i].mult += n
		return
	}
	slot := len(r.rows)
	r.index[string(buf)] = slot
	r.rows = append(r.rows, row{tup: t.Clone(), mult: n})
	// New distinct tuple: maintain the cached hash indexes incrementally
	// instead of dropping them.
	for _, ix := range r.hashIdx {
		ix.add(r.rows[slot].tup, slot)
	}
}

// Add is a convenience builder: it converts Go literals (int, int64,
// float64, string, bool, nil, value.Value) into values and inserts the
// tuple, returning r for chaining.
func (r *Relation) Add(vals ...any) *Relation {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Lift(v)
	}
	r.Insert(t)
	return r
}

// Lift converts a Go literal into a value.Value. nil becomes NULL.
func Lift(v any) value.Value {
	switch x := v.(type) {
	case nil:
		return value.Null()
	case value.Value:
		return x
	case int:
		return value.Int(int64(x))
	case int64:
		return value.Int(x)
	case float64:
		return value.Float(x)
	case string:
		return value.Str(x)
	case bool:
		return value.Bool(x)
	}
	panic(fmt.Sprintf("Lift: unsupported literal %T", v))
}

// Mult returns the multiplicity of t (0 if absent).
func (r *Relation) Mult(t Tuple) int {
	var kb [128]byte
	if i, ok := r.index[string(t.AppendKey(kb[:0]))]; ok {
		return r.rows[i].mult
	}
	return 0
}

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t Tuple) bool { return r.Mult(t) > 0 }

// Distinct returns the number of distinct tuples.
func (r *Relation) Distinct() int { return len(r.rows) }

// Card returns the total number of tuples counting multiplicity.
func (r *Relation) Card() int {
	n := 0
	for _, rw := range r.rows {
		n += rw.mult
	}
	return n
}

// Each calls f once per distinct tuple with its multiplicity, in insertion
// order. f must not retain the tuple beyond the call unless it clones.
func (r *Relation) Each(f func(Tuple, int)) {
	for _, rw := range r.rows {
		f(rw.tup, rw.mult)
	}
}

// EachWhile calls f per distinct tuple with its multiplicity, in insertion
// order, stopping early when f returns false.
func (r *Relation) EachWhile(f func(Tuple, int) bool) {
	for _, rw := range r.rows {
		if !f(rw.tup, rw.mult) {
			return
		}
	}
}

// KeyOf returns the probe key of a value list — the identity Probe indexes
// by, consistent with Tuple.Key on the projected columns.
func KeyOf(vals []value.Value) string { return Tuple(vals).Key() }

// hashIndexFor returns the hash index on the given column set, building
// it on first use; afterwards InsertMult maintains it incrementally.
// Callers must not mutate the returned buckets.
func (r *Relation) hashIndexFor(cols []int) *hashIndex {
	sig := make([]byte, 0, 16)
	for _, c := range cols {
		sig = strconv.AppendInt(sig, int64(c), 10)
		sig = append(sig, ',')
	}
	s := string(sig)
	if ix, ok := r.hashIdx[s]; ok {
		return ix
	}
	ix := &hashIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]int, len(r.rows)),
	}
	for slot, rw := range r.rows {
		ix.add(rw.tup, slot)
	}
	if r.hashIdx == nil {
		r.hashIdx = make(map[string]*hashIndex)
	}
	r.hashIdx[s] = ix
	return ix
}

// Probe calls f for each distinct tuple whose values at cols equal vals
// (by value key, so 2 and 2.0 match), with its multiplicity, in insertion
// order; f returning false stops the probe. It uses a lazy per-column-set
// hash index that survives multiplicity bumps and is maintained
// incrementally on inserts of new distinct tuples, so a probe after an
// insert sees the new tuple without a rebuild.
//
// Probe identity is value.Key, which agrees with value.Eq for every
// probe value whose Indexable() is true; callers probing with
// non-indexable values (integral numerics beyond 2^53, where Eq's float
// coercion collapses distinct integers) must fall back to a scan with an
// Eq re-check, as the evaluators do.
func (r *Relation) Probe(cols []int, vals []value.Value, f func(Tuple, int) bool) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("Probe: %d columns, %d values", len(cols), len(vals)))
	}
	if len(cols) == 0 {
		r.EachWhile(f)
		return
	}
	var kb [64]byte
	buf := Tuple(vals).AppendKey(kb[:0])
	slots := r.hashIndexFor(cols).buckets[string(buf)]
	for _, slot := range slots {
		rw := r.rows[slot]
		if !f(rw.tup, rw.mult) {
			return
		}
	}
}

// Tuples returns the distinct tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.rows))
	for _, rw := range r.rows {
		out = append(out, rw.tup)
	}
	return out
}

// Dedup returns a copy with every multiplicity collapsed to 1 (the
// set-semantics reading of the instance).
func (r *Relation) Dedup() *Relation {
	out := New(r.name, r.attrs...)
	for _, rw := range r.rows {
		out.InsertMult(rw.tup, 1)
	}
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.attrs...)
	for _, rw := range r.rows {
		out.InsertMult(rw.tup, rw.mult)
	}
	return out
}

// UnionAll adds every occurrence of o into r (bag union). Arity must match;
// attribute names are taken from r.
func (r *Relation) UnionAll(o *Relation) {
	if o.Arity() != r.Arity() {
		panic(fmt.Sprintf("UnionAll: arity mismatch %d vs %d", r.Arity(), o.Arity()))
	}
	o.Each(func(t Tuple, m int) { r.InsertMult(t, m) })
}

// Rename returns a copy with a new name and (optionally) new attribute
// names; pass nil attrs to keep them.
func (r *Relation) Rename(name string, attrs []string) *Relation {
	if attrs == nil {
		attrs = r.attrs
	}
	out := New(name, attrs...)
	for _, rw := range r.rows {
		out.InsertMult(rw.tup, rw.mult)
	}
	return out
}

// Project returns the projection onto the named attributes, keeping bag
// multiplicities (no dedup; dedup is a γ in the calculus, per Section 2.7).
func (r *Relation) Project(attrs ...string) *Relation {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c := r.AttrIndex(a)
		if c < 0 {
			panic(fmt.Sprintf("Project: relation %s has no attribute %q", r.name, a))
		}
		cols[i] = c
	}
	out := New(r.name, attrs...)
	for _, rw := range r.rows {
		t := make(Tuple, len(cols))
		for i, c := range cols {
			t[i] = rw.tup[c]
		}
		out.InsertMult(t, rw.mult)
	}
	return out
}

// sortedRows returns (key, mult) pairs sorted by key, for canonical
// comparison and printing.
func (r *Relation) sortedRows() []row {
	rs := append([]row(nil), r.rows...)
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].tup, rs[j].tup
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Less(b[k]) {
				return true
			}
			if b[k].Less(a[k]) {
				return false
			}
		}
		return len(a) < len(b)
	})
	return rs
}

// EqualSet reports whether r and o contain the same distinct tuples,
// ignoring multiplicities, names, and attribute names (positional content
// comparison, the standard notion for query-result equivalence tests).
func (r *Relation) EqualSet(o *Relation) bool {
	if r.Arity() != o.Arity() {
		return false
	}
	if r.Distinct() != o.Distinct() {
		return false
	}
	for _, rw := range r.rows {
		if _, ok := o.index[rw.tup.Key()]; !ok {
			return false
		}
	}
	return true
}

// EqualBag reports whether r and o contain the same tuples with the same
// multiplicities.
func (r *Relation) EqualBag(o *Relation) bool {
	if r.Arity() != o.Arity() || r.Distinct() != o.Distinct() {
		return false
	}
	for _, rw := range r.rows {
		i, ok := o.index[rw.tup.Key()]
		if !ok || o.rows[i].mult != rw.mult {
			return false
		}
	}
	return true
}

// String renders the relation as an aligned table with multiplicities
// shown when any exceeds 1, sorted canonically — the format used by the
// experiment harness and goldens.
func (r *Relation) String() string {
	showMult := false
	for _, rw := range r.rows {
		if rw.mult != 1 {
			showMult = true
			break
		}
	}
	header := make([]string, len(r.attrs))
	copy(header, r.attrs)
	if showMult {
		header = append(header, "#")
	}
	rows := [][]string{header}
	for _, rw := range r.sortedRows() {
		cells := make([]string, 0, len(rw.tup)+1)
		for _, v := range rw.tup {
			cells = append(cells, v.String())
		}
		if showMult {
			cells = append(cells, fmt.Sprintf("%d", rw.mult))
		}
		rows = append(rows, cells)
	}
	width := make([]int, len(header))
	for _, cs := range rows {
		for i, c := range cs {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.name)
	for ri, cs := range rows {
		b.WriteString("  ")
		for i, c := range cs {
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			b.WriteString("  ")
			for _, w := range width {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ordered.go adds the ordered counterpart of the lazy hash indexes: a
// per-column sorted index (value.Less order) serving range predicates.
// Where Probe answers "rows whose column equals v", RangeProbe answers
// "rows whose column falls in [lo,hi]" with any combination of
// open/closed/unbounded ends — the in-memory fallback behind
// exec.RangeScan when a relation lives purely in RAM rather than in
// sorted segment files.
package relation

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/value"
)

// orderedIndex is one cached per-column sorted index: slots ordered by
// the column value under value.Less over a captured rows header. gen is
// the relation generation it was built at; any mutation bumps the
// generation and invalidates the index wholesale (range workloads are
// read-heavy; incremental maintenance of a sorted slice is not worth
// its complexity).
type orderedIndex struct {
	gen   uint64
	rows  []row
	slots []int
}

// ordClass buckets values into the comparability classes of the Less
// total order: NULL < numerics (ints and floats interleaved) < strings
// < bools. Compare is total within a class (except NULL) and undefined
// across classes.
func ordClass(v value.Value) int {
	switch v.Kind() {
	case value.KindNull:
		return 0
	case value.KindInt, value.KindFloat:
		return 1
	case value.KindString:
		return 2
	}
	return 3
}

// orderedIndexFor returns the sorted index on col, rebuilding it if the
// relation changed since it was built.
func (r *Relation) orderedIndexFor(col int) *orderedIndex {
	gen := r.gen.Load()
	r.mu.RLock()
	ix, ok := r.ordIdx[col]
	r.mu.RUnlock()
	if ok && ix.gen == gen {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gen = r.gen.Load()
	if ix, ok := r.ordIdx[col]; ok && ix.gen == gen {
		return ix
	}
	ix = &orderedIndex{gen: gen, rows: r.rows, slots: make([]int, len(r.rows))}
	for i := range ix.slots {
		ix.slots[i] = i
	}
	sort.SliceStable(ix.slots, func(a, b int) bool {
		return ix.rows[ix.slots[a]].tup[col].Less(ix.rows[ix.slots[b]].tup[col])
	})
	if r.ordIdx == nil {
		r.ordIdx = make(map[int]*orderedIndex)
	}
	r.ordIdx[col] = ix
	return ix
}

// RangeProbe calls f for each distinct tuple whose value at col falls
// between lo and hi under Compare semantics, with its multiplicity,
// in ascending column order; f returning false stops the probe. A NULL
// bound means unbounded on that side (at least one bound must be set).
// Matching follows the 3VL comparison contract exactly: NULL column
// values never match, and values incomparable with the bounds (a string
// against numeric bounds) never match — so consuming a `lo <= c AND
// c <= hi` filter into a RangeProbe preserves query semantics
// bit-for-bit. Bounds of different classes (c > 1 AND c < 'z') match
// nothing, mirroring the conjunction of two class-restricted predicates.
func (r *Relation) RangeProbe(col int, lo, hi value.Value, loIncl, hiIncl bool, f func(Tuple, int) bool) {
	if col < 0 || col >= len(r.attrs) {
		panic(fmt.Sprintf("RangeProbe: relation %s has no column %d", r.name, col))
	}
	if lo.IsNull() && hi.IsNull() {
		panic("RangeProbe: both bounds unbounded")
	}
	cls := ordClass(lo)
	if lo.IsNull() {
		cls = ordClass(hi)
	} else if !hi.IsNull() && ordClass(hi) != cls {
		return // conjunction of two different-class predicates: empty
	}
	ix := r.orderedIndexFor(col)
	at := func(i int) value.Value { return ix.rows[ix.slots[i]].tup[col] }

	// beforeLo: v sorts strictly before the range start. Downward-closed
	// in the Less order, so sort.Search finds the boundary.
	beforeLo := func(v value.Value) bool {
		if c := ordClass(v); c != cls {
			return c < cls
		}
		if lo.IsNull() {
			return false
		}
		c, _ := v.Compare(lo)
		if loIncl {
			return c < 0
		}
		return c <= 0
	}
	// withinHi: v sorts at or before the range end.
	withinHi := func(v value.Value) bool {
		if c := ordClass(v); c != cls {
			return c < cls
		}
		if hi.IsNull() {
			return true
		}
		c, _ := v.Compare(hi)
		if hiIncl {
			return c <= 0
		}
		return c < 0
	}
	start := sort.Search(len(ix.slots), func(i int) bool { return !beforeLo(at(i)) })
	end := start + sort.Search(len(ix.slots)-start, func(i int) bool { return !withinHi(at(start + i)) })
	for _, slot := range ix.slots[start:end] {
		if !f(ix.rows[slot].tup, int(atomic.LoadInt64(&ix.rows[slot].mult))) {
			return
		}
	}
}

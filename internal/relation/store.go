// store.go implements the MVCC versioning layer over relations: a Store
// holds an immutable, generation-tagged Snapshot of the whole base-
// relation catalog, writers accumulate changes in a WriteSet against the
// snapshot they began from, and Commit publishes a new snapshot under
// first-committer-wins conflict detection. Readers never block and never
// see a torn state: once a *Relation appears in a committed snapshot it
// is treated as immutable (only its lazy hash indexes, which are
// internally locked, may still change), so a query or cursor holding a
// snapshot streams exactly the data that was committed when it started —
// the janus-datalog datom/transaction shape, at relation granularity.
package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by Store.Commit when another transaction
// committed a change to one of this write set's relations after the
// write set's base snapshot was taken — the first committer won.
var ErrConflict = errors.New("relation: write conflict: relation changed since the transaction began (first committer wins)")

// Store is the versioned catalog of base relations. The zero value is
// not usable; construct with NewStore.
type Store struct {
	// mu serializes commits (conflict check + head swap). Readers load
	// the head snapshot atomically and never take it.
	mu   sync.Mutex
	head atomic.Pointer[Snapshot]

	// hook, when set, observes every commit under mu before the new
	// snapshot becomes visible — the write-ahead ordering the durable
	// storage backend relies on. See SetCommitHook.
	hook atomic.Pointer[CommitHook]

	// Commit-path counters (observability, see Stats): commits counts
	// published write-set commits plus administrative Apply publishes,
	// conflicts counts first-committer-wins rejections.
	commits   atomic.Uint64
	conflicts atomic.Uint64
}

// OpKind enumerates the journaled write-set operations a CommitHook
// receives. Replaying a journal in order against the catalog state at
// the journal's start reproduces the committed state exactly.
type OpKind uint8

const (
	// OpCreate adds a new empty relation.
	OpCreate OpKind = iota + 1
	// OpDrop removes a relation from the catalog.
	OpDrop
	// OpInsert adds Mult occurrences of Tuple.
	OpInsert
	// OpDelete removes all occurrences of each tuple in Tuples.
	OpDelete
	// OpPut replaces (or adds) a relation wholesale with Rows/Mults —
	// the administrative Register/Apply path.
	OpPut
)

// LogOp is one journaled mutation. Only the fields relevant to Kind are
// set; tuples are deep copies owned by the op.
type LogOp struct {
	Kind   OpKind
	Rel    string
	Attrs  []string // OpCreate, OpPut
	Tuple  Tuple    // OpInsert
	Mult   int64    // OpInsert
	Tuples []Tuple  // OpDelete
	Rows   []Tuple  // OpPut
	Mults  []int64  // OpPut
}

// CommitHook observes a committed journal under the store's commit lock
// *before* the new snapshot is published: gen is the generation the
// commit will produce. Returning an error aborts the commit (nothing
// becomes visible) — the durable backend uses this to refuse commits it
// could not log.
type CommitHook func(gen uint64, ops []LogOp) error

// SetCommitHook installs the commit hook. Install before the store
// serves writers: write sets opened while no hook was set do not
// journal their operations.
func (st *Store) SetCommitHook(h CommitHook) {
	if h == nil {
		st.hook.Store(nil)
		return
	}
	st.hook.Store(&h)
}

// Barrier runs f with the current head snapshot while holding the
// commit lock: no commit is in flight, every hook invocation for
// generations <= head.Gen() has returned, and none for a later
// generation has started. This is the cut point checkpointing needs to
// rotate the log without losing or duplicating a record. f must not
// call back into the store.
func (st *Store) Barrier(f func(head *Snapshot)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f(st.head.Load())
}

// ApplyLogOp replays one journaled operation against a mutable catalog
// map — the WAL recovery path. The map's relations must be private to
// the caller (replay mutates them in place).
func ApplyLogOp(cat map[string]*Relation, op LogOp) error {
	switch op.Kind {
	case OpCreate:
		if _, ok := cat[op.Rel]; ok {
			return fmt.Errorf("relation: replay: %q already exists", op.Rel)
		}
		cat[op.Rel] = New(op.Rel, op.Attrs...)
	case OpDrop:
		if _, ok := cat[op.Rel]; !ok {
			return fmt.Errorf("relation: replay: unknown relation %q", op.Rel)
		}
		delete(cat, op.Rel)
	case OpInsert:
		r, ok := cat[op.Rel]
		if !ok {
			return fmt.Errorf("relation: replay: unknown relation %q", op.Rel)
		}
		r.InsertMult(op.Tuple, int(op.Mult))
	case OpDelete:
		r, ok := cat[op.Rel]
		if !ok {
			return fmt.Errorf("relation: replay: unknown relation %q", op.Rel)
		}
		keys := make(map[string]struct{}, len(op.Tuples))
		for _, t := range op.Tuples {
			keys[t.Key()] = struct{}{}
		}
		r.RemoveKeys(keys)
	case OpPut:
		r := New(op.Rel, op.Attrs...)
		for i, t := range op.Rows {
			r.InsertMult(t, int(op.Mults[i]))
		}
		cat[op.Rel] = r
	default:
		return fmt.Errorf("relation: replay: unknown op kind %d", op.Kind)
	}
	return nil
}

// putOp snapshots a relation wholesale as an OpPut journal entry.
func putOp(r *Relation) LogOp {
	op := LogOp{Kind: OpPut, Rel: r.Name(), Attrs: append([]string(nil), r.Attrs()...)}
	r.Each(func(t Tuple, m int) {
		op.Rows = append(op.Rows, t.Clone())
		op.Mults = append(op.Mults, int64(m))
	})
	return op
}

// StoreStats is a point-in-time snapshot of the store's commit-path
// counters, the store half of the engine's observability surface.
type StoreStats struct {
	// Gen is the current commit generation. One snapshot exists per
	// generation, so it doubles as the count of snapshots ever published.
	Gen uint64
	// Commits counts published commits (write sets and Apply upserts;
	// empty-write-set no-ops excluded).
	Commits uint64
	// Conflicts counts Commit calls rejected first-committer-wins.
	Conflicts uint64
}

// Stats snapshots the commit-path counters.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		Gen:       st.Gen(),
		Commits:   st.commits.Load(),
		Conflicts: st.conflicts.Load(),
	}
}

// Snapshot is one immutable version of the catalog: the relation map,
// the commit generation that produced it, and per-relation version tags
// (the generation at which each relation last changed) used for
// first-committer-wins conflict detection. Callers must not mutate the
// returned maps or the relations they contain.
type Snapshot struct {
	gen    uint64
	rels   map[string]*Relation
	relVer map[string]uint64
}

// NewStore builds a store whose initial snapshot (generation 1) holds
// the given relations, keyed by name.
func NewStore(rels ...*Relation) *Store { return NewStoreAt(1, rels...) }

// NewStoreAt builds a store whose initial snapshot carries the given
// generation — the recovery path, where a store reopened from a
// checkpoint plus WAL replay must keep numbering commits where the
// previous incarnation stopped.
func NewStoreAt(gen uint64, rels ...*Relation) *Store {
	snap := &Snapshot{
		gen:    gen,
		rels:   make(map[string]*Relation, len(rels)),
		relVer: make(map[string]uint64, len(rels)),
	}
	for _, r := range rels {
		snap.rels[r.Name()] = r
		snap.relVer[r.Name()] = gen
	}
	st := &Store{}
	st.head.Store(snap)
	return st
}

// Head returns the current committed snapshot.
func (st *Store) Head() *Snapshot { return st.head.Load() }

// Gen returns the current commit generation — the single fingerprint
// statement caches revalidate on.
func (st *Store) Gen() uint64 { return st.head.Load().gen }

// Gen returns the snapshot's commit generation.
func (s *Snapshot) Gen() uint64 { return s.gen }

// Relation returns the named relation in this snapshot, or nil.
func (s *Snapshot) Relation(name string) *Relation { return s.rels[name] }

// Rels returns the snapshot's relation map. The map is shared and must
// not be mutated; copy before extending.
func (s *Snapshot) Rels() map[string]*Relation { return s.rels }

// Names returns the relation names in this snapshot, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Begin opens a write set against the current head snapshot. If the
// store has a commit hook, the write set journals its operations for
// the hook to log at commit.
func (st *Store) Begin() *WriteSet {
	return &WriteSet{
		base:    st.Head(),
		pend:    map[string]*pendingRel{},
		journal: st.hook.Load() != nil,
	}
}

// WriteSet accumulates a transaction's uncommitted changes: per-relation
// working copies (cloned copy-on-write from the base snapshot on first
// write) plus creations. It also serves reads inside the transaction:
// Relation and Rels overlay the working copies on the base snapshot, so
// a statement compiled against the overlay sees the transaction's own
// writes exactly once. A WriteSet is not safe for concurrent use — a
// transaction belongs to one session.
type WriteSet struct {
	base *Snapshot
	pend map[string]*pendingRel
	// ver counts applied write statements — the read-your-writes
	// fingerprint transaction-local statement caches revalidate on.
	ver uint64
	// overlay caches the materialized Rels() map until ver changes.
	overlay    map[string]*Relation
	overlayVer uint64
	// journal records each applied operation in ops for the store's
	// commit hook (the WAL record). Off unless the store had a hook when
	// the write set was opened.
	journal bool
	ops     []LogOp
}

type pendingRel struct {
	work    *Relation
	created bool
	// dropped marks a pending DROP: the name resolves to nothing inside
	// the transaction and is removed from the catalog at Commit.
	dropped bool
}

// Base returns the snapshot the write set reads beneath its own writes.
func (ws *WriteSet) Base() *Snapshot { return ws.base }

// Ver returns the write version: it bumps on every applied change, so a
// statement prepared inside the transaction at version v stays valid
// until the transaction writes again.
func (ws *WriteSet) Ver() uint64 { return ws.ver }

// Dirty reports whether the write set holds any changes.
func (ws *WriteSet) Dirty() bool { return len(ws.pend) > 0 }

// Relation resolves a name through the overlay: the working copy if this
// transaction wrote the relation, the base snapshot's version otherwise.
func (ws *WriteSet) Relation(name string) *Relation {
	if p, ok := ws.pend[name]; ok {
		if p.dropped {
			return nil
		}
		return p.work
	}
	return ws.base.rels[name]
}

// Rels materializes the overlay map (base relations with this write
// set's working copies substituted). The map is cached until the next
// write and must not be mutated by callers.
func (ws *WriteSet) Rels() map[string]*Relation {
	if ws.overlay != nil && ws.overlayVer == ws.ver && len(ws.pend) == 0 {
		return ws.overlay
	}
	if len(ws.pend) == 0 {
		ws.overlay, ws.overlayVer = ws.base.rels, ws.ver
		return ws.overlay
	}
	if ws.overlay == nil || ws.overlayVer != ws.ver {
		m := make(map[string]*Relation, len(ws.base.rels)+len(ws.pend))
		for k, v := range ws.base.rels {
			m[k] = v
		}
		for k, p := range ws.pend {
			if p.dropped {
				delete(m, k)
				continue
			}
			m[k] = p.work
		}
		ws.overlay, ws.overlayVer = m, ws.ver
	}
	return ws.overlay
}

// working returns the mutable transaction-local copy of name, cloning
// the base version copy-on-write on first touch.
func (ws *WriteSet) working(name string) (*Relation, error) {
	if p, ok := ws.pend[name]; ok {
		if p.dropped {
			return nil, fmt.Errorf("relation: unknown relation %q", name)
		}
		return p.work, nil
	}
	base, ok := ws.base.rels[name]
	if !ok {
		return nil, fmt.Errorf("relation: unknown relation %q", name)
	}
	work := base.Clone()
	ws.pend[name] = &pendingRel{work: work}
	return work, nil
}

// Create adds a new empty relation to the write set. It fails if the
// name already exists in the overlay.
func (ws *WriteSet) Create(name string, attrs []string) error {
	if ws.Relation(name) != nil {
		return fmt.Errorf("relation: %q already exists", name)
	}
	for i, a := range attrs {
		for j := 0; j < i; j++ {
			if attrs[j] == a {
				return fmt.Errorf("relation: %q: duplicate attribute %q", name, a)
			}
		}
	}
	ws.pend[name] = &pendingRel{work: New(name, attrs...), created: true}
	if ws.journal {
		ws.ops = append(ws.ops, LogOp{Kind: OpCreate, Rel: name, Attrs: append([]string(nil), attrs...)})
	}
	ws.ver++
	return nil
}

// Drop removes a relation from the write set's overlay: the name stops
// resolving inside the transaction immediately, and Commit removes it
// from the catalog (a later commit touching the name conflicts — a drop
// is a write like any other). Dropping an unknown name is an error;
// creating the same name again after a drop in one transaction works.
func (ws *WriteSet) Drop(name string) error {
	if ws.Relation(name) == nil {
		return fmt.Errorf("relation: unknown relation %q", name)
	}
	ws.pend[name] = &pendingRel{dropped: true}
	if ws.journal {
		ws.ops = append(ws.ops, LogOp{Kind: OpDrop, Rel: name})
	}
	ws.ver++
	return nil
}

// Put replaces (or adds) a relation wholesale — the write-set form of
// the engine's Register.
func (ws *WriteSet) Put(r *Relation) {
	ws.pend[r.Name()] = &pendingRel{work: r, created: ws.Relation(r.Name()) == nil}
	if ws.journal {
		// Snapshot the content now: r is the live working copy and later
		// statements may mutate it, which must journal as separate ops.
		ws.ops = append(ws.ops, putOp(r))
	}
	ws.ver++
}

// Insert adds n occurrences of t to the named relation's working copy.
func (ws *WriteSet) Insert(name string, t Tuple, n int) error {
	work, err := ws.working(name)
	if err != nil {
		return err
	}
	if len(t) != work.Arity() {
		return fmt.Errorf("relation: %q takes %d columns, got %d", name, work.Arity(), len(t))
	}
	work.InsertMult(t, n)
	if ws.journal {
		ws.ops = append(ws.ops, LogOp{Kind: OpInsert, Rel: name, Tuple: t.Clone(), Mult: int64(n)})
	}
	ws.ver++
	return nil
}

// Delete removes the given distinct tuples (all their occurrences) from
// the named relation's working copy, returning the number of row
// occurrences removed.
func (ws *WriteSet) Delete(name string, tuples []Tuple) (int, error) {
	if len(tuples) == 0 {
		// Still bump ver: the statement ran (and an empty delete still
		// touched the relation logically — cheap and keeps callers
		// simple). No working copy is forced, so no conflict either.
		return 0, nil
	}
	work, err := ws.working(name)
	if err != nil {
		return 0, err
	}
	keys := make(map[string]struct{}, len(tuples))
	for _, t := range tuples {
		if len(t) != work.Arity() {
			return 0, fmt.Errorf("relation: %q takes %d columns, got %d", name, work.Arity(), len(t))
		}
		keys[t.Key()] = struct{}{}
	}
	removed := work.RemoveKeys(keys)
	if ws.journal && removed > 0 {
		op := LogOp{Kind: OpDelete, Rel: name, Tuples: make([]Tuple, len(tuples))}
		for i, t := range tuples {
			op.Tuples[i] = t.Clone()
		}
		ws.ops = append(ws.ops, op)
	}
	ws.ver++
	return removed, nil
}

// Names returns the written relation names, sorted (for deterministic
// error messages and tests).
func (ws *WriteSet) Names() []string {
	out := make([]string, 0, len(ws.pend))
	for n := range ws.pend {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Commit publishes the write set as a new snapshot. Conflict detection
// is first-committer-wins, keyed on relation versions: if any relation
// this write set touched was changed (or created, or removed) by a
// commit after the write set's base snapshot, Commit returns an error
// wrapping ErrConflict and publishes nothing. Unchanged relations are
// shared structurally between snapshots. An empty write set commits as
// a no-op returning the current head.
func (st *Store) Commit(ws *WriteSet) (*Snapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	head := st.head.Load()
	if len(ws.pend) == 0 {
		return head, nil
	}
	if head != ws.base {
		for name := range ws.pend {
			bv, bok := ws.base.relVer[name]
			hv, hok := head.relVer[name]
			if bok != hok || bv != hv {
				st.conflicts.Add(1)
				return nil, fmt.Errorf("%w: %s", ErrConflict, name)
			}
		}
	}
	gen := head.gen + 1
	// Write-ahead: the hook logs the journal before the snapshot becomes
	// visible. A hook failure aborts the commit — an acknowledged commit
	// is always on stable storage first.
	if h := st.hook.Load(); h != nil {
		if err := (*h)(gen, ws.ops); err != nil {
			return nil, fmt.Errorf("relation: commit hook: %w", err)
		}
	}
	next := &Snapshot{
		gen:    gen,
		rels:   make(map[string]*Relation, len(head.rels)+len(ws.pend)),
		relVer: make(map[string]uint64, len(head.relVer)+len(ws.pend)),
	}
	for k, v := range head.rels {
		next.rels[k] = v
		next.relVer[k] = head.relVer[k]
	}
	for name, p := range ws.pend {
		if p.dropped {
			// A dropped name disappears from BOTH maps: a concurrent
			// writer that still has the old version tag sees a
			// present/absent mismatch and conflicts.
			delete(next.rels, name)
			delete(next.relVer, name)
			continue
		}
		next.rels[name] = p.work
		next.relVer[name] = gen
	}
	st.head.Store(next)
	st.commits.Add(1)
	return next, nil
}

// Apply commits an unconditional upsert of the given relations — the
// administrative Register path, which replaces rather than conflicts.
func (st *Store) Apply(rels ...*Relation) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	head := st.head.Load()
	gen := head.gen + 1
	if h := st.hook.Load(); h != nil {
		ops := make([]LogOp, len(rels))
		for i, r := range rels {
			ops[i] = putOp(r)
		}
		// Apply has no error path; a failed log is surfaced by the next
		// durable operation, and the upsert proceeds in memory.
		_ = (*h)(gen, ops)
	}
	next := &Snapshot{
		gen:    gen,
		rels:   make(map[string]*Relation, len(head.rels)+len(rels)),
		relVer: make(map[string]uint64, len(head.relVer)+len(rels)),
	}
	for k, v := range head.rels {
		next.rels[k] = v
		next.relVer[k] = head.relVer[k]
	}
	for _, r := range rels {
		next.rels[r.Name()] = r
		next.relVer[r.Name()] = gen
	}
	st.head.Store(next)
	st.commits.Add(1)
	return next
}

package arc2sql

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/sql2arc"
	"repro/internal/sqleval"
	"repro/internal/value"
)

// roundTrip checks SQL → ARC → SQL: the rendered SQL must evaluate (in
// the independent SQL evaluator) to the same set as the original.
func roundTrip(t *testing.T, src string, rels []*relation.Relation) {
	t.Helper()
	col, err := sql2arc.TranslateString(src)
	if err != nil {
		t.Fatalf("sql2arc %q: %v", src, err)
	}
	rendered, err := RenderString(col)
	if err != nil {
		t.Fatalf("arc2sql of %q: %v\nALT: %s", src, err, col)
	}
	db := sqleval.DB{}
	for _, r := range rels {
		db[r.Name()] = r
	}
	want, err := sqleval.EvalString(src, db)
	if err != nil {
		t.Fatalf("baseline eval %q: %v", src, err)
	}
	got, err := sqleval.EvalString(rendered, db)
	if err != nil {
		t.Fatalf("rendered eval %q: %v", rendered, err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("round trip mismatch for %q\nrendered: %s\ngot\n%s\nwant\n%s", src, rendered, got, want)
	}
}

// arcToSQL checks a hand-built ALT: rendered SQL (sqleval) must agree
// with direct ARC evaluation.
func arcToSQL(t *testing.T, col *alt.Collection, rels []*relation.Relation) {
	t.Helper()
	rendered, err := RenderString(col)
	if err != nil {
		t.Fatalf("render %s: %v", col, err)
	}
	cat := eval.NewCatalog()
	db := sqleval.DB{}
	for _, r := range rels {
		cat.AddRelation(r)
		db[r.Name()] = r
	}
	want, err := eval.Eval(col, cat, convention.SQLDistinct())
	if err != nil {
		t.Fatalf("arc eval: %v", err)
	}
	got, err := sqleval.EvalString(rendered, db)
	if err != nil {
		t.Fatalf("sql eval of rendering %q: %v", rendered, err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("mismatch for %s\nrendered: %s\ngot\n%s\nwant\n%s", col, rendered, got, want)
	}
}

func TestRoundTrips(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30),
		relation.New("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0),
	}
	for _, src := range []string{
		"select R.A from R, S where R.B = S.B and S.C = 0",
		"select R.A, S.C from R, S where R.B = S.B",
		"select R.A from R where exists (select 1 from S where S.B = R.B)",
		"select R.A from R where not exists (select 1 from S where S.B = R.B)",
		"select R.A from R union all select S.C from S",
		"select R.A, R.B + 1 AS b1 from R",
	} {
		roundTrip(t, src, rels)
	}
}

func TestRoundTripAggregates(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5),
	}
	roundTrip(t, "select R.A, sum(R.B) sm from R group by R.A", rels)
	roundTrip(t, "select count(R.B) c from R", rels)
}

func TestRoundTripHaving(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "empl", "dept").Add("e1", "d1").Add("e2", "d1").Add("e3", "d2"),
		relation.New("S", "empl", "sal").Add("e1", 60).Add("e2", 70).Add("e3", 40),
	}
	roundTrip(t, `select R.dept, avg(S.sal) av from R, S
		where R.empl = S.empl group by R.dept having sum(S.sal) > 100`, rels)
}

func TestRoundTripCountBug(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "id", "q").Add(9, 0).Add(1, 2),
		relation.New("S", "id", "d").Add(1, "a").Add(1, "b"),
	}
	roundTrip(t, `select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)`, rels)
	roundTrip(t, `select R.id from R,
		(select S.id, count(S.d) as ct from S group by S.id) as X
		where R.q = X.ct and R.id = X.id`, rels)
}

func TestRoundTripNotIn(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "A").Add(1).Add(2).Add(3),
		relation.New("S", "A").Add(2).Add(nil),
	}
	roundTrip(t, "select R.A from R where R.A not in (select S.A from S)", rels)
}

func TestRoundTripLeftJoin(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("R", "m", "y", "h").Add("r1", 1, 11).Add("r2", 2, 11).Add("r3", 3, 99),
		relation.New("S", "y", "n", "q").Add(1, "n1", 0).Add(3, "n3", 0),
	}
	roundTrip(t, `select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)`, rels)
}

func TestRoundTripLateral(t *testing.T) {
	rels := []*relation.Relation{
		relation.New("X", "A").Add(1).Add(5),
		relation.New("Y", "A").Add(3).Add(7),
	}
	roundTrip(t, `select x.A, z.B from X as x
		join lateral (select y.A as B from Y as y where x.A < y.A) as z on true`, rels)
}

func TestRenderTRCStyleNesting(t *testing.T) {
	// The raw TRC shape with assignments in the nested scope flattens.
	col := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				))))
	rels := []*relation.Relation{
		relation.New("R", "A", "B").Add(1, 10).Add(2, 99),
		relation.New("S", "B").Add(10),
	}
	arcToSQL(t, col, rels)
	rendered, _ := RenderString(col)
	if strings.Contains(rendered, "EXISTS") {
		t.Errorf("generating nesting should flatten, not render EXISTS: %s", rendered)
	}
}

func TestRenderBooleanGroupedScope(t *testing.T) {
	// COUNT-bug version 1 shape: grouped boolean scope → HAVING.
	col := alt.Col("Q", []string{"id"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "id"), alt.Ref("r", "id")),
				alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")}, nil,
					alt.AndF(
						alt.Eq(alt.Ref("r", "id"), alt.Ref("s", "id")),
						alt.Eq(alt.Ref("r", "q"), alt.Count(alt.Ref("s", "d"))),
					)),
			)))
	rels := []*relation.Relation{
		relation.New("R", "id", "q").Add(9, 0).Add(1, 2),
		relation.New("S", "id", "d").Add(1, "a").Add(1, "b"),
	}
	arcToSQL(t, col, rels)
	rendered, _ := RenderString(col)
	if !strings.Contains(rendered, "HAVING") {
		t.Errorf("grouped boolean scope should render HAVING: %s", rendered)
	}
}

func TestRenderConstJoinLeaf(t *testing.T) {
	// (18): constant leaf folds back into the ON condition as a literal.
	col := alt.Col("Q", []string{"m", "n"},
		alt.ExistsJ([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.LeftJ(alt.JV("r"), alt.Inner(alt.JC(value.Int(11), "c"), alt.JV("s"))),
			alt.AndF(
				alt.Eq(alt.Ref("Q", "m"), alt.Ref("r", "m")),
				alt.Eq(alt.Ref("Q", "n"), alt.Ref("s", "n")),
				alt.Eq(alt.Ref("r", "y"), alt.Ref("s", "y")),
				alt.Eq(alt.Ref("r", "h"), alt.Ref("c", "val")),
			)))
	rels := []*relation.Relation{
		relation.New("R", "m", "y", "h").Add("r1", 1, 11).Add("r2", 2, 11).Add("r3", 3, 99),
		relation.New("S", "y", "n", "q").Add(1, "n1", 0).Add(3, "n3", 0),
	}
	arcToSQL(t, col, rels)
	rendered, _ := RenderString(col)
	if !strings.Contains(rendered, "11") || !strings.Contains(rendered, "LEFT JOIN") {
		t.Errorf("constant leaf should fold into ON: %s", rendered)
	}
}

func TestRenderRecursionUnsupported(t *testing.T) {
	col := alt.Col("A", []string{"s", "t"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("p", "P")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("p", "t")))),
			alt.Exists([]*alt.Binding{alt.Bind("p", "P"), alt.Bind("a2", "A")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("p", "t"), alt.Ref("a2", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("a2", "t")))),
		))
	if _, err := Render(col); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("want recursion error, got %v", err)
	}
}

func TestRenderUnionFromOr(t *testing.T) {
	col := alt.Col("Q", []string{"A"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A"))),
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("s", "B"))),
		))
	rels := []*relation.Relation{
		relation.New("R", "A").Add(1),
		relation.New("S", "B").Add(2),
	}
	arcToSQL(t, col, rels)
	rendered, _ := RenderString(col)
	if !strings.Contains(rendered, "UNION") {
		t.Errorf("disjunction should render UNION: %s", rendered)
	}
}

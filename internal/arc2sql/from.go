package arc2sql

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/sql"
	"repro/internal/value"
)

// fromClause builds the FROM items of a scope. It returns, alongside the
// table refs, a map from binding variables on nullable sides to the
// JoinRef whose ON condition should receive predicates mentioning them.
func (r *renderer) fromClause(q *alt.Quantifier, consts map[string]value.Value) ([]sql.TableRef, map[string]*sql.JoinRef, error) {
	onOwner := map[string]*sql.JoinRef{}
	byVar := map[string]*alt.Binding{}
	for _, b := range q.Bindings {
		byVar[b.Var] = b
	}
	covered := map[string]bool{}
	var items []sql.TableRef
	if q.Join != nil {
		ref, err := r.joinRef(q.Join, byVar, covered, consts, onOwner)
		if err != nil {
			return nil, nil, err
		}
		if ref != nil {
			items = append(items, ref)
		}
	}
	for _, b := range q.Bindings {
		if covered[b.Var] {
			continue
		}
		ref, err := r.bindingRef(b)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, ref)
	}
	return items, onOwner, nil
}

// joinRef converts a join annotation into SQL join syntax. Constant
// leaves contribute no table: their comparisons fold into the enclosing
// ON condition as literal tests.
func (r *renderer) joinRef(j alt.JoinExpr, byVar map[string]*alt.Binding, covered map[string]bool,
	consts map[string]value.Value, onOwner map[string]*sql.JoinRef) (sql.TableRef, error) {
	switch x := j.(type) {
	case *alt.JoinVar:
		b := byVar[x.Var]
		if b == nil {
			return nil, fmt.Errorf("arc2sql: join annotation variable %q not bound", x.Var)
		}
		covered[x.Var] = true
		return r.bindingRef(b)
	case *alt.JoinConst:
		// The constant singleton vanishes; its variable resolves to a
		// literal wherever referenced.
		covered[x.Var] = true
		return nil, nil
	case *alt.JoinOp:
		var refs []sql.TableRef
		var kidVars [][]string
		for _, k := range x.Kids {
			ref, err := r.joinRef(k, byVar, covered, consts, onOwner)
			if err != nil {
				return nil, err
			}
			kidVars = append(kidVars, alt.JoinVars(k, nil))
			if ref != nil {
				refs = append(refs, ref)
			}
		}
		switch x.Kind {
		case alt.JoinInner:
			if len(refs) == 0 {
				return nil, nil
			}
			out := refs[0]
			for _, next := range refs[1:] {
				out = &sql.JoinRef{Kind: sql.JoinCross, Left: out, Right: next}
			}
			return out, nil
		case alt.JoinLeft, alt.JoinFull:
			if len(refs) != 2 {
				return nil, fmt.Errorf("arc2sql: outer join over constant-only side is not renderable")
			}
			kind := sql.JoinLeft
			if x.Kind == alt.JoinFull {
				kind = sql.JoinFull
			}
			jr := &sql.JoinRef{Kind: kind, Left: refs[0], Right: refs[1]}
			// Predicates mentioning any nullable-side variable belong in
			// this join's ON condition.
			for _, v := range kidVars[1] {
				onOwner[v] = jr
			}
			if x.Kind == alt.JoinFull {
				for _, v := range kidVars[0] {
					onOwner[v] = jr
				}
			}
			return jr, nil
		}
	}
	return nil, fmt.Errorf("arc2sql: unknown join expression %T", j)
}

func (r *renderer) bindingRef(b *alt.Binding) (sql.TableRef, error) {
	if b.Sub != nil {
		sub, err := r.collection(b.Sub)
		if err != nil {
			return nil, err
		}
		lateral := len(r.link.Correlated[b.Sub]) > 0
		return &sql.SubqueryTable{Query: sub, Alias: b.Var, Lateral: lateral}, nil
	}
	return &sql.BaseTable{Name: b.Rel, Alias: b.Var}, nil
}

// onTargetFor returns the JoinRef whose ON clause should receive p, or
// nil for WHERE placement.
func (r *renderer) onTargetFor(p alt.Formula, onOwner map[string]*sql.JoinRef, q *alt.Quantifier) *sql.JoinRef {
	if len(onOwner) == 0 {
		return nil
	}
	for _, ref := range alt.FormulaAttrRefs(p, nil) {
		res, ok := r.link.Refs[ref]
		if !ok || res.Kind != alt.RefBinding {
			continue
		}
		if r.link.BindingQuantifier[res.Binding] != q {
			continue
		}
		if jr, ok := onOwner[ref.Var]; ok {
			return jr
		}
	}
	return nil
}

// formulaExpr renders a formula (predicate, negation, nested quantifier)
// as a SQL boolean expression.
func (r *renderer) formulaExpr(f alt.Formula, consts map[string]value.Value) (sql.Expr, error) {
	switch x := f.(type) {
	case *alt.Pred:
		l, err := r.term(x.Left, consts)
		if err != nil {
			return nil, err
		}
		rt, err := r.term(x.Right, consts)
		if err != nil {
			return nil, err
		}
		return &sql.Cmp{Op: x.Op, L: l, R: rt}, nil
	case *alt.IsNull:
		a, err := r.term(x.Arg, consts)
		if err != nil {
			return nil, err
		}
		return &sql.IsNullE{Arg: a, Negated: x.Negated}, nil
	case *alt.And:
		var kids []sql.Expr
		for _, k := range x.Kids {
			e, err := r.formulaExpr(k, consts)
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return &sql.AndE{Kids: kids}, nil
	case *alt.Or:
		var kids []sql.Expr
		for _, k := range x.Kids {
			e, err := r.formulaExpr(k, consts)
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return &sql.OrE{Kids: kids}, nil
	case *alt.Not:
		if q, ok := x.Kid.(*alt.Quantifier); ok {
			e, err := r.existsExpr(q)
			if err != nil {
				return nil, err
			}
			e.(*sql.Exists).Negated = true
			return e, nil
		}
		kid, err := r.formulaExpr(x.Kid, consts)
		if err != nil {
			return nil, err
		}
		return &sql.NotE{Kid: kid}, nil
	case *alt.Quantifier:
		return r.existsExpr(x)
	}
	return nil, fmt.Errorf("arc2sql: cannot render %T as a condition", f)
}

// existsExpr renders a boolean quantifier scope as EXISTS(SELECT 1 …);
// grouped boolean scopes put their aggregate comparisons in HAVING (the
// implicit-single-group reading of γ∅).
func (r *renderer) existsExpr(q *alt.Quantifier) (sql.Expr, error) {
	consts := map[string]value.Value{}
	for jc, b := range r.link.ConstBindings {
		if r.link.BindingQuantifier[b] == q {
			consts[b.Var] = jc.Val
		}
	}
	sel := &sql.Select{Items: []sql.SelectItem{{Expr: &sql.Lit{Val: value.Int(1)}}}}
	from, onOwner, err := r.fromClause(q, consts)
	if err != nil {
		return nil, err
	}
	sel.From = from
	var whereExprs, having []sql.Expr
	for _, el := range alt.Spine(q.Body) {
		if p, ok := el.(*alt.Pred); ok && (alt.ContainsAgg(p.Left) || alt.ContainsAgg(p.Right)) {
			e, err := r.formulaExpr(p, consts)
			if err != nil {
				return nil, err
			}
			having = append(having, e)
			continue
		}
		e, err := r.formulaExpr(el, consts)
		if err != nil {
			return nil, err
		}
		if owner := r.onTargetFor(el, onOwner, q); owner != nil {
			owner.On = andMerge(owner.On, e)
			continue
		}
		whereExprs = append(whereExprs, e)
	}
	if len(whereExprs) == 1 {
		sel.Where = whereExprs[0]
	} else if len(whereExprs) > 1 {
		sel.Where = &sql.AndE{Kids: whereExprs}
	}
	if q.Grouping != nil {
		for _, k := range q.Grouping.Keys {
			sel.GroupBy = append(sel.GroupBy, &sql.ColRef{Table: k.Var, Column: k.Attr})
		}
	}
	if len(having) > 0 {
		if q.Grouping == nil {
			return nil, fmt.Errorf("arc2sql: aggregate predicate outside a grouping scope")
		}
		if len(having) == 1 {
			sel.Having = having[0]
		} else {
			sel.Having = &sql.AndE{Kids: having}
		}
	}
	return &sql.Exists{Query: sel}, nil
}

// term renders an ARC term as a SQL expression, folding constant-leaf
// variables back into literals.
func (r *renderer) term(t alt.Term, consts map[string]value.Value) (sql.Expr, error) {
	switch x := t.(type) {
	case *alt.Const:
		return &sql.Lit{Val: x.Val}, nil
	case *alt.AttrRef:
		if consts != nil && x.Attr == "val" {
			if v, ok := consts[x.Var]; ok {
				return &sql.Lit{Val: v}, nil
			}
		}
		return &sql.ColRef{Table: x.Var, Column: x.Attr}, nil
	case *alt.Arith:
		l, err := r.term(x.L, consts)
		if err != nil {
			return nil, err
		}
		rt, err := r.term(x.R, consts)
		if err != nil {
			return nil, err
		}
		var op rune
		switch x.Op {
		case alt.OpAdd:
			op = '+'
		case alt.OpSub:
			op = '-'
		case alt.OpMul:
			op = '*'
		case alt.OpDiv:
			op = '/'
		}
		return &sql.BinE{Op: op, L: l, R: rt}, nil
	case *alt.Agg:
		arg, err := r.term(x.Arg, consts)
		if err != nil {
			return nil, err
		}
		switch x.Func {
		case alt.AggCountDistinct:
			return &sql.FuncE{Name: "count", Distinct: true, Arg: arg}, nil
		case alt.AggSum:
			return &sql.FuncE{Name: "sum", Arg: arg}, nil
		case alt.AggCount:
			return &sql.FuncE{Name: "count", Arg: arg}, nil
		case alt.AggAvg:
			return &sql.FuncE{Name: "avg", Arg: arg}, nil
		case alt.AggMin:
			return &sql.FuncE{Name: "min", Arg: arg}, nil
		case alt.AggMax:
			return &sql.FuncE{Name: "max", Arg: arg}, nil
		}
		return nil, fmt.Errorf("arc2sql: unknown aggregate %v", x.Func)
	}
	return nil, fmt.Errorf("arc2sql: cannot render term %T", t)
}

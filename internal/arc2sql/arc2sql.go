// Package arc2sql renders ARC collections back into the SQL subset of
// internal/sql — the second half of the paper's SQL ↔ ARC round trip
// (Section 5). The rendering follows the inverse of the sql2arc
// encodings: grouping scopes become GROUP BY/HAVING, lateral bindings
// become JOIN LATERAL, boolean quantifiers become [NOT] EXISTS (with
// HAVING for grouped boolean scopes), disjunction becomes UNION ALL, and
// constant join leaves are folded back into ON conditions.
//
// Nested quantifiers that still carry head assignments (the raw TRC
// style) are flattened into their parent scope first; this preserves
// semantics under set semantics (Section 2.7 — under bags, nesting is a
// semijoin, which SQL cannot express without rewriting, so Render
// reports it).
package arc2sql

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/sql"
	"repro/internal/value"
)

// Render converts a strict ARC collection into a SQL query.
func Render(col *alt.Collection) (sql.Query, error) {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return nil, err
	}
	r := &renderer{link: link}
	return r.collection(col)
}

// RenderString renders to SQL text.
func RenderString(col *alt.Collection) (string, error) {
	q, err := Render(col)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

type renderer struct {
	link *alt.Link
}

func (r *renderer) collection(col *alt.Collection) (sql.Query, error) {
	if r.link.RecursiveCols[col] {
		return nil, fmt.Errorf("arc2sql: recursive collection %s has no rendering in the SQL subset (no WITH RECURSIVE)", col.Head.Rel)
	}
	branches := orBranches(col.Body)
	var out sql.Query
	for _, br := range branches {
		sel, err := r.branch(col, br)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = sel
		} else {
			out = &sql.Union{Left: out, Right: sel, All: true}
		}
	}
	return out, nil
}

func orBranches(f alt.Formula) []alt.Formula {
	if o, ok := f.(*alt.Or); ok {
		var out []alt.Formula
		for _, k := range o.Kids {
			out = append(out, orBranches(k)...)
		}
		return out
	}
	return []alt.Formula{f}
}

// branch renders one disjunct of a collection body as a SELECT.
func (r *renderer) branch(col *alt.Collection, f alt.Formula) (*sql.Select, error) {
	q, extra, err := flattenGenerating(f, r.link)
	if err != nil {
		return nil, err
	}
	if q == nil {
		// FROM-less branch: only constant assignments.
		sel := &sql.Select{}
		assigns := map[string]sql.Expr{}
		for _, el := range alt.Spine(f) {
			p, ok := el.(*alt.Pred)
			if !ok {
				return nil, fmt.Errorf("arc2sql: unsupported FROM-less branch element %T", el)
			}
			if r.link.Preds[p] != alt.PredAssignment {
				return nil, fmt.Errorf("arc2sql: FROM-less branch with non-assignment predicate %s", p)
			}
			attr, term := r.assignment(p)
			e, err := r.term(term, nil)
			if err != nil {
				return nil, err
			}
			assigns[attr] = e
		}
		for _, a := range col.Head.Attrs {
			e, ok := assigns[a]
			if !ok {
				return nil, fmt.Errorf("arc2sql: head attribute %q unassigned", a)
			}
			sel.Items = append(sel.Items, sql.SelectItem{Expr: e, Alias: a})
		}
		return sel, nil
	}
	return r.quantifier(col, q, extra)
}

// flattenGenerating merges nested quantifiers that carry head
// assignments into one scope (set-semantics flattening) and returns the
// merged quantifier plus any spine conjuncts that sat outside it.
func flattenGenerating(f alt.Formula, link *alt.Link) (*alt.Quantifier, []alt.Formula, error) {
	var outer []alt.Formula
	var q *alt.Quantifier
	for _, el := range alt.Spine(f) {
		if x, ok := el.(*alt.Quantifier); ok && q == nil {
			q = x
			continue
		}
		outer = append(outer, el)
	}
	if q == nil {
		return nil, outer, nil
	}
	// Merge nested generating quantifiers on q's spine upward.
	for {
		var spine []alt.Formula
		var inner *alt.Quantifier
		for _, el := range alt.Spine(q.Body) {
			if x, ok := el.(*alt.Quantifier); ok && inner == nil && containsAssign(x, link) {
				inner = x
				continue
			}
			spine = append(spine, el)
		}
		if inner == nil {
			return q, outer, nil
		}
		if inner.Grouping != nil || q.Grouping != nil {
			return nil, nil, fmt.Errorf("arc2sql: cannot flatten assignments across grouping scopes")
		}
		if inner.Join != nil {
			return nil, nil, fmt.Errorf("arc2sql: cannot flatten a join-annotated nested scope")
		}
		merged := &alt.Quantifier{
			Bindings: append(append([]*alt.Binding{}, q.Bindings...), inner.Bindings...),
			Join:     q.Join,
			Body:     alt.AndF(append(spine, alt.Spine(inner.Body)...)...),
		}
		q = merged
	}
}

func containsAssign(f alt.Formula, link *alt.Link) bool {
	switch x := f.(type) {
	case *alt.Pred:
		return link.Preds[x] == alt.PredAssignment
	case *alt.And:
		for _, k := range x.Kids {
			if containsAssign(k, link) {
				return true
			}
		}
	case *alt.Or:
		for _, k := range x.Kids {
			if containsAssign(k, link) {
				return true
			}
		}
	case *alt.Not:
		return containsAssign(x.Kid, link)
	case *alt.Quantifier:
		return containsAssign(x.Body, link)
	}
	return false
}

// assignment returns (head attribute, value term) of an assignment pred.
func (r *renderer) assignment(p *alt.Pred) (string, alt.Term) {
	head, other := p.Left, p.Right
	if r.link.HeadSide[p] == 1 {
		head, other = p.Right, p.Left
	}
	return head.(*alt.AttrRef).Attr, other
}

// quantifier renders a generating scope as a SELECT.
func (r *renderer) quantifier(col *alt.Collection, q *alt.Quantifier, extra []alt.Formula) (*sql.Select, error) {
	sel := &sql.Select{}
	consts := map[string]value.Value{} // const-leaf var → literal
	for jc, b := range r.link.ConstBindings {
		if r.link.BindingQuantifier[b] == q {
			consts[b.Var] = jc.Val
		}
	}

	// Classify spine elements.
	assigns := map[string][]alt.Term{}
	var wherePreds []alt.Formula
	var aggFilters []alt.Formula
	for _, el := range append(append([]alt.Formula{}, alt.Spine(q.Body)...), extra...) {
		switch x := el.(type) {
		case *alt.Pred:
			if r.link.Preds[x] == alt.PredAssignment {
				attr, term := r.assignment(x)
				assigns[attr] = append(assigns[attr], term)
				continue
			}
			if alt.ContainsAgg(x.Left) || alt.ContainsAgg(x.Right) {
				aggFilters = append(aggFilters, x)
				continue
			}
			wherePreds = append(wherePreds, x)
		default:
			wherePreds = append(wherePreds, el)
		}
	}

	// FROM clause with join annotations.
	from, onOwner, err := r.fromClause(q, consts)
	if err != nil {
		return nil, err
	}
	sel.From = from

	// Route plain predicates to ON conditions of outer joins or WHERE.
	var whereExprs []sql.Expr
	for _, p := range wherePreds {
		e, err := r.formulaExpr(p, consts)
		if err != nil {
			return nil, err
		}
		if owner := r.onTargetFor(p, onOwner, q); owner != nil {
			owner.On = andMerge(owner.On, e)
			continue
		}
		whereExprs = append(whereExprs, e)
	}
	if len(whereExprs) == 1 {
		sel.Where = whereExprs[0]
	} else if len(whereExprs) > 1 {
		sel.Where = &sql.AndE{Kids: whereExprs}
	}

	// Grouping: GROUP BY keys + HAVING for aggregate comparisons.
	if q.Grouping != nil {
		for _, k := range q.Grouping.Keys {
			sel.GroupBy = append(sel.GroupBy, &sql.ColRef{Table: k.Var, Column: k.Attr})
		}
		var having []sql.Expr
		for _, p := range aggFilters {
			e, err := r.formulaExpr(p, consts)
			if err != nil {
				return nil, err
			}
			having = append(having, e)
		}
		if len(having) == 1 {
			sel.Having = having[0]
		} else if len(having) > 1 {
			sel.Having = &sql.AndE{Kids: having}
		}
	} else if len(aggFilters) > 0 {
		return nil, fmt.Errorf("arc2sql: aggregate predicate outside a grouping scope")
	}

	// SELECT items in head order; extra assignments become WHERE equalities.
	for _, a := range col.Head.Attrs {
		terms := assigns[a]
		if len(terms) == 0 {
			return nil, fmt.Errorf("arc2sql: head attribute %q unassigned in this branch", a)
		}
		e, err := r.term(terms[0], consts)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, sql.SelectItem{Expr: e, Alias: a})
		for _, t := range terms[1:] {
			e2, err := r.term(t, consts)
			if err != nil {
				return nil, err
			}
			eq := &sql.Cmp{Op: value.Eq, L: e, R: e2}
			if sel.Where == nil {
				sel.Where = eq
			} else {
				sel.Where = andMerge(sel.Where, eq)
			}
		}
	}
	return sel, nil
}

func andMerge(a, b sql.Expr) sql.Expr {
	if a == nil {
		return b
	}
	if x, ok := a.(*sql.AndE); ok {
		x.Kids = append(x.Kids, b)
		return x
	}
	return &sql.AndE{Kids: []sql.Expr{a, b}}
}

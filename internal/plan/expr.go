package plan

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// scope is one query level's column-resolution context. parent chains to
// the enclosing query's scope, mirroring the reference evaluator's
// correlation frames (inner aliases shadow outer ones).
type scope struct {
	schema []ColID
	parent *scope
}

// resolve finds the column a reference denotes, mirroring the reference
// evaluator's frame.lookup: qualified references bind to the innermost
// scope that knows the alias (and must find the column there);
// unqualified references bind to the innermost scope with exactly one
// column of that name (two candidates in one scope is ambiguous). depth 0
// is the current scope; depth > 0 is a correlated outer reference.
func (s *scope) resolve(ref *sql.ColRef) (depth, col int, err error) {
	for cur, d := s, 0; cur != nil; cur, d = cur.parent, d+1 {
		if ref.Table != "" {
			known := false
			for i, c := range cur.schema {
				if c.Rel != ref.Table {
					continue
				}
				known = true
				if c.Col == ref.Column {
					return d, i, nil
				}
			}
			if known {
				return 0, 0, notPlannable("table %q has no column %q", ref.Table, ref.Column)
			}
			continue
		}
		hit, hits := -1, 0
		for i, c := range cur.schema {
			if c.Col == ref.Column {
				hit = i
				hits++
			}
		}
		if hits > 1 {
			return 0, 0, notPlannable("ambiguous column %q", ref.Column)
		}
		if hits == 1 {
			return d, hit, nil
		}
	}
	return 0, 0, notPlannable("unknown column %s", ref)
}

// compileScalar compiles a scalar expression over the scope's own schema;
// outer (correlated) references and subqueries are not plannable here.
func (s *scope) compileScalar(x sql.Expr) (exprFn, error) {
	switch n := x.(type) {
	case *sql.Lit:
		v := n.Val
		return func(relation.Tuple, *runCtx) value.Value { return v }, nil
	case *sql.Param:
		// Resolved from the bound arguments at execution time — the
		// plan-time leaf that makes re-execution re-plan-free.
		i := n.Index - 1
		return func(_ relation.Tuple, ctx *runCtx) value.Value { return ctx.param(i) }, nil
	case *sql.ColRef:
		depth, col, err := s.resolve(n)
		if err != nil {
			return nil, err
		}
		if depth != 0 {
			return nil, notPlannable("correlated reference %s", n)
		}
		return func(t relation.Tuple, _ *runCtx) value.Value { return t[col] }, nil
	case *sql.BinE:
		l, err := s.compileScalar(n.L)
		if err != nil {
			return nil, err
		}
		r, err := s.compileScalar(n.R)
		if err != nil {
			return nil, err
		}
		return compileArith(n, l, r)
	}
	return nil, notPlannable("expression %T outside the scalar fragment", x)
}

// compileArith builds the arithmetic closure for a binary expression,
// with the reference evaluator's error message on type failure.
func compileArith(n *sql.BinE, l, r exprFn) (exprFn, error) {
	var op func(a, b value.Value) (value.Value, bool)
	switch n.Op {
	case '+':
		op = value.Add
	case '-':
		op = value.Sub
	case '*':
		op = value.Mul
	case '/':
		op = value.Div
	default:
		return nil, notPlannable("operator %q", string(n.Op))
	}
	str := n.String()
	return func(t relation.Tuple, ctx *runCtx) value.Value {
		a := l(t, ctx)
		b := r(t, ctx)
		out, ok := op(a, b)
		if !ok {
			ctx.fail(fmt.Errorf("type error in %s", str))
		}
		return out
	}, nil
}

// scalarCompiler compiles scalar leaf expressions of predicates; the
// per-row scope and the post-GROUP BY schema both implement it.
type scalarCompiler interface {
	compileScalar(x sql.Expr) (exprFn, error)
}

// compilePred compiles a boolean expression under 3VL over the scope's
// own schema. Subquery predicates (EXISTS/IN) are only plannable as
// top-level WHERE conjuncts, which the SELECT compiler peels off before
// calling this — here they bail out.
func (s *scope) compilePred(x sql.Expr) (predFn, error) {
	return compilePredWith(s, x)
}

// compilePredWith compiles a boolean expression under 3VL with sc
// compiling the scalar leaves.
func compilePredWith(sc scalarCompiler, x sql.Expr) (predFn, error) {
	switch n := x.(type) {
	case *sql.AndE:
		kids, err := compilePredsWith(sc, n.Kids)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple, ctx *runCtx) value.TV {
			tv := value.True
			for _, k := range kids {
				tv = tv.And(k(t, ctx))
				if tv == value.False {
					return value.False
				}
			}
			return tv
		}, nil
	case *sql.OrE:
		kids, err := compilePredsWith(sc, n.Kids)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple, ctx *runCtx) value.TV {
			tv := value.False
			for _, k := range kids {
				tv = tv.Or(k(t, ctx))
				if tv == value.True {
					return value.True
				}
			}
			return tv
		}, nil
	case *sql.NotE:
		kid, err := compilePredWith(sc, n.Kid)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple, ctx *runCtx) value.TV { return kid(t, ctx).Not() }, nil
	case *sql.Cmp:
		l, err := sc.compileScalar(n.L)
		if err != nil {
			return nil, err
		}
		r, err := sc.compileScalar(n.R)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t relation.Tuple, ctx *runCtx) value.TV {
			return op.Apply(l(t, ctx), r(t, ctx))
		}, nil
	case *sql.IsNullE:
		arg, err := sc.compileScalar(n.Arg)
		if err != nil {
			return nil, err
		}
		neg := n.Negated
		return func(t relation.Tuple, ctx *runCtx) value.TV {
			return value.TVFromBool(arg(t, ctx).IsNull() != neg)
		}, nil
	case *sql.Lit:
		if n.Val.Kind() == value.KindBool {
			tv := value.TVFromBool(n.Val.AsBool())
			return func(relation.Tuple, *runCtx) value.TV { return tv }, nil
		}
		if n.Val.IsNull() {
			return func(relation.Tuple, *runCtx) value.TV { return value.Unknown }, nil
		}
	}
	return nil, notPlannable("predicate %T outside the compiled fragment", x)
}

func compilePredsWith(sc scalarCompiler, xs []sql.Expr) ([]predFn, error) {
	out := make([]predFn, len(xs))
	for i, x := range xs {
		p, err := compilePredWith(sc, x)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// andPreds folds conjunct predicates into one.
func andPreds(preds []predFn) predFn {
	if len(preds) == 1 {
		return preds[0]
	}
	return func(t relation.Tuple, ctx *runCtx) value.TV {
		tv := value.True
		for _, p := range preds {
			tv = tv.And(p(t, ctx))
			if tv == value.False {
				return value.False
			}
		}
		return tv
	}
}

// refsAt classifies where every column reference of x resolves: sets
// local (depth 0) and outer (depth ≥ 1) flags. An unresolvable or
// non-scalar expression returns an error.
func (s *scope) refsAt(x sql.Expr) (local, outer bool, err error) {
	switch n := x.(type) {
	case *sql.Lit, *sql.Param:
		return false, false, nil
	case *sql.ColRef:
		depth, _, err := s.resolve(n)
		if err != nil {
			return false, false, err
		}
		return depth == 0, depth > 0, nil
	case *sql.BinE:
		l1, o1, err := s.refsAt(n.L)
		if err != nil {
			return false, false, err
		}
		l2, o2, err := s.refsAt(n.R)
		if err != nil {
			return false, false, err
		}
		return l1 || l2, o1 || o2, nil
	}
	return false, false, notPlannable("expression %T outside the scalar fragment", x)
}

package plan

import (
	"fmt"

	"repro/internal/convention"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

// Compile lowers a parsed SQL query over db onto a physical exec-operator
// plan. Queries outside the compiled fragment (LATERAL, scalar
// subqueries, correlation without equality, rep-row grouping, …) return
// an error wrapping ErrNotPlannable; callers fall back to the reference
// enumeration evaluator, which also owns user-facing errors for
// genuinely invalid queries.
func Compile(q sql.Query, db map[string]*relation.Relation) (*Plan, error) {
	c := &compilerCtx{db: db}
	p, err := c.compileQuery(q, nil)
	if err != nil {
		return nil, err
	}
	p.nparams = sql.MaxParam(q)
	return p, nil
}

// compilerCtx carries compile-time state shared across query levels.
type compilerCtx struct {
	db map[string]*relation.Relation
	// ctes is the copy-on-write scope of WITH bindings in force; CTE
	// names shadow database relations.
	ctes map[string]*cteBinding
}

func (c *compilerCtx) compileQuery(q sql.Query, outer *scope) (*Plan, error) {
	switch x := q.(type) {
	case *sql.With:
		return c.compileWith(x, outer)
	case *sql.Union:
		left, err := c.compileQuery(x.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := c.compileQuery(x.Right, outer)
		if err != nil {
			return nil, err
		}
		if len(left.attrs) != len(right.attrs) {
			return nil, notPlannable("UNION arity mismatch")
		}
		var root Node = &unionNode{kids: []Node{left.root, right.root}}
		if !x.All {
			root = &dedupNode{input: root}
		}
		return &Plan{root: root, attrs: left.attrs}, nil
	case *sql.Select:
		return c.compileSelect(x, outer)
	}
	return nil, notPlannable("query node %T", q)
}

// conjuncts flattens the top-level AND spine of an expression.
func conjuncts(x sql.Expr) []sql.Expr {
	if x == nil {
		return nil
	}
	if a, ok := x.(*sql.AndE); ok {
		var out []sql.Expr
		for _, k := range a.Kids {
			out = append(out, conjuncts(k)...)
		}
		return out
	}
	return []sql.Expr{x}
}

// hasAggregate mirrors the reference evaluator's implicit-grouping test.
func hasAggregate(s *sql.Select) bool {
	found := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncE:
			found = true
		case *sql.BinE:
			walk(x.L)
			walk(x.R)
		case *sql.Cmp:
			walk(x.L)
			walk(x.R)
		case *sql.AndE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.OrE:
			for _, k := range x.Kids {
				walk(k)
			}
		case *sql.NotE:
			walk(x.Kid)
		case *sql.IsNullE:
			walk(x.Arg)
		}
	}
	for _, it := range s.Items {
		walk(it.Expr)
	}
	if s.Having != nil {
		walk(s.Having)
	}
	return found
}

// outNames computes the output column names with the reference
// evaluator's duplicate renaming.
func outNames(items []sql.SelectItem) []string {
	attrs := make([]string, len(items))
	seen := map[string]int{}
	for i, it := range items {
		name := it.OutName(i)
		if n, dup := seen[name]; dup {
			seen[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		} else {
			seen[name] = 1
		}
		attrs[i] = name
	}
	return attrs
}

func (c *compilerCtx) compileSelect(s *sql.Select, outer *scope) (*Plan, error) {
	conjs := conjuncts(s.Where)
	consumed := make([]bool, len(conjs))
	node, err := c.compileFrom(s.From, outer, conjs, consumed)
	if err != nil {
		return nil, err
	}
	var rest []sql.Expr
	for i, cj := range conjs {
		if !consumed[i] {
			rest = append(rest, cj)
		}
	}
	node, err = c.compileWhere(node, rest, outer)
	if err != nil {
		return nil, err
	}
	fromScope := &scope{schema: node.Schema(), parent: outer}
	attrs := outNames(s.Items)

	var root Node
	if len(s.GroupBy) > 0 || s.Having != nil || hasAggregate(s) {
		root, err = c.compileGrouped(s, node, fromScope, attrs)
		if err != nil {
			return nil, err
		}
	} else {
		exprs := make([]exprFn, len(s.Items))
		for i, it := range s.Items {
			e, err := fromScope.compileScalar(it.Expr)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
		}
		pn := newProjectNode(node, exprs, attrs)
		// Pure column projections record their source columns, enabling
		// the point-lookup fast path when the input is a direct scan.
		if len(s.Items) > 0 {
			srcCols := make([]int, len(s.Items))
			plain := true
			for i, it := range s.Items {
				ref, ok := it.Expr.(*sql.ColRef)
				if !ok {
					plain = false
					break
				}
				depth, col, err := fromScope.resolve(ref)
				if err != nil || depth != 0 {
					plain = false
					break
				}
				srcCols[i] = col
			}
			if plain {
				pn.srcCols = srcCols
			}
		}
		root = pn
	}
	if s.Distinct {
		root = &dedupNode{input: root}
	}
	return &Plan{root: root, attrs: attrs}, nil
}

// compileFrom lowers the FROM clause: items chain left-deep through hash
// joins keyed on the WHERE equality conjuncts that connect them (marking
// those conjuncts consumed); constant equality conjuncts on top-level
// base tables push down to index probes.
func (c *compilerCtx) compileFrom(refs []sql.TableRef, outer *scope, conjs []sql.Expr, consumed []bool) (Node, error) {
	if len(refs) == 0 {
		return valuesNode{}, nil
	}
	var cur Node
	for i, ref := range refs {
		next, err := c.compileRef(ref, outer, conjs, consumed)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			cur = next
			continue
		}
		cur = chainJoin(cur, next, outer, conjs, consumed)
	}
	return cur, nil
}

// chainJoin combines two FROM subtrees with an inner hash join keyed on
// every available column-equality conjunct between them (cross join when
// none applies). Key equality is strict, so consuming a conjunct here is
// exactly the WHERE filter it came from.
func chainJoin(left, right Node, outer *scope, conjs []sql.Expr, consumed []bool) Node {
	n := newHashJoinNode(joinInner, left, right)
	combined := &scope{schema: n.schema, parent: outer}
	nLeft := len(left.Schema())
	for i, cj := range conjs {
		if consumed[i] {
			continue
		}
		lc, rc, ok := splitEqCols(cj, combined, nLeft)
		if !ok {
			continue
		}
		n.leftCols = append(n.leftCols, lc)
		n.rightCols = append(n.rightCols, rc-nLeft)
		n.keyStrs = append(n.keyStrs, cj.(*sql.Cmp).String())
		consumed[i] = true
	}
	return n
}

// splitEqCols matches a conjunct of the form col = col whose sides
// resolve locally on opposite sides of a two-part schema, returning the
// combined-schema positions (left first).
func splitEqCols(cj sql.Expr, combined *scope, nLeft int) (lc, rc int, ok bool) {
	cmp, isCmp := cj.(*sql.Cmp)
	if !isCmp || cmp.Op != value.Eq {
		return 0, 0, false
	}
	lRef, lOK := cmp.L.(*sql.ColRef)
	rRef, rOK := cmp.R.(*sql.ColRef)
	if !lOK || !rOK {
		return 0, 0, false
	}
	ld, lcol, err := combined.resolve(lRef)
	if err != nil || ld != 0 {
		return 0, 0, false
	}
	rd, rcol, err := combined.resolve(rRef)
	if err != nil || rd != 0 {
		return 0, 0, false
	}
	if lcol < nLeft && rcol >= nLeft {
		return lcol, rcol, true
	}
	if rcol < nLeft && lcol >= nLeft {
		return rcol, lcol, true
	}
	return 0, 0, false
}

func (c *compilerCtx) compileRef(ref sql.TableRef, outer *scope, conjs []sql.Expr, consumed []bool) (Node, error) {
	switch x := ref.(type) {
	case *sql.BaseTable:
		if bind := c.withCTE(x.Name); bind != nil {
			return newCTENode(bind, x.Binding()), nil
		}
		rel := c.db[x.Name]
		if rel == nil {
			return nil, notPlannable("unknown table %q", x.Name)
		}
		n := newScanNode(rel, x.Binding())
		c.pushProbes(n, conjs, consumed)
		c.pushRange(n, conjs, consumed)
		return n, nil
	case *sql.SubqueryTable:
		if x.Lateral {
			return nil, notPlannable("LATERAL subquery")
		}
		sub, err := c.compileQuery(x.Query, outer)
		if err != nil {
			return nil, err
		}
		return newDerivedNode(sub, x.Alias), nil
	case *sql.JoinRef:
		return c.compileJoinRef(x, outer)
	}
	return nil, notPlannable("table ref %T", ref)
}

// pushProbes turns WHERE conjuncts of the form alias.col = literal (or
// alias.col = $n) into index probes on a top-level base-table scan,
// consuming the conjunct. A literal must be non-NULL and Indexable so
// that probe (Key) identity coincides with Eq, making the consumed
// conjunct exactly the filter it replaces; a parameter's value is
// classified per execution instead (NULL → empty scan, non-indexable →
// scan with strict Eq re-check), which preserves the same equivalence
// for every possible binding. Probes are never pushed below outer
// joins — compileJoinRef does not call this.
func (c *compilerCtx) pushProbes(n *scanNode, conjs []sql.Expr, consumed []bool) {
	for i, cj := range conjs {
		if consumed[i] {
			continue
		}
		cmp, ok := cj.(*sql.Cmp)
		if !ok || cmp.Op != value.Eq {
			continue
		}
		for _, sides := range [2][2]sql.Expr{{cmp.L, cmp.R}, {cmp.R, cmp.L}} {
			ref, ok := sides[0].(*sql.ColRef)
			if !ok || ref.Table != n.alias {
				continue
			}
			col := n.rel.AttrIndex(ref.Column)
			if col < 0 {
				continue
			}
			switch other := sides[1].(type) {
			case *sql.Lit:
				if other.Val.IsNull() || !other.Val.Indexable() {
					continue
				}
				n.probes = append(n.probes, scanProbe{col: col, val: other.Val, param: -1})
				n.probeStrs = append(n.probeStrs, fmt.Sprintf("%s=%s", ref.Column, other.Val))
				consumed[i] = true
			case *sql.Param:
				n.probes = append(n.probes, scanProbe{col: col, param: other.Index - 1})
				n.probeStrs = append(n.probeStrs, fmt.Sprintf("%s=%s", ref.Column, other))
				consumed[i] = true
			default:
				continue
			}
			break
		}
	}
}

// flipCmp mirrors an ordering comparison so `lit < col` reads as
// `col > lit`.
func flipCmp(op value.CmpOp) value.CmpOp {
	switch op {
	case value.Lt:
		return value.Gt
	case value.Le:
		return value.Ge
	case value.Gt:
		return value.Lt
	case value.Ge:
		return value.Le
	}
	return op
}

// pushRange turns ordering conjuncts on one column of a top-level
// base-table scan — alias.col < lit, alias.col >= $n, and the two
// conjuncts BETWEEN desugars into — into a bounded range scan over the
// relation's ordered index, consuming the conjuncts. Only scans without
// equality probes take a range (a hash probe already narrows the scan
// more than an ordered slice would); the first ranged column wins, each
// side binds at most once, and everything else stays a filter. The
// ordered probe matches the 3VL Compare contract exactly — NULL column
// values, NULL bounds, and cross-class values match nothing — so a
// consumed conjunct is precisely the filter it replaces, for literal
// and for every possible parameter binding alike.
func (c *compilerCtx) pushRange(n *scanNode, conjs []sql.Expr, consumed []bool) {
	if len(n.probes) > 0 {
		return
	}
	var rng *scanRange
	var colName, loStr, hiStr string
	for i, cj := range conjs {
		if consumed[i] {
			continue
		}
		cmp, ok := cj.(*sql.Cmp)
		if !ok {
			continue
		}
		op := cmp.Op
		var ref *sql.ColRef
		var other sql.Expr
		if l, isRef := cmp.L.(*sql.ColRef); isRef && l.Table == n.alias {
			ref, other = l, cmp.R
		} else if r, isRef := cmp.R.(*sql.ColRef); isRef && r.Table == n.alias {
			ref, other = r, cmp.L
			op = flipCmp(op)
		} else {
			continue
		}
		if op != value.Lt && op != value.Le && op != value.Gt && op != value.Ge {
			continue
		}
		col := n.rel.AttrIndex(ref.Column)
		if col < 0 {
			continue
		}
		b := scanBound{set: true, incl: op == value.Le || op == value.Ge, param: -1}
		var bStr string
		switch o := other.(type) {
		case *sql.Lit:
			if o.Val.IsNull() {
				continue // c < NULL is Unknown everywhere; leave the filter
			}
			b.val = o.Val
			bStr = fmt.Sprintf("%s", o.Val)
		case *sql.Param:
			b.param = o.Index - 1
			bStr = o.String()
		default:
			continue
		}
		if rng == nil {
			rng = &scanRange{col: col}
			colName = ref.Column
		} else if rng.col != col {
			continue
		}
		if op == value.Lt || op == value.Le {
			if rng.hi.set {
				continue
			}
			rng.hi, hiStr = b, bStr
		} else {
			if rng.lo.set {
				continue
			}
			rng.lo, loStr = b, bStr
		}
		consumed[i] = true
	}
	if rng == nil {
		return
	}
	n.rng = rng
	open, lo := "(", "-inf"
	if rng.lo.set {
		lo = loStr
		if rng.lo.incl {
			open = "["
		}
	}
	close, hi := ")", "+inf"
	if rng.hi.set {
		hi = hiStr
		if rng.hi.incl {
			close = "]"
		}
	}
	n.rangeStr = fmt.Sprintf("%s in %s%s, %s%s", colName, open, lo, hi, close)
}

// compileJoinRef lowers an explicit join tree. ON column equalities
// between the two sides become hash keys; everything else in ON is the
// residual predicate, evaluated under 3VL on the concatenated tuple —
// together they reproduce the reference onHolds check, with outer-join
// null extension handled by the operator.
func (c *compilerCtx) compileJoinRef(x *sql.JoinRef, outer *scope) (Node, error) {
	left, err := c.compileRef(x.Left, outer, nil, nil)
	if err != nil {
		return nil, err
	}
	right, err := c.compileRef(x.Right, outer, nil, nil)
	if err != nil {
		return nil, err
	}
	var kind joinKind
	switch x.Kind {
	case sql.JoinInner, sql.JoinCross:
		kind = joinInner
	case sql.JoinLeft:
		kind = joinLeft
	case sql.JoinFull:
		kind = joinFull
	default:
		return nil, notPlannable("join kind %v", x.Kind)
	}
	n := newHashJoinNode(kind, left, right)
	combined := &scope{schema: n.schema, parent: outer}
	nLeft := len(left.Schema())
	var residual []sql.Expr
	for _, cj := range conjuncts(x.On) {
		lc, rc, ok := splitEqCols(cj, combined, nLeft)
		if ok {
			n.leftCols = append(n.leftCols, lc)
			n.rightCols = append(n.rightCols, rc-nLeft)
			n.keyStrs = append(n.keyStrs, cj.(*sql.Cmp).String())
			continue
		}
		residual = append(residual, cj)
	}
	if len(residual) > 0 {
		preds, err := compilePredsWith(combined, residual)
		if err != nil {
			return nil, err
		}
		n.residual = andPreds(preds)
		strs := ""
		for i, r := range residual {
			if i > 0 {
				strs += " AND "
			}
			strs += r.String()
		}
		n.residualStr = strs
	}
	return n, nil
}

// compileWhere applies the remaining WHERE conjuncts in order: [NOT]
// EXISTS / [NOT] IN conjuncts decorrelate into semi/anti joins, plain
// predicates become filters. Order is preserved so per-row evaluation
// (and short-circuiting) matches the reference evaluator.
func (c *compilerCtx) compileWhere(node Node, conjs []sql.Expr, outer *scope) (Node, error) {
	var pending []sql.Expr
	flush := func(n Node) (Node, error) {
		if len(pending) == 0 {
			return n, nil
		}
		sc := &scope{schema: n.Schema(), parent: outer}
		preds, err := compilePredsWith(sc, pending)
		if err != nil {
			return nil, err
		}
		str := ""
		for i, p := range pending {
			if i > 0 {
				str += " AND "
			}
			str += p.String()
		}
		pending = nil
		return &filterNode{input: n, pred: andPreds(preds), str: str}, nil
	}
	for _, cj := range conjs {
		if sub, inExpr, negated, ok := asSubqueryConjunct(cj); ok {
			var err error
			node, err = flush(node)
			if err != nil {
				return nil, err
			}
			node, err = c.compileSemi(node, outer, sub, inExpr, negated, cj)
			if err != nil {
				return nil, err
			}
			continue
		}
		pending = append(pending, cj)
	}
	return flush(node)
}

// asSubqueryConjunct recognizes [NOT] EXISTS (q) and x [NOT] IN (q)
// conjuncts, including a NOT wrapper, returning the subquery, the IN
// left expression (nil for EXISTS), and the effective negation.
func asSubqueryConjunct(cj sql.Expr) (q sql.Query, inExpr sql.Expr, negated, ok bool) {
	neg := false
	if n, isNot := cj.(*sql.NotE); isNot {
		neg = true
		cj = n.Kid
	}
	switch x := cj.(type) {
	case *sql.Exists:
		return x.Query, nil, x.Negated != neg, true
	case *sql.InE:
		return x.Query, x.Left, x.Negated != neg, true
	}
	return nil, nil, false, false
}

// compileSemi decorrelates one subquery conjunct: the inner SELECT's
// equality-correlated conjuncts become the hash-join key between the
// outer rows and the materialized inner plan; [NOT] IN additionally folds
// three-valued membership of the probe expression over the correlated
// candidates, which reproduces SQL's NULL semantics exactly.
func (c *compilerCtx) compileSemi(input Node, outer *scope, q sql.Query, inExpr sql.Expr, negated bool, orig sql.Expr) (Node, error) {
	inner, ok := q.(*sql.Select)
	if !ok {
		return nil, notPlannable("subquery %T", q)
	}
	if len(inner.GroupBy) > 0 || inner.Having != nil || hasAggregate(inner) {
		return nil, notPlannable("grouped subquery")
	}
	inputScope := &scope{schema: input.Schema(), parent: outer}
	innerConjs := conjuncts(inner.Where)
	innerConsumed := make([]bool, len(innerConjs))
	innerNode, err := c.compileFrom(inner.From, inputScope, innerConjs, innerConsumed)
	if err != nil {
		return nil, err
	}
	innerScope := &scope{schema: innerNode.Schema(), parent: inputScope}

	// Split the inner WHERE into correlation equalities (inner side vs
	// outer side) and residual inner conjuncts.
	var corrInner, corrOuter []sql.Expr
	var residual []sql.Expr
	for i, cj := range innerConjs {
		if innerConsumed[i] {
			continue
		}
		if ie, oe, ok, err := splitCorrEq(cj, innerScope); err != nil {
			return nil, err
		} else if ok {
			corrInner = append(corrInner, ie)
			corrOuter = append(corrOuter, oe)
			continue
		}
		residual = append(residual, cj)
	}
	filtered, err := c.compileWhere(innerNode, residual, inputScope)
	if err != nil {
		return nil, err
	}

	n := &semiJoinNode{input: input, negated: negated}
	// Build the subquery projection: correlation columns, then the IN
	// membership column.
	var subExprs []exprFn
	var subNames []string
	for i, ie := range corrInner {
		fn, err := innerScope.compileScalar(ie)
		if err != nil {
			return nil, err
		}
		subExprs = append(subExprs, fn)
		subNames = append(subNames, fmt.Sprintf("k%d", i))
		n.subCols = append(n.subCols, i)
		ofn, err := inputScope.compileScalar(corrOuter[i])
		if err != nil {
			return nil, err
		}
		n.probes = append(n.probes, ofn)
		n.probeStrs = append(n.probeStrs, fmt.Sprintf("%s = %s", corrOuter[i], ie))
	}
	if inExpr != nil {
		if len(inner.Items) != 1 {
			return nil, notPlannable("IN subquery arity %d", len(inner.Items))
		}
		fn, err := innerScope.compileScalar(inner.Items[0].Expr)
		if err != nil {
			return nil, err
		}
		subExprs = append(subExprs, fn)
		subNames = append(subNames, "v")
		n.inCol = len(n.subCols)
		xfn, err := inputScope.compileScalar(inExpr)
		if err != nil {
			return nil, err
		}
		n.inExpr = xfn
		n.inStr = fmt.Sprintf("%s → %s", inExpr, inner.Items[0].Expr)
	} else {
		// EXISTS ignores the inner items, but they must be error-free
		// per row for the paths to agree; bare literals and column
		// references are.
		for _, it := range inner.Items {
			switch it.Expr.(type) {
			case *sql.Lit:
			case *sql.ColRef:
				if _, err := innerScope.compileScalar(it.Expr); err != nil {
					return nil, err
				}
			default:
				return nil, notPlannable("EXISTS item %T", it.Expr)
			}
		}
	}
	n.sub = &Plan{root: newProjectNode(filtered, subExprs, subNames), attrs: subNames}
	return n, nil
}

// splitCorrEq matches an equality conjunct with one side reading only the
// inner (depth-0) schema and the other only the enclosing (depth-1)
// schema. Sides mixing scopes are not decorrelatable and fail the whole
// compilation (the fragment requires pure equality correlation).
func splitCorrEq(cj sql.Expr, inner *scope) (innerSide, outerSide sql.Expr, ok bool, err error) {
	cmp, isCmp := cj.(*sql.Cmp)
	if !isCmp || cmp.Op != value.Eq {
		// Non-equality conjuncts stay residual; if they are correlated,
		// residual compilation bails out later.
		return nil, nil, false, nil
	}
	lLocal, lOuter, lErr := inner.refsAt(cmp.L)
	rLocal, rOuter, rErr := inner.refsAt(cmp.R)
	if lErr != nil || rErr != nil {
		// Unresolvable or non-scalar sides: leave residual, where the
		// real compile produces the precise bailout.
		return nil, nil, false, nil
	}
	if lLocal && lOuter || rLocal && rOuter {
		return nil, nil, false, notPlannable("mixed-scope correlation %s", cmp)
	}
	switch {
	case lOuter && !rOuter && rLocal:
		return cmp.R, cmp.L, true, nil
	case rOuter && !lOuter && lLocal:
		return cmp.L, cmp.R, true, nil
	}
	return nil, nil, false, nil
}

// compileGrouped lowers GROUP BY / HAVING / aggregate items onto a
// streaming γ. Select items and HAVING must be expressible over the
// post-group schema (group keys matched syntactically, aggregates by
// rendered form); anything needing a representative row falls back.
func (c *compilerCtx) compileGrouped(s *sql.Select, input Node, fromScope *scope, attrs []string) (Node, error) {
	g := &groupNode{input: input, conv: convention.SQL()}
	for _, k := range s.GroupBy {
		fn, err := fromScope.compileScalar(k)
		if err != nil {
			return nil, err
		}
		g.keys = append(g.keys, fn)
		g.keyStrs = append(g.keyStrs, k.String())
	}
	pg := &postGroup{node: g}
	for _, it := range s.Items {
		if err := pg.collectAggs(it.Expr, fromScope); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		if err := pg.collectAggs(s.Having, fromScope); err != nil {
			return nil, err
		}
	}
	var root Node = g
	if s.Having != nil {
		pred, err := compilePredWith(pg, s.Having)
		if err != nil {
			return nil, err
		}
		root = &filterNode{input: root, pred: pred, str: s.Having.String()}
	}
	exprs := make([]exprFn, len(s.Items))
	for i, it := range s.Items {
		fn, err := pg.compileScalar(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs[i] = fn
	}
	return newProjectNode(root, exprs, attrs), nil
}

// postGroup compiles expressions over a groupNode's output schema:
// grouping keys are matched by rendered form, aggregate applications by
// their rendered call.
type postGroup struct {
	node   *groupNode
	aggIdx map[string]int
}

// collectAggs registers every aggregate call in x as a γ column,
// deduplicating by rendered form.
func (pg *postGroup) collectAggs(x sql.Expr, fromScope *scope) error {
	switch n := x.(type) {
	case *sql.FuncE:
		return pg.addAgg(n, fromScope)
	case *sql.BinE:
		if err := pg.collectAggs(n.L, fromScope); err != nil {
			return err
		}
		return pg.collectAggs(n.R, fromScope)
	case *sql.Cmp:
		if err := pg.collectAggs(n.L, fromScope); err != nil {
			return err
		}
		return pg.collectAggs(n.R, fromScope)
	case *sql.AndE:
		for _, k := range n.Kids {
			if err := pg.collectAggs(k, fromScope); err != nil {
				return err
			}
		}
	case *sql.OrE:
		for _, k := range n.Kids {
			if err := pg.collectAggs(k, fromScope); err != nil {
				return err
			}
		}
	case *sql.NotE:
		return pg.collectAggs(n.Kid, fromScope)
	case *sql.IsNullE:
		return pg.collectAggs(n.Arg, fromScope)
	}
	return nil
}

func (pg *postGroup) addAgg(n *sql.FuncE, fromScope *scope) error {
	if pg.aggIdx == nil {
		pg.aggIdx = map[string]int{}
	}
	str := n.String()
	if _, ok := pg.aggIdx[str]; ok {
		return nil
	}
	spec := aggSpec{name: n.Name, str: str}
	switch {
	case n.Star:
		if n.Name != "count" {
			return notPlannable("%s(*)", n.Name)
		}
		spec.fn = exec.Count
	case n.Distinct:
		if n.Name != "count" {
			return notPlannable("%s(DISTINCT)", n.Name)
		}
		spec.fn = exec.CountDistinct
	default:
		switch n.Name {
		case "count":
			spec.fn = exec.CountCol
		case "countdistinct":
			spec.fn = exec.CountDistinct
		case "sum":
			spec.fn = exec.Sum
			spec.numeric = true
		case "avg":
			spec.fn = exec.Avg
			spec.numeric = true
		case "min":
			spec.fn = exec.Min
		case "max":
			spec.fn = exec.Max
		default:
			return notPlannable("aggregate %q", n.Name)
		}
	}
	if !n.Star {
		arg, err := fromScope.compileScalar(n.Arg)
		if err != nil {
			return err
		}
		spec.arg = arg
	}
	pg.aggIdx[str] = len(pg.node.aggs)
	pg.node.aggs = append(pg.node.aggs, spec)
	return nil
}

// compileScalar compiles an expression over the post-group tuple
// [keys..., agg values...].
func (pg *postGroup) compileScalar(x sql.Expr) (exprFn, error) {
	str := x.String()
	for i, ks := range pg.node.keyStrs {
		if str == ks {
			col := i
			return func(t relation.Tuple, _ *runCtx) value.Value { return t[col] }, nil
		}
	}
	switch n := x.(type) {
	case *sql.FuncE:
		if i, ok := pg.aggIdx[str]; ok {
			col := len(pg.node.keys) + i
			return func(t relation.Tuple, _ *runCtx) value.Value { return t[col] }, nil
		}
		return nil, notPlannable("unregistered aggregate %s", str)
	case *sql.Lit:
		v := n.Val
		return func(relation.Tuple, *runCtx) value.Value { return v }, nil
	case *sql.Param:
		i := n.Index - 1
		return func(_ relation.Tuple, ctx *runCtx) value.Value { return ctx.param(i) }, nil
	case *sql.BinE:
		l, err := pg.compileScalar(n.L)
		if err != nil {
			return nil, err
		}
		r, err := pg.compileScalar(n.R)
		if err != nil {
			return nil, err
		}
		return compileArith(n, l, r)
	}
	return nil, notPlannable("%s needs a representative row", str)
}

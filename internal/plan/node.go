// Package plan is the tuple-level query planner: it compiles SQL
// SELECT/UNION blocks (internal/sql) — FROM join trees, WHERE with
// decorrelatable IN/EXISTS/NOT IN subqueries, GROUP BY / HAVING, DISTINCT
// — into trees of the streaming physical operators in internal/exec,
// instead of the per-row environment enumeration the reference evaluator
// uses. Every plan renders an EXPLAIN-style string (golden-testable), and
// the compiled fragment is differentially verified byte-identical against
// the enumeration path over the qgen corpus. Queries outside the fragment
// fail compilation with ErrNotPlannable and callers fall back to
// enumeration, so planning is always semantics-preserving.
//
// internal/eval performs the analogous compilation for ARC quantifier
// scopes (see eval.ExplainCollection); both lower onto the same exec
// operators.
package plan

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/convention"
	"repro/internal/exec"
	"repro/internal/fixpoint"
	"repro/internal/relation"
	"repro/internal/trace"
	"repro/internal/value"
)

// ErrNotPlannable marks queries outside the compiled fragment; callers
// fall back to the enumeration evaluator (which also owns user-facing
// error reporting for genuinely invalid queries).
var ErrNotPlannable = errors.New("not plannable")

// notPlannable builds a wrapped ErrNotPlannable with a reason.
func notPlannable(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotPlannable, fmt.Sprintf(format, args...))
}

// ColID identifies one column of an intermediate schema: the binding
// alias and column name, or a computed column with an empty Rel.
type ColID struct {
	Rel, Col string
}

// String renders "rel.col" or the bare column name.
func (c ColID) String() string {
	if c.Rel == "" {
		return c.Col
	}
	return c.Rel + "." + c.Col
}

// runCtx carries runtime state through one plan execution: the first
// error raised by a compiled expression aborts the run. All mutable
// execution state lives here — bound parameter values, the rotating
// fixpoint relations, and the per-execution build-side cache — so a
// compiled Plan itself is immutable and any number of sessions can run
// the same plan concurrently.
type runCtx struct {
	err    error
	params []value.Value
	// check, when non-nil, is polled in the pull loop (every pollEvery
	// rows through guard) and per fixpoint round; a non-nil return aborts
	// the execution. Context cancellation arrives through it.
	check    func() error
	checkCnt uint
	// handles maps fixpoint handles to their current relations for THIS
	// execution: the materialized CTE results and, inside a recursive
	// step, the rotating delta.
	handles map[*fixpoint.Handle]*relation.Relation
	// builds caches hash-join build sides that cannot change within one
	// execution (no rotating delta below them), so a recursive step
	// re-executed every round rebuilds only the delta side.
	builds map[*hashJoinNode]*exec.HashTable
	// trace, when non-nil, collects per-operator counters and timings for
	// this execution (EXPLAIN ANALYZE). nil disables every
	// instrumentation site, so an untraced run pays nothing per row.
	trace *trace.Trace
}

// fail records the first runtime error.
func (c *runCtx) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// pollEvery is how many guarded rows pass between cancellation checks.
const pollEvery = 64

// poll reports whether execution may continue, polling the cancellation
// check every pollEvery calls.
func (c *runCtx) poll() bool {
	if c.err != nil {
		return false
	}
	if c.check == nil {
		return true
	}
	c.checkCnt++
	if c.checkCnt%pollEvery == 0 {
		if err := c.check(); err != nil {
			c.fail(err)
			return false
		}
	}
	return true
}

// param returns the bound value of 0-based parameter i.
func (c *runCtx) param(i int) value.Value {
	if i < len(c.params) {
		return c.params[i]
	}
	c.fail(fmt.Errorf("parameter $%d not bound (%d arguments)", i+1, len(c.params)))
	return value.Null()
}

// handleRel reads the execution-local relation of a fixpoint handle.
func (c *runCtx) handleRel(h *fixpoint.Handle) *relation.Relation {
	return c.handles[h]
}

// setHandle retargets a fixpoint handle for this execution.
func (c *runCtx) setHandle(h *fixpoint.Handle, rel *relation.Relation) {
	if c.handles == nil {
		c.handles = make(map[*fixpoint.Handle]*relation.Relation)
	}
	c.handles[h] = rel
}

// traced wraps a node's output stream with row and time accounting when
// tracing is enabled; with tracing off it returns seq untouched. An
// operator's time runs from the start of its iteration minus the time
// spent inside its consumer's yield — inclusive of its inputs
// (Postgres-style actual time), exclusive of its parents.
func (c *runCtx) traced(n Node, seq exec.Seq) exec.Seq {
	if c.trace == nil {
		return seq
	}
	op := c.trace.Op(n)
	return func(yield func(relation.Tuple, int) bool) {
		start := time.Now()
		var downstream time.Duration
		seq(func(t relation.Tuple, m int) bool {
			op.Rows++
			ys := time.Now()
			ok := yield(t, m)
			downstream += time.Since(ys)
			return ok
		})
		if d := time.Since(start) - downstream; d > 0 {
			op.Nanos += d.Nanoseconds()
		}
	}
}

// exprFn is a compiled scalar expression over one tuple shape. Errors are
// reported through ctx and the result is NULL.
type exprFn func(t relation.Tuple, ctx *runCtx) value.Value

// predFn is a compiled predicate under three-valued logic.
type predFn func(t relation.Tuple, ctx *runCtx) value.TV

// Node is one physical operator of a compiled plan.
type Node interface {
	// Schema lists the output columns.
	Schema() []ColID
	// Run streams the operator's output tuples. Implementations stop
	// early once ctx.err is set.
	Run(ctx *runCtx) exec.Seq
	// writeExplain renders the operator subtree at the given depth. A
	// non-nil tr annotates each line with that execution's actual
	// counters (EXPLAIN ANALYZE); nil renders the plain plan.
	writeExplain(b *strings.Builder, depth int, tr *trace.Trace)
}

// writeStats appends an operator's executed-run annotation: actual rows
// and inclusive time, or a marker when the operator never ran (an input
// cut short by early termination). No-op when tr is nil.
func writeStats(b *strings.Builder, tr *trace.Trace, key any) {
	if tr == nil {
		return
	}
	op := tr.Lookup(key)
	if op == nil {
		b.WriteString(" (never executed)")
		return
	}
	fmt.Fprintf(b, " (rows=%d time=%s)", op.Rows, trace.FormatDuration(op.Nanos))
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// Plan is a compiled query: a physical root plus the output column names
// of the final result relation. A Plan is immutable after compilation;
// all execution state lives in the per-call runCtx, so one plan may be
// executed by any number of goroutines concurrently (the prepared-
// statement contract).
type Plan struct {
	root    Node
	attrs   []string
	nparams int
}

// Attrs returns the output column names.
func (p *Plan) Attrs() []string { return p.attrs }

// NumParams returns the number of $n placeholders the plan binds at
// execution time (the largest index used).
func (p *Plan) NumParams() int { return p.nparams }

// Explain renders the plan tree, one operator per line.
func (p *Plan) Explain() string {
	var b strings.Builder
	p.root.writeExplain(&b, 0, nil)
	return b.String()
}

// ExplainAnalyze renders the plan annotated with the actual rows,
// probe/build counters, per-round fixpoint deltas, and timings of one
// executed run — the trace a drained StreamTraced execution filled.
func (p *Plan) ExplainAnalyze(tr *trace.Trace) string {
	var b strings.Builder
	p.root.writeExplain(&b, 0, tr)
	return b.String()
}

// Execute runs the plan and materializes the result relation (named
// "result", like the reference evaluator's output).
func (p *Plan) Execute() (*relation.Relation, error) {
	return p.ExecuteWith(nil, nil)
}

// ExecuteWith runs the plan with bound parameter values and an optional
// cancellation check, materializing the result. The point-lookup shape
// — a pure column projection directly over a (probed) scan — runs on a
// dedicated loop with no operator composition, so a prepared point query
// costs little more than the hash probe itself.
func (p *Plan) ExecuteWith(params []value.Value, check func() error) (*relation.Relation, error) {
	ctx := &runCtx{params: params, check: check}
	if pn, ok := p.root.(*projectNode); ok && pn.srcCols != nil {
		if sn, ok := pn.input.(*scanNode); ok && sn.rng == nil {
			return p.executePoint(ctx, pn, sn)
		}
	}
	out := relation.New("result", p.attrs...)
	for t, m := range p.root.Run(ctx) {
		if !ctx.poll() {
			break
		}
		out.InsertMult(t, m)
	}
	if ctx.err != nil {
		return nil, ctx.err
	}
	return out, nil
}

// executePoint is the fast path for Project(columns) over Scan: probe,
// project, insert — one loop, fresh tuples handed to the result with
// ownership (no re-clone).
func (p *Plan) executePoint(ctx *runCtx, pn *projectNode, sn *scanNode) (*relation.Relation, error) {
	out := relation.New("result", p.attrs...)
	emit := func(t relation.Tuple, m int) bool {
		if !ctx.poll() {
			return false
		}
		row := make(relation.Tuple, len(pn.srcCols))
		for i, c := range pn.srcCols {
			row[i] = t[c]
		}
		out.InsertOwned(row, m)
		return true
	}
	if len(sn.probes) == 0 {
		sn.rel.EachWhile(emit)
	} else {
		cols, vals, reCols, reVals, null := sn.resolveProbes(ctx)
		if null {
			return out, ctx.err
		}
		match := emit
		if len(reCols) > 0 {
			match = func(t relation.Tuple, m int) bool {
				for i, c := range reCols {
					if value.Eq.Apply(t[c], reVals[i]) != value.True {
						return true
					}
				}
				return emit(t, m)
			}
		}
		if len(cols) > 0 {
			sn.rel.Probe(cols, vals, match)
		} else {
			sn.rel.EachWhile(match)
		}
	}
	if ctx.err != nil {
		return nil, ctx.err
	}
	return out, nil
}

// Stream starts one streaming execution of the plan with bound parameter
// values: the returned sequence yields result tuples straight off the
// operator tree (no materialization), and the error function reports the
// first execution error once the stream ends (early or not). check, when
// non-nil, is polled in the pull loop and per fixpoint round — context
// cancellation makes the stream end with the check's error. The sequence
// must be consumed by a single goroutine and at most once.
func (p *Plan) Stream(params []value.Value, check func() error) (exec.Seq, func() error) {
	ctx := &runCtx{params: params, check: check}
	return guard(p.root.Run(ctx), ctx), func() error { return ctx.err }
}

// StreamTraced is Stream with operator tracing: per-operator counters
// and timings accumulate into tr as the stream drains. The same
// compiled plan serves traced and untraced executions concurrently —
// the trace rides the per-execution runCtx.
func (p *Plan) StreamTraced(params []value.Value, check func() error, tr *trace.Trace) (exec.Seq, func() error) {
	ctx := &runCtx{params: params, check: check, trace: tr}
	return guard(p.root.Run(ctx), ctx), func() error { return ctx.err }
}

// run streams the plan root (used when a plan is a subtree of another —
// derived tables and semi-join build sides share the enclosing ctx).
func (p *Plan) run(ctx *runCtx) exec.Seq {
	return p.root.Run(ctx)
}

// --- Leaves ---------------------------------------------------------------

// scanProbe is one consumed equality conjunct pushed down onto a scan:
// probe column col with a compile-time literal (param < 0) or the value
// bound to $param+1 at execution time. Literal probe values were
// validated at compile (non-NULL, Indexable, so probe Key identity is
// exactly Eq); parameter values are classified per execution — NULL
// yields no rows (x = NULL holds for nothing under 3VL), non-indexable
// values fall back to a scan with a strict Eq re-check.
type scanProbe struct {
	col   int
	val   value.Value
	param int // 0-based parameter index, or -1 for a literal
}

// scanBound is one end of a pushed-down range restriction: a literal
// value (param < 0) or a parameter resolved per execution. An unset
// bound leaves that side of the range open.
type scanBound struct {
	set   bool
	incl  bool
	val   value.Value
	param int // 0-based parameter index, or -1 for a literal
}

// scanRange is a consumed conjunction of ordering conjuncts on one scan
// column (lo <= c AND c < hi, either side optional), served by the
// relation's ordered index instead of a full scan plus filter. The
// ordered probe follows the 3VL Compare contract exactly — NULL column
// values and values incomparable with the bounds never match — so the
// consumed conjuncts are precisely the filters they replace.
type scanRange struct {
	col    int
	lo, hi scanBound
}

// scanNode streams a base relation, optionally restricted by an index
// probe on constant or parameter equality columns pushed down from
// WHERE, or by a range over the relation's ordered index.
type scanNode struct {
	rel       *relation.Relation
	alias     string
	schema    []ColID
	probes    []scanProbe
	probeStrs []string
	rng       *scanRange
	rangeStr  string
}

func newScanNode(rel *relation.Relation, alias string) *scanNode {
	n := &scanNode{rel: rel, alias: alias}
	for _, a := range rel.Attrs() {
		n.schema = append(n.schema, ColID{Rel: alias, Col: a})
	}
	return n
}

func (n *scanNode) Schema() []ColID { return n.schema }

// emptySeq yields nothing.
func emptySeq(func(relation.Tuple, int) bool) {}

// resolveProbes classifies the scan's probes for one execution: the
// indexable (cols, vals) pairs to hash-probe, the (reCols, reVals)
// pairs that need a scan-side strict Eq re-check (non-indexable
// bindings), and whether a NULL binding makes the scan empty.
func (n *scanNode) resolveProbes(ctx *runCtx) (cols []int, vals []value.Value, reCols []int, reVals []value.Value, null bool) {
	cols = make([]int, 0, len(n.probes))
	vals = make([]value.Value, 0, len(n.probes))
	for _, pb := range n.probes {
		v := pb.val
		if pb.param >= 0 {
			v = ctx.param(pb.param)
			if v.IsNull() {
				return nil, nil, nil, nil, true
			}
			if !v.Indexable() {
				reCols = append(reCols, pb.col)
				reVals = append(reVals, v)
				continue
			}
		}
		cols = append(cols, pb.col)
		vals = append(vals, v)
	}
	return cols, vals, reCols, reVals, false
}

// resolveRange materializes the range bounds for one execution. A set
// bound that resolves to NULL (a NULL parameter) makes the whole scan
// empty: the consumed comparison is Unknown for every row.
func (n *scanNode) resolveRange(ctx *runCtx) (lo, hi value.Value, empty bool) {
	resolve := func(b scanBound) (value.Value, bool) {
		if !b.set {
			return value.Null(), false // unbounded side
		}
		v := b.val
		if b.param >= 0 {
			v = ctx.param(b.param)
		}
		return v, v.IsNull()
	}
	lo, emptyLo := resolve(n.rng.lo)
	hi, emptyHi := resolve(n.rng.hi)
	return lo, hi, emptyLo || emptyHi
}

func (n *scanNode) Run(ctx *runCtx) exec.Seq {
	if n.rng != nil {
		lo, hi, empty := n.resolveRange(ctx)
		if empty {
			return ctx.traced(n, emptySeq)
		}
		return ctx.traced(n, exec.RangeScan(n.rel, n.rng.col, lo, hi, n.rng.lo.incl, n.rng.hi.incl))
	}
	if len(n.probes) == 0 {
		return ctx.traced(n, exec.Scan(n.rel))
	}
	cols, vals, reCols, reVals, null := n.resolveProbes(ctx)
	if null {
		return ctx.traced(n, emptySeq)
	}
	seq := exec.Scan(n.rel)
	if len(cols) > 0 {
		seq = exec.Probe(n.rel, cols, vals)
	}
	if len(reCols) > 0 {
		seq = exec.Filter(seq, func(t relation.Tuple, _ int) bool {
			for i, c := range reCols {
				if value.Eq.Apply(t[c], reVals[i]) != value.True {
					return false
				}
			}
			return true
		})
	}
	return ctx.traced(n, seq)
}

func (n *scanNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	if n.rng != nil {
		b.WriteString("RangeScan ")
	} else {
		b.WriteString("Scan ")
	}
	b.WriteString(n.rel.Name())
	if n.alias != n.rel.Name() {
		b.WriteString(" as ")
		b.WriteString(n.alias)
	}
	if len(n.probeStrs) > 0 {
		fmt.Fprintf(b, " probe(%s)", strings.Join(n.probeStrs, ", "))
	}
	if n.rangeStr != "" {
		b.WriteString(" ")
		b.WriteString(n.rangeStr)
	}
	writeStats(b, tr, n)
	b.WriteString("\n")
}

// valuesNode yields a single empty tuple — the FROM-less SELECT source.
type valuesNode struct{}

func (valuesNode) Schema() []ColID { return nil }

func (valuesNode) Run(_ *runCtx) exec.Seq {
	return func(yield func(relation.Tuple, int) bool) {
		yield(relation.Tuple{}, 1)
	}
}

func (valuesNode) writeExplain(b *strings.Builder, depth int, _ *trace.Trace) {
	indent(b, depth)
	b.WriteString("Values (1 row)\n")
}

// derivedNode materializes a subquery plan as a named relation (derived
// table / CTE-style FROM subquery) and streams it, making it probe-able
// by the joins above it.
type derivedNode struct {
	sub    *Plan
	alias  string
	schema []ColID
}

func newDerivedNode(sub *Plan, alias string) *derivedNode {
	n := &derivedNode{sub: sub, alias: alias}
	for _, a := range sub.attrs {
		n.schema = append(n.schema, ColID{Rel: alias, Col: a})
	}
	return n
}

func (n *derivedNode) Schema() []ColID { return n.schema }

func (n *derivedNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, func(yield func(relation.Tuple, int) bool) {
		for t, m := range n.sub.run(ctx) {
			if !ctx.poll() {
				return
			}
			if !yield(t, m) {
				return
			}
		}
	})
}

func (n *derivedNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	fmt.Fprintf(b, "Derived as %s", n.alias)
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.sub.root.writeExplain(b, depth+1, tr)
}

// --- Joins ----------------------------------------------------------------

// joinKind enumerates the physical join flavours.
type joinKind int

const (
	joinInner joinKind = iota
	joinLeft
	joinFull
)

func (k joinKind) String() string {
	switch k {
	case joinInner:
		return "INNER"
	case joinLeft:
		return "LEFT"
	case joinFull:
		return "FULL"
	}
	return "?"
}

// hashJoinNode joins two subtrees: the right side is materialized into an
// exec.HashTable on its key columns, the left side streams and probes.
// Key equality is strict (3VL True) and the residual ON predicate is
// evaluated over the concatenated tuple; LEFT/FULL kinds null-extend
// unmatched rows per SQL outer-join semantics.
//
// rightStatic marks a build side whose content cannot change within one
// execution (no rotating fixpoint relation below it): its hash table is
// built once per runCtx and reused across fixpoint rounds, so a
// recursive CTE step joining the delta against a base table rebuilds
// only the probe side each round.
type hashJoinNode struct {
	kind        joinKind
	left, right Node
	leftCols    []int
	rightCols   []int
	keyStrs     []string
	residual    predFn
	residualStr string
	schema      []ColID
	rightStatic bool
}

func newHashJoinNode(kind joinKind, left, right Node) *hashJoinNode {
	n := &hashJoinNode{kind: kind, left: left, right: right, rightStatic: subtreeStatic(right)}
	n.schema = append(append([]ColID(nil), left.Schema()...), right.Schema()...)
	return n
}

func (n *hashJoinNode) Schema() []ColID { return n.schema }

// buildSide returns the join's hash table, from the per-execution cache
// when the right subtree is static.
func (n *hashJoinNode) buildSide(ctx *runCtx) *exec.HashTable {
	if !n.rightStatic {
		return exec.BuildHashTable(n.right.Run(ctx), n.rightCols, len(n.right.Schema()))
	}
	if ht := ctx.builds[n]; ht != nil {
		return ht
	}
	ht := exec.BuildHashTable(n.right.Run(ctx), n.rightCols, len(n.right.Schema()))
	if ctx.builds == nil {
		ctx.builds = make(map[*hashJoinNode]*exec.HashTable)
	}
	ctx.builds[n] = ht
	return ht
}

func (n *hashJoinNode) Run(ctx *runCtx) exec.Seq {
	var op *trace.Op
	var ht *exec.HashTable
	if ctx.trace != nil {
		op = ctx.trace.Op(n)
		bs := time.Now()
		ht = n.buildSide(ctx)
		op.Nanos += time.Since(bs).Nanoseconds()
		op.BuildRows = int64(ht.Len())
	} else {
		ht = n.buildSide(ctx)
	}
	var on func(relation.Tuple) bool
	if n.residual != nil {
		on = func(t relation.Tuple) bool {
			if ctx.err != nil {
				return false
			}
			return n.residual(t, ctx).Holds()
		}
	}
	left := guard(n.left.Run(ctx), ctx)
	switch n.kind {
	case joinLeft:
		return ctx.traced(n, exec.OuterHashJoinTraced(left, n.leftCols, ht, on, false, len(n.left.Schema()), op))
	case joinFull:
		return ctx.traced(n, exec.OuterHashJoinTraced(left, n.leftCols, ht, on, true, len(n.left.Schema()), op))
	}
	return ctx.traced(n, exec.EquiJoinTraced(left, n.leftCols, ht, on, op))
}

func (n *hashJoinNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	if len(n.keyStrs) == 0 {
		fmt.Fprintf(b, "CrossJoin %s", n.kind)
	} else {
		fmt.Fprintf(b, "HashJoin %s (%s)", n.kind, strings.Join(n.keyStrs, ", "))
	}
	if n.residualStr != "" {
		fmt.Fprintf(b, " residual(%s)", n.residualStr)
	}
	if tr != nil {
		if op := tr.Lookup(n); op != nil {
			fmt.Fprintf(b, " (rows=%d build=%d hits=%d misses=%d time=%s)",
				op.Rows, op.BuildRows, op.ProbeHits, op.ProbeMisses, trace.FormatDuration(op.Nanos))
		} else {
			b.WriteString(" (never executed)")
		}
	}
	b.WriteString("\n")
	n.left.writeExplain(b, depth+1, tr)
	n.right.writeExplain(b, depth+1, tr)
}

// guard stops a stream once ctx carries an error, polling the
// cancellation check as rows pass (the operator pull loop's cancellation
// point).
func guard(in exec.Seq, ctx *runCtx) exec.Seq {
	return func(yield func(relation.Tuple, int) bool) {
		for t, m := range in {
			if !ctx.poll() {
				return
			}
			if !yield(t, m) {
				return
			}
		}
	}
}

// subtreeStatic reports whether a plan subtree's output is fixed for the
// whole of one execution: scans of base relations, derived tables, and
// pure operators over them. Anything that reads a fixpoint handle
// (CTE results and rotating deltas) or that this walker does not know is
// treated as non-static, which only costs a rebuild. Bound parameters
// are constant per execution, so they do not break staticness.
func subtreeStatic(n Node) bool {
	switch x := n.(type) {
	case *scanNode, valuesNode:
		return true
	case *derivedNode:
		return subtreeStatic(x.sub.root)
	case *hashJoinNode:
		return subtreeStatic(x.left) && subtreeStatic(x.right)
	case *semiJoinNode:
		return subtreeStatic(x.input) && subtreeStatic(x.sub.root)
	case *filterNode:
		return subtreeStatic(x.input)
	case *projectNode:
		return subtreeStatic(x.input)
	case *dedupNode:
		return subtreeStatic(x.input)
	case *unionNode:
		for _, k := range x.kids {
			if !subtreeStatic(k) {
				return false
			}
		}
		return true
	case *groupNode:
		return subtreeStatic(x.input)
	}
	// cteNode, withNode, unknown operators: conservatively dynamic.
	return false
}

// semiJoinNode filters the input by a decorrelated subquery: the
// subquery's correlation columns are materialized into a hash table and
// each input row probes with its correlated expressions. mode selects
// EXISTS (at least one strict-Eq candidate), or IN (three-valued
// membership of inExpr among candidates' in-column — the SQL [NOT] IN
// NULL semantics fall out of the 3VL fold).
type semiJoinNode struct {
	input     Node
	sub       *Plan
	subCols   []int // correlation columns of the subquery projection
	probes    []exprFn
	probeStrs []string
	inExpr    exprFn // nil for EXISTS
	inCol     int    // membership column of the subquery projection
	inStr     string
	negated   bool
}

func (n *semiJoinNode) Schema() []ColID { return n.input.Schema() }

func (n *semiJoinNode) Run(ctx *runCtx) exec.Seq {
	if n.inExpr != nil && len(n.subCols) == 0 {
		return ctx.traced(n, n.runUncorrelatedIn(ctx))
	}
	return ctx.traced(n, func(yield func(relation.Tuple, int) bool) {
		ht := exec.BuildHashTable(n.sub.run(ctx), n.subCols, len(n.sub.attrs))
		if op := ctx.trace.Lookup(n); op != nil {
			op.BuildRows = int64(ht.Len())
		}
		vals := make([]value.Value, len(n.probes))
		for t, m := range n.input.Run(ctx) {
			if !ctx.poll() {
				return
			}
			for i, p := range n.probes {
				vals[i] = p(t, ctx)
			}
			if ctx.err != nil {
				return
			}
			var tv value.TV
			if n.inExpr == nil {
				// EXISTS: any strict-Eq candidate suffices.
				tv = value.False
				ht.Candidates(vals, func(_ int, r exec.Row) bool {
					if ht.EqMatch(r, vals) {
						tv = value.True
						return false
					}
					return true
				})
			} else {
				// IN: 3VL OR-fold of (inExpr = candidate) over the
				// correlated candidates.
				x := n.inExpr(t, ctx)
				if ctx.err != nil {
					return
				}
				tv = value.False
				ht.Candidates(vals, func(_ int, r exec.Row) bool {
					if !ht.EqMatch(r, vals) {
						return true
					}
					tv = tv.Or(value.Eq.Apply(x, r.Tup[n.inCol]))
					return tv != value.True
				})
			}
			if n.negated {
				tv = tv.Not()
			}
			if !tv.Holds() {
				continue
			}
			if !yield(t, m) {
				return
			}
		}
	})
}

// runUncorrelatedIn hashes the membership column itself — with no
// correlation keys, the generic path would rescan every subquery row per
// input row. The 3VL fold collapses to: any strict-Eq match → True; else
// Unknown when the subquery is non-empty and contains a NULL or the
// probe is NULL; else False (True only after negation flips).
func (n *semiJoinNode) runUncorrelatedIn(ctx *runCtx) exec.Seq {
	return func(yield func(relation.Tuple, int) bool) {
		ht := exec.BuildHashTable(n.sub.run(ctx), []int{n.inCol}, len(n.sub.attrs))
		hasNull := false
		for _, r := range ht.Rows() {
			if r.Tup[n.inCol].IsNull() {
				hasNull = true
				break
			}
		}
		vals := make([]value.Value, 1)
		for t, m := range n.input.Run(ctx) {
			if !ctx.poll() {
				return
			}
			vals[0] = n.inExpr(t, ctx)
			if ctx.err != nil {
				return
			}
			tv := value.False
			if ht.Len() > 0 {
				matched := false
				ht.Candidates(vals, func(_ int, r exec.Row) bool {
					if ht.EqMatch(r, vals) {
						matched = true
						return false
					}
					return true
				})
				switch {
				case matched:
					tv = value.True
				case hasNull || vals[0].IsNull():
					tv = value.Unknown
				}
			}
			if n.negated {
				tv = tv.Not()
			}
			if !tv.Holds() {
				continue
			}
			if !yield(t, m) {
				return
			}
		}
	}
}

func (n *semiJoinNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	op := "SemiJoin"
	word := "EXISTS"
	if n.negated {
		op = "AntiJoin"
		word = "NOT EXISTS"
	}
	if n.inExpr != nil {
		word = "IN"
		if n.negated {
			word = "NOT IN"
		}
	}
	fmt.Fprintf(b, "%s %s", op, word)
	if n.inStr != "" {
		fmt.Fprintf(b, " (%s)", n.inStr)
	}
	if len(n.probeStrs) > 0 {
		fmt.Fprintf(b, " corr(%s)", strings.Join(n.probeStrs, ", "))
	}
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.input.writeExplain(b, depth+1, tr)
	n.sub.root.writeExplain(b, depth+1, tr)
}

// --- Tuple-at-a-time operators --------------------------------------------

// filterNode keeps rows whose predicate is True (σ under 3VL).
type filterNode struct {
	input Node
	pred  predFn
	str   string
}

func (n *filterNode) Schema() []ColID { return n.input.Schema() }

func (n *filterNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, exec.Filter(guard(n.input.Run(ctx), ctx), func(t relation.Tuple, _ int) bool {
		if ctx.err != nil {
			return false
		}
		return n.pred(t, ctx).Holds()
	}))
}

func (n *filterNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	fmt.Fprintf(b, "Filter (%s)", n.str)
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.input.writeExplain(b, depth+1, tr)
}

// projectNode computes the output expressions (π with computation).
// srcCols, when non-nil, records that every output expression is a plain
// input-column reference (srcCols[i] = input column of output i) — the
// shape the point-lookup fast path in ExecuteWith exploits.
type projectNode struct {
	input   Node
	exprs   []exprFn
	schema  []ColID
	srcCols []int
}

func newProjectNode(input Node, exprs []exprFn, names []string) *projectNode {
	n := &projectNode{input: input, exprs: exprs}
	for _, name := range names {
		n.schema = append(n.schema, ColID{Col: name})
	}
	return n
}

func (n *projectNode) Schema() []ColID { return n.schema }

func (n *projectNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, func(yield func(relation.Tuple, int) bool) {
		for t, m := range n.input.Run(ctx) {
			if !ctx.poll() {
				return
			}
			out := make(relation.Tuple, len(n.exprs))
			for i, e := range n.exprs {
				out[i] = e(t, ctx)
			}
			if ctx.err != nil {
				return
			}
			if !yield(out, m) {
				return
			}
		}
	})
}

func (n *projectNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	cols := make([]string, len(n.schema))
	for i, c := range n.schema {
		cols[i] = c.Col
	}
	fmt.Fprintf(b, "Project [%s]", strings.Join(cols, ", "))
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.input.writeExplain(b, depth+1, tr)
}

// dedupNode collapses duplicates (DISTINCT / UNION set semantics).
type dedupNode struct {
	input Node
}

func (n *dedupNode) Schema() []ColID { return n.input.Schema() }

func (n *dedupNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, exec.Dedup(guard(n.input.Run(ctx), ctx)))
}

func (n *dedupNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	b.WriteString("Dedup")
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.input.writeExplain(b, depth+1, tr)
}

// unionNode concatenates its inputs (UNION ALL; the set UNION adds a
// dedupNode above).
type unionNode struct {
	kids []Node
}

func (n *unionNode) Schema() []ColID { return n.kids[0].Schema() }

func (n *unionNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, func(yield func(relation.Tuple, int) bool) {
		for _, k := range n.kids {
			for t, m := range k.Run(ctx) {
				if !ctx.poll() {
					return
				}
				if !yield(t, m) {
					return
				}
			}
		}
	})
}

func (n *unionNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	b.WriteString("UnionAll")
	writeStats(b, tr, n)
	b.WriteString("\n")
	for _, k := range n.kids {
		k.writeExplain(b, depth+1, tr)
	}
}

// aggSpec is one aggregate column of a groupNode.
type aggSpec struct {
	fn      exec.AggFunc
	arg     exprFn // nil for count(*)
	name    string // surface aggregate name, for error messages
	str     string // rendered form, for EXPLAIN and post-group matching
	numeric bool   // sum/avg: non-null inputs must be numeric
}

// groupNode is γ: it projects each input row to [keys..., agg args...],
// streams through exec.GroupAggregate, and emits [keys..., agg values...]
// per group. Grouping with no keys emits exactly one group even over
// empty input (implicit grouping).
type groupNode struct {
	input   Node
	keys    []exprFn
	keyStrs []string
	aggs    []aggSpec
	conv    convention.Conventions
	schema  []ColID
}

func (n *groupNode) Schema() []ColID { return n.schema }

func (n *groupNode) Run(ctx *runCtx) exec.Seq {
	pre := func(yield func(relation.Tuple, int) bool) {
		// GroupAggregate copies key values and folds aggregate inputs
		// immediately, so the projection scratch tuple is reusable.
		scratch := make(relation.Tuple, 0, len(n.keys)+len(n.aggs))
		for t, m := range n.input.Run(ctx) {
			if !ctx.poll() {
				return
			}
			out := scratch[:0]
			for _, k := range n.keys {
				out = append(out, k(t, ctx))
			}
			for _, a := range n.aggs {
				if a.arg == nil {
					out = append(out, value.Null())
					continue
				}
				v := a.arg(t, ctx)
				if a.numeric && !v.IsNull() && !v.IsNumeric() {
					ctx.fail(fmt.Errorf("%s over non-numeric value %v", a.name, v))
				}
				out = append(out, v)
			}
			if ctx.err != nil {
				return
			}
			if !yield(out, m) {
				return
			}
		}
	}
	keyCols := make([]int, len(n.keys))
	for i := range n.keys {
		keyCols[i] = i
	}
	aggs := make([]exec.Agg, len(n.aggs))
	for i, a := range n.aggs {
		aggs[i] = exec.Agg{Func: a.fn, Col: len(n.keys) + i}
	}
	return ctx.traced(n, exec.GroupAggregate(pre, keyCols, aggs, n.conv))
}

func (n *groupNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	aggStrs := make([]string, len(n.aggs))
	for i, a := range n.aggs {
		aggStrs[i] = a.str
	}
	fmt.Fprintf(b, "GroupAggregate keys=[%s] aggs=[%s]",
		strings.Join(n.keyStrs, ", "), strings.Join(aggStrs, ", "))
	writeStats(b, tr, n)
	b.WriteString("\n")
	n.input.writeExplain(b, depth+1, tr)
}

package plan

import (
	"fmt"
	"regexp"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/trace"
)

// scrubTimes replaces run-dependent timings with a fixed token so
// EXPLAIN ANALYZE output is golden-testable.
var timeRe = regexp.MustCompile(`time=[^ )\n]+`)

func scrubTimes(s string) string { return timeRe.ReplaceAllString(s, "time=X") }

// analyzedDB builds small populated relations with deterministic
// cardinalities for the analyze goldens.
func analyzedDB() map[string]*relation.Relation {
	r := relation.New("R", "A", "B")
	r.Add(1, 10)
	r.Add(2, 20)
	r.Add(3, 30)
	s := relation.New("S", "B", "C")
	s.Add(10, 100)
	s.Add(20, 200)
	s.Add(99, 999)
	e := relation.New("E", "x", "y")
	e.Add(1, 2)
	e.Add(2, 3)
	e.Add(3, 4)
	return map[string]*relation.Relation{"R": r, "S": s, "E": e}
}

// runAnalyzed compiles src, drains one traced execution, and returns the
// timing-scrubbed EXPLAIN ANALYZE rendering.
func runAnalyzed(t *testing.T, src string) string {
	t.Helper()
	p, err := Compile(sql.MustParse(src), analyzedDB())
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	tr := trace.New()
	seq, errFn := p.StreamTraced(nil, nil, tr)
	for range seq {
	}
	if err := errFn(); err != nil {
		t.Fatalf("execute %q: %v", src, err)
	}
	return scrubTimes(p.ExplainAnalyze(tr))
}

// TestGoldenAnalyze pins the EXPLAIN ANALYZE renderings: per-operator
// actual rows, hash-join build/probe counters, and per-round fixpoint
// deltas for a recursive CTE.
func TestGoldenAnalyze(t *testing.T) {
	cases := []struct{ src, want string }{
		{
			// Hash join: 3 probe rows, 2 hits, 1 miss against a 3-row build.
			"select r.A, s.C from R r, S s where r.B = s.B",
			`Project [A, C] (rows=2 time=X)
  HashJoin INNER (r.B = s.B) (rows=2 build=3 hits=2 misses=1 time=X)
    Scan R as r (rows=3 time=X)
    Scan S as s (rows=3 time=X)
`,
		},
		{
			// Decorrelated IN: the subquery side is the build input.
			"select R.A from R where R.B in (select S.B from S)",
			`Project [A] (rows=2 time=X)
  SemiJoin IN (R.B → S.B) (rows=2 time=X)
    Scan R (rows=3 time=X)
    Project [v] (rows=3 time=X)
      Scan S (rows=3 time=X)
`,
		},
		{
			// Recursive CTE over the chain 1→2→3→4: base 3 edges, then
			// deltas 2, 1, and the empty fixpoint round. The step's build
			// side (Scan E) is built once and reused across rounds, while
			// CteScan Δtc accumulates every round's delta.
			"with recursive tc(x, y) as (select E.x, E.y from E union select tc.x, E.y from tc, E where tc.y = E.x) select tc.x, tc.y from tc",
			`With
  RecursiveCTE tc [x, y] UNION (rounds=4 deltas=[3 2 1 0])
    Base:
      Project [x, y] (rows=3 time=X)
        Scan E (rows=3 time=X)
    Step (Δtc per round):
      Project [x, y] (rows=3 time=X)
        HashJoin INNER (tc.y = E.x) (rows=3 build=3 hits=3 misses=3 time=X)
          CteScan Δtc (rows=6 time=X)
          Scan E (rows=3 time=X)
  Body:
    Project [x, y] (rows=6 time=X)
      CteScan tc (rows=6 time=X)
`,
		},
	}
	for _, c := range cases {
		if got := runAnalyzed(t, c.src); got != c.want {
			t.Errorf("analyze mismatch for %q\ngot:\n%s\nwant:\n%s", c.src, got, c.want)
		}
	}
}

// TestAnalyzeNeverExecuted pins the marker for operators an execution
// never reached: a point probe that misses leaves the join's build side
// unvisited only when the outer side short-circuits; here an empty probe
// side ends the stream before the filter input runs.
func TestAnalyzeNeverExecuted(t *testing.T) {
	db := analyzedDB()
	p, err := Compile(sql.MustParse("select R.A from R where R.A = 77"), db)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	seq, errFn := p.StreamTraced(nil, nil, tr)
	for range seq {
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
	got := scrubTimes(p.ExplainAnalyze(tr))
	want := "Project [A] (rows=0 time=X)\n  Scan R probe(A=77) (rows=0 time=X)\n"
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	// Untraced rendering of the same plan is the plain Explain.
	if p.ExplainAnalyze(nil) != p.Explain() {
		t.Error("ExplainAnalyze(nil) diverges from Explain")
	}
}

// TestTracedMatchesUntraced pins the zero-interference contract over the
// golden-plan queries: a traced execution returns byte-identical results
// to an untraced one.
func TestTracedMatchesUntraced(t *testing.T) {
	for _, src := range []string{
		"select r.A, s.C from R r, S s where r.B = s.B",
		"select R.A from R where R.B in (select S.B from S)",
		"with recursive tc(x, y) as (select E.x, E.y from E union select tc.x, E.y from tc, E where tc.y = E.x) select tc.x, tc.y from tc",
	} {
		p, err := Compile(sql.MustParse(src), analyzedDB())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := p.ExecuteWith(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		traced := relation.New("result", p.Attrs()...)
		seq, errFn := p.StreamTraced(nil, nil, trace.New())
		for tup, m := range seq {
			traced.InsertMult(tup, m)
		}
		if err := errFn(); err != nil {
			t.Fatal(err)
		}
		if !plain.EqualBag(traced) {
			t.Errorf("%q: traced result diverges:\nplain\n%s\ntraced\n%s", src, plain, traced)
		}
		_ = fmt.Sprint(traced)
	}
}

package plan

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

func testDB() map[string]*relation.Relation {
	return map[string]*relation.Relation{
		"R": relation.New("R", "A", "B"),
		"S": relation.New("S", "B", "C"),
		"T": relation.New("T", "A", "C"),
	}
}

// TestGoldenPlans pins the plan shapes of representative queries: join
// chains with probe pushdown, decorrelated IN/EXISTS, grouped
// aggregates with HAVING, LEFT/FULL outer joins, and derived tables.
func TestGoldenPlans(t *testing.T) {
	cases := []struct{ src, want string }{
		{
			"select r.A, s.C from R r, S s, T t where r.B = s.B and s.C = t.C and t.A = 3",
			`Project [A, C]
  HashJoin INNER (s.C = t.C)
    HashJoin INNER (r.B = s.B)
      Scan R as r
      Scan S as s
    Scan T as t probe(A=3)
`,
		},
		{
			"select R.A from R where R.B in (select S.B from S where S.C = R.A)",
			`Project [A]
  SemiJoin IN (R.B → S.B) corr(R.A = S.C)
    Scan R
    Project [k0, v]
      Scan S
`,
		},
		{
			"select R.A from R where not exists (select 1 from S where S.B = R.B and S.C < 2)",
			`Project [A]
  AntiJoin NOT EXISTS corr(R.B = S.B)
    Scan R
    Project [k0]
      RangeScan S C in (-inf, 2)
`,
		},
		{
			// Range conjuncts on one column merge into a bounded RangeScan.
			"select R.A from R where R.A >= 2 and R.A < 7",
			`Project [A]
  RangeScan R A in [2, 7)
`,
		},
		{
			// BETWEEN desugars into the same bounded range, closed above.
			"select R.A from R where R.B between 1 and 5",
			`Project [A]
  RangeScan R B in [1, 5]
`,
		},
		{
			// Parameter bounds resolve per execution; a second range column
			// stays a filter, and a flipped literal side still binds.
			"select R.A from R where 3 < R.A and R.A <= $1 and R.B < 9",
			`Project [A]
  Filter (R.B < 9)
    RangeScan R A in (3, $1]
`,
		},
		{
			// An equality probe wins over range pushdown: the ordering
			// conjunct stays a filter above the probed scan.
			"select R.A from R where R.A = 1 and R.B < 4",
			`Project [A]
  Filter (R.B < 4)
    Scan R probe(A=1)
`,
		},
		{
			"select R.A, sum(R.B) sm, count(*) c from R group by R.A having min(R.B) >= 0",
			`Project [A, sm, c]
  Filter (min(R.B) >= 0)
    GroupAggregate keys=[R.A] aggs=[sum(R.B), count(*), min(R.B)]
      Scan R
`,
		},
		{
			"select R.A, S.C from R left join S on R.B = S.B and S.C = 1",
			`Project [A, C]
  HashJoin LEFT (R.B = S.B) residual(S.C = 1)
    Scan R
    Scan S
`,
		},
		{
			"select R.A, S.B from R full join S on R.A = S.B",
			`Project [A, B]
  HashJoin FULL (R.A = S.B)
    Scan R
    Scan S
`,
		},
		{
			"select distinct X.ct from R, (select S.B, count(S.C) ct from S group by S.B) X where R.B = X.B",
			`Dedup
  Project [ct]
    HashJoin INNER (R.B = X.B)
      Scan R
      Derived as X
        Project [B, ct]
          GroupAggregate keys=[S.B] aggs=[count(S.C)]
            Scan S
`,
		},
		{
			// Recursive CTE: the step compiles once into a pipeline whose
			// self-reference scans the per-round delta.
			"with recursive tc(x, y) as (select R.A, R.B from R union select tc.x, R.B from tc, R where tc.y = R.A) select tc.x from tc where tc.x = 1",
			`With
  RecursiveCTE tc [x, y] UNION
    Base:
      Project [A, B]
        Scan R
    Step (Δtc per round):
      Project [x, B]
        HashJoin INNER (tc.y = R.A)
          CteScan Δtc
          Scan R
  Body:
    Project [x]
      Filter (tc.x = 1)
        CteScan tc
`,
		},
		{
			// Plain CTE: materialized once, then scanned by the body join.
			"with x as (select R.A a from R) select x.a from x, S where x.a = S.B",
			`With
  CTE x [a]
    Project [a]
      Scan R
  Body:
    Project [a]
      HashJoin INNER (x.a = S.B)
        CteScan x
        Scan S
`,
		},
	}
	db := testDB()
	for _, c := range cases {
		p, err := Compile(sql.MustParse(c.src), db)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		if got := p.Explain(); got != c.want {
			t.Errorf("plan mismatch for %q\ngot:\n%s\nwant:\n%s", c.src, got, c.want)
		}
	}
}

// TestNotPlannableFallbacks pins queries outside the fragment: they must
// fail with ErrNotPlannable (so callers fall back) rather than
// miscompile.
func TestNotPlannableFallbacks(t *testing.T) {
	db := testDB()
	for _, src := range []string{
		// Scalar subquery expression.
		"select R.A, (select S.C from S where S.B = R.B) from R",
		// LATERAL derived table.
		"select x.A, z.B from R as x join lateral (select y.B from S as y where x.A < y.C) as z on true",
		// Non-equality correlation.
		"select R.A from R where exists (select 1 from S where S.C < R.A)",
		// Representative-row grouping (item outside keys and aggregates).
		"select R.B from R group by R.A",
	} {
		_, err := Compile(sql.MustParse(src), db)
		if err == nil {
			t.Errorf("%q: expected not-plannable, compiled", src)
			continue
		}
		if !errors.Is(err, ErrNotPlannable) {
			t.Errorf("%q: error %v does not wrap ErrNotPlannable", src, err)
		}
	}
}

// TestPlanExecutionEdgeCases exercises the semantics corners that the
// hash-based operators must preserve: NULL join keys never matching,
// NOT IN with NULLs, unmatched FULL-join sides, and Eq-vs-Key
// divergence beyond 2^53 (the overflow list).
func TestPlanExecutionEdgeCases(t *testing.T) {
	run := func(src string, db map[string]*relation.Relation) *relation.Relation {
		t.Helper()
		p, err := Compile(sql.MustParse(src), db)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		out, err := p.Execute()
		if err != nil {
			t.Fatalf("execute %q: %v", src, err)
		}
		return out
	}

	// NULL keys never join.
	db := map[string]*relation.Relation{
		"R": relation.New("R", "A").Add(1).Add(nil),
		"S": relation.New("S", "B").Add(1).Add(nil),
	}
	if got := run("select R.A, S.B from R, S where R.A = S.B", db); got.Card() != 1 {
		t.Fatalf("NULL keys joined:\n%s", got)
	}

	// NOT IN: any NULL in the subquery empties the result; a NULL probe
	// only survives an empty subquery.
	dbNull := map[string]*relation.Relation{
		"R": relation.New("R", "A").Add(1).Add(3),
		"S": relation.New("S", "A").Add(2).Add(nil),
	}
	if got := run("select R.A from R where R.A not in (select S.A from S)", dbNull); got.Card() != 0 {
		t.Fatalf("NOT IN with NULL should be empty:\n%s", got)
	}

	// FULL JOIN null-extends both unmatched sides, once each.
	dbFull := map[string]*relation.Relation{
		"R": relation.New("R", "a").Add(1).Add(2),
		"S": relation.New("S", "b").Add(2).Add(3),
	}
	got := run("select R.a, S.b from R full join S on R.a = S.b", dbFull)
	want := relation.New("W", "a", "b").Add(1, nil).Add(2, 2).Add(nil, 3)
	if !got.EqualBag(want) {
		t.Fatalf("full join mismatch:\ngot\n%s\nwant\n%s", got, want)
	}

	// Beyond 2^53 the float-coercing Eq collapses values whose Keys stay
	// exact; the hash-table overflow list must still find the match.
	big := int64(1) << 60
	dbBig := map[string]*relation.Relation{
		"R": relation.New("R", "A").Add(value.Int(big)),
		"S": relation.New("S", "B").Add(value.Float(float64(big))),
	}
	if got := run("select R.A from R, S where R.A = S.B", dbBig); got.Card() != 1 {
		t.Fatalf("overflow join missed the 2^60 match:\n%s", got)
	}
}

// TestExplainStable double-checks the renderer never emits unbalanced
// indentation (each line's depth is a multiple of two spaces).
func TestExplainStable(t *testing.T) {
	db := testDB()
	p, err := Compile(sql.MustParse(
		"select R.A from R where R.B in (select S.B from S) and exists (select 1 from T where T.A = R.A)"), db)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(p.Explain(), "\n"), "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if (len(line)-len(trimmed))%2 != 0 {
			t.Fatalf("odd indentation in line %q", line)
		}
	}
}

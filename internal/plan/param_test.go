package plan

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/value"
)

func paramTestDB() map[string]*relation.Relation {
	r := relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(2, 21).Add(nil, 99)
	return map[string]*relation.Relation{"R": r}
}

// TestParamProbePlanAndExecution pins that a $n equality compiles into a
// scan probe (consumed conjunct, no residual filter) and that every
// binding class executes correctly: indexable values probe, NULL yields
// nothing, and non-indexable integers (beyond 2^53, where Key identity
// is finer than Eq) fall back to a strict Eq re-check.
func TestParamProbePlanAndExecution(t *testing.T) {
	db := paramTestDB()
	p, err := Compile(sql.MustParse("select R.A, R.B from R where R.A = $1"), db)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 {
		t.Fatalf("NumParams = %d", p.NumParams())
	}
	explain := p.Explain()
	if !strings.Contains(explain, "probe(A=$1)") {
		t.Fatalf("expected probe(A=$1) in plan:\n%s", explain)
	}
	if strings.Contains(explain, "Filter") {
		t.Fatalf("param equality should be consumed by the probe, not filtered:\n%s", explain)
	}
	run := func(v value.Value) int {
		t.Helper()
		out, err := p.ExecuteWith([]value.Value{v}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out.Card()
	}
	if got := run(value.Int(2)); got != 2 {
		t.Fatalf("A=2 returned %d rows, want 2", got)
	}
	if got := run(value.Null()); got != 0 {
		t.Fatalf("A=NULL returned %d rows, want 0", got)
	}
	if got := run(value.Int(1 << 60)); got != 0 {
		t.Fatalf("A=2^60 returned %d rows, want 0", got)
	}
	// The non-indexable re-check agrees with Eq: a relation holding
	// 2^60 must be found via the fallback scan.
	db["R"].Add(int64(1<<60), 1)
	if got := run(value.Int(1 << 60)); got != 1 {
		t.Fatalf("A=2^60 after insert returned %d rows, want 1", got)
	}
	// Missing binding is an execution error, not a silent NULL.
	if _, err := p.ExecuteWith(nil, nil); err == nil {
		t.Fatal("expected an unbound-parameter error")
	}
}

// TestParamOutsideProbePositions exercises $n leaves in residual
// predicate, projection arithmetic, and HAVING positions.
func TestParamOutsideProbePositions(t *testing.T) {
	db := paramTestDB()
	p, err := Compile(sql.MustParse("select R.A + $1 s from R where R.B > $2"), db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExecuteWith([]value.Value{value.Int(100), value.Int(15)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Card() != 3 { // B ∈ {20, 21, 99}
		t.Fatalf("got %d rows:\n%s", out.Card(), out)
	}
	g, err := Compile(sql.MustParse("select R.A, count(*) c from R group by R.A having count(*) >= $1"), db)
	if err != nil {
		t.Fatal(err)
	}
	out, err = g.ExecuteWith([]value.Value{value.Int(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Card() != 1 {
		t.Fatalf("HAVING with param: %d rows, want 1:\n%s", out.Card(), out)
	}
}

// TestRecursivePlanConcurrentExecution pins plan re-entrancy: the
// fixpoint handle state of a compiled recursive plan lives in the
// per-execution context, so one plan object may run on many goroutines
// at once (run under -race).
func TestRecursivePlanConcurrentExecution(t *testing.T) {
	p := relation.New("P", "s", "t")
	for i := 0; i < 30; i++ {
		p.Add(i, i+1)
	}
	plan, err := Compile(sql.MustParse(`with recursive tc(s, t) as (
		select P.s, P.t from P union select tc.s, P.t from tc, P where tc.t = P.s
	) select tc.s, tc.t from tc where tc.s = $1`), map[string]*relation.Relation{"P": p})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{}
	for k := 0; k < 4; k++ {
		out, err := plan.ExecuteWith([]value.Value{value.Int(int64(k))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = out.Card()
		if want[k] != 30-k {
			t.Fatalf("tc from %d has %d rows, want %d", k, want[k], 30-k)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (g + i) % 4
				out, err := plan.ExecuteWith([]value.Value{value.Int(int64(k))}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if out.Card() != want[k] {
					t.Errorf("goroutine %d: tc from %d gave %d rows, want %d", g, k, out.Card(), want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/exec"
	"repro/internal/fixpoint"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/trace"
)

// This file lowers WITH [RECURSIVE] onto the shared fixpoint engine.
// Each CTE materializes before the body runs; a recursive CTE's step is
// compiled ONCE into an exec tree whose self-reference is a cteNode
// reading a fixpoint.Handle, which the working-table loop retargets to
// the rotating delta each round — the plan-side realization of
// semi-naive recursion over streaming operators. Queries outside the
// planner fragment fall back (ErrNotPlannable) to the reference
// evaluator's independent naive-iteration loop, which the recursive
// differential corpus verifies byte-identical.

// cteBinding is the compile-time view of a CTE name: its schema plus the
// runtime handle its references read from.
type cteBinding struct {
	name   string
	attrs  []string
	handle *fixpoint.Handle
	delta  bool // true while compiling a recursive step (for EXPLAIN)
}

// withCTE resolves a base-table name against the CTE scope.
func (c *compilerCtx) withCTE(name string) *cteBinding {
	return c.ctes[name]
}

// setCTE binds a name in a copy-on-write CTE scope, so nested WITHs
// shadow and restore cleanly.
func (c *compilerCtx) setCTE(b *cteBinding) {
	next := make(map[string]*cteBinding, len(c.ctes)+1)
	for k, v := range c.ctes {
		next[k] = v
	}
	next[b.name] = b
	c.ctes = next
}

// compiledCTE is one materialization step of a withNode.
type compiledCTE struct {
	name  string
	attrs []string
	// plain is the whole query of a non-recursive CTE.
	plain *Plan
	// base/step are the terms of a recursive CTE; step's self-references
	// read delta, which the loop rotates.
	base, step *Plan
	delta      *fixpoint.Handle
	// result receives the finished relation; body-side references read it.
	result   *fixpoint.Handle
	distinct bool // UNION vs UNION ALL accumulation
}

// compileWith lowers a WITH query: CTEs compile in order (each visible
// to the next), recursive ones through base/step splitting, then the
// body compiles against the full CTE scope.
func (c *compilerCtx) compileWith(w *sql.With, outer *scope) (*Plan, error) {
	savedScope := c.ctes
	defer func() { c.ctes = savedScope }()
	n := &withNode{}
	for _, cte := range w.CTEs {
		if w.Recursive {
			base, step, all, ok, err := cte.SplitRecursive()
			if err != nil {
				// A malformed recursive CTE is a semantic error; the
				// reference evaluator reports the same condition, so
				// falling back keeps one user-facing message.
				return nil, notPlannable("%s", err)
			}
			if ok {
				compiled, err := c.compileRecursiveCTE(cte, base, step, all, outer)
				if err != nil {
					return nil, err
				}
				n.ctes = append(n.ctes, compiled)
				c.setCTE(&cteBinding{name: cte.Name, attrs: compiled.attrs, handle: compiled.result})
				continue
			}
		}
		sub, err := c.compileQuery(cte.Query, outer)
		if err != nil {
			return nil, err
		}
		attrs, err := cteAttrs(cte, sub.attrs)
		if err != nil {
			return nil, err
		}
		compiled := &compiledCTE{name: cte.Name, attrs: attrs, plain: sub, result: &fixpoint.Handle{}}
		n.ctes = append(n.ctes, compiled)
		c.setCTE(&cteBinding{name: cte.Name, attrs: attrs, handle: compiled.result})
	}
	body, err := c.compileQuery(w.Body, outer)
	if err != nil {
		return nil, err
	}
	n.body = body.root
	return &Plan{root: n, attrs: body.attrs}, nil
}

// cteAttrs applies the declared column list over the query's own output
// names.
func cteAttrs(cte sql.CTE, got []string) ([]string, error) {
	if len(cte.Cols) == 0 {
		return got, nil
	}
	if len(cte.Cols) != len(got) {
		return nil, notPlannable("CTE %q declares %d columns, its query returns %d", cte.Name, len(cte.Cols), len(got))
	}
	return cte.Cols, nil
}

// compileRecursiveCTE compiles base and step; during step compilation
// the CTE name resolves to the delta handle, afterwards to the result.
func (c *compilerCtx) compileRecursiveCTE(cte sql.CTE, baseQ, stepQ sql.Query, all bool, outer *scope) (*compiledCTE, error) {
	basePlan, err := c.compileQuery(baseQ, outer)
	if err != nil {
		return nil, err
	}
	attrs, err := cteAttrs(cte, basePlan.attrs)
	if err != nil {
		return nil, err
	}
	out := &compiledCTE{
		name:     cte.Name,
		attrs:    attrs,
		base:     basePlan,
		delta:    &fixpoint.Handle{},
		result:   &fixpoint.Handle{},
		distinct: !all,
	}
	savedScope := c.ctes
	c.setCTE(&cteBinding{name: cte.Name, attrs: attrs, handle: out.delta, delta: true})
	stepPlan, err := c.compileQuery(stepQ, outer)
	c.ctes = savedScope
	if err != nil {
		return nil, err
	}
	if len(stepPlan.attrs) != len(attrs) {
		return nil, notPlannable("recursive CTE %q: step arity %d, want %d", cte.Name, len(stepPlan.attrs), len(attrs))
	}
	out.step = stepPlan
	return out, nil
}

// materialize computes one CTE's relation into its result handle. The
// handle's relation is stored in the runCtx, never on the plan, so
// concurrent executions of one compiled plan do not share fixpoint state.
func (x *compiledCTE) materialize(ctx *runCtx) error {
	if x.plain != nil {
		rel := relation.New(x.name, x.attrs...)
		for t, m := range x.plain.run(ctx) {
			if !ctx.poll() {
				return ctx.err
			}
			rel.InsertMult(t, m)
		}
		if ctx.err != nil {
			return ctx.err
		}
		ctx.setHandle(x.result, rel)
		return nil
	}
	loop := &fixpoint.CTE{
		Name:  x.name,
		Attrs: x.attrs,
		Base: func(emit fixpoint.EmitMult) error {
			for t, m := range x.base.run(ctx) {
				if !ctx.poll() {
					return ctx.err
				}
				if err := emit(t, m); err != nil {
					return err
				}
			}
			return ctx.err
		},
		Step: func(delta *relation.Relation, emit fixpoint.EmitMult) error {
			ctx.setHandle(x.delta, delta)
			for t, m := range x.step.run(ctx) {
				if !ctx.poll() {
					return ctx.err
				}
				if err := emit(t, m); err != nil {
					return err
				}
			}
			return ctx.err
		},
		Distinct: x.distinct,
		Check:    ctx.check,
	}
	if ctx.trace != nil {
		loop.OnRound = ctx.trace.Fixpoint(x, x.name).Observe
	}
	rel, err := loop.Run()
	if err != nil {
		return err
	}
	ctx.setHandle(x.result, rel)
	return nil
}

// withNode materializes its CTEs in order, then streams the body.
type withNode struct {
	ctes []*compiledCTE
	body Node
}

func (n *withNode) Schema() []ColID { return n.body.Schema() }

func (n *withNode) Run(ctx *runCtx) exec.Seq {
	return func(yield func(relation.Tuple, int) bool) {
		for _, cte := range n.ctes {
			if err := cte.materialize(ctx); err != nil {
				ctx.fail(err)
				return
			}
		}
		for t, m := range n.body.Run(ctx) {
			if !ctx.poll() {
				return
			}
			if !yield(t, m) {
				return
			}
		}
	}
}

func (n *withNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	b.WriteString("With\n")
	for _, cte := range n.ctes {
		indent(b, depth+1)
		if cte.plain != nil {
			fmt.Fprintf(b, "CTE %s [%s]\n", cte.name, strings.Join(cte.attrs, ", "))
			cte.plain.root.writeExplain(b, depth+2, tr)
			continue
		}
		mode := "UNION"
		if !cte.distinct {
			mode = "UNION ALL"
		}
		fmt.Fprintf(b, "RecursiveCTE %s [%s] %s", cte.name, strings.Join(cte.attrs, ", "), mode)
		if tr != nil {
			if fp := tr.LookupFixpoint(cte); fp != nil {
				deltas := make([]string, len(fp.Rounds))
				for i, r := range fp.Rounds {
					deltas[i] = strconv.Itoa(r.Delta)
				}
				fmt.Fprintf(b, " (rounds=%d deltas=[%s])", len(fp.Rounds), strings.Join(deltas, " "))
			} else {
				b.WriteString(" (never executed)")
			}
		}
		b.WriteString("\n")
		indent(b, depth+2)
		b.WriteString("Base:\n")
		cte.base.root.writeExplain(b, depth+3, tr)
		indent(b, depth+2)
		fmt.Fprintf(b, "Step (Δ%s per round):\n", cte.name)
		cte.step.root.writeExplain(b, depth+3, tr)
	}
	indent(b, depth+1)
	b.WriteString("Body:\n")
	n.body.writeExplain(b, depth+2, tr)
}

// cteNode streams a CTE reference through its handle: the materialized
// result for body references, the rotating delta inside a recursive step.
type cteNode struct {
	name   string
	alias  string
	handle *fixpoint.Handle
	delta  bool
	schema []ColID
}

func newCTENode(bind *cteBinding, alias string) *cteNode {
	n := &cteNode{name: bind.name, alias: alias, handle: bind.handle, delta: bind.delta}
	for _, a := range bind.attrs {
		n.schema = append(n.schema, ColID{Rel: alias, Col: a})
	}
	return n
}

func (n *cteNode) Schema() []ColID { return n.schema }

func (n *cteNode) Run(ctx *runCtx) exec.Seq {
	return ctx.traced(n, func(yield func(relation.Tuple, int) bool) {
		rel := ctx.handleRel(n.handle)
		if rel == nil {
			return
		}
		rel.EachWhile(yield)
	})
}

func (n *cteNode) writeExplain(b *strings.Builder, depth int, tr *trace.Trace) {
	indent(b, depth)
	name := n.name
	if n.delta {
		name = "Δ" + name
	}
	fmt.Fprintf(b, "CteScan %s", name)
	if n.alias != n.name {
		fmt.Fprintf(b, " as %s", n.alias)
	}
	writeStats(b, tr, n)
	b.WriteString("\n")
}

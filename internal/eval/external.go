package eval

import (
	"fmt"

	"repro/internal/value"
)

// External is a relation whose extension is defined outside the relational
// language (Section 2.13.1) — possibly infinite, accessed through access
// patterns in the style of Guagliardo et al.: the evaluator binds a subset
// of the attributes from equality predicates and asks the external to
// enumerate the consistent completions.
type External interface {
	// Name is the relation name used in bindings (e.g. "Minus", "-").
	Name() string
	// Attrs is the full attribute list (e.g. left, right, out).
	Attrs() []string
	// CanEnumerate reports whether the given set of bound attributes
	// satisfies one of the external's access patterns.
	CanEnumerate(bound map[string]bool) bool
	// Enumerate returns every complete attribute assignment consistent
	// with the bound values. It must only be called when CanEnumerate
	// holds for the bound attribute set.
	Enumerate(bound map[string]value.Value) ([]map[string]value.Value, error)
}

// arithExternal is a ternary arithmetic relation {(left,right,out) |
// out = left ⊕ right}, invertible in every position where the operation
// allows it — the access-pattern behaviour of Section 2.13 ("Add(2, x, 5)
// represents 5−2 and returns x = 3").
type arithExternal struct {
	name    string
	forward func(l, r value.Value) (value.Value, bool)
	// solveLeft solves for left given (right, out); nil if not invertible.
	solveLeft func(r, o value.Value) (value.Value, bool)
	// solveRight solves for right given (left, out); nil if not invertible.
	solveRight func(l, o value.Value) (value.Value, bool)
}

func (a *arithExternal) Name() string { return a.name }

// Attrs includes the positional aliases $1/$2 used by the paper's Fig 20
// ("*"($1, $2, out)); they denote the same columns as left/right.
func (a *arithExternal) Attrs() []string { return []string{"left", "right", "out", "$1", "$2"} }

// normArith maps the positional aliases onto the named attributes.
func normArith(bound map[string]value.Value) map[string]value.Value {
	out := make(map[string]value.Value, len(bound))
	for k, v := range bound {
		switch k {
		case "$1":
			k = "left"
		case "$2":
			k = "right"
		}
		out[k] = v
	}
	return out
}

func (a *arithExternal) CanEnumerate(rawBound map[string]bool) bool {
	bound := make(map[string]bool, len(rawBound))
	for k, v := range rawBound {
		switch k {
		case "$1":
			k = "left"
		case "$2":
			k = "right"
		}
		if v {
			bound[k] = true
		}
	}
	n := 0
	for _, attr := range a.Attrs() {
		if bound[attr] {
			n++
		}
	}
	if bound["left"] && bound["right"] {
		return true
	}
	if n >= 2 && a.solveLeft != nil && a.solveRight != nil {
		return true
	}
	return false
}

func (a *arithExternal) Enumerate(rawBound map[string]value.Value) ([]map[string]value.Value, error) {
	bound := normArith(rawBound)
	l, hasL := bound["left"]
	r, hasR := bound["right"]
	o, hasO := bound["out"]
	var res map[string]value.Value
	switch {
	case hasL && hasR:
		out, ok := a.forward(l, r)
		if !ok {
			return nil, fmt.Errorf("%s: type error on (%v, %v)", a.name, l, r)
		}
		res = map[string]value.Value{"left": l, "right": r, "out": out}
	case hasL && hasO && a.solveRight != nil:
		right, ok := a.solveRight(l, o)
		if !ok {
			return nil, nil // no solution: empty relation slice
		}
		res = map[string]value.Value{"left": l, "right": right, "out": o}
	case hasR && hasO && a.solveLeft != nil:
		left, ok := a.solveLeft(r, o)
		if !ok {
			return nil, nil
		}
		res = map[string]value.Value{"left": left, "right": r, "out": o}
	default:
		return nil, fmt.Errorf("%s: unsatisfied access pattern (bound: %v)", a.name, boundAttrs(bound))
	}
	// If the caller over-bound (all three), keep only consistent rows.
	if hasO && (value.Eq.Apply(res["out"], o) != value.True) {
		return nil, nil
	}
	res["$1"], res["$2"] = res["left"], res["right"]
	return []map[string]value.Value{res}, nil
}

func boundAttrs(bound map[string]value.Value) []string {
	var out []string
	for k := range bound {
		out = append(out, k)
	}
	return out
}

// cmpExternal is a binary test relation {(left,right) | left op right},
// usable only with both attributes bound (it is infinite otherwise).
type cmpExternal struct {
	name string
	op   value.CmpOp
}

func (c *cmpExternal) Name() string    { return c.name }
func (c *cmpExternal) Attrs() []string { return []string{"left", "right"} }

func (c *cmpExternal) CanEnumerate(bound map[string]bool) bool {
	return bound["left"] && bound["right"]
}

func (c *cmpExternal) Enumerate(bound map[string]value.Value) ([]map[string]value.Value, error) {
	l, hasL := bound["left"]
	r, hasR := bound["right"]
	if !hasL || !hasR {
		return nil, fmt.Errorf("%s: both operands must be bound", c.name)
	}
	if c.op.Apply(l, r) == value.True {
		return []map[string]value.Value{{"left": l, "right": r}}, nil
	}
	return nil, nil
}

// FuncExternal adapts an arbitrary Go function into an external relation
// with input attributes ins and output attributes outs. It is the
// extension point for domain-specific built-ins (LIKE, string ops, …).
type FuncExternal struct {
	RelName string
	Ins     []string
	Outs    []string
	// Fn maps bound input values to zero or more output assignments.
	Fn func(in map[string]value.Value) ([]map[string]value.Value, error)
}

// Name returns the relation name.
func (f *FuncExternal) Name() string { return f.RelName }

// Attrs returns inputs followed by outputs.
func (f *FuncExternal) Attrs() []string { return append(append([]string{}, f.Ins...), f.Outs...) }

// CanEnumerate requires every input attribute bound.
func (f *FuncExternal) CanEnumerate(bound map[string]bool) bool {
	for _, a := range f.Ins {
		if !bound[a] {
			return false
		}
	}
	return true
}

// Enumerate invokes the function and merges inputs into each output row,
// keeping only rows consistent with any over-bound output attributes.
func (f *FuncExternal) Enumerate(bound map[string]value.Value) ([]map[string]value.Value, error) {
	in := map[string]value.Value{}
	for _, a := range f.Ins {
		v, ok := bound[a]
		if !ok {
			return nil, fmt.Errorf("%s: input %q not bound", f.RelName, a)
		}
		in[a] = v
	}
	outs, err := f.Fn(in)
	if err != nil {
		return nil, err
	}
	var rows []map[string]value.Value
	for _, o := range outs {
		row := map[string]value.Value{}
		for k, v := range in {
			row[k] = v
		}
		consistent := true
		for k, v := range o {
			if bv, over := bound[k]; over && value.Eq.Apply(bv, v) != value.True {
				consistent = false
				break
			}
			row[k] = v
		}
		if consistent {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// StandardExternals returns the built-ins used throughout the paper's
// examples: Minus/Add/Times/Divide (with symbolic aliases "-", "+", "*",
// "/") and the comparison tests Bigger (">") and Smaller ("<").
func StandardExternals() []External {
	mk := func(name string, fwd func(a, b value.Value) (value.Value, bool),
		solveL, solveR func(a, b value.Value) (value.Value, bool)) External {
		return &arithExternal{name: name, forward: fwd, solveLeft: solveL, solveRight: solveR}
	}
	add := func(a, b value.Value) (value.Value, bool) { return value.Add(a, b) }
	sub := func(a, b value.Value) (value.Value, bool) { return value.Sub(a, b) }
	mul := func(a, b value.Value) (value.Value, bool) { return value.Mul(a, b) }
	div := func(a, b value.Value) (value.Value, bool) { return value.Div(a, b) }
	var exts []External
	// Minus: out = left - right; left = out + right; right = left - out.
	for _, n := range []string{"Minus", "-"} {
		exts = append(exts, mk(n, sub,
			func(r, o value.Value) (value.Value, bool) { return value.Add(o, r) },
			func(l, o value.Value) (value.Value, bool) { return value.Sub(l, o) }))
	}
	// Add: out = left + right.
	for _, n := range []string{"Add", "+"} {
		exts = append(exts, mk(n, add,
			func(r, o value.Value) (value.Value, bool) { return value.Sub(o, r) },
			func(l, o value.Value) (value.Value, bool) { return value.Sub(o, l) }))
	}
	// Times: out = left * right (solving needs nonzero divisor).
	for _, n := range []string{"Times", "*"} {
		exts = append(exts, mk(n, mul,
			func(r, o value.Value) (value.Value, bool) {
				if r.IsNull() || r.AsFloat() == 0 {
					return value.Null(), false
				}
				return value.Div(o, r)
			},
			func(l, o value.Value) (value.Value, bool) {
				if l.IsNull() || l.AsFloat() == 0 {
					return value.Null(), false
				}
				return value.Div(o, l)
			}))
	}
	// Divide: out = left / right.
	for _, n := range []string{"Divide", "/"} {
		exts = append(exts, mk(n, div, nil, nil))
	}
	exts = append(exts,
		&cmpExternal{name: "Bigger", op: value.Gt},
		&cmpExternal{name: ">", op: value.Gt},
		&cmpExternal{name: "Smaller", op: value.Lt},
		&cmpExternal{name: "<", op: value.Lt},
	)
	return exts
}

package eval

import (
	"fmt"
	"time"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

// maxLFPIterations bounds least-fixed-point recursion (Section 2.9); a
// monotone program over a finite instance converges long before this.
const maxLFPIterations = 100000

// Eval validates, links, and evaluates an ARC collection against a
// catalog under the given conventions, returning the result relation.
func Eval(col *alt.Collection, cat *Catalog, conv convention.Conventions) (*relation.Relation, error) {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(cat, conv)
	return ev.evalCollection(col, link, newEnv())
}

// EvalPrepared evaluates an already-validated collection with its link —
// the prepared-statement entry point, which skips per-execution
// re-validation. inputs are named input relations bound through the
// evaluator's override slot (they shadow catalog relations of the same
// name for this execution only); check, when non-nil, is polled each
// fixpoint round so long recursions honour context cancellation.
func EvalPrepared(col *alt.Collection, link *alt.Link, cat *Catalog, conv convention.Conventions, inputs map[string]*relation.Relation, check func() error) (*relation.Relation, error) {
	ev := newEvaluator(cat, conv)
	ev.check = check
	for name, rel := range inputs {
		ev.overrides[name] = rel
	}
	return ev.evalCollection(col, link, newEnv())
}

// RoundObserver supplies the per-round callback for one named recursive
// computation: it is called once per fixpoint (with the collection head's
// name) and its result — which may be nil — observes each round's new
// tuple count and derivation time. A callback factory rather than a trace
// type keeps this package free of observability dependencies.
type RoundObserver func(name string) func(delta int, elapsed time.Duration)

// EvalPreparedObserved is EvalPrepared with fixpoint round observation:
// each recursive collection's rounds are reported through obs. It is the
// EXPLAIN ANALYZE execution path for ARC statements.
func EvalPreparedObserved(col *alt.Collection, link *alt.Link, cat *Catalog, conv convention.Conventions, inputs map[string]*relation.Relation, check func() error, obs RoundObserver) (*relation.Relation, error) {
	ev := newEvaluator(cat, conv)
	ev.check = check
	ev.onRound = obs
	for name, rel := range inputs {
		ev.overrides[name] = rel
	}
	return ev.evalCollection(col, link, newEnv())
}

// EvalSentence validates and evaluates a Boolean ARC sentence (Section
// 2.5, queries (13)/(14)), returning its truth value. Under 3VL an
// Unknown sentence reports false.
func EvalSentence(s *alt.Sentence, cat *Catalog, conv convention.Conventions) (bool, error) {
	link, err := alt.ValidateSentence(s)
	if err != nil {
		return false, err
	}
	ev := newEvaluator(cat, conv)
	ev.pushLink(link)
	defer ev.popLink()
	tv, err := ev.evalTV(s.Body, newEnv())
	if err != nil {
		return false, err
	}
	return tv.Holds(), nil
}

type evaluator struct {
	cat        *Catalog
	conv       convention.Conventions
	links      []*alt.Link
	overrides  map[string]*relation.Relation
	viewCache  map[string]*relation.Relation
	inProgress map[string]bool
	scopeCache map[*alt.Quantifier]*scopeInfo
	check      func() error  // optional cancellation poll (fixpoint rounds)
	onRound    RoundObserver // optional fixpoint round observation
}

// roundObserver resolves the per-fixpoint callback for a named recursive
// computation (nil when observation is off).
func (ev *evaluator) roundObserver(name string) func(delta int, elapsed time.Duration) {
	if ev.onRound == nil {
		return nil
	}
	return ev.onRound(name)
}

func newEvaluator(cat *Catalog, conv convention.Conventions) *evaluator {
	return &evaluator{
		cat:        cat,
		conv:       conv,
		overrides:  map[string]*relation.Relation{},
		viewCache:  map[string]*relation.Relation{},
		inProgress: map[string]bool{},
		scopeCache: map[*alt.Quantifier]*scopeInfo{},
	}
}

func (ev *evaluator) pushLink(l *alt.Link) { ev.links = append(ev.links, l) }
func (ev *evaluator) popLink()             { ev.links = ev.links[:len(ev.links)-1] }
func (ev *evaluator) curLink() *alt.Link   { return ev.links[len(ev.links)-1] }

// prodRow is one produced output row: a partial head assignment with a
// bag multiplicity.
type prodRow struct {
	assign map[string]value.Value
	weight int
}

// evalCollection evaluates a top-level or view collection under its own
// link, handling recursion by least fixed point.
func (ev *evaluator) evalCollection(col *alt.Collection, link *alt.Link, e *env) (*relation.Relation, error) {
	ev.pushLink(link)
	defer ev.popLink()
	if link.RecursiveCols[col] {
		return ev.evalRecursive(col, e)
	}
	return ev.evalOnce(col, e)
}

// evalOnce evaluates a collection body once, producing its relation.
func (ev *evaluator) evalOnce(col *alt.Collection, e *env) (*relation.Relation, error) {
	base := &env{vars: e.vars, weight: 1}
	rows, err := ev.produce(col.Body, base, true)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", col.Head.Rel, err)
	}
	out := relation.New(col.Head.Rel, col.Head.Attrs...)
	for _, r := range rows {
		t := make(relation.Tuple, len(col.Head.Attrs))
		for i, a := range col.Head.Attrs {
			v, ok := r.assign[a]
			if !ok {
				return nil, fmt.Errorf("%s: head attribute %q not assigned for a produced row", col.Head.Rel, a)
			}
			t[i] = v
		}
		if r.weight <= 0 {
			continue
		}
		out.InsertMult(t, r.weight)
	}
	if ev.conv.Semantics == convention.Set {
		out = out.Dedup()
	}
	return out, nil
}

// produce yields the stream of head-assignment rows of a formula. gen is
// true on the generating path from the collection body: a generating
// quantifier contributes one row per satisfying binding combination (bag
// behaviour), whereas a nested quantifier's production is deduplicated —
// the semijoin-like behaviour the paper describes for nested
// comprehensions under bag semantics (Section 2.7).
func (ev *evaluator) produce(f alt.Formula, e *env, gen bool) ([]prodRow, error) {
	switch x := f.(type) {
	case nil:
		return []prodRow{{assign: map[string]value.Value{}, weight: e.weight}}, nil
	case *alt.Or:
		var out []prodRow
		for _, k := range x.Kids {
			rows, err := ev.produce(k, e, gen)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	case *alt.And:
		rows := []prodRow{{assign: map[string]value.Value{}, weight: 1}}
		for _, k := range x.Kids {
			kidRows, err := ev.produce(k, e, gen)
			if err != nil {
				return nil, err
			}
			rows = mergeRows(rows, kidRows)
			if len(rows) == 0 {
				return nil, nil
			}
		}
		return scaleRows(rows, 1), nil
	case *alt.Quantifier:
		return ev.produceQuant(x, e, gen)
	case *alt.Pred:
		return ev.producePred(x, e)
	case *alt.IsNull, *alt.Not:
		tv, err := ev.evalTV(f, e)
		if err != nil {
			return nil, err
		}
		if tv.Holds() {
			return []prodRow{{assign: map[string]value.Value{}, weight: 1}}, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("cannot produce from %T", f)
}

func (ev *evaluator) producePred(p *alt.Pred, e *env) ([]prodRow, error) {
	link := ev.curLink()
	if ev.effPredKind(p) == alt.PredAssignment {
		head := p.Left
		other := p.Right
		if link.HeadSide[p] == 1 {
			head, other = p.Right, p.Left
		}
		attr := head.(*alt.AttrRef).Attr
		v, err := ev.evalTerm(other, e)
		if err != nil {
			return nil, err
		}
		return []prodRow{{assign: map[string]value.Value{attr: v}, weight: 1}}, nil
	}
	tv, err := ev.evalTV(p, e)
	if err != nil {
		return nil, err
	}
	if tv.Holds() {
		return []prodRow{{assign: map[string]value.Value{}, weight: 1}}, nil
	}
	return nil, nil
}

// mergeRows merges two production streams conjunctively: assignments
// combine; conflicting assignments to the same attribute act as an
// (unsatisfied) equality constraint and drop the row.
func mergeRows(a, b []prodRow) []prodRow {
	var out []prodRow
	for _, x := range a {
		for _, y := range b {
			merged := make(map[string]value.Value, len(x.assign)+len(y.assign))
			ok := true
			for k, v := range x.assign {
				merged[k] = v
			}
			for k, v := range y.assign {
				if prev, dup := merged[k]; dup {
					if value.Eq.Apply(prev, v) != value.True {
						ok = false
						break
					}
					continue
				}
				merged[k] = v
			}
			if ok {
				out = append(out, prodRow{assign: merged, weight: x.weight * y.weight})
			}
		}
	}
	return out
}

func scaleRows(rows []prodRow, w int) []prodRow {
	if w == 1 {
		return rows
	}
	for i := range rows {
		rows[i].weight *= w
	}
	return rows
}

func dedupRows(rows []prodRow) []prodRow {
	seen := map[string]bool{}
	var out []prodRow
	for _, r := range rows {
		k := assignKey(r.assign)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, prodRow{assign: r.assign, weight: 1})
	}
	return out
}

func (ev *evaluator) produceQuant(q *alt.Quantifier, e *env, gen bool) ([]prodRow, error) {
	si, err := ev.scopeInfoFor(q)
	if err != nil {
		return nil, err
	}
	if sp := ev.scopePlanFor(si); sp != nil {
		rows, err := sp.produce(ev, e)
		if err != nil {
			return nil, err
		}
		if !gen {
			rows = dedupRows(rows)
		}
		return rows, nil
	}
	envs, err := ev.satisfyingEnvs(si, e)
	if err != nil {
		return nil, err
	}
	var rows []prodRow
	if q.Grouping != nil {
		groups, err := ev.groupEnvs(si, envs, e)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			row, ok, err := ev.groupRow(si, g, e)
			if err != nil {
				return nil, err
			}
			if ok {
				rows = append(rows, row)
			}
		}
	} else {
		for _, be := range envs {
			sub, err := ev.mergeProducers(si.producers, be, nil, gen)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				rows = append(rows, prodRow{assign: s.assign, weight: s.weight * be.weight})
			}
		}
	}
	if !gen {
		rows = dedupRows(rows)
	}
	return rows, nil
}

// group is one γ partition of a scope's satisfying environments.
type group struct {
	envs []*env
}

func (ev *evaluator) groupEnvs(si *scopeInfo, envs []*env, outer *env) ([]*group, error) {
	keys := si.q.Grouping.Keys
	if len(keys) == 0 {
		// γ∅: exactly one group, even over zero tuples ("group by true").
		return []*group{{envs: envs}}, nil
	}
	if len(envs) == 0 {
		return nil, nil // keyed grouping over zero rows yields zero groups
	}
	index := map[string]int{}
	var groups []*group
	for _, e := range envs {
		k := ""
		for _, key := range keys {
			v, err := ev.evalTerm(key, e)
			if err != nil {
				return nil, err
			}
			k += v.Key() + "\x1f"
		}
		if i, ok := index[k]; ok {
			groups[i].envs = append(groups[i].envs, e)
		} else {
			index[k] = len(groups)
			groups = append(groups, &group{envs: []*env{e}})
		}
	}
	return groups, nil
}

// groupRow evaluates the aggregate and producer predicates of one group,
// returning the produced row (if the group passes all aggregate
// comparison predicates).
func (ev *evaluator) groupRow(si *scopeInfo, g *group, outer *env) (prodRow, bool, error) {
	aggVals := map[*alt.Agg]value.Value{}
	for _, a := range si.aggTerms {
		v, err := ev.computeAgg(a, g.envs)
		if err != nil {
			return prodRow{}, false, err
		}
		aggVals[a] = v
	}
	rep := outer
	if len(g.envs) > 0 {
		rep = g.envs[0]
	}
	for _, p := range si.aggFilters {
		tv, err := ev.evalPredTVAgg(p, rep, aggVals)
		if err != nil {
			return prodRow{}, false, err
		}
		if !tv.Holds() {
			return prodRow{}, false, nil
		}
	}
	sub, err := ev.mergeProducers(si.producers, rep, aggVals, false)
	if err != nil {
		return prodRow{}, false, err
	}
	if len(sub) == 0 {
		return prodRow{}, false, nil
	}
	if len(sub) > 1 {
		return prodRow{}, false, fmt.Errorf("grouping scope produced %d rows for one group; producers must be group-invariant", len(sub))
	}
	return prodRow{assign: sub[0].assign, weight: outer.weight}, true, nil
}

// mergeProducers combines the producer elements of a scope for one
// environment into assignment rows.
func (ev *evaluator) mergeProducers(producers []alt.Formula, e *env, aggVals map[*alt.Agg]value.Value, gen bool) ([]prodRow, error) {
	rows := []prodRow{{assign: map[string]value.Value{}, weight: 1}}
	link := ev.curLink()
	for _, pf := range producers {
		var kidRows []prodRow
		switch x := pf.(type) {
		case *alt.Pred:
			head := x.Left
			other := x.Right
			if link.HeadSide[x] == 1 {
				head, other = x.Right, x.Left
			}
			attr := head.(*alt.AttrRef).Attr
			v, err := ev.evalTermAgg(other, e, aggVals)
			if err != nil {
				return nil, err
			}
			kidRows = []prodRow{{assign: map[string]value.Value{attr: v}, weight: 1}}
		case *alt.Quantifier:
			sub, err := ev.produceQuant(x, e, false)
			if err != nil {
				return nil, err
			}
			kidRows = sub
		case *alt.Or, *alt.And:
			sub, err := ev.produce(pf, e, false)
			if err != nil {
				return nil, err
			}
			kidRows = dedupRows(sub)
		default:
			return nil, fmt.Errorf("unsupported producing subformula %T", pf)
		}
		rows = mergeRows(rows, kidRows)
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// computeAgg evaluates one aggregate over a group's environments,
// honouring bag weights and the EmptyAggregate convention (Section 2.6).
func (ev *evaluator) computeAgg(a *alt.Agg, envs []*env) (value.Value, error) {
	needSum := a.Func == alt.AggSum || a.Func == alt.AggAvg
	var sum value.Value
	haveAny := false
	count := 0
	distinct := map[string]bool{}
	var minV, maxV value.Value
	for _, e := range envs {
		v, err := ev.evalTerm(a.Arg, e)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			continue // SQL aggregates ignore NULL inputs
		}
		if needSum && !v.IsNumeric() {
			return value.Null(), fmt.Errorf("%s over non-numeric value %v", a.Func, v)
		}
		w := e.weight
		if ev.conv.Semantics == convention.Set {
			w = 1
		}
		count += w
		distinct[v.Key()] = true
		if needSum {
			contrib := v
			if w > 1 {
				c, ok := value.Mul(v, value.Int(int64(w)))
				if !ok {
					return value.Null(), fmt.Errorf("%s over non-numeric value %v", a.Func, v)
				}
				contrib = c
			}
			if !haveAny {
				sum = contrib
			} else {
				s, ok := value.Add(sum, contrib)
				if !ok {
					return value.Null(), fmt.Errorf("%s over non-numeric value %v", a.Func, v)
				}
				sum = s
			}
		}
		if !haveAny {
			minV, maxV = v, v
		} else {
			if c, ok := v.Compare(minV); ok && c < 0 {
				minV = v
			}
			if c, ok := v.Compare(maxV); ok && c > 0 {
				maxV = v
			}
		}
		haveAny = true
	}
	empty := count == 0
	switch a.Func {
	case alt.AggCount:
		return value.Int(int64(count)), nil
	case alt.AggCountDistinct:
		return value.Int(int64(len(distinct))), nil
	case alt.AggSum:
		if empty {
			if ev.conv.EmptyAggregate == convention.ZeroOnEmpty {
				return value.Int(0), nil
			}
			return value.Null(), nil
		}
		return sum, nil
	case alt.AggAvg:
		if empty {
			return value.Null(), nil
		}
		v, _ := value.Div(value.Float(sum.AsFloat()), value.Int(int64(count)))
		return v, nil
	case alt.AggMin:
		if empty {
			return value.Null(), nil
		}
		return minV, nil
	case alt.AggMax:
		if empty {
			return value.Null(), nil
		}
		return maxV, nil
	}
	return value.Null(), fmt.Errorf("unknown aggregate %v", a.Func)
}

// satisfyingEnvs enumerates the join of a scope's bindings (with ON
// conditions at outer-join nodes) and filters by WHERE predicates and
// boolean subformulas. Environments are weighted relative to e.
func (ev *evaluator) satisfyingEnvs(si *scopeInfo, e *env) ([]*env, error) {
	base := &env{vars: e.vars, weight: 1}
	envs, err := ev.enumNode(si.tree, base, si, map[string]bool{})
	if err != nil {
		return nil, err
	}
	var out []*env
	for _, be := range envs {
		ok := true
		for _, p := range si.where {
			tv, err := ev.evalTV(p, be)
			if err != nil {
				return nil, err
			}
			if !tv.Holds() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, f := range si.filters {
			tv, err := ev.evalTV(f, be)
			if err != nil {
				return nil, err
			}
			if !tv.Holds() {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, be)
		}
	}
	return out, nil
}

// evalTV evaluates a formula as a truth value in 3VL (mapped to 2VL when
// the convention says so).
func (ev *evaluator) evalTV(f alt.Formula, e *env) (value.TV, error) {
	switch x := f.(type) {
	case nil:
		return value.True, nil
	case *alt.And:
		tv := value.True
		for _, k := range x.Kids {
			kt, err := ev.evalTV(k, e)
			if err != nil {
				return value.False, err
			}
			tv = tv.And(kt)
			if tv == value.False {
				return value.False, nil
			}
		}
		return tv, nil
	case *alt.Or:
		tv := value.False
		for _, k := range x.Kids {
			kt, err := ev.evalTV(k, e)
			if err != nil {
				return value.False, err
			}
			tv = tv.Or(kt)
			if tv == value.True {
				return value.True, nil
			}
		}
		return tv, nil
	case *alt.Not:
		kt, err := ev.evalTV(x.Kid, e)
		if err != nil {
			return value.False, err
		}
		return kt.Not(), nil
	case *alt.Pred:
		return ev.evalPredTVAgg(x, e, nil)
	case *alt.IsNull:
		v, err := ev.evalTerm(x.Arg, e)
		if err != nil {
			return value.False, err
		}
		return value.TVFromBool(v.IsNull() != x.Negated), nil
	case *alt.Quantifier:
		return ev.quantTV(x, e)
	}
	return value.False, fmt.Errorf("cannot evaluate %T as a truth value", f)
}

// quantTV evaluates a quantifier as an existential test. Grouped scopes
// are true when at least one group passes every aggregate comparison
// predicate (how sentences (13)/(14) and the COUNT bug version 1 work).
func (ev *evaluator) quantTV(q *alt.Quantifier, e *env) (value.TV, error) {
	si, err := ev.scopeInfoFor(q)
	if err != nil {
		return value.False, err
	}
	if len(si.producers) > 0 {
		return value.False, fmt.Errorf("quantifier with head assignments used as a boolean filter")
	}
	envs, err := ev.satisfyingEnvs(si, e)
	if err != nil {
		return value.False, err
	}
	if q.Grouping == nil {
		return value.TVFromBool(len(envs) > 0), nil
	}
	groups, err := ev.groupEnvs(si, envs, e)
	if err != nil {
		return value.False, err
	}
	for _, g := range groups {
		aggVals := map[*alt.Agg]value.Value{}
		pass := true
		for _, a := range si.aggTerms {
			v, err := ev.computeAgg(a, g.envs)
			if err != nil {
				return value.False, err
			}
			aggVals[a] = v
		}
		rep := e
		if len(g.envs) > 0 {
			rep = g.envs[0]
		}
		for _, p := range si.aggFilters {
			tv, err := ev.evalPredTVAgg(p, rep, aggVals)
			if err != nil {
				return value.False, err
			}
			if !tv.Holds() {
				pass = false
				break
			}
		}
		if pass {
			return value.True, nil
		}
	}
	return value.False, nil
}

// evalPredTVAgg evaluates a predicate with optional precomputed aggregate
// values, mapping Unknown to False under the 2VL convention.
func (ev *evaluator) evalPredTVAgg(p *alt.Pred, e *env, aggVals map[*alt.Agg]value.Value) (value.TV, error) {
	l, err := ev.evalTermAgg(p.Left, e, aggVals)
	if err != nil {
		return value.False, err
	}
	r, err := ev.evalTermAgg(p.Right, e, aggVals)
	if err != nil {
		return value.False, err
	}
	tv := p.Op.Apply(l, r)
	if tv == value.Unknown && ev.conv.NullLogic == convention.TwoValued {
		return value.False, nil
	}
	return tv, nil
}

package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alt"
	"repro/internal/value"
)

// varVals holds the attribute values of one bound range variable.
type varVals map[string]value.Value

// env is the evaluation environment of the conceptual evaluation
// strategy: the current assignment of range variables to tuples, with a
// bag-semantics weight (the product of tuple multiplicities on the path).
type env struct {
	vars   map[string]varVals
	weight int
}

func newEnv() *env { return &env{vars: map[string]varVals{}, weight: 1} }

// extend returns a copy of e with var v bound to vals at weight e.weight*w.
func (e *env) extend(v string, vals varVals, w int) *env {
	nv := make(map[string]varVals, len(e.vars)+1)
	for k, x := range e.vars {
		nv[k] = x
	}
	nv[v] = vals
	return &env{vars: nv, weight: e.weight * w}
}

// lookup resolves var.attr; the second return is false when the variable
// is not bound (a correlation miss — a bug caught by linking, so callers
// turn it into an internal error).
func (e *env) lookup(v, attr string) (value.Value, bool, error) {
	vals, ok := e.vars[v]
	if !ok {
		return value.Null(), false, nil
	}
	x, ok := vals[attr]
	if !ok {
		return value.Null(), false, fmt.Errorf("variable %q has no attribute %q", v, attr)
	}
	return x, true, nil
}

// evalTerm evaluates a non-aggregate term in e. Aggregate terms are
// evaluated by the grouping stage with substitution (see evalTermAgg).
func (ev *evaluator) evalTerm(t alt.Term, e *env) (value.Value, error) {
	return ev.evalTermAgg(t, e, nil)
}

// evalTermAgg evaluates a term, substituting precomputed aggregate values
// from aggVals (keyed by node identity).
func (ev *evaluator) evalTermAgg(t alt.Term, e *env, aggVals map[*alt.Agg]value.Value) (value.Value, error) {
	switch x := t.(type) {
	case *alt.Const:
		return x.Val, nil
	case *alt.AttrRef:
		v, ok, err := e.lookup(x.Var, x.Attr)
		if err != nil {
			return value.Null(), err
		}
		if !ok {
			return value.Null(), fmt.Errorf("unbound variable %q at evaluation time", x.Var)
		}
		return v, nil
	case *alt.Agg:
		if aggVals != nil {
			if v, ok := aggVals[x]; ok {
				return v, nil
			}
		}
		return value.Null(), fmt.Errorf("aggregate %s evaluated outside a grouping stage", x)
	case *alt.Arith:
		l, err := ev.evalTermAgg(x.L, e, aggVals)
		if err != nil {
			return value.Null(), err
		}
		r, err := ev.evalTermAgg(x.R, e, aggVals)
		if err != nil {
			return value.Null(), err
		}
		var out value.Value
		var ok bool
		switch x.Op {
		case alt.OpAdd:
			out, ok = value.Add(l, r)
		case alt.OpSub:
			out, ok = value.Sub(l, r)
		case alt.OpMul:
			out, ok = value.Mul(l, r)
		case alt.OpDiv:
			out, ok = value.Div(l, r)
		}
		if !ok {
			return value.Null(), fmt.Errorf("type error in %s", x)
		}
		return out, nil
	}
	return value.Null(), fmt.Errorf("unknown term %T", t)
}

// assignKey builds a deterministic identity for a production row's head
// assignments, used to deduplicate nested quantifier productions.
func assignKey(m map[string]value.Value) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

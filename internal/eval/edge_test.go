package eval

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

func TestTwoValuedLogicConvention(t *testing.T) {
	// Under 2VL, a comparison with NULL is plain false, so NOT over it
	// becomes true (no Unknown).
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, nil).Add(2, 5))
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.NotF(alt.Gt(alt.Ref("r", "B"), alt.CInt(0))),
			)))
	three := mustEval(t, q, cat, convention.SetLogic())
	if three.Card() != 0 {
		t.Fatalf("3VL: NOT Unknown filters, got\n%s", three)
	}
	two := mustEval(t, q, cat, convention.Souffle())
	if !two.Contains(relation.Tuple{value.Int(1)}) {
		t.Fatalf("2VL: NOT false is true, got\n%s", two)
	}
}

func TestViewCachingAndCycles(t *testing.T) {
	cat := NewCatalog().AddRelation(relation.New("R", "A").Add(1).Add(2))
	v1 := alt.Col("V1", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Eq(alt.Ref("V1", "A"), alt.Ref("r", "A"))))
	v2 := alt.Col("V2", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("v", "V1")},
			alt.Eq(alt.Ref("V2", "A"), alt.Ref("v", "A"))))
	if err := cat.DefineView(v1); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineView(v2); err != nil {
		t.Fatal(err)
	}
	// A query joining both views: V1 evaluates once (cached) per Eval.
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("a", "V1"), alt.Bind("b", "V2")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("a", "A")),
				alt.Eq(alt.Ref("a", "A"), alt.Ref("b", "A")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	if got.Card() != 2 {
		t.Fatalf("views:\n%s", got)
	}
	// Mutually recursive views are rejected.
	catBad := NewCatalog().AddRelation(relation.New("R", "A").Add(1))
	a := alt.Col("VA", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("x", "VB")},
			alt.Eq(alt.Ref("VA", "A"), alt.Ref("x", "A"))))
	bb := alt.Col("VB", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("x", "VA")},
			alt.Eq(alt.Ref("VB", "A"), alt.Ref("x", "A"))))
	if err := catBad.DefineView(a); err != nil {
		t.Fatal(err)
	}
	if err := catBad.DefineView(bb); err != nil {
		t.Fatal(err)
	}
	q2 := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("x", "VA")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("x", "A"))))
	if _, err := Eval(q2, catBad, convention.SetLogic()); err == nil ||
		!strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("want cyclic-view error, got %v", err)
	}
}

func TestRecursiveView(t *testing.T) {
	// A recursive collection registered as a view.
	cat := NewCatalog().
		AddRelation(relation.New("P", "s", "t").Add(1, 2).Add(2, 3))
	anc := alt.Col("A", []string{"s", "t"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("p", "P")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("p", "t")))),
			alt.Exists([]*alt.Binding{alt.Bind("p", "P"), alt.Bind("a2", "A")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("p", "t"), alt.Ref("a2", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("a2", "t")))),
		))
	if err := cat.DefineView(anc); err != nil {
		t.Fatal(err)
	}
	q := alt.Col("Q", []string{"t"},
		alt.Exists([]*alt.Binding{alt.Bind("a", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "t"), alt.Ref("a", "t")),
				alt.Eq(alt.Ref("a", "s"), alt.CInt(1)),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "t").Add(2).Add(3), false)
}

func TestNestedOuterJoinTree(t *testing.T) {
	// left(left(r, s), t): two stacked outer joins.
	cat := NewCatalog().
		AddRelation(relation.New("R", "a").Add(1).Add(2).Add(3)).
		AddRelation(relation.New("S", "a", "x").Add(1, "s1")).
		AddRelation(relation.New("T", "a", "y").Add(2, "t2"))
	q := alt.Col("Q", []string{"a", "x", "y"},
		alt.ExistsJ(
			[]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S"), alt.Bind("t", "T")},
			alt.LeftJ(alt.LeftJ(alt.JV("r"), alt.JV("s")), alt.JV("t")),
			alt.AndF(
				alt.Eq(alt.Ref("Q", "a"), alt.Ref("r", "a")),
				alt.Eq(alt.Ref("Q", "x"), alt.Ref("s", "x")),
				alt.Eq(alt.Ref("Q", "y"), alt.Ref("t", "y")),
				alt.Eq(alt.Ref("r", "a"), alt.Ref("s", "a")),
				alt.Eq(alt.Ref("r", "a"), alt.Ref("t", "a")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "a", "x", "y").
		Add(1, "s1", nil).Add(2, nil, "t2").Add(3, nil, nil)
	wantRel(t, got, want, false)
}

func TestGroupOnOuterJoinedNulls(t *testing.T) {
	// Grouping keys that are NULL (from the null-extended side) group
	// together — the v3 COUNT-bug shape relies on r2.id never being NULL,
	// but grouping s-side attrs must not crash.
	cat := NewCatalog().
		AddRelation(relation.New("R", "id").Add(1).Add(2)).
		AddRelation(relation.New("S", "id", "d").Add(1, "a"))
	q := alt.Col("Q", []string{"sid", "ct"},
		alt.ExistsGJ(
			[]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			[]*alt.AttrRef{alt.Ref("s", "id")},
			alt.LeftJ(alt.JV("r"), alt.JV("s")),
			alt.AndF(
				alt.Eq(alt.Ref("Q", "sid"), alt.Ref("s", "id")),
				alt.Eq(alt.Ref("Q", "ct"), alt.Count(alt.Ref("s", "d"))),
				alt.Eq(alt.Ref("r", "id"), alt.Ref("s", "id")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "sid", "ct").Add(1, 1).Add(nil, 0)
	wantRel(t, got, want, false)
}

func TestMinMaxStrings(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "g", "s").Add(1, "pear").Add(1, "apple").Add(1, "fig"))
	q := alt.Col("Q", []string{"g", "mn", "mx"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "g")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "g"), alt.Ref("r", "g")),
				alt.Eq(alt.Ref("Q", "mn"), alt.Min(alt.Ref("r", "s"))),
				alt.Eq(alt.Ref("Q", "mx"), alt.Max(alt.Ref("r", "s"))),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "g", "mn", "mx").Add(1, "apple", "pear"), false)
}

func TestSumOverStringsErrors(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "s").Add("x"))
	q := alt.Col("Q", []string{"v"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")}, nil,
			alt.Eq(alt.Ref("Q", "v"), alt.Sum(alt.Ref("r", "s")))))
	if _, err := Eval(q, cat, convention.SetLogic()); err == nil ||
		!strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("want non-numeric error, got %v", err)
	}
}

func TestBagWeightsFromSourceMultiplicity(t *testing.T) {
	r := relation.New("R", "A")
	r.InsertMult(relation.Tuple{value.Int(1)}, 3)
	cat := NewCatalog().AddRelation(r)
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A"))))
	bag := mustEval(t, q, cat, convention.SQL())
	if bag.Mult(relation.Tuple{value.Int(1)}) != 3 {
		t.Fatalf("source multiplicity lost:\n%s", bag)
	}
	set := mustEval(t, q, cat, convention.SetLogic())
	if set.Card() != 1 {
		t.Fatalf("set conventions must dedup:\n%s", set)
	}
	// Aggregates honour weights under bags: sum = 3×1.
	qa := alt.Col("Q", []string{"sm"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")}, nil,
			alt.Eq(alt.Ref("Q", "sm"), alt.Sum(alt.Ref("r", "A")))))
	agg := mustEval(t, qa, cat, convention.SQL())
	if !agg.Contains(relation.Tuple{value.Int(3)}) {
		t.Fatalf("weighted sum:\n%s", agg)
	}
}

func TestSentenceWithHeadlessGroupFilter(t *testing.T) {
	// A sentence whose quantifier carries keyed grouping: true iff some
	// group passes the aggregate test.
	cat := NewCatalog().
		AddRelation(relation.New("S", "id", "d").Add(1, "a").Add(1, "b").Add(2, "c"))
	s := &alt.Sentence{Body: alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")},
		[]*alt.AttrRef{alt.Ref("s", "id")},
		alt.Ge(alt.Count(alt.Ref("s", "d")), alt.CInt(2)))}
	ok, err := EvalSentence(s, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("group id=1 has count 2 ≥ 2; sentence should hold")
	}
	s2 := &alt.Sentence{Body: alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")},
		[]*alt.AttrRef{alt.Ref("s", "id")},
		alt.Ge(alt.Count(alt.Ref("s", "d")), alt.CInt(3)))}
	ok2, err := EvalSentence(s2, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Fatal("no group reaches count 3")
	}
}

func TestHeadAssignmentOfNullConstant(t *testing.T) {
	// The left-join-as-union encoding assigns Q.B = null explicitly.
	cat := NewCatalog().
		AddRelation(relation.New("R", "A").Add(1)).
		AddRelation(relation.New("S", "B").Add(9))
	q := alt.Col("Q", []string{"A", "B"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("Q", "B"), alt.Ref("s", "B")),
					alt.Eq(alt.Ref("r", "A"), alt.Ref("s", "B")),
				)),
			alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("Q", "B"), alt.CNull()),
					alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
						alt.Eq(alt.Ref("r", "A"), alt.Ref("s", "B")))),
				)),
		))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A", "B").Add(1, nil), false)
}

func TestCloneIndependence(t *testing.T) {
	orig := alt.Col("Q", []string{"A"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A"))))
	clone := alt.CloneCollection(orig)
	// Mutate the clone thoroughly.
	cq := clone.Body.(*alt.Quantifier)
	cq.Bindings[0].Var = "zzz"
	cq.Grouping.Keys[0].Attr = "mutated"
	clone.Head.Attrs[0] = "changed"
	oq := orig.Body.(*alt.Quantifier)
	if oq.Bindings[0].Var != "r" || oq.Grouping.Keys[0].Attr != "A" || orig.Head.Attrs[0] != "A" {
		t.Fatal("CloneCollection must be deep")
	}
}

package eval

import (
	"fmt"
	"sort"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/value"
)

// enumNode enumerates the environments of one join-tree node, extending
// base. Inner nodes nest loops left to right (with access-pattern-aware
// reordering for external/abstract leaves); left/full nodes implement the
// outer-join semantics of Section 2.11 with their attached ON predicates.
// bound tracks the scope-local variables already enumerated on this path,
// so that index probes never read a local variable's value before its own
// leaf binds it (which would silently resolve to a shadowed outer
// variable of the same name).
func (ev *evaluator) enumNode(n *joinNode, base *env, si *scopeInfo, bound map[string]bool) ([]*env, error) {
	if n.isLeaf() {
		return ev.enumerateLeaf(n.leaf, base, si, bound)
	}
	switch n.kind {
	case alt.JoinInner:
		return ev.enumInner(n, base, si, bound)
	case alt.JoinLeft:
		return ev.enumLeft(n, base, si, bound)
	case alt.JoinFull:
		return ev.enumFull(n, base, si, bound)
	}
	return nil, fmt.Errorf("unknown join node kind %v", n.kind)
}

func copyBound(bound map[string]bool) map[string]bool {
	out := make(map[string]bool, len(bound)+2)
	for v := range bound {
		out[v] = true
	}
	return out
}

func (ev *evaluator) enumInner(n *joinNode, base *env, si *scopeInfo, bound map[string]bool) ([]*env, error) {
	envs := []*env{base}
	remaining := append([]*joinNode(nil), n.kids...)
	bound = copyBound(bound)
	for len(remaining) > 0 {
		if len(envs) == 0 {
			return nil, nil // inner join already empty
		}
		pick := -1
		for i, k := range remaining {
			ready, err := ev.readyNode(k, envs[0], si)
			if err != nil {
				return nil, err
			}
			if ready {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("no binding order satisfies the access patterns of %s", describeLeaves(remaining))
		}
		k := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var next []*env
		for _, e := range envs {
			exts, err := ev.enumNode(k, e, si, bound)
			if err != nil {
				return nil, err
			}
			next = append(next, exts...)
		}
		envs = next
		for v := range k.vars {
			bound[v] = true
		}
	}
	return envs, nil
}

func (ev *evaluator) enumLeft(n *joinNode, base *env, si *scopeInfo, bound map[string]bool) ([]*env, error) {
	lefts, err := ev.enumNode(n.kids[0], base, si, bound)
	if err != nil {
		return nil, err
	}
	if out, handled, err := ev.enumLeftHashed(n, base, lefts, si, bound); handled || err != nil {
		return out, err
	}
	rightBound := copyBound(bound)
	for v := range n.kids[0].vars {
		rightBound[v] = true
	}
	var out []*env
	for _, l := range lefts {
		rights, err := ev.enumNode(n.kids[1], l, si, rightBound)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, r := range rights {
			ok, err := ev.onHolds(n, r)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				out = append(out, r)
			}
		}
		if !matched {
			ne, err := ev.nullExtend(l, n.kids[1])
			if err != nil {
				return nil, err
			}
			out = append(out, ne)
		}
	}
	return out, nil
}

// enumLeftHashed joins a LEFT node by enumerating and hashing the right
// subtree once instead of re-enumerating it per left environment. Sound
// only when the right subtree enumerates independently of the left
// bindings — a multi-leaf subtree over plain relation sources (no
// lateral collection sources, externals, or abstract relations, whose
// enumeration depends on bound inputs) — and every ON conjunct is a
// separable equality, hashed as the bucket key and still re-checked per
// candidate by onHolds (so NULL keys, Key-vs-Eq divergence, and
// per-pair evaluation errors keep exact baseline semantics; erroring or
// non-indexable right keys overflow to every left, as in enumFull).
// Single-leaf rights keep the per-left path, whose index probes already
// make them cheap.
// DisableLeftHash forces enumLeft onto the per-left re-enumeration path
// — the baseline side of the hashed-left-join differential test.
var DisableLeftHash = false

func (ev *evaluator) enumLeftHashed(n *joinNode, base *env, lefts []*env, si *scopeInfo, bound map[string]bool) ([]*env, bool, error) {
	if DisableLeftHash {
		return nil, false, nil
	}
	leaves, plain := ev.plainSubtree(n.kids[1])
	if leaves < 2 || !plain || len(lefts) == 0 {
		return nil, false, nil
	}
	eqs := splitFullEqs(n)
	if len(eqs) == 0 || len(eqs) != len(n.on) {
		return nil, false, nil
	}
	rights, err := ev.enumNode(n.kids[1], base, si, copyBound(bound))
	if err != nil {
		return nil, false, err
	}
	h := ev.hashRightEnvs(eqs, rights)
	var out []*env
	for _, l := range lefts {
		primary, extra := h.candidatesOf(l)
		matched := false
		for _, cands := range [2][]int{primary, extra} {
			for _, ri := range cands {
				m := ev.mergeEnvs(base, l, rights[ri], n.kids[1])
				ok, err := ev.onHolds(n, m)
				if err != nil {
					return nil, false, err
				}
				if ok {
					matched = true
					out = append(out, m)
				}
			}
		}
		if !matched {
			ne, err := ev.nullExtend(l, n.kids[1])
			if err != nil {
				return nil, false, err
			}
			out = append(out, ne)
		}
	}
	return out, true, nil
}

// plainSubtree counts the leaves of a join subtree and reports whether
// every leaf ranges over a plain relation source (constant, recursion
// override, base relation, or view) — the sources whose enumeration
// never depends on previously bound variables.
func (ev *evaluator) plainSubtree(n *joinNode) (int, bool) {
	if n.isLeaf() {
		b := n.leaf
		if b.Sub != nil {
			return 1, false // lateral: evaluated per outer environment
		}
		if _, isConst := ev.curLink().ConstOfBinding[b]; isConst {
			return 1, true
		}
		if _, ok := ev.overrides[b.Rel]; ok {
			return 1, true
		}
		if ev.cat.Relation(b.Rel) != nil {
			return 1, true
		}
		if _, ok := ev.cat.views[b.Rel]; ok {
			return 1, true
		}
		return 1, false
	}
	count, plain := 0, true
	for _, k := range n.kids {
		c, p := ev.plainSubtree(k)
		count += c
		plain = plain && p
	}
	return count, plain
}

func (ev *evaluator) enumFull(n *joinNode, base *env, si *scopeInfo, bound map[string]bool) ([]*env, error) {
	lefts, err := ev.enumNode(n.kids[0], base, si, bound)
	if err != nil {
		return nil, err
	}
	rights, err := ev.enumNode(n.kids[1], base, si, bound)
	if err != nil {
		return nil, err
	}
	// Separable ON equalities (one side readable from each subtree) hash
	// the right envs so each left env only visits its key bucket; the
	// full ON condition is still re-checked per candidate, so NULL keys
	// and Key-vs-Eq divergence keep exact semantics. Empty sides fall
	// through to the nested path, which then only null-extends. Hashing
	// is only used when every ON conjunct is an extracted equality: with
	// residual conjuncts, pruning a pair could also prune a per-pair
	// evaluation error the nested path would surface.
	eqs := splitFullEqs(n)
	h := allRightCandidates(len(rights))
	if len(eqs) == len(n.on) && len(eqs) > 0 && len(lefts) > 0 && len(rights) > 0 {
		h = ev.hashRightEnvs(eqs, rights)
	}
	matchedR := make([]bool, len(rights))
	var out []*env
	for _, l := range lefts {
		matched := false
		primary, extra := h.candidatesOf(l)
		for _, cands := range [2][]int{primary, extra} {
			for _, ri := range cands {
				m := ev.mergeEnvs(base, l, rights[ri], n.kids[1])
				ok, err := ev.onHolds(n, m)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					matchedR[ri] = true
					out = append(out, m)
				}
			}
		}
		if !matched {
			ne, err := ev.nullExtend(l, n.kids[1])
			if err != nil {
				return nil, err
			}
			out = append(out, ne)
		}
	}
	for ri, r := range rights {
		if matchedR[ri] {
			continue
		}
		ne, err := ev.nullExtend(r, n.kids[0])
		if err != nil {
			return nil, err
		}
		out = append(out, ne)
	}
	return out, nil
}

// rightEnvHash buckets a join node's right-side environments by their
// separable-equality key terms, shared by enumFull and enumLeftHashed.
// Rights whose key terms error (the nested path may never evaluate them
// — an earlier ON conjunct can short-circuit) or are non-indexable go
// to the overflow list, staying candidates for every left so onHolds
// reproduces baseline behaviour exactly.
type rightEnvHash struct {
	ev       *evaluator
	eqs      []fullEq
	buckets  map[string][]int
	overflow []int
	all      []int
	kb       []byte
}

// allRightCandidates is the no-hash baseline: every left visits every
// right.
func allRightCandidates(n int) *rightEnvHash {
	h := &rightEnvHash{all: make([]int, n)}
	for i := range h.all {
		h.all[i] = i
	}
	return h
}

// hashRightEnvs builds the bucket+overflow index over rights.
func (ev *evaluator) hashRightEnvs(eqs []fullEq, rights []*env) *rightEnvHash {
	h := allRightCandidates(len(rights))
	h.ev = ev
	h.eqs = eqs
	h.buckets = map[string][]int{}
	for ri, r := range rights {
		h.kb = h.kb[:0]
		indexable := true
		for _, eq := range eqs {
			v, err := ev.evalTermAgg(eq.right, r, nil)
			if err != nil {
				indexable = false
				break
			}
			if !v.Indexable() {
				indexable = false
			}
			h.kb = v.AppendKey(h.kb)
			h.kb = append(h.kb, '\x1f')
		}
		if indexable {
			h.buckets[string(h.kb)] = append(h.buckets[string(h.kb)], ri)
		} else {
			h.overflow = append(h.overflow, ri)
		}
	}
	return h
}

// candidatesOf returns the right indexes a left env must visit: its key
// bucket plus the overflow, or every right when hashing is off or the
// left key is unevaluable / too weak for index identity.
func (h *rightEnvHash) candidatesOf(l *env) ([]int, []int) {
	if h.buckets == nil {
		return h.all, nil
	}
	h.kb = h.kb[:0]
	for _, eq := range h.eqs {
		v, err := h.ev.evalTermAgg(eq.left, l, nil)
		if err != nil || !v.Indexable() {
			return h.all, nil
		}
		h.kb = v.AppendKey(h.kb)
		h.kb = append(h.kb, '\x1f')
	}
	return h.buckets[string(h.kb)], h.overflow
}

// fullEq is one hashable ON equality of a FULL-join node: left is
// evaluable from the left subtree's envs, right from the right's.
type fullEq struct {
	left, right alt.Term
}

// splitFullEqs extracts the ON equality conjuncts usable as hash keys: a
// plain equality whose sides read disjoint subtrees (either side may
// also read outer variables, which both envs carry). Every conjunct is
// re-checked by onHolds per candidate, so extraction only prunes.
func splitFullEqs(n *joinNode) []fullEq {
	var eqs []fullEq
	for _, f := range n.on {
		p, ok := f.(*alt.Pred)
		if !ok || p.Op != value.Eq || alt.ContainsAgg(p.Left) || alt.ContainsAgg(p.Right) {
			continue
		}
		leftVars, rightVars := n.kids[0].vars, n.kids[1].vars
		switch {
		case !refersAnySubtreeVar(p.Left, rightVars) && !refersAnySubtreeVar(p.Right, leftVars) &&
			(refersAnySubtreeVar(p.Left, leftVars) || refersAnySubtreeVar(p.Right, rightVars)):
			eqs = append(eqs, fullEq{left: p.Left, right: p.Right})
		case !refersAnySubtreeVar(p.Right, rightVars) && !refersAnySubtreeVar(p.Left, leftVars) &&
			(refersAnySubtreeVar(p.Right, leftVars) || refersAnySubtreeVar(p.Left, rightVars)):
			eqs = append(eqs, fullEq{left: p.Right, right: p.Left})
		}
	}
	return eqs
}

// refersAnySubtreeVar reports whether t references any variable of the
// given subtree var set.
func refersAnySubtreeVar(t alt.Term, vars map[string]bool) bool {
	for _, r := range alt.TermAttrRefs(t, nil) {
		if vars[r.Var] {
			return true
		}
	}
	return false
}

// onHolds evaluates a left/full node's ON predicates in env e.
func (ev *evaluator) onHolds(n *joinNode, e *env) (bool, error) {
	for _, p := range n.on {
		tv, err := ev.evalTV(p, e)
		if err != nil {
			return false, err
		}
		if !tv.Holds() {
			return false, nil
		}
	}
	return true, nil
}

// mergeEnvs combines a left and right extension of the same base env for
// full joins; the weight divides out the shared base weight.
func (ev *evaluator) mergeEnvs(base, l, r *env, rightSub *joinNode) *env {
	vars := make(map[string]varVals, len(l.vars)+len(rightSub.vars))
	for k, v := range l.vars {
		vars[k] = v
	}
	for v := range rightSub.vars {
		if vv, ok := r.vars[v]; ok {
			vars[v] = vv
		}
	}
	w := l.weight * r.weight
	if base.weight > 0 {
		w /= base.weight
	}
	return &env{vars: vars, weight: w}
}

// nullExtend extends e with all-NULL tuples for every binding under sub
// (the unmatched side of an outer join).
func (ev *evaluator) nullExtend(e *env, sub *joinNode) (*env, error) {
	out := e
	var walk func(n *joinNode) error
	walk = func(n *joinNode) error {
		if n.isLeaf() {
			attrs, err := ev.sourceAttrs(n.leaf)
			if err != nil {
				return err
			}
			vals := make(varVals, len(attrs))
			for _, a := range attrs {
				vals[a] = value.Null()
			}
			out = out.extend(n.leaf.Var, vals, 1)
			return nil
		}
		for _, k := range n.kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(sub); err != nil {
		return nil, err
	}
	return out, nil
}

// readyNode reports whether a join-tree node can be enumerated given the
// variables currently bound in e: external and abstract leaves need their
// access patterns satisfied; everything else is always ready.
func (ev *evaluator) readyNode(n *joinNode, e *env, si *scopeInfo) (bool, error) {
	if !n.isLeaf() {
		return true, nil
	}
	b := n.leaf
	if b.Sub != nil || b.Rel == "" {
		return true, nil
	}
	link := ev.curLink()
	if _, isConst := link.ConstOfBinding[b]; isConst {
		return true, nil
	}
	if _, ok := ev.overrides[b.Rel]; ok {
		return true, nil
	}
	if ev.cat.Relation(b.Rel) != nil {
		return true, nil
	}
	if _, ok := ev.cat.views[b.Rel]; ok {
		return true, nil
	}
	if ext, ok := ev.cat.externals[b.Rel]; ok {
		bound, _, err := ev.boundInputs(b, e, si)
		if err != nil {
			return false, err
		}
		names := map[string]bool{}
		for k := range bound {
			names[k] = true
		}
		return ext.CanEnumerate(names), nil
	}
	if abs, ok := ev.cat.abstract[b.Rel]; ok {
		bound, _, err := ev.boundInputs(b, e, si)
		if err != nil {
			return false, err
		}
		for _, a := range abs.Head.Attrs {
			if _, ok := bound[a]; !ok {
				return false, nil
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("unknown relation %q", b.Rel)
}

// boundInputs derives attribute values for an external/abstract binding
// from the scope's equality predicates whose other side is evaluable in
// the current environment — the access-pattern mechanism of Section 2.13.
func (ev *evaluator) boundInputs(b *alt.Binding, e *env, si *scopeInfo) (map[string]value.Value, []*alt.Pred, error) {
	return ev.eqInputs(b, e, si, nil)
}

// probeInputs is boundInputs restricted to predicates that are safe to
// use as index probes: predicates on a FULL-join node's ON list are
// excluded (unmatched full-join rows null-extend without any ON
// re-check, so a probe would drop them), and so are predicates whose
// other side reads a scope-local variable not yet enumerated on this
// path — its env value, if present, belongs to a shadowed outer
// variable of the same name. enumed is that path's enumerated-local set.
func (ev *evaluator) probeInputs(b *alt.Binding, e *env, si *scopeInfo, enumed map[string]bool) (map[string]value.Value, []*alt.Pred, error) {
	if enumed == nil {
		enumed = map[string]bool{}
	}
	return ev.eqInputs(b, e, si, enumed)
}

// eqInputs feeds both boundInputs (enumed == nil: the seed access-pattern
// behaviour for externals/abstract relations) and probeInputs (enumed !=
// nil: the probe-safety filters apply).
func (ev *evaluator) eqInputs(b *alt.Binding, e *env, si *scopeInfo, enumed map[string]bool) (map[string]value.Value, []*alt.Pred, error) {
	bound := map[string]value.Value{}
	var used []*alt.Pred
	for _, p := range si.eqPreds {
		if enumed != nil && si.fullOn[p] {
			continue
		}
		for _, side := range [2]int{0, 1} {
			var me, other alt.Term
			if side == 0 {
				me, other = p.Left, p.Right
			} else {
				me, other = p.Right, p.Left
			}
			ref, ok := me.(*alt.AttrRef)
			if !ok || ref.Var != b.Var {
				continue
			}
			if refersToVar(other, b.Var) {
				continue
			}
			if enumed != nil && ev.readsUnenumeratedLocal(other, si, enumed) {
				continue
			}
			v, err := ev.evalTermAgg(other, e, nil)
			if err != nil {
				continue // other side not yet evaluable in this order
			}
			bound[ref.Attr] = v
			used = append(used, p)
		}
	}
	return bound, used, nil
}

// readsUnenumeratedLocal reports whether t references a variable bound by
// this scope's quantifier whose leaf has not been enumerated yet on the
// current path — evaluating it now would resolve a shadowed outer
// variable of the same name (or fail), so it must not feed a probe.
func (ev *evaluator) readsUnenumeratedLocal(t alt.Term, si *scopeInfo, enumed map[string]bool) bool {
	link := ev.curLink()
	for _, r := range alt.TermAttrRefs(t, nil) {
		res, ok := link.Refs[r]
		if !ok || res.Kind != alt.RefBinding {
			continue
		}
		if link.BindingQuantifier[res.Binding] == si.q && !enumed[r.Var] {
			return true
		}
	}
	return false
}

func refersToVar(t alt.Term, v string) bool {
	for _, r := range alt.TermAttrRefs(t, nil) {
		if r.Var == v {
			return true
		}
	}
	return false
}

func describeLeaves(nodes []*joinNode) string {
	out := ""
	for _, n := range nodes {
		if n.isLeaf() {
			if out != "" {
				out += ", "
			}
			out += n.leaf.String()
		}
	}
	if out == "" {
		return "join subtree"
	}
	return out
}

// enumerateLeaf extends e with every tuple of one binding's source.
func (ev *evaluator) enumerateLeaf(b *alt.Binding, e *env, si *scopeInfo, bound map[string]bool) ([]*env, error) {
	link := ev.curLink()
	if v, isConst := link.ConstOfBinding[b]; isConst {
		return []*env{e.extend(b.Var, varVals{"val": v}, 1)}, nil
	}
	if b.Sub != nil {
		rel, err := ev.evalSubCollection(b.Sub, e)
		if err != nil {
			return nil, err
		}
		return ev.bindRelation(b, rel, e, si, bound)
	}
	if rel, ok := ev.overrides[b.Rel]; ok {
		return ev.bindRelation(b, rel, e, si, bound)
	}
	if rel := ev.cat.Relation(b.Rel); rel != nil {
		return ev.bindRelation(b, rel, e, si, bound)
	}
	if _, ok := ev.cat.views[b.Rel]; ok {
		rel, err := ev.evalView(b.Rel)
		if err != nil {
			return nil, err
		}
		return ev.bindRelation(b, rel, e, si, bound)
	}
	if ext, ok := ev.cat.externals[b.Rel]; ok {
		return ev.enumExternal(b, ext, e, si)
	}
	if abs, ok := ev.cat.abstract[b.Rel]; ok {
		return ev.enumAbstract(b, abs, e, si)
	}
	return nil, fmt.Errorf("unknown relation %q", b.Rel)
}

// bindRelation extends e with the tuples of rel bound to b.Var. When the
// scope has equality predicates connecting b's attributes to terms already
// evaluable in e, enumeration probes rel's lazy hash index on those
// attributes instead of scanning — the probe only drops tuples the WHERE
// (or ON) stage would reject anyway, since every probe predicate is
// re-checked there.
func (ev *evaluator) bindRelation(b *alt.Binding, rel *relation.Relation, e *env, si *scopeInfo, enumed map[string]bool) ([]*env, error) {
	bound, _, err := ev.probeInputs(b, e, si, enumed)
	if err != nil {
		return nil, err
	}
	var probeAttrs []string
	for a, v := range bound {
		if rel.AttrIndex(a) >= 0 && v.Indexable() {
			probeAttrs = append(probeAttrs, a)
		}
	}
	seq := exec.Scan(rel)
	if len(probeAttrs) > 0 {
		sort.Strings(probeAttrs) // one canonical index per attribute set
		cols := make([]int, len(probeAttrs))
		vals := make([]value.Value, len(probeAttrs))
		for i, a := range probeAttrs {
			cols[i] = rel.AttrIndex(a)
			vals[i] = bound[a]
		}
		seq = exec.Probe(rel, cols, vals)
	}
	var out []*env
	attrs := rel.Attrs()
	for t, mult := range seq {
		vals := make(varVals, len(attrs))
		for i, a := range attrs {
			vals[a] = t[i]
		}
		w := 1
		if ev.conv.Semantics == convention.Bag {
			w = mult
		}
		out = append(out, e.extend(b.Var, vals, w))
	}
	return out, nil
}

// evalSubCollection evaluates a nested collection source laterally: once
// per outer environment, with the outer variables visible (Section 2.4).
func (ev *evaluator) evalSubCollection(c *alt.Collection, e *env) (*relation.Relation, error) {
	link := ev.curLink()
	if link.RecursiveCols[c] {
		return ev.evalRecursive(c, e)
	}
	return ev.evalOnce(c, e)
}

// evalView evaluates an intensional relation (view/CTE) once per
// evaluation, with cycle detection; views may themselves be recursive.
func (ev *evaluator) evalView(name string) (*relation.Relation, error) {
	if rel, ok := ev.viewCache[name]; ok {
		return rel, nil
	}
	if ev.inProgress[name] {
		return nil, fmt.Errorf("cyclic view definition involving %q (mutual recursion between views is not supported; use a single recursive collection)", name)
	}
	ev.inProgress[name] = true
	defer delete(ev.inProgress, name)
	col := ev.cat.views[name]
	link := ev.cat.viewLinks[name]
	rel, err := ev.evalCollection(col, link, newEnv())
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	ev.viewCache[name] = rel
	return rel, nil
}

// enumExternal enumerates an external relation leaf through its access
// pattern (Section 2.13.1).
func (ev *evaluator) enumExternal(b *alt.Binding, ext External, e *env, si *scopeInfo) ([]*env, error) {
	bound, _, err := ev.boundInputs(b, e, si)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for k := range bound {
		names[k] = true
	}
	if !ext.CanEnumerate(names) {
		return nil, fmt.Errorf("external relation %s: access pattern unsatisfied (bound: %v)", ext.Name(), boundAttrs(bound))
	}
	rows, err := ext.Enumerate(bound)
	if err != nil {
		return nil, err
	}
	var out []*env
	for _, row := range rows {
		vals := make(varVals, len(row))
		for k, v := range row {
			vals[k] = v
		}
		out = append(out, e.extend(b.Var, vals, 1))
	}
	return out, nil
}

// enumAbstract enumerates an abstract relation leaf (Section 2.13.2):
// every head attribute must be determined by equality predicates at the
// use site; the definition's body is then evaluated as a Boolean with the
// head bound to those values.
func (ev *evaluator) enumAbstract(b *alt.Binding, abs *alt.Collection, e *env, si *scopeInfo) ([]*env, error) {
	bound, _, err := ev.boundInputs(b, e, si)
	if err != nil {
		return nil, err
	}
	vals := make(varVals, len(abs.Head.Attrs))
	for _, a := range abs.Head.Attrs {
		v, ok := bound[a]
		if !ok {
			return nil, fmt.Errorf("abstract relation %s: parameter %q not determined by equality predicates at the use site", abs.Head.Rel, a)
		}
		vals[a] = v
	}
	absLink := ev.cat.absLinks[abs.Head.Rel]
	ev.pushLink(absLink)
	inner := newEnv().extend(abs.Head.Rel, vals, 1)
	tv, err := ev.evalTV(abs.Body, inner)
	ev.popLink()
	if err != nil {
		return nil, fmt.Errorf("abstract relation %s: %w", abs.Head.Rel, err)
	}
	if tv.Holds() {
		return []*env{e.extend(b.Var, vals, 1)}, nil
	}
	return nil, nil
}

// sourceAttrs resolves the attribute list of a binding's source.
func (ev *evaluator) sourceAttrs(b *alt.Binding) ([]string, error) {
	link := ev.curLink()
	if _, isConst := link.ConstOfBinding[b]; isConst {
		return []string{"val"}, nil
	}
	if b.Sub != nil {
		return b.Sub.Head.Attrs, nil
	}
	if rel, ok := ev.overrides[b.Rel]; ok {
		return rel.Attrs(), nil
	}
	if rel := ev.cat.Relation(b.Rel); rel != nil {
		return rel.Attrs(), nil
	}
	if v, ok := ev.cat.views[b.Rel]; ok {
		return v.Head.Attrs, nil
	}
	if ext, ok := ev.cat.externals[b.Rel]; ok {
		return ext.Attrs(), nil
	}
	if a, ok := ev.cat.abstract[b.Rel]; ok {
		return a.Head.Attrs, nil
	}
	return nil, fmt.Errorf("unknown relation %q", b.Rel)
}

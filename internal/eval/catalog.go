// Package eval implements the ARC evaluator: the paper's "conceptual
// evaluation strategy" (Section 2.3) over linked Abstract Language Trees —
// nested loops over bindings, lateral re-evaluation of nested collections,
// grouping scopes with parallel aggregates (Section 2.5), join annotations
// (Section 2.11), negation and disjunction, least-fixed-point recursion
// (Section 2.9), and external/abstract relations via access patterns
// (Section 2.13). Conventions (set/bag, 2VL/3VL, aggregate initialization)
// are environment parameters, never part of the query.
package eval

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/relation"
)

// Catalog is the environment a query runs against: base relations,
// intensional relations (views/CTEs), abstract relations, and external
// relations (built-ins).
type Catalog struct {
	base      map[string]*relation.Relation
	views     map[string]*alt.Collection
	viewLinks map[string]*alt.Link
	abstract  map[string]*alt.Collection
	absLinks  map[string]*alt.Link
	externals map[string]External
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		base:      make(map[string]*relation.Relation),
		views:     make(map[string]*alt.Collection),
		viewLinks: make(map[string]*alt.Link),
		abstract:  make(map[string]*alt.Collection),
		absLinks:  make(map[string]*alt.Link),
		externals: make(map[string]External),
	}
}

// AddRelation registers a base relation under its own name.
func (c *Catalog) AddRelation(r *relation.Relation) *Catalog {
	c.base[r.Name()] = r
	return c
}

// Relation returns the base relation with the given name, or nil.
func (c *Catalog) Relation(name string) *relation.Relation { return c.base[name] }

// BaseRelations lists the registered base relations (order unspecified).
func (c *Catalog) BaseRelations() []*relation.Relation {
	out := make([]*relation.Relation, 0, len(c.base))
	for _, r := range c.base {
		out = append(out, r)
	}
	return out
}

// Clone returns a shallow copy: the maps are fresh, the registered
// relations, views, and externals are shared. The engine layer registers
// new relations copy-on-write so in-flight evaluations keep a consistent
// catalog snapshot.
func (c *Catalog) Clone() *Catalog {
	out := NewCatalog()
	for k, v := range c.base {
		out.base[k] = v
	}
	for k, v := range c.views {
		out.views[k] = v
	}
	for k, v := range c.viewLinks {
		out.viewLinks[k] = v
	}
	for k, v := range c.abstract {
		out.abstract[k] = v
	}
	for k, v := range c.absLinks {
		out.absLinks[k] = v
	}
	for k, v := range c.externals {
		out.externals[k] = v
	}
	return out
}

// CloneWithBase returns a copy sharing views, abstract relations, and
// externals, with the base-relation map replaced by base (copied, so the
// caller's map stays private). The MVCC engine uses this to project one
// catalog template onto each committed snapshot's relations.
func (c *Catalog) CloneWithBase(base map[string]*relation.Relation) *Catalog {
	out := c.Clone()
	out.base = make(map[string]*relation.Relation, len(base))
	for k, v := range base {
		out.base[k] = v
	}
	return out
}

// DefineView registers an intensional relation (view/CTE): a strictly
// valid collection evaluated on demand and cached per evaluation.
func (c *Catalog) DefineView(col *alt.Collection) error {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return fmt.Errorf("view %s: %w", col.Head.Rel, err)
	}
	c.views[col.Head.Rel] = col
	c.viewLinks[col.Head.Rel] = link
	return nil
}

// DefineAbstract registers an abstract relation (Section 2.13.2): a
// definition that may be unsafe in isolation; its head attributes act as
// parameters supplied by equality predicates at each use site.
func (c *Catalog) DefineAbstract(col *alt.Collection) error {
	link, err := alt.ValidateAbstract(col)
	if err != nil {
		return fmt.Errorf("abstract relation %s: %w", col.Head.Rel, err)
	}
	c.abstract[col.Head.Rel] = col
	c.absLinks[col.Head.Rel] = link
	return nil
}

// AddExternal registers an external relation (built-in).
func (c *Catalog) AddExternal(e External) *Catalog {
	c.externals[e.Name()] = e
	return c
}

// WithStandardExternals registers the arithmetic and comparison built-ins
// used by the paper's Section 2.13 and Section 3.1 examples: "Minus",
// "Add", "Times", "Bigger", and the symbolic aliases "-", "+", "*", ">".
func (c *Catalog) WithStandardExternals() *Catalog {
	for _, e := range StandardExternals() {
		c.AddExternal(e)
	}
	return c
}

package eval

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

func mustEval(t *testing.T, c *alt.Collection, cat *Catalog, conv convention.Conventions) *relation.Relation {
	t.Helper()
	rel, err := Eval(c, cat, conv)
	if err != nil {
		t.Fatalf("eval %s: %v", c.Head.Rel, err)
	}
	return rel
}

func wantRel(t *testing.T, got *relation.Relation, want *relation.Relation, bag bool) {
	t.Helper()
	if bag {
		if !got.EqualBag(want) {
			t.Fatalf("bag mismatch:\ngot\n%s\nwant\n%s", got, want)
		}
		return
	}
	if !got.EqualSet(want) {
		t.Fatalf("set mismatch:\ngot\n%s\nwant\n%s", got, want)
	}
}

// --- Paper query (1): select-project-join -------------------------------

func TestQ1SelectProjectJoin(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(2, 20).Add(3, 30)).
		AddRelation(relation.New("S", "B", "C").Add(10, 0).Add(20, 5).Add(30, 0))
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				alt.Eq(alt.Ref("s", "C"), alt.CInt(0)),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "A").Add(1).Add(3)
	wantRel(t, got, want, false)
}

// --- Section 2.1 / Fig 2: normalized TRC semantics over nested exists ---

func TestNestedExistentialFilter(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(2, 99)).
		AddRelation(relation.New("S", "B", "C").Add(10, 0))
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B"))),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A").Add(1), false)
}

// --- Paper query (2) / Fig 3: nested comprehension = lateral join -------

func TestQ2LateralNesting(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("X", "A").Add(1).Add(5)).
		AddRelation(relation.New("Y", "A").Add(3).Add(7))
	inner := alt.Col("Z", []string{"B"},
		alt.Exists([]*alt.Binding{alt.Bind("y", "Y")},
			alt.AndF(
				alt.Eq(alt.Ref("Z", "B"), alt.Ref("y", "A")),
				alt.Lt(alt.Ref("x", "A"), alt.Ref("y", "A")),
			)))
	q := alt.Col("Q", []string{"A", "B"},
		alt.Exists([]*alt.Binding{alt.Bind("x", "X"), alt.BindSub("z", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("x", "A")),
				alt.Eq(alt.Ref("Q", "B"), alt.Ref("z", "B")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	// x=1 pairs with y∈{3,7}; x=5 pairs with y=7.
	want := relation.New("W", "A", "B").Add(1, 3).Add(1, 7).Add(5, 7)
	wantRel(t, got, want, false)
}

// --- Paper query (3) / Fig 4: FIO grouped aggregate ---------------------

func q3FIO() *alt.Collection {
	return alt.Col("Q", []string{"A", "sm"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "sm"), alt.Sum(alt.Ref("r", "B"))),
			)))
}

func TestQ3GroupedAggregateFIO(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5))
	got := mustEval(t, q3FIO(), cat, convention.SetLogic())
	want := relation.New("W", "A", "sm").Add(1, 30).Add(2, 5)
	wantRel(t, got, want, false)
}

func TestMultipleAggregatesShareScope(t *testing.T) {
	// Section 2.5: multiple aggregates evaluated in parallel in one scope.
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 6))
	q := alt.Col("Q", []string{"A", "sm", "cnt", "mn", "mx", "av"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "sm"), alt.Sum(alt.Ref("r", "B"))),
				alt.Eq(alt.Ref("Q", "cnt"), alt.Count(alt.Ref("r", "B"))),
				alt.Eq(alt.Ref("Q", "mn"), alt.Min(alt.Ref("r", "B"))),
				alt.Eq(alt.Ref("Q", "mx"), alt.Max(alt.Ref("r", "B"))),
				alt.Eq(alt.Ref("Q", "av"), alt.Avg(alt.Ref("r", "B"))),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "A", "sm", "cnt", "mn", "mx", "av").
		Add(1, 30, 2, 10, 20, 15.0).
		Add(2, 6, 1, 6, 6, 6.0)
	wantRel(t, got, want, false)
}

// --- Paper query (7) / Fig 5: FOI pattern -------------------------------

func q7FOI() *alt.Collection {
	inner := alt.Col("X", []string{"sm"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r2", "R")}, nil,
			alt.AndF(
				alt.Eq(alt.Ref("r2", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("X", "sm"), alt.Sum(alt.Ref("r2", "B"))),
			)))
	return alt.Col("Q", []string{"A", "sm"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.BindSub("x", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "sm"), alt.Ref("x", "sm")),
			)))
}

func TestQ7FOIEqualsFIO(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(1, 20).Add(2, 5))
	fio := mustEval(t, q3FIO(), cat, convention.SetLogic())
	foi := mustEval(t, q7FOI(), cat, convention.SetLogic())
	wantRel(t, foi, fio, false)
}

// --- Paper query (8) / Fig 6: multiple aggregates + HAVING --------------

func TestQ8HavingPattern(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "empl", "dept").
			Add("e1", "d1").Add("e2", "d1").Add("e3", "d2")).
		AddRelation(relation.New("S", "empl", "sal").
			Add("e1", 60).Add("e2", 70).Add("e3", 40))
	inner := alt.Col("X", []string{"dept", "av", "sm"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			[]*alt.AttrRef{alt.Ref("r", "dept")},
			alt.AndF(
				alt.Eq(alt.Ref("r", "empl"), alt.Ref("s", "empl")),
				alt.Eq(alt.Ref("X", "dept"), alt.Ref("r", "dept")),
				alt.Eq(alt.Ref("X", "av"), alt.Avg(alt.Ref("s", "sal"))),
				alt.Eq(alt.Ref("X", "sm"), alt.Sum(alt.Ref("s", "sal"))),
			)))
	q := alt.Col("Q", []string{"dept", "av"},
		alt.Exists([]*alt.Binding{alt.BindSub("x", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "dept"), alt.Ref("x", "dept")),
				alt.Eq(alt.Ref("Q", "av"), alt.Ref("x", "av")),
				alt.Gt(alt.Ref("x", "sm"), alt.CInt(100)),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	// d1: sum=130>100, avg=65; d2: sum=40 filtered out.
	want := relation.New("W", "dept", "av").Add("d1", 65.0)
	wantRel(t, got, want, false)
}

// --- Paper (13)/(14) / Fig 9: Boolean sentences with aggregates ---------

func TestBooleanSentencesWithAggregates(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "id", "q").Add(1, 2).Add(2, 5)).
		AddRelation(relation.New("S", "id", "d").Add(1, "a").Add(1, "b").Add(2, "c"))
	// (13): ∃r∈R[∃s∈S, γ∅ [r.id=s.id ∧ r.q ≤ count(s.d)]]
	s13 := &alt.Sentence{Body: alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
		alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")}, nil,
			alt.AndF(
				alt.Eq(alt.Ref("r", "id"), alt.Ref("s", "id")),
				alt.Le(alt.Ref("r", "q"), alt.Count(alt.Ref("s", "d"))),
			)))}
	got, err := EvalSentence(s13, cat, convention.SetLogic())
	if err != nil {
		t.Fatalf("(13): %v", err)
	}
	if !got {
		t.Error("(13) should hold: r=1 has q=2 ≤ count=2")
	}
	// (14): ¬∃r∈R[∃s∈S, γ∅ [r.id=s.id ∧ r.q > count(s.d)]]
	s14 := &alt.Sentence{Body: alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
		alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")}, nil,
			alt.AndF(
				alt.Eq(alt.Ref("r", "id"), alt.Ref("s", "id")),
				alt.Gt(alt.Ref("r", "q"), alt.Count(alt.Ref("s", "d"))),
			))))}
	got14, err := EvalSentence(s14, cat, convention.SetLogic())
	if err != nil {
		t.Fatalf("(14): %v", err)
	}
	if got14 {
		t.Error("(14) should fail: r=2 has q=5 > count=1")
	}
}

// --- Paper query (16) / Fig 10: recursion --------------------------------

func TestQ16Recursion(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("P", "s", "t").Add(1, 2).Add(2, 3).Add(3, 4).Add(10, 11))
	q := alt.Col("A", []string{"s", "t"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("p", "P")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("p", "t")),
				)),
			alt.Exists([]*alt.Binding{alt.Bind("p", "P"), alt.Bind("a2", "A")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("p", "t"), alt.Ref("a2", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("a2", "t")),
				)),
		))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "s", "t").
		Add(1, 2).Add(2, 3).Add(3, 4).Add(1, 3).Add(2, 4).Add(1, 4).Add(10, 11)
	wantRel(t, got, want, false)
}

func TestRecursionOnCycle(t *testing.T) {
	// LFP must converge on cyclic graphs.
	cat := NewCatalog().
		AddRelation(relation.New("P", "s", "t").Add(1, 2).Add(2, 1))
	q := alt.Col("A", []string{"s", "t"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("p", "P")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("p", "t")))),
			alt.Exists([]*alt.Binding{alt.Bind("p", "P"), alt.Bind("a2", "A")},
				alt.AndF(
					alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
					alt.Eq(alt.Ref("p", "t"), alt.Ref("a2", "s")),
					alt.Eq(alt.Ref("A", "t"), alt.Ref("a2", "t")))),
		))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "s", "t").
		Add(1, 2).Add(2, 1).Add(1, 1).Add(2, 2)
	wantRel(t, got, want, false)
}

// --- Paper (17) / Fig 11: NOT IN with NULLs ------------------------------

func q17NotIn() *alt.Collection {
	return alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
					alt.OrF(
						alt.Eq(alt.Ref("s", "A"), alt.Ref("r", "A")),
						alt.Null(alt.Ref("s", "A")),
						alt.Null(alt.Ref("r", "A")),
					))),
			)))
}

func TestQ17NotInNullBehaviour(t *testing.T) {
	// Without NULLs: plain anti-join.
	cat := NewCatalog().
		AddRelation(relation.New("R", "A").Add(1).Add(2).Add(3)).
		AddRelation(relation.New("S", "A").Add(2))
	got := mustEval(t, q17NotIn(), cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A").Add(1).Add(3), false)

	// With a NULL in S: SQL's NOT IN returns the empty set.
	catNull := NewCatalog().
		AddRelation(relation.New("R", "A").Add(1).Add(2).Add(3)).
		AddRelation(relation.New("S", "A").Add(2).Add(nil))
	gotNull := mustEval(t, q17NotIn(), catNull, convention.SetLogic())
	if gotNull.Card() != 0 {
		t.Fatalf("NOT IN over S containing NULL must be empty, got\n%s", gotNull)
	}
}

// --- Paper (18) / Fig 12: outer join with join annotation ----------------

func TestQ18LeftOuterJoinAnnotation(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "m", "y", "h").
			Add("r1", 1, 11).Add("r2", 2, 11).Add("r3", 3, 99)).
		AddRelation(relation.New("S", "y", "n", "q").
			Add(1, "n1", 0).Add(3, "n3", 0))
	q := alt.Col("Q", []string{"m", "n"},
		alt.ExistsJ([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.LeftJ(alt.JV("r"), alt.Inner(alt.JC(value.Int(11), "c"), alt.JV("s"))),
			alt.AndF(
				alt.Eq(alt.Ref("Q", "m"), alt.Ref("r", "m")),
				alt.Eq(alt.Ref("Q", "n"), alt.Ref("s", "n")),
				alt.Eq(alt.Ref("r", "y"), alt.Ref("s", "y")),
				alt.Eq(alt.Ref("r", "h"), alt.Ref("c", "val")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	// r1 (h=11, y=1) matches n1; r2 (h=11, y=2) no match → NULL;
	// r3 (h=99) fails the ON condition r.h=11 → NULL despite y=3 ∈ S.
	want := relation.New("W", "m", "n").
		Add("r1", "n1").Add("r2", nil).Add("r3", nil)
	wantRel(t, got, want, false)
}

func TestFullOuterJoin(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "a").Add(1).Add(2)).
		AddRelation(relation.New("S", "b").Add(2).Add(3))
	q := alt.Col("Q", []string{"a", "b"},
		alt.ExistsJ([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.FullJ(alt.JV("r"), alt.JV("s")),
			alt.AndF(
				alt.Eq(alt.Ref("Q", "a"), alt.Ref("r", "a")),
				alt.Eq(alt.Ref("Q", "b"), alt.Ref("s", "b")),
				alt.Eq(alt.Ref("r", "a"), alt.Ref("s", "b")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	want := relation.New("W", "a", "b").
		Add(1, nil).Add(2, 2).Add(nil, 3)
	wantRel(t, got, want, false)
}

// --- Paper (19)–(21) / Fig 15: external relations ------------------------

func TestExternalRelations(t *testing.T) {
	cat := NewCatalog().WithStandardExternals().
		AddRelation(relation.New("R", "A", "B").Add("x", 10).Add("y", 3)).
		AddRelation(relation.New("S", "B").Add(4)).
		AddRelation(relation.New("T", "B").Add(5))
	// (20): Q(A) with Minus reified: f.left=r.B, f.right=s.B, f.out > t.B.
	q20 := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{
			alt.Bind("r", "R"), alt.Bind("s", "S"), alt.Bind("t", "T"), alt.Bind("f", "Minus"),
		},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("f", "left"), alt.Ref("r", "B")),
				alt.Eq(alt.Ref("f", "right"), alt.Ref("s", "B")),
				alt.Gt(alt.Ref("f", "out"), alt.Ref("t", "B")),
			)))
	got := mustEval(t, q20, cat, convention.SetLogic())
	// x: 10-4=6 > 5 ✓; y: 3-4=-1 not > 5.
	wantRel(t, got, relation.New("W", "A").Add("x"), false)

	// (21): equijoin between Minus and Bigger.
	q21 := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{
			alt.Bind("r", "R"), alt.Bind("s", "S"), alt.Bind("t", "T"),
			alt.Bind("f", "Minus"), alt.Bind("g", "Bigger"),
		},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("f", "left"), alt.Ref("r", "B")),
				alt.Eq(alt.Ref("f", "right"), alt.Ref("s", "B")),
				alt.Eq(alt.Ref("f", "out"), alt.Ref("g", "left")),
				alt.Eq(alt.Ref("g", "right"), alt.Ref("t", "B")),
			)))
	got21 := mustEval(t, q21, cat, convention.SetLogic())
	wantRel(t, got21, got, false)

	// (19): direct arithmetic r.B - s.B > t.B.
	q19 := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S"), alt.Bind("t", "T")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Gt(alt.Minus(alt.Ref("r", "B"), alt.Ref("s", "B")), alt.Ref("t", "B")),
			)))
	got19 := mustEval(t, q19, cat, convention.SetLogic())
	wantRel(t, got19, got, false)
}

func TestExternalAccessPatternUnsatisfied(t *testing.T) {
	cat := NewCatalog().WithStandardExternals().
		AddRelation(relation.New("T", "B").Add(5))
	// Bigger with only one side bound can never enumerate.
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("g", "Bigger"), alt.Bind("t", "T")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("g", "left")),
				alt.Eq(alt.Ref("g", "right"), alt.Ref("t", "B")),
			)))
	if _, err := Eval(q, cat, convention.SetLogic()); err == nil ||
		!strings.Contains(err.Error(), "access pattern") {
		t.Fatalf("want access-pattern error, got %v", err)
	}
}

// --- Section 3.2 / Fig 21: the COUNT bug ---------------------------------

func countBugV1() *alt.Collection {
	return alt.Col("Q", []string{"id"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "id"), alt.Ref("r", "id")),
				alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")}, nil,
					alt.AndF(
						alt.Eq(alt.Ref("r", "id"), alt.Ref("s", "id")),
						alt.Eq(alt.Ref("r", "q"), alt.Count(alt.Ref("s", "d"))),
					)),
			)))
}

func countBugV2() *alt.Collection {
	inner := alt.Col("X", []string{"id", "ct"},
		alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")},
			[]*alt.AttrRef{alt.Ref("s", "id")},
			alt.AndF(
				alt.Eq(alt.Ref("X", "id"), alt.Ref("s", "id")),
				alt.Eq(alt.Ref("X", "ct"), alt.Count(alt.Ref("s", "d"))),
			)))
	return alt.Col("Q", []string{"id"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.BindSub("x", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "id"), alt.Ref("r", "id")),
				alt.Eq(alt.Ref("r", "id"), alt.Ref("x", "id")),
				alt.Eq(alt.Ref("r", "q"), alt.Ref("x", "ct")),
			)))
}

func countBugV3() *alt.Collection {
	inner := alt.Col("X", []string{"id", "ct"},
		alt.ExistsGJ([]*alt.Binding{alt.Bind("r2", "R"), alt.Bind("s", "S")},
			[]*alt.AttrRef{alt.Ref("r2", "id")},
			alt.LeftJ(alt.JV("r2"), alt.JV("s")),
			alt.AndF(
				alt.Eq(alt.Ref("X", "id"), alt.Ref("r2", "id")),
				alt.Eq(alt.Ref("X", "ct"), alt.Count(alt.Ref("s", "d"))),
				alt.Eq(alt.Ref("r2", "id"), alt.Ref("s", "id")),
			)))
	return alt.Col("Q", []string{"id"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.BindSub("x", inner)},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "id"), alt.Ref("r", "id")),
				alt.Eq(alt.Ref("r", "id"), alt.Ref("x", "id")),
				alt.Eq(alt.Ref("r", "q"), alt.Ref("x", "ct")),
			)))
}

func TestCountBugTrio(t *testing.T) {
	// The paper's instance: R(9,0), S empty.
	cat := NewCatalog().
		AddRelation(relation.New("R", "id", "q").Add(9, 0)).
		AddRelation(relation.New("S", "id", "d"))
	v1 := mustEval(t, countBugV1(), cat, convention.SetLogic())
	v2 := mustEval(t, countBugV2(), cat, convention.SetLogic())
	v3 := mustEval(t, countBugV3(), cat, convention.SetLogic())
	if v1.Card() != 1 || !v1.Contains(relation.Tuple{value.Int(9)}) {
		t.Errorf("version 1 must return {9}, got\n%s", v1)
	}
	if v2.Card() != 0 {
		t.Errorf("version 2 must return ∅ (the COUNT bug), got\n%s", v2)
	}
	if !v3.EqualSet(v1) {
		t.Errorf("version 3 must agree with version 1, got\n%s", v3)
	}
}

func TestCountBugNonEmptyAgreement(t *testing.T) {
	// Where every R.id appears in S, all three versions agree.
	cat := NewCatalog().
		AddRelation(relation.New("R", "id", "q").Add(1, 2).Add(2, 1)).
		AddRelation(relation.New("S", "id", "d").Add(1, "a").Add(1, "b").Add(2, "c"))
	v1 := mustEval(t, countBugV1(), cat, convention.SetLogic())
	v2 := mustEval(t, countBugV2(), cat, convention.SetLogic())
	v3 := mustEval(t, countBugV3(), cat, convention.SetLogic())
	want := relation.New("W", "id").Add(1).Add(2)
	wantRel(t, v1, want, false)
	wantRel(t, v2, want, false)
	wantRel(t, v3, want, false)
}

// --- Section 2.6 / (15): conventions -------------------------------------

func TestConventionSumEmpty(t *testing.T) {
	// Instance R={(1,2)}, S=∅ — Soufflé derives Q(1,0); SQL gives (1,NULL).
	build := func() *alt.Collection {
		inner := alt.Col("X", []string{"sm"},
			alt.ExistsG([]*alt.Binding{alt.Bind("s", "S")}, nil,
				alt.AndF(
					alt.Lt(alt.Ref("s", "a"), alt.Ref("r", "ak")),
					alt.Eq(alt.Ref("X", "sm"), alt.Sum(alt.Ref("s", "b"))),
				)))
		return alt.Col("Q", []string{"ak", "sm"},
			alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.BindSub("x", inner)},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "ak"), alt.Ref("r", "ak")),
					alt.Eq(alt.Ref("Q", "sm"), alt.Ref("x", "sm")),
				)))
	}
	cat := NewCatalog().
		AddRelation(relation.New("R", "ak", "b").Add(1, 2)).
		AddRelation(relation.New("S", "a", "b"))
	souffle := mustEval(t, build(), cat, convention.Souffle())
	wantRel(t, souffle, relation.New("W", "ak", "sm").Add(1, 0), false)
	sql := mustEval(t, build(), cat, convention.SQLDistinct())
	wantRel(t, sql, relation.New("W", "ak", "sm").Add(1, nil), false)
}

// --- Section 2.7: set vs bag ---------------------------------------------

func TestSetVsBagUnnesting(t *testing.T) {
	// Nested: {Q(A) | ∃r∈R[∃s∈S[Q.A=r.A ∧ r.B=s.B]]}
	nested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				))))
	unnested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
			)))
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10)).
		AddRelation(relation.New("S", "B").Add(10).Add(10)) // two tuples sharing B
	// Under set semantics they agree.
	n := mustEval(t, nested, cat, convention.SetLogic())
	u := mustEval(t, unnested, cat, convention.SetLogic())
	wantRel(t, n, u, false)
	// Under bag semantics the nested form is a semijoin (multiplicity 1),
	// the unnested form multiplies (multiplicity 2).
	nb := mustEval(t, nested, cat, convention.SQL())
	ub := mustEval(t, unnested, cat, convention.SQL())
	if nb.Mult(relation.Tuple{value.Int(1)}) != 1 {
		t.Errorf("nested bag multiplicity = %d, want 1\n%s", nb.Mult(relation.Tuple{value.Int(1)}), nb)
	}
	if ub.Mult(relation.Tuple{value.Int(1)}) != 2 {
		t.Errorf("unnested bag multiplicity = %d, want 2\n%s", ub.Mult(relation.Tuple{value.Int(1)}), ub)
	}
}

func TestDeduplicationViaGrouping(t *testing.T) {
	// Section 2.7: DISTINCT = γ over all projected attributes.
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 2).Add(1, 2).Add(3, 4))
	q := alt.Col("Q", []string{"A", "B"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A"), alt.Ref("r", "B")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "B"), alt.Ref("r", "B")),
			)))
	got := mustEval(t, q, cat, convention.SQL()) // bag conventions
	want := relation.New("W", "A", "B").Add(1, 2).Add(3, 4)
	wantRel(t, got, want, true) // multiplicities must be exactly 1
}

// --- Views and abstract relations (Section 2.13) -------------------------

func TestViews(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 10).Add(2, 20))
	v := alt.Col("V", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.AndF(
				alt.Eq(alt.Ref("V", "A"), alt.Ref("r", "A")),
				alt.Gt(alt.Ref("r", "B"), alt.CInt(15)),
			)))
	if err := cat.DefineView(v); err != nil {
		t.Fatalf("DefineView: %v", err)
	}
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("v", "V")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("v", "A"))))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A").Add(2), false)
}

func TestAbstractRelation(t *testing.T) {
	// A small abstract relation: SameParity(left,right) with no safe
	// extension of its own, used as a module in a safe query.
	cat := NewCatalog().
		AddRelation(relation.New("N", "v").Add(1).Add(2).Add(3).Add(4))
	// SameParity(left,right) holds when ∃k∈N: |left-right| = 2k is too
	// fancy without modulo; use equality of a marker relation instead:
	// Subset-style: Sm(left,right) := ¬∃m∈M [m.v = left ∧ ¬∃m2∈M[m2.v = right]]
	cat.AddRelation(relation.New("M", "v").Add(1).Add(3))
	abs := alt.Col("Sm", []string{"left", "right"},
		alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("m", "M")},
			alt.AndF(
				alt.Eq(alt.Ref("m", "v"), alt.Ref("Sm", "left")),
				alt.NotF(alt.Exists([]*alt.Binding{alt.Bind("m2", "M")},
					alt.Eq(alt.Ref("m2", "v"), alt.Ref("Sm", "right")))),
			))))
	if err := cat.DefineAbstract(abs); err != nil {
		t.Fatalf("DefineAbstract: %v", err)
	}
	// Q(a,b) = pairs of N where Sm(a,b) holds.
	q := alt.Col("Q", []string{"a", "b"},
		alt.Exists([]*alt.Binding{alt.Bind("x", "N"), alt.Bind("y", "N"), alt.Bind("s", "Sm")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "a"), alt.Ref("x", "v")),
				alt.Eq(alt.Ref("Q", "b"), alt.Ref("y", "v")),
				alt.Eq(alt.Ref("s", "left"), alt.Ref("x", "v")),
				alt.Eq(alt.Ref("s", "right"), alt.Ref("y", "v")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	// Sm(a,b) holds unless a ∈ M and b ∉ M: a∈{1,3} with b∈{2,4} excluded.
	if got.Card() != 16-4 {
		t.Fatalf("abstract relation semantics wrong: %d rows\n%s", got.Card(), got)
	}
}

// --- Scalar correctness details ------------------------------------------

func TestCountDistinct(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 5).Add(1, 5).Add(1, 7))
	q := alt.Col("Q", []string{"A", "cd"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "cd"), alt.CountDistinct(alt.Ref("r", "B"))),
			)))
	got := mustEval(t, q, cat, convention.SQL())
	wantRel(t, got, relation.New("W", "A", "cd").Add(1, 2), false)
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B").Add(1, 5).Add(1, nil).Add(1, 7))
	q := alt.Col("Q", []string{"A", "sm", "ct"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "sm"), alt.Sum(alt.Ref("r", "B"))),
				alt.Eq(alt.Ref("Q", "ct"), alt.Count(alt.Ref("r", "B"))),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A", "sm", "ct").Add(1, 12, 2), false)
}

func TestAggregateExpression(t *testing.T) {
	// sum over an arithmetic expression, as in matrix multiplication (26).
	cat := NewCatalog().
		AddRelation(relation.New("R", "A", "B", "C").Add(1, 2, 3).Add(1, 4, 5))
	q := alt.Col("Q", []string{"A", "sm"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "sm"), alt.Sum(alt.Times(alt.Ref("r", "B"), alt.Ref("r", "C")))),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A", "sm").Add(1, 26), false)
}

func TestDisjunctionAsUnion(t *testing.T) {
	cat := NewCatalog().
		AddRelation(relation.New("R", "A").Add(1)).
		AddRelation(relation.New("S", "A").Add(2))
	q := alt.Col("Q", []string{"A"},
		alt.OrF(
			alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A"))),
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("s", "A"))),
		))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A").Add(1).Add(2), false)
}

func TestConflictingAssignmentsActAsConstraint(t *testing.T) {
	// Q.A = r.A ∧ Q.A = s.A behaves as an implicit r.A = s.A constraint.
	cat := NewCatalog().
		AddRelation(relation.New("R", "A").Add(1).Add(2)).
		AddRelation(relation.New("S", "A").Add(2).Add(3))
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("s", "A")),
			)))
	got := mustEval(t, q, cat, convention.SetLogic())
	wantRel(t, got, relation.New("W", "A").Add(2), false)
}

func TestUnknownRelationError(t *testing.T) {
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "Nope")},
			alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A"))))
	if _, err := Eval(q, NewCatalog(), convention.SetLogic()); err == nil ||
		!strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("want unknown-relation error, got %v", err)
	}
}

package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/value"
)

// buildRS constructs R(A,B) and S(B) from generator-supplied bytes,
// keeping domains tiny so joins and duplicates happen.
func buildRS(rs, ss []uint8) (*relation.Relation, *relation.Relation) {
	r := relation.New("R", "A", "B")
	for i := 0; i+1 < len(rs) && i < 16; i += 2 {
		r.Add(int(rs[i]%4), int(rs[i+1]%4))
	}
	s := relation.New("S", "B")
	for i := 0; i < len(ss) && i < 8; i++ {
		s.Add(int(ss[i] % 4))
	}
	return r, s
}

// TestPropertySetUnnesting checks the Section 2.7 law: under set
// semantics, nesting an existential is always removable.
func TestPropertySetUnnesting(t *testing.T) {
	nested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				))))
	unnested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
			)))
	f := func(rs, ss []uint8) bool {
		r, s := buildRS(rs, ss)
		cat := NewCatalog().AddRelation(r).AddRelation(s)
		a, err := Eval(nested, cat, convention.SetLogic())
		if err != nil {
			return false
		}
		b, err := Eval(unnested, cat, convention.SetLogic())
		if err != nil {
			return false
		}
		return a.EqualSet(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBagSemijoinBound checks the bag-semantics half of the law:
// the nested form's multiplicities never exceed the unnested form's, and
// the distinct tuples agree.
func TestPropertyBagSemijoinBound(t *testing.T) {
	nested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R")},
			alt.Exists([]*alt.Binding{alt.Bind("s", "S")},
				alt.AndF(
					alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
					alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
				))))
	unnested := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
			)))
	f := func(rs, ss []uint8) bool {
		r, s := buildRS(rs, ss)
		cat := NewCatalog().AddRelation(r).AddRelation(s)
		a, err := Eval(nested, cat, convention.SQL())
		if err != nil {
			return false
		}
		b, err := Eval(unnested, cat, convention.SQL())
		if err != nil {
			return false
		}
		if !a.EqualSet(b) {
			return false
		}
		ok := true
		a.Each(func(tp relation.Tuple, m int) {
			if b.Mult(tp) < m {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLFPMonotone checks that adding parent edges never removes
// ancestor facts (monotonicity of the least fixed point).
func TestPropertyLFPMonotone(t *testing.T) {
	anc := func() *alt.Collection {
		return alt.Col("A", []string{"s", "t"},
			alt.OrF(
				alt.Exists([]*alt.Binding{alt.Bind("p", "P")},
					alt.AndF(
						alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
						alt.Eq(alt.Ref("A", "t"), alt.Ref("p", "t")))),
				alt.Exists([]*alt.Binding{alt.Bind("p", "P"), alt.Bind("a2", "A")},
					alt.AndF(
						alt.Eq(alt.Ref("A", "s"), alt.Ref("p", "s")),
						alt.Eq(alt.Ref("p", "t"), alt.Ref("a2", "s")),
						alt.Eq(alt.Ref("A", "t"), alt.Ref("a2", "t")))),
			))
	}
	f := func(edges []uint8, extraS, extraT uint8) bool {
		p := relation.New("P", "s", "t")
		for i := 0; i+1 < len(edges) && i < 20; i += 2 {
			p.Add(int(edges[i]%6), int(edges[i+1]%6))
		}
		cat := NewCatalog().AddRelation(p)
		small, err := Eval(anc(), cat, convention.SetLogic())
		if err != nil {
			return false
		}
		bigger := p.Clone()
		extra := relation.Tuple{value.Int(int64(extraS % 6)), value.Int(int64(extraT % 6))}
		if !bigger.Contains(extra) {
			bigger.Insert(extra)
		}
		cat2 := NewCatalog().AddRelation(bigger)
		big, err := Eval(anc(), cat2, convention.SetLogic())
		if err != nil {
			return false
		}
		ok := true
		small.Each(func(tp relation.Tuple, _ int) {
			if !big.Contains(tp) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDedupGroupingIdempotent: γ over all head attributes (the
// DISTINCT encoding) yields multiplicity-1 relations, and applying it
// twice changes nothing.
func TestPropertyDedupGroupingIdempotent(t *testing.T) {
	dedup := alt.Col("Q", []string{"A", "B"},
		alt.ExistsG([]*alt.Binding{alt.Bind("r", "R")},
			[]*alt.AttrRef{alt.Ref("r", "A"), alt.Ref("r", "B")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("Q", "B"), alt.Ref("r", "B")),
			)))
	f := func(rs []uint8) bool {
		r := relation.New("R", "A", "B")
		for i := 0; i+1 < len(rs) && i < 20; i += 2 {
			r.Add(int(rs[i]%3), int(rs[i+1]%3))
		}
		cat := NewCatalog().AddRelation(r)
		once, err := Eval(dedup, cat, convention.SQL())
		if err != nil {
			return false
		}
		for _, tp := range once.Tuples() {
			if once.Mult(tp) != 1 {
				return false
			}
		}
		// Feed the result back in as R; dedup again.
		cat2 := NewCatalog().AddRelation(once.Rename("R", []string{"A", "B"}))
		twice, err := Eval(dedup, cat2, convention.SQL())
		if err != nil {
			return false
		}
		return twice.EqualBag(once.Rename("Q", nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConventionMonotonicity: switching set→bag never loses
// distinct tuples (for the negation-free fragment used here).
func TestPropertyConventionMonotonicity(t *testing.T) {
	q := alt.Col("Q", []string{"A"},
		alt.Exists([]*alt.Binding{alt.Bind("r", "R"), alt.Bind("s", "S")},
			alt.AndF(
				alt.Eq(alt.Ref("Q", "A"), alt.Ref("r", "A")),
				alt.Eq(alt.Ref("r", "B"), alt.Ref("s", "B")),
			)))
	f := func(rs, ss []uint8) bool {
		r, s := buildRS(rs, ss)
		cat := NewCatalog().AddRelation(r).AddRelation(s)
		set, err := Eval(q, cat, convention.SetLogic())
		if err != nil {
			return false
		}
		bag, err := Eval(q, cat, convention.SQL())
		if err != nil {
			return false
		}
		return set.EqualSet(bag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestEnumLeftHashedDifferential compares the hashed multi-leaf LEFT
// join path against the per-left re-enumeration baseline over randomized
// instances: same queries, same data, byte-identical results. The right
// subtree is an inner join of two leaves with the ON equality separable
// across the node, so the hashed path actually engages.
func TestEnumLeftHashedDifferential(t *testing.T) {
	queries := []string{
		// ON equality from the preserved side into a joined pair.
		"{Q(a, c) | ∃r ∈ R, s ∈ S, u ∈ T, left(r, inner(s, u)) " +
			"[Q.a = r.A ∧ Q.c = u.C ∧ r.B = s.B ∧ s.C = u.C]}",
		// Two separable ON equalities.
		"{Q(a, b) | ∃r ∈ R, s ∈ S, u ∈ T, left(r, inner(s, u)) " +
			"[Q.a = r.A ∧ Q.b = s.B ∧ r.B = s.B ∧ r.A = u.A ∧ s.C = u.C]}",
		// Arithmetic key on the left side.
		"{Q(a, c) | ∃r ∈ R, s ∈ S, u ∈ T, left(r, inner(s, u)) " +
			"[Q.a = r.A ∧ Q.c = s.C ∧ r.B + 1 = s.B ∧ s.C = u.C]}",
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := workload.RandomBinary(rng, "R", "A", "B", 30, 6, 5)
		s := workload.RandomBinary(rng, "S", "B", "C", 30, 5, 4)
		u := workload.RandomBinary(rng, "T", "A", "C", 30, 6, 4)
		// NULL keys exercise the bucket-vs-recheck boundary.
		s.Insert(relation.Tuple{relation.Lift(nil), relation.Lift(2)})
		for qi, src := range queries {
			col := arc.MustParseCollection(src)
			for _, conv := range []convention.Conventions{convention.SetLogic(), convention.SQL()} {
				run := func(disable bool) (*relation.Relation, error) {
					DisableLeftHash = disable
					defer func() { DisableLeftHash = false }()
					cat := NewCatalog().AddRelation(r.Clone()).AddRelation(s.Clone()).AddRelation(u.Clone())
					return Eval(col, cat, conv)
				}
				baseline, err1 := run(true)
				hashed, err2 := run(false)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d query %d: error divergence: %v vs %v", seed, qi, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if baseline.String() != hashed.String() {
					t.Fatalf("seed %d query %d (%v): results diverge\nbaseline:\n%s\nhashed:\n%s",
						seed, qi, conv.Semantics, baseline, hashed)
				}
			}
		}
	}
}

// TestEnumLeftHashedEngages pins that the gate actually takes the hashed
// path for a plain multi-leaf right subtree (guarding against a silent
// gate regression that would turn the differential test vacuous): with
// a large left side, the hashed path touches each right pair once.
func TestEnumLeftHashedEngages(t *testing.T) {
	r := relation.New("R", "A", "B")
	s := relation.New("S", "B", "C")
	u := relation.New("T", "A", "C")
	for i := 0; i < 40; i++ {
		r.Add(i, i%7)
		s.Add(i%7, i%5)
		u.Add(i%9, i%5)
	}
	col := arc.MustParseCollection(
		"{Q(a, c) | ∃r ∈ R, s ∈ S, u ∈ T, left(r, inner(s, u)) " +
			"[Q.a = r.A ∧ Q.c = u.C ∧ r.B = s.B ∧ s.C = u.C]}")
	cat := NewCatalog().AddRelation(r).AddRelation(s).AddRelation(u)
	out, err := Eval(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if out.Distinct() == 0 {
		t.Fatal("expected joined rows")
	}
	// Sanity against a directly computed expectation for one probe value.
	found := false
	out.Each(func(tup relation.Tuple, _ int) {
		if fmt.Sprint(tup[0]) == "0" {
			found = true
		}
	})
	if !found {
		t.Fatal("row for A=0 missing")
	}
}

package eval

import (
	"fmt"
	"strings"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/value"
)

// This file is the tuple-level compilation of quantifier scopes: the ARC
// analogue of internal/plan's SQL lowering. A scope whose join tree is a
// flat inner join over plain relation leaves (base relations, views,
// recursion overrides, constant leaves) compiles into an indexed
// nested-loop pipeline over relation tuples — probing the lazy hash
// indexes with the scope's equality predicates, filtering as early as the
// referenced leaves are bound, and streaming grouped scopes through
// exec.GroupAggregate — instead of materializing per-row environment
// maps. Scopes outside the fragment (outer-join annotations, externals,
// abstract relations, nested collection sources, producing subformulas)
// keep the environment enumeration path; results are identical, which
// the qgen differential suite verifies.

// planTerm is one compiled scalar term over the scope's tuple layout.
type planTerm struct {
	// eval computes the term given the scope tuple (nil-safe for outer
	// terms) and the outer environment.
	eval func(ev *evaluator, t relation.Tuple, e *env) (value.Value, error)
	// pos is the greatest step index whose columns the term reads, or -1
	// when it reads none (constants and outer references).
	pos int
	str string
}

// planProbe feeds one leaf attribute from an earlier-bound term.
type planProbe struct {
	col int // attribute index within the leaf relation
	src planTerm
	str string
}

// planStep enumerates one leaf of the scope's join tree.
type planStep struct {
	b      *alt.Binding
	isCon  bool        // constant leaf (join-annotation constant)
	conVal value.Value // value of a constant leaf
	attrs  []string
	start  int // first tuple column of this leaf
	probes []planProbe
}

// planFilter is one compiled WHERE predicate. It runs twice: as a
// pruning hint as soon as its step is bound (where evaluation errors are
// ignored and rows kept — partial tuples must not raise errors the
// enumeration path would never see), and authoritatively on complete
// tuples, in original predicate order with short-circuiting, exactly
// like satisfyingEnvs.
type planFilter struct {
	after int // earliest step index after which the pruning pass can run
	eval  func(ev *evaluator, t relation.Tuple, e *env) (value.TV, error)
	str   string
}

// planAgg is one aggregate column of a compiled grouped scope.
type planAgg struct {
	agg     *alt.Agg
	fn      exec.AggFunc
	arg     planTerm
	numeric bool // sum/avg: non-null inputs must be numeric
}

// planProducer assigns one head attribute from a compiled term (either a
// scope-tuple term, or a post-group term for grouped scopes).
type planProducer struct {
	attr string
	term planTerm
}

// planPostPred is an aggregate comparison predicate evaluated per group.
type planPostPred struct {
	eval func(ev *evaluator, group relation.Tuple, e *env) (value.TV, error)
	str  string
}

// scopePlan is the compiled form of one quantifier scope.
type scopePlan struct {
	si      *scopeInfo
	steps   []planStep
	ncols   int
	filters []planFilter
	// grouped scopes:
	grouped    bool
	keys       []planTerm
	aggs       []planAgg
	aggFilters []planPostPred
	// producers run over the scope tuple (ungrouped) or the post-group
	// tuple [keys..., aggs...] (grouped).
	producers []planProducer
}

// DisableScopePlans forces every scope onto the environment enumeration
// path — the baseline side of the differential tests comparing the two.
var DisableScopePlans = false

// scopePlanFor compiles (once, cached) the scope's tuple plan; nil means
// the scope stays on the enumeration path.
func (ev *evaluator) scopePlanFor(si *scopeInfo) *scopePlan {
	if DisableScopePlans {
		return nil
	}
	if !si.planTried {
		si.planTried = true
		si.plan, si.planReason = ev.compileScope(si)
	}
	return si.plan
}

// scopeCompiler carries compile-time state for one scope.
type scopeCompiler struct {
	ev     *evaluator
	si     *scopeInfo
	link   *alt.Link
	colOf  map[string]map[string]int // var → attr → tuple column
	stepOf map[string]int            // var → step index
}

// compileScope lowers a scope or reports why it cannot (the reason shows
// up in EXPLAIN output).
func (ev *evaluator) compileScope(si *scopeInfo) (*scopePlan, string) {
	if si.tree.isLeaf() || si.tree.kind != alt.JoinInner || len(si.tree.kids) == 0 {
		return nil, "join annotation with outer joins"
	}
	if len(si.filters) > 0 {
		return nil, "boolean subformulas need environments"
	}
	c := &scopeCompiler{
		ev:     ev,
		si:     si,
		link:   ev.curLink(),
		colOf:  map[string]map[string]int{},
		stepOf: map[string]int{},
	}
	sp := &scopePlan{si: si}
	for _, kid := range si.tree.kids {
		if !kid.isLeaf() {
			return nil, "nested join annotation"
		}
		b := kid.leaf
		step := planStep{b: b, start: sp.ncols}
		if v, isConst := c.link.ConstOfBinding[b]; isConst {
			step.isCon = true
			step.conVal = v
			step.attrs = []string{"val"}
		} else {
			if b.Sub != nil {
				return nil, "nested collection source"
			}
			if _, ok := ev.overrides[b.Rel]; !ok {
				if ev.cat.Relation(b.Rel) == nil {
					if _, isView := ev.cat.views[b.Rel]; !isView {
						return nil, fmt.Sprintf("source %s needs access patterns", b.Rel)
					}
				}
			}
			attrs, err := ev.sourceAttrs(b)
			if err != nil {
				return nil, err.Error()
			}
			step.attrs = attrs
		}
		cols := make(map[string]int, len(step.attrs))
		for i, a := range step.attrs {
			cols[a] = sp.ncols + i
		}
		c.colOf[b.Var] = cols
		c.stepOf[b.Var] = len(sp.steps)
		sp.ncols += len(step.attrs)
		sp.steps = append(sp.steps, step)
	}

	// WHERE predicates become filters placed at the earliest step where
	// their leaf references are bound; predicates reading no leaf at all
	// run on complete tuples only, matching enumeration error behaviour.
	for _, f := range si.where {
		pf, ok := c.compileFilter(f)
		if !ok {
			return nil, fmt.Sprintf("predicate %s outside the term fragment", f)
		}
		sp.filters = append(sp.filters, pf)
	}

	// Equality predicates feed index probes, exactly like probeInputs:
	// the other side must be evaluable before the probed leaf binds.
	for i := range sp.steps {
		step := &sp.steps[i]
		if step.isCon {
			continue
		}
		for _, p := range si.eqPreds {
			if si.fullOn[p] {
				continue
			}
			for _, side := range [2][2]alt.Term{{p.Left, p.Right}, {p.Right, p.Left}} {
				ref, okRef := side[0].(*alt.AttrRef)
				if !okRef || ref.Var != step.b.Var {
					continue
				}
				col, okCol := c.colOf[step.b.Var][ref.Attr]
				if !okCol {
					continue
				}
				src, ok := c.compileTerm(side[1])
				if !ok || src.pos >= i {
					continue
				}
				step.probes = append(step.probes, planProbe{
					col: col - step.start,
					src: src,
					str: fmt.Sprintf("%s = %s", ref, side[1]),
				})
				break
			}
		}
	}

	// Producers must all be head assignments with compilable sources.
	q := si.q
	sp.grouped = q.Grouping != nil
	for _, pf := range si.producers {
		p, okPred := pf.(*alt.Pred)
		if !okPred || ev.effPredKind(p) != alt.PredAssignment {
			return nil, "producing subformula"
		}
		head, other := p.Left, p.Right
		if c.link.HeadSide[p] == 1 {
			head, other = p.Right, p.Left
		}
		attr := head.(*alt.AttrRef).Attr
		var term planTerm
		var ok bool
		if sp.grouped {
			term, ok = c.compilePostTerm(other, sp)
		} else {
			term, ok = c.compileTerm(other)
		}
		if !ok {
			return nil, fmt.Sprintf("assignment source %s outside the fragment", other)
		}
		sp.producers = append(sp.producers, planProducer{attr: attr, term: term})
	}

	if sp.grouped {
		for _, k := range q.Grouping.Keys {
			term, ok := c.compileTerm(k)
			if !ok {
				return nil, fmt.Sprintf("grouping key %s outside the fragment", k)
			}
			sp.keys = append(sp.keys, term)
		}
		for _, p := range si.aggFilters {
			pp, ok := c.compilePostPred(p, sp)
			if !ok {
				return nil, fmt.Sprintf("aggregate predicate %s outside the fragment", p)
			}
			sp.aggFilters = append(sp.aggFilters, pp)
		}
	} else if len(si.aggTerms) > 0 {
		return nil, "aggregates without grouping"
	}
	return sp, ""
}

// localRef resolves an attribute reference bound by this scope to its
// step; outer references return (-1, false, true) and head references
// are rejected.
func (c *scopeCompiler) localRef(r *alt.AttrRef) (step int, local, ok bool) {
	res, known := c.link.Refs[r]
	if !known || res.Kind != alt.RefBinding {
		return 0, false, false
	}
	if c.link.BindingQuantifier[res.Binding] != c.si.q {
		return 0, false, true // outer correlation: evaluate via the env
	}
	s, okStep := c.stepOf[r.Var]
	if !okStep {
		return 0, false, false
	}
	return s, true, true
}

// compileTerm lowers a term over the scope tuple. Aggregates are not
// allowed here (grouped contexts use compilePostTerm).
func (c *scopeCompiler) compileTerm(t alt.Term) (planTerm, bool) {
	switch x := t.(type) {
	case *alt.Const:
		v := x.Val
		return planTerm{
			eval: func(*evaluator, relation.Tuple, *env) (value.Value, error) { return v, nil },
			pos:  -1,
			str:  x.String(),
		}, true
	case *alt.AttrRef:
		step, local, ok := c.localRef(x)
		if !ok {
			return planTerm{}, false
		}
		if !local {
			ref := x
			return planTerm{
				eval: func(ev *evaluator, _ relation.Tuple, e *env) (value.Value, error) {
					return ev.evalTermAgg(ref, e, nil)
				},
				pos: -1,
				str: x.String(),
			}, true
		}
		col, okCol := c.colOf[x.Var][x.Attr]
		if !okCol {
			return planTerm{}, false
		}
		return planTerm{
			eval: func(_ *evaluator, t relation.Tuple, _ *env) (value.Value, error) { return t[col], nil },
			pos:  step,
			str:  x.String(),
		}, true
	case *alt.Arith:
		l, okL := c.compileTerm(x.L)
		r, okR := c.compileTerm(x.R)
		if !okL || !okR {
			return planTerm{}, false
		}
		return combineArith(x, l, r), true
	}
	return planTerm{}, false
}

// combineArith builds the arithmetic closure shared by both term layers.
func combineArith(x *alt.Arith, l, r planTerm) planTerm {
	op := x.Op
	str := x.String()
	pos := l.pos
	if r.pos > pos {
		pos = r.pos
	}
	return planTerm{
		eval: func(ev *evaluator, t relation.Tuple, e *env) (value.Value, error) {
			a, err := l.eval(ev, t, e)
			if err != nil {
				return value.Null(), err
			}
			b, err := r.eval(ev, t, e)
			if err != nil {
				return value.Null(), err
			}
			var out value.Value
			var ok bool
			switch op {
			case alt.OpAdd:
				out, ok = value.Add(a, b)
			case alt.OpSub:
				out, ok = value.Sub(a, b)
			case alt.OpMul:
				out, ok = value.Mul(a, b)
			case alt.OpDiv:
				out, ok = value.Div(a, b)
			}
			if !ok {
				return value.Null(), fmt.Errorf("type error in %s", str)
			}
			return out, nil
		},
		pos: pos,
		str: str,
	}
}

// compileFilter lowers a WHERE predicate or IS NULL test.
func (c *scopeCompiler) compileFilter(f alt.Formula) (planFilter, bool) {
	last := len(c.si.tree.kids) - 1
	switch x := f.(type) {
	case *alt.Pred:
		if alt.ContainsAgg(x.Left) || alt.ContainsAgg(x.Right) {
			return planFilter{}, false
		}
		l, okL := c.compileTerm(x.Left)
		r, okR := c.compileTerm(x.Right)
		if !okL || !okR {
			return planFilter{}, false
		}
		after := l.pos
		if r.pos > after {
			after = r.pos
		}
		if after >= last {
			after = -1 // complete-tuple filters run in the final pass only
		}
		op := x.Op
		return planFilter{
			after: after,
			eval: func(ev *evaluator, t relation.Tuple, e *env) (value.TV, error) {
				a, err := l.eval(ev, t, e)
				if err != nil {
					return value.False, err
				}
				b, err := r.eval(ev, t, e)
				if err != nil {
					return value.False, err
				}
				return op.Apply(a, b), nil
			},
			str: x.String(),
		}, true
	case *alt.IsNull:
		arg, ok := c.compileTerm(x.Arg)
		if !ok {
			return planFilter{}, false
		}
		after := arg.pos
		if after >= last {
			after = -1 // complete-tuple filters run in the final pass only
		}
		neg := x.Negated
		return planFilter{
			after: after,
			eval: func(ev *evaluator, t relation.Tuple, e *env) (value.TV, error) {
				v, err := arg.eval(ev, t, e)
				if err != nil {
					return value.False, err
				}
				return value.TVFromBool(v.IsNull() != neg), nil
			},
			str: x.String(),
		}, true
	}
	return planFilter{}, false
}

// compilePostTerm lowers a term over the post-group tuple
// [keys..., aggregate values...]: grouping keys match by (var, attr),
// aggregates by node identity, everything else must be constant or outer.
func (c *scopeCompiler) compilePostTerm(t alt.Term, sp *scopePlan) (planTerm, bool) {
	switch x := t.(type) {
	case *alt.Const:
		return c.compileTerm(t)
	case *alt.AttrRef:
		for i, k := range c.si.q.Grouping.Keys {
			if k.Var == x.Var && k.Attr == x.Attr {
				col := i
				return planTerm{
					eval: func(_ *evaluator, g relation.Tuple, _ *env) (value.Value, error) {
						return g[col], nil
					},
					pos: 0,
					str: x.String(),
				}, true
			}
		}
		_, local, ok := c.localRef(x)
		if !ok || local {
			// Local references outside the grouping keys would need a
			// representative environment.
			return planTerm{}, false
		}
		return c.compileTerm(t)
	case *alt.Agg:
		idx := -1
		for i := range sp.aggs {
			if sp.aggs[i].agg == x {
				idx = i
				break
			}
		}
		if idx < 0 {
			var ok bool
			idx, ok = c.addAgg(x, sp)
			if !ok {
				return planTerm{}, false
			}
		}
		col := len(c.si.q.Grouping.Keys) + idx
		return planTerm{
			eval: func(_ *evaluator, g relation.Tuple, _ *env) (value.Value, error) {
				return g[col], nil
			},
			pos: 0,
			str: x.String(),
		}, true
	case *alt.Arith:
		l, okL := c.compilePostTerm(x.L, sp)
		r, okR := c.compilePostTerm(x.R, sp)
		if !okL || !okR {
			return planTerm{}, false
		}
		return combineArith(x, l, r), true
	}
	return planTerm{}, false
}

// addAgg registers one aggregate of the scope as a γ column.
func (c *scopeCompiler) addAgg(a *alt.Agg, sp *scopePlan) (int, bool) {
	arg, ok := c.compileTerm(a.Arg)
	if !ok {
		return 0, false
	}
	pa := planAgg{agg: a, arg: arg}
	switch a.Func {
	case alt.AggCount:
		pa.fn = exec.CountCol
	case alt.AggCountDistinct:
		pa.fn = exec.CountDistinct
	case alt.AggSum:
		pa.fn = exec.Sum
		pa.numeric = true
	case alt.AggAvg:
		pa.fn = exec.Avg
		pa.numeric = true
	case alt.AggMin:
		pa.fn = exec.Min
	case alt.AggMax:
		pa.fn = exec.Max
	default:
		return 0, false
	}
	sp.aggs = append(sp.aggs, pa)
	return len(sp.aggs) - 1, true
}

// compilePostPred lowers an aggregate comparison predicate.
func (c *scopeCompiler) compilePostPred(p *alt.Pred, sp *scopePlan) (planPostPred, bool) {
	l, okL := c.compilePostTerm(p.Left, sp)
	r, okR := c.compilePostTerm(p.Right, sp)
	if !okL || !okR {
		return planPostPred{}, false
	}
	op := p.Op
	nullLogic := c.ev.conv.NullLogic
	return planPostPred{
		eval: func(ev *evaluator, g relation.Tuple, e *env) (value.TV, error) {
			a, err := l.eval(ev, g, e)
			if err != nil {
				return value.False, err
			}
			b, err := r.eval(ev, g, e)
			if err != nil {
				return value.False, err
			}
			tv := op.Apply(a, b)
			if tv == value.Unknown && nullLogic == convention.TwoValued {
				return value.False, nil
			}
			return tv, nil
		},
		str: p.String(),
	}, true
}

// --- Execution ------------------------------------------------------------

// resolveLeaf finds the relation a step ranges over at run time, in the
// same order enumerateLeaf uses (recursion overrides first, then base
// relations, then views).
func (sp *scopePlan) resolveLeaf(ev *evaluator, step *planStep) (*relation.Relation, error) {
	b := step.b
	if rel, ok := ev.overrides[b.Rel]; ok {
		return rel, nil
	}
	if rel := ev.cat.Relation(b.Rel); rel != nil {
		return rel, nil
	}
	if _, ok := ev.cat.views[b.Rel]; ok {
		return ev.evalView(b.Rel)
	}
	return nil, fmt.Errorf("unknown relation %q", b.Rel)
}

// each enumerates the scope's satisfying tuples with their bag weights
// (weight 1 per distinct tuple under set semantics), applying probes and
// filters as early as their inputs bind. f returns false to stop.
func (sp *scopePlan) each(ev *evaluator, e *env, f func(t relation.Tuple, mult int) (bool, error)) error {
	t := make(relation.Tuple, sp.ncols)
	bag := ev.conv.Semantics == convention.Bag
	var walk func(step int, mult int) (bool, error)
	walk = func(step int, mult int) (bool, error) {
		if step == len(sp.steps) {
			// Authoritative filter pass on the complete tuple, in
			// predicate order with short-circuiting — identical to the
			// enumeration path, including which errors can surface.
			for i := range sp.filters {
				tv, err := sp.filters[i].eval(ev, t, e)
				if err != nil {
					return false, err
				}
				if !tv.Holds() {
					return true, nil
				}
			}
			return f(t, mult)
		}
		s := &sp.steps[step]
		extend := func(tup relation.Tuple, m int) (bool, error) {
			copy(t[s.start:], tup)
			w := 1
			if bag {
				w = m
			}
			for i := range sp.filters {
				fl := &sp.filters[i]
				if fl.after != step {
					continue
				}
				// Pruning pass: drop only on a definite evaluation; an
				// error here may be an artifact of the partial tuple.
				if tv, err := fl.eval(ev, t, e); err == nil && !tv.Holds() {
					return true, nil
				}
			}
			return walk(step+1, mult*w)
		}
		if s.isCon {
			return extend(relation.Tuple{s.conVal}, 1)
		}
		rel, err := sp.resolveLeaf(ev, s)
		if err != nil {
			return false, err
		}
		var cols []int
		var vals []value.Value
		for _, p := range s.probes {
			v, err := p.src.eval(ev, t, e)
			if err != nil || !v.Indexable() {
				continue // not evaluable or key identity too weak; scan covers it
			}
			if rel.AttrIndex(s.attrs[p.col]) != p.col {
				// Attribute layout changed under us (should not happen);
				// fall back to a scan for safety.
				cols, vals = nil, nil
				break
			}
			cols = append(cols, p.col)
			vals = append(vals, v)
		}
		cont := true
		var inner error
		rel.Probe(cols, vals, func(tup relation.Tuple, m int) bool {
			c, err := extend(tup, m)
			if err != nil {
				inner = err
				return false
			}
			cont = c
			return c
		})
		if inner != nil {
			return false, inner
		}
		return cont, nil
	}
	_, err := walk(0, 1)
	return err
}

// produce runs the compiled scope for one outer environment, returning
// the produced head-assignment rows (the tuple-level replacement for
// satisfyingEnvs + mergeProducers / groupEnvs + groupRow).
func (sp *scopePlan) produce(ev *evaluator, e *env) ([]prodRow, error) {
	if sp.grouped {
		return sp.produceGrouped(ev, e)
	}
	var rows []prodRow
	err := sp.each(ev, e, func(t relation.Tuple, mult int) (bool, error) {
		assign := make(map[string]value.Value, len(sp.producers))
		for _, p := range sp.producers {
			v, err := p.term.eval(ev, t, e)
			if err != nil {
				return false, err
			}
			if prev, dup := assign[p.attr]; dup {
				if value.Eq.Apply(prev, v) != value.True {
					return true, nil // conflicting assignment: drop the row
				}
				continue
			}
			assign[p.attr] = v
		}
		rows = append(rows, prodRow{assign: assign, weight: mult})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// produceGrouped streams the scope through exec.GroupAggregate and
// evaluates aggregate predicates and producers per group.
func (sp *scopePlan) produceGrouped(ev *evaluator, e *env) ([]prodRow, error) {
	var streamErr error
	pre := func(yield func(relation.Tuple, int) bool) {
		// GroupAggregate copies key values and folds aggregate inputs
		// immediately, so the projection scratch tuple is reusable.
		scratch := make(relation.Tuple, 0, len(sp.keys)+len(sp.aggs))
		err := sp.each(ev, e, func(t relation.Tuple, mult int) (bool, error) {
			out := scratch[:0]
			for _, k := range sp.keys {
				v, err := k.eval(ev, t, e)
				if err != nil {
					return false, err
				}
				out = append(out, v)
			}
			for i := range sp.aggs {
				a := &sp.aggs[i]
				v, err := a.arg.eval(ev, t, e)
				if err != nil {
					return false, err
				}
				if a.numeric && !v.IsNull() && !v.IsNumeric() {
					return false, fmt.Errorf("%s over non-numeric value %v", a.agg.Func, v)
				}
				out = append(out, v)
			}
			return yield(out, mult), nil
		})
		if err != nil {
			streamErr = err
		}
	}
	keyCols := make([]int, len(sp.keys))
	for i := range sp.keys {
		keyCols[i] = i
	}
	aggs := make([]exec.Agg, len(sp.aggs))
	for i := range sp.aggs {
		aggs[i] = exec.Agg{Func: sp.aggs[i].fn, Col: len(sp.keys) + i}
	}
	var rows []prodRow
	var groupErr error
	for g := range exec.GroupAggregate(pre, keyCols, aggs, ev.conv) {
		if streamErr != nil {
			break
		}
		pass := true
		for i := range sp.aggFilters {
			tv, err := sp.aggFilters[i].eval(ev, g, e)
			if err != nil {
				groupErr = err
				break
			}
			if !tv.Holds() {
				pass = false
				break
			}
		}
		if groupErr != nil {
			break
		}
		if !pass {
			continue
		}
		assign := make(map[string]value.Value, len(sp.producers))
		conflict := false
		for _, p := range sp.producers {
			v, err := p.term.eval(ev, g, e)
			if err != nil {
				groupErr = err
				break
			}
			if prev, dup := assign[p.attr]; dup {
				if value.Eq.Apply(prev, v) != value.True {
					conflict = true
					break
				}
				continue
			}
			assign[p.attr] = v
		}
		if groupErr != nil {
			break
		}
		if conflict {
			continue
		}
		rows = append(rows, prodRow{assign: assign, weight: e.weight})
	}
	if streamErr != nil {
		return nil, streamErr
	}
	if groupErr != nil {
		return nil, groupErr
	}
	return rows, nil
}

// ExplainCollection validates col and renders the tuple-level
// compilation of every quantifier scope reachable in its body: the
// physical pipeline for compiled scopes, or the reason a scope stays on
// environment enumeration. Scopes of nested collection sources are
// summarized by their own evaluation and not expanded.
func ExplainCollection(col *alt.Collection, cat *Catalog, conv convention.Conventions) (string, error) {
	link, err := alt.ValidateCollection(col)
	if err != nil {
		return "", err
	}
	ev := newEvaluator(cat, conv)
	ev.pushLink(link)
	defer ev.popLink()
	var b strings.Builder
	if link.RecursiveCols[col] {
		// Recursive collections render their fixpoint rules (with the
		// per-round delta pipelines) instead of the flat scope walk.
		if err := ev.explainRecursive(col, &b); err != nil {
			return "", err
		}
		return b.String(), nil
	}
	var walk func(f alt.Formula) error
	walk = func(f alt.Formula) error {
		switch x := f.(type) {
		case *alt.Quantifier:
			si, err := ev.scopeInfoFor(x)
			if err != nil {
				return err
			}
			fmt.Fprintf(&b, "scope %s:\n", quantHeader(x))
			if sp := ev.scopePlanFor(si); sp != nil {
				sp.explain(&b, 1)
			} else {
				fmt.Fprintf(&b, "  (environment enumeration: %s)\n", si.planReason)
			}
			return walk(x.Body)
		case *alt.And:
			for _, k := range x.Kids {
				if err := walk(k); err != nil {
					return err
				}
			}
		case *alt.Or:
			for _, k := range x.Kids {
				if err := walk(k); err != nil {
					return err
				}
			}
		case *alt.Not:
			return walk(x.Kid)
		}
		return nil
	}
	if err := walk(col.Body); err != nil {
		return "", err
	}
	return b.String(), nil
}

// quantHeader renders a quantifier without its body.
func quantHeader(q *alt.Quantifier) string {
	var b strings.Builder
	b.WriteString("∃")
	for i, bd := range q.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.String())
	}
	if q.Grouping != nil {
		b.WriteString(", ")
		b.WriteString(q.Grouping.String())
	}
	return b.String()
}

// explain renders the compiled pipeline, one operator per line.
func (sp *scopePlan) explain(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	for i := range sp.steps {
		s := &sp.steps[i]
		b.WriteString(pad)
		switch {
		case s.isCon:
			fmt.Fprintf(b, "Const [%s] = %s\n", s.b.Var, s.conVal)
		case len(s.probes) > 0:
			strs := make([]string, len(s.probes))
			for j, p := range s.probes {
				strs[j] = p.str
			}
			fmt.Fprintf(b, "IndexJoin %s [%s] probe(%s)\n", s.b.Rel, s.b.Var, strings.Join(strs, ", "))
		default:
			fmt.Fprintf(b, "Scan %s [%s]\n", s.b.Rel, s.b.Var)
		}
		for _, fl := range sp.filters {
			if fl.after == i {
				fmt.Fprintf(b, "%sFilter (%s)\n", pad, fl.str)
			}
		}
	}
	if sp.grouped {
		keyStrs := make([]string, len(sp.keys))
		for i, k := range sp.keys {
			keyStrs[i] = k.str
		}
		aggStrs := make([]string, len(sp.aggs))
		for i := range sp.aggs {
			aggStrs[i] = sp.aggs[i].agg.String()
		}
		fmt.Fprintf(b, "%sGroupAggregate keys=[%s] aggs=[%s]\n",
			pad, strings.Join(keyStrs, ", "), strings.Join(aggStrs, ", "))
		for _, p := range sp.aggFilters {
			fmt.Fprintf(b, "%sFilter (%s)\n", pad, p.str)
		}
	}
	if len(sp.producers) > 0 {
		strs := make([]string, len(sp.producers))
		for i, p := range sp.producers {
			strs[i] = fmt.Sprintf("%s = %s", p.attr, p.term.str)
		}
		fmt.Fprintf(b, "%sProduce {%s}\n", pad, strings.Join(strs, ", "))
	}
}

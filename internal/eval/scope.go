package eval

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/value"
)

// joinNode is the evaluator's view of a quantifier's (effective) join
// annotation: a tree of inner/left/full nodes over binding leaves, with
// the ON predicates of outer-join nodes attached (Section 2.11).
type joinNode struct {
	kind    alt.JoinKind
	leaf    *alt.Binding // non-nil for leaves
	kids    []*joinNode
	parent  *joinNode
	on      []alt.Formula   // predicates attached to left/full nodes
	vars    map[string]bool // binding vars under this subtree
	hasLeaf bool
}

func (n *joinNode) isLeaf() bool { return n.leaf != nil }

// scopeInfo is the per-quantifier evaluation plan: the join tree and the
// classification of the body's conjunctive spine into WHERE predicates,
// boolean filters, head producers, and aggregate predicates.
type scopeInfo struct {
	q    *alt.Quantifier
	tree *joinNode
	// where holds plain predicates evaluated after join enumeration.
	where []alt.Formula
	// filters holds boolean subformulas (negation, nested existentials,
	// disjunctions without head assignments) evaluated per environment.
	filters []alt.Formula
	// producers holds head-assignment predicates (including aggregate
	// assignments) and producing subformulas, in spine order.
	producers []alt.Formula
	// aggFilters holds aggregate comparison predicates (the aggregate
	// used as a test, as in the COUNT bug version 1).
	aggFilters []*alt.Pred
	// aggTerms lists every aggregate node of the scope, for the grouping
	// stage to compute.
	aggTerms []*alt.Agg
	// eqPreds holds all plain equality predicates — the access-pattern
	// feed for external and abstract relation leaves.
	eqPreds []*alt.Pred
	// plan is the tuple-level compilation of the scope (see compile.go);
	// nil (with planReason saying why) keeps the scope on environment
	// enumeration. Compiled lazily on first production.
	plan       *scopePlan
	planTried  bool
	planReason string
	// fullOn marks eq predicates routed to a FULL-join node's ON list.
	// Those must not restrict leaf enumeration: a full join's unmatched
	// rows null-extend on both sides with no ON re-check, so probing by
	// an ON predicate would silently drop their null-extensions.
	fullOn map[*alt.Pred]bool
}

// scopeInfoFor builds (and caches) the plan for a quantifier under the
// current link.
func (ev *evaluator) scopeInfoFor(q *alt.Quantifier) (*scopeInfo, error) {
	if si, ok := ev.scopeCache[q]; ok {
		return si, nil
	}
	link := ev.curLink()
	si := &scopeInfo{q: q, fullOn: map[*alt.Pred]bool{}}

	// Collect this quantifier's bindings (incl. synthetic constant-leaf
	// bindings created by the linker).
	byVar := map[string]*alt.Binding{}
	for _, b := range q.Bindings {
		byVar[b.Var] = b
	}
	for _, b := range link.ConstBindings {
		if link.BindingQuantifier[b] == q {
			byVar[b.Var] = b
		}
	}

	// Build the effective join tree: the annotation if present, with any
	// unannotated bindings appended as extra inner children.
	covered := map[string]bool{}
	var kids []*joinNode
	if q.Join != nil {
		root, err := buildJoin(q.Join, byVar, covered, link)
		if err != nil {
			return nil, err
		}
		if root.kind == alt.JoinInner && !root.isLeaf() {
			kids = append(kids, root.kids...)
		} else {
			kids = append(kids, root)
		}
	}
	for _, b := range q.Bindings {
		if !covered[b.Var] {
			kids = append(kids, &joinNode{kind: alt.JoinInner, leaf: b})
		}
	}
	si.tree = &joinNode{kind: alt.JoinInner, kids: kids}
	finishJoinTree(si.tree, nil)

	// Classify the spine.
	var joinCandidates []alt.Formula
	for _, el := range alt.Spine(q.Body) {
		switch x := el.(type) {
		case *alt.Pred:
			hasAgg := alt.ContainsAgg(x.Left) || alt.ContainsAgg(x.Right)
			isAssign := ev.effPredKind(x) == alt.PredAssignment
			if x.Op == value.Eq && !hasAgg {
				si.eqPreds = append(si.eqPreds, x)
			}
			switch {
			case hasAgg && isAssign:
				si.producers = append(si.producers, x)
				si.aggTerms = collectAggs(x, si.aggTerms)
			case hasAgg:
				si.aggFilters = append(si.aggFilters, x)
				si.aggTerms = collectAggs(x, si.aggTerms)
			case isAssign:
				si.producers = append(si.producers, x)
			default:
				joinCandidates = append(joinCandidates, x)
			}
		case *alt.IsNull:
			joinCandidates = append(joinCandidates, x)
		default:
			if ev.containsAssignment(el) {
				si.producers = append(si.producers, el)
			} else {
				si.filters = append(si.filters, el)
			}
		}
	}

	// Route join candidates: predicates referencing a nullable side of a
	// left/full node become its ON condition; the rest are WHERE-stage.
	hasOuter := treeHasOuter(si.tree)
	for _, p := range joinCandidates {
		if !hasOuter {
			si.where = append(si.where, p)
			continue
		}
		vars := localPredVars(p, link, q)
		target := onTarget(si.tree, vars)
		if target != nil {
			target.on = append(target.on, p)
			if target.kind == alt.JoinFull {
				if pp, ok := p.(*alt.Pred); ok {
					si.fullOn[pp] = true
				}
			}
		} else {
			si.where = append(si.where, p)
		}
	}

	ev.scopeCache[q] = si
	return si, nil
}

func buildJoin(j alt.JoinExpr, byVar map[string]*alt.Binding, covered map[string]bool, link *alt.Link) (*joinNode, error) {
	switch x := j.(type) {
	case *alt.JoinVar:
		b := byVar[x.Var]
		if b == nil {
			return nil, fmt.Errorf("join annotation variable %q not bound", x.Var)
		}
		covered[x.Var] = true
		return &joinNode{kind: alt.JoinInner, leaf: b}, nil
	case *alt.JoinConst:
		b := link.ConstBindings[x]
		if b == nil {
			return nil, fmt.Errorf("unlinked constant join leaf %s", x)
		}
		covered[b.Var] = true
		return &joinNode{kind: alt.JoinInner, leaf: b}, nil
	case *alt.JoinOp:
		n := &joinNode{kind: x.Kind}
		for _, k := range x.Kids {
			kn, err := buildJoin(k, byVar, covered, link)
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, kn)
		}
		return n, nil
	}
	return nil, fmt.Errorf("unknown join expression %T", j)
}

// finishJoinTree computes parent pointers and var sets bottom-up.
func finishJoinTree(n *joinNode, parent *joinNode) {
	n.parent = parent
	n.vars = map[string]bool{}
	if n.isLeaf() {
		n.vars[n.leaf.Var] = true
		n.hasLeaf = true
		return
	}
	for _, k := range n.kids {
		finishJoinTree(k, n)
		for v := range k.vars {
			n.vars[v] = true
		}
	}
}

func treeHasOuter(n *joinNode) bool {
	if n.kind == alt.JoinLeft || n.kind == alt.JoinFull {
		return true
	}
	for _, k := range n.kids {
		if treeHasOuter(k) {
			return true
		}
	}
	return false
}

// localPredVars returns the variables of p bound by quantifier q.
func localPredVars(p alt.Formula, link *alt.Link, q *alt.Quantifier) map[string]bool {
	out := map[string]bool{}
	for _, r := range alt.FormulaAttrRefs(p, nil) {
		ref, ok := link.Refs[r]
		if ok && ref.Kind == alt.RefBinding && link.BindingQuantifier[ref.Binding] == q {
			out[r.Var] = true
		}
	}
	return out
}

// onTarget finds the left/full node whose ON condition p (with the given
// local vars) belongs to: the lowest covering node if it is itself an
// outer join, otherwise the innermost left/full ancestor reached from the
// nullable side. Returns nil when the predicate is WHERE-stage.
func onTarget(root *joinNode, vars map[string]bool) *joinNode {
	if len(vars) == 0 {
		return nil
	}
	cov := lowestCovering(root, vars)
	if cov == nil {
		return nil
	}
	if cov.kind == alt.JoinLeft || cov.kind == alt.JoinFull {
		return cov
	}
	for cur := cov; cur.parent != nil; cur = cur.parent {
		par := cur.parent
		if par.kind == alt.JoinLeft {
			if len(par.kids) == 2 && par.kids[1] == cur {
				return par
			}
		}
		if par.kind == alt.JoinFull {
			return par
		}
	}
	return nil
}

func lowestCovering(n *joinNode, vars map[string]bool) *joinNode {
	if !covers(n, vars) {
		return nil
	}
	for _, k := range n.kids {
		if covers(k, vars) {
			return lowestCovering(k, vars)
		}
	}
	return n
}

func covers(n *joinNode, vars map[string]bool) bool {
	for v := range vars {
		if !n.vars[v] {
			return false
		}
	}
	return true
}

// effPredKind is the predicate kind as the evaluator sees it: a syntactic
// assignment whose "head" is the head of an abstract relation is really a
// comparison against a parameter value (Section 2.13.2 — abstract-relation
// heads are inputs at the use site, not assignment targets).
func (ev *evaluator) effPredKind(p *alt.Pred) alt.PredKind {
	link := ev.curLink()
	kind := link.Preds[p]
	if kind != alt.PredAssignment {
		return kind
	}
	head := p.Left
	if link.HeadSide[p] == 1 {
		head = p.Right
	}
	if r, ok := head.(*alt.AttrRef); ok {
		if res, ok := link.Refs[r]; ok && res.Kind == alt.RefHead {
			if _, abs := ev.cat.abstract[res.Col.Head.Rel]; abs && ev.cat.abstract[res.Col.Head.Rel] == res.Col {
				return alt.PredComparison
			}
		}
	}
	return kind
}

// containsAssignment reports whether f contains a head-assignment
// predicate (not descending into nested collection sources, whose
// assignments target their own heads).
func (ev *evaluator) containsAssignment(f alt.Formula) bool {
	switch x := f.(type) {
	case *alt.Pred:
		return ev.effPredKind(x) == alt.PredAssignment
	case *alt.And:
		for _, k := range x.Kids {
			if ev.containsAssignment(k) {
				return true
			}
		}
	case *alt.Or:
		for _, k := range x.Kids {
			if ev.containsAssignment(k) {
				return true
			}
		}
	case *alt.Not:
		return ev.containsAssignment(x.Kid)
	case *alt.Quantifier:
		return ev.containsAssignment(x.Body)
	}
	return false
}

func collectAggs(p *alt.Pred, dst []*alt.Agg) []*alt.Agg {
	var walk func(t alt.Term)
	walk = func(t alt.Term) {
		switch x := t.(type) {
		case *alt.Agg:
			dst = append(dst, x)
		case *alt.Arith:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(p.Left)
	walk(p.Right)
	return dst
}

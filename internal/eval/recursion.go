package eval

import (
	"fmt"
	"strings"

	"repro/internal/alt"
	"repro/internal/fixpoint"
	"repro/internal/relation"
)

// This file lowers recursive ARC collections onto the shared semi-naive
// engine in internal/fixpoint. The collection body's top-level disjuncts
// become the rules of a single-relation fixpoint:
//
//   - disjuncts that never reference the head relation are seed rules,
//     derived once in round 0;
//   - a disjunct that references the head exactly once, as a plain
//     binding of its own inner-join scope, is linear: each round it
//     re-derives only through the previous round's delta, bound to the
//     recursive name via the evaluator's override slot (which the
//     compiled scope pipeline of compile.go resolves at run time, so the
//     body compiles once and probes the rotating delta);
//   - everything else (non-linear recursion, references through nested
//     scopes or negation, grouped or outer-join scopes) falls back to
//     naive re-derivation from the full total each round, which is sound
//     because accumulation is set-monotone.
//
// This replaces the seed evaluator's iterate-evalOnce-and-union loop,
// which re-derived every tuple of every round from scratch.

// arcRule is one classified disjunct of a recursive collection body.
type arcRule struct {
	f    alt.Formula
	kind fixpoint.RuleKind
}

// kindString names a rule kind for EXPLAIN output.
func kindString(k fixpoint.RuleKind) string {
	switch k {
	case fixpoint.Seed:
		return "seed"
	case fixpoint.Delta:
		return "delta (semi-naive)"
	case fixpoint.Naive:
		return "naive per round"
	}
	return "?"
}

// recursiveRules splits the body into disjunct rules and classifies each.
func (ev *evaluator) recursiveRules(col *alt.Collection) []arcRule {
	var disjuncts []alt.Formula
	if or, ok := col.Body.(*alt.Or); ok {
		disjuncts = or.Kids
	} else {
		disjuncts = []alt.Formula{col.Body}
	}
	rules := make([]arcRule, len(disjuncts))
	for i, f := range disjuncts {
		rules[i] = arcRule{f: f, kind: ev.classifyDisjunct(f, col.Head.Rel)}
	}
	return rules
}

// classifyDisjunct decides the round discipline for one disjunct. Delta
// rotation is only sound when the single recursive occurrence is a plain
// binding of the disjunct's own scope, joined monotonically: no grouping
// (an aggregate over a partial extent is not a partial aggregate), no
// outer joins (null-extension of the delta differs from null-extension
// of the total), and no further references through nested scopes,
// filters, or negation.
func (ev *evaluator) classifyDisjunct(f alt.Formula, name string) fixpoint.RuleKind {
	total := countRecRefs(f, name)
	if total == 0 {
		return fixpoint.Seed
	}
	q, ok := f.(*alt.Quantifier)
	if !ok {
		return fixpoint.Naive
	}
	direct := 0
	for _, b := range q.Bindings {
		if b.Sub == nil && b.Rel == name {
			direct++
		}
	}
	if total != 1 || direct != 1 || q.Grouping != nil {
		return fixpoint.Naive
	}
	si, err := ev.scopeInfoFor(q)
	if err != nil || treeHasOuter(si.tree) || len(si.aggTerms) > 0 {
		return fixpoint.Naive
	}
	return fixpoint.Delta
}

// countRecRefs counts every reference to the recursive relation within f:
// binding leaves at any quantifier depth, including nested collection
// sources' bodies.
func countRecRefs(f alt.Formula, name string) int {
	n := 0
	switch x := f.(type) {
	case *alt.And:
		for _, k := range x.Kids {
			n += countRecRefs(k, name)
		}
	case *alt.Or:
		for _, k := range x.Kids {
			n += countRecRefs(k, name)
		}
	case *alt.Not:
		n += countRecRefs(x.Kid, name)
	case *alt.Quantifier:
		for _, b := range x.Bindings {
			if b.Sub != nil {
				n += countRecRefs(b.Sub.Body, name)
				continue
			}
			if b.Rel == name {
				n++
			}
		}
		n += countRecRefs(x.Body, name)
	}
	return n
}

// evalRecursive computes a recursive collection by semi-naive least
// fixed point through internal/fixpoint, rotating the head-name override
// between the round's delta (linear rules) and the running total (naive
// rules) so the same compiled scope pipelines serve every variant.
func (ev *evaluator) evalRecursive(col *alt.Collection, e *env) (*relation.Relation, error) {
	name := col.Head.Rel
	saved, hadSaved := ev.overrides[name]
	defer func() {
		if hadSaved {
			ev.overrides[name] = saved
		} else {
			delete(ev.overrides, name)
		}
	}()
	total := relation.New(name, col.Head.Attrs...)
	rules := ev.recursiveRules(col)
	frules := make([]fixpoint.Rule, len(rules))
	for i := range rules {
		r := rules[i]
		var occs []string
		if r.kind == fixpoint.Delta {
			occs = []string{name}
		}
		frules[i] = fixpoint.Rule{
			Target: name,
			Kind:   r.kind,
			Occs:   occs,
			Eval: func(occ int, delta *relation.Relation, emit fixpoint.Emit) error {
				rel := total
				if occ >= 0 {
					rel = delta
				}
				ev.overrides[name] = rel
				return ev.deriveDisjunct(col, r.f, e, emit)
			},
		}
	}
	err := fixpoint.Run(map[string]*relation.Relation{name: total}, frules, fixpoint.Options{
		Name:          "recursive collection " + name,
		MaxIterations: maxLFPIterations,
		Check:         ev.check,
		OnRound:       ev.roundObserver(name),
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// deriveDisjunct derives one rule's head tuples for the current variant.
// A quantifier disjunct whose compiled scope plan assigns every head
// attribute exactly once streams tuples straight off the pipeline; other
// shapes go through the production path and build assignment rows.
func (ev *evaluator) deriveDisjunct(col *alt.Collection, f alt.Formula, e *env, emit fixpoint.Emit) error {
	name := col.Head.Rel
	if q, ok := f.(*alt.Quantifier); ok {
		si, err := ev.scopeInfoFor(q)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if sp := ev.scopePlanFor(si); sp != nil && !sp.grouped {
			if cols, ok := sp.directHeadCols(col.Head.Attrs); ok {
				if err := sp.emitHeadTuples(ev, e, cols, emit); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				return nil
			}
		}
	}
	base := &env{vars: e.vars, weight: 1}
	rows, err := ev.produce(f, base, true)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	t := make(relation.Tuple, len(col.Head.Attrs))
	for _, r := range rows {
		if r.weight <= 0 {
			continue
		}
		for i, a := range col.Head.Attrs {
			v, ok := r.assign[a]
			if !ok {
				return fmt.Errorf("%s: head attribute %q not assigned for a produced row", name, a)
			}
			t[i] = v
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// directHeadCols maps head attributes to producer indexes when the plan
// assigns each head attribute exactly once; ok is false when the shapes
// differ (extra, missing, or duplicated assignments), sending the rule
// through the production path instead.
func (sp *scopePlan) directHeadCols(attrs []string) ([]int, bool) {
	if len(sp.producers) != len(attrs) {
		return nil, false
	}
	byAttr := make(map[string]int, len(sp.producers))
	for i, p := range sp.producers {
		if _, dup := byAttr[p.attr]; dup {
			return nil, false
		}
		byAttr[p.attr] = i
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := byAttr[a]
		if !ok {
			return nil, false
		}
		cols[i] = j
	}
	return cols, true
}

// emitHeadTuples streams the compiled scope's satisfying tuples projected
// onto the head layout. The scratch tuple is reused; emit clones on
// insertion.
func (sp *scopePlan) emitHeadTuples(ev *evaluator, e *env, cols []int, emit fixpoint.Emit) error {
	out := make(relation.Tuple, len(cols))
	return sp.each(ev, e, func(t relation.Tuple, _ int) (bool, error) {
		for i, pi := range cols {
			v, err := sp.producers[pi].term.eval(ev, t, e)
			if err != nil {
				return false, err
			}
			out[i] = v
		}
		if err := emit(out); err != nil {
			return false, err
		}
		return true, nil
	})
}

// explainRecursive renders the fixpoint plan of a recursive collection:
// one rule per disjunct with its round discipline and, for compiled
// scopes, the per-round delta pipeline.
func (ev *evaluator) explainRecursive(col *alt.Collection, b *strings.Builder) error {
	name := col.Head.Rel
	saved, hadSaved := ev.overrides[name]
	defer func() {
		if hadSaved {
			ev.overrides[name] = saved
		} else {
			delete(ev.overrides, name)
		}
	}()
	// Scope compilation resolves the recursive name through the override
	// slot, exactly as evalRecursive binds it per round.
	ev.overrides[name] = relation.New(name, col.Head.Attrs...)
	fmt.Fprintf(b, "Fixpoint %s (semi-naive, Δ%s per round):\n", name, name)
	for i, r := range ev.recursiveRules(col) {
		fmt.Fprintf(b, "  rule %d [%s]:\n", i+1, kindString(r.kind))
		q, ok := r.f.(*alt.Quantifier)
		if !ok {
			fmt.Fprintf(b, "    (production %s)\n", r.f)
			continue
		}
		si, err := ev.scopeInfoFor(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "    scope %s:\n", quantHeader(q))
		if sp := ev.scopePlanFor(si); sp != nil {
			sp.explain(b, 3)
		} else {
			fmt.Fprintf(b, "      (environment enumeration: %s)\n", si.planReason)
		}
	}
	return nil
}

package eval

import (
	"errors"
	"testing"

	"repro/internal/arc"
	"repro/internal/convention"
	"repro/internal/fixpoint"
	"repro/internal/workload"
)

// TestRecursionSemiNaiveTC pins the semi-naive ARC fixpoint on linear
// transitive closure.
func TestRecursionSemiNaiveTC(t *testing.T) {
	col := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	p := workload.Chain(20)
	out, err := Eval(col, NewCatalog().AddRelation(p), convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Distinct(), 19*20/2; got != want {
		t.Fatalf("TC over chain(20): %d tuples, want %d", got, want)
	}
}

// TestRecursionNonLinear exercises the naive-per-round fallback: the
// doubly recursive TC formulation (two references to A in one disjunct)
// must reach the same fixpoint as the linear one.
func TestRecursionNonLinear(t *testing.T) {
	linear := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	nonlinear := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃a1 ∈ A, a2 ∈ A [A.s = a1.s ∧ a1.t = a2.s ∧ A.t = a2.t]}")
	p := workload.Chain(16)
	lin, err := Eval(linear, NewCatalog().AddRelation(p), convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	non, err := Eval(nonlinear, NewCatalog().AddRelation(p), convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	if lin.String() != non.String() {
		t.Fatalf("non-linear TC diverges from linear TC\nlinear:\n%s\nnon-linear:\n%s", lin, non)
	}
}

// TestRecursionIterationCap pins the termination guard: a recursive
// collection that keeps deriving fresh tuples (a number stream) must
// surface the engine's iteration-cap error rather than loop forever.
func TestRecursionIterationCap(t *testing.T) {
	col := arc.MustParseCollection(
		"{N(x) | N.x = 0 ∨ ∃n ∈ N [N.x = n.x + 1]}")
	_, err := Eval(col, NewCatalog(), convention.SetLogic())
	if !errors.Is(err, fixpoint.ErrIterationCap) {
		t.Fatalf("diverging recursion: got %v, want ErrIterationCap", err)
	}
}

// TestExplainRecursiveGolden pins the fixpoint plan rendering of a
// recursive collection: rule classification plus the per-round delta
// pipeline of the compiled scopes.
func TestExplainRecursiveGolden(t *testing.T) {
	col := arc.MustParseCollection(
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	cat := NewCatalog().AddRelation(workload.Chain(3))
	got, err := ExplainCollection(col, cat, convention.SetLogic())
	if err != nil {
		t.Fatal(err)
	}
	want := `Fixpoint A (semi-naive, ΔA per round):
  rule 1 [seed]:
    scope ∃p ∈ P:
      Scan P [p]
      Produce {s = p.s, t = p.t}
  rule 2 [delta (semi-naive)]:
    scope ∃p ∈ P, a2 ∈ A:
      Scan P [p]
      IndexJoin A [a2] probe(a2.s = p.t)
      Produce {s = p.s, t = a2.t}
`
	if got != want {
		t.Fatalf("recursive explain mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

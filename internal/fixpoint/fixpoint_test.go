package fixpoint

import (
	"errors"
	"testing"

	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/value"
)

// chain builds P = {(0,1), (1,2), ...,(n-1,n)}.
func chain(n int) *relation.Relation {
	p := relation.New("P", "s", "t")
	for i := 0; i < n; i++ {
		p.Add(i, i+1)
	}
	return p
}

// tcRules builds the two TC rules over edge relation p:
// A(x,y) :- P(x,y).  A(x,y) :- P(x,z), A(z,y).
func tcRules(p *relation.Relation, totals map[string]*relation.Relation) []Rule {
	return []Rule{
		{
			Target: "A",
			Kind:   Seed,
			Eval: func(_ int, _ *relation.Relation, emit Emit) error {
				for t := range exec.Scan(p) {
					if err := emit(t); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Target: "A",
			Kind:   Delta,
			Occs:   []string{"A"},
			Eval: func(occ int, delta *relation.Relation, emit Emit) error {
				a := totals["A"]
				if occ == 0 {
					a = delta
				}
				for pt := range exec.Scan(p) {
					var failure error
					a.Probe([]int{0}, []value.Value{pt[1]}, func(at relation.Tuple, _ int) bool {
						if err := emit(relation.Tuple{pt[0], at[1]}); err != nil {
							failure = err
							return false
						}
						return true
					})
					if failure != nil {
						return failure
					}
				}
				return nil
			},
		},
	}
}

func TestRunTransitiveClosure(t *testing.T) {
	const n = 20
	totals := map[string]*relation.Relation{"A": relation.New("A", "s", "t")}
	if err := Run(totals, tcRules(chain(n), totals), Options{Name: "tc"}); err != nil {
		t.Fatal(err)
	}
	if got, want := totals["A"].Distinct(), n*(n+1)/2; got != want {
		t.Fatalf("TC over chain(%d): %d tuples, want %d", n, got, want)
	}
}

func TestRunIterationCap(t *testing.T) {
	totals := map[string]*relation.Relation{"G": relation.New("G", "x")}
	round := 0
	rules := []Rule{{
		Target: "G",
		Kind:   Naive,
		Eval: func(_ int, _ *relation.Relation, emit Emit) error {
			round++
			return emit(relation.Tuple{value.Int(int64(round))})
		},
	}}
	err := Run(totals, rules, Options{Name: "diverge", MaxIterations: 5})
	if !errors.Is(err, ErrIterationCap) {
		t.Fatalf("diverging fixpoint: got %v, want ErrIterationCap", err)
	}
}

func TestRunUnknownTarget(t *testing.T) {
	err := Run(map[string]*relation.Relation{}, []Rule{{Target: "Q"}}, Options{Name: "bad"})
	if err == nil {
		t.Fatal("rule with unknown target must fail")
	}
}

// cteTC builds the WITH RECURSIVE working-table loop for TC over edges.
func cteTC(edges *relation.Relation, distinct bool, maxIter int) *CTE {
	return &CTE{
		Name:  "tc",
		Attrs: []string{"s", "t"},
		Base: func(emit EmitMult) error {
			for t, m := range exec.Scan(edges) {
				if err := emit(t, m); err != nil {
					return err
				}
			}
			return nil
		},
		Step: func(delta *relation.Relation, emit EmitMult) error {
			for dt, dm := range exec.Scan(delta) {
				var failure error
				edges.Probe([]int{0}, []value.Value{dt[1]}, func(et relation.Tuple, em int) bool {
					if err := emit(relation.Tuple{dt[0], et[1]}, dm*em); err != nil {
						failure = err
						return false
					}
					return true
				})
				if failure != nil {
					return failure
				}
			}
			return nil
		},
		Distinct:      distinct,
		MaxIterations: maxIter,
	}
}

func TestCTEUnionOverCycle(t *testing.T) {
	edges := relation.New("E", "s", "t").Add(0, 1).Add(1, 0)
	out, err := cteTC(edges, true, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Reachability over the 2-cycle: all four (s,t) pairs.
	if out.Distinct() != 4 {
		t.Fatalf("UNION TC over 2-cycle: %d tuples, want 4", out.Distinct())
	}
	if out.Card() != 4 {
		t.Fatalf("UNION must deduplicate: card %d, want 4", out.Card())
	}
}

func TestCTEUnionAllCycleTripsCap(t *testing.T) {
	edges := relation.New("E", "s", "t").Add(0, 1).Add(1, 0)
	_, err := cteTC(edges, false, 50).Run()
	if !errors.Is(err, ErrIterationCap) {
		t.Fatalf("UNION ALL over a cycle: got %v, want ErrIterationCap", err)
	}
}

func TestCTEUnionAllBoundedKeepsMultiplicities(t *testing.T) {
	// Acyclic chain: UNION ALL terminates and keeps one row per distinct
	// derivation path (here every pair has exactly one path).
	out, err := cteTC(chain(4), false, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Card(), 4*5/2; got != want {
		t.Fatalf("UNION ALL TC over chain(4): card %d, want %d", got, want)
	}
}

func TestStratify(t *testing.T) {
	derived := map[string]bool{"A": true, "B": true}
	strata, n, err := Stratify(derived, []Dep{
		{Head: "A", Dep: "E"},               // base edge: ignored
		{Head: "A", Dep: "A"},               // positive self-recursion
		{Head: "B", Dep: "A", Strict: true}, // B negates A
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || strata["A"] != 0 || strata["B"] != 1 {
		t.Fatalf("strata = %v (n=%d), want A:0 B:1 (n=2)", strata, n)
	}
	if _, _, err := Stratify(derived, []Dep{
		{Head: "A", Dep: "B"},
		{Head: "B", Dep: "A", Strict: true},
	}); err == nil {
		t.Fatal("strict cycle must not stratify")
	}
}

// Package fixpoint is the shared semi-naive fixpoint engine: the one
// implementation of "recursion as a delta-driven loop over relational
// operators" that all three front ends lower onto. Recursive relations
// are represented as (total, delta) pairs; each round re-derives rule
// consequences only through the tuples added in the previous round,
// rotating the deltas until nothing new appears (or the iteration cap
// trips).
//
//   - internal/datalog compiles each stratum's rules into Rule values
//     whose delta variants substitute the rotated delta relation for one
//     body occurrence (the classic per-occurrence semi-naive rewrite).
//   - internal/eval runs recursive ARC collections through the same Run
//     loop: each disjunct becomes a rule, with linear disjuncts reading
//     the delta through the evaluator's override slot and non-linear ones
//     falling back to naive re-derivation per round.
//   - internal/plan executes SQL WITH RECURSIVE through CTE.Run, the
//     working-table variant of the loop (the SQL-standard semantics where
//     the step sees only the previous round's rows), with the step's
//     compiled exec tree reading the delta through a Handle.
//
// The engine owns termination: accumulation into totals is set-monotone
// (a tuple enters the total and the next delta only when new), so every
// monotone program over a finite instance converges; MaxIterations bounds
// runaway recursion (e.g. a UNION ALL step that keeps producing rows over
// a cyclic instance) with ErrIterationCap.
package fixpoint

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/relation"
)

// DefaultMaxIterations bounds Run's round loop — far beyond any finite
// monotone workload, it only trips on genuinely diverging programs.
const DefaultMaxIterations = 1000000

// DefaultMaxCTEIterations bounds the WITH RECURSIVE working-table loop.
// Lower than DefaultMaxIterations because a diverging UNION ALL step
// grows its result every round; the cap turns an infinite loop into a
// clear error before memory does. A variable so guard tests can tighten
// it without spinning the full bound.
var DefaultMaxCTEIterations = 100000

// ErrIterationCap marks a fixpoint that did not converge within the
// iteration bound. Callers test with errors.Is.
var ErrIterationCap = errors.New("fixpoint iteration cap exceeded")

// capErr builds a wrapped ErrIterationCap naming the fixpoint.
func capErr(name string, max int) error {
	return fmt.Errorf("%w: %s did not converge within %d iterations", ErrIterationCap, name, max)
}

// RuleKind selects how Run drives a rule through the rounds.
type RuleKind int

const (
	// Seed rules have no recursive body occurrences: they run once, in
	// round 0 only.
	Seed RuleKind = iota
	// Delta rules are the semi-naive workhorse: round 0 runs them naively
	// (occ = -1), and every later round runs one variant per recursive
	// body occurrence with that occurrence bound to the previous round's
	// delta and the remaining occurrences reading full totals.
	Delta
	// Naive rules re-derive from full totals every round — the sound
	// fallback for bodies where per-occurrence delta rotation does not
	// apply (e.g. ARC disjuncts that reach the recursive relation through
	// nested scopes, negation, or grouping).
	Naive
)

// Emit hands one derived head tuple to the engine, which inserts it into
// the target's total (and the next delta) only when new. The tuple is
// cloned on insertion, so callers may reuse the backing slice.
type Emit func(t relation.Tuple) error

// Rule is one derivation rule of a recursive component.
type Rule struct {
	// Target names the recursive relation the rule derives into; it must
	// be a key of the totals map passed to Run.
	Target string
	// Kind selects the rule's round discipline.
	Kind RuleKind
	// Occs names the recursive relation read by each delta-rotated body
	// occurrence, in body order (Delta rules only). An occurrence whose
	// relation produced no delta last round is skipped.
	Occs []string
	// Eval derives the rule's head tuples for one variant: occ == -1 is
	// the naive variant (every occurrence reads totals), occ >= 0 binds
	// body occurrence occ to delta. Eval must route every derived tuple
	// through emit.
	Eval func(occ int, delta *relation.Relation, emit Emit) error
}

// Options configures one Run.
type Options struct {
	// Name labels the fixpoint in error messages (a stratum, a collection
	// head, a CTE).
	Name string
	// MaxIterations bounds the round loop; 0 means DefaultMaxIterations.
	MaxIterations int
	// Check, when non-nil, is polled before every round; a non-nil return
	// aborts the fixpoint with that error. The engine layer wires context
	// cancellation through it so long recursions stop between rounds.
	Check func() error
	// OnRound, when non-nil, observes each completed round: the number of
	// new tuples it added across targets and how long it took. Round 0
	// (the seed pass) is reported too. A callback rather than a trace
	// type keeps this package free of observability dependencies.
	OnRound func(delta int, elapsed time.Duration)
}

func (o Options) max(def int) int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return def
}

// Run computes the least fixed point of rules over totals. The totals
// relations are the accumulators: round 0 seeds them through every rule's
// naive variant, and each following round derives only through deltas
// (Delta rules) or re-derives from totals (Naive rules), until a round
// adds nothing. Insertion into totals is immediate, so rules later in the
// slice observe tuples emitted earlier in the same round — exactly the
// behaviour of the per-stratum naive pass this engine replaces.
func Run(totals map[string]*relation.Relation, rules []Rule, opt Options) error {
	for _, r := range rules {
		if totals[r.Target] == nil {
			return fmt.Errorf("fixpoint %s: rule targets unknown relation %q", opt.Name, r.Target)
		}
	}
	delta := map[string]*relation.Relation{}
	emitInto := func(target string, next map[string]*relation.Relation) Emit {
		total := totals[target]
		return func(t relation.Tuple) error {
			if total.Contains(t) {
				return nil
			}
			total.Insert(t)
			d := next[target]
			if d == nil {
				d = relation.New(target, total.Attrs()...)
				next[target] = d
			}
			d.Insert(t)
			return nil
		}
	}
	// Round 0: every rule runs naively, seeding the deltas. Each rule's
	// evaluation can stream an arbitrary amount of data, so cancellation
	// is polled per rule, not once for the whole round.
	var roundStart time.Time
	if opt.OnRound != nil {
		roundStart = time.Now()
	}
	for _, r := range rules {
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return err
			}
		}
		if err := r.Eval(-1, nil, emitInto(r.Target, delta)); err != nil {
			return err
		}
	}
	if opt.OnRound != nil {
		opt.OnRound(deltaSize(delta), time.Since(roundStart))
	}
	max := opt.max(DefaultMaxIterations)
	for iter := 0; ; iter++ {
		if len(delta) == 0 {
			return nil
		}
		if iter >= max {
			return capErr(opt.Name, max)
		}
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return err
			}
		}
		if opt.OnRound != nil {
			roundStart = time.Now()
		}
		next := map[string]*relation.Relation{}
		for _, r := range rules {
			switch r.Kind {
			case Seed:
				continue
			case Naive:
				if err := r.Eval(-1, nil, emitInto(r.Target, next)); err != nil {
					return err
				}
			case Delta:
				for occ, pred := range r.Occs {
					d := delta[pred]
					if d == nil || d.Distinct() == 0 {
						continue
					}
					if err := r.Eval(occ, d, emitInto(r.Target, next)); err != nil {
						return err
					}
				}
			}
		}
		if opt.OnRound != nil {
			opt.OnRound(deltaSize(next), time.Since(roundStart))
		}
		delta = next
	}
}

// deltaSize sums a round's new tuples across targets. Deltas hold each
// tuple at most once per round, so cardinality equals the insert count.
func deltaSize(m map[string]*relation.Relation) int {
	n := 0
	for _, d := range m {
		n += d.Card()
	}
	return n
}

// EmitMult is Emit with a bag multiplicity, for the UNION ALL working
// table (which accumulates duplicates).
type EmitMult func(t relation.Tuple, mult int) error

// CTE is the SQL WITH RECURSIVE working-table loop: result and working
// table start as the base query's output; each round the step runs with
// the recursive reference bound to the working table only (the previous
// round's rows — the SQL-standard semantics), its output becomes the next
// working table, and the loop ends when a round produces nothing.
//
// Distinct selects UNION (each round's output is deduplicated and rows
// already in the result are dropped — the set-semantics termination
// guarantee) versus UNION ALL (multiplicities accumulate and termination
// relies on the step eventually producing no rows; the iteration cap
// catches cyclic instances).
type CTE struct {
	// Name labels the CTE in errors and names the result relation.
	Name string
	// Attrs is the result schema (the declared column list, or the base
	// query's output names).
	Attrs []string
	// Base streams the non-recursive term's output.
	Base func(emit EmitMult) error
	// Step streams one round of the recursive term with the recursive
	// reference bound to delta (the previous working table).
	Step func(delta *relation.Relation, emit EmitMult) error
	// Distinct is true for UNION, false for UNION ALL.
	Distinct bool
	// MaxIterations bounds the loop; 0 means DefaultMaxCTEIterations.
	MaxIterations int
	// Check, when non-nil, is polled before every round (context
	// cancellation between working-table iterations).
	Check func() error
	// OnRound, when non-nil, observes each completed round — the base
	// pass first, then one call per step round — with the round's
	// working-table size and derivation time.
	OnRound func(delta int, elapsed time.Duration)
}

// Run executes the loop and returns the accumulated result relation.
func (c *CTE) Run() (*relation.Relation, error) {
	total := relation.New(c.Name, c.Attrs...)
	work := relation.New(c.Name, c.Attrs...)
	collect := func(next *relation.Relation) EmitMult {
		return func(t relation.Tuple, mult int) error {
			if len(t) != len(c.Attrs) {
				return fmt.Errorf("recursive CTE %s: term arity %d, want %d", c.Name, len(t), len(c.Attrs))
			}
			if c.Distinct {
				if total.Contains(t) || next.Contains(t) {
					return nil
				}
				next.Insert(t)
				return nil
			}
			next.InsertMult(t, mult)
			return nil
		}
	}
	var roundStart time.Time
	if c.OnRound != nil {
		roundStart = time.Now()
	}
	if err := c.Base(collect(work)); err != nil {
		return nil, err
	}
	work.Each(func(t relation.Tuple, m int) { total.InsertMult(t, m) })
	if c.OnRound != nil {
		c.OnRound(work.Card(), time.Since(roundStart))
	}
	max := DefaultMaxCTEIterations
	if c.MaxIterations > 0 {
		max = c.MaxIterations
	}
	for iter := 0; work.Distinct() > 0; iter++ {
		if iter >= max {
			return nil, fmt.Errorf("%w: recursive CTE %s did not converge within %d iterations (%s)", ErrIterationCap, c.Name, max, capHint(c.Distinct))
		}
		if c.Check != nil {
			if err := c.Check(); err != nil {
				return nil, err
			}
		}
		if c.OnRound != nil {
			roundStart = time.Now()
		}
		next := relation.New(c.Name, c.Attrs...)
		if err := c.Step(work, collect(next)); err != nil {
			return nil, err
		}
		next.Each(func(t relation.Tuple, m int) { total.InsertMult(t, m) })
		if c.OnRound != nil {
			c.OnRound(next.Card(), time.Since(roundStart))
		}
		work = next
	}
	return total, nil
}

// capHint explains a tripped CTE cap per recursion mode: UNION ALL
// diverges on any cyclic instance, UNION only when the step keeps
// deriving genuinely new rows (a growing value domain).
func capHint(distinct bool) string {
	if distinct {
		return "the step keeps deriving new rows over a growing domain"
	}
	return "UNION ALL recursion needs a bounded step"
}

// Handle is a relation slot identity: compiled operator trees that must
// read "the current delta" (or "the finished CTE result") capture a
// Handle pointer at compile time, and each execution maps it to that
// run's relation in per-execution state (the plan layer's runCtx), so
// one compiled tree serves concurrent executions with independent
// rotating relations. It deliberately holds no relation — that would be
// shared mutable state on an otherwise-immutable compiled plan.
type Handle struct {
	// _ keeps Handle non-zero-sized: distinct allocations must have
	// distinct addresses, since pointer identity is the key.
	_ byte
}

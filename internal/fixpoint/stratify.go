package fixpoint

import "fmt"

// Dep is one dependency edge for stratification: Head's rules read Dep.
// Strict edges (negation, aggregation) require Dep to be fully computed
// in an earlier stratum; non-strict edges allow Head and Dep to share a
// stratum (mutual positive recursion).
type Dep struct {
	Head, Dep string
	Strict    bool
}

// Stratify assigns each derived relation a stratum such that every
// dependency points to the same or an earlier stratum, and every strict
// dependency to a strictly earlier one. derived is the set of relation
// names that have rules (edges to underived relations are ignored — base
// data is always available). Returns the stratum map and the stratum
// count; a strict dependency cycle is not stratifiable.
func Stratify(derived map[string]bool, deps []Dep) (map[string]int, int, error) {
	stratum := map[string]int{}
	n := len(derived) + 1
	changed := true
	for round := 0; changed; round++ {
		if round > n*n+1 {
			return nil, 0, fmt.Errorf("fixpoint: dependencies are not stratifiable (a strict edge occurs in a cycle)")
		}
		changed = false
		for _, d := range deps {
			if !derived[d.Dep] {
				continue
			}
			bump := 0
			if d.Strict {
				bump = 1
			}
			if stratum[d.Head] < stratum[d.Dep]+bump {
				stratum[d.Head] = stratum[d.Dep] + bump
				changed = true
			}
		}
	}
	maxS := 0
	for name := range derived {
		if stratum[name] > maxS {
			maxS = stratum[name]
		}
	}
	return stratum, maxS + 1, nil
}

package higraph

import (
	"strings"
	"testing"

	"repro/internal/arc"
	"repro/internal/relpat"
)

func TestFig2bHigraph(t *testing.T) {
	// Query (1) → Fig 2b: tables Q, R, S; selection "=0" on S.C;
	// assignment edge Q.A = r.A; join edge r.B = s.B.
	col := arc.MustParseCollection("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ascii := g.ASCII()
	for _, want := range []string{"head Q", "table R:r", "table S:s", "=0"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII missing %q:\n%s", want, ascii)
		}
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d, want 2 (assignment + join)\n%s", len(g.Edges), ascii)
	}
	assignments := 0
	for _, e := range g.Edges {
		if e.Assignment {
			assignments++
		}
	}
	if assignments != 1 {
		t.Errorf("assignment edges = %d, want 1", assignments)
	}
}

func TestFig4bGroupingScope(t *testing.T) {
	// Query (3) → Fig 4b: double-bordered grouping scope, grouped attr
	// shaded, sum edge into the head.
	col := arc.MustParseCollection("{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "double border") {
		t.Errorf("grouping scope marker missing:\n%s", ascii)
	}
	if !strings.Contains(ascii, "▓A▓") {
		t.Errorf("grouped attribute shading missing:\n%s", ascii)
	}
	foundSum := false
	for _, e := range g.Edges {
		if e.Agg == "sum" && e.Assignment {
			foundSum = true
		}
	}
	if !foundSum {
		t.Errorf("sum aggregation edge missing:\n%s", ascii)
	}
}

func TestNegationRegions(t *testing.T) {
	col := relpat.UniqueSet()
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ascii := g.ASCII()
	// Query (22) negates ∃l2, ∃l3, ∃l4, ∃l5, and ∃l6: five ¬ regions.
	if strings.Count(ascii, "¬ scope") != 5 {
		t.Errorf("unique-set query should show 5 negation regions:\n%s", ascii)
	}
}

func TestNestedCollectionRegion(t *testing.T) {
	// Query (7) / Fig 5c: the nested collection is its own region with
	// its own head table X.
	col := arc.MustParseCollection(`{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}`)
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "collection X as x") {
		t.Errorf("nested collection region missing:\n%s", ascii)
	}
	if !strings.Contains(ascii, "head X") {
		t.Errorf("nested head table missing:\n%s", ascii)
	}
}

func TestSVGWellFormed(t *testing.T) {
	for name, col := range map[string]string{
		"fig2":  "{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
		"fig4":  "{Q(A, sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}",
		"fig11": "{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}",
	} {
		g, err := Build(arc.MustParseCollection(col))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		svg := g.SVG()
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Errorf("%s: SVG not well formed", name)
		}
		if strings.Count(svg, "<rect") < 2 {
			t.Errorf("%s: SVG should contain region rectangles", name)
		}
		if !utf8Valid(svg) {
			t.Errorf("%s: SVG not valid UTF-8", name)
		}
	}
}

func utf8Valid(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}

func TestIsNullSelection(t *testing.T) {
	col := arc.MustParseCollection(`{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}`)
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.ASCII(), "is null") {
		t.Errorf("IS NULL selection missing:\n%s", g.ASCII())
	}
}

func TestRegionsMetric(t *testing.T) {
	small, _ := Build(arc.MustParseCollection("{Q(A) | ∃r ∈ R [Q.A = r.A]}"))
	big, _ := Build(relpat.UniqueSet())
	if small.Regions() >= big.Regions() {
		t.Errorf("region counts: small=%d big=%d", small.Regions(), big.Regions())
	}
}

func TestSentenceHigraph(t *testing.T) {
	s, err := arc.ParseSentence("∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildSentence(s)
	if err != nil {
		t.Fatal(err)
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "double border") {
		t.Errorf("grouped boolean scope missing:\n%s", ascii)
	}
	foundCount := false
	for _, e := range g.Edges {
		if e.Agg == "count" {
			foundCount = true
		}
	}
	if !foundCount {
		t.Errorf("count comparison edge missing:\n%s", ascii)
	}
}

func TestConstLeafTable(t *testing.T) {
	// (18): the constant join leaf shows as a singleton table.
	col := arc.MustParseCollection(`{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11 AS c, s)) [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = c.val]}`)
	g, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.ASCII(), "table 11:c") {
		t.Errorf("constant singleton table missing:\n%s", g.ASCII())
	}
}

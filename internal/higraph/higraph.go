// Package higraph implements the paper's diagrammatic modality
// (Section 2.2, Figs 2b, 4b, 5c, …): the linked ALT rendered as a
// hierarchical graph — nested regions for scopes (double-bordered for
// grouping scopes, dashed for negation), table nodes with their attribute
// rows, and edges between attribute occurrences for join, assignment
// (visually decorated), and aggregation predicates. Renderers produce an
// ASCII form for terminals and an SVG form for documents.
package higraph

import (
	"fmt"

	"repro/internal/alt"
)

// Kind classifies regions.
type Kind int

const (
	// KindCanvas is the outermost region.
	KindCanvas Kind = iota
	// KindScope is an existential scope.
	KindScope
	// KindGroupScope is a grouping scope (double border, per Fig 4b).
	KindGroupScope
	// KindNegation is a negation scope.
	KindNegation
	// KindCollection is a nested collection region (an independent
	// topological entity on the canvas, possibly unnamed — Section 2.5).
	KindCollection
	// KindTable is a relation occurrence with attribute rows.
	KindTable
	// KindHead is the output table.
	KindHead
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCanvas:
		return "canvas"
	case KindScope:
		return "scope"
	case KindGroupScope:
		return "group-scope"
	case KindNegation:
		return "negation"
	case KindCollection:
		return "collection"
	case KindTable:
		return "table"
	case KindHead:
		return "head"
	}
	return "?"
}

// Region is a node of the higraph's containment tree.
type Region struct {
	Kind  Kind
	Label string // table/relation name
	Var   string // binding variable for tables
	// Attrs are the attribute rows shown (only referenced attributes,
	// like the paper's diagrams).
	Attrs []string
	// GroupedAttrs are highlighted as grouping keys (gray shade in the
	// paper).
	GroupedAttrs map[string]bool
	// Selections are constant conditions displayed inside an attribute
	// row, e.g. "=0" (Fig 2b).
	Selections map[string][]string
	Kids       []*Region
}

func (r *Region) ensureAttr(a string) {
	for _, x := range r.Attrs {
		if x == a {
			return
		}
	}
	r.Attrs = append(r.Attrs, a)
}

// Port is an attribute anchor on a table region.
type Port struct {
	Region *Region
	Attr   string
}

// Edge connects two attribute occurrences.
type Edge struct {
	From, To Port
	// Op is the comparison operator label ("=" edges are usually drawn
	// unlabeled; others carry their symbol).
	Op string
	// Assignment marks assignment predicates (visually decorated arrows,
	// Section 2.2).
	Assignment bool
	// Agg is the aggregate function name when the edge carries an
	// aggregation (the "sum" arrow of Fig 4b).
	Agg string
}

// Graph is a higraph: containment tree plus edges.
type Graph struct {
	Root  *Region
	Edges []*Edge
}

// Regions counts regions (a modality metric for E21).
func (g *Graph) Regions() int {
	n := 0
	var walk func(*Region)
	walk = func(r *Region) {
		n++
		for _, k := range r.Kids {
			walk(k)
		}
	}
	walk(g.Root)
	return n
}

// builder carries linking context while translating an ALT.
type builder struct {
	link   *alt.Link
	tables map[*alt.Binding]*Region
	heads  map[*alt.Collection]*Region
	graph  *Graph
	errs   []string
}

// Build converts a strict collection into its higraph.
func Build(col *alt.Collection) (*Graph, error) {
	link, err := alt.LinkCollection(col)
	if err != nil {
		return nil, err
	}
	return BuildLinked(col, link)
}

// BuildSentence converts a Boolean sentence into its higraph.
func BuildSentence(s *alt.Sentence) (*Graph, error) {
	link, err := alt.LinkSentence(s)
	if err != nil {
		return nil, err
	}
	b := &builder{
		link:   link,
		tables: map[*alt.Binding]*Region{},
		heads:  map[*alt.Collection]*Region{},
		graph:  &Graph{Root: &Region{Kind: KindCanvas}},
	}
	b.formula(s.Body, b.graph.Root)
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("higraph: %v", b.errs)
	}
	return b.graph, nil
}

// BuildLinked builds from a collection with a precomputed link.
func BuildLinked(col *alt.Collection, link *alt.Link) (*Graph, error) {
	b := &builder{
		link:   link,
		tables: map[*alt.Binding]*Region{},
		heads:  map[*alt.Collection]*Region{},
		graph:  &Graph{Root: &Region{Kind: KindCanvas}},
	}
	b.collection(col, b.graph.Root)
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("higraph: %v", b.errs)
	}
	return b.graph, nil
}

func (b *builder) collection(col *alt.Collection, parent *Region) {
	head := &Region{Kind: KindHead, Label: col.Head.Rel, Attrs: append([]string{}, col.Head.Attrs...)}
	b.heads[col] = head
	parent.Kids = append(parent.Kids, head)
	b.formula(col.Body, parent)
}

func (b *builder) formula(f alt.Formula, parent *Region) {
	switch x := f.(type) {
	case nil:
	case *alt.And:
		for _, k := range x.Kids {
			b.formula(k, parent)
		}
	case *alt.Or:
		// Disjuncts appear as sibling scopes; renderers label them.
		for _, k := range x.Kids {
			b.formula(k, parent)
		}
	case *alt.Not:
		neg := &Region{Kind: KindNegation}
		parent.Kids = append(parent.Kids, neg)
		b.formula(x.Kid, neg)
	case *alt.Quantifier:
		b.quantifier(x, parent)
	case *alt.Pred:
		b.pred(x, parent)
	case *alt.IsNull:
		b.isNull(x, parent)
	}
}

func (b *builder) quantifier(q *alt.Quantifier, parent *Region) {
	kind := KindScope
	if q.Grouping != nil {
		kind = KindGroupScope
	}
	scope := &Region{Kind: kind}
	parent.Kids = append(parent.Kids, scope)
	for _, bd := range q.Bindings {
		if bd.Sub != nil {
			colRegion := &Region{Kind: KindCollection, Label: bd.Sub.Head.Rel, Var: bd.Var}
			scope.Kids = append(scope.Kids, colRegion)
			b.collection(bd.Sub, colRegion)
			continue
		}
		t := &Region{Kind: KindTable, Label: bd.Rel, Var: bd.Var}
		b.tables[bd] = t
		scope.Kids = append(scope.Kids, t)
	}
	// Synthetic constant bindings become tiny singleton tables.
	for jc, bd := range b.link.ConstBindings {
		if b.link.BindingQuantifier[bd] == q {
			t := &Region{Kind: KindTable, Label: jc.Val.String(), Var: bd.Var, Attrs: []string{"val"}}
			b.tables[bd] = t
			scope.Kids = append(scope.Kids, t)
		}
	}
	if q.Grouping != nil {
		for _, k := range q.Grouping.Keys {
			if p, ok := b.port(k); ok {
				p.Region.ensureAttr(k.Attr)
				if p.Region.GroupedAttrs == nil {
					p.Region.GroupedAttrs = map[string]bool{}
				}
				p.Region.GroupedAttrs[k.Attr] = true
			}
		}
	}
	b.formula(q.Body, scope)
}

// port resolves an attribute reference to a region anchor.
func (b *builder) port(r *alt.AttrRef) (Port, bool) {
	res, ok := b.link.Refs[r]
	if !ok {
		b.errs = append(b.errs, "unresolved reference "+r.String())
		return Port{}, false
	}
	if res.Kind == alt.RefHead {
		head := b.heads[res.Col]
		if head == nil {
			return Port{}, false
		}
		return Port{Region: head, Attr: r.Attr}, true
	}
	bd := res.Binding
	if bd.Sub != nil {
		// Ports on a nested collection anchor at its head table.
		head := b.heads[bd.Sub]
		if head == nil {
			return Port{}, false
		}
		head.ensureAttr(r.Attr)
		return Port{Region: head, Attr: r.Attr}, true
	}
	t := b.tables[bd]
	if t == nil {
		b.errs = append(b.errs, "no table region for "+r.String())
		return Port{}, false
	}
	t.ensureAttr(r.Attr)
	return Port{Region: t, Attr: r.Attr}, true
}

// pred turns a predicate into an edge or a selection annotation.
func (b *builder) pred(p *alt.Pred, parent *Region) {
	isAssign := b.link.Preds[p] == alt.PredAssignment
	lRef, lIsRef := p.Left.(*alt.AttrRef)
	rRef, rIsRef := p.Right.(*alt.AttrRef)
	lAgg, lIsAgg := p.Left.(*alt.Agg)
	rAgg, rIsAgg := p.Right.(*alt.Agg)

	switch {
	case lIsRef && rIsRef:
		from, ok1 := b.port(lRef)
		to, ok2 := b.port(rRef)
		if ok1 && ok2 {
			b.graph.Edges = append(b.graph.Edges, &Edge{From: from, To: to, Op: p.Op.String(), Assignment: isAssign})
		}
	case lIsRef && rIsAgg:
		b.aggEdge(lRef, rAgg, p, isAssign)
	case rIsRef && lIsAgg:
		b.aggEdge(rRef, lAgg, p, isAssign)
	case lIsRef && isConstTerm(p.Right):
		b.selection(lRef, p.Op.String()+termLabel(p.Right))
	case rIsRef && isConstTerm(p.Left):
		b.selection(rRef, p.Op.Flip().String()+termLabel(p.Left))
	default:
		// Complex terms (arithmetic): annotate both end refs.
		refs := alt.TermAttrRefs(p.Left, alt.TermAttrRefs(p.Right, nil))
		if len(refs) >= 2 {
			from, ok1 := b.port(refs[0])
			to, ok2 := b.port(refs[1])
			if ok1 && ok2 {
				b.graph.Edges = append(b.graph.Edges, &Edge{From: from, To: to, Op: p.String(), Assignment: isAssign})
			}
		}
	}
}

// aggEdge draws the aggregate arrow from the argument attribute to the
// target attribute (Fig 4b's "sum").
func (b *builder) aggEdge(target *alt.AttrRef, agg *alt.Agg, p *alt.Pred, isAssign bool) {
	to, ok := b.port(target)
	if !ok {
		return
	}
	args := alt.TermAttrRefs(agg.Arg, nil)
	if len(args) == 0 {
		return
	}
	from, ok := b.port(args[0])
	if !ok {
		return
	}
	b.graph.Edges = append(b.graph.Edges, &Edge{
		From: from, To: to, Op: p.Op.String(), Assignment: isAssign, Agg: agg.Func.String(),
	})
}

func (b *builder) isNull(n *alt.IsNull, parent *Region) {
	refs := alt.TermAttrRefs(n.Arg, nil)
	if len(refs) == 0 {
		return
	}
	label := "is null"
	if n.Negated {
		label = "is not null"
	}
	b.selection(refs[0], label)
}

func (b *builder) selection(r *alt.AttrRef, label string) {
	p, ok := b.port(r)
	if !ok {
		return
	}
	p.Region.ensureAttr(r.Attr)
	if p.Region.Selections == nil {
		p.Region.Selections = map[string][]string{}
	}
	p.Region.Selections[r.Attr] = append(p.Region.Selections[r.Attr], label)
}

func isConstTerm(t alt.Term) bool {
	_, ok := t.(*alt.Const)
	return ok
}

func termLabel(t alt.Term) string { return t.String() }

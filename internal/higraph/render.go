package higraph

import (
	"fmt"
	"sort"
	"strings"
)

// ASCII renders the higraph as indented nested regions followed by the
// edge list — the terminal-friendly form of the diagrammatic modality.
func (g *Graph) ASCII() string {
	var b strings.Builder
	names := g.regionNames()
	var walk func(r *Region, indent string)
	walk = func(r *Region, indent string) {
		switch r.Kind {
		case KindCanvas:
			b.WriteString(indent + "canvas\n")
		case KindScope:
			b.WriteString(indent + "scope ∃\n")
		case KindGroupScope:
			b.WriteString(indent + "scope ∃ ‖γ‖ (double border)\n")
		case KindNegation:
			b.WriteString(indent + "¬ scope\n")
		case KindCollection:
			label := r.Label
			if label == "" {
				label = "(unnamed)"
			}
			b.WriteString(indent + "collection " + label + " as " + r.Var + "\n")
		case KindTable, KindHead:
			b.WriteString(indent + tableLine(r, names) + "\n")
			return
		}
		for _, k := range r.Kids {
			walk(k, indent+"  ")
		}
	}
	walk(g.Root, "")
	if len(g.Edges) > 0 {
		b.WriteString("edges:\n")
		for _, e := range g.Edges {
			b.WriteString("  " + edgeLine(e, names) + "\n")
		}
	}
	return b.String()
}

func tableLine(r *Region, names map[*Region]string) string {
	kind := "table"
	if r.Kind == KindHead {
		kind = "head"
	}
	var attrs []string
	for _, a := range r.Attrs {
		s := a
		if r.GroupedAttrs[a] {
			s = "▓" + s + "▓" // grouped attribute: gray shade in the paper
		}
		for _, sel := range r.Selections[a] {
			s += " " + sel
		}
		attrs = append(attrs, s)
	}
	name := names[r]
	return fmt.Sprintf("%s %s [%s]", kind, name, strings.Join(attrs, " | "))
}

func edgeLine(e *Edge, names map[*Region]string) string {
	arrow := "──"
	if e.Assignment {
		arrow = "══▶" // assignment predicates are visually decorated
	}
	label := e.Op
	if e.Agg != "" {
		label = e.Agg + " " + label
	}
	return fmt.Sprintf("%s.%s %s[%s] %s.%s",
		names[e.From.Region], e.From.Attr, arrow, label, names[e.To.Region], e.To.Attr)
}

// regionNames gives each table/head a unique display name.
func (g *Graph) regionNames() map[*Region]string {
	names := map[*Region]string{}
	used := map[string]int{}
	var walk func(r *Region)
	walk = func(r *Region) {
		if r.Kind == KindTable || r.Kind == KindHead {
			base := r.Label
			if r.Var != "" && r.Var != r.Label {
				base = r.Label + ":" + r.Var
			}
			used[base]++
			if used[base] > 1 {
				base = fmt.Sprintf("%s#%d", base, used[base])
			}
			names[r] = base
		}
		for _, k := range r.Kids {
			walk(k)
		}
	}
	walk(g.Root)
	return names
}

// --- SVG ------------------------------------------------------------------

const (
	padX   = 10
	padY   = 10
	rowH   = 18
	titleH = 20
	minW   = 90
	gapY   = 12
	charW  = 7
)

type layout struct {
	x, y, w, h int
}

// SVG renders the higraph as a standalone SVG document: nested rectangles
// for regions (double-stroked for grouping scopes, dashed for negation),
// attribute rows for tables, and lines for edges (assignment edges carry
// arrowheads; aggregate edges are labeled with the function).
func (g *Graph) SVG() string {
	sizes := map[*Region]layout{}
	measure(g.Root, sizes)
	place(g.Root, padX, padY, sizes)
	var b strings.Builder
	root := sizes[g.Root]
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`,
		root.w+2*padX, root.h+2*padY)
	b.WriteString(`<defs><marker id="arr" markerWidth="8" markerHeight="8" refX="7" refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z"/></marker></defs>`)
	drawRegion(&b, g.Root, sizes)
	for _, e := range g.Edges {
		drawEdge(&b, e, sizes)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func measure(r *Region, sizes map[*Region]layout) layout {
	switch r.Kind {
	case KindTable, KindHead:
		w := len(r.Label)*charW + 2*padX
		for _, a := range r.Attrs {
			line := a
			for _, s := range r.Selections[a] {
				line += " " + s
			}
			if lw := len(line)*charW + 2*padX; lw > w {
				w = lw
			}
		}
		if w < minW {
			w = minW
		}
		l := layout{w: w, h: titleH + rowH*len(r.Attrs) + padY}
		sizes[r] = l
		return l
	}
	w, h := minW, titleH
	for _, k := range r.Kids {
		kl := measure(k, sizes)
		if kl.w+2*padX > w {
			w = kl.w + 2*padX
		}
		h += kl.h + gapY
	}
	l := layout{w: w, h: h + padY}
	sizes[r] = l
	return l
}

func place(r *Region, x, y int, sizes map[*Region]layout) {
	l := sizes[r]
	l.x, l.y = x, y
	sizes[r] = l
	cy := y + titleH
	for _, k := range r.Kids {
		place(k, x+padX, cy, sizes)
		cy += sizes[k].h + gapY
	}
}

func drawRegion(b *strings.Builder, r *Region, sizes map[*Region]layout) {
	l := sizes[r]
	switch r.Kind {
	case KindCanvas:
	case KindScope, KindCollection:
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#555"/>`, l.x, l.y, l.w, l.h)
	case KindGroupScope:
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#555"/>`, l.x, l.y, l.w, l.h)
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#555"/>`, l.x+3, l.y+3, l.w-6, l.h-6)
	case KindNegation:
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#a00" stroke-dasharray="6,3"/>`, l.x, l.y, l.w, l.h)
		fmt.Fprintf(b, `<text x="%d" y="%d" fill="#a00">¬</text>`, l.x+4, l.y+14)
	case KindTable, KindHead:
		fill := "#ffffff"
		if r.Kind == KindHead {
			fill = "#eef4ff"
		}
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#000"/>`, l.x, l.y, l.w, l.h, fill)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-weight="bold">%s</text>`, l.x+6, l.y+14, esc(r.Label))
		for i, a := range r.Attrs {
			ry := l.y + titleH + i*rowH
			if r.GroupedAttrs[a] {
				fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#ddd"/>`, l.x+1, ry, l.w-2, rowH)
			}
			line := a
			for _, s := range r.Selections[a] {
				line += " " + s
			}
			fmt.Fprintf(b, `<text x="%d" y="%d">%s</text>`, l.x+6, ry+13, esc(line))
		}
	}
	for _, k := range r.Kids {
		drawRegion(b, k, sizes)
	}
}

func portXY(p Port, sizes map[*Region]layout) (int, int) {
	l := sizes[p.Region]
	row := 0
	for i, a := range p.Region.Attrs {
		if a == p.Attr {
			row = i
			break
		}
	}
	return l.x + l.w, l.y + titleH + row*rowH + rowH/2
}

func drawEdge(b *strings.Builder, e *Edge, sizes map[*Region]layout) {
	x1, y1 := portXY(e.From, sizes)
	x2, y2 := portXY(e.To, sizes)
	marker := ""
	if e.Assignment {
		marker = ` marker-end="url(#arr)"`
	}
	stroke := "#06c"
	if e.Agg != "" {
		stroke = "#c60"
	}
	fmt.Fprintf(b, `<path d="M%d,%d C%d,%d %d,%d %d,%d" fill="none" stroke="%s"%s/>`,
		x1, y1, x1+30, y1, x2+30, y2, x2, y2, stroke, marker)
	label := e.Op
	if e.Agg != "" {
		label = e.Agg
	}
	if label != "=" && label != "" {
		mx, my := (x1+x2)/2+30, (y1+y2)/2
		fmt.Fprintf(b, `<text x="%d" y="%d" fill="%s">%s</text>`, mx, my, stroke, esc(label))
	}
}

func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// EdgeSummary lists edges sorted, for tests and goldens.
func (g *Graph) EdgeSummary() []string {
	names := g.regionNames()
	out := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		out = append(out, edgeLine(e, names))
	}
	sort.Strings(out)
	return out
}

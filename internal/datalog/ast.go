// Package datalog implements the Datalog substrate the paper compares
// against (Sections 2.5, 2.6, 2.9): a parser for rules with negation,
// comparisons, arithmetic assignment, and Soufflé-style aggregates
// ("sm = sum b : {S(a,b), a < ak}"), a stratified fixpoint evaluator with
// Soufflé's conventions (no NULL, sum over the empty set is 0), and a
// translator into ARC (package-level Datalog → ARC embedding lives in
// translate.go).
package datalog

import (
	"strings"

	"repro/internal/value"
)

// Program is a list of rules (and, implicitly, the EDB they run against).
type Program struct {
	Rules []*Rule
}

// String renders the program in Soufflé-like syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Rule is "Head :- Body." (an empty body is a fact).
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule.
func (r *Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Atom is a predicate application P(t1, …, tk).
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Term is a Datalog term: variable, constant, or wildcard.
type Term interface {
	isTerm()
	String() string
}

// Var is a (lowercase) variable.
type Var struct{ Name string }

func (Var) isTerm() {}

// String renders the variable name.
func (v Var) String() string { return v.Name }

// Const is a literal constant.
type Const struct{ Val value.Value }

func (Const) isTerm() {}

// String renders the literal (strings in double quotes, Soufflé style).
func (c Const) String() string {
	if c.Val.Kind() == value.KindString {
		return "\"" + c.Val.AsString() + "\""
	}
	return c.Val.String()
}

// Wildcard is "_".
type Wildcard struct{}

func (Wildcard) isTerm() {}

// String renders "_".
func (Wildcard) String() string { return "_" }

// Literal is a body element.
type Literal interface {
	isLiteral()
	String() string
}

// PosAtom is a positive atom.
type PosAtom struct{ Atom Atom }

func (PosAtom) isLiteral() {}

// String renders the atom.
func (l PosAtom) String() string { return l.Atom.String() }

// NegAtom is a negated atom "!P(…)".
type NegAtom struct{ Atom Atom }

func (NegAtom) isLiteral() {}

// String renders "!atom".
func (l NegAtom) String() string { return "!" + l.Atom.String() }

// Expr is an arithmetic expression over terms.
type Expr interface {
	isExpr()
	String() string
}

// TermExpr wraps a term as an expression.
type TermExpr struct{ T Term }

func (TermExpr) isExpr() {}

// String renders the term.
func (e TermExpr) String() string { return e.T.String() }

// BinExpr is binary arithmetic.
type BinExpr struct {
	Op   rune // + - * /
	L, R Expr
}

func (BinExpr) isExpr() {}

// String renders "(l op r)".
func (e BinExpr) String() string {
	return "(" + e.L.String() + string(e.Op) + e.R.String() + ")"
}

// Cmp is a comparison literal "x < y".
type Cmp struct {
	Op   value.CmpOp
	L, R Expr
}

func (Cmp) isLiteral() {}

// String renders "l op r" (Soufflé spells ≠ as "!=").
func (c Cmp) String() string {
	op := c.Op.String()
	if c.Op == value.Ne {
		op = "!="
	}
	return c.L.String() + " " + op + " " + c.R.String()
}

// Assign is "x = expr" where expr computes a value (distinct from a
// comparison by the left side being an unbound variable at eval time; the
// parser emits Cmp and the evaluator decides).
type Assign struct {
	Var  string
	Expr Expr
}

func (Assign) isLiteral() {}

// String renders "x = expr".
func (a Assign) String() string { return a.Var + " = " + a.Expr.String() }

// AggLiteral is Soufflé's aggregate: "res = func expr : {body}". Per the
// Soufflé documentation quoted in Section 2.5, variables grounded inside
// the aggregate body do not export to the outer scope; outer variables
// act as parameters.
type AggLiteral struct {
	Result string
	Func   string // sum, count, min, max, mean
	Expr   Expr   // aggregated expression (nil for count)
	Body   []Literal
}

func (AggLiteral) isLiteral() {}

// String renders "res = func e : {body}".
func (a AggLiteral) String() string {
	parts := make([]string, len(a.Body))
	for i, l := range a.Body {
		parts[i] = l.String()
	}
	e := ""
	if a.Expr != nil {
		e = " " + a.Expr.String()
	}
	return a.Result + " = " + a.Func + e + " : {" + strings.Join(parts, ", ") + "}"
}

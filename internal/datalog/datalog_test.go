package datalog

import (
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/convention"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/value"
)

func TestParseBasics(t *testing.T) {
	p := MustParse(`
		A(x,y) :- P(x,y).
		A(x,y) :- P(x,z), A(z,y).
	`)
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if p.Rules[1].Head.Pred != "A" || len(p.Rules[1].Body) != 2 {
		t.Fatalf("rule 2 = %s", p.Rules[1])
	}
}

func TestParseAggregateRule(t *testing.T) {
	// Paper query (15).
	p := MustParse(`Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.`)
	r := p.Rules[0]
	agg, ok := r.Body[1].(AggLiteral)
	if !ok {
		t.Fatalf("body[1] = %T", r.Body[1])
	}
	if agg.Func != "sum" || agg.Result != "sm" || len(agg.Body) != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if _, ok := r.Body[0].(PosAtom); !ok {
		t.Fatal("body[0] should be a positive atom")
	}
}

func TestParseNegationAndComments(t *testing.T) {
	p := MustParse(`
		% unreached pairs
		U(x,y) :- N(x), N(y), !E(x,y).
	`)
	if _, ok := p.Rules[0].Body[2].(NegAtom); !ok {
		t.Fatalf("negation parse broken: %T", p.Rules[0].Body[2])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"A(x,y)",       // missing period
		"A(x :- P(x).", // bad head
		"A(x) :- P(x",  // unterminated
		"A(x) :- x ~ 1.",
		`A(x) :- P(x), y = sum z : {S(z).`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAncestor(t *testing.T) {
	p := MustParse(`
		A(x,y) :- P(x,y).
		A(x,y) :- P(x,z), A(z,y).
	`)
	edb := EDB{"P": relation.New("P", "s", "t").Add(1, 2).Add(2, 3).Add(3, 4)}
	got, err := EvalPredicate(p, edb, "A")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "s", "t").
		Add(1, 2).Add(2, 3).Add(3, 4).Add(1, 3).Add(2, 4).Add(1, 4)
	if !got.EqualSet(want) {
		t.Fatalf("ancestor:\n%s", got)
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := MustParse(`
		R(x,y) :- E(x,y).
		R(x,y) :- E(x,z), R(z,y).
		Un(x,y) :- N(x), N(y), !R(x,y).
	`)
	edb := EDB{
		"E": relation.New("E", "s", "t").Add(1, 2),
		"N": relation.New("N", "v").Add(1).Add(2),
	}
	got, err := EvalPredicate(p, edb, "Un")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "a", "b").Add(1, 1).Add(2, 1).Add(2, 2)
	if !got.EqualSet(want) {
		t.Fatalf("unreachable:\n%s", got)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := MustParse(`
		A(x) :- N(x), !B(x).
		B(x) :- N(x), !A(x).
	`)
	edb := EDB{"N": relation.New("N", "v").Add(1)}
	if _, err := EvalProgram(p, edb); err == nil ||
		!strings.Contains(err.Error(), "stratifiable") {
		t.Fatalf("want stratification error, got %v", err)
	}
}

func TestSouffleSumEmptyIsZero(t *testing.T) {
	// Section 2.6 / query (15): Q(1,0) on R={(1,2)}, S=∅.
	p := MustParse(`Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.`)
	edb := EDB{
		"R": relation.New("R", "ak", "b").Add(1, 2),
		"S": relation.New("S", "a", "b"),
	}
	got, err := EvalPredicate(p, edb, "Q")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "ak", "sm").Add(1, 0)
	if !got.EqualSet(want) {
		t.Fatalf("Soufflé sum over empty:\n%s", got)
	}
}

func TestAggregateGrouping(t *testing.T) {
	// FOI grouped aggregate (query (6)): Q(a, sum b : {R(a,b)}) :- R(a,_).
	p := MustParse(`Q(a,sm) :- R(a,_), sm = sum b : {R(a,b)}.`)
	edb := EDB{"R": relation.New("R", "a", "b").Add(1, 10).Add(1, 20).Add(2, 5)}
	got, err := EvalPredicate(p, edb, "Q")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "a", "sm").Add(1, 30).Add(2, 5)
	if !got.EqualSet(want) {
		t.Fatalf("grouped sum:\n%s", got)
	}
}

func TestAggregateNoExport(t *testing.T) {
	// Soufflé: "you cannot export information from within the body of an
	// aggregate" — b must not leak out.
	p := MustParse(`Q(a,b) :- R(a,_), c = count : {S(a2,b), a2 = a}.`)
	edb := EDB{
		"R": relation.New("R", "a", "x").Add(1, 0),
		"S": relation.New("S", "a", "b").Add(1, 7),
	}
	_, err := EvalPredicate(p, edb, "Q")
	if err == nil || !strings.Contains(err.Error(), "not grounded") {
		t.Fatalf("want grounding error for exported aggregate variable, got %v", err)
	}
}

func TestMinMaxMeanCount(t *testing.T) {
	p := MustParse(`
		Mn(m) :- m = min b : {R(_,b)}.
		Mx(m) :- m = max b : {R(_,b)}.
		Me(m) :- m = mean b : {R(_,b)}.
		Ct(c) :- c = count : {R(_,_)}.
	`)
	edb := EDB{"R": relation.New("R", "a", "b").Add(1, 10).Add(2, 20)}
	out, err := EvalProgram(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	if !out["Mn"].Contains(relation.Tuple{value.Int(10)}) ||
		!out["Mx"].Contains(relation.Tuple{value.Int(20)}) ||
		!out["Me"].Contains(relation.Tuple{value.Float(15)}) ||
		!out["Ct"].Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("aggregates: Mn=%s Mx=%s Me=%s Ct=%s", out["Mn"], out["Mx"], out["Me"], out["Ct"])
	}
	// min over an empty body derives nothing.
	empty := EDB{"R": relation.New("R", "a", "b")}
	out2, err := EvalProgram(p, empty)
	if err != nil {
		t.Fatal(err)
	}
	if out2["Mn"].Card() != 0 {
		t.Fatal("min over empty should derive nothing")
	}
	if !out2["Ct"].Contains(relation.Tuple{value.Int(0)}) {
		t.Fatal("count over empty is 0")
	}
}

func TestArithmeticAssignment(t *testing.T) {
	p := MustParse(`Q(x,y) :- R(x), y = x * 2 + 1.`)
	edb := EDB{"R": relation.New("R", "v").Add(3)}
	got, err := EvalPredicate(p, edb, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(relation.Tuple{value.Int(3), value.Int(7)}) {
		t.Fatalf("arithmetic:\n%s", got)
	}
}

func TestFacts(t *testing.T) {
	p := MustParse(`
		F(1,2).
		F(2,3).
		G(x) :- F(x,_).
	`)
	got, err := EvalPredicate(p, EDB{}, "G")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "x").Add(1).Add(2)
	if !got.EqualSet(want) {
		t.Fatalf("facts:\n%s", got)
	}
}

// --- Datalog → ARC -------------------------------------------------------

func TestToARCAncestorMatchesDatalog(t *testing.T) {
	p := MustParse(`
		A(x,y) :- P(x,y).
		A(x,y) :- P(x,z), A(z,y).
	`)
	pRel := relation.New("P", "s", "t").Add(1, 2).Add(2, 3).Add(3, 4).Add(10, 11)
	col, err := ToARC(p, map[string][]string{"P": {"s", "t"}, "A": {"s", "t"}}, "A")
	if err != nil {
		t.Fatal(err)
	}
	link, err := alt.ValidateCollection(col)
	if err != nil {
		t.Fatalf("translated ALT invalid: %v\n%s", err, alt.PrintTree(col))
	}
	if !link.RecursiveCols[col] {
		t.Fatal("translation must preserve recursion")
	}
	cat := eval.NewCatalog().AddRelation(pRel)
	arcRes, err := eval.Eval(col, cat, convention.Souffle())
	if err != nil {
		t.Fatal(err)
	}
	dlRes, err := EvalPredicate(p, EDB{"P": pRel}, "A")
	if err != nil {
		t.Fatal(err)
	}
	if !arcRes.EqualSet(dlRes) {
		t.Fatalf("ARC and Datalog disagree:\n%s\n%s", arcRes, dlRes)
	}
}

func TestToARCAggregateMatchesDatalog(t *testing.T) {
	// Query (15) under Soufflé conventions through both engines.
	p := MustParse(`Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.`)
	rRel := relation.New("R", "ak", "b").Add(1, 2).Add(5, 9)
	sRel := relation.New("S", "a", "b").Add(2, 100).Add(3, 50)
	schemas := map[string][]string{"R": {"ak", "b"}, "S": {"a", "b"}, "Q": {"ak", "sm"}}
	col, err := ToARC(p, schemas, "Q")
	if err != nil {
		t.Fatal(err)
	}
	cat := eval.NewCatalog().AddRelation(rRel).AddRelation(sRel)
	arcRes, err := eval.Eval(col, cat, convention.Souffle())
	if err != nil {
		t.Fatalf("%v\n%s", err, alt.PrintTree(col))
	}
	dlRes, err := EvalPredicate(p, EDB{"R": rRel, "S": sRel}, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if !arcRes.EqualSet(dlRes) {
		t.Fatalf("ARC and Datalog disagree:\narc %s\ndl  %s", arcRes, dlRes)
	}
	// The empty-S instance shows the convention: Q(1,0) and Q(5,0).
	cat2 := eval.NewCatalog().AddRelation(rRel).AddRelation(relation.New("S", "a", "b"))
	arc2, err := eval.Eval(col, cat2, convention.Souffle())
	if err != nil {
		t.Fatal(err)
	}
	if !arc2.Contains(relation.Tuple{value.Int(1), value.Int(0)}) {
		t.Fatalf("Soufflé convention lost in ARC:\n%s", arc2)
	}
}

func TestToARCNegation(t *testing.T) {
	p := MustParse(`Only(x) :- N(x), !M(x).`)
	n := relation.New("N", "v").Add(1).Add(2).Add(3)
	m := relation.New("M", "v").Add(2)
	col, err := ToARC(p, map[string][]string{"N": {"v"}, "M": {"v"}, "Only": {"v"}}, "Only")
	if err != nil {
		t.Fatal(err)
	}
	cat := eval.NewCatalog().AddRelation(n).AddRelation(m)
	arcRes, err := eval.Eval(col, cat, convention.Souffle())
	if err != nil {
		t.Fatal(err)
	}
	dlRes, err := EvalPredicate(p, EDB{"N": n, "M": m}, "Only")
	if err != nil {
		t.Fatal(err)
	}
	if !arcRes.EqualSet(dlRes) {
		t.Fatalf("negation translation:\n%s\n%s", arcRes, dlRes)
	}
}

func TestToARCConstantsInHeadAndBody(t *testing.T) {
	p := MustParse(`Q(x, 99) :- R(x, 1).`)
	r := relation.New("R", "a", "b").Add(7, 1).Add(8, 2)
	col, err := ToARC(p, map[string][]string{"R": {"a", "b"}, "Q": {"x", "c"}}, "Q")
	if err != nil {
		t.Fatal(err)
	}
	cat := eval.NewCatalog().AddRelation(r)
	got, err := eval.Eval(col, cat, convention.Souffle())
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("W", "x", "c").Add(7, 99)
	if !got.EqualSet(want) {
		t.Fatalf("constants:\n%s", got)
	}
}

func TestProgramString(t *testing.T) {
	src := `Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.`
	p := MustParse(src)
	printed := p.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if p2.String() != printed {
		t.Fatalf("printing unstable:\n%s\n%s", printed, p2.String())
	}
}

package datalog

import (
	"strings"
	"testing"
)

// TestParserNeverPanics: mangled Datalog must error, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).",
		"Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}.",
		"Un(x,y) :- N(x), N(y), !R(x,y).",
	}
	junk := []string{"", ".", ":-", "A(", "A() :-", "A(x) :- {", "!", "A(x) :- x = .", "%%%"}
	var inputs []string
	inputs = append(inputs, junk...)
	for _, s := range seeds {
		for cut := 0; cut < len(s); cut += 3 {
			inputs = append(inputs, s[:cut])
		}
		inputs = append(inputs,
			strings.ReplaceAll(s, ":-", ":"),
			strings.ReplaceAll(s, "(", ""),
			strings.ReplaceAll(s, ".", ""),
		)
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", in, p)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}

package datalog

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/fixpoint"
	"repro/internal/relation"
	"repro/internal/value"
)

// EDB maps extensional predicate names to relations.
type EDB map[string]*relation.Relation

// EvalProgram evaluates a stratified Datalog program over an EDB and
// returns every IDB relation. Semantics follow Soufflé's conventions
// (Section 2.6): no NULLs, two-valued logic, sum/count over an empty
// aggregate body yield 0, min/max/mean over an empty body fail (derive
// nothing).
func EvalProgram(p *Program, edb EDB) (map[string]*relation.Relation, error) {
	return EvalProgramWith(p, edb, nil)
}

// EvalProgramWith is EvalProgram with an optional cancellation check,
// polled each stratum fixpoint round (the engine layer wires context
// cancellation through it).
func EvalProgramWith(p *Program, edb EDB, check func() error) (map[string]*relation.Relation, error) {
	e := &dlEval{edb: edb, idb: map[string]*relation.Relation{}, check: check}
	if err := e.prepare(p); err != nil {
		return nil, err
	}
	strata, err := stratify(p)
	if err != nil {
		return nil, err
	}
	for _, rules := range strata {
		if err := e.fixpoint(rules); err != nil {
			return nil, err
		}
	}
	return e.idb, nil
}

// EvalPredicate evaluates the program and returns one predicate.
func EvalPredicate(p *Program, edb EDB, pred string) (*relation.Relation, error) {
	return EvalPredicateWith(p, edb, pred, nil)
}

// EvalPredicateWith is EvalPredicate with an optional cancellation check
// polled each fixpoint round.
func EvalPredicateWith(p *Program, edb EDB, pred string, check func() error) (*relation.Relation, error) {
	out, err := EvalProgramWith(p, edb, check)
	if err != nil {
		return nil, err
	}
	rel, ok := out[pred]
	if !ok {
		return nil, fmt.Errorf("datalog: predicate %q is not derived by the program", pred)
	}
	return rel, nil
}

type dlEval struct {
	edb   EDB
	idb   map[string]*relation.Relation
	check func() error
}

// prepare creates empty IDB relations with positional attribute names and
// checks arity consistency.
func (e *dlEval) prepare(p *Program) error {
	arity := map[string]int{}
	for _, r := range p.Rules {
		if prev, ok := arity[r.Head.Pred]; ok && prev != len(r.Head.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", r.Head.Pred, prev, len(r.Head.Args))
		}
		arity[r.Head.Pred] = len(r.Head.Args)
		if _, isEDB := e.edb[r.Head.Pred]; isEDB {
			return fmt.Errorf("datalog: predicate %s is both extensional and derived", r.Head.Pred)
		}
	}
	for pred, k := range arity {
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("x%d", i+1)
		}
		e.idb[pred] = relation.New(pred, attrs...)
	}
	return nil
}

func (e *dlEval) rel(pred string) *relation.Relation {
	if r, ok := e.idb[pred]; ok {
		return r
	}
	return e.edb[pred]
}

// stratify orders rules into strata such that negated and aggregated
// dependencies are fully computed in earlier strata, delegating the
// layering itself to the generic fixpoint.Stratify.
func stratify(p *Program) ([][]*Rule, error) {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	var deps []fixpoint.Dep
	for _, r := range p.Rules {
		h := r.Head.Pred
		for _, l := range r.Body {
			switch x := l.(type) {
			case PosAtom:
				deps = append(deps, fixpoint.Dep{Head: h, Dep: x.Atom.Pred})
			case NegAtom:
				deps = append(deps, fixpoint.Dep{Head: h, Dep: x.Atom.Pred, Strict: true})
			case AggLiteral:
				// Everything inside an aggregate body must be complete
				// before the aggregate is taken.
				for _, bl := range x.Body {
					switch y := bl.(type) {
					case PosAtom:
						deps = append(deps, fixpoint.Dep{Head: h, Dep: y.Atom.Pred, Strict: true})
					case NegAtom:
						deps = append(deps, fixpoint.Dep{Head: h, Dep: y.Atom.Pred, Strict: true})
					}
				}
			}
		}
	}
	stratum, n, err := fixpoint.Stratify(idb, deps)
	if err != nil {
		return nil, fmt.Errorf("datalog: program is not stratifiable (negation or aggregation through recursion)")
	}
	out := make([][]*Rule, n)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// deltaAtom is an internal literal used only by the semi-naive fixpoint:
// a positive atom constrained to read from the previous round's delta
// relation instead of the full predicate extent.
type deltaAtom struct {
	Atom Atom
	rel  *relation.Relation
}

func (deltaAtom) isLiteral() {}

// String renders "Δatom".
func (l deltaAtom) String() string { return "Δ" + l.Atom.String() }

// fixpoint runs one stratum's rules to their least fixed point through
// the shared semi-naive engine: each rule becomes a fixpoint.Rule whose
// delta variants substitute a deltaAtom for one stratum-local body
// occurrence, so that occurrence reads just the tuples added in the
// previous round while the remaining literals read the full (current)
// extents. Stratification guarantees negated and aggregated dependencies
// live in earlier strata, so only positive atoms need delta versions.
func (e *dlEval) fixpoint(rules []*Rule) error {
	local := map[string]bool{}
	for _, r := range rules {
		local[r.Head.Pred] = true
	}
	frules := make([]fixpoint.Rule, 0, len(rules))
	for _, r := range rules {
		r := r
		var occIdx []int
		var occs []string
		for j, l := range r.Body {
			if pa, ok := l.(PosAtom); ok && local[pa.Atom.Pred] {
				occIdx = append(occIdx, j)
				occs = append(occs, pa.Atom.Pred)
			}
		}
		kind := fixpoint.Seed
		if len(occs) > 0 {
			kind = fixpoint.Delta
		}
		frules = append(frules, fixpoint.Rule{
			Target: r.Head.Pred,
			Kind:   kind,
			Occs:   occs,
			Eval: func(occ int, delta *relation.Relation, emit fixpoint.Emit) error {
				body := r.Body
				if occ >= 0 {
					j := occIdx[occ]
					body = make([]Literal, len(r.Body))
					copy(body, r.Body)
					body[j] = deltaAtom{Atom: r.Body[j].(PosAtom).Atom, rel: delta}
				}
				return e.applyRule(r, body, emit)
			},
		})
	}
	name := "datalog stratum"
	if len(rules) > 0 {
		name = "datalog stratum of " + rules[0].Head.Pred
	}
	return fixpoint.Run(e.idb, frules, fixpoint.Options{Name: name, Check: e.check})
}

type bindings map[string]value.Value

func (b bindings) clone() bindings {
	nb := make(bindings, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// applyRule derives all consequences of one rule-body variant, handing
// each head tuple to the engine's emit (which deduplicates against the
// IDB total and feeds the next semi-naive round's delta).
func (e *dlEval) applyRule(r *Rule, body []Literal, emit fixpoint.Emit) error {
	return e.solve(body, bindings{}, func(b bindings) error {
		t := make(relation.Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			switch x := a.(type) {
			case Var:
				v, ok := b[x.Name]
				if !ok {
					return fmt.Errorf("datalog: head variable %q of %s is not grounded", x.Name, r.Head.Pred)
				}
				t[i] = v
			case Const:
				t[i] = x.Val
			case Wildcard:
				return fmt.Errorf("datalog: wildcard in rule head of %s", r.Head.Pred)
			}
		}
		return emit(t)
	})
}

// solve enumerates all groundings of body, calling emit per solution. It
// greedily picks the next evaluable literal (positive atoms always;
// comparisons/negation/aggregates once their inputs are bound; an
// equality with exactly one unbound side acts as an assignment).
func (e *dlEval) solve(body []Literal, b bindings, emit func(bindings) error) error {
	if len(body) == 0 {
		return emit(b)
	}
	pick := -1
	for i, l := range body {
		if e.ready(l, b) {
			pick = i
			break
		}
	}
	if pick < 0 {
		return fmt.Errorf("datalog: no literal evaluable in %v with bindings %v (ungroundable rule)", body, b)
	}
	l := body[pick]
	rest := make([]Literal, 0, len(body)-1)
	rest = append(rest, body[:pick]...)
	rest = append(rest, body[pick+1:]...)
	return e.eachSolution(l, b, func(nb bindings) error {
		return e.solve(rest, nb, emit)
	})
}

func (e *dlEval) ready(l Literal, b bindings) bool {
	switch x := l.(type) {
	case PosAtom:
		return e.rel(x.Atom.Pred) != nil
	case deltaAtom:
		return true
	case NegAtom:
		if e.rel(x.Atom.Pred) == nil {
			return false
		}
		for _, a := range x.Atom.Args {
			if v, ok := a.(Var); ok {
				if _, bound := b[v.Name]; !bound {
					return false
				}
			}
		}
		return true
	case Cmp:
		lOK := exprBound(x.L, b)
		rOK := exprBound(x.R, b)
		if lOK && rOK {
			return true
		}
		// Assignment form: single unbound variable on one side of "=".
		if x.Op == value.Eq {
			if lv, ok := soleVar(x.L); ok && !lOK && rOK {
				_ = lv
				return true
			}
			if rv, ok := soleVar(x.R); ok && !rOK && lOK {
				_ = rv
				return true
			}
		}
		return false
	case AggLiteral:
		// Parameters (variables of the body that are bound outside) must
		// be bound; local variables ground inside.
		for _, v := range aggParams(x, b) {
			if _, ok := b[v]; !ok {
				return false
			}
		}
		return true
	}
	return false
}

// aggParams lists body variables of an aggregate that are already bound
// in the outer scope (the correlation parameters).
func aggParams(a AggLiteral, b bindings) []string {
	seen := map[string]bool{}
	var out []string
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case TermExpr:
			if v, ok := x.T.(Var); ok && !seen[v.Name] {
				seen[v.Name] = true
				if _, bound := b[v.Name]; bound {
					out = append(out, v.Name)
				}
			}
		case BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	var walkLits func([]Literal)
	walkLits = func(ls []Literal) {
		for _, l := range ls {
			switch x := l.(type) {
			case PosAtom:
				for _, t := range x.Atom.Args {
					if v, ok := t.(Var); ok && !seen[v.Name] {
						seen[v.Name] = true
						if _, bound := b[v.Name]; bound {
							out = append(out, v.Name)
						}
					}
				}
			case NegAtom:
				for _, t := range x.Atom.Args {
					if v, ok := t.(Var); ok && !seen[v.Name] {
						seen[v.Name] = true
						if _, bound := b[v.Name]; bound {
							out = append(out, v.Name)
						}
					}
				}
			case Cmp:
				walkExpr(x.L)
				walkExpr(x.R)
			case AggLiteral:
				walkLits(x.Body)
			}
		}
	}
	walkLits(a.Body)
	sort.Strings(out)
	return out
}

func exprBound(e Expr, b bindings) bool {
	switch x := e.(type) {
	case TermExpr:
		if v, ok := x.T.(Var); ok {
			_, bound := b[v.Name]
			return bound
		}
		return true
	case BinExpr:
		return exprBound(x.L, b) && exprBound(x.R, b)
	}
	return false
}

func soleVar(e Expr) (string, bool) {
	t, ok := e.(TermExpr)
	if !ok {
		return "", false
	}
	v, ok := t.T.(Var)
	return v.Name, ok
}

func evalExpr(e Expr, b bindings) (value.Value, error) {
	switch x := e.(type) {
	case TermExpr:
		switch t := x.T.(type) {
		case Var:
			v, ok := b[t.Name]
			if !ok {
				return value.Null(), fmt.Errorf("datalog: unbound variable %q", t.Name)
			}
			return v, nil
		case Const:
			return t.Val, nil
		}
		return value.Null(), fmt.Errorf("datalog: wildcard in expression")
	case BinExpr:
		l, err := evalExpr(x.L, b)
		if err != nil {
			return value.Null(), err
		}
		r, err := evalExpr(x.R, b)
		if err != nil {
			return value.Null(), err
		}
		var out value.Value
		var ok bool
		switch x.Op {
		case '+':
			out, ok = value.Add(l, r)
		case '-':
			out, ok = value.Sub(l, r)
		case '*':
			out, ok = value.Mul(l, r)
		case '/':
			out, ok = value.Div(l, r)
		}
		if !ok {
			return value.Null(), fmt.Errorf("datalog: type error in %s", x)
		}
		return out, nil
	}
	return value.Null(), fmt.Errorf("datalog: unknown expression %T", e)
}

func (e *dlEval) eachSolution(l Literal, b bindings, k func(bindings) error) error {
	switch x := l.(type) {
	case PosAtom:
		rel := e.rel(x.Atom.Pred)
		if rel == nil {
			return fmt.Errorf("datalog: unknown predicate %q", x.Atom.Pred)
		}
		if rel.Arity() != len(x.Atom.Args) {
			return fmt.Errorf("datalog: %s used with arity %d, has %d", x.Atom.Pred, len(x.Atom.Args), rel.Arity())
		}
		return solveAtom(x.Atom, rel, b, k)
	case deltaAtom:
		return solveAtom(x.Atom, x.rel, b, k)
	case NegAtom:
		rel := e.rel(x.Atom.Pred)
		if rel == nil {
			return fmt.Errorf("datalog: unknown predicate %q", x.Atom.Pred)
		}
		cols, vals := boundArgCols(x.Atom, b)
		found := false
		for t := range exec.Probe(rel, cols, vals) {
			if _, ok := unify(x.Atom, t, b); ok {
				found = true // a match exists: negation fails
				break
			}
		}
		if found {
			return nil
		}
		return k(b)
	case Cmp:
		lOK := exprBound(x.L, b)
		rOK := exprBound(x.R, b)
		if lOK && rOK {
			l, err := evalExpr(x.L, b)
			if err != nil {
				return err
			}
			r, err := evalExpr(x.R, b)
			if err != nil {
				return err
			}
			if x.Op.Apply(l, r) == value.True {
				return k(b)
			}
			return nil
		}
		// Assignment.
		var name string
		var src Expr
		if v, ok := soleVar(x.L); ok && !lOK {
			name, src = v, x.R
		} else if v, ok := soleVar(x.R); ok && !rOK {
			name, src = v, x.L
		} else {
			return fmt.Errorf("datalog: comparison %s is not evaluable", x)
		}
		v, err := evalExpr(src, b)
		if err != nil {
			return err
		}
		nb := b.clone()
		nb[name] = v
		return k(nb)
	case AggLiteral:
		v, ok, err := e.aggregate(x, b)
		if err != nil {
			return err
		}
		if !ok {
			return nil // min/max/mean over empty body derives nothing
		}
		if prev, bound := b[x.Result]; bound {
			if value.Eq.Apply(prev, v) == value.True {
				return k(b)
			}
			return nil
		}
		nb := b.clone()
		nb[x.Result] = v
		return k(nb)
	}
	return fmt.Errorf("datalog: unknown literal %T", l)
}

// aggregate evaluates a Soufflé aggregate: local variables ground inside
// the body and do not export (Section 2.5's FOI discussion); outer
// bindings parameterize the body.
func (e *dlEval) aggregate(a AggLiteral, b bindings) (value.Value, bool, error) {
	var vals []value.Value
	err := e.solve(a.Body, b, func(nb bindings) error {
		if a.Expr == nil {
			vals = append(vals, value.Int(1))
			return nil
		}
		v, err := evalExpr(a.Expr, nb)
		if err != nil {
			return err
		}
		vals = append(vals, v)
		return nil
	})
	if err != nil {
		return value.Null(), false, err
	}
	switch a.Func {
	case "count":
		return value.Int(int64(len(vals))), true, nil
	case "sum":
		// Soufflé convention: sum over the empty set is 0 (Section 2.6).
		out := value.Int(0)
		for _, v := range vals {
			s, ok := value.Add(out, v)
			if !ok {
				return value.Null(), false, fmt.Errorf("datalog: sum over non-numeric %v", v)
			}
			out = s
		}
		return out, true, nil
	case "min", "max":
		if len(vals) == 0 {
			return value.Null(), false, nil
		}
		out := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(out)
			if !ok {
				return value.Null(), false, fmt.Errorf("datalog: incomparable values in %s", a.Func)
			}
			if (a.Func == "min" && c < 0) || (a.Func == "max" && c > 0) {
				out = v
			}
		}
		return out, true, nil
	case "mean":
		if len(vals) == 0 {
			return value.Null(), false, nil
		}
		sum := 0.0
		for _, v := range vals {
			if !v.IsNumeric() {
				return value.Null(), false, fmt.Errorf("datalog: mean over non-numeric %v", v)
			}
			sum += v.AsFloat()
		}
		return value.Float(sum / float64(len(vals))), true, nil
	}
	return value.Null(), false, fmt.Errorf("datalog: unknown aggregate %q", a.Func)
}

// solveAtom enumerates the tuples of rel compatible with the atom's
// already-bound arguments via a hash-index probe, unifying each candidate
// with b (the probe restricts to key-equal tuples on the bound positions;
// unify re-checks everything, including repeated variables).
func solveAtom(a Atom, rel *relation.Relation, b bindings, k func(bindings) error) error {
	cols, vals := boundArgCols(a, b)
	var failure error
	for t := range exec.Probe(rel, cols, vals) {
		nb, ok := unify(a, t, b)
		if !ok {
			continue
		}
		if err := k(nb); err != nil {
			failure = err
			break
		}
	}
	return failure
}

// boundArgCols lists the argument positions of a whose value is already
// determined — constants and bound variables — with those values, giving
// the probe key for an index lookup. Values whose key identity is weaker
// than Eq (integral numerics beyond 2^53) are left to unify's re-check.
func boundArgCols(a Atom, b bindings) ([]int, []value.Value) {
	var cols []int
	var vals []value.Value
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case Const:
			if x.Val.Indexable() {
				cols = append(cols, i)
				vals = append(vals, x.Val)
			}
		case Var:
			if v, ok := b[x.Name]; ok && v.Indexable() {
				cols = append(cols, i)
				vals = append(vals, v)
			}
		}
	}
	return cols, vals
}

func unify(a Atom, t relation.Tuple, b bindings) (bindings, bool) {
	nb := b
	cloned := false
	for i, arg := range a.Args {
		switch x := arg.(type) {
		case Wildcard:
		case Const:
			if value.Eq.Apply(x.Val, t[i]) != value.True {
				return nil, false
			}
		case Var:
			if v, ok := nb[x.Name]; ok {
				if value.Eq.Apply(v, t[i]) != value.True {
					return nil, false
				}
				continue
			}
			if !cloned {
				nb = b.clone()
				cloned = true
			}
			nb[x.Name] = t[i]
		}
	}
	return nb, true
}

package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/value"
)

// Parse parses a Datalog program in Soufflé-like syntax: one rule per
// "…." ; "%"- and "//"-style comments; "!" for negation; aggregates as
// "v = sum x : {…}".
func Parse(src string) (*Program, error) {
	toks, err := lexDL(src)
	if err != nil {
		return nil, err
	}
	p := &dlParser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParse parses or panics; for fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type dlTok struct {
	kind tokKind
	text string
	pos  int
}

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tSym
)

func lexDL(src string) ([]dlTok, error) {
	var toks []dlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, dlTok{kind: tIdent, text: src[start:i], pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' && (i+1 >= len(src) || src[i+1] < '0' || src[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, dlTok{kind: tNumber, text: src[start:i], pos: start})
		case c == '"':
			j := strings.IndexByte(src[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("datalog: unterminated string at %d", i)
			}
			toks = append(toks, dlTok{kind: tString, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		default:
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case ":-", "<=", ">=", "!=":
					toks = append(toks, dlTok{kind: tSym, text: two, pos: i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', '{', '}', ',', '.', ':', '!', '=', '<', '>', '+', '-', '*', '/', '_':
				toks = append(toks, dlTok{kind: tSym, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("datalog: unexpected character %q at %d", string(c), i)
			}
		}
	}
	toks = append(toks, dlTok{kind: tEOF, pos: len(src)})
	return toks, nil
}

type dlParser struct {
	toks []dlTok
	pos  int
}

func (p *dlParser) peek() dlTok { return p.toks[p.pos] }
func (p *dlParser) atEOF() bool { return p.peek().kind == tEOF }
func (p *dlParser) next() dlTok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *dlParser) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *dlParser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tSym && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *dlParser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *dlParser) rule() (*Rule, error) {
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	r := &Rule{Head: head}
	if p.acceptSym(":-") {
		for {
			l, err := p.literal()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, l)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectSym("."); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *dlParser) atom() (Atom, error) {
	name := p.next()
	if name.kind != tIdent {
		return Atom{}, p.errf("expected predicate name, found %q", name.text)
	}
	a := Atom{Pred: name.text}
	if err := p.expectSym("("); err != nil {
		return Atom{}, err
	}
	if p.acceptSym(")") {
		return a, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

var aggFuncs = map[string]bool{"sum": true, "count": true, "min": true, "max": true, "mean": true}

func (p *dlParser) literal() (Literal, error) {
	t := p.peek()
	// Negation.
	if t.kind == tSym && t.text == "!" {
		p.pos++
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return NegAtom{Atom: a}, nil
	}
	// Atom vs comparison/aggregate: an identifier followed by "(" is an atom.
	if t.kind == tIdent && p.toks[p.pos+1].kind == tSym && p.toks[p.pos+1].text == "(" {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return PosAtom{Atom: a}, nil
	}
	// Aggregate: VAR = func [expr] : { body }.
	if t.kind == tIdent && p.toks[p.pos+1].kind == tSym && p.toks[p.pos+1].text == "=" &&
		p.toks[p.pos+2].kind == tIdent && aggFuncs[p.toks[p.pos+2].text] {
		res := p.next().text
		p.next() // "="
		fn := p.next().text
		agg := AggLiteral{Result: res, Func: fn}
		if !p.acceptSym(":") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			agg.Expr = e
			if err := p.expectSym(":"); err != nil {
				return nil, err
			}
		}
		if err := p.expectSym("{"); err != nil {
			return nil, err
		}
		for {
			l, err := p.literal()
			if err != nil {
				return nil, err
			}
			agg.Body = append(agg.Body, l)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
		return agg, nil
	}
	// Comparison or assignment: expr op expr.
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tSym {
		return nil, p.errf("expected comparison, found %q", opTok.text)
	}
	var op value.CmpOp
	switch opTok.text {
	case "=":
		op = value.Eq
	case "!=":
		op = value.Ne
	case "<":
		op = value.Lt
	case "<=":
		op = value.Le
	case ">":
		op = value.Gt
	case ">=":
		op = value.Ge
	default:
		return nil, p.errf("expected comparison operator, found %q", opTok.text)
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *dlParser) expr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tSym && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: rune(t.text[0]), L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *dlParser) mulExpr() (Expr, error) {
	l, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tSym && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.primaryExpr()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: rune(t.text[0]), L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *dlParser) primaryExpr() (Expr, error) {
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	return TermExpr{T: t}, nil
}

func (p *dlParser) term() (Term, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		if t.text == "_" {
			return Wildcard{}, nil
		}
		return Var{Name: t.text}, nil
	case tNumber:
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			return Const{Val: value.Float(f)}, nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		return Const{Val: value.Int(i)}, nil
	case tString:
		return Const{Val: value.Str(t.text)}, nil
	case tSym:
		switch t.text {
		case "_":
			return Wildcard{}, nil
		case "-":
			inner, err := p.term()
			if err != nil {
				return nil, err
			}
			c, ok := inner.(Const)
			if !ok || !c.Val.IsNumeric() {
				return nil, p.errf("unary minus needs a numeric literal")
			}
			if c.Val.Kind() == value.KindInt {
				return Const{Val: value.Int(-c.Val.AsInt())}, nil
			}
			return Const{Val: value.Float(-c.Val.AsFloat())}, nil
		}
	}
	return nil, p.errf("expected term, found %q", t.text)
}

package datalog

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/value"
)

// ToARC translates the definition of one predicate into an ARC collection
// (Section 2.9: multiple rules with the same head become one definition
// with a disjunction; recursion stays a reference to the head relation;
// Soufflé aggregates become the FOI pattern of Fig 5c — a correlated
// nested collection with γ∅).
//
// schemas supplies named attributes for every predicate used (the named
// perspective needs them); IDB predicates default to x1..xk.
func ToARC(p *Program, schemas map[string][]string, pred string) (*alt.Collection, error) {
	var rules []*Rule
	arity := -1
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			continue
		}
		rules = append(rules, r)
		arity = len(r.Head.Args)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("datalog: no rules define %q", pred)
	}
	attrs := schemaFor(schemas, pred, arity)
	tr := &arcTranslator{schemas: schemas}
	var branches []alt.Formula
	for _, r := range rules {
		br, err := tr.rule(r, pred, attrs)
		if err != nil {
			return nil, err
		}
		branches = append(branches, br)
	}
	var body alt.Formula
	if len(branches) == 1 {
		body = branches[0]
	} else {
		body = alt.OrF(branches...)
	}
	return alt.Col(pred, attrs, body), nil
}

func schemaFor(schemas map[string][]string, pred string, arity int) []string {
	if s, ok := schemas[pred]; ok {
		return s
	}
	out := make([]string, arity)
	for i := range out {
		out[i] = fmt.Sprintf("x%d", i+1)
	}
	return out
}

type arcTranslator struct {
	schemas map[string][]string
	fresh   int
}

func (tr *arcTranslator) gensym(prefix string) string {
	tr.fresh++
	return fmt.Sprintf("%s%d", prefix, tr.fresh)
}

// siteMap tracks, for each Datalog variable, the ARC attribute reference
// of its first (binding) occurrence.
type siteMap map[string]*alt.AttrRef

func (tr *arcTranslator) rule(r *Rule, pred string, headAttrs []string) (alt.Formula, error) {
	sites := siteMap{}
	var bindings []*alt.Binding
	var conjs []alt.Formula
	// Positive atoms first: they ground variables.
	var rest []Literal
	for _, l := range r.Body {
		if pa, ok := l.(PosAtom); ok {
			b, preds, err := tr.atomBinding(pa.Atom, sites)
			if err != nil {
				return nil, err
			}
			bindings = append(bindings, b)
			conjs = append(conjs, preds...)
			continue
		}
		rest = append(rest, l)
	}
	for _, l := range rest {
		switch x := l.(type) {
		case NegAtom:
			f, err := tr.negAtom(x.Atom, sites)
			if err != nil {
				return nil, err
			}
			conjs = append(conjs, f)
		case Cmp:
			l2, err := tr.expr(x.L, sites)
			if err != nil {
				return nil, err
			}
			r2, err := tr.expr(x.R, sites)
			if err != nil {
				return nil, err
			}
			conjs = append(conjs, &alt.Pred{Left: l2, Op: x.Op, Right: r2})
		case AggLiteral:
			b, ref, err := tr.aggregate(x, sites)
			if err != nil {
				return nil, err
			}
			bindings = append(bindings, b)
			sites[x.Result] = ref
		default:
			return nil, fmt.Errorf("datalog: cannot translate literal %T", l)
		}
	}
	// Head assignments.
	for i, a := range r.Head.Args {
		headRef := alt.Ref(pred, headAttrs[i])
		switch x := a.(type) {
		case Var:
			site, ok := sites[x.Name]
			if !ok {
				return nil, fmt.Errorf("datalog: head variable %q of %s not grounded in body", x.Name, pred)
			}
			conjs = append(conjs, alt.Eq(headRef, site))
		case Const:
			conjs = append(conjs, alt.Eq(headRef, alt.CVal(x.Val)))
		case Wildcard:
			return nil, fmt.Errorf("datalog: wildcard in head of %s", pred)
		}
	}
	if len(bindings) == 0 {
		return nil, fmt.Errorf("datalog: rule for %s has no positive atoms", pred)
	}
	return alt.Exists(bindings, alt.AndF(conjs...)), nil
}

// atomBinding introduces a range variable for one positive atom and the
// equality predicates tying argument occurrences together.
func (tr *arcTranslator) atomBinding(a Atom, sites siteMap) (*alt.Binding, []alt.Formula, error) {
	attrs := tr.schemas[a.Pred]
	if attrs == nil {
		attrs = schemaFor(tr.schemas, a.Pred, len(a.Args))
	}
	if len(attrs) != len(a.Args) {
		return nil, nil, fmt.Errorf("datalog: %s has %d attributes, used with %d arguments", a.Pred, len(attrs), len(a.Args))
	}
	v := tr.gensym("t")
	var preds []alt.Formula
	for i, arg := range a.Args {
		ref := alt.Ref(v, attrs[i])
		switch x := arg.(type) {
		case Wildcard:
		case Const:
			preds = append(preds, alt.Eq(ref, alt.CVal(x.Val)))
		case Var:
			if site, ok := sites[x.Name]; ok {
				preds = append(preds, alt.Eq(ref, site))
			} else {
				sites[x.Name] = ref
			}
		}
	}
	return alt.Bind(v, a.Pred), preds, nil
}

// negAtom translates "!P(…)" into ¬∃.
func (tr *arcTranslator) negAtom(a Atom, sites siteMap) (alt.Formula, error) {
	inner := siteMap{}
	for k, v := range sites {
		inner[k] = v
	}
	b, preds, err := tr.atomBinding(a, inner)
	if err != nil {
		return nil, err
	}
	return alt.NotF(alt.Exists([]*alt.Binding{b}, alt.AndF(preds...))), nil
}

// aggregate translates "res = sum e : {body}" into the FOI pattern: a
// correlated nested collection with γ∅ (Fig 5c / query (7)).
func (tr *arcTranslator) aggregate(a AggLiteral, sites siteMap) (*alt.Binding, *alt.AttrRef, error) {
	var fn alt.AggFunc
	switch a.Func {
	case "sum":
		fn = alt.AggSum
	case "count":
		fn = alt.AggCount
	case "min":
		fn = alt.AggMin
	case "max":
		fn = alt.AggMax
	case "mean":
		fn = alt.AggAvg
	default:
		return nil, nil, fmt.Errorf("datalog: unknown aggregate %q", a.Func)
	}
	name := "X" + tr.gensym("agg")
	// The aggregate body grounds its local variables in a private scope;
	// variables already bound outside become correlated references.
	inner := siteMap{}
	for k, v := range sites {
		inner[k] = v
	}
	var bindings []*alt.Binding
	var conjs []alt.Formula
	for _, l := range a.Body {
		switch x := l.(type) {
		case PosAtom:
			b, preds, err := tr.atomBinding(x.Atom, inner)
			if err != nil {
				return nil, nil, err
			}
			bindings = append(bindings, b)
			conjs = append(conjs, preds...)
		case NegAtom:
			f, err := tr.negAtom(x.Atom, inner)
			if err != nil {
				return nil, nil, err
			}
			conjs = append(conjs, f)
		case Cmp:
			l2, err := tr.expr(x.L, inner)
			if err != nil {
				return nil, nil, err
			}
			r2, err := tr.expr(x.R, inner)
			if err != nil {
				return nil, nil, err
			}
			conjs = append(conjs, &alt.Pred{Left: l2, Op: x.Op, Right: r2})
		default:
			return nil, nil, fmt.Errorf("datalog: nested aggregates are not supported")
		}
	}
	var arg alt.Term
	if a.Expr == nil {
		arg = alt.CInt(1)
	} else {
		t, err := tr.expr(a.Expr, inner)
		if err != nil {
			return nil, nil, err
		}
		arg = t
	}
	conjs = append(conjs, alt.Eq(alt.Ref(name, "res"), &alt.Agg{Func: fn, Arg: arg}))
	col := alt.Col(name, []string{"res"},
		alt.ExistsG(bindings, nil, alt.AndF(conjs...)))
	v := tr.gensym("x")
	return alt.BindSub(v, col), alt.Ref(v, "res"), nil
}

func (tr *arcTranslator) expr(e Expr, sites siteMap) (alt.Term, error) {
	switch x := e.(type) {
	case TermExpr:
		switch t := x.T.(type) {
		case Var:
			site, ok := sites[t.Name]
			if !ok {
				return nil, fmt.Errorf("datalog: variable %q not grounded by a positive atom", t.Name)
			}
			return site, nil
		case Const:
			return alt.CVal(t.Val), nil
		}
		return nil, fmt.Errorf("datalog: wildcard in expression")
	case BinExpr:
		l, err := tr.expr(x.L, sites)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R, sites)
		if err != nil {
			return nil, err
		}
		var op alt.ArithOp
		switch x.Op {
		case '+':
			op = alt.OpAdd
		case '-':
			op = alt.OpSub
		case '*':
			op = alt.OpMul
		case '/':
			op = alt.OpDiv
		}
		return &alt.Arith{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("datalog: unknown expression %T", e)
}

var _ = value.Null

package server

// An internal test: it reaches into session to plant a cursor whose
// engine Rows panics mid-stream — the one failure valid inputs can
// never produce (the fuzzers enforce that) but whose wire behavior the
// protocol promises: the panic is recovered inside Rows.pull as a
// *engine.PanicError, the Fetch answers an INTERNAL Error frame, the
// cursor closes, and the session survives.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
)

func TestFetchPanicSurfacesAsInternalErrorFrame(t *testing.T) {
	db := engine.Open(relation.New("R", "A").Add(1))
	srv := New(db, Options{})
	cli, srvConn := net.Pipe()
	defer cli.Close()
	defer srvConn.Close()

	sess := &session{
		srv:     srv,
		conn:    srvConn,
		r:       bufio.NewReader(srvConn),
		w:       bufio.NewWriter(srvConn),
		ctx:     context.Background(),
		eng:     db.NewSession(),
		stmts:   map[uint32]*stmtHandle{},
		cursors: map[uint32]*cursor{},
		greeted: true,
	}
	rows := engine.NewPanicRowsForTest([]string{"A"}, 1, "operator bug")
	sess.cursors[7] = &cursor{rows: rows, cols: []string{"A"}}

	var fetch Enc
	fetch.U32(7)   // cursor id
	fetch.U32(100) // max rows: past the single good row, into the panic
	handled := make(chan error, 1)
	go func() {
		err := sess.handleFetch(fetch.Bytes())
		sess.w.Flush()
		handled <- err
	}()

	cli.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := ReadFrame(cli)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != FrameError {
		t.Fatalf("frame type = 0x%02x, want FrameError", typ)
	}
	d := NewDec(body)
	code, msg := d.Str(), d.Str()
	if code != CodeInternal {
		t.Fatalf("error code = %s, want %s (panics must be distinguishable from bad SQL)", code, CodeInternal)
	}
	if !strings.Contains(msg, "internal panic during rows") || !strings.Contains(msg, "operator bug") {
		t.Fatalf("error message = %q, want the PanicError rendering", msg)
	}

	// The fetch is a statement error, not a connection-fatal one.
	if err := <-handled; err != nil {
		t.Fatalf("handleFetch = %v, want nil (session must survive)", err)
	}
	// The cursor is gone and its Rows is closed with the PanicError.
	if _, ok := sess.cursors[7]; ok {
		t.Fatal("cursor still registered after mid-stream panic")
	}
	var pe *engine.PanicError
	if !errors.As(rows.Err(), &pe) || pe.Op != "rows" || len(pe.Stack) == 0 {
		t.Fatalf("rows.Err() = %v, want *engine.PanicError with op+stack", rows.Err())
	}
	// And the operator-facing counter ticked.
	if got := srv.metrics.PanicsRecovered.Load(); got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

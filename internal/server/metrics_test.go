package server

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket math: durations are
// ceiled to whole microseconds and bucket i's inclusive upper bound is
// exactly 2^i µs, so the JSON and Prometheus renderings agree by
// construction.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int // index whose raw count the observation lands in
	}{
		{0, 0},                          // clamps into the ≤1µs bucket
		{500 * time.Nanosecond, 0},      // ceil → 1µs
		{time.Microsecond, 0},           // exactly the 1µs bound
		{1500 * time.Nanosecond, 1},     // ceil → 2µs: must NOT truncate into ≤1µs
		{2 * time.Microsecond, 1},       // exactly the 2µs bound
		{2001 * time.Nanosecond, 2},     // ceil → 3µs → ≤4µs
		{4 * time.Microsecond, 2},       // exactly the 4µs bound
		{5 * time.Microsecond, 3},       // ≤8µs
		{time.Hour, latencyBuckets - 1}, // overflow → +Inf bucket
	}
	for _, c := range cases {
		var m Metrics
		m.ObserveQuery(c.d)
		s := m.snapshot()
		// Recover the raw (non-cumulative) placement from the cumulative
		// buckets: the first bucket whose cumulative count is 1.
		got := -1
		for i, b := range s.QueryLatencyUs {
			if b.Count == 1 {
				got = i
				break
			}
		}
		if got != c.bucket {
			t.Errorf("ObserveQuery(%v) landed in bucket %d, want %d", c.d, got, c.bucket)
		}
	}
}

// TestHistogramCumulative pins the snapshot's cumulative form: all
// buckets present, counts non-decreasing, +Inf terminal equal to the
// observation count, and bounds doubling from 1µs.
func TestHistogramCumulative(t *testing.T) {
	var m Metrics
	for _, d := range []time.Duration{
		time.Microsecond, 3 * time.Microsecond, 3 * time.Microsecond,
		100 * time.Millisecond, time.Minute,
	} {
		m.ObserveQuery(d)
	}
	s := m.snapshot()
	if len(s.QueryLatencyUs) != latencyBuckets {
		t.Fatalf("got %d buckets, want %d", len(s.QueryLatencyUs), latencyBuckets)
	}
	for i, b := range s.QueryLatencyUs {
		if i == latencyBuckets-1 {
			if b.UpToMicros != 0 {
				t.Fatalf("last bucket bound = %d, want 0 (+Inf)", b.UpToMicros)
			}
			break
		}
		if want := uint64(1) << uint(i); b.UpToMicros != want {
			t.Fatalf("bucket %d bound = %dµs, want %dµs", i, b.UpToMicros, want)
		}
		if b.Count > s.QueryLatencyUs[i+1].Count {
			t.Fatalf("bucket %d count %d > bucket %d count %d (not cumulative)",
				i, b.Count, i+1, s.QueryLatencyUs[i+1].Count)
		}
	}
	if last := s.QueryLatencyUs[latencyBuckets-1]; last.Count != 5 || last.Count != s.QueryCount {
		t.Fatalf("+Inf bucket = %d, count = %d, want both 5", last.Count, s.QueryCount)
	}
	if s.QueryLatencyUs[0].Count != 1 { // only the exact-1µs observation
		t.Fatalf("≤1µs bucket = %d, want 1", s.QueryLatencyUs[0].Count)
	}
	if s.QueryLatencyUs[1].Count != 1 { // nothing lands in (1µs, 2µs]
		t.Fatalf("≤2µs bucket = %d, want 1", s.QueryLatencyUs[1].Count)
	}
	if s.QueryLatencyUs[2].Count != 3 { // the two 3µs observations join
		t.Fatalf("≤4µs bucket = %d, want 3", s.QueryLatencyUs[2].Count)
	}
}

// TestPrometheusLeBounds pins the seconds-unit le rendering of the
// µs-exact bounds (1µs → "1e-06").
func TestPrometheusLeBounds(t *testing.T) {
	var m Metrics
	m.ObserveQuery(3 * time.Microsecond)
	var b strings.Builder
	writePrometheus(&b, m.snapshot())
	out := b.String()
	for _, want := range []string{
		`arcserve_query_duration_seconds_bucket{le="1e-06"} 0`,
		`arcserve_query_duration_seconds_bucket{le="2e-06"} 0`,
		`arcserve_query_duration_seconds_bucket{le="4e-06"} 1`,
		`arcserve_query_duration_seconds_bucket{le="+Inf"} 1`,
		`arcserve_query_duration_seconds_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

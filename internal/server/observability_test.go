package server_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/storage"
	"repro/internal/value"
)

// --- Prometheus text exposition validator (no external dependencies) ---

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromLine parses `name{k="v",...} value` or `name value`.
func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on line %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, kv := range strings.Split(rest[1:end], ",") {
			if kv == "" {
				continue
			}
			eq := strings.Index(kv, "=")
			if eq < 0 {
				return s, fmt.Errorf("bad label %q", kv)
			}
			v, err := strconv.Unquote(kv[eq+1:])
			if err != nil {
				return s, fmt.Errorf("label value %q not quoted: %v", kv[eq+1:], err)
			}
			s.labels[kv[:eq]] = v
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.value = v
	return s, nil
}

// validatePrometheus checks text against the 0.0.4 exposition format:
// every metric has HELP/TYPE before its samples, names are legal, values
// parse, and each histogram has cumulative buckets ending at le="+Inf"
// with a _count equal to the +Inf bucket.
func validatePrometheus(t *testing.T, text string) map[string][]promSample {
	t.Helper()
	types := map[string]string{}
	samples := map[string][]promSample{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
			if fields[1] == "TYPE" {
				kind := fields[3]
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
				}
				if _, dup := types[name]; dup {
					t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				types[name] = kind
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parsePromLine(line)
		if err != nil {
			t.Fatalf("line %d: %v", ln+1, err)
		}
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suf)
			if trimmed != base && types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, s.name)
		}
		samples[base] = append(samples[base], s)
	}
	for name, kind := range types {
		if kind != "histogram" {
			continue
		}
		var prev float64
		var infCount, count float64
		sawInf := false
		for _, s := range samples[name] {
			switch s.name {
			case name + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					t.Fatalf("%s: bucket without le label", name)
				}
				if s.value < prev {
					t.Fatalf("%s: bucket le=%s count %v < previous %v (not cumulative)", name, le, s.value, prev)
				}
				prev = s.value
				if le == "+Inf" {
					sawInf = true
					infCount = s.value
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("%s: bad le bound %q", name, le)
				}
			case name + "_count":
				count = s.value
			}
		}
		if !sawInf {
			t.Fatalf("%s: histogram has no +Inf bucket", name)
		}
		if infCount != count {
			t.Fatalf("%s: _count %v != +Inf bucket %v", name, count, infCount)
		}
	}
	return samples
}

// TestPrometheusExposition pins the default metrics rendering: valid
// 0.0.4 text format, with the query histogram cumulative and consistent.
func TestPrometheusExposition(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	for i := 0; i < 4; i++ {
		if _, _, err := c.Query(client.LangSQL, "select R.A from R"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(client.LangSQL, "insert into R values (99, 990)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, string(body))
	get := func(name string) float64 {
		t.Helper()
		ss, ok := samples[name]
		if !ok || len(ss) == 0 {
			t.Fatalf("metric %s missing from exposition", name)
		}
		return ss[0].value
	}
	// Execute and Exec frames both count: 4 queries + 1 insert.
	if got := get("arcserve_queries_executed_total"); got != 5 {
		t.Fatalf("arcserve_queries_executed_total = %v, want 5", got)
	}
	if got := get("arcserve_exec_dml_total"); got != 1 {
		t.Fatalf("arcserve_exec_dml_total = %v, want 1", got)
	}
	if got := get("arcserve_store_commits_total"); got < 1 {
		t.Fatalf("arcserve_store_commits_total = %v, want >= 1", got)
	}
	hist := samples["arcserve_query_duration_seconds"]
	if len(hist) == 0 {
		t.Fatal("query duration histogram missing")
	}
	// Exact power-of-two bounds: the first bucket is 1µs = 1e-06 s.
	var sawFirst bool
	for _, s := range hist {
		if s.name == "arcserve_query_duration_seconds_bucket" && s.labels["le"] == "1e-06" {
			sawFirst = true
		}
	}
	if !sawFirst {
		t.Fatalf("histogram lacks the exact 1e-06 first bound: %+v", hist)
	}
	// RAM-backed server: no storage series (they would read as a durable
	// deployment that never writes).
	if strings.Contains(string(body), "arcserve_wal_records_total") {
		t.Fatal("in-memory server exposes WAL metrics")
	}
}

// TestPrometheusStorageMetrics pins the durable-backend series: a server
// over OpenDurable exposes WAL/checkpoint/block-cache counters that move
// with the write path, and the JSON rendering carries the same block.
func TestPrometheusStorageMetrics(t *testing.T) {
	db, err := engine.OpenDurable(t.TempDir(), storage.Options{},
		relation.New("R", "A", "B").Add(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, addr := startServer(t, db, server.Options{})
	c := dial(t, addr)
	if _, err := c.Exec(client.LangSQL, "insert into R values (2, 20)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(client.LangSQL, "update R set B = 0 where R.A = 2"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, string(body))
	for _, name := range []string{
		"arcserve_wal_records_total",
		"arcserve_wal_bytes_total",
		"arcserve_checkpoints_total",
		"arcserve_checkpoint_generation",
		"arcserve_block_cache_hits_total",
		"arcserve_block_cache_misses_total",
		"arcserve_recovery_duration_seconds",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("metric %s missing from durable exposition", name)
		}
	}
	if ss := samples["arcserve_wal_records_total"]; len(ss) > 0 && ss[0].value < 2 {
		t.Fatalf("arcserve_wal_records_total = %v, want >= 2 (insert + update)", ss[0].value)
	}

	snap := srv.Snapshot()
	if snap.Storage == nil || snap.Storage.WALRecords < 2 {
		t.Fatalf("Snapshot().Storage = %+v, want WAL records >= 2", snap.Storage)
	}
}

// TestAnalyzeOverWire pins EXPLAIN ANALYZE through the wire protocol:
// the rendered plan carries actual row counts, and analyzing a non-query
// statement is a structured WRONG_KIND error.
func TestAnalyzeOverWire(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	stmt, err := c.Prepare(client.LangSQL, "select R.A, R.B from R where R.A >= $1")
	if err != nil {
		t.Fatal(err)
	}
	text, err := stmt.ExplainAnalyze(value.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "rows=3") {
		t.Fatalf("analyze output lacks actual row count:\n%s", text)
	}
	if !strings.Contains(text, "Total: rows=3") {
		t.Fatalf("analyze output lacks total line:\n%s", text)
	}
	// The handle still answers ordinary queries after an analyze run.
	rows, err := stmt.QueryAll(value.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows after analyze = %v", rows)
	}
	ins, err := c.Prepare(client.LangSQL, "insert into R values (7, 70)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.ExplainAnalyze(); err == nil {
		t.Fatal("analyzing DML succeeded, want WRONG_KIND")
	} else if we, ok := err.(*server.WireError); !ok || we.Code != server.CodeWrongKind {
		t.Fatalf("err = %v, want WRONG_KIND", err)
	}
}

// TestDropTableOverWire pins DROP TABLE end to end: create, insert,
// query, drop, then both querying and re-dropping fail.
func TestDropTableOverWire(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	if _, err := c.Exec(client.LangSQL, "create table Tmp (a, b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(client.LangSQL, "insert into Tmp values (1, 2)"); err != nil {
		t.Fatal(err)
	}
	rows, _, err := c.Query(client.LangSQL, "select Tmp.a from Tmp")
	if err != nil || len(rows) != 1 {
		t.Fatalf("pre-drop query: rows=%v err=%v", rows, err)
	}
	drop, err := c.Prepare(client.LangSQL, "drop table Tmp")
	if err != nil {
		t.Fatal(err)
	}
	if drop.Kind() != client.KindDDL {
		t.Fatalf("drop kind = %v, want DDL", drop.Kind())
	}
	res, err := drop.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation == 0 {
		t.Fatal("drop reported generation 0, want a committed generation")
	}
	if _, _, err := c.Query(client.LangSQL, "select Tmp.a from Tmp"); err == nil {
		t.Fatal("query after drop succeeded")
	}
	if _, err := c.Exec(client.LangSQL, "drop table Tmp"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

// Package client is the Go client for the arcserve wire protocol: it
// dials a server, prepares statements in any of the three languages, and
// streams results through a Rows-style cursor. Queries pipeline the
// Bind+Execute+first-Fetch frames in one write, so a simple point query
// costs a single round trip after Prepare.
//
// A Conn is bound to one goroutine (like a database/sql driver
// connection); open one Conn per concurrent session.
package client

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/server"
	"repro/internal/value"
)

// Lang mirrors the wire language byte (aliasing the server package's
// constants so the mapping has one source of truth).
type Lang byte

const (
	LangSQL     = Lang(server.WireLangSQL)
	LangARC     = Lang(server.WireLangARC)
	LangDatalog = Lang(server.WireLangDatalog)
)

// Conn is one client session.
type Conn struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	nextID  uint32
	lastErr error // connection-fatal error; everything fails after it
}

// Dial connects and performs the Hello handshake.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	var e server.Enc
	e.U32(server.ProtocolVersion)
	e.Str("repro-go-client")
	if err := c.roundTrip(server.FrameHello, e.Bytes(), server.FrameHelloOK, nil); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// fatal records a connection-level failure.
func (c *Conn) fatal(err error) error {
	if c.lastErr == nil {
		c.lastErr = err
	}
	return err
}

// send writes a frame into the buffered writer (no flush).
func (c *Conn) send(typ byte, payload []byte) error {
	if c.lastErr != nil {
		return c.lastErr
	}
	if err := server.WriteFrame(c.w, typ, payload); err != nil {
		return c.fatal(err)
	}
	return nil
}

// recv flushes pending writes and reads one response frame, decoding
// Error frames into *server.WireError (which is NOT connection-fatal:
// the server keeps the session open for statement-level errors).
func (c *Conn) recv(want byte) ([]byte, error) {
	if c.lastErr != nil {
		return nil, c.lastErr
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fatal(err)
	}
	typ, body, err := server.ReadFrame(c.r)
	if err != nil {
		return nil, c.fatal(err)
	}
	if typ == server.FrameError {
		d := server.NewDec(body)
		we := &server.WireError{Code: d.Str(), Message: d.Str()}
		if d.Err() != nil {
			return nil, c.fatal(d.Err())
		}
		return nil, we
	}
	if typ != want {
		return nil, c.fatal(fmt.Errorf("client: expected frame 0x%02x, got 0x%02x", want, typ))
	}
	return body, nil
}

// roundTrip sends one frame and decodes the matching response.
func (c *Conn) roundTrip(typ byte, payloadB []byte, want byte, into func(*server.Dec) error) error {
	if err := c.send(typ, payloadB); err != nil {
		return err
	}
	body, err := c.recv(want)
	if err != nil {
		return err
	}
	if into == nil {
		return nil
	}
	d := server.NewDec(body)
	if err := into(&d); err != nil {
		return err
	}
	if d.Err() != nil {
		return c.fatal(d.Err())
	}
	return nil
}

// Kind mirrors the statement-kind byte PrepareOK carries (aliasing the
// server package's constants).
type Kind byte

const (
	KindQuery    = Kind(server.WireKindQuery)
	KindDML      = Kind(server.WireKindDML)
	KindDDL      = Kind(server.WireKindDDL)
	KindBegin    = Kind(server.WireKindBegin)
	KindCommit   = Kind(server.WireKindCommit)
	KindRollback = Kind(server.WireKindRollback)
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindDML:
		return "DML"
	case KindDDL:
		return "DDL"
	case KindBegin:
		return "BEGIN"
	case KindCommit:
		return "COMMIT"
	case KindRollback:
		return "ROLLBACK"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Result reports what a write changed: affected row occurrences plus
// the commit generation the write became visible at (0 while buffered
// inside an open transaction).
type Result struct {
	RowsAffected int64
	Generation   uint64
}

// Stmt is a server-side prepared statement handle owned by this session.
type Stmt struct {
	conn    *Conn
	id      uint32
	kind    Kind
	cols    []string
	nparams int
}

// Prepare prepares src on the server.
func (c *Conn) Prepare(lang Lang, src string) (*Stmt, error) {
	return c.prepare(lang, src, "")
}

// PrepareDatalog prepares a Datalog program selecting the returned
// predicate (empty = the last rule's head).
func (c *Conn) PrepareDatalog(src, pred string) (*Stmt, error) {
	return c.prepare(LangDatalog, src, pred)
}

func (c *Conn) prepare(lang Lang, src, pred string) (*Stmt, error) {
	c.nextID++
	id := c.nextID
	var e server.Enc
	e.U32(id)
	e.U8(byte(lang))
	e.Str(pred)
	e.Str(src)
	s := &Stmt{conn: c, id: id}
	err := c.roundTrip(server.FramePrepare, e.Bytes(), server.FramePrepareOK, func(d *server.Dec) error {
		if got := d.U32(); d.Err() == nil && got != id {
			return c.fatal(fmt.Errorf("client: PrepareOK for statement %d, want %d", got, id))
		}
		s.kind = Kind(d.U8())
		s.nparams = int(d.U32())
		ncols := int(d.U32())
		if d.Err() != nil {
			return nil
		}
		s.cols = make([]string, 0, ncols)
		for i := 0; i < ncols && d.Err() == nil; i++ {
			s.cols = append(s.cols, d.Str())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Columns returns the statement's output column names.
func (s *Stmt) Columns() []string { return s.cols }

// NumParams returns the number of positional parameters.
func (s *Stmt) NumParams() int { return s.nparams }

// Kind reports what the statement is (query, DML, DDL, or transaction
// control), as classified by the server at prepare time.
func (s *Stmt) Kind() Kind { return s.kind }

// Exec runs a DML/DDL statement (or SQL-level transaction control) on
// the server. Queries are rejected with WRONG_KIND — use Query.
func (s *Stmt) Exec(args ...value.Value) (Result, error) {
	var e server.Enc
	e.U32(s.id)
	e.U32(uint32(len(args)))
	for _, a := range args {
		e.Val(a)
	}
	var res Result
	err := s.conn.roundTrip(server.FrameExec, e.Bytes(), server.FrameExecOK, func(d *server.Dec) error {
		res.RowsAffected = int64(d.U64())
		res.Generation = d.U64()
		return nil
	})
	return res, err
}

// ExplainAnalyze runs a query statement server-side with operator
// tracing enabled and returns the rendered executed plan (per-operator
// actual rows and timings). The rows themselves are not shipped.
func (s *Stmt) ExplainAnalyze(args ...value.Value) (string, error) {
	var e server.Enc
	e.U32(s.id)
	e.U32(uint32(len(args)))
	for _, a := range args {
		e.Val(a)
	}
	var text string
	err := s.conn.roundTrip(server.FrameAnalyze, e.Bytes(), server.FrameAnalyzeOK, func(d *server.Dec) error {
		text = d.Str()
		return nil
	})
	return text, err
}

// Close drops the server-side handle.
func (s *Stmt) Close() error {
	var e server.Enc
	e.U8(0)
	e.U32(s.id)
	return s.conn.roundTrip(server.FrameClose, e.Bytes(), server.FrameCloseOK, nil)
}

// Rows streams a query result in fetch-sized batches.
type Rows struct {
	conn     *Conn
	cursorID uint32
	cols     []string
	batch    [][]value.Value
	pos      int
	done     bool
	closed   bool
	err      error
}

// Query binds args, executes, and requests the first batch — pipelined
// as Bind+Execute+Fetch in one write, then the three responses read back
// in order.
func (s *Stmt) Query(args ...value.Value) (*Rows, error) {
	c := s.conn
	c.nextID++
	curID := c.nextID
	var bindP server.Enc
	bindP.U32(curID)
	bindP.U32(s.id)
	bindP.U32(uint32(len(args)))
	for _, a := range args {
		bindP.Val(a)
	}
	var execP server.Enc
	execP.U32(curID)
	var fetchP server.Enc
	fetchP.U32(curID)
	fetchP.U32(0) // server default batch size
	if err := c.send(server.FrameBind, bindP.Bytes()); err != nil {
		return nil, err
	}
	if err := c.send(server.FrameExecute, execP.Bytes()); err != nil {
		return nil, err
	}
	if err := c.send(server.FrameFetch, fetchP.Bytes()); err != nil {
		return nil, err
	}
	if _, err := c.recv(server.FrameBindOK); err != nil {
		// The pipelined Execute and Fetch behind the failed Bind answer
		// with unknown-cursor errors; drain both to stay in sync.
		_, _ = c.recv(server.FrameExecuteOK)
		_, _ = c.recv(server.FrameRows)
		return nil, fmt.Errorf("bind: %w", err)
	}
	if _, err := c.recv(server.FrameExecuteOK); err != nil {
		// The pipelined Fetch behind the failed Execute answers with an
		// unknown-cursor error; drain it so the session stays in sync.
		_, _ = c.recv(server.FrameRows)
		return nil, err
	}
	r := &Rows{conn: c, cursorID: curID, cols: s.cols}
	if err := r.readBatch(); err != nil {
		return nil, err
	}
	return r, nil
}

// readBatch consumes one Rows frame into the buffer.
func (r *Rows) readBatch() error {
	body, err := r.conn.recv(server.FrameRows)
	if err != nil {
		r.err = err
		r.done = true
		return err
	}
	d := server.NewDec(body)
	if got := d.U32(); d.Err() == nil && got != r.cursorID {
		return r.conn.fatal(fmt.Errorf("client: Rows for cursor %d, want %d", got, r.cursorID))
	}
	r.done = d.U8() == 1
	ncols := int(d.U32())
	nrows := int(d.U32())
	if d.Err() != nil {
		return r.conn.fatal(d.Err())
	}
	r.batch = r.batch[:0]
	r.pos = 0
	for i := 0; i < nrows; i++ {
		row := make([]value.Value, ncols)
		for j := 0; j < ncols; j++ {
			row[j] = d.Val()
		}
		if d.Err() != nil {
			return r.conn.fatal(d.Err())
		}
		r.batch = append(r.batch, row)
	}
	return nil
}

// Next advances to the next row, fetching the next batch over the wire
// when the buffered one is drained.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	for r.pos >= len(r.batch) {
		if r.done {
			return false
		}
		var e server.Enc
		e.U32(r.cursorID)
		e.U32(0)
		if err := r.conn.send(server.FrameFetch, e.Bytes()); err != nil {
			r.err = err
			return false
		}
		if err := r.readBatch(); err != nil {
			return false
		}
	}
	r.pos++
	return true
}

// Values returns the current row.
func (r *Rows) Values() []value.Value {
	if r.pos == 0 || r.pos > len(r.batch) {
		return nil
	}
	return r.batch[r.pos-1]
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Err reports the first error the stream hit.
func (r *Rows) Err() error {
	if we, ok := r.err.(*server.WireError); ok {
		return we
	}
	return r.err
}

// Close releases the server-side cursor (a no-op when the stream already
// finished, since the server auto-closes exhausted cursors).
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done || r.err != nil {
		return nil
	}
	var e server.Enc
	e.U8(1)
	e.U32(r.cursorID)
	return r.conn.roundTrip(server.FrameClose, e.Bytes(), server.FrameCloseOK, nil)
}

// QueryAll is the convenience bulk form.
func (s *Stmt) QueryAll(args ...value.Value) ([][]value.Value, error) {
	rows, err := s.Query(args...)
	if err != nil {
		return nil, err
	}
	var out [][]value.Value
	for rows.Next() {
		row := rows.Values()
		cp := make([]value.Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return out, rows.Close()
}

// Exec is the one-shot write convenience: Prepare, Exec, Close.
func (c *Conn) Exec(lang Lang, src string, args ...value.Value) (Result, error) {
	s, err := c.Prepare(lang, src)
	if err != nil {
		return Result{}, err
	}
	res, err := s.Exec(args...)
	if err != nil {
		return Result{}, err
	}
	return res, s.Close()
}

// Begin opens the connection's transaction, returning the snapshot
// generation it reads from. Statements prepared before BEGIN remain
// usable inside the transaction: the server re-resolves them against
// the transaction's overlay.
func (c *Conn) Begin() (uint64, error) {
	var gen uint64
	err := c.roundTrip(server.FrameBegin, nil, server.FrameBeginOK, func(d *server.Dec) error {
		gen = d.U64()
		return nil
	})
	return gen, err
}

// Commit publishes the connection's transaction, returning the new
// commit generation. A first-committer-wins loss surfaces as a
// *server.WireError with code CONFLICT; either way the transaction is
// over.
func (c *Conn) Commit() (uint64, error) {
	var gen uint64
	err := c.roundTrip(server.FrameCommit, nil, server.FrameCommitOK, func(d *server.Dec) error {
		gen = d.U64()
		return nil
	})
	return gen, err
}

// Rollback discards the connection's transaction.
func (c *Conn) Rollback() error {
	return c.roundTrip(server.FrameRollback, nil, server.FrameRollbackOK, nil)
}

// Query is the one-shot convenience: Prepare, Query, drain, Close.
func (c *Conn) Query(lang Lang, src string, args ...value.Value) ([][]value.Value, []string, error) {
	s, err := c.Prepare(lang, src)
	if err != nil {
		return nil, nil, err
	}
	rows, err := s.QueryAll(args...)
	if err != nil {
		return nil, nil, err
	}
	return rows, s.cols, s.Close()
}

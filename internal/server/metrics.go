package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond histogram
// buckets: bucket i counts queries with latency at most 2^i µs (and, for
// i > 0, more than 2^(i-1) µs), the last bucket absorbing everything
// slower (+Inf upper bound, ~4.2s and up in the one below it).
const latencyBuckets = 24

// Metrics aggregates server-side counters. All fields are atomics so
// sessions update them lock-free on the hot path; Snapshot reads them
// for the expvar-style endpoint. The statement-cache hit rate comes from
// the engine's own DBStats and is merged in by Server.Snapshot.
type Metrics struct {
	ActiveSessions atomic.Int64
	TotalSessions  atomic.Uint64
	FramesRead     atomic.Uint64
	FramesWritten  atomic.Uint64

	StatementsPrepared atomic.Uint64
	QueriesExecuted    atomic.Uint64
	RowsStreamed       atomic.Uint64
	FetchBatches       atomic.Uint64

	StatementErrors atomic.Uint64 // parse/bind/execute/fetch errors
	ProtocolErrors  atomic.Uint64 // malformed frames (connection-fatal)
	PanicsRecovered atomic.Uint64 // engine.PanicError surfaced to a client

	latCount atomic.Uint64
	latSumNs atomic.Uint64
	latHist  [latencyBuckets]atomic.Uint64
}

// ObserveQuery records one query execution latency into the histogram.
// The duration is ceiled to whole microseconds before bucketing, so a
// 1.5µs query lands in the ≤2µs bucket — each bucket's advertised upper
// bound is exact, which keeps the JSON and Prometheus renderings of one
// histogram consistent by construction.
func (m *Metrics) ObserveQuery(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.latCount.Add(1)
	m.latSumNs.Add(uint64(d))
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	b := 0
	if us > 1 {
		// Smallest b with us <= 2^b. bits.Len64 is the log2 ceiling:
		// us=2 → 1, us=3..4 → 2, us=5..8 → 3, …
		b = bits.Len64(us - 1)
	}
	if b > latencyBuckets-1 {
		b = latencyBuckets - 1
	}
	m.latHist[b].Add(1)
}

// LatencyBucket describes one histogram bucket in a snapshot. Buckets
// are CUMULATIVE (Prometheus-style): Count is the number of queries at
// or under the bound, and every bucket is present whether or not it is
// empty, so the JSON endpoint and the Prometheus exposition are two
// renderings of the identical data.
type LatencyBucket struct {
	UpToMicros uint64 `json:"up_to_us"` // inclusive upper bound; 0 = +Inf
	Count      uint64 `json:"count"`    // cumulative count at or under the bound
}

// Snapshot is the JSON shape of the metrics endpoint.
type Snapshot struct {
	ActiveSessions int64  `json:"active_sessions"`
	TotalSessions  uint64 `json:"total_sessions"`
	FramesRead     uint64 `json:"frames_read"`
	FramesWritten  uint64 `json:"frames_written"`

	StatementsPrepared uint64  `json:"statements_prepared"`
	StmtCachePrepares  uint64  `json:"stmt_cache_prepares"`
	StmtCacheHits      uint64  `json:"stmt_cache_hits"`
	StmtCacheHitRate   float64 `json:"stmt_cache_hit_rate"`
	StmtCacheLen       int     `json:"stmt_cache_len"`
	StmtCacheEvictions uint64  `json:"stmt_cache_evictions"`

	QueriesExecuted uint64 `json:"queries_executed"`
	RowsStreamed    uint64 `json:"rows_streamed"`
	FetchBatches    uint64 `json:"fetch_batches"`

	StatementErrors uint64 `json:"statement_errors"`
	ProtocolErrors  uint64 `json:"protocol_errors"`
	PanicsRecovered uint64 `json:"panics_recovered"`

	// Engine execution counters (merged from engine.DBStats).
	ExecQueries     uint64 `json:"exec_queries"`
	ExecDML         uint64 `json:"exec_dml"`
	ExecDDL         uint64 `json:"exec_ddl"`
	Conflicts       uint64 `json:"conflicts"`
	ConflictRetries uint64 `json:"conflict_retries"`
	TxBegins        uint64 `json:"tx_begins"`
	TxCommits       uint64 `json:"tx_commits"`
	TxRollbacks     uint64 `json:"tx_rollbacks"`
	SlowQueries     uint64 `json:"slow_queries"`

	// Store commit-path counters (merged from relation.StoreStats).
	StoreGeneration uint64 `json:"store_generation"`
	StoreCommits    uint64 `json:"store_commits"`
	StoreConflicts  uint64 `json:"store_conflicts"`

	// Durable-backend counters (merged from storage.Stats); nil when the
	// server fronts an in-memory DB, so RAM deployments expose no
	// misleading zero-valued storage series.
	Storage *StorageSnapshot `json:"storage,omitempty"`

	QueryCount     uint64          `json:"query_count"`
	QueryMeanMs    float64         `json:"query_mean_ms"`
	QuerySumMs     float64         `json:"query_sum_ms"`
	QueryLatencyUs []LatencyBucket `json:"query_latency_us"`
}

// StorageSnapshot is the JSON shape of the durable backend's counters.
type StorageSnapshot struct {
	WALRecords       uint64  `json:"wal_records"`
	WALBytes         uint64  `json:"wal_bytes"`
	Checkpoints      uint64  `json:"checkpoints"`
	CheckpointGen    uint64  `json:"checkpoint_generation"`
	BlockCacheHits   uint64  `json:"block_cache_hits"`
	BlockCacheMisses uint64  `json:"block_cache_misses"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
}

// snapshot reads the counters (engine cache stats merged by the caller).
func (m *Metrics) snapshot() Snapshot {
	s := Snapshot{
		ActiveSessions:     m.ActiveSessions.Load(),
		TotalSessions:      m.TotalSessions.Load(),
		FramesRead:         m.FramesRead.Load(),
		FramesWritten:      m.FramesWritten.Load(),
		StatementsPrepared: m.StatementsPrepared.Load(),
		QueriesExecuted:    m.QueriesExecuted.Load(),
		RowsStreamed:       m.RowsStreamed.Load(),
		FetchBatches:       m.FetchBatches.Load(),
		StatementErrors:    m.StatementErrors.Load(),
		ProtocolErrors:     m.ProtocolErrors.Load(),
		PanicsRecovered:    m.PanicsRecovered.Load(),
		QueryCount:         m.latCount.Load(),
		QuerySumMs:         float64(m.latSumNs.Load()) / 1e6,
	}
	if s.QueryCount > 0 {
		s.QueryMeanMs = s.QuerySumMs / float64(s.QueryCount)
	}
	s.QueryLatencyUs = make([]LatencyBucket, latencyBuckets)
	var cum uint64
	for i := 0; i < latencyBuckets; i++ {
		cum += m.latHist[i].Load()
		up := uint64(1) << uint(i)
		if i == latencyBuckets-1 {
			up = 0 // +Inf
		}
		s.QueryLatencyUs[i] = LatencyBucket{UpToMicros: up, Count: cum}
	}
	return s
}

// MetricsHandler serves the server's metrics snapshot. The default
// response is the Prometheus text exposition format
// (text/plain; version=0.0.4); JSON is served on ?format=json or an
// application/json Accept header — the same snapshot either way.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			e := json.NewEncoder(w)
			e.SetIndent("", "  ")
			_ = e.Encode(s.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, s.Snapshot())
	})
}

// wantsJSON selects the JSON rendering of the metrics endpoint.
func wantsJSON(r *http.Request) bool {
	if r == nil {
		return false
	}
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// promMetric is one exposed series: HELP, TYPE, and a single sample.
func promMetric(w io.Writer, name, kind, help string, value string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, kind, name, value)
}

func promCounter(w io.Writer, name, help string, v uint64) {
	promMetric(w, name, "counter", help, strconv.FormatUint(v, 10))
}

func promGauge(w io.Writer, name, help string, v int64) {
	promMetric(w, name, "gauge", help, strconv.FormatInt(v, 10))
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). The latency histogram's cumulative buckets are
// the snapshot's own representation, so the two formats cannot drift.
func writePrometheus(w io.Writer, s Snapshot) {
	promGauge(w, "arcserve_active_sessions", "Connections currently open.", s.ActiveSessions)
	promCounter(w, "arcserve_sessions_total", "Connections accepted since start.", s.TotalSessions)
	promCounter(w, "arcserve_frames_read_total", "Protocol frames read.", s.FramesRead)
	promCounter(w, "arcserve_frames_written_total", "Protocol frames written.", s.FramesWritten)

	promCounter(w, "arcserve_statements_prepared_total", "Prepare frames answered successfully.", s.StatementsPrepared)
	promCounter(w, "arcserve_stmt_cache_prepares_total", "Engine Prepare calls.", s.StmtCachePrepares)
	promCounter(w, "arcserve_stmt_cache_hits_total", "Prepares served from the statement cache.", s.StmtCacheHits)
	promCounter(w, "arcserve_stmt_cache_evictions_total", "Statements evicted past the cache capacity.", s.StmtCacheEvictions)
	promGauge(w, "arcserve_stmt_cache_entries", "Statements currently cached.", int64(s.StmtCacheLen))

	promCounter(w, "arcserve_queries_executed_total", "Execute and Exec frames answered successfully.", s.QueriesExecuted)
	promCounter(w, "arcserve_rows_streamed_total", "Rows shipped in Fetch batches.", s.RowsStreamed)
	promCounter(w, "arcserve_fetch_batches_total", "Fetch batches shipped.", s.FetchBatches)

	promCounter(w, "arcserve_statement_errors_total", "Statement-level errors answered to clients.", s.StatementErrors)
	promCounter(w, "arcserve_protocol_errors_total", "Connection-fatal protocol errors.", s.ProtocolErrors)
	promCounter(w, "arcserve_panics_recovered_total", "Engine panics recovered into errors.", s.PanicsRecovered)

	promCounter(w, "arcserve_exec_query_total", "Engine query executions.", s.ExecQueries)
	promCounter(w, "arcserve_exec_dml_total", "Engine DML executions.", s.ExecDML)
	promCounter(w, "arcserve_exec_ddl_total", "Engine DDL executions.", s.ExecDDL)
	promCounter(w, "arcserve_conflicts_total", "First-committer-wins conflicts seen by the engine.", s.Conflicts)
	promCounter(w, "arcserve_conflict_retries_total", "Autocommit retries after a conflict.", s.ConflictRetries)
	promCounter(w, "arcserve_tx_begins_total", "Transactions opened.", s.TxBegins)
	promCounter(w, "arcserve_tx_commits_total", "Transactions committed.", s.TxCommits)
	promCounter(w, "arcserve_tx_rollbacks_total", "Transactions rolled back.", s.TxRollbacks)
	promCounter(w, "arcserve_slow_queries_total", "Statements recorded by the slow-query log.", s.SlowQueries)

	promGauge(w, "arcserve_store_generation", "Current MVCC commit generation.", int64(s.StoreGeneration))
	promCounter(w, "arcserve_store_commits_total", "Snapshots published by the store.", s.StoreCommits)
	promCounter(w, "arcserve_store_conflicts_total", "Commits rejected by the store.", s.StoreConflicts)

	if st := s.Storage; st != nil {
		promCounter(w, "arcserve_wal_records_total", "WAL records appended.", st.WALRecords)
		promCounter(w, "arcserve_wal_bytes_total", "WAL bytes appended.", st.WALBytes)
		promCounter(w, "arcserve_checkpoints_total", "Checkpoints written.", st.Checkpoints)
		promGauge(w, "arcserve_checkpoint_generation", "Generation of the newest checkpoint.", int64(st.CheckpointGen))
		promCounter(w, "arcserve_block_cache_hits_total", "Segment block cache hits.", st.BlockCacheHits)
		promCounter(w, "arcserve_block_cache_misses_total", "Segment block cache misses.", st.BlockCacheMisses)
		promMetric(w, "arcserve_recovery_duration_seconds", "gauge", "Wall time the last startup spent recovering.",
			strconv.FormatFloat(st.RecoverySeconds, 'g', -1, 64))
	}

	name := "arcserve_query_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Query execution latency.\n# TYPE %s histogram\n", name, name)
	var infCount uint64
	for _, b := range s.QueryLatencyUs {
		le := "+Inf"
		if b.UpToMicros != 0 {
			le = strconv.FormatFloat(float64(b.UpToMicros)/1e6, 'g', -1, 64)
		} else {
			infCount = b.Count
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(s.QuerySumMs/1e3, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, infCount)
}

package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond histogram
// buckets: bucket i counts queries with latency in [2^i, 2^(i+1)) µs,
// the last bucket absorbing everything slower (~8.4s and up).
const latencyBuckets = 24

// Metrics aggregates server-side counters. All fields are atomics so
// sessions update them lock-free on the hot path; Snapshot reads them
// for the expvar-style endpoint. The statement-cache hit rate comes from
// the engine's own DBStats and is merged in by Server.Snapshot.
type Metrics struct {
	ActiveSessions atomic.Int64
	TotalSessions  atomic.Uint64
	FramesRead     atomic.Uint64
	FramesWritten  atomic.Uint64

	StatementsPrepared atomic.Uint64
	QueriesExecuted    atomic.Uint64
	RowsStreamed       atomic.Uint64
	FetchBatches       atomic.Uint64

	StatementErrors atomic.Uint64 // parse/bind/execute/fetch errors
	ProtocolErrors  atomic.Uint64 // malformed frames (connection-fatal)
	PanicsRecovered atomic.Uint64 // engine.PanicError surfaced to a client

	latCount atomic.Uint64
	latSumNs atomic.Uint64
	latHist  [latencyBuckets]atomic.Uint64
}

// ObserveQuery records one query execution latency into the histogram.
func (m *Metrics) ObserveQuery(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.latCount.Add(1)
	m.latSumNs.Add(uint64(d))
	us := uint64(d / time.Microsecond)
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	m.latHist[b].Add(1)
}

// LatencyBucket describes one histogram bucket in a snapshot.
type LatencyBucket struct {
	UpToMicros uint64 `json:"up_to_us"` // exclusive upper bound; 0 = +inf
	Count      uint64 `json:"count"`
}

// Snapshot is the JSON shape of the metrics endpoint.
type Snapshot struct {
	ActiveSessions int64  `json:"active_sessions"`
	TotalSessions  uint64 `json:"total_sessions"`
	FramesRead     uint64 `json:"frames_read"`
	FramesWritten  uint64 `json:"frames_written"`

	StatementsPrepared uint64  `json:"statements_prepared"`
	StmtCachePrepares  uint64  `json:"stmt_cache_prepares"`
	StmtCacheHits      uint64  `json:"stmt_cache_hits"`
	StmtCacheHitRate   float64 `json:"stmt_cache_hit_rate"`
	StmtCacheLen       int     `json:"stmt_cache_len"`

	QueriesExecuted uint64 `json:"queries_executed"`
	RowsStreamed    uint64 `json:"rows_streamed"`
	FetchBatches    uint64 `json:"fetch_batches"`

	StatementErrors uint64 `json:"statement_errors"`
	ProtocolErrors  uint64 `json:"protocol_errors"`
	PanicsRecovered uint64 `json:"panics_recovered"`

	QueryCount     uint64          `json:"query_count"`
	QueryMeanMs    float64         `json:"query_mean_ms"`
	QueryLatencyUs []LatencyBucket `json:"query_latency_us"`
}

// snapshot reads the counters (engine cache stats merged by the caller).
func (m *Metrics) snapshot() Snapshot {
	s := Snapshot{
		ActiveSessions:     m.ActiveSessions.Load(),
		TotalSessions:      m.TotalSessions.Load(),
		FramesRead:         m.FramesRead.Load(),
		FramesWritten:      m.FramesWritten.Load(),
		StatementsPrepared: m.StatementsPrepared.Load(),
		QueriesExecuted:    m.QueriesExecuted.Load(),
		RowsStreamed:       m.RowsStreamed.Load(),
		FetchBatches:       m.FetchBatches.Load(),
		StatementErrors:    m.StatementErrors.Load(),
		ProtocolErrors:     m.ProtocolErrors.Load(),
		PanicsRecovered:    m.PanicsRecovered.Load(),
		QueryCount:         m.latCount.Load(),
	}
	if s.QueryCount > 0 {
		s.QueryMeanMs = float64(m.latSumNs.Load()) / float64(s.QueryCount) / 1e6
	}
	bound := uint64(2)
	for i := 0; i < latencyBuckets; i++ {
		if c := m.latHist[i].Load(); c > 0 {
			up := bound
			if i == latencyBuckets-1 {
				up = 0
			}
			s.QueryLatencyUs = append(s.QueryLatencyUs, LatencyBucket{UpToMicros: up, Count: c})
		}
		bound <<= 1
	}
	return s
}

// MetricsHandler serves the server's metrics snapshot as indented JSON —
// the expvar-style capacity-planning endpoint (mount it wherever the
// operator wants, e.g. /metrics).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		e := json.NewEncoder(w)
		e.SetIndent("", "  ")
		_ = e.Encode(s.Snapshot())
	})
}

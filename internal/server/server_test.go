package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/value"
)

// testDB builds a DB with a small table, a chain for recursion, and two
// bigger relations for slow cross joins.
func testDB() *engine.DB {
	r := relation.New("R", "A", "B")
	for i := 1; i <= 5; i++ {
		r.Add(i, i*10)
	}
	p := relation.New("P", "s", "t")
	for i := 0; i < 20; i++ {
		p.Add(i, i+1)
	}
	big1 := relation.New("Big1", "X")
	big2 := relation.New("Big2", "Y")
	for i := 0; i < 1000; i++ {
		big1.Add(i)
		big2.Add(i)
	}
	return engine.Open(r, p, big1, big2)
}

// startServer runs a server on a loopback port, shut down at cleanup.
// The returned address comes from the listener directly, so tests never
// race the Serve goroutine's bookkeeping.
func startServer(t testing.TB, db *engine.DB, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve = %v, want server.ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestSQLRoundTrip pins the basic Prepare/Bind/Execute/Fetch cycle with
// a parameterized SQL statement.
func TestSQLRoundTrip(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	stmt, err := c.Prepare(client.LangSQL, "select R.A, R.B from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Columns(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Columns = %v", got)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}
	rows, err := stmt.QueryAll(value.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 3 || rows[0][1].AsInt() != 30 {
		t.Fatalf("rows = %v", rows)
	}
	// Re-execute with a different binding through the same handle.
	rows, err = stmt.QueryAll(value.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsInt() != 50 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestAllThreeLanguages runs the paper's transitive-closure equivalence
// through the wire: SQL WITH RECURSIVE, recursive ARC, and Datalog must
// agree on the same server.
func TestAllThreeLanguages(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	sqlRows, _, err := c.Query(client.LangSQL,
		"with recursive A (s, t) as (select P.s, P.t from P union select P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A")
	if err != nil {
		t.Fatalf("sql: %v", err)
	}
	arcRows, _, err := c.Query(client.LangARC,
		"{A(s, t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}")
	if err != nil {
		t.Fatalf("arc: %v", err)
	}
	dlRows, _, err := c.Query(client.LangDatalog, "A(x,y) :- P(x,y). A(x,y) :- P(x,z), A(z,y).")
	if err != nil {
		t.Fatalf("datalog: %v", err)
	}
	want := 20 * 21 / 2 // TC of a 20-edge chain
	if len(sqlRows) != want || len(arcRows) != want || len(dlRows) != want {
		t.Fatalf("TC sizes: sql=%d arc=%d datalog=%d, want %d", len(sqlRows), len(arcRows), len(dlRows), want)
	}
	key := func(rows [][]value.Value) map[string]bool {
		m := map[string]bool{}
		for _, r := range rows {
			m[fmt.Sprintf("%v|%v", r[0], r[1])] = true
		}
		return m
	}
	ks, ka, kd := key(sqlRows), key(arcRows), key(dlRows)
	for k := range ks {
		if !ka[k] || !kd[k] {
			t.Fatalf("tuple %s missing from a front end", k)
		}
	}
}

// TestStreamingBatches pins fetch-sized batching: a result bigger than
// one batch streams across multiple Rows frames.
func TestStreamingBatches(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{FetchRows: 16})
	c := dial(t, addr)
	stmt, err := c.Prepare(client.LangSQL, "select Big1.X from Big1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("streamed %d rows, want 1000", n)
	}
	if got := srv.Metrics().FetchBatches.Load(); got < 1000/16 {
		t.Fatalf("FetchBatches = %d, want >= %d", got, 1000/16)
	}
}

// TestStatementErrorKeepsSession pins the error taxonomy: a parse error
// is a statement error, not a connection error.
func TestStatementErrorKeepsSession(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	_, err := c.Prepare(client.LangSQL, "select from where")
	we, ok := err.(*server.WireError)
	if !ok || we.Code != server.CodeParse {
		t.Fatalf("bad SQL error = %v, want PARSE server.WireError", err)
	}
	// Same connection still serves.
	rows, _, err := c.Query(client.LangSQL, "select R.A from R")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestUnknownHandles pins UNKNOWN_STMT / UNKNOWN_CURSOR statement errors.
func TestUnknownHandles(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello(t, nc)
	var bind server.Enc
	bind.U32(1) // cursor
	bind.U32(99)
	bind.U32(0)
	send(t, nc, server.FrameBind, bind.Bytes())
	expectErrorCode(t, nc, server.CodeUnknownStmt)
	var fetch server.Enc
	fetch.U32(7)
	fetch.U32(0)
	send(t, nc, server.FrameFetch, fetch.Bytes())
	expectErrorCode(t, nc, server.CodeUnknownCursor)
}

// TestPipelinedFrames pins the no-stall contract at the frame level: the
// whole Hello+Prepare+Bind+Execute+Fetch conversation goes out in one
// write, and the five responses come back in order.
func TestPipelinedFrames(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var buf strings.Builder
	var h server.Enc
	h.U32(server.ProtocolVersion)
	h.Str("pipeliner")
	server.WriteFrame(&buf, server.FrameHello, h.Bytes())
	var p server.Enc
	p.U32(1)
	p.U8(0) // sql
	p.Str("")
	p.Str("select R.A from R where R.B = $1")
	server.WriteFrame(&buf, server.FramePrepare, p.Bytes())
	var bind server.Enc
	bind.U32(2)
	bind.U32(1)
	bind.U32(1)
	bind.Val(value.Int(40))
	server.WriteFrame(&buf, server.FrameBind, bind.Bytes())
	var ex server.Enc
	ex.U32(2)
	server.WriteFrame(&buf, server.FrameExecute, ex.Bytes())
	var f server.Enc
	f.U32(2)
	f.U32(0)
	server.WriteFrame(&buf, server.FrameFetch, f.Bytes())
	if _, err := nc.Write([]byte(buf.String())); err != nil {
		t.Fatal(err)
	}

	for _, want := range []byte{server.FrameHelloOK, server.FramePrepareOK, server.FrameBindOK, server.FrameExecuteOK, server.FrameRows} {
		typ, body, err := server.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if typ != want {
			t.Fatalf("response frame 0x%02x, want 0x%02x", typ, want)
		}
		if typ == server.FrameRows {
			d := server.NewDec(body)
			if d.U32() != 2 || d.U8() != 1 /* done */ || d.U32() != 1 || d.U32() != 1 {
				t.Fatalf("Rows header mismatch")
			}
			if v := d.Val(); v.AsInt() != 4 {
				t.Fatalf("row = %v, want 4", v)
			}
			if err := d.Done(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentSessions runs parallel sessions mixing the three
// languages over one shared DB.
func TestConcurrentSessions(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{})
	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt, err := c.Prepare(client.LangSQL, "select R.A from R where R.A = $1")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 20; j++ {
				want := int64(j%5 + 1)
				rows, err := stmt.QueryAll(value.Int(want))
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					return
				}
				if len(rows) != 1 || rows[0][0].AsInt() != want {
					errs <- fmt.Errorf("session %d: rows = %v", i, rows)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits := srv.Snapshot().StmtCacheHits; hits < sessions-1 {
		t.Fatalf("cache hits = %d, want >= %d (sessions share one statement)", hits, sessions-1)
	}
}

// TestShutdownCancelsInFlight pins graceful shutdown: a long-running
// streamed query is cancelled through the context plumbing, the client
// gets a structured error, and Shutdown returns.
func TestShutdownCancelsInFlight(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{FetchRows: 8})
	c := dial(t, addr)
	// A million-row cross join, streamed 8 rows per fetch: plenty of
	// time to shut down mid-cursor.
	stmt, err := c.Prepare(client.LangSQL, "select Big1.X, Big2.Y from Big1, Big2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	// Drain: the in-flight cursor must fail with a structured error, not
	// hang or crash.
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("cursor survived shutdown with no error")
	}
}

// TestMetricsEndpoint pins the expvar-style JSON shape.
func TestMetricsEndpoint(t *testing.T) {
	srv, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Query(client.LangSQL, "select R.A from R"); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.QueriesExecuted != 3 || snap.RowsStreamed != 15 {
		t.Fatalf("snapshot = %+v, want 3 queries / 15 rows", snap)
	}
	if snap.ActiveSessions != 1 || snap.TotalSessions != 1 {
		t.Fatalf("sessions = %d active / %d total", snap.ActiveSessions, snap.TotalSessions)
	}
	if snap.StmtCachePrepares != 3 || snap.StmtCacheHits != 2 || snap.StmtCacheHitRate < 0.6 {
		t.Fatalf("cache stats = %+v", snap)
	}
	if snap.QueryCount != 3 || len(snap.QueryLatencyUs) == 0 {
		t.Fatalf("latency histogram missing: %+v", snap)
	}
	if snap.ExecQueries != 3 {
		t.Fatalf("ExecQueries = %d, want 3", snap.ExecQueries)
	}
	// Buckets are cumulative: the +Inf (last) bucket must equal the count.
	last := snap.QueryLatencyUs[len(snap.QueryLatencyUs)-1]
	if last.UpToMicros != 0 || last.Count != snap.QueryCount {
		t.Fatalf("last bucket = %+v, want +Inf with count %d", last, snap.QueryCount)
	}
	for i := 1; i < len(snap.QueryLatencyUs); i++ {
		if snap.QueryLatencyUs[i].Count < snap.QueryLatencyUs[i-1].Count {
			t.Fatalf("bucket counts not monotone at %d: %+v", i, snap.QueryLatencyUs)
		}
	}
}

// --- raw-frame test helpers ---

func hello(t *testing.T, nc net.Conn) {
	t.Helper()
	var h server.Enc
	h.U32(server.ProtocolVersion)
	h.Str("raw")
	send(t, nc, server.FrameHello, h.Bytes())
	typ, _, err := server.ReadFrame(nc)
	if err != nil || typ != server.FrameHelloOK {
		t.Fatalf("hello: typ=0x%02x err=%v", typ, err)
	}
}

func send(t *testing.T, nc net.Conn, typ byte, payload []byte) {
	t.Helper()
	if err := server.WriteFrame(nc, typ, payload); err != nil {
		t.Fatal(err)
	}
}

func expectErrorCode(t *testing.T, nc net.Conn, code string) {
	t.Helper()
	typ, body, err := server.ReadFrame(nc)
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if typ != server.FrameError {
		t.Fatalf("frame 0x%02x, want Error", typ)
	}
	d := server.NewDec(body)
	got := d.Str()
	msg := d.Str()
	if got != code {
		t.Fatalf("error code %s (%s), want %s", got, msg, code)
	}
}

package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Options tune a Server. The zero value is usable.
type Options struct {
	// FetchRows is the row-batch size used when a Fetch frame asks for 0
	// rows. Defaults to 256.
	FetchRows int
	// MaxStmts and MaxCursors cap what one session may hold open —
	// the resource defense against a hostile client preparing
	// statements in a loop. Defaults: 256 statements, 64 cursors.
	MaxStmts   int
	MaxCursors int
	// Logf receives connection-level diagnostics (recovered panics,
	// protocol errors). Nil discards them.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over an engine.DB. All sessions share
// the one DB (and therefore its statement cache and catalog); each
// session owns its prepared-statement handles and cursors, so one
// client's mistakes — or hostility — never disturb another's.
type Server struct {
	db      *engine.DB
	opts    Options
	metrics Metrics

	// baseCtx is the parent of every session's query context; Shutdown
	// cancels it, aborting in-flight queries through the engine's
	// existing context plumbing.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
}

// New builds a server over db.
func New(db *engine.DB, opts Options) *Server {
	if opts.FetchRows <= 0 {
		opts.FetchRows = 256
	}
	if opts.MaxStmts <= 0 {
		opts.MaxStmts = 256
	}
	if opts.MaxCursors <= 0 {
		opts.MaxCursors = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:      db,
		opts:    opts,
		baseCtx: ctx,
		cancel:  cancel,
		conns:   map[net.Conn]struct{}{},
	}
}

// DB returns the engine the server fronts.
func (s *Server) DB() *engine.DB { return s.db }

// Metrics returns the live server counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Snapshot merges the server counters with the engine's statement-cache
// stats into the metrics-endpoint shape.
func (s *Server) Snapshot() Snapshot {
	snap := s.metrics.snapshot()
	st := s.db.Stats()
	snap.StmtCachePrepares = st.Prepares
	snap.StmtCacheHits = st.CacheHits
	snap.StmtCacheLen = st.CacheLen
	snap.StmtCacheEvictions = st.CacheEvictions
	if st.Prepares > 0 {
		snap.StmtCacheHitRate = float64(st.CacheHits) / float64(st.Prepares)
	}
	snap.ExecQueries = st.QueryExecs
	snap.ExecDML = st.DMLExecs
	snap.ExecDDL = st.DDLExecs
	snap.Conflicts = st.Conflicts
	snap.ConflictRetries = st.ConflictRetries
	snap.TxBegins = st.TxBegins
	snap.TxCommits = st.TxCommits
	snap.TxRollbacks = st.TxRollbacks
	snap.SlowQueries = st.SlowQueries
	snap.StoreGeneration = st.Store.Gen
	snap.StoreCommits = st.Store.Commits
	snap.StoreConflicts = st.Store.Conflicts
	if sg := st.Storage; sg != nil {
		snap.Storage = &StorageSnapshot{
			WALRecords:       sg.WALRecords,
			WALBytes:         sg.WALBytes,
			Checkpoints:      sg.Checkpoints,
			CheckpointGen:    sg.CheckpointGen,
			BlockCacheHits:   sg.BlockCacheHits,
			BlockCacheMisses: sg.BlockCacheMisses,
			RecoverySeconds:  sg.RecoveryDuration.Seconds(),
		}
	}
	return snap
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http's contract.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown. Each connection gets
// its own session goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	// A Shutdown that raced ahead of Serve never saw the listener; honor
	// it here instead of accepting forever.
	if s.draining.Load() {
		ln.Close()
		return ErrServerClosed
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, cancel every in-flight
// query through the context plumbing (sessions answer their current
// frame with a SHUTDOWN/EXECUTE error), and wait for sessions to exit —
// up to ctx's deadline, after which remaining connections are closed
// forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// stmtHandle is one session-scoped prepared statement: the source to
// re-prepare from plus the engine statement it currently resolves to.
// The engine compiles statements against immutable snapshots, so a
// handle compiled at one epoch would silently keep answering from that
// snapshot forever; the session re-resolves the handle (a statement-
// cache hit in the common case) whenever its epoch no longer matches
// the session's — which also moves handles in and out of transactions.
type stmtHandle struct {
	lang  engine.Lang
	pred  string
	src   string
	stmt  *engine.Stmt
	epoch engine.SessionEpoch
}

// cursor is one open result stream: the bound portal (statement + args)
// and, once Execute ran, the engine cursor it streams from. elapsed
// accumulates Execute plus every Fetch pull, so the latency histogram
// reflects real execution time even for lazily-streamed plans.
type cursor struct {
	h       *stmtHandle
	args    []any
	rows    *engine.Rows
	cols    []string
	elapsed time.Duration
}

// session is one connection's state: the frames loop plus the statement
// and cursor handles this client owns.
type session struct {
	srv  *Server
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	ctx  context.Context

	// eng is the connection's engine session: transaction state lives
	// here, so BEGIN/COMMIT/ROLLBACK (frames or SQL) scope to this
	// client only.
	eng *engine.Session

	stmts   map[uint32]*stmtHandle
	cursors map[uint32]*cursor
	greeted bool
	// werr is the first response-write failure (an oversized outgoing
	// frame, typically). The protocol is strictly positional, so a
	// dropped response would desync the stream — the session must die
	// instead of leaving the client waiting forever.
	werr error
}

// serveConn runs one session to completion. The deferred recover is the
// outermost backstop: even a bug in the server's own frame handling
// costs one connection, never the process.
func (s *Server) serveConn(conn net.Conn) {
	s.metrics.ActiveSessions.Add(1)
	s.metrics.TotalSessions.Add(1)
	// Wake the blocking frame read when Shutdown cancels the base
	// context, so idle sessions drain promptly.
	stopWatch := context.AfterFunc(s.baseCtx, func() {
		conn.SetReadDeadline(time.Now())
	})
	sess := &session{
		srv:     s,
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		ctx:     s.baseCtx,
		eng:     s.db.NewSession(),
		stmts:   map[uint32]*stmtHandle{},
		cursors: map[uint32]*cursor{},
	}
	defer func() {
		if p := recover(); p != nil {
			s.metrics.PanicsRecovered.Add(1)
			s.logf("server: session panic recovered: %v", p)
		}
		stopWatch()
		sess.closeAllCursors()
		sess.eng.Close() // roll back any transaction the client abandoned
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.ActiveSessions.Add(-1)
		s.wg.Done()
	}()
	sess.loop()
}

// loop reads and handles frames in order, answering in order — the
// pipelining contract. The writer is flushed only when no further
// request is already buffered, so a pipelined batch pays one syscall per
// direction instead of one per frame.
func (sess *session) loop() {
	for {
		if sess.r.Buffered() == 0 {
			if err := sess.w.Flush(); err != nil {
				return
			}
		}
		typ, payload, err := ReadFrame(sess.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return // clean disconnect on a frame boundary
			}
			if sess.srv.baseCtx.Err() != nil {
				sess.sendError(&WireError{Code: CodeShutdown, Message: "server shutting down"})
				sess.w.Flush()
				return
			}
			sess.srv.metrics.ProtocolErrors.Add(1)
			var we *WireError
			if errors.As(err, &we) {
				sess.sendError(we)
			} else {
				sess.sendError(errProtocol("reading frame: %v", err))
			}
			sess.w.Flush()
			return
		}
		sess.srv.metrics.FramesRead.Add(1)
		err = sess.handle(typ, payload)
		if err == nil && sess.werr != nil {
			err = errProtocol("writing response: %v", sess.werr)
		}
		if err != nil {
			// Only protocol-level errors are connection-fatal;
			// statement-level failures were already answered with an
			// Error frame and the session continues.
			sess.srv.metrics.ProtocolErrors.Add(1)
			var we *WireError
			if !errors.As(err, &we) {
				we = errProtocol("%v", err)
			}
			sess.sendError(we)
			sess.w.Flush()
			return
		}
	}
}

// send writes one response frame into the buffered writer. A write
// failure (an oversized outgoing frame — broken pipes surface at flush)
// is recorded on werr: the response was dropped, so the positional
// stream is broken and the loop must close the connection.
func (sess *session) send(typ byte, payload []byte) {
	if err := WriteFrame(sess.w, typ, payload); err != nil {
		if sess.werr == nil {
			sess.werr = err
		}
		return
	}
	sess.srv.metrics.FramesWritten.Add(1)
}

// sendError answers the current request with a structured Error frame.
func (sess *session) sendError(we *WireError) {
	var e Enc
	e.Str(we.Code)
	e.Str(we.Message)
	sess.send(FrameError, e.Bytes())
}

// stmtError classifies err under code and answers it, keeping the
// session alive. Recovered engine panics are re-coded INTERNAL so the
// operator can tell grammar bugs from ordinary bad SQL.
func (sess *session) stmtError(code string, err error) {
	sess.srv.metrics.StatementErrors.Add(1)
	var pe *engine.PanicError
	if errors.As(err, &pe) {
		sess.srv.metrics.PanicsRecovered.Add(1)
		sess.srv.logf("server: engine panic recovered: %v\n%s", pe.Val, pe.Stack)
		code = CodeInternal
	}
	sess.sendError(&WireError{Code: code, Message: err.Error()})
}

// handle dispatches one frame. A returned error is connection-fatal.
func (sess *session) handle(typ byte, payload []byte) error {
	if !sess.greeted && typ != FrameHello {
		return errProtocol("first frame must be Hello, got 0x%02x", typ)
	}
	switch typ {
	case FrameHello:
		return sess.handleHello(payload)
	case FramePrepare:
		return sess.handlePrepare(payload)
	case FrameBind:
		return sess.handleBind(payload)
	case FrameExecute:
		return sess.handleExecute(payload)
	case FrameFetch:
		return sess.handleFetch(payload)
	case FrameClose:
		return sess.handleClose(payload)
	case FrameExec:
		return sess.handleExec(payload)
	case FrameAnalyze:
		return sess.handleAnalyze(payload)
	case FrameBegin:
		return sess.handleBegin(payload)
	case FrameCommit:
		return sess.handleCommit(payload)
	case FrameRollback:
		return sess.handleRollback(payload)
	}
	return errProtocol("unknown frame type 0x%02x", typ)
}

func (sess *session) handleHello(payload []byte) error {
	d := NewDec(payload)
	version := d.U32()
	_ = d.Str() // client name, informational
	if err := d.Done(); err != nil {
		return err
	}
	if version != ProtocolVersion {
		return errProtocol("unsupported protocol version %d (server speaks %d)", version, ProtocolVersion)
	}
	sess.greeted = true
	var e Enc
	e.U32(ProtocolVersion)
	e.Str("arcserve")
	sess.send(FrameHelloOK, e.Bytes())
	return nil
}

// langOf maps the wire language byte onto engine.Lang.
func langOf(b byte) (engine.Lang, bool) {
	switch b {
	case WireLangSQL:
		return engine.LangSQL, true
	case WireLangARC:
		return engine.LangARC, true
	case WireLangDatalog:
		return engine.LangDatalog, true
	}
	return 0, false
}

func (sess *session) handlePrepare(payload []byte) error {
	d := NewDec(payload)
	id := d.U32()
	langByte := d.U8()
	pred := d.Str()
	src := d.Str()
	if err := d.Done(); err != nil {
		return err
	}
	lang, ok := langOf(langByte)
	if !ok {
		sess.stmtError(CodeParse, fmt.Errorf("unknown language byte 0x%02x", langByte))
		return nil
	}
	if _, exists := sess.stmts[id]; !exists && len(sess.stmts) >= sess.srv.opts.MaxStmts {
		// Re-preparing an existing id doesn't grow the map, so the cap
		// only gates genuinely new handles.
		sess.stmtError(CodeParse, fmt.Errorf("session holds %d prepared statements (limit %d); close some", len(sess.stmts), sess.srv.opts.MaxStmts))
		return nil
	}
	h := &stmtHandle{lang: lang, pred: pred, src: src}
	if err := sess.resolveHandle(h); err != nil {
		sess.stmtError(CodeParse, err)
		return nil
	}
	sess.stmts[id] = h
	sess.srv.metrics.StatementsPrepared.Add(1)
	cols := h.stmt.Columns()
	var e Enc
	e.U32(id)
	e.U8(wireKind(h.stmt.Kind()))
	e.U32(uint32(h.stmt.NumParams()))
	e.U32(uint32(len(cols)))
	for _, c := range cols {
		e.Str(c)
	}
	sess.send(FramePrepareOK, e.Bytes())
	return nil
}

// wireKind projects engine.StmtKind onto the wire byte.
func wireKind(k engine.StmtKind) byte {
	switch k {
	case engine.KindDML:
		return WireKindDML
	case engine.KindDDL:
		return WireKindDDL
	case engine.KindBegin:
		return WireKindBegin
	case engine.KindCommit:
		return WireKindCommit
	case engine.KindRollback:
		return WireKindRollback
	default:
		return WireKindQuery
	}
}

// resolveHandle (re)prepares a handle through the engine session when
// the session's epoch moved since the handle last resolved — a fresh
// commit landed, or a transaction opened/advanced/closed. At an
// unchanged epoch it's a field comparison; at a changed one it's
// usually a statement-cache hit.
func (sess *session) resolveHandle(h *stmtHandle) error {
	epoch := sess.eng.Epoch()
	if h.stmt != nil && h.epoch == epoch {
		return nil
	}
	var stmt *engine.Stmt
	var err error
	if h.lang == engine.LangDatalog && h.pred != "" {
		stmt, err = sess.eng.PrepareDatalog(h.src, h.pred)
	} else {
		stmt, err = sess.eng.Prepare(h.lang, h.src)
	}
	if err != nil {
		return err
	}
	h.stmt = stmt
	h.epoch = epoch
	return nil
}

// decodeArgs decodes a u32-counted argument vector. Each argument needs
// at least one payload byte, so the count is validated against the
// payload size before any allocation — a hostile argc must fail cheaply,
// not reserve gigabytes of slice capacity (found by FuzzServerFrames).
func decodeArgs(d *Dec, payloadLen int) []any {
	argc := d.U32()
	if d.err == nil && uint64(argc) > uint64(payloadLen) {
		d.fail("argument count %d overruns payload", argc)
	}
	if d.err != nil {
		return nil
	}
	args := make([]any, 0, argc)
	for i := uint32(0); i < argc && d.err == nil; i++ {
		args = append(args, d.Val())
	}
	return args
}

func (sess *session) handleBind(payload []byte) error {
	d := NewDec(payload)
	curID := d.U32()
	stmtID := d.U32()
	args := decodeArgs(&d, len(payload))
	if err := d.Done(); err != nil {
		return err
	}
	h, ok := sess.stmts[stmtID]
	if !ok {
		sess.stmtError(CodeUnknownStmt, fmt.Errorf("statement %d is not prepared in this session", stmtID))
		return nil
	}
	switch h.stmt.Kind() {
	case engine.KindBegin, engine.KindCommit, engine.KindRollback:
		// Transaction control is session state, not a portal: there is
		// nothing a cursor over BEGIN could ever stream or execute.
		sess.stmtError(CodeWrongKind, fmt.Errorf("cannot bind a cursor to a %s statement; send a %s frame (or Exec)", h.stmt.Kind(), h.stmt.Kind()))
		return nil
	}
	old, rebind := sess.cursors[curID]
	if !rebind && len(sess.cursors) >= sess.srv.opts.MaxCursors {
		// Rebinding an existing id doesn't grow the map; only new
		// cursors count against the cap.
		sess.stmtError(CodeBind, fmt.Errorf("session holds %d cursors (limit %d); close some", len(sess.cursors), sess.srv.opts.MaxCursors))
		return nil
	}
	if rebind && old.rows != nil {
		old.rows.Close()
	}
	sess.cursors[curID] = &cursor{h: h, args: args, cols: h.stmt.Columns()}
	var e Enc
	e.U32(curID)
	sess.send(FrameBindOK, e.Bytes())
	return nil
}

func (sess *session) handleExecute(payload []byte) error {
	d := NewDec(payload)
	curID := d.U32()
	if err := d.Done(); err != nil {
		return err
	}
	cur, ok := sess.cursors[curID]
	if !ok {
		sess.stmtError(CodeUnknownCursor, fmt.Errorf("cursor %d is not bound in this session", curID))
		return nil
	}
	if cur.rows != nil {
		sess.stmtError(CodeExecute, fmt.Errorf("cursor %d is already executing", curID))
		return nil
	}
	// A fetch cursor only makes sense over a statement that returns
	// rows: Execute of a DML/DDL portal is a structured kind error, not
	// a protocol mismatch. (Send an Exec frame instead.)
	if k := cur.h.stmt.Kind(); !k.ReturnsRows() {
		sess.stmtError(CodeWrongKind, fmt.Errorf("statement is %s, which returns no rows; use an Exec frame", k))
		return nil
	}
	// Re-resolve the portal's statement so the cursor streams the
	// session's current snapshot (or transaction overlay), not the one
	// current when the handle was first prepared.
	if err := sess.resolveHandle(cur.h); err != nil {
		sess.finishCursor(curID, cur)
		sess.stmtError(CodeExecute, err)
		return nil
	}
	// The latency histogram accumulates Execute plus every Fetch pull
	// into cur.elapsed and observes at cursor completion: for
	// planner-compiled SQL, Query only builds the operator tree — the
	// real work happens while Fetch pulls rows.
	start := time.Now()
	rows, err := cur.h.stmt.Query(sess.ctx, cur.args...)
	cur.elapsed += time.Since(start)
	if err != nil {
		sess.finishCursor(curID, cur)
		code := CodeExecute
		if sess.srv.baseCtx.Err() != nil && errors.Is(err, sess.srv.baseCtx.Err()) {
			code = CodeShutdown
		}
		sess.stmtError(code, err)
		return nil
	}
	cur.rows = rows
	sess.srv.metrics.QueriesExecuted.Add(1)
	var e Enc
	e.U32(curID)
	sess.send(FrameExecuteOK, e.Bytes())
	return nil
}

// softBatchBytes bounds an encoded row batch well under MaxFrame so one
// batch of wide string rows never overflows the frame limit.
const softBatchBytes = 256 << 10

func (sess *session) handleFetch(payload []byte) error {
	d := NewDec(payload)
	curID := d.U32()
	maxRows := int(d.U32())
	if err := d.Done(); err != nil {
		return err
	}
	cur, ok := sess.cursors[curID]
	if !ok || cur.rows == nil {
		sess.stmtError(CodeUnknownCursor, fmt.Errorf("cursor %d is not executing in this session", curID))
		return nil
	}
	if maxRows <= 0 {
		maxRows = sess.srv.opts.FetchRows
	}
	var rowsEnc Enc
	n := 0
	done := false
	start := time.Now()
	for n < maxRows && len(rowsEnc.Bytes()) < softBatchBytes {
		if !cur.rows.Next() {
			done = true
			break
		}
		for _, v := range cur.rows.Values() {
			rowsEnc.Val(v)
		}
		n++
	}
	cur.elapsed += time.Since(start)
	if len(rowsEnc.Bytes()) > MaxFrame-64 {
		// A single row blew past the frame limit (the soft bound only
		// checks between rows): this result cannot be shipped, but the
		// session — and its positional stream — survives.
		sess.finishCursor(curID, cur)
		sess.stmtError(CodeFetch, fmt.Errorf("row of %d bytes exceeds the %d-byte frame limit", len(rowsEnc.Bytes()), MaxFrame))
		return nil
	}
	if done {
		err := cur.rows.Err()
		sess.finishCursor(curID, cur)
		if err != nil {
			code := CodeFetch
			if sess.srv.baseCtx.Err() != nil && errors.Is(err, sess.srv.baseCtx.Err()) {
				code = CodeShutdown
			}
			sess.stmtError(code, err)
			return nil
		}
	}
	sess.srv.metrics.RowsStreamed.Add(uint64(n))
	sess.srv.metrics.FetchBatches.Add(1)
	var e Enc
	e.U32(curID)
	if done {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U32(uint32(len(cur.cols)))
	e.U32(uint32(n))
	e.b = append(e.b, rowsEnc.Bytes()...)
	sess.send(FrameRows, e.Bytes())
	return nil
}

func (sess *session) handleClose(payload []byte) error {
	d := NewDec(payload)
	kind := d.U8()
	id := d.U32()
	if err := d.Done(); err != nil {
		return err
	}
	switch kind {
	case 0:
		// Statement handles are session-scoped names over the engine's
		// shared (cached) statements; dropping the name is all a close
		// means here.
		delete(sess.stmts, id)
	case 1:
		if cur, ok := sess.cursors[id]; ok {
			sess.finishCursor(id, cur)
		}
	default:
		return errProtocol("unknown close kind 0x%02x", kind)
	}
	var e Enc
	e.U8(kind)
	e.U32(id)
	sess.send(FrameCloseOK, e.Bytes())
	return nil
}

// handleExec runs a DML/DDL statement (or SQL transaction control)
// directly from a prepared handle — no cursor, one ExecOK response
// carrying rows-affected plus the commit generation the write became
// visible at (0 while buffered in an open transaction).
func (sess *session) handleExec(payload []byte) error {
	d := NewDec(payload)
	stmtID := d.U32()
	args := decodeArgs(&d, len(payload))
	if err := d.Done(); err != nil {
		return err
	}
	h, ok := sess.stmts[stmtID]
	if !ok {
		sess.stmtError(CodeUnknownStmt, fmt.Errorf("statement %d is not prepared in this session", stmtID))
		return nil
	}
	if h.stmt.Kind() == engine.KindQuery {
		sess.stmtError(CodeWrongKind, fmt.Errorf("statement is a query; bind a cursor and use Execute/Fetch"))
		return nil
	}
	if err := sess.resolveHandle(h); err != nil {
		sess.stmtError(CodeExecute, err)
		return nil
	}
	res, err := sess.eng.ExecStmt(sess.ctx, h.stmt, args...)
	if err != nil {
		sess.stmtError(execErrCode(sess, err), err)
		return nil
	}
	sess.srv.metrics.QueriesExecuted.Add(1)
	var e Enc
	e.U64(uint64(res.RowsAffected))
	e.U64(res.Generation)
	sess.send(FrameExecOK, e.Bytes())
	return nil
}

// handleAnalyze runs a prepared query with operator tracing enabled and
// answers AnalyzeOK carrying the rendered executed plan (EXPLAIN
// ANALYZE over the wire). The query runs to completion server-side — no
// cursor is involved, and the rows themselves are not shipped.
func (sess *session) handleAnalyze(payload []byte) error {
	d := NewDec(payload)
	stmtID := d.U32()
	args := decodeArgs(&d, len(payload))
	if err := d.Done(); err != nil {
		return err
	}
	h, ok := sess.stmts[stmtID]
	if !ok {
		sess.stmtError(CodeUnknownStmt, fmt.Errorf("statement %d is not prepared in this session", stmtID))
		return nil
	}
	if h.stmt.Kind() != engine.KindQuery {
		sess.stmtError(CodeWrongKind, fmt.Errorf("statement is %s; only queries can be analyzed", h.stmt.Kind()))
		return nil
	}
	if err := sess.resolveHandle(h); err != nil {
		sess.stmtError(CodeExecute, err)
		return nil
	}
	start := time.Now()
	text, err := h.stmt.ExplainAnalyze(sess.ctx, args...)
	elapsed := time.Since(start)
	if err != nil {
		code := CodeExecute
		if sess.srv.baseCtx.Err() != nil && errors.Is(err, sess.srv.baseCtx.Err()) {
			code = CodeShutdown
		}
		sess.stmtError(code, err)
		return nil
	}
	sess.srv.metrics.QueriesExecuted.Add(1)
	sess.srv.metrics.ObserveQuery(elapsed)
	var e Enc
	e.Str(text)
	sess.send(FrameAnalyzeOK, e.Bytes())
	return nil
}

// execErrCode classifies a write-path failure into a wire code.
func execErrCode(sess *session, err error) string {
	switch {
	case errors.Is(err, engine.ErrConflict):
		return CodeConflict
	case errors.Is(err, engine.ErrTxDone):
		return CodeTx
	case sess.srv.baseCtx.Err() != nil && errors.Is(err, sess.srv.baseCtx.Err()):
		return CodeShutdown
	}
	return CodeExecute
}

// handleBegin opens the session's transaction; BeginOK reports the
// snapshot generation the transaction reads from.
func (sess *session) handleBegin(payload []byte) error {
	if len(payload) != 0 {
		return errProtocol("Begin carries no payload, got %d bytes", len(payload))
	}
	if sess.eng.InTx() {
		sess.stmtError(CodeTx, fmt.Errorf("transaction already open (nested transactions are not supported)"))
		return nil
	}
	if err := sess.eng.Begin(sess.ctx); err != nil {
		sess.stmtError(execErrCode(sess, err), err)
		return nil
	}
	var e Enc
	e.U64(sess.eng.Epoch().Gen) // the base snapshot the transaction reads
	sess.send(FrameBeginOK, e.Bytes())
	return nil
}

// handleCommit publishes the session's transaction; CommitOK reports
// the new commit generation. A first-committer-wins loss answers
// CONFLICT and the transaction is over either way.
func (sess *session) handleCommit(payload []byte) error {
	if len(payload) != 0 {
		return errProtocol("Commit carries no payload, got %d bytes", len(payload))
	}
	if !sess.eng.InTx() {
		sess.stmtError(CodeTx, fmt.Errorf("no open transaction"))
		return nil
	}
	gen, err := sess.eng.Commit()
	if err != nil {
		sess.stmtError(execErrCode(sess, err), err)
		return nil
	}
	var e Enc
	e.U64(gen)
	sess.send(FrameCommitOK, e.Bytes())
	return nil
}

// handleRollback discards the session's transaction.
func (sess *session) handleRollback(payload []byte) error {
	if len(payload) != 0 {
		return errProtocol("Rollback carries no payload, got %d bytes", len(payload))
	}
	if !sess.eng.InTx() {
		sess.stmtError(CodeTx, fmt.Errorf("no open transaction"))
		return nil
	}
	if err := sess.eng.Rollback(); err != nil {
		sess.stmtError(execErrCode(sess, err), err)
		return nil
	}
	sess.send(FrameRollbackOK, nil)
	return nil
}

// finishCursor closes and forgets a cursor, recording its accumulated
// execution time (Execute + Fetch pulls) in the latency histogram.
func (sess *session) finishCursor(id uint32, cur *cursor) {
	if cur.rows != nil {
		cur.rows.Close()
	}
	delete(sess.cursors, id)
	sess.srv.metrics.ObserveQuery(cur.elapsed)
}

// closeAllCursors releases every open cursor when the session ends
// (abandoned mid-stream, so no latency observation).
func (sess *session) closeAllCursors() {
	for _, cur := range sess.cursors {
		if cur.rows != nil {
			cur.rows.Close()
		}
	}
}

// Package server is the network front end over engine.DB: a TCP server
// speaking a small length-prefixed wire protocol, with per-connection
// sessions that own prepared-statement handles and stream query results
// in fetch-sized batches.
//
// Framing: every frame is
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// Client → server frames: Hello, Prepare, Bind, Execute, Fetch, Close,
// Exec (DML/DDL), Begin, Commit, Rollback.
// Server → client frames: the matching *OK responses, Rows batches, and
// Error frames carrying a structured code plus message. A session may
// pipeline requests (e.g. Prepare+Bind+Execute+Fetch in one write); the
// server processes frames in order and answers in order, so responses
// match requests positionally without round-trip stalls.
//
// Every decoder in this file is strictly bounds-checked and returns
// errors: the payload is the untrusted surface, and a hostile byte
// stream must produce an Error frame (or a closed connection), never a
// panic — see the hostile-input tests.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/value"
)

// Frame types. Client-originated types are low, server-originated have
// the high bit set.
const (
	FrameHello    byte = 0x01 // u32 version, string client name
	FramePrepare  byte = 0x02 // u32 stmtID, u8 lang, string pred, string src
	FrameBind     byte = 0x03 // u32 cursorID, u32 stmtID, u32 argc, values
	FrameExecute  byte = 0x04 // u32 cursorID
	FrameFetch    byte = 0x05 // u32 cursorID, u32 maxRows
	FrameClose    byte = 0x06 // u8 kind (0 stmt, 1 cursor), u32 id
	FrameExec     byte = 0x07 // u32 stmtID, u32 argc, values
	FrameBegin    byte = 0x08 // (empty)
	FrameCommit   byte = 0x09 // (empty)
	FrameRollback byte = 0x0A // (empty)
	FrameAnalyze  byte = 0x0B // u32 stmtID, u32 argc, values

	FrameHelloOK    byte = 0x81 // u32 version, string server banner
	FramePrepareOK  byte = 0x82 // u32 stmtID, u8 kind, u32 nparams, u32 ncols, strings
	FrameBindOK     byte = 0x83 // u32 cursorID
	FrameExecuteOK  byte = 0x84 // u32 cursorID
	FrameRows       byte = 0x85 // u32 cursorID, u8 done, u32 ncols, u32 nrows, rows
	FrameCloseOK    byte = 0x86 // u8 kind, u32 id
	FrameError      byte = 0x87 // string code, string message
	FrameExecOK     byte = 0x88 // u64 rowsAffected, u64 generation
	FrameBeginOK    byte = 0x89 // u64 baseGeneration
	FrameCommitOK   byte = 0x8A // u64 commitGeneration
	FrameRollbackOK byte = 0x8B // (empty)
	FrameAnalyzeOK  byte = 0x8C // string renderedPlan
)

// ProtocolVersion is the wire protocol revision negotiated by Hello.
// Revision 2 added the write path: Exec/Begin/Commit/Rollback frames, a
// statement-kind byte in PrepareOK, and the CONFLICT/WRONG_KIND/TX
// error codes. Revision 3 added EXPLAIN ANALYZE: the Analyze frame runs
// a prepared query with operator tracing enabled and answers AnalyzeOK
// carrying the rendered executed plan.
const ProtocolVersion = 3

// Wire language bytes carried by Prepare frames — the single source the
// server's dispatch and the client package both alias.
const (
	WireLangSQL     byte = 0
	WireLangARC     byte = 1
	WireLangDatalog byte = 2
)

// MaxFrame bounds a frame payload. A length prefix beyond it is a
// protocol error — the cheap defense against a hostile client asking the
// server to allocate gigabytes.
const MaxFrame = 1 << 20

// Structured error codes carried by Error frames.
const (
	CodeProtocol      = "PROTOCOL"       // malformed frame; the connection closes
	CodeParse         = "PARSE"          // Prepare failed (syntax/validation/plan)
	CodeBind          = "BIND"           // Bind arguments rejected
	CodeExecute       = "EXECUTE"        // Execute failed
	CodeFetch         = "FETCH"          // Fetch failed (execution error mid-stream)
	CodeUnknownStmt   = "UNKNOWN_STMT"   // stmt id not prepared in this session
	CodeUnknownCursor = "UNKNOWN_CURSOR" // cursor id not open in this session
	CodeShutdown      = "SHUTDOWN"       // server is draining
	CodeInternal      = "INTERNAL"       // recovered panic (engine.PanicError)
	CodeConflict      = "CONFLICT"       // first-committer-wins write conflict
	CodeWrongKind     = "WRONG_KIND"     // statement kind vs operation mismatch
	CodeTx            = "TX"             // transaction-state misuse (e.g. COMMIT with no BEGIN)
)

// Wire statement-kind bytes carried by PrepareOK (the client-visible
// projection of engine.StmtKind).
const (
	WireKindQuery    byte = 0
	WireKindDML      byte = 1
	WireKindDDL      byte = 2
	WireKindBegin    byte = 3
	WireKindCommit   byte = 4
	WireKindRollback byte = 5
)

// WireError is a structured error received over (or destined for) the
// wire.
type WireError struct {
	Code    string
	Message string
}

func (e *WireError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// errProtocol builds a connection-fatal protocol error.
func errProtocol(format string, args ...any) *WireError {
	return &WireError{Code: CodeProtocol, Message: fmt.Sprintf(format, args...)}
}

// ReadFrame reads one length-prefixed frame. It returns io.EOF only on a
// clean end-of-stream boundary; a truncated header or payload surfaces
// as ErrUnexpectedEOF, and an oversized length as a protocol error
// before any payload allocation.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, errProtocol("frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return errProtocol("outgoing frame of %d bytes exceeds the %d-byte limit", len(payload), MaxFrame)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Enc is an append-style payload encoder, exported so the client
// package (and tests) build frames with the same code the server uses.
type Enc struct{ b []byte }

func (e *Enc) U8(v byte)    { e.b = append(e.b, v) }
func (e *Enc) U32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *Enc) U64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// val encodes one value: a kind byte plus the kind's payload.
func (e *Enc) Val(v value.Value) {
	switch v.Kind() {
	case value.KindNull:
		e.U8(0)
	case value.KindInt:
		e.U8(1)
		e.U64(uint64(v.AsInt()))
	case value.KindFloat:
		e.U8(2)
		e.U64(math.Float64bits(v.AsFloat()))
	case value.KindString:
		e.U8(3)
		e.Str(v.AsString())
	case value.KindBool:
		e.U8(4)
		if v.AsBool() {
			e.U8(1)
		} else {
			e.U8(0)
		}
	}
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// Dec is a bounds-checked payload decoder: every read either succeeds or
// records a protocol error, and reads after an error return zero values.
type Dec struct {
	b   []byte
	pos int
	err error
}

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = errProtocol(format, args...)
	}
}

func (d *Dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.pos < n {
		d.fail("truncated payload: need %d bytes at offset %d of %d", n, d.pos, len(d.b))
		return false
	}
	return true
}

func (d *Dec) U8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *Dec) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(len(d.b)-d.pos) {
		d.fail("string of %d bytes overruns payload", n)
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// val decodes one value.
func (d *Dec) Val() value.Value {
	switch k := d.U8(); k {
	case 0:
		return value.Null()
	case 1:
		return value.Int(int64(d.U64()))
	case 2:
		return value.Float(math.Float64frombits(d.U64()))
	case 3:
		return value.Str(d.Str())
	case 4:
		return value.Bool(d.U8() != 0)
	default:
		d.fail("unknown value kind 0x%02x", k)
		return value.Value{}
	}
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) Dec { return Dec{b: b} }

// Err reports the first decode error hit so far.
func (d *Dec) Err() error { return d.err }

// Done asserts the payload was fully consumed — trailing bytes mean the
// client and server disagree about the frame layout.
func (d *Dec) Done() error {
	if d.err == nil && d.pos != len(d.b) {
		d.fail("%d trailing bytes after payload", len(d.b)-d.pos)
	}
	return d.err
}

package server_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/value"
)

func wireCode(t *testing.T, err error, want string) {
	t.Helper()
	var we *server.WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want a *WireError with code %s", err, want)
	}
	if we.Code != want {
		t.Fatalf("code = %s (%s), want %s", we.Code, we.Message, want)
	}
}

// TestWireExecAndKinds pins the statement-kind model on the wire:
// PrepareOK carries the kind, Exec runs DML/DDL, and kind-mismatched
// operations answer WRONG_KIND instead of a protocol error.
func TestWireExecAndKinds(t *testing.T) {
	_, addr := startServer(t, testDB(), server.Options{})
	c := dial(t, addr)

	ins, err := c.Prepare(client.LangSQL, "insert into R values ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Kind() != client.KindDML {
		t.Fatalf("INSERT kind = %v, want DML", ins.Kind())
	}
	res, err := ins.Exec(value.Int(6), value.Int(60))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || res.Generation == 0 {
		t.Fatalf("Exec result = %+v, want 1 row at a nonzero generation", res)
	}

	sel, err := c.Prepare(client.LangSQL, "select R.A from R where R.A = $1")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Kind() != client.KindQuery {
		t.Fatalf("SELECT kind = %v, want query", sel.Kind())
	}
	rows, err := sel.QueryAll(value.Int(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("inserted row not visible over the wire: %d rows", len(rows))
	}

	// Exec of a query statement is a structured kind error.
	_, err = sel.Exec()
	wireCode(t, err, server.CodeWrongKind)

	// Execute (cursor) of a DML statement is a structured kind error,
	// not a protocol mismatch: Query pipelines Bind+Execute+Fetch, so
	// the error surfaces from the Execute response.
	_, err = ins.Query(value.Int(7), value.Int(70))
	wireCode(t, err, server.CodeWrongKind)

	// Cursors cannot bind to transaction control at all.
	beg, err := c.Prepare(client.LangSQL, "begin")
	if err != nil {
		t.Fatal(err)
	}
	if beg.Kind() != client.KindBegin {
		t.Fatalf("BEGIN kind = %v, want BEGIN", beg.Kind())
	}
	_, err = beg.Query()
	wireCode(t, err, server.CodeWrongKind)

	// DDL over the wire.
	if _, err := c.Exec(client.LangSQL, "create table W (K text, V int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(client.LangSQL, "insert into W values ('k', 1)"); err != nil {
		t.Fatal(err)
	}
	// Fact ops through ARC.
	if res, err := c.Exec(client.LangARC, "+P(100, 101). +P(101, 102)"); err != nil || res.RowsAffected != 2 {
		t.Fatalf("fact ops: res = %+v, err = %v", res, err)
	}
}

// TestWireUpdate pins the UPDATE round trip on the wire: PrepareOK
// reports DML, Exec rewrites matched rows in place, and the new values
// are visible to a follow-up query on the same connection.
func TestWireUpdate(t *testing.T) {
	db := engine.Open(relation.New("Acct", "id", "bal").Add(1, 100).Add(2, 200).Add(3, 300))
	_, addr := startServer(t, db, server.Options{})
	c := dial(t, addr)

	up, err := c.Prepare(client.LangSQL, "update Acct set bal = bal + $1 where Acct.id between $2 and $3")
	if err != nil {
		t.Fatal(err)
	}
	if up.Kind() != client.KindDML {
		t.Fatalf("UPDATE kind = %v, want DML", up.Kind())
	}
	res, err := up.Exec(value.Int(5), value.Int(1), value.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 || res.Generation == 0 {
		t.Fatalf("Exec result = %+v, want 2 rows at a nonzero generation", res)
	}

	rows, _, err := c.Query(client.LangSQL, "select Acct.id, Acct.bal from Acct where Acct.bal = $1", value.Int(105))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != value.Int(1) {
		t.Fatalf("updated row not visible over the wire: %v", rows)
	}
	// Query on a DML statement stays a structured kind error.
	_, err = up.Query(value.Int(1), value.Int(1), value.Int(1))
	wireCode(t, err, server.CodeWrongKind)
}

// TestWireTransactions pins BEGIN/COMMIT/ROLLBACK frames: isolation
// until commit, read-your-writes through the same connection (including
// a statement prepared before BEGIN), conflict and tx-state errors.
func TestWireTransactions(t *testing.T) {
	db := engine.Open(relation.New("Acct", "id", "bal").Add(1, 100).Add(2, 100))
	_, addr := startServer(t, db, server.Options{})
	a := dial(t, addr)
	b := dial(t, addr)

	// Prepared before BEGIN; must re-resolve inside the transaction.
	sum, err := a.Prepare(client.LangSQL, "select sum(Acct.bal) from Acct")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := a.Commit(); err == nil {
		t.Fatal("COMMIT with no transaction succeeded")
	} else {
		wireCode(t, err, server.CodeTx)
	}

	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(client.LangSQL, "insert into Acct values (3, 50)"); err != nil {
		t.Fatal(err)
	}
	rows, err := sum.QueryAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0]; got != value.Int(250) {
		t.Fatalf("in-tx sum = %v, want 250 (read-your-writes)", got)
	}
	// The other connection still sees the pre-transaction state.
	bRows, _, err := b.Query(client.LangSQL, "select sum(Acct.bal) from Acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := bRows[0][0]; got != value.Int(200) {
		t.Fatalf("uncommitted write leaked to another session: sum = %v", got)
	}
	gen, err := a.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("CommitOK reported generation 0")
	}
	bRows, _, err = b.Query(client.LangSQL, "select sum(Acct.bal) from Acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := bRows[0][0]; got != value.Int(250) {
		t.Fatalf("committed write invisible to another session: sum = %v", got)
	}

	// Rollback discards.
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(client.LangSQL, "delete from Acct"); err != nil {
		t.Fatal(err)
	}
	if err := a.Rollback(); err != nil {
		t.Fatal(err)
	}
	bRows, _, err = b.Query(client.LangSQL, "select sum(Acct.bal) from Acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := bRows[0][0]; got != value.Int(250) {
		t.Fatalf("rolled-back delete leaked: sum = %v", got)
	}

	// First-committer-wins across connections.
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(client.LangSQL, "insert into Acct values (10, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(client.LangSQL, "insert into Acct values (11, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err = b.Commit()
	wireCode(t, err, server.CodeConflict)
	// b's transaction is over; its session keeps working.
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestWireCursorStreamsPreDeleteSnapshot is the acceptance pin: a
// cursor opened before a concurrent committed DELETE streams the
// pre-delete snapshot to completion.
func TestWireCursorStreamsPreDeleteSnapshot(t *testing.T) {
	r := relation.New("Big", "N")
	const total = 500
	for i := 0; i < total; i++ {
		r.Add(i)
	}
	_, addr := startServer(t, engine.Open(r), server.Options{FetchRows: 32})
	reader := dial(t, addr)
	writer := dial(t, addr)

	sel, err := reader.Prepare(client.LangSQL, "select Big.N from Big")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query()
	if err != nil {
		t.Fatal(err)
	}
	// Pull a few batches, then let the DELETE commit mid-stream.
	n := 0
	for n < 100 && rows.Next() {
		n++
	}
	res, err := writer.Exec(client.LangSQL, "delete from Big where Big.N < 400")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 400 {
		t.Fatalf("delete removed %d rows, want 400", res.RowsAffected)
	}
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("cursor streamed %d rows, want the full pre-delete %d", n, total)
	}
	// A fresh cursor sees the post-delete state.
	after, err := sel.QueryAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != total-400 {
		t.Fatalf("fresh cursor sees %d rows, want %d", len(after), total-400)
	}
}

// TestWireWriterReaderStress runs 4 writer sessions committing
// interleaved DELETE+INSERT transactions against 4 reader sessions
// streaming full cursors. The invariant: every reader-observed snapshot
// sums to the same constant (transfers conserve the total), conflicts
// surface as CONFLICT errors and are retried — never as corruption.
// Run under -race (the Makefile's test target does).
func TestWireWriterReaderStress(t *testing.T) {
	const (
		accounts = 8
		each     = 100
		total    = accounts * each
		writers  = 4
		readers  = 4
		transfer = 25 // committed transfers per writer
	)
	acct := relation.New("Acct", "id", "bal")
	for i := 0; i < accounts; i++ {
		acct.Add(i, each)
	}
	_, addr := startServer(t, engine.Open(acct), server.Options{FetchRows: 3})

	var wg, writerWG sync.WaitGroup
	var writersDone atomic.Bool
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWG.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			committed := 0
			for attempt := 0; committed < transfer; attempt++ {
				if attempt > transfer*100 {
					errCh <- fmt.Errorf("writer %d: starved after %d attempts", w, attempt)
					return
				}
				from := (w + attempt) % accounts
				to := (from + 1 + w) % accounts
				if from == to {
					continue
				}
				if _, err := c.Begin(); err != nil {
					errCh <- err
					return
				}
				ok, err := transferOnce(c, from, to)
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if !ok {
					continue // lost first-committer-wins; retry
				}
				committed++
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			sel, err := c.Prepare(client.LangSQL, "select Acct.id, Acct.bal from Acct")
			if err != nil {
				errCh <- err
				return
			}
			for scan := 0; ; scan++ {
				rows, err := sel.Query()
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				sum, n := int64(0), 0
				for rows.Next() {
					sum += rows.Values()[1].AsInt()
					n++
				}
				if err := rows.Err(); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if sum != total || n != accounts {
					errCh <- fmt.Errorf("reader %d scan %d: torn read — sum %d over %d rows, want %d over %d", r, scan, sum, n, total, accounts)
					return
				}
				// Keep scanning while writers run; a few extra scans
				// after they finish check the settled state too.
				if writersDone.Load() && scan >= 10 {
					return
				}
			}
		}(r)
	}

	go func() {
		writerWG.Wait()
		writersDone.Store(true)
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// transferOnce moves 1 unit between two accounts inside an open
// transaction and commits. Returns false (and no error) when the commit
// lost first-committer-wins.
func transferOnce(c *client.Conn, from, to int) (bool, error) {
	bal, err := c.Prepare(client.LangSQL, "select Acct.bal from Acct where Acct.id = $1")
	if err != nil {
		return false, err
	}
	fromRows, err := bal.QueryAll(value.Int(int64(from)))
	if err != nil {
		return false, err
	}
	toRows, err := bal.QueryAll(value.Int(int64(to)))
	if err != nil {
		return false, err
	}
	if len(fromRows) != 1 || len(toRows) != 1 {
		return false, fmt.Errorf("transfer read %d/%d balance rows, want 1/1", len(fromRows), len(toRows))
	}
	fromBal := fromRows[0][0].AsInt()
	toBal := toRows[0][0].AsInt()
	if _, err := c.Exec(client.LangSQL, "delete from Acct where Acct.id = $1", value.Int(int64(from))); err != nil {
		return false, err
	}
	if _, err := c.Exec(client.LangSQL, "delete from Acct where Acct.id = $1", value.Int(int64(to))); err != nil {
		return false, err
	}
	if _, err := c.Exec(client.LangSQL, "insert into Acct values ($1, $2)", value.Int(int64(from)), value.Int(fromBal-1)); err != nil {
		return false, err
	}
	if _, err := c.Exec(client.LangSQL, "insert into Acct values ($1, $2)", value.Int(int64(to)), value.Int(toBal+1)); err != nil {
		return false, err
	}
	_, err = c.Commit()
	if err != nil {
		var we *server.WireError
		if errors.As(err, &we) && we.Code == server.CodeConflict {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

package server_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/server"
)

// frame appends one encoded frame to buf.
func frame(buf *bytes.Buffer, typ byte, payload []byte) {
	if err := server.WriteFrame(buf, typ, payload); err != nil {
		panic(err)
	}
}

// helloPayload builds a valid Hello so mutated streams can get past the
// handshake and reach the per-frame decoders.
func helloPayload() []byte {
	var e server.Enc
	e.U32(server.ProtocolVersion)
	e.Str("fuzz")
	return e.Bytes()
}

// FuzzServerFrames throws arbitrary byte streams at a live server
// connection. The invariant under test is the wire contract: a hostile
// stream produces Error frames or a closed connection — never a hung
// connection, and never a process crash (a panic that escaped the
// per-connection recover would fail the fuzz run).
func FuzzServerFrames(f *testing.F) {
	_, addr := startServer(f, testDB(), server.Options{})

	// Seeds: a valid pipelined session, then progressively broken ones.
	var ok bytes.Buffer
	frame(&ok, server.FrameHello, helloPayload())
	var e server.Enc
	e.U32(1) // stmtID
	e.U8(server.WireLangSQL)
	e.Str("q")
	e.Str("select R.A from R")
	frame(&ok, server.FramePrepare, e.Bytes())
	e = server.Enc{}
	e.U32(7) // cursorID
	e.U32(1) // stmtID
	e.U32(0) // argc
	frame(&ok, server.FrameBind, e.Bytes())
	e = server.Enc{}
	e.U32(7)
	frame(&ok, server.FrameExecute, e.Bytes())
	e = server.Enc{}
	e.U32(7)
	e.U32(100)
	frame(&ok, server.FrameFetch, e.Bytes())
	f.Add(ok.Bytes())

	var tx bytes.Buffer
	frame(&tx, server.FrameHello, helloPayload())
	frame(&tx, server.FrameBegin, nil)
	e = server.Enc{}
	e.U32(2)
	e.U8(server.WireLangSQL)
	e.Str("s")
	e.Str("insert into R values (9, 90)")
	frame(&tx, server.FramePrepare, e.Bytes())
	e = server.Enc{}
	e.U32(2)
	e.U32(0)
	frame(&tx, server.FrameExec, e.Bytes())
	frame(&tx, server.FrameCommit, nil)
	f.Add(tx.Bytes())

	var bad bytes.Buffer
	frame(&bad, server.FrameHello, helloPayload())
	frame(&bad, server.FrameBind, []byte{0xff, 0xff}) // truncated payload
	f.Add(bad.Bytes())

	f.Add([]byte{})
	f.Add([]byte{server.FrameHello, 0xff, 0xff, 0xff, 0xff})      // oversized length prefix
	f.Add([]byte{0x42, 0x00, 0x00, 0x00, 0x03, 0x01})             // unknown type, short payload
	f.Add(bytes.Repeat([]byte{0xa5}, 512))                        // pure noise
	f.Add(append(ok.Bytes()[:len(ok.Bytes())/2], 0x00, 0x00))     // valid prefix, torn mid-frame
	f.Add(append([]byte{server.FrameAnalyze}, ok.Bytes()[1:]...)) // type confusion on a valid stream

	f.Fuzz(func(t *testing.T, stream []byte) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(10 * time.Second))
		nc.Write(stream) // a write error just means the server closed first
		// Half-close so a server mid-frame sees EOF instead of waiting for
		// the rest of a truncated payload.
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		buf := make([]byte, 4096)
		for {
			if _, err := nc.Read(buf); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatalf("server neither answered nor closed after %d-byte stream", len(stream))
				}
				return
			}
		}
	})
}
